// Extension experiment P1 (beyond the paper's single-inference latency
// formulation): pipelined multi-image throughput. When a mapping uses
// several accelerator sets, consecutive images overlap across sets — the
// latency-optimal mapping is not necessarily the throughput-optimal one.
// Compares the MARS (latency-optimised) mapping against hand-built 1-set
// and per-group pipelined mappings across batch sizes.
#include "bench_common.h"

#include "mars/core/second_level.h"

namespace mars::bench {
namespace {

core::Mapping balanced_two_set(const Bundle& bundle,
                               const core::SecondLevelSearch& search) {
  // Two groups, layer split balancing profiled compute.
  const accel::ProfileMatrix profile(bundle.designs, bundle.spine);
  const core::Skeleton skeleton =
      core::baseline_skeleton(bundle.problem, profile);
  core::Mapping mapping;
  for (const core::LayerAssignment& set : skeleton.sets) {
    core::LayerAssignment full = set;
    full.strategies = search.greedy(set).strategies;
    mapping.sets.push_back(std::move(full));
  }
  return mapping;
}

void run(const Options& options) {
  std::cout << "=== P1 (extension): pipelined throughput across accelerator "
               "sets (resnet34 on F1) ===\n";
  const auto bundle = f1_bundle("resnet34");
  const core::SecondLevelSearch search(bundle->problem,
                                       core::SecondLevelConfig{});
  const core::MappingEvaluator evaluator(bundle->problem);

  core::Mars mars(bundle->problem, mars_config(options));
  const core::Mapping latency_best = mars.search().mapping;
  const core::Mapping two_set = balanced_two_set(*bundle, search);

  Table table({"Batch", "MARS-latency mapping img/s", "Two-set pipeline img/s",
               "Two-set speedup", "Two-set pipeline overlap"});
  std::vector<std::vector<std::string>> csv_rows;
  for (int batch : {1, 2, 4, 8, 16}) {
    const auto a = evaluator.evaluate_throughput(latency_best, batch);
    const auto b = evaluator.evaluate_throughput(two_set, batch);
    table.add_row({std::to_string(batch),
                   format_double(a.images_per_second, 1),
                   format_double(b.images_per_second, 1),
                   format_double(b.images_per_second / a.images_per_second, 2) +
                       "x",
                   format_double(b.pipeline_speedup, 2) + "x"});
    csv_rows.push_back({std::to_string(batch),
                        format_double(a.images_per_second, 2),
                        format_double(b.images_per_second, 2),
                        format_double(b.pipeline_speedup, 3)});
  }
  std::cout << table
            << "(a two-set mapping loses on single-image latency but its "
               "stage pipeline catches up as the batch grows — the "
               "latency/throughput trade the paper leaves to future work)\n";
  maybe_write_csv(options,
                  {"batch", "latency_mapping_ips", "two_set_ips",
                   "two_set_pipeline_speedup"},
                  csv_rows);
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  mars::bench::run(mars::bench::parse_options(argc, argv));
  return 0;
}
