// Shared tenant-mix plumbing for the multi-tenant serving benches
// (bench_serving's sweeps and fleet-scale gate, bench_comap): the
// canonical contended two-model fleet, service-ref flattening, metric
// helpers, and the order-sensitive ServeResult digest the determinism
// gates assert on. Extracted so the benches agree on the tenant mix by
// construction instead of by copy.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "mars/serve/metrics.h"
#include "mars/serve/scheduler.h"
#include "mars/serve/service.h"

namespace mars::bench {

/// The canonical contended tenant mix: a heavy model and a light one
/// sharing the fleet. Every multi-tenant bench serves this pair so their
/// numbers are comparable.
inline const std::vector<std::string>& fleet_models() {
  static const std::vector<std::string> names = {"facebagnet", "resnet50"};
  return names;
}

/// Equal request weights for `n` tenants.
inline std::vector<double> equal_mix(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

inline std::vector<const serve::ModelService*> as_refs(
    const std::vector<std::unique_ptr<serve::ModelService>>& services) {
  std::vector<const serve::ModelService*> refs;
  refs.reserve(services.size());
  for (const auto& service : services) refs.push_back(service.get());
  return refs;
}

inline double mean_utilization(const serve::ServeMetrics& metrics) {
  if (metrics.utilization.empty()) return 0.0;
  return std::accumulate(metrics.utilization.begin(),
                         metrics.utilization.end(), 0.0) /
         static_cast<double>(metrics.utilization.size());
}

inline double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Order-sensitive digest of a merged ServeResult: byte-identical runs
/// hash equal, any reorder or value drift hashes different. FNV-1a over
/// the completed and rejected streams plus the scalar tallies.
inline std::uint64_t result_digest(const serve::ServeResult& result) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xffu;
      hash *= kPrime;
    }
  };
  const auto mix_seconds = [&](Seconds s) {
    std::uint64_t bits = 0;
    const double count = s.count();
    std::memcpy(&bits, &count, sizeof(bits));
    mix(bits);
  };
  for (const serve::CompletedRequest& done : result.completed) {
    mix(static_cast<std::uint64_t>(done.request.id));
    mix(static_cast<std::uint64_t>(done.request.model));
    mix_seconds(done.request.arrival);
    mix_seconds(done.dispatch);
    mix_seconds(done.completion);
    mix(static_cast<std::uint64_t>(done.batch_size));
  }
  for (const serve::Request& shed : result.rejected) {
    mix(static_cast<std::uint64_t>(shed.id));
    mix(static_cast<std::uint64_t>(shed.model));
    mix_seconds(shed.arrival);
  }
  for (Seconds busy : result.acc_busy) mix_seconds(busy);
  mix_seconds(result.horizon);
  mix(static_cast<std::uint64_t>(result.tasks_executed));
  mix(static_cast<std::uint64_t>(result.batches_dispatched));
  return hash;
}

}  // namespace mars::bench
