// Experiment F3 — Fig. 3: the two-level genetic algorithm in action.
// Emits the first-level convergence curve (best overall latency per
// generation) and a second-level refinement curve for the winning skeleton,
// on VGG16 / F1 — the search dynamics the paper's Fig. 3 sketches.
#include "bench_common.h"

#include "mars/core/second_level.h"

namespace mars::bench {
namespace {

void run(const Options& options) {
  std::cout << "=== Fig. 3: two-level GA convergence (vgg16 on F1) ===\n";
  const auto bundle = f1_bundle("vgg16");

  core::MarsConfig config = mars_config(options);
  config.first_ga.stall_generations = 0;  // full curve
  core::Mars mars(bundle->problem, config);
  const core::MarsResult result = mars.search();

  Table first({"Generation", "Best overall latency /ms"});
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t g = 0; g < result.first_level.history.size(); ++g) {
    first.add_row({std::to_string(g),
                   format_double(result.first_level.history[g] * 1e3, 3)});
    csv_rows.push_back({"first", std::to_string(g),
                        format_double(result.first_level.history[g] * 1e3, 4)});
  }
  std::cout << "First level (" << result.first_level.evaluations
            << " evaluations, " << result.second_level_misses
            << " distinct sub-problems, " << result.second_level_hits
            << " cache hits):\n"
            << first;

  // Second-level curve on the winner's largest set.
  const core::LayerAssignment* largest = &result.mapping.sets.front();
  for (const core::LayerAssignment& set : result.mapping.sets) {
    if (set.num_layers() > largest->num_layers()) largest = &set;
  }
  core::LayerAssignment skeleton = *largest;
  skeleton.strategies.clear();
  core::SecondLevelSearch second(bundle->problem, config.second);
  Rng rng(options.seed + 1);
  ga::GaResult curve;
  (void)second.refine(skeleton, rng, nullptr, &curve);

  Table second_table({"Generation", "Best set latency /ms"});
  for (std::size_t g = 0; g < curve.history.size(); ++g) {
    second_table.add_row(
        {std::to_string(g), format_double(curve.history[g] * 1e3, 3)});
    csv_rows.push_back(
        {"second", std::to_string(g), format_double(curve.history[g] * 1e3, 4)});
  }
  std::cout << "\nSecond level on " << topology::mask_to_string(largest->accs)
            << " (layers " << largest->begin << ".." << largest->end - 1
            << "):\n"
            << second_table;

  std::cout << "\nFinal mapping ("
            << format_double(result.summary.simulated.millis(), 3) << " ms):\n"
            << core::describe(result.mapping, bundle->spine, bundle->designs,
                              true);
  maybe_write_csv(options, {"level", "generation", "best_ms"}, csv_rows);
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  mars::bench::run(mars::bench::parse_options(argc, argv));
  return 0;
}
