// Experiment C1 — joint multi-tenant co-mapping vs independent planning:
// the contended two-model fleet (facebagnet + resnet50, bench_tenants.h)
// on an 8-accelerator cloud, priced by the serving-objective rollout.
//
// Default mode sweeps encoding x offered rate and reports joint vs
// independent SLO goodput, tail latency, and search cost — the headline
// "what does co-mapping buy" table.
//
// --smoke is the CI gate: one contended configuration (150 rps), both
// encodings, asserting
//   (a) the joint search never loses to independent planning (and the
//       partition encoding strictly beats it on this pair),
//   (b) results are byte-identical at --threads 1 vs 4 — fitness bits,
//       rollout hit/miss counters, history, placements — and across a
//       repeat run.
// Any violation exits 1.
#include "bench_common.h"
#include "bench_tenants.h"

#include <chrono>
#include <cstring>

#include "mars/comap/engine.h"

namespace mars::bench {
namespace {

constexpr double kSloMillis = 100.0;

comap::CoMapProblem make_problem(const topology::Topology& topo,
                                 const accel::DesignRegistry& designs,
                                 double rate, Seconds duration,
                                 std::uint64_t seed) {
  comap::CoMapProblem problem;
  for (const std::string& name : fleet_models()) {
    problem.tenants.push_back(comap::Tenant{name, 1.0, Seconds{}});
  }
  problem.topo = &topo;
  problem.designs = &designs;
  problem.adaptive = false;
  problem.rollout.rate = rate;
  problem.rollout.duration = duration;
  problem.rollout.seed = seed;
  problem.rollout.default_slo = milliseconds(kSloMillis);
  return problem;
}

comap::CoMapConfig make_config(const Options& options,
                               comap::Encoding encoding, bool smoke,
                               int threads) {
  comap::CoMapConfig config;
  config.encoding = encoding;
  config.seed = options.seed;
  config.threads = threads;
  config.inner = mars_config(options);
  if (smoke || options.quick) {
    config.inner.first_ga.population = 12;
    config.inner.first_ga.generations = 8;
    config.inner.first_ga.stall_generations = 4;
    config.inner.second.ga.population = 8;
    config.inner.second.ga.generations = 6;
    config.ga.population = 8;
    config.ga.generations = 6;
    config.ga.stall_generations = 4;
  }
  config.inner.seed = options.seed;
  config.inner.threads = threads;
  return config;
}

/// Order-sensitive digest of everything a CoMapResult determines: fitness
/// bits, rollout detail, placements, history, and the memo counters the
/// determinism contract covers.
std::uint64_t comap_digest(const comap::CoMapResult& result) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash = 1469598103934665603ull;
  const auto mix = [&](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xffu;
      hash *= kPrime;
    }
  };
  const auto mix_double = [&](double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  const auto mix_score = [&](const comap::ServingObjective::Score& s) {
    mix_double(s.fitness);
    mix(static_cast<std::uint64_t>(s.offered));
    mix(static_cast<std::uint64_t>(s.completed));
    mix(static_cast<std::uint64_t>(s.good));
    mix(static_cast<std::uint64_t>(s.rejected));
    mix_double(s.p99.count());
  };
  mix_score(result.score);
  mix_score(result.independent_score);
  mix(result.joint_won ? 1 : 0);
  for (double h : result.history) mix_double(h);
  for (const comap::TenantOutcome& tenant : result.tenants) {
    mix(static_cast<std::uint64_t>(tenant.placement));
  }
  mix(static_cast<std::uint64_t>(result.provenance.evaluations));
  mix(static_cast<std::uint64_t>(result.rollout_hits));
  mix(static_cast<std::uint64_t>(result.rollout_misses));
  return hash;
}

void run_sweep(const Options& options) {
  const topology::Topology topo = topology::h2h_cloud(8, gbps(4.0), 4);
  const accel::DesignRegistry designs = accel::h2h_designs();
  const Seconds duration(options.quick ? 0.5 : 1.0);
  const std::vector<double> rates =
      options.quick ? std::vector<double>{150.0}
                    : std::vector<double>{100.0, 150.0, 200.0};

  std::cout << "=== Co-mapping vs independent planning ("
            << join(fleet_models(), " + ") << ", 8-accelerator cloud, SLO "
            << kSloMillis << " ms, rollout "
            << format_double(duration.count() * 1000.0, 0) << " ms) ===\n";
  Table table({"Encoding", "Rate /rps", "Joint good /rps", "Indep good /rps",
               "Joint p99 /ms", "Indep p99 /ms", "Joint won", "Evals",
               "Rollouts", "Wall /s"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const comap::Encoding encoding :
       {comap::Encoding::kPartition, comap::Encoding::kInterleave}) {
    for (double rate : rates) {
      const comap::CoMapProblem problem =
          make_problem(topo, designs, rate, duration, options.seed);
      const comap::CoMapEngine engine(
          make_config(options, encoding, /*smoke=*/false, /*threads=*/1));
      const auto start = std::chrono::steady_clock::now();
      const comap::CoMapResult result = engine.search(problem);
      const double wall = seconds_since(start);
      table.add_row(
          {comap::to_string(encoding), format_double(rate, 0),
           format_double(result.score.goodput_rps(duration), 1),
           format_double(result.independent_score.goodput_rps(duration), 1),
           format_double(result.score.p99.millis(), 2),
           format_double(result.independent_score.p99.millis(), 2),
           result.joint_won ? "yes" : "no",
           std::to_string(result.provenance.evaluations),
           std::to_string(result.rollout_misses), format_double(wall, 2)});
      csv_rows.push_back(
          {comap::to_string(encoding), format_double(rate, 0),
           format_double(result.score.goodput_rps(duration), 3),
           format_double(result.independent_score.goodput_rps(duration), 3),
           format_double(result.score.p99.millis(), 4),
           format_double(result.independent_score.p99.millis(), 4),
           result.joint_won ? "1" : "0",
           std::to_string(result.provenance.evaluations),
           std::to_string(result.rollout_misses), format_double(wall, 4)});
    }
    table.add_separator();
  }
  std::cout << table;
  maybe_write_csv(options,
                  {"encoding", "rate_rps", "joint_goodput_rps",
                   "indep_goodput_rps", "joint_p99_ms", "indep_p99_ms",
                   "joint_won", "evaluations", "rollouts", "wall_s"},
                  csv_rows);
}

/// The CI gate (see the file comment).
int run_smoke(const Options& options) {
  const topology::Topology topo = topology::h2h_cloud(8, gbps(4.0), 4);
  const accel::DesignRegistry designs = accel::h2h_designs();
  const comap::CoMapProblem problem =
      make_problem(topo, designs, /*rate=*/150.0, Seconds(0.5), options.seed);

  std::cout << "=== comap smoke gate (" << join(fleet_models(), " + ")
            << ", 150 rps) ===\n";
  bool ok = true;
  for (const comap::Encoding encoding :
       {comap::Encoding::kPartition, comap::Encoding::kInterleave}) {
    const comap::CoMapEngine serial(
        make_config(options, encoding, /*smoke=*/true, /*threads=*/1));
    const comap::CoMapEngine threaded(
        make_config(options, encoding, /*smoke=*/true, /*threads=*/4));
    const comap::CoMapResult result = serial.search(problem);
    const std::uint64_t reference = comap_digest(result);
    const std::uint64_t at4 = comap_digest(threaded.search(problem));
    const std::uint64_t repeat = comap_digest(serial.search(problem));

    std::cout << comap::to_string(encoding) << ": joint fitness "
              << format_double(result.score.fitness, 4) << " vs independent "
              << format_double(result.independent_score.fitness, 4) << " ("
              << (result.joint_won ? "joint won" : "independent kept")
              << "), digests " << (at4 == reference ? "match" : "DIVERGE")
              << " at --threads 4, repeat "
              << (repeat == reference ? "match" : "DIVERGE") << '\n';

    if (result.score.fitness > result.independent_score.fitness) {
      std::cerr << "COMAP SMOKE FAILED: " << comap::to_string(encoding)
                << " joint result lost to independent planning\n";
      ok = false;
    }
    if (encoding == comap::Encoding::kPartition && !result.joint_won) {
      std::cerr << "COMAP SMOKE FAILED: partition co-mapping did not beat "
                   "independent planning on the contended pair\n";
      ok = false;
    }
    if (at4 != reference || repeat != reference) {
      std::cerr << "COMAP SMOKE FAILED: " << comap::to_string(encoding)
                << " results are not byte-identical across threads/repeat\n";
      ok = false;
    }
  }
  if (!ok) {
    std::cerr << "comap smoke gate FAILED\n";
    return 1;
  }
  std::cout << "comap smoke gate: joint >= independent, byte-identical at "
               "--threads 1 vs 4 and across repeat runs\n";
  return 0;
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const mars::bench::Options options = mars::bench::parse_options(argc, argv);
  if (smoke) return mars::bench::run_smoke(options);
  mars::bench::run_sweep(options);
  return 0;
}
