// Experiment E1 — hardware–mapping co-search (mars::explore) vs the
// fixed fleets and blind sampling.
//
// Default mode runs the NSGA co-search per zoo model and compares three
// ways of spending the same pricing budget on (makespan, energy, cost)
// hypervolume:
//   * presets   — the fixed fleets the rest of the repo benchmarks
//                 against (F1 platform + Table IV cloud clique),
//   * random    — uniform blind sampling of the same number of distinct
//                 hardware points,
//   * explore   — the NSGA-II co-search.
// All three share one hypervolume reference (1.1x the per-objective
// worst over every outcome either method priced), so the numbers are
// directly comparable; explore >= presets is structural (the presets
// seed its archive), explore vs random is the headline.
//
// --smoke is the CI gate (ISSUE 10 acceptance): one small alexnet space,
// asserting
//   (a) the front weakly dominates every fixed preset (each preset is on
//       the front or dominated by a member),
//   (b) at least one explored (non-preset) front point strictly
//       dominates the best fixed preset on (makespan, cost),
//   (c) the front_csv digest is byte-identical at --threads 1 vs 4 and
//       across a repeat run.
// Any violation exits 1.
#include "bench_common.h"

#include <chrono>
#include <cstdint>
#include <unordered_map>

#include "mars/explore/engine.h"
#include "mars/util/rng.h"
#include "mars/util/worker_pool.h"

namespace mars::bench {
namespace {

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

/// One tuning for every method: a small fixed-budget inner GA (the smoke
/// space mirrors tests/explore/test_golden_fronts.cpp; the full space
/// adds grouped2 and the 2 Gb/s tier).
explore::ExploreConfig make_config(const Options& options,
                                   const std::string& model, bool small,
                                   int threads) {
  explore::ExploreConfig config;
  config.model = model;
  config.space = explore::DesignSpace::parse(
      small ? "families=clique,ring;accs=2,4,8;bw=4,8;menus=full,solo"
            : "families=clique,ring,grouped2;accs=2,4,8;bw=2,4,8;"
              "menus=full,solo");
  config.tuning.seed = options.seed;
  if (small) {
    config.tuning.first_ga.population = 6;
    config.tuning.first_ga.generations = 3;
    config.tuning.first_ga.stall_generations = 2;
    config.tuning.second.ga.population = 4;
    config.tuning.second.ga.generations = 2;
    config.search_evaluations = 96;
    config.population = 8;
    config.generations = 4;
  } else {
    Options inner = options;
    inner.quick = true;  // the paper-sweep tuning is overkill per point
    config.tuning = mars_config(inner);
    config.search_evaluations = 512;
    config.population = 12;
    config.generations = 6;
  }
  config.seed = options.seed;
  config.threads = threads;
  return config;
}

explore::Front front_of(const std::vector<const explore::PointOutcome*>& priced,
                        const std::vector<explore::Objective>& objectives) {
  explore::Front front(static_cast<int>(objectives.size()));
  for (const explore::PointOutcome* outcome : priced) {
    (void)front.insert(outcome->front_point(objectives));
  }
  return front;
}

/// Blind sampling at the same budget: uniform draws over the whole space
/// (presets included — random gets a fair shot at them) until `target`
/// distinct points are priced.
struct Baseline {
  std::vector<explore::PointOutcome> outcomes;
  double wall_s = 0.0;
};

Baseline random_baseline(const explore::ExploreConfig& config,
                         long long target) {
  const auto start = std::chrono::steady_clock::now();
  core::MarsConfig tuning = config.tuning;
  tuning.threads = 1;  // parallelism lives across points, like explore
  const std::unique_ptr<plan::SearchEngine> engine =
      plan::make_engine(config.mapper, tuning);
  plan::Budget inner;
  if (config.search_evaluations > 0) {
    inner = plan::Budget::evaluations(config.search_evaluations);
  }
  util::WorkerPool pool(config.threads);
  explore::PointPricer pricer(config.model, config.space, *engine, inner,
                              /*cache=*/nullptr, pool);
  Rng rng(config.seed * 0x9e3779b97f4a7c15ull + 1);
  const std::size_t universe = config.space.points().size();
  long long attempts = 0;
  while (pricer.priced_count() < target && attempts < 64 * target) {
    std::vector<int> batch;
    while (static_cast<long long>(batch.size()) <
               target - pricer.priced_count() &&
           attempts < 64 * target) {
      batch.push_back(static_cast<int>(rng.index(universe)));
      ++attempts;
    }
    (void)pricer.price(batch);
  }
  Baseline baseline;
  for (const explore::PointOutcome* outcome : pricer.priced()) {
    baseline.outcomes.push_back(*outcome);
  }
  baseline.wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return baseline;
}

/// Shared reference: 1.1x the per-objective worst over every outcome any
/// method priced — the same rule ExploreResult::history uses.
std::vector<double> shared_reference(
    const std::vector<const explore::PointOutcome*>& all,
    const std::vector<explore::Objective>& objectives) {
  std::vector<double> ref(objectives.size(), 0.0);
  for (const explore::PointOutcome* outcome : all) {
    for (std::size_t m = 0; m < objectives.size(); ++m) {
      ref[m] = std::max(ref[m], outcome->objective(objectives[m]));
    }
  }
  for (double& r : ref) r *= 1.1;
  return ref;
}

int run_experiment(const Options& options) {
  std::vector<std::string> models = {"alexnet", "resnet18"};
  if (options.quick) models = {"alexnet"};

  Table table({"Model", "Method", "Priced", "Front", "Hypervolume",
               "Best /ms", "Best cost", "Wall /s"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const std::string& model : models) {
    const explore::ExploreConfig config =
        make_config(options, model, options.quick, /*threads=*/4);

    const auto start = std::chrono::steady_clock::now();
    const explore::ExploreResult result =
        explore::ExploreEngine(config).search();
    const double explore_wall = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - start)
                                    .count();

    const Baseline random =
        random_baseline(config, result.provenance.evaluations);

    struct Method {
      std::string name;
      std::vector<const explore::PointOutcome*> priced;
      double wall_s = 0.0;
    };
    std::vector<Method> methods(3);
    methods[0].name = "presets";
    methods[1].name = "random";
    methods[1].wall_s = random.wall_s;
    methods[2].name = "explore";
    methods[2].wall_s = explore_wall;
    for (const explore::PointOutcome& outcome : result.outcomes) {
      if (outcome.point.preset) methods[0].priced.push_back(&outcome);
      methods[2].priced.push_back(&outcome);
    }
    for (const explore::PointOutcome& outcome : random.outcomes) {
      methods[1].priced.push_back(&outcome);
    }

    std::vector<const explore::PointOutcome*> all = methods[2].priced;
    all.insert(all.end(), methods[1].priced.begin(), methods[1].priced.end());
    const std::vector<double> ref = shared_reference(all, config.objectives);

    for (const Method& method : methods) {
      const explore::Front front = front_of(method.priced, config.objectives);
      const std::vector<explore::FrontPoint> members = front.points();
      double best_makespan = 0.0;
      double best_cost = 0.0;
      for (const explore::PointOutcome* outcome : method.priced) {
        if (best_makespan == 0.0 || outcome->makespan_s < best_makespan) {
          best_makespan = outcome->makespan_s;
        }
        if (best_cost == 0.0 || outcome->cost < best_cost) {
          best_cost = outcome->cost;
        }
      }
      const double hv = explore::hypervolume(members, ref);
      table.add_row({model, method.name,
                     std::to_string(method.priced.size()),
                     std::to_string(members.size()), format_double(hv, 4),
                     format_double(best_makespan * 1e3, 3),
                     format_double(best_cost, 3),
                     format_double(method.wall_s, 2)});
      csv_rows.push_back({model, method.name,
                          std::to_string(method.priced.size()),
                          std::to_string(members.size()),
                          format_double(hv, 6),
                          format_double(best_makespan * 1e3, 6),
                          format_double(best_cost, 6),
                          format_double(method.wall_s, 3)});
    }
    table.add_separator();
  }
  std::cout << table;
  maybe_write_csv(options,
                  {"model", "method", "priced", "front_size", "hypervolume",
                   "best_makespan_ms", "best_cost", "wall_s"},
                  csv_rows);
  return 0;
}

/// The CI gate (see the file comment).
int run_smoke(const Options& options) {
  const std::string model = "alexnet";
  std::cout << "=== explore smoke gate (" << model << ") ===\n";

  const explore::ExploreConfig serial =
      make_config(options, model, /*small=*/true, /*threads=*/1);
  const explore::ExploreConfig threaded =
      make_config(options, model, /*small=*/true, /*threads=*/4);
  const explore::ExploreResult result = explore::ExploreEngine(serial).search();
  const std::uint64_t reference = fnv1a(front_csv(result, serial));
  const std::uint64_t at4 = fnv1a(
      front_csv(explore::ExploreEngine(threaded).search(), threaded));
  const std::uint64_t repeat =
      fnv1a(front_csv(explore::ExploreEngine(serial).search(), serial));

  bool ok = true;
  const std::vector<explore::FrontPoint> members = result.front.points();
  std::unordered_map<std::string, const explore::PointOutcome*> by_key;
  for (const explore::PointOutcome& outcome : result.outcomes) {
    by_key.emplace(outcome.point.spec(), &outcome);
  }

  // (a) Every preset is on the front or dominated by a member.
  std::vector<const explore::PointOutcome*> presets;
  for (const explore::PointOutcome& outcome : result.outcomes) {
    if (outcome.point.preset) presets.push_back(&outcome);
  }
  for (const explore::PointOutcome* preset : presets) {
    const explore::FrontPoint fp = preset->front_point(serial.objectives);
    std::string verdict;
    for (const explore::FrontPoint& member : members) {
      if (member.key == fp.key) {
        verdict = "on front";
        break;
      }
      if (explore::dominates(member, fp)) {
        verdict = "dominated by " + member.key;
        break;
      }
    }
    std::cout << "preset " << fp.key << ": "
              << (verdict.empty() ? "NOT WEAKLY DOMINATED" : verdict) << '\n';
    if (verdict.empty()) {
      std::cerr << "EXPLORE SMOKE FAILED: preset " << fp.key
                << " is neither on the front nor dominated\n";
      ok = false;
    }
  }

  // (b) Some explored point strictly dominates the best fixed preset on
  // (makespan, cost). "Best" = lowest makespan, cost as the tie-break.
  const std::vector<explore::Objective> axes = {explore::Objective::kMakespan,
                                                explore::Objective::kCost};
  const explore::PointOutcome* best_preset = nullptr;
  for (const explore::PointOutcome* preset : presets) {
    if (best_preset == nullptr ||
        preset->makespan_s < best_preset->makespan_s ||
        (preset->makespan_s == best_preset->makespan_s &&
         preset->cost < best_preset->cost)) {
      best_preset = preset;
    }
  }
  if (best_preset == nullptr) {
    std::cerr << "EXPLORE SMOKE FAILED: space has no presets\n";
    return 1;
  }
  const explore::FrontPoint best2d = best_preset->front_point(axes);
  const explore::PointOutcome* dominator = nullptr;
  for (const explore::FrontPoint& member : members) {
    const explore::PointOutcome* outcome = by_key.at(member.key);
    if (outcome->point.preset) continue;
    if (explore::dominates(outcome->front_point(axes), best2d)) {
      dominator = outcome;
      break;
    }
  }
  if (dominator != nullptr) {
    std::cout << "co-search win: " << dominator->point.spec() << " ("
              << format_double(dominator->makespan_s * 1e3, 4) << " ms, cost "
              << format_double(dominator->cost, 4)
              << ") strictly dominates best preset "
              << best_preset->point.spec() << " ("
              << format_double(best_preset->makespan_s * 1e3, 4)
              << " ms, cost " << format_double(best_preset->cost, 4)
              << ") on (makespan, cost)\n";
  } else {
    std::cerr << "EXPLORE SMOKE FAILED: no explored point strictly "
                 "dominates best preset "
              << best_preset->point.spec() << " on (makespan, cost)\n";
    ok = false;
  }

  // (c) Byte-identical exports across thread counts and repeats.
  std::cout << "front digests " << (at4 == reference ? "match" : "DIVERGE")
            << " at --threads 4, repeat "
            << (repeat == reference ? "match" : "DIVERGE") << '\n';
  if (at4 != reference || repeat != reference) {
    std::cerr << "EXPLORE SMOKE FAILED: front_csv is not byte-identical "
                 "across threads/repeat\n";
    ok = false;
  }

  if (!ok) {
    std::cerr << "explore smoke gate FAILED\n";
    return 1;
  }
  std::cout << "explore smoke gate: front covers every preset, beats the "
               "best fixed fleet on (makespan, cost), byte-identical at "
               "--threads 1 vs 4 and across repeat runs\n";
  return 0;
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      return mars::bench::run_smoke(mars::bench::parse_options(argc, argv));
    }
  }
  return mars::bench::run_experiment(mars::bench::parse_options(argc, argv));
}
