// Micro-benchmarks (google-benchmark): the per-call costs that set the
// search throughput — analytical design models, shard-plan construction,
// the layer cost function, greedy second-level selection, skeleton
// fitness (the first-level oracle every plan engine calls), the
// full-vs-incremental mutation pricing paths, and the event-driven
// executor.
//
// `bench_micro --smoke` skips google-benchmark and runs the CI gate
// instead: a quick differential check (incremental pricing must be
// bit-identical to the full path) followed by a full-vs-incremental
// throughput comparison against the checked-in floors in
// bench/micro_floor.txt. Exits non-zero when a floor regresses by more
// than 20%.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "mars/accel/registry.h"
#include "mars/core/evaluator.h"
#include "mars/core/second_level.h"
#include "mars/core/skeleton_space.h"
#include "mars/graph/models/models.h"
#include "mars/obs/metrics.h"
#include "mars/parallel/sharding.h"
#include "mars/plan/planner.h"
#include "mars/topology/presets.h"
#include "mars/util/worker_pool.h"
#include "support/mutation_stream.h"

namespace {

using namespace mars;  // NOLINT: bench-local convenience

struct Fixture {
  topology::Topology topo = topology::f1_16xlarge();
  accel::DesignRegistry designs = accel::table2_designs();
  // The Planner owns the graph -> spine -> Problem chain.
  plan::Planner planner{graph::models::vgg16(), topo, designs,
                        /*adaptive=*/true};
  const graph::ConvSpine& spine = planner.spine();
  const core::Problem& problem = planner.problem();
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_DesignCycleModel(benchmark::State& state) {
  const auto& fx = fixture();
  const accel::AcceleratorDesign& design =
      fx.designs.design(static_cast<int>(state.range(0)));
  const graph::ConvShape shape{256, 256, 28, 28, 3, 3, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        design.conv_cycles(shape, graph::DataType::kFix16).total());
  }
}
BENCHMARK(BM_DesignCycleModel)->Arg(0)->Arg(1)->Arg(2);

void BM_EnumerateStrategies(benchmark::State& state) {
  const graph::ConvShape shape{256, 256, 28, 28, 3, 3, 1, 1};
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::enumerate_strategies(shape, p, 3));
  }
}
BENCHMARK(BM_EnumerateStrategies)->Arg(2)->Arg(4)->Arg(8);

void BM_MakePlan(benchmark::State& state) {
  const graph::ConvShape shape{256, 256, 28, 28, 3, 3, 1, 1};
  const parallel::Strategy strategy({{parallel::Dim::kH, 2}, {parallel::Dim::kW, 2}},
                                    parallel::Dim::kCout);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parallel::make_plan(shape, graph::DataType::kFix16, strategy, 4));
  }
}
BENCHMARK(BM_MakePlan);

void BM_LayerCost(benchmark::State& state) {
  const auto& fx = fixture();
  const core::AnalyticalCostModel model(fx.problem);
  core::LayerAssignment set;
  set.accs = 0b1111;
  set.design = 0;
  set.begin = 0;
  set.end = fx.spine.size();
  const parallel::Strategy strategy({{parallel::Dim::kCout, 4}}, std::nullopt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.layer_cost(set, 5, strategy, std::nullopt));
  }
}
BENCHMARK(BM_LayerCost);

void BM_GreedySecondLevel(benchmark::State& state) {
  const auto& fx = fixture();
  const core::SecondLevelSearch search(fx.problem, core::SecondLevelConfig{});
  core::LayerAssignment skeleton;
  skeleton.accs = 0b1111;
  skeleton.design = 0;
  skeleton.begin = 0;
  skeleton.end = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.greedy(skeleton));
  }
}
BENCHMARK(BM_GreedySecondLevel)->Arg(4)->Arg(8)->Arg(16);

void BM_SkeletonFitness(benchmark::State& state) {
  const auto& fx = fixture();
  // Steady-state cost: after the first (miss) call this measures the
  // memoised path plus the DAG aggregation — what the inner GA/SA loop
  // pays for a revisited skeleton.
  core::SkeletonSpace space(fx.problem, {});
  const core::Skeleton skeleton = space.baseline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.fitness(skeleton));
  }
}
BENCHMARK(BM_SkeletonFitness);

void BM_EventSimVgg(benchmark::State& state) {
  const auto& fx = fixture();
  const core::SecondLevelSearch search(fx.problem, core::SecondLevelConfig{});
  core::LayerAssignment set;
  set.accs = 0b1111;
  set.design = 0;
  set.begin = 0;
  set.end = fx.spine.size();
  set.strategies = search.greedy(set).strategies;
  core::Mapping mapping;
  mapping.sets = {set};
  const core::MappingEvaluator evaluator(fx.problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.simulate(mapping).result.makespan);
  }
}
BENCHMARK(BM_EventSimVgg);

void BM_SpineExtraction(benchmark::State& state) {
  const graph::Graph model = graph::models::resnet101();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ConvSpine::extract(model));
  }
}
BENCHMARK(BM_SpineExtraction);

// ------------------------------------------------------------------------
// Full vs incremental mutation pricing (the GA/anneal inner loop).
//
// A stream is a chain of engine-shaped cohorts (see
// tests/support/mutation_stream.h); both paths price the identical
// children in steady state (warm caches), so evals/sec is the number the
// search engines actually see. The delta path's win scales with move
// locality: anneal edits 1-3 genes, GA mutation ~10, crossover ~half the
// genome (where fitness_delta_batch intentionally bails to the full
// subpath).

constexpr testing::MoveShape kShapes[] = {
    testing::MoveShape::kAnneal,
    testing::MoveShape::kGaMutate,
    testing::MoveShape::kGaCross,
};
constexpr const char* kShapeNames[] = {"anneal-move", "ga-mutate", "ga-cross"};

std::vector<testing::MutationCohort> make_stream(core::SkeletonSpace& space,
                                                 testing::MoveShape shape,
                                                 int num_cohorts,
                                                 std::size_t cohort_size,
                                                 unsigned seed) {
  Rng rng(seed);
  std::vector<ga::Genome> cur = testing::random_parents(space, cohort_size, rng);
  (void)space.fitness_batch(cur, nullptr);
  std::vector<testing::MutationCohort> cohorts;
  cohorts.reserve(static_cast<std::size_t>(num_cohorts));
  for (int i = 0; i < num_cohorts; ++i) {
    cohorts.push_back(testing::breed_cohort(cur, shape, cohort_size, rng));
    cur = cohorts.back().children;
  }
  return cohorts;
}

void BM_MutationEvalFull(benchmark::State& state) {
  const auto& fx = fixture();
  core::SkeletonSpace space(fx.problem, {});
  const auto shape = kShapes[state.range(0)];
  const auto cohorts = make_stream(space, shape, 64, 8, 2023);
  for (const auto& c : cohorts) {  // warm the second-level cache
    benchmark::DoNotOptimize(space.fitness_batch(c.children, nullptr));
  }
  long evals = 0;
  for (auto _ : state) {
    for (const auto& c : cohorts) {
      benchmark::DoNotOptimize(space.fitness_batch(c.children, nullptr));
      evals += static_cast<long>(c.children.size());
    }
  }
  state.SetItemsProcessed(evals);
  state.SetLabel(kShapeNames[state.range(0)]);
}
BENCHMARK(BM_MutationEvalFull)->DenseRange(0, 2);

void BM_MutationEvalIncremental(benchmark::State& state) {
  const auto& fx = fixture();
  core::SkeletonSpace space(fx.problem, {});
  const auto shape = kShapes[state.range(0)];
  const auto cohorts = make_stream(space, shape, 64, 8, 2023);
  for (const auto& c : cohorts) {  // warm caches and genome records
    benchmark::DoNotOptimize(
        space.fitness_delta_batch(c.parents, c.children, c.deltas, nullptr));
  }
  long evals = 0;
  for (auto _ : state) {
    for (const auto& c : cohorts) {
      benchmark::DoNotOptimize(
          space.fitness_delta_batch(c.parents, c.children, c.deltas, nullptr));
      evals += static_cast<long>(c.children.size());
    }
  }
  state.SetItemsProcessed(evals);
  state.SetLabel(kShapeNames[state.range(0)]);
}
BENCHMARK(BM_MutationEvalIncremental)->DenseRange(0, 2);

// --------------------------------------------------------------- smoke gate

/// Floors are speedup ratios (incremental / full evals/sec), not absolute
/// throughputs, so the gate is portable across CI machines. Keep in sync
/// with bench/micro_floor.txt (the checked-in copy wins when readable).
std::map<std::string, double> default_floors() {
  return {{"anneal-move", 2.00}, {"ga-mutate", 1.00}, {"ga-cross", 0.90}};
}

std::map<std::string, double> load_floors(const std::string& path) {
  std::map<std::string, double> floors = default_floors();
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "[smoke] floor file %s not readable; using built-in floors\n",
                 path.c_str());
    return floors;
  }
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream row(line);
    std::string name;
    double floor = 0.0;
    if (row >> name >> floor) floors[name] = floor;
  }
  return floors;
}

/// Bit-identity spot check: the incremental path must return the exact
/// fitness values and cache counters of the full path, serial and pooled.
bool run_differential(const core::Problem& problem) {
  for (int threads : {1, 4}) {
    util::WorkerPool pool(threads);
    util::WorkerPool* pool_ptr = threads == 1 ? nullptr : &pool;
    for (std::size_t s = 0; s < 3; ++s) {
      core::SkeletonSpace full(problem, {});
      core::SkeletonSpace inc(problem, {});
      const auto cohorts = make_stream(full, kShapes[s], 25, 8, 77 + static_cast<unsigned>(s));
      {
        Rng rng(77 + static_cast<unsigned>(s));  // replay the stream's parent draw
        (void)inc.fitness_batch(testing::random_parents(inc, 8, rng), pool_ptr);
      }
      for (const auto& c : cohorts) {
        const std::vector<double> want = full.fitness_batch(c.children, pool_ptr);
        const std::vector<double> got =
            inc.fitness_delta_batch(c.parents, c.children, c.deltas, pool_ptr);
        if (want != got || full.cache_hits() != inc.cache_hits() ||
            full.cache_misses() != inc.cache_misses()) {
          std::fprintf(stderr,
                       "[smoke] FAIL: incremental != full (%s, threads=%d)\n",
                       kShapeNames[s], threads);
          return false;
        }
      }
    }
  }
  std::printf("[smoke] differential check: incremental == full (3 shapes, threads 1 and 4)\n");
  return true;
}

int run_smoke_gate(const std::string& floor_path) {
  const auto& fx = fixture();
  if (!run_differential(fx.problem)) return 1;

  const auto floors = load_floors(floor_path);
  bool ok = true;
  for (std::size_t s = 0; s < 3; ++s) {
    core::SkeletonSpace full(fx.problem, {});
    core::SkeletonSpace inc(fx.problem, {});
    const auto cohorts = make_stream(full, kShapes[s], 80, 8, 2023);
    {
      Rng rng(2023);
      (void)inc.fitness_batch(testing::random_parents(inc, 8, rng), nullptr);
    }
    long evals = 0;
    for (const auto& c : cohorts) {
      (void)full.fitness_batch(c.children, nullptr);
      (void)inc.fitness_delta_batch(c.parents, c.children, c.deltas, nullptr);
      evals += static_cast<long>(c.children.size());
    }
    // Interleave timed passes and keep the fastest of each so a load
    // spike on a shared CI runner cannot skew the ratio one way.
    double best_full = 1e30;
    double best_inc = 1e30;
    double sink = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      for (const auto& c : cohorts) sink += full.fitness_batch(c.children, nullptr)[0];
      auto t1 = std::chrono::steady_clock::now();
      for (const auto& c : cohorts) {
        sink += inc.fitness_delta_batch(c.parents, c.children, c.deltas, nullptr)[0];
      }
      auto t2 = std::chrono::steady_clock::now();
      best_full = std::min(best_full, std::chrono::duration<double>(t1 - t0).count());
      best_inc = std::min(best_inc, std::chrono::duration<double>(t2 - t1).count());
    }
    benchmark::DoNotOptimize(sink);
    const double full_eps = static_cast<double>(evals) / best_full;
    const double inc_eps = static_cast<double>(evals) / best_inc;
    const double speedup = inc_eps / full_eps;
    const double floor = floors.count(kShapeNames[s]) != 0U
                             ? floors.at(kShapeNames[s])
                             : default_floors().at(kShapeNames[s]);
    const double gate = floor * 0.8;  // 20% regression allowance
    const bool pass = speedup >= gate;
    ok = ok && pass;
    std::printf(
        "[smoke] %-11s full %9.0f evals/s  incremental %9.0f evals/s  "
        "speedup %.2fx  (floor %.2fx, gate %.2fx) %s\n",
        kShapeNames[s], full_eps, inc_eps, speedup, floor, gate,
        pass ? "ok" : "REGRESSED");
  }
  return ok ? 0 : 1;
}

/// Smoke gate wrapped in a metrics session: every SkeletonSpace built by
/// the gate flushes its cache counters here on destruction, and the
/// snapshot documents what the gate actually measured (memo hit mix,
/// record-table churn) alongside the pass/fail line.
int run_smoke(const std::string& floor_path) {
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* previous = obs::install_metrics(&registry);
  const int status = run_smoke_gate(floor_path);
  obs::install_metrics(previous);
  for (const auto& [name, value] : registry.counter_values()) {
    std::printf("[smoke] metric %s=%lld\n", name.c_str(), value);
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
#ifdef MARS_BENCH_DIR
  std::string floor_path = std::string(MARS_BENCH_DIR) + "/micro_floor.txt";
#else
  std::string floor_path = "bench/micro_floor.txt";
#endif
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") smoke = true;
    if (arg.rfind("--floor=", 0) == 0) floor_path = std::string(arg.substr(8));
  }
  if (smoke) return run_smoke(floor_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
