// Micro-benchmarks (google-benchmark): the per-call costs that set the
// search throughput — analytical design models, shard-plan construction,
// the layer cost function, greedy second-level selection, skeleton
// fitness (the first-level oracle every plan engine calls), and the
// event-driven executor.
#include <benchmark/benchmark.h>

#include "mars/accel/registry.h"
#include "mars/core/evaluator.h"
#include "mars/core/second_level.h"
#include "mars/core/skeleton_space.h"
#include "mars/graph/models/models.h"
#include "mars/parallel/sharding.h"
#include "mars/plan/planner.h"
#include "mars/topology/presets.h"

namespace {

using namespace mars;  // NOLINT: bench-local convenience

struct Fixture {
  topology::Topology topo = topology::f1_16xlarge();
  accel::DesignRegistry designs = accel::table2_designs();
  // The Planner owns the graph -> spine -> Problem chain.
  plan::Planner planner{graph::models::vgg16(), topo, designs,
                        /*adaptive=*/true};
  const graph::ConvSpine& spine = planner.spine();
  const core::Problem& problem = planner.problem();
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_DesignCycleModel(benchmark::State& state) {
  const auto& fx = fixture();
  const accel::AcceleratorDesign& design =
      fx.designs.design(static_cast<int>(state.range(0)));
  const graph::ConvShape shape{256, 256, 28, 28, 3, 3, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        design.conv_cycles(shape, graph::DataType::kFix16).total());
  }
}
BENCHMARK(BM_DesignCycleModel)->Arg(0)->Arg(1)->Arg(2);

void BM_EnumerateStrategies(benchmark::State& state) {
  const graph::ConvShape shape{256, 256, 28, 28, 3, 3, 1, 1};
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::enumerate_strategies(shape, p, 3));
  }
}
BENCHMARK(BM_EnumerateStrategies)->Arg(2)->Arg(4)->Arg(8);

void BM_MakePlan(benchmark::State& state) {
  const graph::ConvShape shape{256, 256, 28, 28, 3, 3, 1, 1};
  const parallel::Strategy strategy({{parallel::Dim::kH, 2}, {parallel::Dim::kW, 2}},
                                    parallel::Dim::kCout);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parallel::make_plan(shape, graph::DataType::kFix16, strategy, 4));
  }
}
BENCHMARK(BM_MakePlan);

void BM_LayerCost(benchmark::State& state) {
  const auto& fx = fixture();
  const core::AnalyticalCostModel model(fx.problem);
  core::LayerAssignment set;
  set.accs = 0b1111;
  set.design = 0;
  set.begin = 0;
  set.end = fx.spine.size();
  const parallel::Strategy strategy({{parallel::Dim::kCout, 4}}, std::nullopt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.layer_cost(set, 5, strategy, std::nullopt));
  }
}
BENCHMARK(BM_LayerCost);

void BM_GreedySecondLevel(benchmark::State& state) {
  const auto& fx = fixture();
  const core::SecondLevelSearch search(fx.problem, core::SecondLevelConfig{});
  core::LayerAssignment skeleton;
  skeleton.accs = 0b1111;
  skeleton.design = 0;
  skeleton.begin = 0;
  skeleton.end = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.greedy(skeleton));
  }
}
BENCHMARK(BM_GreedySecondLevel)->Arg(4)->Arg(8)->Arg(16);

void BM_SkeletonFitness(benchmark::State& state) {
  const auto& fx = fixture();
  // Steady-state cost: after the first (miss) call this measures the
  // memoised path plus the DAG aggregation — what the inner GA/SA loop
  // pays for a revisited skeleton.
  core::SkeletonSpace space(fx.problem, {});
  const core::Skeleton skeleton = space.baseline();
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.fitness(skeleton));
  }
}
BENCHMARK(BM_SkeletonFitness);

void BM_EventSimVgg(benchmark::State& state) {
  const auto& fx = fixture();
  const core::SecondLevelSearch search(fx.problem, core::SecondLevelConfig{});
  core::LayerAssignment set;
  set.accs = 0b1111;
  set.design = 0;
  set.begin = 0;
  set.end = fx.spine.size();
  set.strategies = search.greedy(set).strategies;
  core::Mapping mapping;
  mapping.sets = {set};
  const core::MappingEvaluator evaluator(fx.problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.simulate(mapping).result.makespan);
  }
}
BENCHMARK(BM_EventSimVgg);

void BM_SpineExtraction(benchmark::State& state) {
  const graph::Graph model = graph::models::resnet101();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ConvSpine::extract(model));
  }
}
BENCHMARK(BM_SpineExtraction);

}  // namespace

BENCHMARK_MAIN();
