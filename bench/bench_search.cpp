// Experiment P1 — engine-comparison sweep: search engine x evaluation
// budget -> mapping quality, the head-to-head optimizer grid the plan
// layer exists for (MAGMA-style). Every cell runs one engine on the same
// problem under an evaluation budget, so cells are deterministic per seed
// and comparable across engines (an evaluation means the same thing —
// one full-mapping fitness — everywhere).
//
// Reads top-to-bottom per engine: how fast does quality converge with
// budget? Reads across engines at a budget: what does the GA's machinery
// buy over annealing, over random sampling, over no search at all?
//
//   --smoke   tiny grid for CI (Release job): exercises all four engines
//             end to end without timing anything.
#include "bench_common.h"

#include "mars/plan/engines.h"
#include "mars/plan/planner.h"

namespace mars::bench {
namespace {

void run_engine_grid(const Options& options, bool smoke) {
  const std::string model = smoke ? "alexnet" : "resnet34";
  const std::vector<long long> budgets =
      smoke ? std::vector<long long>{40}
            : (options.quick ? std::vector<long long>{100, 400}
                             : std::vector<long long>{100, 400, 1600});

  const topology::Topology topo = topology::f1_16xlarge();
  const accel::DesignRegistry designs = accel::table2_designs();
  const plan::Planner planner =
      plan::Planner::for_model(model, topo, designs, /*adaptive=*/true);

  // One tuning for every engine; schedules large enough that the
  // evaluation budget (not the engine's own schedule) is the binding
  // limit in every cell.
  core::MarsConfig tuning = mars_config(options);
  tuning.first_ga.generations = 1 << 12;
  tuning.first_ga.stall_generations = 0;  // budget decides, not the stall

  // Baseline context: what "no search" costs.
  const plan::PlanResult baseline =
      planner.plan(*plan::make_engine("baseline", tuning));
  std::cout << "=== Search-engine grid: engine x evaluation budget ("
            << model << ", F1 platform, seed " << options.seed << ") ===\n"
            << "baseline (no search): "
            << format_double(baseline.summary.simulated.millis(), 3)
            << " ms simulated\n\n";

  Table table({"Engine", "Budget /evals", "Evals used", "Analytic /ms",
               "Simulated /ms", "vs baseline", "Wall /s", "Stopped"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const std::string& name : plan::engine_names()) {
    for (long long budget_evals : budgets) {
      const std::unique_ptr<plan::SearchEngine> engine =
          plan::make_engine(name, tuning);
      const plan::PlanResult result =
          planner.plan(*engine, plan::Budget::evaluations(budget_evals));
      const double vs_baseline =
          baseline.summary.simulated.count() > 0.0
              ? result.summary.simulated / baseline.summary.simulated
              : 1.0;
      table.add_row(
          {name, std::to_string(budget_evals),
           std::to_string(result.provenance.evaluations),
           format_double(result.summary.analytic_makespan.millis(), 3),
           format_double(result.summary.simulated.millis(), 3),
           format_double(vs_baseline, 3) + "x",
           format_double(result.provenance.elapsed.count(), 3),
           plan::to_string(result.provenance.stopped)});
      csv_rows.push_back(
          {name, std::to_string(budget_evals),
           std::to_string(result.provenance.evaluations),
           format_double(result.summary.analytic_makespan.millis(), 4),
           format_double(result.summary.simulated.millis(), 4),
           format_double(vs_baseline, 4),
           format_double(result.provenance.elapsed.count(), 4),
           plan::to_string(result.provenance.stopped)});
      if (name == "baseline") break;  // budget-independent, one row
    }
    table.add_separator();
  }
  std::cout << table
            << "(budgets are evaluation counts, so rows are deterministic "
               "per seed; wall time is informational)\n";
  maybe_write_csv(options,
                  {"engine", "budget_evals", "evals_used", "analytic_ms",
                   "simulated_ms", "vs_baseline", "wall_s", "stopped"},
                  csv_rows);
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const mars::bench::Options options = mars::bench::parse_options(argc, argv);
  mars::bench::run_engine_grid(options, smoke);
  return 0;
}
