// Experiment P1 — engine-comparison sweep: search engine x evaluation
// budget -> mapping quality, the head-to-head optimizer grid the plan
// layer exists for (MAGMA-style). Every cell runs one engine on the same
// problem under an evaluation budget, so cells are deterministic per seed
// and comparable across engines (an evaluation means the same thing —
// one full-mapping fitness — everywhere).
//
// Reads top-to-bottom per engine: how fast does quality converge with
// budget? Reads across engines at a budget: what does the GA's machinery
// buy over annealing, over random sampling, over no search at all?
//
// Experiment P2 — threads x engine scaling grid: the same budgeted
// search at 1/2/4(/8) fitness threads -> wall clock, speedup vs 1
// thread, and a byte-identity check of the resulting mapping JSON (the
// determinism contract of docs/PERFORMANCE.md: --threads changes wall
// clock, never the mapping). Speedups reflect the machine — a
// single-core container shows ~1.0x by physics, a 4-core CI runner
// should show >= 2x for the GA.
//
//   --smoke   tiny grid for CI (Release job): exercises all engines
//             end to end without timing anything.
#include "bench_common.h"

#include <chrono>

#include "mars/core/serialize.h"
#include "mars/plan/engines.h"
#include "mars/plan/planner.h"

namespace mars::bench {
namespace {

void run_engine_grid(const Options& options, bool smoke) {
  const std::string model = smoke ? "alexnet" : "resnet34";
  const std::vector<long long> budgets =
      smoke ? std::vector<long long>{40}
            : (options.quick ? std::vector<long long>{100, 400}
                             : std::vector<long long>{100, 400, 1600});

  const topology::Topology topo = topology::f1_16xlarge();
  const accel::DesignRegistry designs = accel::table2_designs();
  const plan::Planner planner =
      plan::Planner::for_model(model, topo, designs, /*adaptive=*/true);

  // One tuning for every engine; schedules large enough that the
  // evaluation budget (not the engine's own schedule) is the binding
  // limit in every cell.
  core::MarsConfig tuning = mars_config(options);
  tuning.first_ga.generations = 1 << 12;
  tuning.first_ga.stall_generations = 0;  // budget decides, not the stall

  // Baseline context: what "no search" costs.
  const plan::PlanResult baseline =
      planner.plan(*plan::make_engine("baseline", tuning));
  std::cout << "=== Search-engine grid: engine x evaluation budget ("
            << model << ", F1 platform, seed " << options.seed << ") ===\n"
            << "baseline (no search): "
            << format_double(baseline.summary.simulated.millis(), 3)
            << " ms simulated\n\n";

  Table table({"Engine", "Budget /evals", "Evals used", "Analytic /ms",
               "Simulated /ms", "vs baseline", "Wall /s", "Stopped"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const std::string& name : plan::engine_names()) {
    for (long long budget_evals : budgets) {
      const std::unique_ptr<plan::SearchEngine> engine =
          plan::make_engine(name, tuning);
      const plan::PlanResult result =
          planner.plan(*engine, plan::Budget::evaluations(budget_evals));
      const double vs_baseline =
          baseline.summary.simulated.count() > 0.0
              ? result.summary.simulated / baseline.summary.simulated
              : 1.0;
      table.add_row(
          {name, std::to_string(budget_evals),
           std::to_string(result.provenance.evaluations),
           format_double(result.summary.analytic_makespan.millis(), 3),
           format_double(result.summary.simulated.millis(), 3),
           format_double(vs_baseline, 3) + "x",
           format_double(result.provenance.elapsed.count(), 3),
           plan::to_string(result.provenance.stopped)});
      csv_rows.push_back(
          {name, std::to_string(budget_evals),
           std::to_string(result.provenance.evaluations),
           format_double(result.summary.analytic_makespan.millis(), 4),
           format_double(result.summary.simulated.millis(), 4),
           format_double(vs_baseline, 4),
           format_double(result.provenance.elapsed.count(), 4),
           plan::to_string(result.provenance.stopped)});
      if (name == "baseline") break;  // budget-independent, one row
    }
    table.add_separator();
  }
  std::cout << table
            << "(budgets are evaluation counts, so rows are deterministic "
               "per seed; wall time is informational)\n";
  maybe_write_csv(options,
                  {"engine", "budget_evals", "evals_used", "analytic_ms",
                   "simulated_ms", "vs_baseline", "wall_s", "stopped"},
                  csv_rows);
}

// `write_csv` is off when the engine grid already claimed --csv (one CSV
// per run; use --threads-grid to export this grid instead).
void run_threads_grid(const Options& options, bool smoke, bool write_csv) {
  const std::string model = smoke ? "alexnet" : "resnet34";
  const long long budget_evals = smoke ? 40 : (options.quick ? 400 : 1600);
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2}
            : (options.quick ? std::vector<int>{1, 2, 4}
                             : std::vector<int>{1, 2, 4, 8});

  const topology::Topology topo = topology::f1_16xlarge();
  const accel::DesignRegistry designs = accel::table2_designs();
  const plan::Planner planner =
      plan::Planner::for_model(model, topo, designs, /*adaptive=*/true);

  core::MarsConfig tuning = mars_config(options);
  tuning.first_ga.generations = 1 << 12;
  tuning.first_ga.stall_generations = 0;

  // One engine per row family. The plain `anneal` engine is a single
  // Metropolis chain — inherently sequential — so the grid runs it with
  // chains=4: four chains priced as one batch per step is what threads
  // can actually spread (docs/PERFORMANCE.md).
  const auto engine_for = [&](const std::string& name, int threads)
      -> std::unique_ptr<plan::SearchEngine> {
    core::MarsConfig threaded = tuning;
    threaded.threads = threads;
    if (name == "anneal(chains=4)") {
      plan::AnnealConfig config;
      config.second = threaded.second;
      config.iterations = 1 << 20;
      config.chains = 4;
      config.seed = threaded.seed;
      config.threads = threads;
      return std::make_unique<plan::AnnealingEngine>(config);
    }
    return plan::make_engine(name, threaded);
  };

  std::cout << "\n=== Scaling grid: fitness threads x engine (" << model
            << ", budget " << budget_evals << " evals, seed " << options.seed
            << ") ===\n";

  Table table({"Engine", "Threads", "Wall /s", "Speedup", "Simulated /ms",
               "Mapping vs 1 thread"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const std::string& name :
       {std::string("ga"), std::string("anneal(chains=4)"),
        std::string("random"), std::string("portfolio")}) {
    double serial_wall = 0.0;
    std::string serial_json;
    for (const int threads : thread_counts) {
      const std::unique_ptr<plan::SearchEngine> engine =
          engine_for(name, threads);
      const auto start = std::chrono::steady_clock::now();
      const plan::PlanResult result =
          planner.plan(*engine, plan::Budget::evaluations(budget_evals));
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      const std::string mapping_json =
          core::to_json(result.mapping, planner.spine(), designs,
                        /*adaptive=*/true)
              .dump();
      if (threads == 1) {
        serial_wall = wall;
        serial_json = mapping_json;
      }
      const bool identical = mapping_json == serial_json;
      const double speedup = wall > 0.0 ? serial_wall / wall : 1.0;
      table.add_row({name, std::to_string(threads),
                     format_double(smoke ? 0.0 : wall, 3),
                     format_double(smoke ? 1.0 : speedup, 2) + "x",
                     format_double(result.summary.simulated.millis(), 3),
                     identical ? "identical" : "DIFFERS"});
      csv_rows.push_back({name, std::to_string(threads),
                          format_double(wall, 4), format_double(speedup, 3),
                          format_double(result.summary.simulated.millis(), 4),
                          identical ? "identical" : "differs"});
      if (!identical) {
        std::cout << "ERROR: mapping at " << threads
                  << " threads differs from the serial mapping for " << name
                  << " — determinism contract broken\n";
        std::exit(1);
      }
    }
    table.add_separator();
  }
  std::cout << table
            << "(same budget and seed per row family; 'identical' asserts the "
               "byte-identity of the mapping JSON across thread counts. "
               "Speedups depend on the machine's core count.)\n";
  if (write_csv) {
    maybe_write_csv(options,
                    {"engine", "threads", "wall_s", "speedup", "simulated_ms",
                     "mapping_vs_serial"},
                    csv_rows);
  }
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  bool smoke = false;
  bool threads_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
    if (std::string(argv[i]) == "--threads-grid") threads_only = true;
  }
  const mars::bench::Options options = mars::bench::parse_options(argc, argv);
  if (!threads_only) mars::bench::run_engine_grid(options, smoke);
  mars::bench::run_threads_grid(options, smoke, /*write_csv=*/threads_only);
  return 0;
}
