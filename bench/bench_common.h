// Shared plumbing for the experiment harnesses: budget presets, CLI flags
// (--quick for smoke runs, --csv to emit machine-readable results, --seed),
// and problem-bundle construction.
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mars/accel/registry.h"
#include "mars/core/baseline.h"
#include "mars/core/evaluator.h"
#include "mars/core/h2h.h"
#include "mars/core/mars.h"
#include "mars/graph/models/models.h"
#include "mars/plan/engines.h"
#include "mars/topology/presets.h"
#include "mars/util/csv.h"
#include "mars/util/strings.h"
#include "mars/util/table.h"

namespace mars::bench {

struct Options {
  bool quick = false;
  std::optional<std::string> csv_path;
  std::uint64_t seed = 1;
};

inline Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      options.csv_path = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = std::stoull(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--quick] [--csv <path>] [--seed <n>]\n";
      std::exit(0);
    }
  }
  return options;
}

/// Search budgets: default reproduces the paper-style sweep; --quick is a
/// smoke-test budget.
inline core::MarsConfig mars_config(const Options& options) {
  core::MarsConfig config;
  config.seed = options.seed;
  if (options.quick) {
    config.first_ga.population = 12;
    config.first_ga.generations = 8;
    config.first_ga.stall_generations = 4;
    config.second.ga.population = 8;
    config.second.ga.generations = 6;
  } else {
    config.first_ga.population = 24;
    config.first_ga.generations = 24;
    config.first_ga.stall_generations = 8;
    config.second.ga.population = 16;
    config.second.ga.generations = 14;
    config.second.ga.stall_generations = 6;
  }
  return config;
}

/// The default serving/search engine at the bench budget: the two-level
/// GA. Pass a different name ("anneal" | "random" | "baseline") to
/// compare engines under the same tuning.
inline std::unique_ptr<plan::SearchEngine> bench_engine(
    const Options& options, const std::string& name = "ga") {
  return plan::make_engine(name, mars_config(options));
}

/// Everything one experiment needs, with stable storage.
struct Bundle {
  graph::Graph model;
  graph::ConvSpine spine;
  topology::Topology topo;
  accel::DesignRegistry designs;
  core::Problem problem;

  Bundle(graph::Graph m, topology::Topology t, accel::DesignRegistry d,
         bool adaptive)
      : model(std::move(m)),
        spine(graph::ConvSpine::extract(model)),
        topo(std::move(t)),
        designs(std::move(d)) {
    problem.spine = &spine;
    problem.topo = &topo;
    problem.designs = &designs;
    problem.adaptive = adaptive;
  }
};

inline std::unique_ptr<Bundle> f1_bundle(const std::string& model_name) {
  return std::make_unique<Bundle>(graph::models::by_name(model_name),
                                  topology::f1_16xlarge(),
                                  accel::table2_designs(), /*adaptive=*/true);
}

inline std::unique_ptr<Bundle> h2h_bundle(const std::string& model_name,
                                          Bandwidth bw) {
  return std::make_unique<Bundle>(graph::models::by_name(model_name),
                                  topology::h2h_cloud(8, bw, 4),
                                  accel::h2h_designs(), /*adaptive=*/false);
}

inline void maybe_write_csv(const Options& options,
                            const std::vector<std::string>& header,
                            const std::vector<std::vector<std::string>>& rows) {
  if (!options.csv_path) return;
  std::ofstream file(*options.csv_path);
  CsvWriter csv(file, header);
  for (const auto& row : rows) csv.add_row(row);
  std::cout << "wrote " << rows.size() << " rows to " << *options.csv_path
            << '\n';
}

}  // namespace mars::bench
