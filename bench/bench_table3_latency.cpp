// Experiment T3 — Table III: baseline vs MARS latency on the five CNN
// workloads over the F1-style adaptive multi-accelerator system.
//
// Paper reference (for shape, not absolute numbers — see docs/EXPERIMENTS.md):
//   AlexNet  0.832 -> 0.748 ms (-10.1%)     VGG16    20.6 -> 14.9 (-27.7%)
//   ResNet34 4.43  -> 2.76 (-37.7%)         ResNet101 14.9 -> 7.95 (-46.6%)
//   WRN-50-2 16.7  -> 10.1 (-39.5%)         average -32.2%
#include <chrono>

#include "bench_common.h"
#include "mars/core/report.h"

namespace mars::bench {
namespace {

struct PaperRow {
  const char* model;
  double baseline_ms;
  double mars_ms;
};

constexpr PaperRow kPaper[] = {
    {"alexnet", 0.832, 0.748},   {"vgg16", 20.6, 14.9},
    {"resnet34", 4.43, 2.76},    {"resnet101", 14.9, 7.95},
    {"wrn50_2", 16.7, 10.1},
};

void run(const Options& options) {
  std::cout << "=== Table III: latency comparison, baseline vs MARS (F1-style "
               "system: 8 FPGAs, 2 groups, 8 Gb/s intra-group, 2 Gb/s host) ===\n";

  Table table({"Model", "#Convs", "#Params", "MACs", "Baseline /ms", "MARS /ms",
               "Reduction", "Paper", "Mapping found by MARS"});
  std::vector<std::vector<std::string>> csv_rows;
  double reduction_sum = 0.0;
  int rows = 0;

  for (const PaperRow& ref : kPaper) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto bundle = f1_bundle(ref.model);
    const accel::ProfileMatrix profile(bundle->designs, bundle->spine);
    const core::Mapping baseline =
        core::baseline_mapping(bundle->problem, profile);
    const core::MappingEvaluator evaluator(bundle->problem);
    const Seconds baseline_latency = evaluator.evaluate(baseline).simulated;

    core::Mars mars(bundle->problem, mars_config(options));
    const core::MarsResult result = mars.search();
    const Seconds mars_latency = result.summary.simulated;
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

    const double reduction = mars_latency / baseline_latency - 1.0;
    reduction_sum += reduction;
    ++rows;

    const core::WorkloadSummary workload = core::summarize(bundle->model);
    std::string mapping_text = core::describe(result.mapping, bundle->spine,
                                              bundle->designs, true);
    for (char& c : mapping_text) {
      if (c == '\n') c = ' ';
    }
    const std::string paper_ref =
        format_double(ref.baseline_ms, 3) + "->" + format_double(ref.mars_ms, 3) +
        " (" + signed_percent(ref.mars_ms / ref.baseline_ms - 1.0, 1) + ")";

    table.add_row({workload.name, std::to_string(workload.num_convs),
                   si_count(workload.params), si_count(workload.macs),
                   format_double(baseline_latency.millis(), 3),
                   format_double(mars_latency.millis(), 3),
                   signed_percent(reduction, 1), paper_ref,
                   mapping_text.substr(0, 70)});
    csv_rows.push_back({workload.name,
                        format_double(baseline_latency.millis(), 4),
                        format_double(mars_latency.millis(), 4),
                        format_double(reduction * 100.0, 2),
                        format_double(ref.baseline_ms, 3),
                        format_double(ref.mars_ms, 3)});

    std::cout << "  [" << workload.name << "] baseline "
              << format_double(baseline_latency.millis(), 3) << " ms, MARS "
              << format_double(mars_latency.millis(), 3) << " ms ("
              << signed_percent(reduction, 1) << ", paper "
              << signed_percent(ref.mars_ms / ref.baseline_ms - 1.0, 1)
              << "), search " << format_double(elapsed, 1) << " s, cache "
              << result.second_level_hits << "/"
              << (result.second_level_hits + result.second_level_misses)
              << "\n"
              << core::describe(result.mapping, bundle->spine, bundle->designs,
                                true);
  }

  std::cout << '\n' << table;
  std::cout << "Average latency reduction: "
            << signed_percent(reduction_sum / rows, 1) << " (paper: -32.2%)\n";
  maybe_write_csv(options,
                  {"model", "baseline_ms", "mars_ms", "reduction_percent",
                   "paper_baseline_ms", "paper_mars_ms"},
                  csv_rows);
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  mars::bench::run(mars::bench::parse_options(argc, argv));
  return 0;
}
