// Ablation A2 — shared shards (Section IV): how much of MARS's win needs
// the SS strategy on top of exclusive shards, and what SS does to the
// worst-case per-accelerator memory footprint.
#include "bench_common.h"

namespace mars::bench {
namespace {

void run(const Options& options) {
  std::cout << "=== Ablation A2: ES-only vs ES+SS strategy space ===\n";
  Table table({"Model", "ES+SS /ms", "ES-only /ms", "ES-only vs ES+SS",
               "Footprint ES+SS", "Footprint ES-only"});
  std::vector<std::vector<std::string>> csv_rows;

  for (const char* model : {"vgg16", "resnet34", "wrn50_2"}) {
    const auto bundle = f1_bundle(model);

    core::MarsConfig with_ss = mars_config(options);
    core::Mars mars_ss(bundle->problem, with_ss);
    const core::MarsResult r_ss = mars_ss.search();

    core::MarsConfig no_ss = mars_config(options);
    no_ss.second.enable_ss = false;
    core::Mars mars_es(bundle->problem, no_ss);
    const core::MarsResult r_es = mars_es.search();

    table.add_row(
        {model, format_double(r_ss.summary.simulated.millis(), 3),
         format_double(r_es.summary.simulated.millis(), 3),
         signed_percent(r_es.summary.simulated / r_ss.summary.simulated - 1.0, 1),
         format_double(r_ss.summary.worst_set_footprint.mib(), 1) + " MiB",
         format_double(r_es.summary.worst_set_footprint.mib(), 1) + " MiB"});
    csv_rows.push_back({model,
                        format_double(r_ss.summary.simulated.millis(), 4),
                        format_double(r_es.summary.simulated.millis(), 4),
                        format_double(r_ss.summary.worst_set_footprint.mib(), 2),
                        format_double(r_es.summary.worst_set_footprint.mib(), 2)});
  }
  std::cout << table;

  // SS's memory role sharpens under tight DRAM (Section IV's motivation).
  std::cout << "\nTight-DRAM variant (48 MiB per accelerator, vgg16):\n";
  Bundle tight(graph::models::by_name("vgg16"),
               topology::f1_16xlarge(gbps(8.0), gbps(2.0), mebibytes(48.0)),
               accel::table2_designs(), true);
  core::MarsConfig with_ss = mars_config(options);
  core::Mars mars_ss(tight.problem, with_ss);
  const core::MarsResult r_ss = mars_ss.search();
  core::MarsConfig no_ss = mars_config(options);
  no_ss.second.enable_ss = false;
  core::Mars mars_es(tight.problem, no_ss);
  const core::MarsResult r_es = mars_es.search();
  std::cout << "  ES+SS:   " << format_double(r_ss.summary.simulated.millis(), 3)
            << " ms, memory_ok=" << (r_ss.summary.memory_ok ? "yes" : "NO")
            << ", worst set "
            << format_double(r_ss.summary.worst_set_footprint.mib(), 1)
            << " MiB\n";
  std::cout << "  ES-only: " << format_double(r_es.summary.simulated.millis(), 3)
            << " ms, memory_ok=" << (r_es.summary.memory_ok ? "yes" : "NO")
            << ", worst set "
            << format_double(r_es.summary.worst_set_footprint.mib(), 1)
            << " MiB\n";
  maybe_write_csv(options,
                  {"model", "es_ss_ms", "es_only_ms", "es_ss_footprint_mib",
                   "es_only_footprint_mib"},
                  csv_rows);
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  mars::bench::run(mars::bench::parse_options(argc, argv));
  return 0;
}
