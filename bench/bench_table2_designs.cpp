// Experiment T2 — Table II: the available accelerator designs, plus the
// per-layer profile (cycles / utilisation) that drives both the baseline's
// design choice and MARS's gene initialisation.
#include "bench_common.h"

#include "mars/accel/profiler.h"

namespace mars::bench {
namespace {

void run(const Options& options) {
  std::cout << "=== Table II: available accelerator designs ===\n";
  const accel::DesignRegistry designs = accel::table2_designs();
  Table table({"Design", "Name", "Freq", "#PEs", "Peak MAC/cyc",
               "Design Parameters"});
  for (accel::DesignId id : designs.ids()) {
    const accel::AcceleratorDesign& d = designs.design(id);
    table.add_row({std::to_string(id + 1), d.name(),
                   format_double(d.frequency().megahertz(), 0) + "MHz",
                   std::to_string(d.pe_count()),
                   format_double(d.peak_macs_per_cycle(), 0),
                   d.parameter_string()});
  }
  std::cout << table << '\n';

  std::cout << "Per-layer winners across the Table III workloads (which "
               "design minimises cycles; the heterogeneity MARS exploits):\n";
  Table winners({"Model", "Layers", "SuperLIP wins", "Systolic wins",
                 "Winograd wins", "Best-mix speedup vs best-single"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const char* name :
       {"alexnet", "vgg16", "resnet34", "resnet101", "wrn50_2"}) {
    const graph::Graph model = graph::models::by_name(name);
    const graph::ConvSpine spine = graph::ConvSpine::extract(model);
    const accel::ProfileMatrix profile(designs, spine);

    std::vector<int> wins(static_cast<std::size_t>(designs.size()), 0);
    double mixed = 0.0;
    for (int l = 0; l < spine.size(); ++l) {
      const accel::DesignId best = profile.best_design(l);
      ++wins[static_cast<std::size_t>(best)];
      mixed += profile.at(best, l).cycles;
    }
    double best_single = profile.total_cycles(0);
    for (accel::DesignId d = 1; d < designs.size(); ++d) {
      best_single = std::min(best_single, profile.total_cycles(d));
    }
    winners.add_row({name, std::to_string(spine.size()),
                     std::to_string(wins[0]), std::to_string(wins[1]),
                     std::to_string(wins[2]),
                     format_double(best_single / mixed, 3) + "x"});
    csv_rows.push_back({name, std::to_string(spine.size()),
                        std::to_string(wins[0]), std::to_string(wins[1]),
                        std::to_string(wins[2]),
                        format_double(best_single / mixed, 4)});
  }
  std::cout << winners;
  maybe_write_csv(options,
                  {"model", "layers", "superlip_wins", "systolic_wins",
                   "winograd_wins", "mix_speedup"},
                  csv_rows);

  std::cout << "\nUtilisation detail (vgg16): per-layer fraction of peak "
               "MACs achieved by each design.\n";
  const graph::Graph vgg = graph::models::vgg16();
  const graph::ConvSpine spine = graph::ConvSpine::extract(vgg);
  const accel::ProfileMatrix profile(designs, spine);
  Table util({"Layer", "Shape", "SuperLIP", "Systolic", "Winograd", "Winner"});
  for (int l = 0; l < spine.size(); ++l) {
    util.add_row({spine.node(l).name, graph::to_string(spine.node(l).shape),
                  format_double(profile.at(0, l).utilization, 2),
                  format_double(profile.at(1, l).utilization, 2),
                  format_double(profile.at(2, l).utilization, 2),
                  designs.design(profile.best_design(l)).name()});
  }
  std::cout << util;
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  mars::bench::run(mars::bench::parse_options(argc, argv));
  return 0;
}
