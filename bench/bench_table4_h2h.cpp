// Experiment T4 — Table IV: MARS vs H2H on heterogeneous multi-modal
// models over a fixed-design cloud multi-FPGA system, swept across the five
// H2H bandwidth levels (1 / 1.2 / 2 / 4 / 10 Gb/s).
//
// Paper reference (shape target): MARS reduces latency by 50-74% at every
// level, with low-bandwidth mappings drifting toward H/W partitioning.
#include "bench_common.h"

#include "mars/parallel/strategy.h"

namespace mars::bench {
namespace {

struct Level {
  const char* label;
  double gbps_value;
};

constexpr Level kLevels[] = {{"Low-(1Gbps)", 1.0},
                             {"Low(1.2Gbps)", 1.2},
                             {"Mid-(2Gbps)", 2.0},
                             {"Mid(4Gbps)", 4.0},
                             {"High(10Gbps)", 10.0}};

struct PaperRef {
  const char* model;
  double h2h[5];
  double mars[5];
};

constexpr PaperRef kPaper[] = {
    {"casia_surf", {360.0, 340.0, 260.0, 230.0, 180.0},
     {124.6, 120.3, 100.9, 74.3, 46.8}},
    {"facebagnet", {520.0, 450.0, 320.0, 230.0, 170.0},
     {237.4, 224.6, 159.4, 112.1, 76.5}},
};

// Fraction of MARS's layer shards that split spatial dims (H/W) — the
// paper observes this rises as bandwidth falls.
double spatial_fraction(const core::Mapping& mapping) {
  int spatial = 0;
  int total = 0;
  for (const core::LayerAssignment& set : mapping.sets) {
    for (const parallel::Strategy& s : set.strategies) {
      ++total;
      if (s.ways_of(parallel::Dim::kH) > 1 || s.ways_of(parallel::Dim::kW) > 1) {
        ++spatial;
      }
    }
  }
  return total > 0 ? static_cast<double>(spatial) / total : 0.0;
}

void run(const Options& options) {
  std::cout << "=== Table IV: latency (ms) comparison with H2H on "
               "heterogeneous models (fixed-design 8-FPGA cloud) ===\n";

  std::vector<std::vector<std::string>> csv_rows;
  for (const PaperRef& ref : kPaper) {
    Table table({"Bandwidth", "H2H /ms", "MARS /ms", "Reduction",
                 "Paper (H2H->MARS)", "Spatial-ES share"});
    double reduction_sum = 0.0;
    std::cout << "\n--- " << ref.model << " ---\n";
    for (std::size_t level = 0; level < 5; ++level) {
      const auto bundle =
          h2h_bundle(ref.model, gbps(kLevels[level].gbps_value));

      const core::H2HResult h2h = core::H2HMapper(bundle->problem).map();
      core::Mars mars(bundle->problem, mars_config(options));
      const core::MarsResult result = mars.search();

      const double reduction =
          result.summary.simulated / h2h.simulated - 1.0;
      reduction_sum += reduction;
      const std::string paper =
          format_double(ref.h2h[level], 1) + "->" +
          format_double(ref.mars[level], 1) + " (" +
          signed_percent(ref.mars[level] / ref.h2h[level] - 1.0, 1) + ")";
      table.add_row({kLevels[level].label,
                     format_double(h2h.simulated.millis(), 2),
                     format_double(result.summary.simulated.millis(), 2),
                     signed_percent(reduction, 1), paper,
                     format_double(spatial_fraction(result.mapping) * 100.0, 0) +
                         "%"});
      csv_rows.push_back({ref.model, format_double(kLevels[level].gbps_value, 1),
                          format_double(h2h.simulated.millis(), 4),
                          format_double(result.summary.simulated.millis(), 4),
                          format_double(reduction * 100.0, 2),
                          format_double(spatial_fraction(result.mapping), 4)});
    }
    std::cout << table;
    std::cout << "Average reduction for " << ref.model << ": "
              << signed_percent(reduction_sum / 5.0, 1) << '\n';
  }
  std::cout << "\n(paper overall average: -59.4%)\n";
  maybe_write_csv(options,
                  {"model", "bandwidth_gbps", "h2h_ms", "mars_ms",
                   "reduction_percent", "spatial_es_fraction"},
                  csv_rows);
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  mars::bench::run(mars::bench::parse_options(argc, argv));
  return 0;
}
