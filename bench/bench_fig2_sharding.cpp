// Experiment F2 — Fig. 2: the ES/SS sharding semantics on a single Conv2d.
// Reproduces the figure's three cases (default, ES={Cin,W}, ES={W}+SS={Cout})
// and reports per-accelerator work, memory and communication, plus the
// simulated latency of each strategy on one F1 group.
#include "bench_common.h"

#include "mars/parallel/comm_pattern.h"
#include "mars/parallel/sharding.h"

namespace mars::bench {
namespace {

using parallel::Dim;
using parallel::Strategy;

void run(const Options& options) {
  // The figure's example layer: a mid-network convolution.
  const graph::ConvShape conv{256, 256, 28, 28, 3, 3, 1, 1};
  const graph::DataType dtype = graph::DataType::kFix16;
  std::cout << "=== Fig. 2: parallelism strategies on Conv2d ("
            << graph::to_string(conv) << ") ===\n";

  struct Case {
    const char* label;
    Strategy strategy;
    int p;
  };
  const std::vector<Case> cases = {
      {"(a) default <N,N,N,N,N,N>", Strategy{}, 1},
      {"(b) ES={Cin,W}", Strategy({{Dim::kCin, 2}, {Dim::kW, 2}}, std::nullopt),
       4},
      {"(b') ES={H,W}", Strategy({{Dim::kH, 2}, {Dim::kW, 2}}, std::nullopt), 4},
      {"(c) ES={W}, SS={Cout}", Strategy({{Dim::kW, 2}}, Dim::kCout), 2},
      {"(c') ES={W:4}, SS={Cout}", Strategy({{Dim::kW, 4}}, Dim::kCout), 4},
      {"ES={Cout:4}", Strategy({{Dim::kCout, 4}}, std::nullopt), 4},
  };

  const accel::DesignRegistry designs = accel::table2_designs();
  const accel::AcceleratorDesign& design = designs.design(0);

  Table table({"Strategy", "p", "Phases", "Per-acc MACs", "Weights/acc",
               "Acts/acc", "Ring hop", "All-Reduce", "Compute /us"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const Case& c : cases) {
    const parallel::ShardingPlan plan =
        parallel::make_plan(conv, dtype, c.strategy, c.p);
    const double compute_us =
        design.conv_latency(plan.local, dtype).micros() * plan.phases;
    table.add_row(
        {c.label, std::to_string(c.p), std::to_string(plan.phases),
         si_count(plan.local.macs() * plan.phases, 1),
         format_double(plan.weight_resident.kib(), 0) + " KiB",
         format_double((plan.input_live + plan.output_live).kib(), 0) + " KiB",
         plan.ring_hop_bytes.count() > 0
             ? format_double(plan.ring_hop_bytes.kib(), 0) + " KiB"
             : "-",
         plan.allreduce_group > 1
             ? "group " + std::to_string(plan.allreduce_group) + ", " +
                   format_double(plan.allreduce_bytes.kib(), 0) + " KiB"
             : "-",
         format_double(compute_us, 1)});
    csv_rows.push_back({c.label, std::to_string(c.p),
                        std::to_string(plan.phases),
                        format_double(plan.weight_resident.count(), 0),
                        format_double(plan.ring_hop_bytes.count(), 0),
                        format_double(compute_us, 3)});
  }
  std::cout << table;

  std::cout << "\nKey take-aways reproduced from the figure:\n"
            << "  * ES={Cin,W} spreads work 4x but needs an All-Reduce of the "
               "output halves (Cin is a reduction dim).\n"
            << "  * ES={W}, SS={Cout} keeps compute split while each "
               "accelerator holds only half the weights at a time, at the "
               "cost of ring transfers between phases.\n";
  maybe_write_csv(options,
                  {"strategy", "p", "phases", "weight_bytes_per_acc",
                   "ring_hop_bytes", "compute_us"},
                  csv_rows);
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  mars::bench::run(mars::bench::parse_options(argc, argv));
  return 0;
}
