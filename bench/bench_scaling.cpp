// Extension experiment P2: scalability — the paper motivates MARS with
// "high scalability" of multi-accelerator systems. Sweeps the system size
// (groups x per-group) and reports MARS latency, parallel efficiency
// against the 1-accelerator run, and search cost.
#include <chrono>

#include "bench_common.h"

namespace mars::bench {
namespace {

void run(const Options& options) {
  std::cout << "=== P2 (extension): scaling resnet34 across system sizes ===\n";

  // Single-accelerator reference (best single design, no communication).
  const auto reference = f1_bundle("resnet34");
  const accel::ProfileMatrix profile(reference->designs, reference->spine);
  double best_single_cycles = profile.total_cycles(0);
  for (accel::DesignId d = 1; d < reference->designs.size(); ++d) {
    best_single_cycles = std::min(best_single_cycles, profile.total_cycles(d));
  }
  const Seconds single =
      reference->designs.design(0).frequency().time_for(best_single_cycles);
  std::cout << "1 accelerator (best single design, compute only): "
            << format_double(single.millis(), 2) << " ms\n";

  struct Shape {
    int groups;
    int per_group;
  };
  Table table({"System", "Accs", "MARS /ms", "Speedup", "Efficiency",
               "Sets used", "Search /s"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const Shape shape : {Shape{1, 2}, Shape{1, 4}, Shape{2, 2}, Shape{2, 4},
                            Shape{2, 8}, Shape{4, 4}}) {
    Bundle bundle(graph::models::by_name("resnet34"),
                  topology::grouped(shape.groups, shape.per_group, gbps(8.0),
                                    gbps(2.0)),
                  accel::table2_designs(), true);
    const auto t0 = std::chrono::steady_clock::now();
    core::Mars mars(bundle.problem, mars_config(options));
    const core::MarsResult result = mars.search();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const int accs = shape.groups * shape.per_group;
    const double speedup = single / result.summary.simulated;
    const std::string label =
        std::to_string(shape.groups) + "x" + std::to_string(shape.per_group);
    table.add_row({label, std::to_string(accs),
                   format_double(result.summary.simulated.millis(), 2),
                   format_double(speedup, 2) + "x",
                   format_double(100.0 * speedup / accs, 0) + "%",
                   std::to_string(result.mapping.sets.size()),
                   format_double(elapsed, 1)});
    csv_rows.push_back({label, std::to_string(accs),
                        format_double(result.summary.simulated.millis(), 3),
                        format_double(speedup, 3)});
  }
  std::cout << table
            << "(efficiency falls as communication and shard fragmentation "
               "grow — the design space MARS navigates)\n";
  maybe_write_csv(options, {"system", "accs", "mars_ms", "speedup"}, csv_rows);
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  mars::bench::run(mars::bench::parse_options(argc, argv));
  return 0;
}
