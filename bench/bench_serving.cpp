// Experiment S1 — online serving sweep: offered rate x batching policy x
// link bandwidth for a two-model fleet (facebagnet + resnet50) on an
// 8-accelerator cloud.
//
// Extension beyond the paper: MARS optimises one inference's makespan;
// this harness measures what its mappings deliver under the multi-tenant
// serving regime the ROADMAP targets — tail latency (p50/p95/p99), SLO
// goodput, and per-accelerator utilization, with co-resident models
// contending for the same links and accelerators.
#include "bench_common.h"

#include <numeric>

#include "mars/serve/metrics.h"
#include "mars/serve/report.h"
#include "mars/serve/scheduler.h"

namespace mars::bench {
namespace {

constexpr double kSlOMillis = 60.0;

double mean_utilization(const serve::ServeMetrics& metrics) {
  if (metrics.utilization.empty()) return 0.0;
  return std::accumulate(metrics.utilization.begin(),
                         metrics.utilization.end(), 0.0) /
         static_cast<double>(metrics.utilization.size());
}

void run(const Options& options) {
  std::cout << "=== Serving sweep: rate x policy x bandwidth "
               "(facebagnet + resnet50, 8-accelerator cloud, SLO "
            << kSlOMillis << " ms) ===\n";

  const std::vector<std::string> names = {"facebagnet", "resnet50"};
  const std::vector<double> mix = {1.0, 1.0};
  const Seconds duration(options.quick ? 2.0 : 5.0);
  const std::vector<double> bandwidths =
      options.quick ? std::vector<double>{4.0} : std::vector<double>{2.0, 4.0, 10.0};
  const std::vector<double> rates = options.quick
                                        ? std::vector<double>{50.0, 150.0}
                                        : std::vector<double>{25.0, 50.0, 100.0, 200.0};
  const std::vector<serve::BatchPolicy> policies = {
      serve::BatchPolicy::none(), serve::BatchPolicy::size(4),
      serve::BatchPolicy::with_timeout(8, milliseconds(2.0))};

  std::vector<std::vector<std::string>> csv_rows;
  for (double bandwidth : bandwidths) {
    const topology::Topology topo = topology::h2h_cloud(8, gbps(bandwidth), 4);
    const accel::DesignRegistry designs = accel::h2h_designs();
    // One mapping per model per platform; every (rate, policy) cell
    // replays against the same fleet.
    const auto services = serve::plan_services(
        names, topo, designs, /*adaptive=*/false,
        serve::ModelService::Mapper::kMars, mars_config(options));
    std::vector<const serve::ModelService*> refs;
    for (const auto& service : services) refs.push_back(service.get());

    std::cout << "\n--- " << bandwidth << " Gb/s links ---\n"
              << serve::describe_fleet(services);
    Table table({"Rate /rps", "Policy", "p50 /ms", "p95 /ms", "p99 /ms",
                 "Goodput /rps", "SLO att.", "Mean util.", "Mean batch"});
    for (double rate : rates) {
      const std::vector<serve::Request> arrivals =
          serve::poisson_arrivals(mix, rate, duration, options.seed);
      for (const serve::BatchPolicy& policy : policies) {
        serve::SchedulerOptions sched_options;
        sched_options.policy = policy;
        const serve::OnlineScheduler scheduler(topo, refs, sched_options);
        const serve::ServeMetrics metrics = serve::summarize(
            scheduler.run(arrivals), names, milliseconds(kSlOMillis));
        table.add_row({format_double(rate, 0), policy.to_string(),
                       format_double(metrics.latency.p50.millis(), 2),
                       format_double(metrics.latency.p95.millis(), 2),
                       format_double(metrics.latency.p99.millis(), 2),
                       format_double(metrics.goodput_rps, 1),
                       format_double(metrics.slo_attainment * 100.0, 1) + "%",
                       format_double(mean_utilization(metrics) * 100.0, 1) + "%",
                       format_double(metrics.mean_batch, 2)});
        csv_rows.push_back(
            {format_double(bandwidth, 1), format_double(rate, 0),
             policy.to_string(),
             format_double(metrics.latency.p50.millis(), 4),
             format_double(metrics.latency.p95.millis(), 4),
             format_double(metrics.latency.p99.millis(), 4),
             format_double(metrics.throughput_rps, 2),
             format_double(metrics.goodput_rps, 2),
             format_double(metrics.slo_attainment, 4),
             format_double(mean_utilization(metrics), 4),
             format_double(metrics.mean_batch, 3)});
      }
      table.add_separator();
    }
    std::cout << table;
  }
  maybe_write_csv(options,
                  {"bandwidth_gbps", "rate_rps", "policy", "p50_ms", "p95_ms",
                   "p99_ms", "throughput_rps", "goodput_rps", "slo_attainment",
                   "mean_utilization", "mean_batch"},
                  csv_rows);
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  mars::bench::run(mars::bench::parse_options(argc, argv));
  return 0;
}
