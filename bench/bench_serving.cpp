// Experiment S1 — online serving sweep: offered rate x policy x link
// bandwidth for a two-model fleet (facebagnet + resnet50) on an
// 8-accelerator cloud. Policies now cover both families: batching (none,
// size:4, timeout:2:8) and admission control (slo:60, shed:8), so the
// sweep shows the goodput-vs-shed-rate trade load shedding buys under
// overload.
//
// Three extra modes:
//   --autoscale     fleet size x offered rate -> goodput frontier (the
//                   autoscaling planning curve: how many accelerators a
//                   traffic level needs before goodput collapses);
//   --fleet-scale   sharded-serving throughput: ~1M simulated requests
//                   routed across {1,2,4,8} replica groups at --threads
//                   {1,4}, with an in-bench byte-identity gate (any
//                   thread count, and repeat runs, must produce the
//                   identical merged result — exit 1 on mismatch).
//                   --smoke shrinks the stream for CI;
//   (always)        a mapping-cache demonstration first: the same fleet
//                   is planned cold (GA search) and warm (cache load),
//                   and both startup times are reported.
//
// Extension beyond the paper: MARS optimises one inference's makespan;
// this harness measures what its mappings deliver under the multi-tenant
// serving regime the ROADMAP targets — tail latency (p50/p95/p99), SLO
// goodput, shed rate, and per-accelerator utilization, with co-resident
// models contending for the same links and accelerators.
#include "bench_common.h"
#include "bench_tenants.h"

#include <chrono>
#include <filesystem>

#include "mars/serve/cache.h"
#include "mars/serve/fleet.h"
#include "mars/serve/metrics.h"
#include "mars/serve/report.h"
#include "mars/serve/scheduler.h"

namespace mars::bench {
namespace {

constexpr double kSlOMillis = 60.0;

/// The policy grid: batching-only baselines plus the two admission knobs.
std::vector<serve::PolicySpec> policy_grid() {
  return {serve::PolicySpec::parse("none"), serve::PolicySpec::parse("size:4"),
          serve::PolicySpec::parse("timeout:2:8"),
          serve::PolicySpec::parse("slo:" + format_double(kSlOMillis, 0)),
          serve::PolicySpec::parse("shed:8")};
}

/// Plans the 8-accelerator fleet twice against a fresh cache directory:
/// the first pass runs the GA per model and populates the cache, the
/// second rehydrates. Prints both startup times — the cache's reason to
/// exist is the ratio between those two numbers.
void run_cache_demo(const Options& options) {
  const topology::Topology topo = topology::h2h_cloud(8, gbps(4.0), 4);
  const accel::DesignRegistry designs = accel::h2h_designs();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("mars-bench-serving-cache-seed" + std::to_string(options.seed));
  std::filesystem::remove_all(dir);
  const serve::MappingCache cache(dir.string());

  std::cout << "=== Mapping cache: cold vs warm fleet startup ("
            << join(fleet_models(), " + ") << ", cache at " << dir.string()
            << ") ===\n";
  Table table({"Startup", "Mapping source", "Plan time /s"});
  double cold_s = 0.0;
  double warm_s = 0.0;
  for (const bool warm : {false, true}) {
    const auto start = std::chrono::steady_clock::now();
    const auto services =
        serve::plan_services(fleet_models(), topo, designs, /*adaptive=*/false,
                             *bench_engine(options), &cache);
    const double elapsed = seconds_since(start);
    (warm ? warm_s : cold_s) = elapsed;
    std::vector<std::string> sources;
    for (const auto& service : services) {
      sources.push_back(serve::to_string(service->mapping_source()));
    }
    table.add_row({warm ? "warm (2nd run)" : "cold (1st run)",
                   join(sources, ", "), format_double(elapsed, 3)});
  }
  std::cout << table << "Warm startup speedup: "
            << format_double(warm_s > 0.0 ? cold_s / warm_s : 0.0, 1)
            << "x\n\n";
}

void run_rate_sweep(const Options& options) {
  std::cout << "=== Serving sweep: rate x policy x bandwidth ("
            << join(fleet_models(), " + ")
            << ", 8-accelerator cloud, SLO " << kSlOMillis << " ms) ===\n";

  const std::vector<double> mix = {1.0, 1.0};
  const Seconds duration(options.quick ? 2.0 : 5.0);
  const std::vector<double> bandwidths =
      options.quick ? std::vector<double>{4.0} : std::vector<double>{2.0, 4.0, 10.0};
  const std::vector<double> rates = options.quick
                                        ? std::vector<double>{50.0, 150.0}
                                        : std::vector<double>{25.0, 50.0, 100.0, 200.0};
  const std::vector<serve::PolicySpec> policies = policy_grid();

  std::vector<std::vector<std::string>> csv_rows;
  for (double bandwidth : bandwidths) {
    const topology::Topology topo = topology::h2h_cloud(8, gbps(bandwidth), 4);
    const accel::DesignRegistry designs = accel::h2h_designs();
    // One mapping per model per platform; every (rate, policy) cell
    // replays against the same fleet.
    const auto services =
        serve::plan_services(fleet_models(), topo, designs, /*adaptive=*/false,
                             *bench_engine(options));
    const std::vector<const serve::ModelService*> refs = as_refs(services);

    std::cout << "\n--- " << bandwidth << " Gb/s links ---\n"
              << serve::describe_fleet(services);
    Table table({"Rate /rps", "Policy", "p50 /ms", "p95 /ms", "p99 /ms",
                 "Goodput /rps", "Shed rate", "SLO att.", "Mean util.",
                 "Mean batch"});
    for (double rate : rates) {
      const std::vector<serve::Request> arrivals =
          serve::poisson_arrivals(mix, rate, duration, options.seed);
      for (const serve::PolicySpec& policy : policies) {
        serve::SchedulerOptions sched_options;
        sched_options.policy = policy.batch;
        sched_options.admission = policy.admission;
        const serve::OnlineScheduler scheduler(topo, refs, sched_options);
        const serve::ServeMetrics metrics = serve::summarize(
            scheduler.run(arrivals), fleet_models(), milliseconds(kSlOMillis));
        table.add_row({format_double(rate, 0), policy.to_string(),
                       format_double(metrics.latency.p50.millis(), 2),
                       format_double(metrics.latency.p95.millis(), 2),
                       format_double(metrics.latency.p99.millis(), 2),
                       format_double(metrics.goodput_rps, 1),
                       format_double(metrics.shed_rate * 100.0, 1) + "%",
                       format_double(metrics.slo_attainment * 100.0, 1) + "%",
                       format_double(mean_utilization(metrics) * 100.0, 1) + "%",
                       format_double(metrics.mean_batch, 2)});
        csv_rows.push_back(
            {format_double(bandwidth, 1), format_double(rate, 0),
             policy.to_string(),
             format_double(metrics.latency.p50.millis(), 4),
             format_double(metrics.latency.p95.millis(), 4),
             format_double(metrics.latency.p99.millis(), 4),
             format_double(metrics.throughput_rps, 2),
             format_double(metrics.goodput_rps, 2),
             std::to_string(metrics.offered),
             std::to_string(metrics.rejected),
             format_double(metrics.shed_rate, 4),
             format_double(metrics.slo_attainment, 4),
             format_double(mean_utilization(metrics), 4),
             format_double(metrics.mean_batch, 3)});
      }
      table.add_separator();
    }
    std::cout << table;
  }
  maybe_write_csv(options,
                  {"bandwidth_gbps", "rate_rps", "policy", "p50_ms", "p95_ms",
                   "p99_ms", "throughput_rps", "goodput_rps", "offered",
                   "rejected", "shed_rate", "slo_attainment",
                   "mean_utilization", "mean_batch"},
                  csv_rows);
}

/// Autoscaling frontier: for each fleet size, sweep the offered rate and
/// report goodput under `none` vs SLO-aware admission. Reading a column
/// top-to-bottom answers "how many accelerators does this traffic level
/// need"; comparing the two policies shows what shedding salvages once
/// the fleet is undersized.
void run_autoscale_sweep(const Options& options) {
  std::cout << "=== Autoscaling sweep: fleet size x rate -> goodput frontier ("
            << join(fleet_models(), " + ") << ", 4 Gb/s cloud, SLO "
            << kSlOMillis << " ms) ===\n";

  const std::vector<double> mix = {1.0, 1.0};
  const Seconds duration(options.quick ? 2.0 : 5.0);
  const std::vector<int> fleet_sizes = options.quick
                                           ? std::vector<int>{2, 4}
                                           : std::vector<int>{2, 4, 8, 12};
  const std::vector<double> rates = options.quick
                                        ? std::vector<double>{50.0, 150.0}
                                        : std::vector<double>{50.0, 100.0,
                                                              200.0, 400.0};
  const std::vector<serve::PolicySpec> policies = {
      serve::PolicySpec::parse("none"),
      serve::PolicySpec::parse("slo:" + format_double(kSlOMillis, 0))};

  // One cache for the whole sweep: each fleet size is a distinct
  // fingerprint, so re-running the bench (same seed) replans nothing.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("mars-bench-autoscale-cache-seed" + std::to_string(options.seed));
  const serve::MappingCache cache(dir.string());

  std::vector<std::vector<std::string>> csv_rows;
  Table table({"Fleet", "Rate /rps", "Policy", "p99 /ms", "Throughput /rps",
               "Goodput /rps", "Shed rate", "SLO att.", "Mean util."});
  for (int size : fleet_sizes) {
    const topology::Topology topo = topology::h2h_cloud(size, gbps(4.0), 4);
    const accel::DesignRegistry designs = accel::h2h_designs();
    const auto plan_start = std::chrono::steady_clock::now();
    const auto services =
        serve::plan_services(fleet_models(), topo, designs, /*adaptive=*/false,
                             *bench_engine(options), &cache);
    std::cout << "\nfleet " << size << ": planned in "
              << format_double(seconds_since(plan_start), 3) << " s ("
              << serve::to_string(services[0]->mapping_source()) << ")\n";
    const std::vector<const serve::ModelService*> refs = as_refs(services);

    for (double rate : rates) {
      const std::vector<serve::Request> arrivals =
          serve::poisson_arrivals(mix, rate, duration, options.seed);
      for (const serve::PolicySpec& policy : policies) {
        serve::SchedulerOptions sched_options;
        sched_options.policy = policy.batch;
        sched_options.admission = policy.admission;
        const serve::OnlineScheduler scheduler(topo, refs, sched_options);
        const serve::ServeMetrics metrics = serve::summarize(
            scheduler.run(arrivals), fleet_models(), milliseconds(kSlOMillis));
        table.add_row({std::to_string(size), format_double(rate, 0),
                       policy.to_string(),
                       format_double(metrics.latency.p99.millis(), 2),
                       format_double(metrics.throughput_rps, 1),
                       format_double(metrics.goodput_rps, 1),
                       format_double(metrics.shed_rate * 100.0, 1) + "%",
                       format_double(metrics.slo_attainment * 100.0, 1) + "%",
                       format_double(mean_utilization(metrics) * 100.0, 1) +
                           "%"});
        csv_rows.push_back(
            {std::to_string(size), format_double(rate, 0), policy.to_string(),
             format_double(metrics.latency.p99.millis(), 4),
             format_double(metrics.throughput_rps, 2),
             format_double(metrics.goodput_rps, 2),
             std::to_string(metrics.offered),
             std::to_string(metrics.rejected),
             format_double(metrics.shed_rate, 4),
             format_double(metrics.slo_attainment, 4),
             format_double(mean_utilization(metrics), 4)});
      }
    }
    table.add_separator();
  }
  std::cout << '\n' << table;
  maybe_write_csv(options,
                  {"fleet_size", "rate_rps", "policy", "p99_ms",
                   "throughput_rps", "goodput_rps", "offered", "rejected",
                   "shed_rate", "slo_attainment", "mean_utilization"},
                  csv_rows);
}

/// Fleet-scale throughput: one Poisson request stream routed across
/// {1,2,4,8} replica groups (each a 4-accelerator cloud running the
/// two-model fleet), at worker-thread counts {1,4}. Admission control
/// (shed:8) keeps every configuration saturated-but-bounded, so the
/// bench measures the router + per-shard event loop, not unbounded
/// queue growth. Every (shards) row asserts the merged result is
/// byte-identical across thread counts and across a repeat run; any
/// mismatch fails the bench (exit 1) — this is the CI determinism gate.
int run_fleet_scale(const Options& options, bool smoke) {
  const double rate = smoke ? 25000.0 : 100000.0;
  const Seconds duration(smoke ? 2.0 : 10.0);
  std::cout << "=== Fleet-scale sharded serving: ~"
            << static_cast<long long>(rate * duration.count())
            << " simulated requests (" << join(fleet_models(), " + ")
            << ", 4-accelerator replica groups, policy shed:8) ===\n";

  // One replica group's topology; every shard is a copy, so all shard
  // counts share the same planned services.
  const topology::Topology group = topology::h2h_cloud(4, gbps(4.0), 4);
  const accel::DesignRegistry designs = accel::h2h_designs();
  const auto services =
      serve::plan_services(fleet_models(), group, designs, /*adaptive=*/false,
                           *bench_engine(options, "baseline"));
  const std::vector<const serve::ModelService*> refs = as_refs(services);

  const std::vector<double> mix = {1.0, 1.0};
  const std::vector<serve::Request> arrivals =
      serve::poisson_arrivals(mix, rate, duration, options.seed);
  const serve::PolicySpec policy = serve::PolicySpec::parse("shed:8");

  bool all_identical = true;
  std::vector<std::vector<std::string>> csv_rows;
  Table table({"Shards", "Threads", "Offered", "Served", "Shed rate",
               "p99 /ms", "Wall /s", "Wall req/s", "Identical"});
  for (int shards : {1, 2, 4, 8}) {
    std::optional<std::uint64_t> reference;
    for (int threads : {1, 4}) {
      serve::FleetOptions fleet_options;
      fleet_options.shards = shards;
      fleet_options.threads = threads;
      fleet_options.scheduler.policy = policy.batch;
      fleet_options.scheduler.admission = policy.admission;
      const serve::FleetScheduler scheduler(group, refs, fleet_options);

      const auto start = std::chrono::steady_clock::now();
      const serve::ServeResult result = scheduler.run(arrivals);
      const double wall = seconds_since(start);
      std::uint64_t digest = result_digest(result);
      // Repeat the 4-thread run: same seed, same bytes, or the gate fails.
      if (threads == 4) {
        const std::uint64_t again = result_digest(scheduler.run(arrivals));
        if (again != digest) {
          std::cerr << "FLEET-SCALE MISMATCH: shards=" << shards
                    << " threads=4 repeat run diverged\n";
          all_identical = false;
        }
      }
      if (!reference) reference = digest;
      const bool identical = digest == *reference;
      if (!identical) {
        std::cerr << "FLEET-SCALE MISMATCH: shards=" << shards
                  << " threads=" << threads
                  << " diverged from the threads=1 reference\n";
        all_identical = false;
      }

      const serve::ServeMetrics metrics = serve::summarize(
          result, fleet_models(), milliseconds(kSlOMillis));
      const double wall_rps =
          wall > 0.0 ? static_cast<double>(metrics.offered) / wall : 0.0;
      table.add_row({std::to_string(shards), std::to_string(threads),
                     std::to_string(metrics.offered),
                     std::to_string(metrics.requests),
                     format_double(metrics.shed_rate * 100.0, 1) + "%",
                     format_double(metrics.latency.p99.millis(), 2),
                     format_double(wall, 3), format_double(wall_rps, 0),
                     identical ? "yes" : "NO"});
      csv_rows.push_back(
          {std::to_string(shards), std::to_string(threads),
           std::to_string(metrics.offered), std::to_string(metrics.requests),
           std::to_string(metrics.rejected),
           format_double(metrics.shed_rate, 4),
           format_double(metrics.latency.p99.millis(), 4),
           format_double(metrics.throughput_rps, 2), format_double(wall, 4),
           format_double(wall_rps, 0), identical ? "1" : "0"});
    }
    table.add_separator();
  }
  std::cout << table;
  maybe_write_csv(options,
                  {"shards", "threads", "offered", "served", "rejected",
                   "shed_rate", "p99_ms", "sim_throughput_rps", "wall_s",
                   "wall_rps", "identical"},
                  csv_rows);
  if (!all_identical) {
    std::cerr << "fleet-scale determinism gate FAILED\n";
    return 1;
  }
  std::cout << "determinism gate: all shard/thread configurations "
               "byte-identical\n";
  return 0;
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  bool autoscale = false;
  bool fleet_scale = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--autoscale") autoscale = true;
    if (arg == "--fleet-scale") fleet_scale = true;
    if (arg == "--smoke") smoke = true;
  }
  const mars::bench::Options options = mars::bench::parse_options(argc, argv);
  if (fleet_scale) return mars::bench::run_fleet_scale(options, smoke);
  if (autoscale) {
    mars::bench::run_autoscale_sweep(options);
    return 0;
  }
  mars::bench::run_cache_demo(options);
  mars::bench::run_rate_sweep(options);
  return 0;
}
