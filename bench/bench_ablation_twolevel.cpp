// Ablation A1 — the paper's central algorithmic claim (Section V): "simply
// tuning [everything] in one pass of the search is easy to fall into local
// optimums". Compares the two-level GA against a flat single-level GA that
// decides sets, designs AND per-layer strategies in one genome, at a
// comparable evaluation budget.
#include "bench_common.h"

namespace mars::bench {
namespace {

void run(const Options& options) {
  std::cout << "=== Ablation A1: two-level GA vs flat single-level GA ===\n";
  Table table({"Model", "Two-level /ms", "Flat /ms", "Flat vs two-level"});
  std::vector<std::vector<std::string>> csv_rows;

  for (const char* model : {"alexnet", "vgg16", "resnet34"}) {
    const auto bundle = f1_bundle(model);

    core::MarsConfig two = mars_config(options);
    core::Mars mars_two(bundle->problem, two);
    const Seconds two_level = mars_two.search().summary.simulated;

    core::MarsConfig flat = mars_config(options);
    flat.two_level = false;
    // The flat genome is much larger; give it the same generation budget
    // (the paper's point is that budget alone does not rescue it).
    core::Mars mars_flat(bundle->problem, flat);
    const Seconds flat_latency = mars_flat.search().summary.simulated;

    table.add_row({model, format_double(two_level.millis(), 3),
                   format_double(flat_latency.millis(), 3),
                   signed_percent(flat_latency / two_level - 1.0, 1)});
    csv_rows.push_back({model, format_double(two_level.millis(), 4),
                        format_double(flat_latency.millis(), 4)});
  }
  std::cout << table
            << "(positive % = the flat search is slower: the division into "
               "two levels pays off)\n";
  maybe_write_csv(options, {"model", "two_level_ms", "flat_ms"}, csv_rows);
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  mars::bench::run(mars::bench::parse_options(argc, argv));
  return 0;
}
