// Validation A4 — analytical cost model vs event-driven simulator.
// The GA climbs the closed-form model; the tables report the simulator.
// This harness quantifies the gap (error distribution + ranking agreement)
// across a randomized sweep of mappings, per model.
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "mars/util/rng.h"

namespace mars::bench {
namespace {

core::Mapping random_mapping(const Bundle& bundle, Rng& rng) {
  const int n = bundle.spine.size();
  const std::vector<topology::AccSetCandidate> candidates =
      topology::accset_candidates(bundle.topo);
  std::vector<double> priorities;
  priorities.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    priorities.push_back(rng.uniform());
  }
  const std::vector<topology::AccMask> partition =
      topology::decode_partition(bundle.topo, candidates, priorities);

  // Random contiguous allocation over the chosen sets.
  std::vector<int> cuts{0, n};
  for (std::size_t i = 1; i < partition.size(); ++i) {
    cuts.push_back(rng.uniform_int(0, n));
  }
  std::sort(cuts.begin(), cuts.end());

  core::Mapping mapping;
  for (std::size_t i = 0; i < partition.size(); ++i) {
    core::LayerAssignment set;
    set.accs = partition[i];
    set.design = rng.uniform_int(0, bundle.designs.size() - 1);
    set.begin = cuts[i];
    set.end = cuts[i + 1];
    if (set.begin == set.end) continue;
    const int p = set.num_accs();
    for (int l = set.begin; l < set.end; ++l) {
      const auto options =
          parallel::enumerate_strategies(bundle.spine.node(l).shape, p, 3);
      set.strategies.push_back(options[rng.index(options.size())]);
    }
    mapping.sets.push_back(std::move(set));
  }
  // Fix coverage gaps caused by duplicate cuts: extend the last set.
  if (mapping.sets.empty() || mapping.sets.back().end != n ||
      mapping.sets.front().begin != 0) {
    return random_mapping(bundle, rng);
  }
  for (std::size_t i = 1; i < mapping.sets.size(); ++i) {
    if (mapping.sets[i].begin != mapping.sets[i - 1].end) {
      return random_mapping(bundle, rng);
    }
  }
  return mapping;
}

void run(const Options& options) {
  std::cout << "=== A4: analytical model vs event-driven simulator ===\n";
  Table table({"Model", "Samples", "Median |err|", "P90 |err|", "Max |err|",
               "Ranking agreement"});
  std::vector<std::vector<std::string>> csv_rows;

  const int samples = options.quick ? 10 : 40;
  for (const char* model : {"alexnet", "vgg16", "resnet34", "casia_surf"}) {
    const auto bundle = f1_bundle(model);
    const core::MappingEvaluator evaluator(bundle->problem);
    Rng rng(options.seed + 99);

    std::vector<double> errors;
    std::vector<std::pair<double, double>> points;  // (analytic, simulated)
    for (int s = 0; s < samples; ++s) {
      const core::Mapping mapping = random_mapping(*bundle, rng);
      const core::EvaluationSummary summary = evaluator.evaluate(mapping);
      const double a = summary.analytic_makespan.count();
      const double m = summary.simulated.count();
      errors.push_back(std::abs(m - a) / m);
      points.emplace_back(a, m);
    }
    std::sort(errors.begin(), errors.end());

    int checked = 0;
    int agreed = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::size_t j = i + 1; j < points.size(); ++j) {
        if (std::max(points[i].first, points[j].first) <
            1.2 * std::min(points[i].first, points[j].first)) {
          continue;  // too close to call
        }
        ++checked;
        if ((points[i].first < points[j].first) ==
            (points[i].second < points[j].second)) {
          ++agreed;
        }
      }
    }
    const double median = errors[errors.size() / 2];
    const double p90 = errors[errors.size() * 9 / 10];
    const double agreement = checked > 0 ? 100.0 * agreed / checked : 100.0;
    table.add_row({model, std::to_string(samples),
                   format_double(median * 100.0, 1) + "%",
                   format_double(p90 * 100.0, 1) + "%",
                   format_double(errors.back() * 100.0, 1) + "%",
                   format_double(agreement, 1) + "% of " +
                       std::to_string(checked) + " pairs"});
    csv_rows.push_back({model, format_double(median, 4), format_double(p90, 4),
                        format_double(errors.back(), 4),
                        format_double(agreement, 2)});
  }
  std::cout << table
            << "(err = |simulated - analytic| / simulated; ranking agreement "
               "over pairs with a >20% analytic gap)\n";
  maybe_write_csv(options,
                  {"model", "median_err", "p90_err", "max_err",
                   "ranking_agreement_percent"},
                  csv_rows);
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  mars::bench::run(mars::bench::parse_options(argc, argv));
  return 0;
}
