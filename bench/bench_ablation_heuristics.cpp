// Ablation A3 — the Section V heuristics: profiled design-gene
// initialisation, baseline seeding, and the edge-removal AccSet candidate
// family. Each is switched off individually; the table reports both final
// quality and the generation at which the search reached within 5% of its
// final value (search efficiency).
#include "bench_common.h"

namespace mars::bench {
namespace {

int generations_to_95_percent(const ga::GaResult& result) {
  if (result.history.empty()) return 0;
  const double target = result.history.back() * 1.05;
  for (std::size_t g = 0; g < result.history.size(); ++g) {
    if (result.history[g] <= target) return static_cast<int>(g);
  }
  return static_cast<int>(result.history.size()) - 1;
}

void run(const Options& options) {
  std::cout << "=== Ablation A3: search heuristics (vgg16 on F1) ===\n";
  const auto bundle = f1_bundle("vgg16");

  struct Variant {
    const char* label;
    bool profiled_init;
    bool seed_baseline;
    bool heuristic_candidates;
  };
  const Variant variants[] = {
      {"full heuristics", true, true, true},
      {"no profiled init", false, true, true},
      {"no baseline seed", true, false, true},
      {"no init at all", false, false, true},
      {"trivial candidates", true, true, false},
  };

  Table table({"Variant", "Latency /ms", "Gens to 95%", "Evaluations"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const Variant& v : variants) {
    // Deliberately tight budget: the heuristics' value is reaching a good
    // mapping EARLY; with a lavish budget every variant converges.
    core::MarsConfig config = mars_config(options);
    config.first_ga.population = options.quick ? 8 : 12;
    config.first_ga.generations = options.quick ? 6 : 12;
    config.first_ga.stall_generations = 0;  // comparable curves
    config.profiled_init = v.profiled_init;
    config.seed_baseline = v.seed_baseline;
    config.heuristic_candidates = v.heuristic_candidates;
    core::Mars mars(bundle->problem, config);
    const core::MarsResult result = mars.search();
    table.add_row({v.label,
                   format_double(result.summary.simulated.millis(), 3),
                   std::to_string(generations_to_95_percent(result.first_level)),
                   std::to_string(result.first_level.evaluations)});
    csv_rows.push_back({v.label,
                        format_double(result.summary.simulated.millis(), 4),
                        std::to_string(generations_to_95_percent(result.first_level))});
  }
  std::cout << table
            << "(the heuristics buy faster convergence and/or better final "
               "mappings; 'trivial candidates' removes the edge-removal "
               "family so only whole-system/singleton sets exist)\n";
  maybe_write_csv(options, {"variant", "latency_ms", "gens_to_95"}, csv_rows);
}

}  // namespace
}  // namespace mars::bench

int main(int argc, char** argv) {
  mars::bench::run(mars::bench::parse_options(argc, argv));
  return 0;
}
