// mars_map — command-line front end to the MARS mapping framework.
//
//   mars_map models
//       List the model zoo.
//   mars_map profile --model vgg16
//       Per-layer design profile (Table II style).
//   mars_map map --model resnet34 [--topology f1 | cloud:<n>:<gbps>]
//                [--mapper ga|anneal|random|baseline|portfolio|race:...]
//                [--search-budget MS] [--search-evals N] [--threads N]
//                [--seed N] [--json out.json] [--quick] [--fixed]
//       Run a mapping search (default: the two-level GA) and print (or
//       export) the mapping with its provenance. --threads fans fitness
//       evaluation across a worker pool (identical results, less wall
//       clock); --mapper portfolio races ga+anneal+random under one
//       budget and keeps the winner.
//   mars_map baseline --model resnet34
//       The Herald-extended baseline mapping and latency.
//   mars_map throughput --model resnet34 --batch 8
//       Pipelined multi-image throughput of the searched mapping.
//   mars_map serve --model facebagnet --model resnet50 --rate 200 --duration 10
//       Online multi-tenant serving simulation over the shared topology.
//       --model takes name[:weight[:sloMS]] — a per-model SLO overrides
//       --slo for both the goodput report and slo: admission.
//       --mapping-cache DIR persists searched mappings across runs;
//       --policy composes batching and admission ("size:4+slo:60");
//       --replay CSV replays a recorded arrival trace; --shards N splits
//       the fleet into N replica groups behind a deterministic router
//       (docs/SERVING.md), run in parallel under --threads;
//       --shard-models 'a+b/c' pins each replica group to a subset of the
//       models (one '/'-separated entry per shard, '+'-separated names).
//   mars_map comap --model facebagnet --model resnet50 --rate 150
//       Joint multi-tenant co-mapping (docs/COMAP.md): searches the
//       tenants together under a serving-objective fitness (seeded
//       rollouts of the shared request stream) and reports the joint
//       vs independent SLO goodput. --encoding partition|interleave
//       picks the composite genome; --rollout MS sets the rollout
//       horizon; budget/thread/cache/trace flags work as in map/serve.
//   mars_map explore --model alexnet [--space SPEC] [--objectives LIST]
//       Hardware-mapping co-search (docs/EXPLORE.md): evolves hardware
//       points (interconnect family, accelerator count, link bandwidth,
//       design menu) with an NSGA-II loop, pricing each point by an
//       inner mapping search, and prints the Pareto front over
//       --objectives (default makespan,energy,cost). --space uses the
//       axis grammar "families=clique,ring;accs=2,4;bw=8;menus=full";
//       --front-size truncates the printed front by crowding distance;
//       --points / --search-budget bound the outer search; --search-evals
//       bounds each inner search; --csv/--json export the front
//       byte-identically at any --threads and cache state.
//   mars_map warm --models a,b,c --mapping-cache DIR
//       Pre-populate the mapping cache: plan every listed model on the
//       configured (topology, mapper) and store the results, so later
//       serve/comap startups are cache hits.
//
// map, throughput and serve all accept `--trace FILE.json` (Chrome Trace
// Event / Perfetto timeline of the run) and `--metrics FILE.json` (counter
// registry snapshot). Both write their files after the command finishes and
// report to stderr only — stdout is byte-identical with and without them.
//
// The full flag reference lives in docs/CLI.md; the serving data flow in
// docs/SERVING.md; clock domains and the trace determinism contract in
// docs/OBSERVABILITY.md.
//
// Exit code 0 on success, 1 on usage errors, 2 on runtime failures.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mars/accel/profiler.h"
#include "mars/comap/engine.h"
#include "mars/core/evaluator.h"
#include "mars/core/serialize.h"
#include "mars/explore/engine.h"
#include "mars/graph/models/models.h"
#include "mars/graph/parser.h"
#include "mars/obs/metrics.h"
#include "mars/obs/trace.h"
#include "mars/plan/engines.h"
#include "mars/plan/planner.h"
#include "mars/serve/cache.h"
#include "mars/serve/fleet.h"
#include "mars/serve/metrics.h"
#include "mars/serve/report.h"
#include "mars/serve/scheduler.h"
#include "mars/topology/presets.h"
#include "mars/util/strings.h"
#include "mars/util/table.h"

namespace {

using namespace mars;

struct Args {
  std::string command;
  // Options in CLI order; repeatable flags (--model) keep every occurrence.
  std::vector<std::pair<std::string, std::string>> options;

  bool flag(const std::string& name) const {
    for (const auto& [key, value] : options) {
      if (key == name) return true;
    }
    return false;
  }
  std::string get(const std::string& name, const std::string& fallback) const {
    std::string result = fallback;
    for (const auto& [key, value] : options) {
      if (key == name) result = value;  // last occurrence wins
    }
    return result;
  }
  std::vector<std::string> all(const std::string& name) const {
    std::vector<std::string> values;
    for (const auto& [key, value] : options) {
      if (key == name) values.push_back(value);
    }
    return values;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options.emplace_back(key, argv[++i]);
    } else {
      args.options.emplace_back(key, "1");
    }
  }
  return args;
}

/// Whole-string numeric flag parse; anything else is a usage error.
double number_option(const Args& args, const std::string& name,
                     const std::string& fallback) {
  const std::string text = args.get(name, fallback);
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != text.size()) {
    throw InvalidArgument("--" + name + " needs a number, got '" + text + "'");
  }
  return value;
}

int int_option(const Args& args, const std::string& name,
               const std::string& fallback) {
  const double value = number_option(args, name, fallback);
  const int truncated = static_cast<int>(value);
  if (static_cast<double>(truncated) != value) {
    throw InvalidArgument("--" + name + " needs an integer, got '" +
                          args.get(name, fallback) + "'");
  }
  return truncated;
}

/// Per-command observability session: `--trace FILE.json` installs a
/// TraceRecorder, and a MetricsRegistry is always installed so component
/// destructors have somewhere to flush their counters. Declare this FIRST
/// in a command so every component destructs — and flushes — before this
/// destructor uninstalls and exports. Everything the session prints goes
/// to stderr: stdout stays byte-identical with and without --trace.
struct ObsSession {
  std::optional<obs::TraceRecorder> recorder;
  obs::MetricsRegistry registry;
  std::string trace_path;
  std::string metrics_path;

  explicit ObsSession(const Args& args) {
    // Validate both paths before installing anything: a throw from here
    // must not leave a global pointer at a dying recorder.
    if (args.flag("trace")) {
      trace_path = args.get("trace", "");
      if (trace_path == "1") {
        throw InvalidArgument("--trace needs an output file path (.json)");
      }
    }
    if (args.flag("metrics")) {
      metrics_path = args.get("metrics", "");
      if (metrics_path == "1") {
        throw InvalidArgument("--metrics needs an output file path (.json)");
      }
    }
    if (!trace_path.empty()) {
      recorder.emplace();
      obs::install_trace(&*recorder);
    }
    obs::install_metrics(&registry);
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  ~ObsSession() {
    obs::install_metrics(nullptr);
    if (recorder) obs::install_trace(nullptr);
    if (!trace_path.empty()) {
      std::ofstream file(trace_path);
      recorder->write(file);
      std::clog << "wrote trace (" << recorder->event_count()
                << " events) to " << trace_path << '\n';
    }
    if (!metrics_path.empty()) {
      std::ofstream file(metrics_path);
      file << registry.to_json().dump() << '\n';
      std::clog << "wrote metrics to " << metrics_path << '\n';
    }
    // Counter snapshot as stderr provenance whenever observability was
    // asked for (quiet otherwise — normal runs keep a clean stderr).
    if (recorder || !metrics_path.empty()) {
      for (const auto& [name, value] : registry.counter_values()) {
        std::clog << "metric " << name << "=" << value << '\n';
      }
    }
  }
};

/// Builds the topology named by `--topology`. `size_override > 0` rebuilds
/// the same family at a different accelerator count — how `serve --shards`
/// derives one replica group from the fleet spec. Only the sizable
/// families (cloud, ring) can be resized; f1 is a fixed preset.
topology::Topology make_topology(const Args& args, int size_override = 0) {
  const std::string spec = args.get("topology", "f1");
  if (spec == "f1") {
    if (size_override > 0) {
      throw InvalidArgument(
          "--shards > 1 needs a sizable topology (cloud:<n>:<gbps> or "
          "ring:<n>:<gbps>); f1 is a fixed preset");
    }
    return topology::f1_16xlarge();
  }
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.size() == 3 && parts[0] == "cloud") {
    const int n = size_override > 0 ? size_override : std::stoi(parts[1]);
    return topology::h2h_cloud(n, gbps(std::stod(parts[2])),
                               args.flag("fixed") ? 4 : 0);
  }
  if (parts.size() == 3 && parts[0] == "ring") {
    const int n = size_override > 0 ? size_override : std::stoi(parts[1]);
    return topology::ring(n, gbps(std::stod(parts[2])), gbps(2.0));
  }
  throw InvalidArgument("unknown topology '" + spec +
                        "' (use f1 | cloud:<n>:<gbps> | ring:<n>:<gbps>)");
}

/// `--threads N` -> fitness-evaluation worker count. Execution-only (the
/// mapping is byte-identical at any value); 0/negative are named usage
/// errors, matching the `--rate`/`--slo` convention.
int thread_count(const Args& args) {
  const int threads = int_option(args, "threads", "1");
  if (threads < 1) {
    throw InvalidArgument("--threads must be >= 1, got '" +
                          args.get("threads", "1") + "'");
  }
  return threads;
}

core::MarsConfig make_config(const Args& args) {
  core::MarsConfig config;
  config.seed = std::stoull(args.get("seed", "1"));
  config.threads = thread_count(args);
  if (args.flag("quick")) {
    config.first_ga.population = 12;
    config.first_ga.generations = 8;
    config.second.ga.population = 8;
    config.second.ga.generations = 6;
  }
  return config;
}

/// `--mapper NAME` -> a search engine tuned by `config`. Unknown names are
/// usage errors that name the flag, the value, and the valid set; engine
/// config-validation errors pass through with their own field messages.
std::unique_ptr<plan::SearchEngine> make_engine(const Args& args,
                                                const core::MarsConfig& config) {
  const std::string name = args.get("mapper", "ga");
  const std::vector<std::string>& names = plan::engine_names();
  if (name != "mars" && name.rfind("race:", 0) != 0 &&
      std::find(names.begin(), names.end(), name) == names.end()) {
    throw InvalidArgument(
        "unknown --mapper '" + name +
        "' (use ga | anneal | random | baseline | portfolio | "
        "race:<m>+<m>[,MS])");
  }
  return plan::make_engine(name, config);
}

/// `--search-budget MS` (wall clock) and `--search-evals N` (evaluation
/// count); 0 (the default) leaves the engine's own schedule unbounded.
plan::Budget make_budget(const Args& args) {
  plan::Budget budget;
  const double ms = number_option(args, "search-budget", "0");
  if (ms < 0.0) {
    throw InvalidArgument("--search-budget must be >= 0 ms, got '" +
                          args.get("search-budget", "0") + "'");
  }
  budget.wall_clock = milliseconds(ms);
  const int evals = int_option(args, "search-evals", "0");
  if (evals < 0) {
    throw InvalidArgument("--search-evals must be >= 0, got '" +
                          args.get("search-evals", "0") + "'");
  }
  budget.max_evaluations = evals;
  return budget;
}

int cmd_models() {
  Table table({"Model", "#Convs", "Mappable", "#Params", "MACs"});
  for (const std::string& name : graph::models::zoo_names()) {
    const graph::Graph model = graph::models::by_name(name);
    table.add_row({name, std::to_string(model.num_convs()),
                   std::to_string(model.num_spine_layers()),
                   si_count(model.total_params()), si_count(model.total_macs())});
  }
  std::cout << table;
  return 0;
}

int cmd_profile(const Args& args) {
  const graph::Graph model =
      graph::models::by_name(args.get("model", "resnet34"));
  const graph::ConvSpine spine = graph::ConvSpine::extract(model);
  const accel::DesignRegistry designs = accel::table2_designs();
  const accel::ProfileMatrix profile(designs, spine);

  Table table({"Layer", "Shape", "Best design", "Cycles", "Utilization"});
  for (int l = 0; l < spine.size(); ++l) {
    const accel::DesignId best = profile.best_design(l);
    table.add_row({spine.node(l).name, graph::to_string(spine.node(l).shape),
                   designs.design(best).name(),
                   si_count(profile.at(best, l).cycles, 1),
                   format_double(profile.at(best, l).utilization * 100.0, 1) +
                       "%"});
  }
  std::cout << table;
  return 0;
}

/// The system side (owned here) plus the model side (owned by the
/// Planner): the whole former graph/spine/Problem assembly chain.
struct LoadedProblem {
  topology::Topology topo;
  accel::DesignRegistry designs;
  plan::Planner planner;

  static graph::Graph load_model(const Args& args) {
    if (args.flag("model-file")) {
      return graph::parse_model_file(args.get("model-file", ""));
    }
    return graph::models::by_name(args.get("model", "resnet34"));
  }

  explicit LoadedProblem(const Args& args)
      : topo(make_topology(args)),
        designs(args.flag("fixed") ? accel::h2h_designs()
                                   : accel::table2_designs()),
        planner(load_model(args), topo, designs, !args.flag("fixed")) {}
};

int cmd_map(const Args& args) {
  const ObsSession session(args);
  LoadedProblem lp(args);
  const std::unique_ptr<plan::SearchEngine> engine =
      make_engine(args, make_config(args));
  const plan::PlanResult result = lp.planner.plan(*engine, make_budget(args));
  const bool adaptive = lp.planner.problem().adaptive;

  std::cout << core::describe(result.mapping, lp.planner.spine(), lp.designs,
                              adaptive)
            << "simulated latency: " << result.summary.simulated.millis()
            << " ms (memory " << (result.summary.memory_ok ? "ok" : "VIOLATED")
            << ")\n"
            << "search: engine " << result.provenance.engine << ", "
            << result.provenance.evaluations << " evaluations in "
            << format_double(result.provenance.elapsed.count(), 3)
            << " s, stopped: " << plan::to_string(result.provenance.stopped)
            << '\n';
  if (!result.provenance.winner.empty()) {
    std::cout << "portfolio winner: " << result.provenance.winner << " (";
    for (std::size_t i = 0; i < result.provenance.members.size(); ++i) {
      const plan::Provenance& member = result.provenance.members[i];
      std::cout << (i > 0 ? ", " : "") << member.engine << " "
                << member.evaluations << " evals";
    }
    std::cout << ")\n";
  }

  if (args.flag("json")) {
    JsonValue out = JsonValue::object();
    out.set("mapping", core::to_json(result.mapping, lp.planner.spine(),
                                     lp.designs, adaptive));
    out.set("summary", core::to_json(result.summary));
    out.set("provenance", plan::to_json(result.provenance));
    std::ofstream file(args.get("json", "mapping.json"));
    file << out.dump() << '\n';
    std::cout << "wrote " << args.get("json", "mapping.json") << '\n';
  }
  return 0;
}

int cmd_baseline(const Args& args) {
  LoadedProblem lp(args);
  const plan::BaselineEngine engine;
  const plan::PlanResult result = lp.planner.plan(engine);
  std::cout << core::describe(result.mapping, lp.planner.spine(), lp.designs,
                              lp.planner.problem().adaptive)
            << "simulated latency: " << result.summary.simulated.millis()
            << " ms\n";
  return 0;
}

int cmd_throughput(const Args& args) {
  const ObsSession session(args);
  LoadedProblem lp(args);
  const int batch = int_option(args, "batch", "8");
  const std::unique_ptr<plan::SearchEngine> engine =
      make_engine(args, make_config(args));
  const plan::PlanResult result = lp.planner.plan(*engine, make_budget(args));
  const core::MappingEvaluator evaluator(lp.planner.problem());
  const auto throughput = evaluator.evaluate_throughput(result.mapping, batch);
  std::cout << "batch " << batch << ": " << throughput.makespan.millis()
            << " ms total, " << format_double(throughput.images_per_second, 1)
            << " images/s, pipeline speedup "
            << format_double(throughput.pipeline_speedup, 2) << "x\n";
  return 0;
}

/// The tenant mix from repeated `--model name[:weight[:sloMS]]` flags.
/// `slos` holds zero for models without their own objective (they fall
/// back to the shared `--slo`).
struct ModelMix {
  std::vector<std::string> names;
  std::vector<double> weights;
  std::vector<Seconds> slos;

  [[nodiscard]] bool has_model_slos() const {
    return std::any_of(slos.begin(), slos.end(),
                       [](Seconds s) { return s.count() > 0.0; });
  }
};

/// Parses every `--model` occurrence; numeric fields are whole-string
/// parses with named errors, matching the `--rate`/`--slo` convention.
ModelMix parse_model_mix(const Args& args) {
  ModelMix mix;
  const auto parse_number = [](const std::string& text, double& out) {
    std::size_t consumed = 0;
    try {
      out = std::stod(text, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    return consumed == text.size();
  };
  for (const std::string& spec : args.all("model")) {
    const std::vector<std::string> parts = split(spec, ':');
    if (parts.empty() || parts[0].empty() || parts.size() > 3) {
      throw InvalidArgument("bad --model spec '" + spec +
                            "' (use name[:weight[:sloMS]])");
    }
    double weight = 1.0;
    if (parts.size() >= 2 &&
        (!parse_number(parts[1], weight) || weight < 0.0)) {
      throw InvalidArgument("bad --model weight in '" + spec +
                            "' (use name[:weight[:sloMS]])");
    }
    double slo_ms = 0.0;
    if (parts.size() == 3 &&
        (!parse_number(parts[2], slo_ms) || slo_ms <= 0.0)) {
      throw InvalidArgument("bad --model SLO in '" + spec +
                            "' (use name[:weight[:sloMS]], SLO in ms > 0)");
    }
    mix.names.push_back(parts[0]);
    mix.weights.push_back(weight);
    mix.slos.push_back(milliseconds(slo_ms));
  }
  return mix;
}

/// Parses `--shard-models 'a+b/c'`: one '/'-separated entry per shard,
/// each a '+'-separated list of model names resolved against the
/// `--model` mix. Structural validation (entry count, coverage) is
/// FleetOptions' job; this only translates names to fleet indices.
std::vector<std::vector<int>> parse_shard_models(
    const std::string& spec, const std::vector<std::string>& names) {
  std::vector<std::vector<int>> shard_models;
  for (const std::string& shard : split(spec, '/')) {
    std::vector<int> models;
    for (const std::string& name : split(shard, '+')) {
      const auto it = std::find(names.begin(), names.end(), name);
      if (name.empty() || it == names.end()) {
        throw InvalidArgument("--shard-models references '" + name +
                              "', which is not a --model of this fleet");
      }
      models.push_back(static_cast<int>(it - names.begin()));
    }
    shard_models.push_back(std::move(models));
  }
  return shard_models;
}

int cmd_serve(const Args& args) {
  const ObsSession session(args);
  ModelMix mix = parse_model_mix(args);
  if (mix.names.empty()) {
    mix.names = {"resnet34"};
    mix.weights = {1.0};
    mix.slos = {Seconds(0.0)};
  }
  const std::vector<std::string>& names = mix.names;
  const std::vector<double>& weights = mix.weights;

  // --shards N splits the fleet into N identical replica groups. Services
  // are planned once on the group topology (replica groups are copies);
  // the fleet spec from --topology only sets the accelerator budget being
  // divided. Partition notes go to stderr so sharded stdout stays clean.
  const int shards_requested = int_option(args, "shards", "1");
  if (shards_requested < 1) {
    throw InvalidArgument("--shards must be >= 1, got '" +
                          args.get("shards", "1") + "'");
  }
  topology::Topology topo = make_topology(args);
  serve::FleetPartition partition;
  partition.group_accelerators = topo.size();
  if (shards_requested > 1) {
    partition = serve::partition_fleet(topo.size(), shards_requested);
    topo = make_topology(args, partition.group_accelerators);
    if (partition.clamped) {
      std::clog << "--shards " << shards_requested << " clamped to "
                << partition.shards
                << " (one accelerator per replica group)\n";
    }
    if (partition.unused_accelerators > 0) {
      std::clog << "sharding leaves " << partition.unused_accelerators
                << " accelerator(s) outside the " << partition.shards
                << " replica groups\n";
    }
  }
  const accel::DesignRegistry designs =
      args.flag("fixed") ? accel::h2h_designs() : accel::table2_designs();

  // Serving plans one mapping per model up front; default to the quick
  // search budget (--full restores the offline default, --mapper baseline
  // skips the search entirely).
  core::MarsConfig config;
  config.seed = std::stoull(args.get("seed", "1"));
  config.threads = thread_count(args);
  if (!args.flag("full")) {
    config.first_ga.population = 12;
    config.first_ga.generations = 8;
    config.second.ga.population = 8;
    config.second.ga.generations = 6;
  }
  // "mars" stays accepted as an alias of "ga" for old scripts.
  const std::unique_ptr<plan::SearchEngine> engine = make_engine(args, config);
  const plan::Budget search_budget = make_budget(args);

  // Parse every workload flag before the (expensive) per-model planning
  // so usage errors fail fast.
  const serve::PolicySpec policy =
      serve::PolicySpec::parse(args.get("policy", "none"));
  serve::SchedulerOptions options;
  options.policy = policy.batch;
  options.admission = policy.admission;
  // Per-model SLOs (from --model name:weight:sloMS) tighten or relax slo:
  // admission per tenant; models without one keep the policy's shared slo.
  options.admission.per_model_slo = mix.slos;
  const Seconds duration = Seconds(number_option(args, "duration", "5"));
  const auto seed = static_cast<std::uint64_t>(int_option(args, "seed", "1"));
  const Seconds slo = milliseconds(number_option(args, "slo", "100"));
  const double rate = number_option(args, "rate", "100");
  const int clients = int_option(args, "clients", "8");
  const Seconds think = milliseconds(number_option(args, "think", "0"));
  if (rate <= 0.0) {
    throw InvalidArgument("--rate must be > 0 requests/s, got '" +
                          args.get("rate", "100") + "'");
  }
  if (duration.count() <= 0.0) {
    throw InvalidArgument("--duration must be > 0 seconds, got '" +
                          args.get("duration", "5") + "'");
  }
  if (slo.count() < 0.0) {
    throw InvalidArgument("--slo must be >= 0 ms, got '" +
                          args.get("slo", "100") + "'");
  }
  if (think.count() < 0.0) {
    throw InvalidArgument("--think must be >= 0 ms, got '" +
                          args.get("think", "0") + "'");
  }
  if (args.flag("clients") && clients < 1) {
    throw InvalidArgument("--clients must be >= 1, got '" +
                          args.get("clients", "8") + "'");
  }
  if (args.flag("clients") &&
      policy.admission.kind != serve::AdmissionPolicy::Kind::kNone &&
      think.count() <= 0.0) {
    throw InvalidArgument("--policy " + policy.admission.to_string() +
                          " with --clients needs --think > 0 ms (a rejected "
                          "client would retry at the same instant forever)");
  }

  // Optional persistent mapping cache: repeat startups on the same
  // (topology, designs, config) load the searched mappings instead of
  // re-running the GA. Provenance goes to stderr so the serving report on
  // stdout stays byte-identical between cold and warm runs.
  std::optional<serve::MappingCache> cache;
  if (args.flag("mapping-cache")) {
    const std::string dir = args.get("mapping-cache", "");
    if (dir == "1") {
      throw InvalidArgument("--mapping-cache needs a directory path");
    }
    cache.emplace(dir);
  }

  const auto plan_start = std::chrono::steady_clock::now();
  const std::vector<std::unique_ptr<serve::ModelService>> services =
      serve::plan_services(names, topo, designs, !args.flag("fixed"), *engine,
                           cache ? &*cache : nullptr, search_budget);
  const double plan_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    plan_start)
          .count();
  if (cache) {
    int hits = 0;
    for (const std::unique_ptr<serve::ModelService>& service : services) {
      const bool hit = service->mapping_source() ==
                       serve::ModelService::MappingSource::kCacheHit;
      hits += hit ? 1 : 0;
      std::clog << "mapping cache " << (hit ? "hit" : "miss") << ": "
                << service->name() << '\n';
    }
    std::clog << "planned " << services.size() << " service(s) in "
              << format_double(plan_seconds, 3) << " s (" << hits << "/"
              << services.size() << " from cache at " << cache->dir()
              << ")\n";
    std::clog << "mapping cache counters: hits=" << cache->hits()
              << " misses=" << cache->misses()
              << " corrupt=" << cache->corrupt()
              << " stores=" << cache->stores() << '\n';
  }
  std::cout << "Fleet on " << topo.name() << " (" << topo.size()
            << " accelerators, mapper " << engine->name() << "):\n";
  if (partition.shards > 1) {
    std::cout << "Sharding: " << partition.shards << " replica groups x "
              << partition.group_accelerators << " accelerators\n";
  }
  std::cout << serve::describe_fleet(services) << '\n';

  std::vector<const serve::ModelService*> refs;
  refs.reserve(services.size());
  for (const std::unique_ptr<serve::ModelService>& service : services) {
    refs.push_back(service.get());
  }
  serve::FleetOptions fleet_options;
  fleet_options.shards = partition.shards;
  fleet_options.threads = config.threads;
  fleet_options.scheduler = options;
  if (args.flag("shard-models")) {
    const std::string spec = args.get("shard-models", "");
    if (spec == "1") {
      throw InvalidArgument(
          "--shard-models needs a spec like 'a+b/c' (one '/'-separated "
          "entry per shard)");
    }
    fleet_options.shard_models = parse_shard_models(spec, names);
  }
  const serve::FleetScheduler scheduler(topo, refs, fleet_options);

  serve::ServeResult result;
  if (args.flag("replay")) {
    // A bare `--replay` parses as the sentinel value "1".
    const std::string replay = args.get("replay", "");
    if (replay == "1") throw InvalidArgument("--replay needs a CSV file path");
    result = scheduler.run(serve::replay_trace_file(replay, names));
  } else if (args.flag("clients")) {
    const serve::ClosedLoopSpec spec =
        serve::make_closed_loop(weights, clients, think);
    result = scheduler.run_closed_loop(spec, duration);
  } else {
    result =
        scheduler.run(serve::poisson_arrivals(weights, rate, duration, seed));
  }
  const serve::ServeMetrics metrics =
      serve::summarize(result, names, slo, mix.slos);
  std::cout << "Workload: policy " << policy.to_string() << ", "
            << result.batches_dispatched << " batches dispatched\n\n"
            << serve::describe(metrics);

  if (args.flag("json")) {
    std::string path = args.get("json", "serve.json");
    if (path == "1") path = "serve.json";  // bare --json
    std::ofstream file(path);
    file << serve::to_json(metrics).dump() << '\n';
    std::cout << "\nwrote " << path << '\n';
  }
  return 0;
}

int cmd_comap(const Args& args) {
  const ObsSession session(args);
  const ModelMix mix = parse_model_mix(args);
  if (mix.names.empty()) {
    throw InvalidArgument(
        "comap needs at least one --model name[:weight[:sloMS]]");
  }

  const topology::Topology topo = make_topology(args);
  const accel::DesignRegistry designs =
      args.flag("fixed") ? accel::h2h_designs() : accel::table2_designs();

  comap::CoMapProblem problem;
  problem.topo = &topo;
  problem.designs = &designs;
  problem.adaptive = !args.flag("fixed");
  for (std::size_t t = 0; t < mix.names.size(); ++t) {
    problem.tenants.push_back(
        comap::Tenant{mix.names[t], mix.weights[t], mix.slos[t]});
  }
  const double rate = number_option(args, "rate", "150");
  if (rate <= 0.0) {
    throw InvalidArgument("--rate must be > 0 requests/s, got '" +
                          args.get("rate", "150") + "'");
  }
  const double rollout_ms = number_option(args, "rollout", "1000");
  if (rollout_ms <= 0.0) {
    throw InvalidArgument("--rollout must be > 0 ms, got '" +
                          args.get("rollout", "1000") + "'");
  }
  const double slo_ms = number_option(args, "slo", "100");
  if (slo_ms <= 0.0) {
    throw InvalidArgument("--slo must be > 0 ms, got '" +
                          args.get("slo", "100") + "'");
  }
  problem.rollout.rate = rate;
  problem.rollout.duration = milliseconds(rollout_ms);
  problem.rollout.seed = std::stoull(args.get("seed", "1"));
  problem.rollout.policy = serve::PolicySpec::parse(args.get("policy", "none"));
  problem.rollout.default_slo = milliseconds(slo_ms);

  comap::CoMapConfig config;
  config.encoding = comap::parse_encoding(args.get("encoding", "partition"));
  config.seed = std::stoull(args.get("seed", "1"));
  config.threads = thread_count(args);
  // Rollouts dominate: the inner per-tenant searches default to the quick
  // serving schedule (--full restores the offline default), and --quick
  // additionally shrinks the outer GA for smoke runs.
  if (!args.flag("full")) {
    config.inner.first_ga.population = 12;
    config.inner.first_ga.generations = 8;
    config.inner.second.ga.population = 8;
    config.inner.second.ga.generations = 6;
  }
  config.inner.seed = config.seed;
  config.inner.threads = config.threads;
  if (args.flag("quick")) {
    config.ga.population = 8;
    config.ga.generations = 6;
    config.ga.stall_generations = 4;
  }

  std::optional<serve::MappingCache> cache;
  if (args.flag("mapping-cache")) {
    const std::string dir = args.get("mapping-cache", "");
    if (dir == "1") {
      throw InvalidArgument("--mapping-cache needs a directory path");
    }
    cache.emplace(dir);
  }

  const comap::CoMapEngine engine(config);
  const comap::CoMapResult result =
      engine.search(problem, make_budget(args), cache ? &*cache : nullptr);
  // Wall-clock provenance goes to stderr: stdout is a pure function of
  // the (deterministic) result, byte-identical at any --threads.
  std::clog << "comap search took "
            << format_double(result.provenance.elapsed.count(), 3) << " s\n";

  std::cout << "Co-mapping " << problem.tenants.size() << " tenant(s) on "
            << topo.name() << " (" << topo.size() << " accelerators, encoding "
            << comap::to_string(config.encoding) << "):\n";
  for (std::size_t t = 0; t < problem.tenants.size(); ++t) {
    const comap::TenantOutcome& tenant = result.tenants[t];
    std::cout << "  " << tenant.model << ": weight "
              << format_double(problem.tenants[t].weight, 2) << ", slo "
              << format_double(problem.slo_of(t).millis(), 1) << " ms, placement "
              << (tenant.placement == 0
                      ? "full fleet"
                      : topology::mask_to_string(tenant.placement));
    if (!tenant.provenance.engine.empty()) {
      std::cout << " (" << tenant.provenance.engine;
      if (tenant.provenance.evaluations > 0) {
        std::cout << ", " << tenant.provenance.evaluations << " evals";
      }
      std::cout << ")";
    }
    std::cout << '\n';
  }
  std::cout << '\n';
  for (std::size_t t = 0; t < problem.tenants.size(); ++t) {
    std::cout << "-- " << problem.tenants[t].model << " --\n"
              << core::describe(result.mappings[t],
                                graph::ConvSpine::extract(
                                    graph::models::by_name(mix.names[t])),
                                designs, problem.adaptive);
  }

  const Seconds duration = problem.rollout.duration;
  const auto report = [&](const char* label,
                          const comap::ServingObjective::Score& score) {
    std::cout << "  " << label << ": goodput "
              << format_double(score.goodput_rps(duration), 1) << " rps ("
              << score.good << "/" << score.offered << " within SLO, "
              << score.rejected << " shed), p99 "
              << format_double(score.p99.millis(), 3) << " ms\n";
  };
  std::cout << "\nRollout objective (rate " << format_double(rate, 1)
            << " rps, " << format_double(rollout_ms, 0) << " ms, seed "
            << problem.rollout.seed << ", policy "
            << problem.rollout.policy.to_string() << "):\n";
  report("joint      ", result.score);
  report("independent", result.independent_score);
  if (result.joint_won) {
    const double gain = result.score.goodput_rps(duration) -
                        result.independent_score.goodput_rps(duration);
    std::cout << "joint co-mapping beats independent planning by "
              << format_double(gain, 1) << " rps ("
              << result.provenance.winner << " encoding won)\n";
  } else {
    std::cout << "independent planning kept (the joint search found no "
                 "strictly better co-mapping)\n";
  }
  std::cout << "search: " << result.provenance.evaluations
            << " evaluations (" << result.rollout_misses << " rollouts, "
            << result.rollout_hits << " memo hits), "
            << result.provenance.iterations << " generations, stopped: "
            << plan::to_string(result.provenance.stopped) << '\n';

  if (args.flag("json")) {
    std::string path = args.get("json", "comap.json");
    if (path == "1") path = "comap.json";
    JsonValue out = JsonValue::object();
    JsonValue tenants = JsonValue::array();
    for (std::size_t t = 0; t < problem.tenants.size(); ++t) {
      JsonValue tenant = JsonValue::object();
      tenant.set("model", JsonValue::string(mix.names[t]));
      tenant.set("weight", JsonValue::number(problem.tenants[t].weight));
      tenant.set("slo_ms", JsonValue::number(problem.slo_of(t).millis()));
      tenant.set("placement", JsonValue::string(topology::mask_to_string(
                                  result.tenants[t].placement)));
      tenant.set("provenance", plan::to_json(result.tenants[t].provenance));
      tenant.set("mapping",
                 core::to_json(result.mappings[t],
                               graph::ConvSpine::extract(
                                   graph::models::by_name(mix.names[t])),
                               designs, problem.adaptive));
      tenants.push(std::move(tenant));
    }
    out.set("tenants", std::move(tenants));
    const auto score_json = [](const comap::ServingObjective::Score& score) {
      JsonValue v = JsonValue::object();
      v.set("fitness", JsonValue::number(score.fitness));
      v.set("offered", JsonValue::integer(score.offered));
      v.set("good", JsonValue::integer(score.good));
      v.set("rejected", JsonValue::integer(score.rejected));
      v.set("p99_ms", JsonValue::number(score.p99.millis()));
      return v;
    };
    out.set("joint", score_json(result.score));
    out.set("independent", score_json(result.independent_score));
    out.set("joint_won", JsonValue::boolean(result.joint_won));
    out.set("provenance", plan::to_json(result.provenance));
    std::ofstream file(path);
    file << out.dump() << '\n';
    std::cout << "wrote " << path << '\n';
  }
  return 0;
}

int cmd_explore(const Args& args) {
  const ObsSession session(args);
  explore::ExploreConfig config;
  config.model = args.get("model", "alexnet");
  // Both parsers throw InvalidArgument naming the offending axis/value
  // (docs/EXPLORE.md grammar); an absent --space means the default grid.
  config.space = explore::DesignSpace::parse(args.get("space", ""));
  config.objectives =
      explore::parse_objectives(args.get("objectives", "makespan,energy,cost"));
  config.mapper = args.get("mapper", "ga");
  config.tuning = make_config(args);
  const int search_evals = int_option(args, "search-evals", "0");
  if (search_evals < 0) {
    throw InvalidArgument("--search-evals must be >= 0, got '" +
                          args.get("search-evals", "0") + "'");
  }
  config.search_evaluations = search_evals;
  config.population = int_option(args, "population", "12");
  config.generations = int_option(args, "generations", "6");
  config.seed = std::stoull(args.get("seed", "1"));
  config.threads = thread_count(args);
  const int front_size = int_option(args, "front-size", "0");
  if (front_size < 0) {
    throw InvalidArgument("--front-size must be >= 0, got '" +
                          args.get("front-size", "0") + "'");
  }
  config.front_size = front_size;

  // Outer budget: distinct hardware points priced and/or wall clock.
  plan::Budget outer;
  const double ms = number_option(args, "search-budget", "0");
  if (ms < 0.0) {
    throw InvalidArgument("--search-budget must be >= 0 ms, got '" +
                          args.get("search-budget", "0") + "'");
  }
  outer.wall_clock = milliseconds(ms);
  const int points = int_option(args, "points", "0");
  if (points < 0) {
    throw InvalidArgument("--points must be >= 0, got '" +
                          args.get("points", "0") + "'");
  }
  outer.max_evaluations = points;

  std::optional<serve::MappingCache> cache;
  if (args.flag("mapping-cache")) {
    const std::string dir = args.get("mapping-cache", "");
    if (dir == "1") {
      throw InvalidArgument("--mapping-cache needs a directory path");
    }
    cache.emplace(dir);
  }

  const explore::ExploreEngine engine(config);
  const explore::ExploreResult result =
      engine.search(cache ? &*cache : nullptr, outer);

  // The front, truncated to --front-size, in canonical order. Everything
  // below is a pure function of (model, space, objectives, engine spec):
  // run-specific provenance (elapsed, cache hits) goes to stderr.
  const std::vector<explore::FrontPoint> front =
      result.front.top(config.front_size);
  Table table({"Point", "Makespan(ms)", "Energy(mJ)", "Cost", "Sets"});
  for (const explore::FrontPoint& fp : front) {
    for (const explore::PointOutcome& out : result.outcomes) {
      if (out.point.spec() != fp.key) continue;
      table.add_row({fp.key, format_double(out.makespan_s * 1e3, 3),
                     format_double(out.energy_j * 1e3, 3),
                     format_double(out.cost, 3),
                     std::to_string(out.sets)});
      break;
    }
  }
  std::cout << table.render();
  std::cout << "front: " << front.size() << " points ("
            << result.front.size() << " non-dominated of "
            << result.provenance.evaluations << " priced, "
            << result.provenance.iterations << " generations)\n";

  // Never-lose report: where each fixed-fleet preset landed relative to
  // the front, on the selected objectives.
  for (const explore::PointOutcome& out : result.outcomes) {
    if (!out.point.preset) continue;
    const explore::FrontPoint fp = out.front_point(config.objectives);
    std::string verdict = "on front";
    for (const explore::FrontPoint& member : result.front.points()) {
      if (explore::dominates(member, fp)) {
        verdict = "dominated by " + member.key;
        break;
      }
    }
    std::cout << "preset " << fp.key << ": " << verdict << '\n';
  }

  std::clog << "search: " << result.provenance.evaluations
            << " points priced in "
            << format_double(result.provenance.elapsed.count(), 3)
            << " s, stopped: " << plan::to_string(result.provenance.stopped)
            << ", cache hits: " << result.cache_hits << '\n';

  if (args.flag("csv")) {
    const std::string path = args.get("csv", "");
    if (path == "1") {
      throw InvalidArgument("--csv needs an output file path");
    }
    std::ofstream file(path);
    file << explore::front_csv(result, config);
    std::cout << "wrote " << path << '\n';
  }
  if (args.flag("json")) {
    const std::string path = args.get("json", "");
    if (path == "1") {
      throw InvalidArgument("--json needs an output file path");
    }
    std::ofstream file(path);
    file << explore::front_json(result, config) << '\n';
    std::cout << "wrote " << path << '\n';
  }
  return 0;
}

int cmd_warm(const Args& args) {
  const ObsSession session(args);
  // Accept --models a,b,c and/or repeated --model NAME (bare names; the
  // cache key is per model, weights/SLOs play no part in planning).
  std::vector<std::string> names = args.all("model");
  for (const std::string& csv : args.all("models")) {
    for (const std::string& name : split(csv, ',')) {
      if (!name.empty()) names.push_back(name);
    }
  }
  if (names.empty()) {
    throw InvalidArgument("warm needs --models a,b,c (or repeated --model)");
  }
  const std::string dir = args.get("mapping-cache", "");
  if (dir.empty() || dir == "1") {
    throw InvalidArgument("warm needs --mapping-cache DIR (the cache to fill)");
  }

  const topology::Topology topo = make_topology(args);
  const accel::DesignRegistry designs =
      args.flag("fixed") ? accel::h2h_designs() : accel::table2_designs();
  core::MarsConfig config;
  config.seed = std::stoull(args.get("seed", "1"));
  config.threads = thread_count(args);
  if (!args.flag("full")) {
    config.first_ga.population = 12;
    config.first_ga.generations = 8;
    config.second.ga.population = 8;
    config.second.ga.generations = 6;
  }
  const std::unique_ptr<plan::SearchEngine> engine = make_engine(args, config);
  const serve::MappingCache cache(dir);

  const std::vector<std::unique_ptr<serve::ModelService>> services =
      serve::plan_services(names, topo, designs, !args.flag("fixed"), *engine,
                           &cache, make_budget(args));
  for (const std::unique_ptr<serve::ModelService>& service : services) {
    std::cout << "warm " << service->name() << ": "
              << serve::to_string(service->mapping_source()) << '\n';
  }
  std::cout << "cache " << cache.dir() << ": hits=" << cache.hits()
            << " misses=" << cache.misses() << " stores=" << cache.stores()
            << '\n';
  return 0;
}

int usage(std::ostream& os) {
  os << "usage: mars_map "
        "<models|profile|map|baseline|throughput|serve|comap|explore|warm> "
        "[--model NAME] [--topology f1|cloud:<n>:<gbps>|ring:<n>:<gbps>] "
        "[--model-file PATH] "
        "[--mapper ga|anneal|random|baseline|portfolio|race:<m>+<m>[,MS]] "
        "[--search-budget MS] [--search-evals N] [--threads N] "
        "[--seed N] [--quick] [--fixed] [--json PATH] [--batch N] "
        "[--trace FILE.json] [--metrics FILE.json]\n"
        "serve options: --model NAME[:WEIGHT[:SLO_MS]] (repeatable) "
        "--rate RPS --duration S --slo MS "
        "--policy [none|size:N|timeout:MS[:N]][+slo:MS|+shed:N] "
        "--mapper NAME --threads N --shards N --shard-models 'a+b/c' "
        "--mapping-cache DIR --full --replay CSV --clients N --think MS\n"
        "comap options: --model NAME[:WEIGHT[:SLO_MS]] (repeatable) "
        "--encoding partition|interleave --rate RPS --rollout MS --slo MS "
        "--policy SPEC --seed N --threads N --quick --full "
        "--mapping-cache DIR --json PATH\n"
        "explore options: --model NAME --space "
        "'families=clique,ring;accs=2,4;bw=8;menus=full' "
        "--objectives makespan,energy,cost --front-size N "
        "--population N --generations N --points N --search-budget MS "
        "--search-evals N --mapper NAME --seed N --threads N --quick "
        "--mapping-cache DIR --csv PATH --json PATH\n"
        "warm options: --models a,b,c --mapping-cache DIR [--mapper NAME] "
        "[--full] [--threads N]\n"
        "full reference: docs/CLI.md, docs/SEARCH.md, docs/COMAP.md and "
        "docs/OBSERVABILITY.md\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "models") return cmd_models();
    if (args.command == "profile") return cmd_profile(args);
    if (args.command == "map") return cmd_map(args);
    if (args.command == "baseline") return cmd_baseline(args);
    if (args.command == "throughput") return cmd_throughput(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "comap") return cmd_comap(args);
    if (args.command == "explore") return cmd_explore(args);
    if (args.command == "warm") return cmd_warm(args);
    if (args.command == "help" || args.command == "--help" ||
        args.command == "-h") {
      usage(std::cout);
      return 0;
    }
    if (args.command.empty()) return usage(std::cout);
    std::cerr << "error: unknown command '" << args.command << "'\n";
    return usage(std::cerr);
  } catch (const InvalidArgument& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
