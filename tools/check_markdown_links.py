#!/usr/bin/env python3
"""Check that relative markdown links in README/docs resolve.

Scans every tracked *.md file at the repository root and under docs/ for
inline links/images `[text](target)`, skips external targets (http/https/
mailto) and pure in-page anchors (#...), strips #fragments from the rest,
and verifies the referenced path exists relative to the linking file.

Exit status: 0 when every link resolves, 1 otherwise (each failure is
listed as file:line). Run from anywhere; paths are anchored at the
repository root (the parent of this script's directory).
"""

import re
import sys
from pathlib import Path

# [text](target) / ![alt](target), tolerating one level of nested
# brackets in the text and an optional "title" after the target.
LINK = re.compile(r"!?\[(?:[^\[\]]|\[[^\]]*\])*\]\(([^()\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:")


def iter_markdown_files(root: Path):
    yield from sorted(root.glob("*.md"))
    yield from sorted((root / "docs").glob("**/*.md"))


def check_file(path: Path, root: Path):
    failures = []
    in_code_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                failures.append(f"{path.relative_to(root)}:{lineno}: broken link '{target}'")
    return failures


def main():
    root = Path(__file__).resolve().parent.parent
    failures = []
    checked = 0
    for md in iter_markdown_files(root):
        checked += 1
        failures.extend(check_file(md, root))
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {checked} markdown files: "
          f"{'OK' if not failures else f'{len(failures)} broken link(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
