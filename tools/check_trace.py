#!/usr/bin/env python3
"""Validate a Chrome Trace Event JSON file emitted by `--trace`.

Checks the JSON-object envelope ({"traceEvents": [...]}) and, per event:

* required fields by phase — every event needs name/ph/pid/tid; "X" also
  needs ts and a non-negative dur; "i" a scope "s"; "b"/"e" a cat and id;
  "C" an args.value; "M" an args.name;
* duration ("B"/"E") events nest properly per (pid, tid): every "E" closes
  a matching open "B", none left open at the end;
* nestable async ("b"/"e") events balance per (pid, cat, id), begins
  before ends;
* timestamps are non-decreasing per (pid, tid) in array order — the
  recorder sorts its export, so out-of-order timestamps mean a broken
  merge.

Exit status: 0 when the trace is valid, 1 when any check fails (each
failure is listed with its event index), 2 on usage or I/O errors.
"""

import json
import sys

KNOWN_PHASES = {"X", "B", "E", "i", "I", "C", "b", "e", "n", "M"}


def validate(doc):
    failures = []

    def fail(index, message):
        failures.append(f"event {index}: {message}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ['document: expected an object with a "traceEvents" array']
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ['document: "traceEvents" is not an array']

    open_durations = {}  # (pid, tid) -> [names of open "B" events]
    open_async = {}  # (pid, cat, id) -> open "b" count
    last_ts = {}  # (pid, tid) -> last seen timestamp

    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail(index, "not an object")
            continue
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            fail(index, f"unknown phase {phase!r}")
            continue
        for field in ("name", "pid"):
            if field not in event:
                fail(index, f'phase "{phase}" is missing "{field}"')
        if phase != "M" and "tid" not in event:
            fail(index, f'phase "{phase}" is missing "tid"')

        pid, tid = event.get("pid"), event.get("tid", 0)
        track = (pid, tid)
        ts = event.get("ts")

        if phase == "M":
            if not isinstance(event.get("args"), dict) or "name" not in event["args"]:
                fail(index, 'metadata event is missing "args.name"')
            continue

        if not isinstance(ts, (int, float)):
            fail(index, f'phase "{phase}" is missing a numeric "ts"')
            continue
        if ts < last_ts.get(track, float("-inf")):
            fail(
                index,
                f"timestamp {ts} goes backwards on track pid={pid} tid={tid} "
                f"(previous {last_ts[track]})",
            )
        last_ts[track] = ts

        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                fail(index, 'complete event is missing a numeric "dur"')
            elif dur < 0:
                fail(index, f"complete event has negative dur {dur}")
        elif phase == "B":
            open_durations.setdefault(track, []).append(event.get("name"))
        elif phase == "E":
            stack = open_durations.get(track, [])
            if not stack:
                fail(index, f'"E" with no open "B" on pid={pid} tid={tid}')
            else:
                stack.pop()
        elif phase in ("i", "I"):
            if event.get("s", "t") not in ("t", "p", "g"):
                fail(index, f'instant event has invalid scope {event.get("s")!r}')
        elif phase == "C":
            if not isinstance(event.get("args"), dict) or not event["args"]:
                fail(index, 'counter event is missing "args" values')
        elif phase in ("b", "e", "n"):
            if "cat" not in event or "id" not in event:
                fail(index, f'nestable async "{phase}" needs "cat" and "id"')
                continue
            key = (pid, event["cat"], event["id"])
            if phase == "b":
                open_async[key] = open_async.get(key, 0) + 1
            elif phase == "e":
                if open_async.get(key, 0) == 0:
                    fail(index, f'async "e" with no open "b" for {key}')
                else:
                    open_async[key] -= 1

    for (pid, tid), stack in open_durations.items():
        for name in stack:
            failures.append(
                f'end of trace: "B" event {name!r} never closed on '
                f"pid={pid} tid={tid}"
            )
    for key, count in open_async.items():
        if count:
            failures.append(
                f"end of trace: {count} async begin(s) never closed for "
                f"(pid, cat, id)={key}"
            )
    return failures


def main(argv):
    if len(argv) != 2:
        print(f"usage: {argv[0]} TRACE.json", file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as error:
        print(f"error: cannot read {argv[1]}: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: {argv[1]} is not valid JSON: {error}", file=sys.stderr)
        return 1
    failures = validate(doc)
    for failure in failures:
        print(f"{argv[1]}: {failure}", file=sys.stderr)
    if failures:
        print(f"{argv[1]}: INVALID ({len(failures)} failure(s))", file=sys.stderr)
        return 1
    events = doc["traceEvents"]
    data = sum(1 for event in events if event.get("ph") != "M")
    print(f"{argv[1]}: ok ({data} events, {len(events) - data} metadata)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
