// Online multi-tenant serving walkthrough: two models co-resident on the
// F1-style system, driven by an open-loop Poisson request stream.
//
// The offline story (examples/multimodel_cloud.cpp) ends with a mapping
// that minimises one inference's makespan. This example takes the next
// step the serving regime demands: plan a mapping per model, then replay
// a shared request stream against the shared topology, where the two
// models' compute and transfer tasks queue on the same accelerators and
// links. It sweeps the batching policy to show the classic trade:
// batching raises goodput at high load but adds queueing latency at the
// tail.
//
// Build & run:  ./build/example_multitenant_serving [rate-rps]
#include <iostream>
#include <memory>

#include "mars/plan/engines.h"
#include "mars/serve/metrics.h"
#include "mars/serve/report.h"
#include "mars/serve/scheduler.h"
#include "mars/topology/presets.h"
#include "mars/util/strings.h"
#include "mars/util/table.h"

int main(int argc, char** argv) {
  using namespace mars;

  const double rate = argc > 1 ? std::stod(argv[1]) : 60.0;
  const Seconds duration(5.0);
  const Seconds slo = milliseconds(60.0);

  // 1. The shared platform: eight adaptive FPGAs, two host-bridged groups.
  const topology::Topology topo = topology::f1_16xlarge();
  const accel::DesignRegistry designs = accel::table2_designs();

  // 2. One MARS mapping per co-resident model (quick search budget).
  //    Swap the engine (plan::make_engine("anneal"|"random"|"baseline"))
  //    to compare mappers on the same serving workload.
  core::MarsConfig config;
  config.first_ga.population = 12;
  config.first_ga.generations = 8;
  config.second.ga.population = 8;
  config.second.ga.generations = 6;
  const plan::GaEngine engine(config);
  const std::vector<std::string> names = {"facebagnet", "resnet34"};
  const auto services =
      serve::plan_services(names, topo, designs, /*adaptive=*/true, engine);
  std::cout << "Planned fleet:\n" << serve::describe_fleet(services) << '\n';

  std::vector<const serve::ModelService*> refs;
  for (const auto& service : services) refs.push_back(service.get());

  // 3. A deterministic Poisson stream, 2:1 traffic in favour of facebagnet.
  const std::vector<serve::Request> arrivals =
      serve::poisson_arrivals({2.0, 1.0}, rate, duration, /*seed=*/1);
  std::cout << arrivals.size() << " requests over " << duration.count()
            << " s (offered " << rate << " rps, SLO " << slo.millis()
            << " ms)\n\n";

  // 4. Replay the same stream under each batching policy.
  Table sweep({"Policy", "p50 /ms", "p99 /ms", "Goodput /rps",
               "SLO attainment", "Mean batch"});
  for (const serve::BatchPolicy& policy :
       {serve::BatchPolicy::none(), serve::BatchPolicy::size(4),
        serve::BatchPolicy::with_timeout(8, milliseconds(2.0))}) {
    serve::SchedulerOptions options;
    options.policy = policy;
    const serve::OnlineScheduler scheduler(topo, refs, options);
    const serve::ServeMetrics metrics =
        serve::summarize(scheduler.run(arrivals), names, slo);
    sweep.add_row({policy.to_string(),
                   format_double(metrics.latency.p50.millis(), 2),
                   format_double(metrics.latency.p99.millis(), 2),
                   format_double(metrics.goodput_rps, 1),
                   format_double(metrics.slo_attainment * 100.0, 1) + "%",
                   format_double(metrics.mean_batch, 2)});
  }
  std::cout << sweep << '\n';

  // 5. Full report for the no-batching run, including per-accelerator
  // utilization — the contention picture batching is meant to improve.
  const serve::OnlineScheduler scheduler(topo, refs, {});
  const serve::ServeMetrics metrics =
      serve::summarize(scheduler.run(arrivals), names, slo);
  std::cout << serve::describe(metrics);
  return 0;
}
