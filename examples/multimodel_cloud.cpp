// Heterogeneous model on a fixed-design cloud (the paper's Section VI-C
// scenario): a three-stream face anti-spoofing network mapped onto eight
// FPGAs whose designs are already burnt in. Compares the H2H-style
// comparator (one layer per accelerator, no intra-layer parallelism)
// against MARS, and exports a Chrome trace of the MARS schedule
// (open chrome://tracing or ui.perfetto.dev on mars_schedule.json).
//
// Build & run:  ./build/examples/multimodel_cloud [bandwidth-gbps]
#include <fstream>
#include <iostream>

#include "mars/accel/registry.h"
#include "mars/core/evaluator.h"
#include "mars/core/h2h.h"
#include "mars/graph/models/models.h"
#include "mars/plan/engines.h"
#include "mars/plan/planner.h"
#include "mars/sim/trace.h"
#include "mars/topology/presets.h"

int main(int argc, char** argv) {
  using namespace mars;

  const double bandwidth = argc > 1 ? std::stod(argv[1]) : 4.0;

  // Eight FPGAs, uniform links, four designs burnt in two-by-two.
  const topology::Topology topo = topology::h2h_cloud(8, gbps(bandwidth), 4);
  const accel::DesignRegistry designs = accel::h2h_designs();

  // adaptive=false: designs are fixed per accelerator.
  const plan::Planner planner(graph::models::facebagnet(), topo, designs,
                              /*adaptive=*/false);

  std::cout << "facebagnet (" << planner.spine().size()
            << " layers, 3 streams) on an 8-FPGA " << bandwidth
            << " Gb/s cloud\n\n";

  // H2H-style: computation+communication-aware, layer-per-accelerator.
  const core::H2HResult h2h = core::H2HMapper(planner.problem()).map();
  std::cout << "H2H-style mapper: " << h2h.simulated.millis() << " ms\n";

  // MARS: multi-level parallelism on the same fixed system.
  const plan::GaEngine engine;
  const plan::PlanResult result = planner.plan(engine);
  std::cout << "MARS:             " << result.summary.simulated.millis()
            << " ms (" << (result.summary.simulated / h2h.simulated - 1.0) * 100.0
            << "% vs H2H)\n\n"
            << core::describe(result.mapping, planner.spine(), designs, false);

  // Export the executed schedule for visual inspection.
  const core::MappingEvaluator evaluator(planner.problem());
  const core::MappingEvaluator::SimOutput output =
      evaluator.simulate(result.mapping);
  std::ofstream trace("mars_schedule.json");
  trace << sim::to_chrome_trace(output.graph, output.result);
  std::cout << "\nwrote mars_schedule.json (" << output.graph.size()
            << " tasks) — load it in chrome://tracing\n";
  return 0;
}
