// Extending MARS with your own accelerator design and topology.
//
// Implements a simple output-stationary dot-product accelerator by
// subclassing AcceleratorDesign (only the compute formula and the DRAM
// traffic model are required), registers it next to the Table II menu, and
// maps ResNet-18 onto a chiplet-style ring of 6 accelerators.
//
// Build & run:  ./build/examples/custom_accelerator
#include <iostream>

#include "mars/accel/registry.h"
#include "mars/graph/models/models.h"
#include "mars/plan/engines.h"
#include "mars/plan/planner.h"
#include "mars/topology/presets.h"

namespace {

using namespace mars;

// A vector engine with V lanes over input channels and U parallel output
// channels: cycles = ceil(Cin/V) * ceil(Cout/U) * H * W * K^2, with inputs
// streamed once and weights re-read per output row block.
class VectorEngine final : public accel::AcceleratorDesign {
 public:
  VectorEngine(int lanes, int units)
      : AcceleratorDesign("VectorEngine-" + std::to_string(lanes) + "x" +
                              std::to_string(units),
                          megahertz(250),
                          static_cast<double>(lanes) * units,
                          "V, U: " + std::to_string(lanes) + ", " +
                              std::to_string(units)),
        lanes_(lanes),
        units_(units) {}

 protected:
  [[nodiscard]] double compute_cycles(const graph::ConvShape& s) const override {
    return accel::ceil_div(s.cin, lanes_) * accel::ceil_div(s.cout, units_) *
           static_cast<double>(s.oh) * s.ow * s.kh * s.kw;
  }
  [[nodiscard]] Bytes dram_traffic(const graph::ConvShape& s,
                                   graph::DataType dtype) const override {
    return s.in_bytes(dtype) + s.weight_bytes(dtype) * 2.0 + s.out_bytes(dtype);
  }

 private:
  int lanes_;
  int units_;
};

}  // namespace

int main() {
  using namespace mars;

  // Design menu: the paper's three designs plus our custom engine.
  accel::DesignRegistry designs = accel::table2_designs();
  const accel::DesignId custom =
      designs.add(std::make_unique<VectorEngine>(16, 32));

  // Topology: a 6-accelerator ring at 16 Gb/s with 4 Gb/s host links
  // (chiplet-style; candidate AccSets become ring segments).
  const topology::Topology topo = topology::ring(6, gbps(16.0), gbps(4.0));

  const plan::Planner planner(graph::models::resnet(18), topo, designs,
                              /*adaptive=*/true);
  const plan::GaEngine engine;
  const plan::PlanResult result = planner.plan(engine);

  std::cout << "resnet18 on a 6-ring with a custom design in the menu:\n"
            << core::describe(result.mapping, planner.spine(), designs, true)
            << "latency: " << result.summary.simulated.millis() << " ms\n";

  int custom_layers = 0;
  for (const core::LayerAssignment& set : result.mapping.sets) {
    if (set.design == custom) custom_layers += set.num_layers();
  }
  std::cout << "layers mapped to the custom VectorEngine: " << custom_layers
            << " of " << planner.spine().size() << '\n';
  return 0;
}
