// Quickstart: map a CNN onto an adaptive multi-accelerator system in ~30
// lines of MARS API.
//
//   1. pick a workload from the model zoo,
//   2. describe the system topology (here: the paper's AWS F1 platform),
//   3. pick the menu of configurable accelerator designs (Table II),
//   4. hand the model to a Planner and run a search engine (here the
//      paper's two-level GA; try plan::make_engine("anneal") or "random"
//      for the alternatives),
//   5. inspect the mapping, its simulated latency, and the provenance.
//
// Build & run:  ./build/examples/quickstart [model-name]
#include <iostream>

#include "mars/accel/registry.h"
#include "mars/plan/engines.h"
#include "mars/plan/planner.h"
#include "mars/topology/presets.h"

int main(int argc, char** argv) {
  using namespace mars;

  // 1. Workload: any zoo model ("alexnet", "vgg16", "resnet34", ...).
  const std::string model_name = argc > 1 ? argv[1] : "resnet34";

  // 2. System: 8 FPGAs in two groups, 8 Gb/s inside a group, 2 Gb/s to the
  //    host, 1 GiB DRAM per card — Fig. 1 of the paper.
  const topology::Topology topo = topology::f1_16xlarge();

  // 3. Accelerator design menu (adaptive: every set picks one design).
  const accel::DesignRegistry designs = accel::table2_designs();

  // 4. The Planner owns the graph -> spine -> Problem lifetimes; the
  //    engine is the search algorithm (GA with paper-style defaults).
  const plan::Planner planner =
      plan::Planner::for_model(model_name, topo, designs, /*adaptive=*/true);
  std::cout << "workload: " << planner.model().name() << " ("
            << planner.spine().size() << " mappable layers, "
            << planner.model().total_macs() / 1e9 << " GMACs)\n";

  const plan::GaEngine engine;  // core::MarsConfig{} defaults; seed for reruns
  const plan::PlanResult result = planner.plan(engine);

  // 5. Results.
  std::cout << "\nmapping found by MARS:\n"
            << core::describe(result.mapping, planner.spine(), designs, true)
            << "\nsimulated latency: " << result.summary.simulated.millis()
            << " ms  (compute " << result.summary.analytic.compute.millis()
            << " ms, intra-set comm "
            << result.summary.analytic.intra_set.millis()
            << " ms, inter-set + host "
            << (result.summary.analytic.inter_set +
                result.summary.analytic.host_io)
                   .millis()
            << " ms)\n"
            << "memory feasible: " << (result.summary.memory_ok ? "yes" : "NO")
            << " (worst set footprint "
            << result.summary.worst_set_footprint.mib() << " MiB per card)\n"
            << "search: " << result.provenance.evaluations
            << " evaluations, stopped: "
            << plan::to_string(result.provenance.stopped) << '\n';
  return 0;
}
