// Quickstart: map a CNN onto an adaptive multi-accelerator system in ~40
// lines of MARS API.
//
//   1. pick a workload from the model zoo,
//   2. describe the system topology (here: the paper's AWS F1 platform),
//   3. pick the menu of configurable accelerator designs (Table II),
//   4. run the two-level genetic search,
//   5. inspect the mapping and its simulated latency.
//
// Build & run:  ./build/examples/quickstart [model-name]
#include <iostream>

#include "mars/accel/registry.h"
#include "mars/core/mars.h"
#include "mars/graph/models/models.h"
#include "mars/topology/presets.h"

int main(int argc, char** argv) {
  using namespace mars;

  // 1. Workload: any zoo model ("alexnet", "vgg16", "resnet34", ...).
  const std::string model_name = argc > 1 ? argv[1] : "resnet34";
  const graph::Graph model = graph::models::by_name(model_name);
  const graph::ConvSpine spine = graph::ConvSpine::extract(model);
  std::cout << "workload: " << model.name() << " (" << spine.size()
            << " mappable layers, " << model.total_macs() / 1e9 << " GMACs)\n";

  // 2. System: 8 FPGAs in two groups, 8 Gb/s inside a group, 2 Gb/s to the
  //    host, 1 GiB DRAM per card — Fig. 1 of the paper.
  const topology::Topology topo = topology::f1_16xlarge();

  // 3. Accelerator design menu (adaptive: every set picks one design).
  const accel::DesignRegistry designs = accel::table2_designs();

  // 4. Search.
  core::Problem problem;
  problem.spine = &spine;
  problem.topo = &topo;
  problem.designs = &designs;
  problem.adaptive = true;

  core::MarsConfig config;  // paper-style defaults; config.seed for reruns
  core::Mars mars(problem, config);
  const core::MarsResult result = mars.search();

  // 5. Results.
  std::cout << "\nmapping found by MARS:\n"
            << core::describe(result.mapping, spine, designs, true)
            << "\nsimulated latency: " << result.summary.simulated.millis()
            << " ms  (compute " << result.summary.analytic.compute.millis()
            << " ms, intra-set comm "
            << result.summary.analytic.intra_set.millis()
            << " ms, inter-set + host "
            << (result.summary.analytic.inter_set +
                result.summary.analytic.host_io)
                   .millis()
            << " ms)\n"
            << "memory feasible: " << (result.summary.memory_ok ? "yes" : "NO")
            << " (worst set footprint "
            << result.summary.worst_set_footprint.mib() << " MiB per card)\n";
  return 0;
}
