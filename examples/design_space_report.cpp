// Design-space exploration report: how the best mapping changes with the
// system's interconnect. Sweeps the intra-group bandwidth of the F1-style
// platform and reports, per point, the latency, the set structure and how
// MARS's strategy mix shifts (spatial vs channel sharding, SS usage) —
// the kind of what-if study an adaptive-system architect runs before
// committing to an interconnect.
//
// Build & run:  ./build/examples/design_space_report [model-name]
#include <iostream>

#include "mars/accel/registry.h"
#include "mars/graph/models/models.h"
#include "mars/plan/engines.h"
#include "mars/plan/planner.h"
#include "mars/topology/presets.h"
#include "mars/util/strings.h"
#include "mars/util/table.h"

int main(int argc, char** argv) {
  using namespace mars;

  const std::string model_name = argc > 1 ? argv[1] : "resnet34";
  // Built once; each sweep point copies it into its own Planner (the
  // spine re-extraction per topology is inherent — the Problem changes).
  const graph::Graph model = graph::models::by_name(model_name);
  const accel::DesignRegistry designs = accel::table2_designs();

  std::cout << "design-space sweep: " << model_name
            << " on 2x4 FPGAs, varying intra-group bandwidth\n";
  Table table({"Group BW", "Latency /ms", "Sets", "Largest set",
               "Spatial-ES layers", "SS layers", "Comm share"});

  core::MarsConfig config;
  config.seed = 3;
  const plan::GaEngine engine(config);

  for (double bw : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const topology::Topology topo =
        topology::f1_16xlarge(gbps(bw), gbps(2.0));
    const plan::Planner planner(model, topo, designs, /*adaptive=*/true);
    const plan::PlanResult result = planner.plan(engine);

    int spatial = 0;
    int ss = 0;
    int total = 0;
    int largest = 0;
    for (const core::LayerAssignment& set : result.mapping.sets) {
      largest = std::max(largest, set.num_accs());
      for (const parallel::Strategy& s : set.strategies) {
        ++total;
        if (s.ways_of(parallel::Dim::kH) > 1 || s.ways_of(parallel::Dim::kW) > 1) {
          ++spatial;
        }
        if (s.has_ss()) ++ss;
      }
    }
    const double comm_share =
        result.summary.analytic.intra_set /
        (result.summary.analytic.compute + result.summary.analytic.intra_set);
    table.add_row({format_double(bw, 0) + " Gb/s",
                   format_double(result.summary.simulated.millis(), 3),
                   std::to_string(result.mapping.sets.size()),
                   std::to_string(largest) + " accs",
                   std::to_string(spatial) + "/" + std::to_string(total),
                   std::to_string(ss) + "/" + std::to_string(total),
                   format_double(comm_share * 100.0, 1) + "%"});
  }
  std::cout << table
            << "(faster interconnects let the mapper buy more parallelism "
               "per layer; slow ones push it toward fewer, cheaper shards)\n";
  return 0;
}
