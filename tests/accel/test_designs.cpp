#include <gtest/gtest.h>

#include "mars/accel/registry.h"
#include "mars/accel/superlip.h"
#include "mars/accel/systolic.h"
#include "mars/accel/winograd.h"
#include "mars/graph/models/models.h"
#include "mars/graph/spine.h"
#include "mars/util/error.h"

namespace mars::accel {
namespace {

using graph::ConvShape;
using graph::DataType;

// Layer shapes used throughout: early (high resolution, 3 channels), mid,
// late (small maps, wide channels), pointwise, and a fully-connected GEMV.
const ConvShape kVggConv1{64, 3, 224, 224, 3, 3, 1, 1};
const ConvShape kResNetStem{64, 3, 112, 112, 7, 7, 2, 2};
const ConvShape kMid3x3{256, 256, 14, 14, 3, 3, 1, 1};
const ConvShape kLate3x3{512, 512, 7, 7, 3, 3, 1, 1};
const ConvShape kPointwise{2048, 512, 7, 7, 1, 1, 1, 1};
const ConvShape kFc{4096, 9216, 1, 1, 1, 1, 1, 1};

TEST(SuperLip, TableIIInstanceProperties) {
  const SuperLipDesign d;
  EXPECT_EQ(d.name(), "SuperLIP");
  EXPECT_DOUBLE_EQ(d.frequency().megahertz(), 200.0);
  EXPECT_DOUBLE_EQ(d.peak_macs_per_cycle(), 64.0 * 7);
  EXPECT_EQ(d.pe_count(), 448);
  EXPECT_NE(d.parameter_string().find("64, 7, 7, 14"), std::string::npos);
}

TEST(SuperLip, CycleFormulaMatchesHandComputation) {
  SuperLipParams p;
  p.tile_overhead = 0.0;
  const SuperLipDesign d(p, "SuperLIP-nooverhead");
  // ceil(64/64)*ceil(3/7)*ceil(224/7)*ceil(224/14)*(7*14*9) cycles.
  const double expected = 1.0 * 1 * 32 * 16 * (98 * 9);
  EXPECT_DOUBLE_EQ(d.conv_cycles(kVggConv1, DataType::kFix16).compute, expected);
}

TEST(SuperLip, TileOverheadHurtsPointwise) {
  const SuperLipDesign d;
  // For 1x1 kernels the 96-cycle fill dominates the 98 useful cycles.
  EXPECT_LT(d.utilization(kPointwise, DataType::kFix16), 0.55);
  // For 3x3 it amortises.
  EXPECT_GT(d.utilization(kMid3x3, DataType::kFix16), 0.8);
}

TEST(SuperLip, UtilizationBoundedByChannelFit) {
  const SuperLipDesign d;
  // Cin = 3 against Tn = 7: utilisation can never beat 3/7.
  EXPECT_LE(d.utilization(kVggConv1, DataType::kFix16), 3.0 / 7 + 1e-9);
  EXPECT_GT(d.utilization(kVggConv1, DataType::kFix16), 0.3);
}

TEST(Systolic, TableIIInstanceProperties) {
  const SystolicDesign d;
  EXPECT_DOUBLE_EQ(d.peak_macs_per_cycle(), 11.0 * 13 * 8 / 2);
  EXPECT_EQ(d.pe_count(), 572);
  EXPECT_NE(d.parameter_string().find("11, 13, 8"), std::string::npos);
}

TEST(Systolic, CycleFormulaMatchesHandComputation) {
  const SystolicDesign d;
  // M-tiles=ceil(512/11)=47, N-tiles=ceil(49/13)=4,
  // beats=ceil(512*9/8)*2=1152, fill=24.
  const double expected = 47.0 * 4 * (1152 + 24);
  EXPECT_DOUBLE_EQ(d.conv_cycles(kLate3x3, DataType::kFix16).compute, expected);
}

TEST(Systolic, DeepKLoopsReachHighUtilization) {
  const SystolicDesign d;
  EXPECT_GT(d.utilization(kLate3x3, DataType::kFix16), 0.85);
  EXPECT_GT(d.utilization(kPointwise, DataType::kFix16), 0.6);
}

TEST(Systolic, ShallowKLoopsCannotAmortiseFill) {
  const SystolicDesign d;
  // Cin=3, K=3 -> 8 beats of work against 24 fill cycles.
  EXPECT_LT(d.utilization(kVggConv1, DataType::kFix16), 0.35);
}

TEST(Winograd, TableIIInstanceProperties) {
  const WinogradDesign d;
  EXPECT_EQ(d.pe_count(), 6 * 6 * 8 * 2);  // 576 multipliers
  // Effective peak equals the multiplier count: the Winograd arithmetic
  // saving is spent on the transform pipeline (paper: comparable peaks).
  EXPECT_DOUBLE_EQ(d.peak_macs_per_cycle(), 8.0 * 2 * 16 * 9 / 4.0);
  EXPECT_NE(d.parameter_string().find("6, 2, 8"), std::string::npos);
}

TEST(Winograd, Applicability) {
  EXPECT_TRUE(WinogradDesign::winograd_applicable(kLate3x3));
  EXPECT_FALSE(WinogradDesign::winograd_applicable(kPointwise));
  EXPECT_FALSE(WinogradDesign::winograd_applicable(kResNetStem));  // stride 2
  EXPECT_FALSE(WinogradDesign::winograd_applicable(
      ConvShape{64, 64, 28, 28, 5, 5, 1, 1}));
}

TEST(Winograd, FastPathCycleFormula) {
  const WinogradDesign d;
  // ceil(512/2)*ceil(512/8)*ceil(7/4)*ceil(7/4)*4.
  const double expected = 256.0 * 64 * 2 * 2 * 4;
  EXPECT_DOUBLE_EQ(d.conv_cycles(kLate3x3, DataType::kFix16).compute, expected);
}

TEST(Winograd, PointwiseFallbackIsCrippling) {
  const WinogradDesign d;
  // The paper: design 3 cannot effectively handle 1x1 convolutions.
  EXPECT_LT(d.utilization(kPointwise, DataType::kFix16), 0.12);
}

TEST(Winograd, BeatsOthersOnTileAlignedDense3x3) {
  // 28x28 maps align with the 4x4 output tiles (no fragmentation): the
  // fast path wins. At 14x14 the ceil(14/4) waste hands the layer to the
  // systolic design — the shape-dependent heterogeneity MARS exploits.
  const SuperLipDesign d1;
  const SystolicDesign d2;
  const WinogradDesign d3;
  const graph::ConvShape aligned{512, 512, 28, 28, 3, 3, 1, 1};
  const double t1 = d1.conv_latency(aligned, DataType::kFix16).count();
  const double t2 = d2.conv_latency(aligned, DataType::kFix16).count();
  const double t3 = d3.conv_latency(aligned, DataType::kFix16).count();
  EXPECT_LT(t3, t1);
  EXPECT_LT(t3, t2);
  // And the 14x14 crossover:
  EXPECT_LT(d2.conv_latency(kMid3x3, DataType::kFix16).count(),
            d3.conv_latency(kMid3x3, DataType::kFix16).count());
}

TEST(Heterogeneity, PointwiseLayersPreferSystolic) {
  const SuperLipDesign d1;
  const SystolicDesign d2;
  const WinogradDesign d3;
  const double t1 = d1.conv_latency(kPointwise, DataType::kFix16).count();
  const double t2 = d2.conv_latency(kPointwise, DataType::kFix16).count();
  const double t3 = d3.conv_latency(kPointwise, DataType::kFix16).count();
  EXPECT_LT(t2, t1);
  EXPECT_LT(t2, t3);
}

TEST(Heterogeneity, EarlyVggLayersPreferSuperLip) {
  const SuperLipDesign d1;
  const SystolicDesign d2;
  const WinogradDesign d3;
  const double t1 = d1.conv_latency(kVggConv1, DataType::kFix16).count();
  const double t2 = d2.conv_latency(kVggConv1, DataType::kFix16).count();
  EXPECT_LT(t1, t2);
  (void)d3;
}

TEST(AllDesigns, GemvPathIsMemoryBound) {
  const DesignRegistry registry = table2_designs();
  for (DesignId id : registry.ids()) {
    const AcceleratorDesign& d = registry.design(id);
    const CycleBreakdown cycles = d.conv_cycles(kFc, DataType::kFix16);
    EXPECT_GT(cycles.dram, cycles.compute) << d.name();
    // Weight stream dominates: 4096*9216*2 bytes over the DRAM interface.
    EXPECT_GT(cycles.dram, 4096.0 * 9216 * 2 / d.dram_bytes_per_cycle() * 0.9)
        << d.name();
  }
}

TEST(AllDesigns, UtilizationIsAlwaysAFraction) {
  const DesignRegistry registry = table2_designs();
  const graph::ConvSpine spine =
      graph::ConvSpine::extract(graph::models::resnet34());
  for (DesignId id : registry.ids()) {
    const AcceleratorDesign& d = registry.design(id);
    for (const graph::SpineNode& node : spine.nodes()) {
      const double u = d.utilization(node.shape, DataType::kFix16);
      EXPECT_GT(u, 0.0) << d.name() << " @ " << node.name;
      EXPECT_LE(u, 1.0 + 1e-9) << d.name() << " @ " << node.name;
    }
  }
}

TEST(AllDesigns, CyclesScaleWithWork) {
  // Halving Cout can never increase cycles.
  const DesignRegistry registry = table2_designs();
  ConvShape half = kMid3x3;
  half.cout /= 2;
  for (DesignId id : registry.ids()) {
    const AcceleratorDesign& d = registry.design(id);
    EXPECT_LE(d.conv_cycles(half, DataType::kFix16).total(),
              d.conv_cycles(kMid3x3, DataType::kFix16).total())
        << d.name();
  }
}

TEST(AllDesigns, DegenerateShapeThrows) {
  const SuperLipDesign d;
  EXPECT_THROW((void)d.conv_cycles(ConvShape{0, 3, 8, 8, 3, 3}, DataType::kFix16),
               InvalidArgument);
}

TEST(AllDesigns, DramBandwidthIsConfigurable) {
  SuperLipDesign d;
  const double before = d.conv_cycles(kFc, DataType::kFix16).dram;
  d.set_dram_bandwidth(gbps(64.0 * 8));  // 64 GB/s
  const double after = d.conv_cycles(kFc, DataType::kFix16).dram;
  EXPECT_NEAR(before / after, 2.0, 1e-9);
  EXPECT_THROW(d.set_dram_bandwidth(Bandwidth(0.0)), InvalidArgument);
}

TEST(Registry, Table2MenuIsThreeDesigns) {
  const DesignRegistry registry = table2_designs();
  ASSERT_EQ(registry.size(), 3);
  EXPECT_EQ(registry.design(0).name(), "SuperLIP");
  EXPECT_EQ(registry.design(1).name(), "SystolicGEMM");
  EXPECT_EQ(registry.design(2).name(), "WinogradF43");
  // All at 200 MHz per the paper's uniform setting.
  for (DesignId id : registry.ids()) {
    EXPECT_DOUBLE_EQ(registry.design(id).frequency().megahertz(), 200.0);
  }
}

TEST(Registry, FindAndDuplicates) {
  DesignRegistry registry = table2_designs();
  EXPECT_EQ(registry.find("WinogradF43"), 2);
  EXPECT_EQ(registry.find("nonexistent"), kInvalidDesign);
  EXPECT_THROW(registry.add(std::make_unique<SuperLipDesign>()), InvalidArgument);
  EXPECT_THROW(registry.add(nullptr), InvalidArgument);
  EXPECT_THROW((void)registry.design(99), InvalidArgument);
}

TEST(DesignAttributes, AreaCostDefaultsToPeScaling) {
  // Default: pe_count / 512 — the Table II designs land near 1.0.
  const SuperLipDesign superlip;
  EXPECT_DOUBLE_EQ(superlip.area_cost(), superlip.pe_count() / 512.0);
  const SystolicDesign systolic;
  EXPECT_DOUBLE_EQ(systolic.area_cost(), systolic.pe_count() / 512.0);
  for (const DesignId id : table2_designs().ids()) {
    const double area = table2_designs().design(id).area_cost();
    EXPECT_GT(area, 0.3);
    EXPECT_LT(area, 2.0);
  }
}

TEST(DesignAttributes, SettersOverrideAndValidate) {
  SuperLipDesign d;
  d.set_area_cost(2.5);
  EXPECT_DOUBLE_EQ(d.area_cost(), 2.5);
  d.set_energy_per_mac(picojoules(7.0));
  EXPECT_DOUBLE_EQ(d.energy_per_mac().picojoules(), 7.0);
  EXPECT_THROW(d.set_area_cost(0.0), InvalidArgument);
  EXPECT_THROW(d.set_area_cost(-1.0), InvalidArgument);
  EXPECT_THROW(d.set_energy_per_mac(Joules{}), InvalidArgument);
  EXPECT_THROW(d.set_energy_per_mac(picojoules(-3.0)), InvalidArgument);
}

TEST(DesignAttributes, Table2EnergyCalibrationsAreDistinct) {
  // Each family carries its own per-MAC price (docs/EXPLORE.md):
  // SuperLIP pays for line-buffer SRAM traffic, the systolic array saves
  // via operand forwarding, Winograd charges per *effective* MAC.
  const DesignRegistry registry = table2_designs();
  EXPECT_DOUBLE_EQ(registry.design(0).energy_per_mac().picojoules(), 3.4);
  EXPECT_DOUBLE_EQ(registry.design(1).energy_per_mac().picojoules(), 2.8);
  EXPECT_DOUBLE_EQ(registry.design(2).energy_per_mac().picojoules(), 2.1);
}

TEST(Registry, MakeTable2DesignByName) {
  const std::vector<std::string>& names = table2_design_names();
  ASSERT_EQ(names.size(), 3u);
  for (const std::string& name : names) {
    const std::unique_ptr<AcceleratorDesign> design = make_table2_design(name);
    ASSERT_NE(design, nullptr);
    EXPECT_EQ(design->name(), name);
  }
  try {
    (void)make_table2_design("NoSuchDesign");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    // Names both the offending value and the valid set.
    EXPECT_NE(std::string(e.what()).find("NoSuchDesign"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("SuperLIP"), std::string::npos);
  }
}

TEST(Registry, H2HMenuIsHeterogeneous) {
  const DesignRegistry registry = h2h_designs();
  ASSERT_EQ(registry.size(), 4);
  // Distinct names, distinct behaviour on a probe layer.
  const ConvShape probe = kMid3x3;
  double first = registry.design(0).conv_latency(probe, DataType::kFix16).count();
  bool any_different = false;
  for (DesignId id = 1; id < registry.size(); ++id) {
    const double t =
        registry.design(id).conv_latency(probe, DataType::kFix16).count();
    any_different = any_different || std::abs(t - first) > 1e-12;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace mars::accel
