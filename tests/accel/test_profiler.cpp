#include "mars/accel/profiler.h"

#include <gtest/gtest.h>

#include "mars/graph/models/models.h"
#include "mars/util/error.h"

namespace mars::accel {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  DesignRegistry registry_ = table2_designs();
  graph::ConvSpine spine_ =
      graph::ConvSpine::extract(graph::models::resnet101());
  ProfileMatrix matrix_{registry_, spine_};
};

TEST_F(ProfilerTest, DimensionsMatch) {
  EXPECT_EQ(matrix_.num_designs(), registry_.size());
  EXPECT_EQ(matrix_.num_layers(), spine_.size());
}

TEST_F(ProfilerTest, EntriesArePositiveAndConsistent) {
  for (DesignId d = 0; d < matrix_.num_designs(); ++d) {
    for (int l = 0; l < matrix_.num_layers(); ++l) {
      const LayerProfile& p = matrix_.at(d, l);
      EXPECT_GT(p.cycles, 0.0);
      EXPECT_GT(p.utilization, 0.0);
      EXPECT_LE(p.utilization, 1.0 + 1e-9);
      // Matches a direct model query.
      EXPECT_DOUBLE_EQ(p.cycles, registry_.design(d)
                                     .conv_cycles(spine_.node(l).shape,
                                                  spine_.dtype())
                                     .total());
    }
  }
}

TEST_F(ProfilerTest, BestDesignIsArgmin) {
  for (int l = 0; l < matrix_.num_layers(); ++l) {
    const DesignId best = matrix_.best_design(l);
    for (DesignId d = 0; d < matrix_.num_designs(); ++d) {
      EXPECT_LE(matrix_.at(best, l).cycles, matrix_.at(d, l).cycles);
    }
  }
}

TEST_F(ProfilerTest, BottleneckNetworkAvoidsWinograd) {
  // ResNet101 is dominated by 1x1 convolutions; the Winograd design must
  // never be the per-layer winner on them (the paper's observation).
  const DesignId winograd = registry_.find("WinogradF43");
  int winograd_wins_pointwise = 0;
  for (int l = 0; l < matrix_.num_layers(); ++l) {
    if (spine_.node(l).shape.is_pointwise() && matrix_.best_design(l) == winograd) {
      ++winograd_wins_pointwise;
    }
  }
  EXPECT_EQ(winograd_wins_pointwise, 0);
}

TEST_F(ProfilerTest, ScoresAreNormalised) {
  const std::vector<double> scores = matrix_.design_scores();
  ASSERT_EQ(scores.size(), static_cast<std::size_t>(registry_.size()));
  for (double s : scores) {
    EXPECT_GT(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-9);
  }
}

TEST_F(ProfilerTest, TotalCyclesSumRows) {
  for (DesignId d = 0; d < matrix_.num_designs(); ++d) {
    double expected = 0.0;
    for (int l = 0; l < matrix_.num_layers(); ++l) {
      expected += matrix_.at(d, l).cycles;
    }
    EXPECT_DOUBLE_EQ(matrix_.total_cycles(d), expected);
  }
}

TEST_F(ProfilerTest, OutOfRangeThrows) {
  EXPECT_THROW((void)matrix_.at(-1, 0), InvalidArgument);
  EXPECT_THROW((void)matrix_.at(0, matrix_.num_layers()), InvalidArgument);
}

TEST(Profiler, MixedAssignmentBeatsAnySingleDesign) {
  // The whole point of adaptive systems: the per-layer best mix is at
  // least as fast as the best homogeneous choice, and strictly faster on
  // heterogeneous workloads like VGG16.
  const DesignRegistry registry = table2_designs();
  const graph::ConvSpine spine =
      graph::ConvSpine::extract(graph::models::vgg16());
  const ProfileMatrix matrix(registry, spine);

  double mixed = 0.0;
  for (int l = 0; l < matrix.num_layers(); ++l) {
    mixed += matrix.at(matrix.best_design(l), l).cycles;
  }
  double best_single = matrix.total_cycles(0);
  for (DesignId d = 1; d < registry.size(); ++d) {
    best_single = std::min(best_single, matrix.total_cycles(d));
  }
  EXPECT_LT(mixed, best_single);
}

}  // namespace
}  // namespace mars::accel
