// Differential determinism suite for the serving-objective fitness: the
// batch path must charge and price exactly as a serial left-to-right
// score() sweep would, and a util::WorkerPool must change nothing — not
// the fitness bits, not the memo counters.
#include <gtest/gtest.h>

#include <vector>

#include "mars/comap/objective.h"
#include "mars/plan/engines.h"
#include "mars/topology/presets.h"
#include "mars/util/error.h"
#include "mars/util/worker_pool.h"

namespace mars::comap {
namespace {

class ObjectiveTest : public ::testing::Test {
 protected:
  ObjectiveTest()
      : topo_(topology::h2h_cloud(4, gbps(4.0), 4)),
        designs_(accel::h2h_designs()) {
    problem_.tenants = {Tenant{"alexnet", 1.0, Seconds{}},
                        Tenant{"resnet18", 1.0, Seconds{}}};
    problem_.topo = &topo_;
    problem_.designs = &designs_;
    problem_.adaptive = false;
    problem_.rollout.rate = 120.0;
    problem_.rollout.duration = Seconds(0.3);
    problem_.rollout.seed = 7;
    problem_.rollout.default_slo = milliseconds(80.0);
  }

  /// Baseline mapping for tenant `t` restricted to `placement` — cheap,
  /// deterministic, and distinct mappings for distinct slices.
  [[nodiscard]] core::Mapping mapped(const ServingObjective& objective,
                                     std::size_t t,
                                     topology::AccMask placement) const {
    core::Problem sliced = objective.planner(t).problem();
    sliced.placement = placement;
    return plan::BaselineEngine().search(sliced).mapping;
  }

  /// A small pool of structurally distinct candidates over slice combos.
  [[nodiscard]] std::vector<CandidatePlan> candidates(
      const ServingObjective& objective) const {
    const topology::AccMask lower = 0x3;
    const topology::AccMask upper = 0xC;
    std::vector<CandidatePlan> plans;
    for (const auto& [a, b] :
         std::vector<std::pair<topology::AccMask, topology::AccMask>>{
             {0, 0}, {lower, upper}, {upper, lower}, {0, upper}, {lower, 0}}) {
      plans.push_back(
          {mapped(objective, 0, a), mapped(objective, 1, b)});
    }
    return plans;
  }

  topology::Topology topo_;
  accel::DesignRegistry designs_;
  CoMapProblem problem_;
};

TEST_F(ObjectiveTest, RejectsWrongArity) {
  ServingObjective objective(problem_);
  EXPECT_THROW((void)objective.score({mapped(objective, 0, 0)}),
               InvalidArgument);
}

TEST_F(ObjectiveTest, FitnessIsSloMissesPlusBoundedTail) {
  ServingObjective objective(problem_);
  const ServingObjective::Score score =
      objective.score(candidates(objective).front());
  EXPECT_GT(score.offered, 0);
  EXPECT_LE(score.good, score.completed);
  EXPECT_LE(score.completed + score.rejected, score.offered);
  const double integer_part = static_cast<double>(score.offered - score.good);
  EXPECT_GE(score.fitness, integer_part);
  EXPECT_LT(score.fitness, integer_part + 1.0);
}

TEST_F(ObjectiveTest, ScoreIsMemoised) {
  ServingObjective objective(problem_);
  const CandidatePlan plan = candidates(objective).front();
  const ServingObjective::Score first = objective.score(plan);
  EXPECT_EQ(objective.rollout_misses(), 1);
  EXPECT_EQ(objective.rollout_hits(), 0);
  const ServingObjective::Score again = objective.score(plan);
  EXPECT_EQ(objective.rollout_misses(), 1);
  EXPECT_EQ(objective.rollout_hits(), 1);
  EXPECT_EQ(first.fitness, again.fitness);
  // The per-tenant artifacts were reused, not rebuilt.
  EXPECT_EQ(objective.proto_misses(), 2);
  EXPECT_EQ(objective.proto_hits(), 2);
}

TEST_F(ObjectiveTest, BatchMatchesSerialScoreSweep) {
  ServingObjective serial(problem_);
  ServingObjective batched(problem_);
  std::vector<CandidatePlan> plans = candidates(serial);
  plans.push_back(plans[1]);  // an in-batch duplicate

  std::vector<double> expected;
  for (const CandidatePlan& plan : plans) {
    expected.push_back(serial.score(plan).fitness);
  }
  const std::vector<double> actual = batched.score_batch(plans);

  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "candidate " << i;
  }
  EXPECT_EQ(batched.rollout_hits(), serial.rollout_hits());
  EXPECT_EQ(batched.rollout_misses(), serial.rollout_misses());
}

TEST_F(ObjectiveTest, BatchChargesDuplicatesAsHits) {
  ServingObjective objective(problem_);
  const std::vector<CandidatePlan> base = candidates(objective);
  // 5 distinct candidates, the second repeated twice more.
  std::vector<CandidatePlan> plans = base;
  plans.push_back(base[1]);
  plans.push_back(base[1]);
  (void)objective.score_batch(plans);
  EXPECT_EQ(objective.rollout_misses(), 5);
  EXPECT_EQ(objective.rollout_hits(), 2);
  // A repeat batch is all hits.
  (void)objective.score_batch(plans);
  EXPECT_EQ(objective.rollout_misses(), 5);
  EXPECT_EQ(objective.rollout_hits(), 9);
}

TEST_F(ObjectiveTest, WorkerPoolChangesNothing) {
  ServingObjective serial(problem_);
  ServingObjective threaded(problem_);
  std::vector<CandidatePlan> plans = candidates(serial);
  plans.push_back(plans[2]);

  const std::vector<double> reference = serial.score_batch(plans, nullptr);
  util::WorkerPool pool(4);
  const std::vector<double> parallel = threaded.score_batch(plans, &pool);

  ASSERT_EQ(parallel.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(parallel[i], reference[i]) << "candidate " << i;
  }
  EXPECT_EQ(threaded.rollout_hits(), serial.rollout_hits());
  EXPECT_EQ(threaded.rollout_misses(), serial.rollout_misses());
  EXPECT_EQ(threaded.proto_hits(), serial.proto_hits());
  EXPECT_EQ(threaded.proto_misses(), serial.proto_misses());
}

TEST_F(ObjectiveTest, PerTenantSlosReachAdmission) {
  // Same mappings, tighter tenant-0 SLO: goodput can only shrink, and
  // tenant 0's objective is the one consulted (fitness must change when
  // the tighter bound starts failing completions that used to be good).
  ServingObjective loose(problem_);
  const ServingObjective::Score base = loose.score(candidates(loose).front());

  CoMapProblem tight = problem_;
  tight.tenants[0].slo = milliseconds(1.0);  // unmeetably tight
  ServingObjective strict(tight);
  const ServingObjective::Score bound =
      strict.score(candidates(strict).front());
  EXPECT_LE(bound.good, base.good);
  EXPECT_GE(bound.fitness, base.fitness);
}

}  // namespace
}  // namespace mars::comap
