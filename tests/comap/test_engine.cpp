#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "mars/comap/engine.h"
#include "mars/topology/presets.h"
#include "mars/util/error.h"

namespace mars::comap {
namespace {

TEST(PartitionDecode, EqualSharesSplitTheFleetEvenly) {
  const auto masks = decode_partition_genome({0.5, 0.5, 0.5}, 2, 4);
  ASSERT_EQ(masks.size(), 2u);
  EXPECT_EQ(masks[0], 0x3u);  // accelerators {0,1}
  EXPECT_EQ(masks[1], 0xCu);  // accelerators {2,3}
}

TEST(PartitionDecode, AllZeroGenomeDecaysToEqualShares) {
  EXPECT_EQ(decode_partition_genome({0.0, 0.0, 0.0}, 2, 4),
            decode_partition_genome({0.5, 0.5, 0.5}, 2, 4));
}

TEST(PartitionDecode, SharedPoolJoinsEveryTenantSlice) {
  const auto masks = decode_partition_genome({0.0, 0.0, 1.0}, 2, 4);
  // Own ranges {0} and {1}; shared pool {2,3} unioned into both.
  EXPECT_EQ(masks[0], 0xDu);
  EXPECT_EQ(masks[1], 0xEu);
  EXPECT_EQ(masks[0] & masks[1], 0xCu);
}

TEST(PartitionDecode, EveryTenantKeepsAtLeastOneAccelerator) {
  const auto masks = decode_partition_genome({1.0, 0.0, 0.0, 0.0}, 3, 4);
  ASSERT_EQ(masks.size(), 3u);
  for (const topology::AccMask mask : masks) {
    EXPECT_GE(topology::mask_count(mask), 1);
  }
  // Tenant ranges are disjoint when the shared pool is empty, and cover
  // the fleet.
  EXPECT_EQ(masks[0] | masks[1] | masks[2], 0xFu);
  EXPECT_EQ(masks[0] & masks[1], 0u);
  EXPECT_EQ(masks[1] & masks[2], 0u);
}

TEST(PartitionDecode, GenesOutsideUnitIntervalAreClamped) {
  EXPECT_EQ(decode_partition_genome({7.0, -3.0, 0.0}, 2, 4),
            decode_partition_genome({1.0, 0.0, 0.0}, 2, 4));
}

TEST(PartitionDecode, RejectsWrongArityAndTinyFleet) {
  EXPECT_THROW((void)decode_partition_genome({0.5, 0.5}, 2, 4),
               InvalidArgument);
  EXPECT_THROW((void)decode_partition_genome({0.5, 0.5, 0.5}, 2, 1),
               InvalidArgument);
}

TEST(EncodingSpec, ParsesNamedValuesAndRejectsOthers) {
  EXPECT_EQ(parse_encoding("partition"), Encoding::kPartition);
  EXPECT_EQ(parse_encoding("interleave"), Encoding::kInterleave);
  try {
    (void)parse_encoding("mixed");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("bad comap encoding 'mixed'"),
              std::string::npos);
  }
}

TEST(EncodingSpec, SpecStringNamesTheSearchNotTheExecution) {
  CoMapConfig config;
  config.seed = 42;
  config.threads = 8;  // execution knob: must NOT appear
  const CoMapEngine engine(config);
  const std::string spec = engine.spec_string();
  EXPECT_NE(spec.find("comap:partition"), std::string::npos);
  EXPECT_NE(spec.find("seed=42"), std::string::npos);
  EXPECT_NE(spec.find(";inner=["), std::string::npos);
  EXPECT_EQ(spec.find("thread"), std::string::npos);
}

TEST(EncodingSpec, ValidateRejectsBadThreads) {
  CoMapConfig config;
  config.threads = 0;
  EXPECT_THROW(validate_config(config), InvalidArgument);
}

/// Search tests run a deliberately tiny schedule on the 4-accelerator
/// cloud — enough generations for the GA to move, small enough to stay
/// fast under sanitizers.
class EngineSearchTest : public ::testing::Test {
 protected:
  EngineSearchTest()
      : topo_(topology::h2h_cloud(4, gbps(4.0), 4)),
        designs_(accel::h2h_designs()) {
    problem_.tenants = {Tenant{"alexnet", 1.0, Seconds{}},
                        Tenant{"resnet18", 1.0, Seconds{}}};
    problem_.topo = &topo_;
    problem_.designs = &designs_;
    problem_.adaptive = false;
    problem_.rollout.rate = 120.0;
    problem_.rollout.duration = Seconds(0.3);
    problem_.rollout.seed = 7;
    problem_.rollout.default_slo = milliseconds(80.0);
  }

  [[nodiscard]] static CoMapConfig tiny(Encoding encoding, int threads = 1) {
    CoMapConfig config;
    config.encoding = encoding;
    config.seed = 7;
    config.threads = threads;
    config.ga.population = 6;
    config.ga.generations = 3;
    config.ga.stall_generations = 2;
    config.inner.seed = 7;
    config.inner.first_ga.population = 8;
    config.inner.first_ga.generations = 3;
    config.inner.first_ga.stall_generations = 2;
    config.inner.second.ga.population = 6;
    config.inner.second.ga.generations = 2;
    return config;
  }

  static void expect_identical(const CoMapResult& a, const CoMapResult& b) {
    EXPECT_EQ(a.score.fitness, b.score.fitness);
    EXPECT_EQ(a.independent_score.fitness, b.independent_score.fitness);
    EXPECT_EQ(a.joint_won, b.joint_won);
    EXPECT_EQ(a.history, b.history);
    EXPECT_EQ(a.provenance.evaluations, b.provenance.evaluations);
    EXPECT_EQ(a.rollout_hits, b.rollout_hits);
    EXPECT_EQ(a.rollout_misses, b.rollout_misses);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t t = 0; t < a.tenants.size(); ++t) {
      EXPECT_EQ(a.tenants[t].placement, b.tenants[t].placement);
    }
  }

  topology::Topology topo_;
  accel::DesignRegistry designs_;
  CoMapProblem problem_;
};

TEST_F(EngineSearchTest, SearchInvariantsHoldForBothEncodings) {
  for (const Encoding encoding :
       {Encoding::kPartition, Encoding::kInterleave}) {
    const CoMapEngine engine(tiny(encoding));
    const CoMapResult result = engine.search(problem_);
    ASSERT_EQ(result.mappings.size(), 2u) << to_string(encoding);
    ASSERT_EQ(result.tenants.size(), 2u);
    EXPECT_EQ(result.tenants[0].model, "alexnet");
    EXPECT_EQ(result.tenants[1].model, "resnet18");
    // The explicit independent candidate caps the joint fitness.
    EXPECT_LE(result.score.fitness, result.independent_score.fitness);
    EXPECT_EQ(result.joint_won,
              result.score.fitness < result.independent_score.fitness);
    EXPECT_GE(result.provenance.evaluations, 1);
    EXPECT_EQ(result.provenance.engine, "comap");
    EXPECT_EQ(result.provenance.spec, engine.spec_string());
    EXPECT_EQ(result.provenance.members.size(), 2u);
    EXPECT_FALSE(result.history.empty());
  }
}

TEST_F(EngineSearchTest, ResultsAreByteIdenticalAcrossThreadsAndRepeats) {
  for (const Encoding encoding :
       {Encoding::kPartition, Encoding::kInterleave}) {
    const CoMapEngine serial(tiny(encoding, /*threads=*/1));
    const CoMapEngine threaded(tiny(encoding, /*threads=*/4));
    const CoMapResult reference = serial.search(problem_);
    expect_identical(reference, threaded.search(problem_));
    expect_identical(reference, serial.search(problem_));
  }
}

TEST_F(EngineSearchTest, EvaluationBudgetOfOneReturnsIndependent) {
  const CoMapEngine engine(tiny(Encoding::kPartition));
  const CoMapResult result =
      engine.search(problem_, plan::Budget::evaluations(1));
  EXPECT_FALSE(result.joint_won);
  EXPECT_EQ(result.provenance.winner, "independent");
  EXPECT_EQ(result.provenance.evaluations, 1);
  EXPECT_EQ(result.provenance.stopped, plan::StopReason::kEvaluationBudget);
  EXPECT_EQ(result.score.fitness, result.independent_score.fitness);
  for (const TenantOutcome& tenant : result.tenants) {
    EXPECT_EQ(tenant.placement, 0u);  // full fleet
  }
}

TEST_F(EngineSearchTest, CancellationStillReturnsTheIndependentAnswer) {
  plan::CancelToken token;
  token.cancel();
  const CoMapEngine engine(tiny(Encoding::kPartition));
  const CoMapResult result =
      engine.search(problem_, plan::Budget::cancellable(token));
  EXPECT_EQ(result.provenance.stopped, plan::StopReason::kCancelled);
  EXPECT_FALSE(result.joint_won);
  ASSERT_EQ(result.mappings.size(), 2u);
}

TEST_F(EngineSearchTest, ProgressReportsMonotoneEvaluations) {
  std::vector<long long> evals;
  const CoMapEngine engine(tiny(Encoding::kPartition));
  (void)engine.search(problem_, {}, nullptr, [&](const plan::Progress& p) {
    evals.push_back(p.evaluations);
  });
  ASSERT_FALSE(evals.empty());
  EXPECT_EQ(evals.front(), 1);  // the independent candidate
  for (std::size_t i = 1; i < evals.size(); ++i) {
    EXPECT_GE(evals[i], evals[i - 1]);
  }
}

TEST_F(EngineSearchTest, MappingCacheComposesWithInnerSearches) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "comap-cache";
  std::filesystem::remove_all(dir);
  const CoMapEngine engine(tiny(Encoding::kPartition));

  const serve::MappingCache cold(dir.string());
  const CoMapResult first = engine.search(problem_, {}, &cold);
  EXPECT_EQ(cold.hits(), 0);
  EXPECT_GT(cold.stores(), 0);

  const serve::MappingCache warm(dir.string());
  const CoMapResult second = engine.search(problem_, {}, &warm);
  EXPECT_GT(warm.hits(), 0);
  EXPECT_EQ(warm.stores(), 0);
  expect_identical(first, second);
}

/// The quality gate from the acceptance criterion: on the contended
/// two-tenant pair at 150 rps, the joint partition search strictly beats
/// independent per-model planning under the rollout objective.
TEST(CoMapQuality, JointBeatsIndependentOnContendedPair) {
  const topology::Topology topo = topology::h2h_cloud(8, gbps(4.0), 4);
  const accel::DesignRegistry designs = accel::h2h_designs();
  CoMapProblem problem;
  problem.tenants = {Tenant{"facebagnet", 1.0, Seconds{}},
                     Tenant{"resnet50", 1.0, Seconds{}}};
  problem.topo = &topo;
  problem.designs = &designs;
  problem.adaptive = false;
  problem.rollout.rate = 150.0;
  problem.rollout.duration = Seconds(0.5);
  problem.rollout.seed = 1;
  problem.rollout.default_slo = milliseconds(100.0);

  CoMapConfig config;
  config.seed = 1;
  config.ga.population = 8;
  config.ga.generations = 6;
  config.ga.stall_generations = 4;
  config.inner.seed = 1;
  config.inner.first_ga.population = 12;
  config.inner.first_ga.generations = 8;
  config.inner.first_ga.stall_generations = 4;
  config.inner.second.ga.population = 8;
  config.inner.second.ga.generations = 6;

  const CoMapResult result = CoMapEngine(config).search(problem);
  EXPECT_TRUE(result.joint_won);
  EXPECT_LT(result.score.fitness, result.independent_score.fitness);
  EXPECT_GT(result.score.goodput_rps(problem.rollout.duration),
            result.independent_score.goodput_rps(problem.rollout.duration));
  // Partition winners carry their fleet slices for serve --shards.
  for (const TenantOutcome& tenant : result.tenants) {
    EXPECT_NE(tenant.placement, 0u);
  }
}

}  // namespace
}  // namespace mars::comap
