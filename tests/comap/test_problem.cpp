#include <gtest/gtest.h>

#include "mars/accel/registry.h"
#include "mars/comap/problem.h"
#include "mars/topology/presets.h"
#include "mars/util/error.h"

namespace mars::comap {
namespace {

class ProblemTest : public ::testing::Test {
 protected:
  ProblemTest()
      : topo_(topology::h2h_cloud(4, gbps(4.0), 4)),
        designs_(accel::h2h_designs()) {}

  [[nodiscard]] CoMapProblem valid() const {
    CoMapProblem problem;
    problem.tenants = {Tenant{"alexnet", 1.0, Seconds{}},
                       Tenant{"resnet18", 2.0, milliseconds(50.0)}};
    problem.topo = &topo_;
    problem.designs = &designs_;
    problem.adaptive = false;
    return problem;
  }

  topology::Topology topo_;
  accel::DesignRegistry designs_;
};

TEST_F(ProblemTest, ValidProblemPasses) {
  EXPECT_NO_THROW(valid().validate());
}

TEST_F(ProblemTest, RejectsEmptyTenantSet) {
  CoMapProblem problem = valid();
  problem.tenants.clear();
  EXPECT_THROW(problem.validate(), InvalidArgument);
}

TEST_F(ProblemTest, RejectsMoreTenantsThanAccelerators) {
  CoMapProblem problem = valid();
  while (problem.tenants.size() <= static_cast<std::size_t>(topo_.size())) {
    problem.tenants.push_back(Tenant{"alexnet", 1.0, Seconds{}});
  }
  EXPECT_THROW(problem.validate(), InvalidArgument);
}

TEST_F(ProblemTest, RejectsNonPositiveWeight) {
  CoMapProblem problem = valid();
  problem.tenants[0].weight = 0.0;
  EXPECT_THROW(problem.validate(), InvalidArgument);
}

TEST_F(ProblemTest, RejectsUnnamedTenant) {
  CoMapProblem problem = valid();
  problem.tenants[0].model.clear();
  EXPECT_THROW(problem.validate(), InvalidArgument);
}

TEST_F(ProblemTest, RejectsBadRollout) {
  for (const auto mutate :
       {+[](CoMapProblem& p) { p.rollout.rate = 0.0; },
        +[](CoMapProblem& p) { p.rollout.duration = Seconds{}; },
        +[](CoMapProblem& p) { p.rollout.default_slo = Seconds{}; }}) {
    CoMapProblem problem = valid();
    mutate(problem);
    EXPECT_THROW(problem.validate(), InvalidArgument);
  }
}

TEST_F(ProblemTest, SloOfFallsBackToDefault) {
  const CoMapProblem problem = valid();
  // Tenant 0 carries no SLO of its own; tenant 1 set 50 ms.
  EXPECT_DOUBLE_EQ(problem.slo_of(0).count(),
                   problem.rollout.default_slo.count());
  EXPECT_DOUBLE_EQ(problem.slo_of(1).count(), milliseconds(50.0).count());
}

TEST_F(ProblemTest, WeightsInTenantOrder) {
  const std::vector<double> weights = valid().weights();
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], 1.0);
  EXPECT_DOUBLE_EQ(weights[1], 2.0);
}

}  // namespace
}  // namespace mars::comap
