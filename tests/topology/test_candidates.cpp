#include "mars/topology/candidates.h"

#include <gtest/gtest.h>

#include <set>

#include "mars/topology/presets.h"
#include "mars/util/error.h"
#include "mars/util/rng.h"

namespace mars::topology {
namespace {

TEST(Candidates, F1FamilyIsLaminarAndComplete) {
  const Topology topo = f1_16xlarge();
  const std::vector<AccSetCandidate> candidates = accset_candidates(topo);

  std::set<AccMask> masks;
  for (const AccSetCandidate& c : candidates) masks.insert(c.mask);

  // Both 4-FPGA groups, their 2-FPGA bisections, and all singletons.
  EXPECT_TRUE(masks.count(0b00001111u));
  EXPECT_TRUE(masks.count(0b11110000u));
  EXPECT_TRUE(masks.count(0b00000011u));
  EXPECT_TRUE(masks.count(0b00001100u));
  EXPECT_TRUE(masks.count(0b00110000u));
  EXPECT_TRUE(masks.count(0b11000000u));
  for (AccId id = 0; id < topo.size(); ++id) {
    EXPECT_TRUE(masks.count(mask_of(id))) << id;
  }
  // The full 8-FPGA mask is NOT a candidate: the two groups have no direct
  // links, so the edge-removal heuristic never yields a connected whole.
  EXPECT_FALSE(masks.count(topo.full_mask()));
}

TEST(Candidates, AllCandidatesAreConnected) {
  const Topology topo = f1_16xlarge();
  for (const AccSetCandidate& c : accset_candidates(topo)) {
    EXPECT_TRUE(topo.connected(c.mask)) << mask_to_string(c.mask);
    EXPECT_GT(c.internal_bw.bits_per_second(), 0.0);
  }
}

TEST(Candidates, SortedBySizeDescending) {
  const Topology topo = f1_16xlarge();
  const std::vector<AccSetCandidate> candidates = accset_candidates(topo);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(mask_count(candidates[i - 1].mask), mask_count(candidates[i].mask));
  }
}

TEST(Candidates, CliqueFamilyIncludesFullSet) {
  const Topology topo = fully_connected(8, gbps(4.0), gbps(4.0));
  const std::vector<AccSetCandidate> candidates = accset_candidates(topo);
  std::set<AccMask> masks;
  for (const AccSetCandidate& c : candidates) masks.insert(c.mask);
  EXPECT_TRUE(masks.count(topo.full_mask()));
  EXPECT_TRUE(masks.count(0b00001111u));  // bisection half
  EXPECT_TRUE(masks.count(0b00000011u));  // quarter
}

TEST(Candidates, HierarchicalBandwidthLevels) {
  // 0-1 at 8, 2-3 at 8, bridge 1-2 at 2: levels produce {0,1},{2,3} and
  // the whole chain.
  Topology topo("chain");
  for (int i = 0; i < 4; ++i) {
    topo.add_accelerator("a" + std::to_string(i), gibibytes(1.0), gbps(2.0));
  }
  topo.connect(0, 1, gbps(8.0));
  topo.connect(2, 3, gbps(8.0));
  topo.connect(1, 2, gbps(2.0));

  std::set<AccMask> masks;
  for (const AccSetCandidate& c : accset_candidates(topo)) masks.insert(c.mask);
  EXPECT_TRUE(masks.count(0b1111u));
  EXPECT_TRUE(masks.count(0b0011u));
  EXPECT_TRUE(masks.count(0b1100u));
}

TEST(Candidates, RingBisectionsStayConnected) {
  const Topology topo = ring(8, gbps(8.0), gbps(2.0));
  for (const AccSetCandidate& c : accset_candidates(topo)) {
    EXPECT_TRUE(topo.connected(c.mask)) << mask_to_string(c.mask);
  }
}

TEST(DecodePartition, HighestPriorityDisjointCover) {
  const Topology topo = f1_16xlarge();
  const std::vector<AccSetCandidate> candidates = accset_candidates(topo);

  // Push both 4-groups to the top.
  std::vector<double> priorities(candidates.size(), 0.1);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].mask == 0b00001111u || candidates[i].mask == 0b11110000u) {
      priorities[i] = 1.0;
    }
  }
  const std::vector<AccMask> partition =
      decode_partition(topo, candidates, priorities);
  ASSERT_EQ(partition.size(), 2u);
  EXPECT_EQ(partition[0], 0b00001111u);
  EXPECT_EQ(partition[1], 0b11110000u);
}

TEST(DecodePartition, AlwaysTilesExactly) {
  const Topology topo = f1_16xlarge();
  const std::vector<AccSetCandidate> candidates = accset_candidates(topo);
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> priorities;
    priorities.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      priorities.push_back(rng.uniform());
    }
    const std::vector<AccMask> partition =
        decode_partition(topo, candidates, priorities);
    AccMask covered = 0;
    for (AccMask mask : partition) {
      EXPECT_EQ(covered & mask, 0u);  // disjoint
      covered |= mask;
    }
    EXPECT_EQ(covered, topo.full_mask());
  }
}

TEST(DecodePartition, RejectsArityMismatch) {
  const Topology topo = f1_16xlarge();
  const std::vector<AccSetCandidate> candidates = accset_candidates(topo);
  EXPECT_THROW((void)decode_partition(topo, candidates, {1.0}), InvalidArgument);
}

}  // namespace
}  // namespace mars::topology
