#include "mars/topology/topology.h"

#include <gtest/gtest.h>

#include "mars/topology/presets.h"
#include "mars/util/error.h"

namespace mars::topology {
namespace {

TEST(MaskHelpers, Basics) {
  const AccMask mask = mask_of(0) | mask_of(3) | mask_of(5);
  EXPECT_EQ(mask_count(mask), 3);
  EXPECT_TRUE(mask_contains(mask, 3));
  EXPECT_FALSE(mask_contains(mask, 1));
  EXPECT_EQ(mask_members(mask), (std::vector<AccId>{0, 3, 5}));
  EXPECT_EQ(mask_to_string(mask), "{0,3,5}");
  EXPECT_EQ(mask_to_string(0), "{}");
}

TEST(Topology, BuildAndInspect) {
  Topology topo("t");
  const AccId a = topo.add_accelerator("a", gibibytes(1.0), gbps(2.0));
  const AccId b = topo.add_accelerator("b", gibibytes(2.0), gbps(4.0));
  topo.connect(a, b, gbps(8.0));

  EXPECT_EQ(topo.size(), 2);
  EXPECT_TRUE(topo.has_link(a, b));
  EXPECT_TRUE(topo.has_link(b, a));  // symmetric
  EXPECT_DOUBLE_EQ(topo.link(a, b).gbps(), 8.0);
  EXPECT_DOUBLE_EQ(topo.host_bandwidth(b).gbps(), 4.0);
  EXPECT_DOUBLE_EQ(topo.accelerator(b).dram.gib(), 2.0);
  EXPECT_EQ(topo.neighbors(a), (std::vector<AccId>{b}));
  EXPECT_EQ(topo.full_mask(), 0b11u);
}

TEST(Topology, RejectsBadInput) {
  Topology topo("t");
  const AccId a = topo.add_accelerator("a", gibibytes(1.0), gbps(2.0));
  EXPECT_THROW(topo.connect(a, a, gbps(1.0)), InvalidArgument);
  EXPECT_THROW(topo.connect(a, 7, gbps(1.0)), InvalidArgument);
  EXPECT_THROW((void)topo.accelerator(9), InvalidArgument);
  EXPECT_THROW(topo.add_accelerator("z", Bytes(0.0), gbps(1.0)), InvalidArgument);
}

TEST(Topology, Connectivity) {
  Topology topo = grouped(2, 2, gbps(8.0), gbps(2.0));
  // Within a group: connected; across groups: not (host-only).
  EXPECT_TRUE(topo.connected(mask_of(0) | mask_of(1)));
  EXPECT_TRUE(topo.connected(mask_of(2) | mask_of(3)));
  EXPECT_FALSE(topo.connected(mask_of(0) | mask_of(2)));
  EXPECT_FALSE(topo.connected(topo.full_mask()));
  EXPECT_TRUE(topo.connected(mask_of(3)));
  EXPECT_FALSE(topo.connected(0));
}

TEST(Topology, MinInternalBandwidth) {
  Topology topo("t");
  for (int i = 0; i < 3; ++i) {
    topo.add_accelerator("a" + std::to_string(i), gibibytes(1.0), gbps(2.0));
  }
  topo.connect(0, 1, gbps(8.0));
  topo.connect(1, 2, gbps(4.0));
  topo.connect(0, 2, gbps(1.0));
  // Spanning 0-1-2 avoids the 1 Gb/s edge: bottleneck 4 Gb/s.
  EXPECT_DOUBLE_EQ(topo.min_internal_bandwidth(topo.full_mask()).gbps(), 4.0);
  // Singleton: no internal communication.
  EXPECT_TRUE(std::isinf(topo.min_internal_bandwidth(mask_of(0)).bits_per_second()));
  EXPECT_THROW((void)topo.min_internal_bandwidth(mask_of(0) | mask_of(2) | 0x10),
               InvalidArgument);
}

TEST(Topology, BestLinkBetween) {
  Topology topo = grouped(2, 2, gbps(8.0), gbps(2.0));
  EXPECT_DOUBLE_EQ(topo.best_link_between(mask_of(0), mask_of(1)).gbps(), 8.0);
  // No direct inter-group link.
  EXPECT_DOUBLE_EQ(
      topo.best_link_between(mask_of(0) | mask_of(1), mask_of(2) | mask_of(3))
          .gbps(),
      0.0);
  EXPECT_THROW((void)topo.best_link_between(mask_of(0), mask_of(0)),
               InvalidArgument);
}

TEST(Topology, HostBandwidthAggregation) {
  Topology topo("t");
  topo.add_accelerator("a", gibibytes(1.0), gbps(2.0));
  topo.add_accelerator("b", gibibytes(1.0), gbps(1.0));
  EXPECT_DOUBLE_EQ(topo.min_host_bandwidth(topo.full_mask()).gbps(), 1.0);
}

TEST(Topology, BandwidthLevels) {
  Topology topo("t");
  for (int i = 0; i < 4; ++i) {
    topo.add_accelerator("a" + std::to_string(i), gibibytes(1.0), gbps(2.0));
  }
  topo.connect(0, 1, gbps(8.0));
  topo.connect(2, 3, gbps(8.0));
  topo.connect(1, 2, gbps(2.0));
  const std::vector<Bandwidth> levels = topo.bandwidth_levels();
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_DOUBLE_EQ(levels[0].gbps(), 2.0);
  EXPECT_DOUBLE_EQ(levels[1].gbps(), 8.0);
}

TEST(Topology, ComponentsAboveThreshold) {
  Topology topo("t");
  for (int i = 0; i < 4; ++i) {
    topo.add_accelerator("a" + std::to_string(i), gibibytes(1.0), gbps(2.0));
  }
  topo.connect(0, 1, gbps(8.0));
  topo.connect(2, 3, gbps(8.0));
  topo.connect(1, 2, gbps(2.0));

  // With every link: one component.
  EXPECT_EQ(topo.components_above(topo.full_mask(), Bandwidth(0.0)).size(), 1u);
  // Above 2 Gb/s: the bridge disappears -> {0,1} and {2,3}.
  const auto split = topo.components_above(topo.full_mask(), gbps(4.0));
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0], mask_of(0) | mask_of(1));
  EXPECT_EQ(split[1], mask_of(2) | mask_of(3));
  // Above everything: singletons.
  EXPECT_EQ(topo.components_above(topo.full_mask(), gbps(100.0)).size(), 4u);
}

TEST(Presets, F1SixteenXLargeShape) {
  const Topology topo = f1_16xlarge();
  EXPECT_EQ(topo.size(), 8);
  // Intra-group full crossbar at 8 Gb/s.
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(topo.link(i, j).gbps(), 8.0);
      EXPECT_DOUBLE_EQ(topo.link(i + 4, j + 4).gbps(), 8.0);
    }
  }
  // No direct inter-group links; host at 2 Gb/s; 1 GiB DRAM.
  for (int i = 0; i < 4; ++i) {
    for (int j = 4; j < 8; ++j) {
      EXPECT_FALSE(topo.has_link(i, j));
    }
  }
  EXPECT_DOUBLE_EQ(topo.host_bandwidth(0).gbps(), 2.0);
  EXPECT_DOUBLE_EQ(topo.accelerator(7).dram.gib(), 1.0);
  EXPECT_NO_THROW(topo.validate());
}

TEST(Presets, H2HCloudIsUniformClique) {
  const Topology topo = h2h_cloud(8, gbps(4.0), /*num_fixed_designs=*/4);
  EXPECT_EQ(topo.size(), 8);
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_DOUBLE_EQ(topo.link(a, b).gbps(), 4.0);
    }
    EXPECT_DOUBLE_EQ(topo.host_bandwidth(a).gbps(), 4.0);
    EXPECT_EQ(topo.accelerator(a).fixed_design, a / 2);  // block assignment
  }
}

TEST(Presets, RingAndClique) {
  const Topology ring_topo = ring(5, gbps(8.0), gbps(2.0));
  EXPECT_TRUE(ring_topo.connected(ring_topo.full_mask()));
  EXPECT_TRUE(ring_topo.has_link(0, 4));   // wraparound
  EXPECT_FALSE(ring_topo.has_link(0, 2));  // no chord

  const Topology clique = fully_connected(4, gbps(8.0), gbps(2.0));
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      EXPECT_TRUE(clique.has_link(a, b));
    }
  }
}

TEST(Presets, AdaptiveByDefault) {
  const Topology topo = f1_16xlarge();
  for (AccId id = 0; id < topo.size(); ++id) {
    EXPECT_EQ(topo.accelerator(id).fixed_design, -1);
  }
}

}  // namespace
}  // namespace mars::topology
