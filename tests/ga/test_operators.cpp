#include "mars/ga/operators.h"

#include <gtest/gtest.h>

#include "mars/util/error.h"

namespace mars::ga {
namespace {

TEST(TournamentSelect, PicksBestOfFullTournament) {
  Rng rng(1);
  const std::vector<double> fitness{5.0, 1.0, 3.0, 4.0};
  // With arity = population size repeated draws almost surely include the
  // best; over many trials the minimum must be selected most often.
  int best_count = 0;
  for (int i = 0; i < 200; ++i) {
    if (tournament_select(fitness, 8, rng) == 1) ++best_count;
  }
  EXPECT_GT(best_count, 150);
}

TEST(TournamentSelect, ArityOneIsUniform) {
  Rng rng(2);
  std::vector<int> histogram(4, 0);
  const std::vector<double> fitness{5.0, 1.0, 3.0, 4.0};
  for (int i = 0; i < 4000; ++i) {
    ++histogram[tournament_select(fitness, 1, rng)];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 700);  // roughly uniform
  }
}

TEST(TournamentSelect, Validation) {
  Rng rng(3);
  EXPECT_THROW((void)tournament_select({}, 2, rng), InvalidArgument);
  EXPECT_THROW((void)tournament_select({1.0}, 0, rng), InvalidArgument);
}

TEST(UniformCrossover, GenesComeFromParents) {
  Rng rng(4);
  const Genome a(32, 0.0);
  const Genome b(32, 1.0);
  const Genome child = uniform_crossover(a, b, rng);
  int zeros = 0;
  int ones = 0;
  for (double g : child) {
    if (g == 0.0) ++zeros;
    if (g == 1.0) ++ones;
  }
  EXPECT_EQ(zeros + ones, 32);
  EXPECT_GT(zeros, 0);
  EXPECT_GT(ones, 0);
}

TEST(UniformCrossover, RejectsMismatchedSizes) {
  Rng rng(5);
  EXPECT_THROW((void)uniform_crossover(Genome(3), Genome(4), rng),
               InvalidArgument);
}

TEST(GaussianMutate, RespectsBoundsAndRate) {
  Rng rng(6);
  Genome genome(1000, 0.5);
  gaussian_mutate(genome, 0.5, 0.2, 0.0, 1.0, rng);
  int mutated = 0;
  for (double g : genome) {
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
    if (g != 0.5) ++mutated;
  }
  // ~50% mutation rate.
  EXPECT_GT(mutated, 380);
  EXPECT_LT(mutated, 620);
}

TEST(GaussianMutate, ZeroRateIsIdentity) {
  Rng rng(7);
  Genome genome(100, 0.3);
  gaussian_mutate(genome, 0.0, 0.2, 0.0, 1.0, rng);
  for (double g : genome) {
    EXPECT_DOUBLE_EQ(g, 0.3);
  }
}

TEST(RandomGenome, WithinRange) {
  Rng rng(8);
  const Genome genome = random_genome(500, -1.0, 2.0, rng);
  ASSERT_EQ(genome.size(), 500u);
  for (double g : genome) {
    EXPECT_GE(g, -1.0);
    EXPECT_LT(g, 2.0);
  }
}

}  // namespace
}  // namespace mars::ga
