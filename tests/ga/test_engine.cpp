#include "mars/ga/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "mars/util/error.h"

namespace mars::ga {
namespace {

GaConfig small_config() {
  GaConfig config;
  config.population = 24;
  config.generations = 40;
  config.stall_generations = 0;  // run full budget in tests
  return config;
}

double sphere(const Genome& genome) {
  double sum = 0.0;
  for (double g : genome) sum += (g - 0.7) * (g - 0.7);
  return sum;
}

TEST(GaEngine, MinimisesSphereFunction) {
  GaEngine engine(small_config(), 6);
  Rng rng(1);
  const GaResult result = engine.minimize(sphere, rng);
  EXPECT_LT(result.best_fitness, 0.05);
  for (double g : result.best) {
    EXPECT_NEAR(g, 0.7, 0.25);
  }
}

TEST(GaEngine, DeterministicUnderSeed) {
  GaEngine engine(small_config(), 4);
  Rng rng1(42);
  Rng rng2(42);
  const GaResult a = engine.minimize(sphere, rng1);
  const GaResult b = engine.minimize(sphere, rng2);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(GaEngine, SeedsEnterThePopulation) {
  // A perfect seed must survive through elitism: final best <= seed.
  GaEngine engine(small_config(), 4);
  Rng rng(3);
  const Genome perfect(4, 0.7);
  const GaResult result = engine.minimize(sphere, rng, {perfect});
  EXPECT_LE(result.best_fitness, sphere(perfect) + 1e-12);
}

TEST(GaEngine, HistoryIsMonotoneNonIncreasing) {
  GaEngine engine(small_config(), 8);
  Rng rng(4);
  const GaResult result = engine.minimize(sphere, rng);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i], result.history[i - 1] + 1e-15);
  }
  EXPECT_EQ(result.generations_run,
            static_cast<int>(result.history.size()));
}

TEST(GaEngine, EarlyStopOnStall) {
  GaConfig config = small_config();
  config.stall_generations = 3;
  GaEngine engine(config, 2);
  Rng rng(5);
  // Constant fitness: stalls immediately.
  const GaResult result =
      engine.minimize([](const Genome&) { return 1.0; }, rng);
  EXPECT_LE(result.generations_run, 5);
  EXPECT_DOUBLE_EQ(result.best_fitness, 1.0);
}

TEST(GaEngine, NonFiniteFitnessTreatedAsWorst) {
  GaConfig config = small_config();
  GaEngine engine(config, 2);
  Rng rng(6);
  // Everything below 0.5 is "invalid": the GA must still find the feasible
  // basin near 0.7.
  auto fitness = [](const Genome& genome) {
    for (double g : genome) {
      if (g < 0.4) return std::numeric_limits<double>::quiet_NaN();
    }
    return sphere(genome);
  };
  const GaResult result = engine.minimize(fitness, rng);
  EXPECT_TRUE(std::isfinite(result.best_fitness));
  EXPECT_LT(result.best_fitness, 0.2);
}

TEST(GaEngine, EvaluationBudgetAccounting) {
  GaConfig config = small_config();
  config.generations = 5;
  GaEngine engine(config, 3);
  Rng rng(7);
  const GaResult result = engine.minimize(sphere, rng);
  // Initial population + (generations) * (population - elite) evaluations,
  // minus nothing (no early stop).
  const long long expected =
      config.population +
      static_cast<long long>(config.generations) *
          (config.population - config.elite);
  EXPECT_EQ(result.evaluations, expected);
}

TEST(GaEngine, ConfigValidation) {
  EXPECT_THROW(GaEngine(GaConfig{.population = 1}, 4), InvalidArgument);
  EXPECT_THROW(GaEngine(GaConfig{.population = 4, .elite = 4}, 4),
               InvalidArgument);
  GaConfig bad_range;
  bad_range.gene_lo = 1.0;
  bad_range.gene_hi = 0.0;
  EXPECT_THROW(GaEngine(bad_range, 4), InvalidArgument);
  EXPECT_THROW(GaEngine(GaConfig{}, 0), InvalidArgument);
}

TEST(GaEngine, ValidateConfigNamesTheOffendingFieldAndValue) {
  const auto message_of = [](GaConfig config) {
    try {
      validate_config(config);
      return std::string();
    } catch (const InvalidArgument& e) {
      return std::string(e.what());
    }
  };
  GaConfig bad_tournament;
  bad_tournament.tournament = 0;
  EXPECT_NE(message_of(bad_tournament).find("tournament"), std::string::npos);
  EXPECT_NE(message_of(bad_tournament).find("got 0"), std::string::npos);

  GaConfig bad_crossover;
  bad_crossover.crossover_rate = 1.5;
  EXPECT_NE(message_of(bad_crossover).find("crossover_rate"),
            std::string::npos);
  EXPECT_NE(message_of(bad_crossover).find("1.5"), std::string::npos);

  GaConfig bad_mutation;
  bad_mutation.mutation_rate = -0.25;
  EXPECT_NE(message_of(bad_mutation).find("mutation_rate"), std::string::npos);
  EXPECT_NE(message_of(bad_mutation).find("-0.25"), std::string::npos);

  GaConfig bad_sigma;
  bad_sigma.mutation_sigma = 0.0;
  EXPECT_NE(message_of(bad_sigma).find("mutation_sigma"), std::string::npos);

  GaConfig bad_generations;
  bad_generations.generations = 0;
  EXPECT_NE(message_of(bad_generations).find("generations"),
            std::string::npos);

  EXPECT_NO_THROW(validate_config(GaConfig{}));
  // Boundary rates are legal.
  GaConfig extremes;
  extremes.crossover_rate = 0.0;
  extremes.mutation_rate = 1.0;
  EXPECT_NO_THROW(validate_config(extremes));
}

TEST(GaEngine, StopHookEndsTheSearchAtAGenerationBoundary) {
  GaConfig config = small_config();
  config.generations = 50;
  GaEngine engine(config, 4);
  Rng rng(11);
  long long stop_calls = 0;
  const GaResult result = engine.minimize(
      sphere, rng, {},
      [&](long long evaluations, double best) {
        EXPECT_GT(evaluations, 0);
        EXPECT_TRUE(std::isfinite(best));
        return ++stop_calls >= 3;  // stop at the third poll
      });
  EXPECT_EQ(stop_calls, 3);
  EXPECT_EQ(result.generations_run, 3);
  EXPECT_FALSE(result.best.empty());
  // Stopping early costs quality but never validity.
  EXPECT_TRUE(std::isfinite(result.best_fitness));
}

TEST(GaEngine, StopHookAtFirstPollReturnsInitialBest) {
  GaEngine engine(small_config(), 4);
  Rng rng(12);
  const GaResult result = engine.minimize(
      sphere, rng, {}, [](long long, double) { return true; });
  EXPECT_EQ(result.generations_run, 1);
  // Only the initial population was evaluated.
  EXPECT_EQ(result.evaluations, small_config().population);
  EXPECT_FALSE(result.best.empty());
}

TEST(GaEngine, RejectsMalformedSeeds) {
  GaEngine engine(small_config(), 4);
  Rng rng(8);
  EXPECT_THROW((void)engine.minimize(sphere, rng, {Genome(3, 0.5)}),
               InvalidArgument);
}

TEST(GaEngine, MultimodalSearchFindsGoodBasin) {
  // Rastrigin-like: many local minima; the GA should land well below the
  // random-search expectation.
  auto rastrigin = [](const Genome& genome) {
    double sum = 0.0;
    for (double g : genome) {
      const double x = (g - 0.5) * 6.0;
      sum += x * x - 5.0 * std::cos(2.0 * 3.14159265 * x) + 5.0;
    }
    return sum;
  };
  GaConfig config = small_config();
  config.generations = 60;
  GaEngine engine(config, 4);
  Rng rng(9);
  const GaResult result = engine.minimize(rastrigin, rng);
  EXPECT_LT(result.best_fitness, 8.0);
}

TEST(GaEngine, BatchEvaluatorReproducesTheSerialSearchExactly) {
  // The batch hook sees whole cohorts but must not change the search:
  // same values in -> byte-identical best/history/evaluations out.
  auto sphere = [](const Genome& genome) {
    double sum = 0.0;
    for (double g : genome) sum += (g - 0.5) * (g - 0.5);
    return sum;
  };
  const GaEngine engine(small_config(), 6);

  Rng serial_rng(11);
  const GaResult serial = engine.minimize(sphere, serial_rng);

  std::vector<std::size_t> cohort_sizes;
  BatchFitnessFn batch = [&](const std::vector<Genome>& genomes) {
    cohort_sizes.push_back(genomes.size());
    std::vector<double> values;
    values.reserve(genomes.size());
    for (const Genome& genome : genomes) values.push_back(sphere(genome));
    return values;
  };
  Rng batch_rng(11);
  const GaResult batched = engine.minimize(sphere, batch_rng, {}, {}, batch);

  EXPECT_EQ(serial.best, batched.best);
  EXPECT_EQ(serial.history, batched.history);
  EXPECT_EQ(serial.evaluations, batched.evaluations);
  EXPECT_DOUBLE_EQ(serial.best_fitness, batched.best_fitness);
  // The hook really carried the evaluations: first the initial
  // population, then one offspring cohort per generation.
  ASSERT_FALSE(cohort_sizes.empty());
  EXPECT_EQ(cohort_sizes.front(),
            static_cast<std::size_t>(small_config().population));
}

TEST(GaEngine, BatchEvaluatorSizeMismatchIsAnError) {
  const GaEngine engine(small_config(), 4);
  BatchFitnessFn bad = [](const std::vector<Genome>& genomes) {
    return std::vector<double>(genomes.size() + 1, 1.0);
  };
  auto one = [](const Genome&) { return 1.0; };
  Rng rng(3);
  EXPECT_THROW((void)engine.minimize(one, rng, {}, {}, bad), InternalError);
}

}  // namespace
}  // namespace mars::ga
