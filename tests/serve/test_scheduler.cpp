#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mars/plan/engines.h"
#include "mars/serve/metrics.h"
#include "mars/serve/scheduler.h"
#include "mars/topology/presets.h"
#include "mars/util/error.h"

namespace mars::serve {
namespace {

Request at(int id, double seconds, int model = 0) {
  Request request;
  request.id = id;
  request.model = model;
  request.arrival = Seconds(seconds);
  return request;
}

/// Baseline-mapped services on the F1 system: fast to plan, and both
/// models span both accelerator groups, so co-residents really contend.
class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : topo_(topology::f1_16xlarge()), designs_(accel::table2_designs()) {
    const plan::BaselineEngine baseline;
    for (const char* name : {"alexnet", "resnet18"}) {
      services_.push_back(std::make_unique<ModelService>(
          name, topo_, designs_, /*adaptive=*/true, baseline));
      refs_.push_back(services_.back().get());
    }
  }

  [[nodiscard]] OnlineScheduler scheduler(
      BatchPolicy policy = BatchPolicy::none()) const {
    SchedulerOptions options;
    options.policy = policy;
    return OnlineScheduler(topo_, refs_, options);
  }

  [[nodiscard]] OnlineScheduler admitting(AdmissionPolicy admission,
                                          BatchPolicy policy =
                                              BatchPolicy::none()) const {
    SchedulerOptions options;
    options.policy = policy;
    options.admission = admission;
    return OnlineScheduler(topo_, refs_, options);
  }

  topology::Topology topo_;
  accel::DesignRegistry designs_;
  std::vector<std::unique_ptr<ModelService>> services_;
  std::vector<const ModelService*> refs_;
};

TEST_F(SchedulerTest, SingleRequestMatchesUncontendedLatency) {
  const ServeResult result = scheduler().run({at(0, 0.0)});
  ASSERT_EQ(result.completed.size(), 1u);
  const CompletedRequest& done = result.completed.front();
  EXPECT_DOUBLE_EQ(done.dispatch.count(), 0.0);
  EXPECT_DOUBLE_EQ(done.completion.count(),
                   services_[0]->single_latency().count());
  EXPECT_DOUBLE_EQ(done.latency().count(),
                   services_[0]->single_latency().count());
  EXPECT_EQ(result.batches_dispatched, 1);
  EXPECT_EQ(result.tasks_executed, services_[0]->proto().size());
}

TEST_F(SchedulerTest, LateRequestLatencyIsArrivalRelative) {
  const ServeResult result = scheduler().run({at(0, 1.5)});
  ASSERT_EQ(result.completed.size(), 1u);
  // Offsetting every event by 1.5 s loses a few ulps relative to the
  // t=0 replay; the schedule itself is identical.
  EXPECT_NEAR(result.completed[0].latency().count(),
              services_[0]->single_latency().count(), 1e-12);
  EXPECT_NEAR(result.completed[0].completion.count(),
              1.5 + services_[0]->single_latency().count(), 1e-12);
}

TEST_F(SchedulerTest, RunsAreDeterministic) {
  const std::vector<Request> arrivals =
      poisson_arrivals({1.0, 1.0}, 300.0, Seconds(0.5), 42);
  const ServeResult a = scheduler().run(arrivals);
  const ServeResult b = scheduler().run(arrivals);
  ASSERT_EQ(a.completed.size(), b.completed.size());
  ASSERT_FALSE(a.completed.empty());
  for (std::size_t i = 0; i < a.completed.size(); ++i) {
    EXPECT_EQ(a.completed[i].request.id, b.completed[i].request.id);
    EXPECT_DOUBLE_EQ(a.completed[i].completion.count(),
                     b.completed[i].completion.count());
  }
  EXPECT_DOUBLE_EQ(a.horizon.count(), b.horizon.count());
  for (std::size_t i = 0; i < a.acc_busy.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.acc_busy[i].count(), b.acc_busy[i].count());
  }
}

TEST_F(SchedulerTest, ConcurrentRequestsContendForTheFleet) {
  const ServeResult result = scheduler().run({at(0, 0.0), at(1, 0.0)});
  ASSERT_EQ(result.completed.size(), 2u);
  const Seconds single = services_[0]->single_latency();
  // The second request queues behind the first on shared resources, but
  // set-level pipelining keeps it under 2x.
  EXPECT_GT(result.horizon.count(), single.count());
  EXPECT_LT(result.horizon.count(), 2.0 * single.count());
  for (const CompletedRequest& done : result.completed) {
    EXPECT_GE(done.latency().count(), single.count() * 0.999);
  }
}

TEST_F(SchedulerTest, CoResidentModelsInterfere) {
  // alexnet alone vs alexnet dispatched alongside a resnet18 request.
  const ServeResult alone = scheduler().run({at(0, 0.0, 0)});
  const ServeResult mixed =
      scheduler().run({at(0, 0.0, 1), at(1, 0.0, 0)});
  ASSERT_EQ(mixed.completed.size(), 2u);
  Seconds alexnet_mixed{};
  for (const CompletedRequest& done : mixed.completed) {
    if (done.request.model == 0) alexnet_mixed = done.latency();
  }
  EXPECT_GT(alexnet_mixed.count(), alone.completed[0].latency().count());
  EXPECT_GE(mixed.horizon.count(),
            std::max(services_[0]->single_latency().count(),
                     services_[1]->single_latency().count()));
}

TEST_F(SchedulerTest, SizeBatchingDispatchesWhenFull) {
  const ServeResult result =
      scheduler(BatchPolicy::size(2)).run({at(0, 0.0), at(1, 0.01)});
  ASSERT_EQ(result.completed.size(), 2u);
  EXPECT_EQ(result.batches_dispatched, 1);
  for (const CompletedRequest& done : result.completed) {
    EXPECT_EQ(done.batch_size, 2);
    EXPECT_DOUBLE_EQ(done.dispatch.count(), 0.01);
  }
  // The earlier request paid queueing delay waiting for the batch.
  const CompletedRequest& first = result.completed[0].request.id == 0
                                      ? result.completed[0]
                                      : result.completed[1];
  EXPECT_DOUBLE_EQ(first.queueing().count(), 0.01);
}

TEST_F(SchedulerTest, PartialBatchFlushesAtEndOfStream) {
  const ServeResult result = scheduler(BatchPolicy::size(4))
                                 .run({at(0, 0.0), at(1, 0.01), at(2, 0.02)});
  ASSERT_EQ(result.completed.size(), 3u);
  EXPECT_EQ(result.batches_dispatched, 1);
  for (const CompletedRequest& done : result.completed) {
    EXPECT_EQ(done.batch_size, 3);
    // The flush fires once the stream is exhausted (the last arrival).
    EXPECT_DOUBLE_EQ(done.dispatch.count(), 0.02);
  }
}

TEST_F(SchedulerTest, TimeoutBatchingDispatchesAtDeadline) {
  const ServeResult result =
      scheduler(BatchPolicy::with_timeout(8, milliseconds(5.0)))
          .run({at(0, 0.0)});
  ASSERT_EQ(result.completed.size(), 1u);
  EXPECT_DOUBLE_EQ(result.completed[0].dispatch.count(), 0.005);
  EXPECT_DOUBLE_EQ(result.completed[0].completion.count(),
                   0.005 + services_[0]->single_latency().count());
}

TEST_F(SchedulerTest, ClosedLoopRespectsThinkTime) {
  ClosedLoopSpec spec;
  spec.client_model = {0};
  spec.think = milliseconds(2.0);
  const ServeResult result =
      scheduler().run_closed_loop(spec, Seconds(0.25));
  ASSERT_GE(result.completed.size(), 2u);
  for (std::size_t i = 0; i < result.completed.size(); ++i) {
    EXPECT_EQ(result.completed[i].request.client, 0);
    if (i > 0) {
      // One outstanding request per client: the next issue happens
      // exactly `think` after the previous completion.
      EXPECT_DOUBLE_EQ(
          result.completed[i].request.arrival.count(),
          result.completed[i - 1].completion.count() + 0.002);
    }
  }
  // No request is issued past the horizon.
  for (const CompletedRequest& done : result.completed) {
    EXPECT_LE(done.request.arrival.count(), 0.25);
  }
}

TEST_F(SchedulerTest, ClosedLoopServesAllClients) {
  const ClosedLoopSpec spec = make_closed_loop({1.0, 1.0}, 4, milliseconds(1.0));
  const ServeResult result =
      scheduler().run_closed_loop(spec, Seconds(0.1));
  ASSERT_GE(result.completed.size(), 4u);
  bool seen[4] = {false, false, false, false};
  for (const CompletedRequest& done : result.completed) {
    ASSERT_GE(done.request.client, 0);
    ASSERT_LT(done.request.client, 4);
    seen[done.request.client] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST_F(SchedulerTest, UtilizationStaysPhysical) {
  const std::vector<Request> arrivals =
      poisson_arrivals({1.0, 1.0}, 200.0, Seconds(0.5), 1);
  const ServeResult result = scheduler(BatchPolicy::size(4)).run(arrivals);
  EXPECT_EQ(result.completed.size(), arrivals.size());
  const ServeMetrics metrics =
      summarize(result, {"alexnet", "resnet18"}, milliseconds(50.0));
  ASSERT_EQ(metrics.utilization.size(), static_cast<std::size_t>(topo_.size()));
  for (double u : metrics.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
  EXPECT_GT(metrics.throughput_rps, 0.0);
  EXPECT_GE(metrics.goodput_rps, 0.0);
  EXPECT_LE(metrics.goodput_rps, metrics.throughput_rps + 1e-12);
}

TEST_F(SchedulerTest, RejectsForeignService) {
  const topology::Topology other = topology::f1_16xlarge();
  const ModelService foreign("alexnet", other, designs_, /*adaptive=*/true,
                             plan::BaselineEngine{});
  EXPECT_THROW((void)OnlineScheduler(topo_, {&foreign}, {}), InvalidArgument);
}

TEST_F(SchedulerTest, RejectsMismatchedSimParams) {
  // Services bake single_latency/proto under their Problem's SimParams;
  // replaying under different timing would silently disagree.
  SchedulerOptions options;
  options.sim.host_latency = microseconds(50.0);
  EXPECT_THROW((void)OnlineScheduler(topo_, refs_, options), InvalidArgument);
}

TEST_F(SchedulerTest, ShedPolicyCapsRequestsInTheSystem) {
  // Four simultaneous arrivals against a depth-1 cap: the first is
  // admitted, the burst behind it is shed.
  const ServeResult result =
      admitting(AdmissionPolicy::shed(1))
          .run({at(0, 0.0), at(1, 0.0), at(2, 0.0), at(3, 0.0)});
  EXPECT_EQ(result.completed.size(), 1u);
  EXPECT_EQ(result.rejected.size(), 3u);
  EXPECT_EQ(result.offered(), 4);
  EXPECT_EQ(result.completed[0].request.id, 0);
  for (const Request& shed : result.rejected) EXPECT_GT(shed.id, 0);
}

TEST_F(SchedulerTest, ShedPolicyIdlesAtLowLoad) {
  // Spaced far beyond the single-inference latency, every request finds
  // the system empty: nothing is shed, and the completions are identical
  // to the unpoliced run.
  const std::vector<Request> arrivals = {at(0, 0.0), at(1, 0.5), at(2, 1.0)};
  const ServeResult policed =
      admitting(AdmissionPolicy::shed(1)).run(arrivals);
  const ServeResult open = scheduler().run(arrivals);
  EXPECT_TRUE(policed.rejected.empty());
  ASSERT_EQ(policed.completed.size(), open.completed.size());
  for (std::size_t i = 0; i < open.completed.size(); ++i) {
    EXPECT_DOUBLE_EQ(policed.completed[i].completion.count(),
                     open.completed[i].completion.count());
  }
}

TEST_F(SchedulerTest, SloAdmissionShedsPredictedMisses) {
  // Budget below the uncontended latency: even an empty system is
  // predicted to miss, so everything is shed.
  const Seconds single = services_[0]->single_latency();
  const ServeResult hopeless =
      admitting(AdmissionPolicy::slo_aware(single * 0.5))
          .run({at(0, 0.0), at(1, 0.0)});
  EXPECT_TRUE(hopeless.completed.empty());
  EXPECT_EQ(hopeless.rejected.size(), 2u);

  // A budget just above the uncontended latency admits an empty-system
  // request but sheds the burst queued behind it.
  const ServeResult tight =
      admitting(AdmissionPolicy::slo_aware(single * 1.2))
          .run({at(0, 0.0), at(1, 0.0), at(2, 0.0), at(3, 0.0)});
  EXPECT_GE(tight.completed.size(), 1u);
  EXPECT_FALSE(tight.rejected.empty());
  EXPECT_EQ(tight.offered(), 4);

  // A generous budget admits everything.
  const ServeResult relaxed =
      admitting(AdmissionPolicy::slo_aware(Seconds(10.0)))
          .run({at(0, 0.0), at(1, 0.0), at(2, 0.0), at(3, 0.0)});
  EXPECT_TRUE(relaxed.rejected.empty());
  EXPECT_EQ(relaxed.completed.size(), 4u);
}

TEST_F(SchedulerTest, SloAdmissionImprovesTailLatencyUnderOverload) {
  const std::vector<Request> arrivals =
      poisson_arrivals({1.0, 1.0}, 600.0, Seconds(0.5), 7);
  const Seconds slo(0.05);
  const ServeMetrics open = summarize(scheduler().run(arrivals),
                                      {"alexnet", "resnet18"}, slo);
  const ServeMetrics policed =
      summarize(admitting(AdmissionPolicy::slo_aware(slo)).run(arrivals),
                {"alexnet", "resnet18"}, slo);
  EXPECT_GT(policed.rejected, 0);
  EXPECT_LT(policed.latency.p99.count(), open.latency.p99.count());
  EXPECT_GE(policed.goodput_rps, open.goodput_rps);
}

TEST_F(SchedulerTest, MetricsCountRejectedRequests) {
  const ServeResult result =
      admitting(AdmissionPolicy::shed(1))
          .run({at(0, 0.0), at(1, 0.0, 1), at(2, 0.0), at(3, 0.0, 1)});
  const ServeMetrics metrics =
      summarize(result, {"alexnet", "resnet18"}, milliseconds(50.0));
  EXPECT_EQ(metrics.offered, 4);
  EXPECT_EQ(metrics.requests, 2);
  EXPECT_EQ(metrics.rejected, 2);
  EXPECT_DOUBLE_EQ(metrics.shed_rate, 0.5);
  ASSERT_EQ(metrics.per_model.size(), 2u);
  EXPECT_EQ(metrics.per_model[0].rejected, 1);
  EXPECT_EQ(metrics.per_model[1].rejected, 1);
  // Rejected requests never contribute latency samples.
  EXPECT_EQ(metrics.latency.count, 2);
}

TEST_F(SchedulerTest, ClosedLoopClientRetriesAfterRejection) {
  // Two clients on one model under a depth-1 cap: at t=0 one is admitted
  // and one shed, but the shed client retries after `think` rather than
  // stalling, so both make progress and the run terminates.
  ClosedLoopSpec spec;
  spec.client_model = {0, 0};
  spec.think = milliseconds(1.0);
  const ServeResult result = admitting(AdmissionPolicy::shed(1))
                                 .run_closed_loop(spec, Seconds(0.1));
  EXPECT_FALSE(result.rejected.empty());
  bool seen[2] = {false, false};
  for (const CompletedRequest& done : result.completed) {
    ASSERT_GE(done.request.client, 0);
    seen[done.request.client] = true;
  }
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  // Rejections and completions account for every issued request.
  for (const Request& shed : result.rejected) {
    EXPECT_LE(shed.arrival.count(), 0.1);
  }
}

TEST_F(SchedulerTest, RejectsBadRequests) {
  EXPECT_THROW((void)scheduler().run({at(0, 0.0, 7)}), InvalidArgument);
  EXPECT_THROW((void)scheduler().run({at(0, -1.0)}), InvalidArgument);
  EXPECT_THROW((void)OnlineScheduler(topo_, std::vector<const ModelService*>{}),
               InvalidArgument);
  EXPECT_THROW((void)OnlineScheduler(topo_, std::vector<ServedModel>{}),
               InvalidArgument);
}

TEST_F(SchedulerTest, ClosedLoopAdmissionNeedsPositiveThink) {
  // With think == 0 a rejected client would retry at the same simulated
  // instant forever; the scheduler refuses the combination up front.
  ClosedLoopSpec spec;
  spec.client_model = {0, 0};
  spec.think = Seconds(0.0);
  EXPECT_THROW((void)admitting(AdmissionPolicy::shed(1))
                   .run_closed_loop(spec, Seconds(0.1)),
               InvalidArgument);
  // Fine without admission control, and with a positive think.
  EXPECT_GT(scheduler().run_closed_loop(spec, Seconds(0.05)).completed.size(),
            0u);
  spec.think = milliseconds(1.0);
  EXPECT_GT(admitting(AdmissionPolicy::shed(1))
                .run_closed_loop(spec, Seconds(0.05))
                .completed.size(),
            0u);
}

}  // namespace
}  // namespace mars::serve
