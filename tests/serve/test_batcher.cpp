#include <gtest/gtest.h>

#include "mars/serve/batcher.h"
#include "mars/util/error.h"

namespace mars::serve {
namespace {

Request at(int id, double seconds, int model = 0) {
  Request request;
  request.id = id;
  request.model = model;
  request.arrival = Seconds(seconds);
  return request;
}

TEST(BatchPolicy, ParseRoundTrips) {
  EXPECT_EQ(BatchPolicy::parse("none").kind, BatchPolicy::Kind::kNone);
  const BatchPolicy size = BatchPolicy::parse("size:6");
  EXPECT_EQ(size.kind, BatchPolicy::Kind::kSize);
  EXPECT_EQ(size.max_batch, 6);
  const BatchPolicy timeout = BatchPolicy::parse("timeout:2.5:16");
  EXPECT_EQ(timeout.kind, BatchPolicy::Kind::kTimeout);
  EXPECT_EQ(timeout.max_batch, 16);
  EXPECT_DOUBLE_EQ(timeout.timeout.millis(), 2.5);
  // Default size cap.
  EXPECT_EQ(BatchPolicy::parse("timeout:1").max_batch, 8);

  for (const char* spec : {"none", "size:6", "timeout:2.5:16"}) {
    EXPECT_EQ(BatchPolicy::parse(BatchPolicy::parse(spec).to_string())
                  .to_string(),
              BatchPolicy::parse(spec).to_string());
  }
}

TEST(BatchPolicy, ParseRejectsGarbage) {
  for (const char* spec :
       {"", "sized", "size", "size:0", "size:x", "size:4x", "timeout",
        "timeout:-1", "timeout:2ms:8", "timeout:1:0", "timeout:1:2:3",
        "none:1"}) {
    EXPECT_THROW((void)BatchPolicy::parse(spec), InvalidArgument) << spec;
  }
}

TEST(Batcher, NonePolicyDispatchesEachRequestAlone) {
  Batcher batcher(BatchPolicy::none());
  batcher.push(at(0, 0.0));
  batcher.push(at(1, 0.0));
  const auto batches = batcher.pop_ready(Seconds(0.0));
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 1u);
  EXPECT_EQ(batches[1].size(), 1u);
  EXPECT_EQ(batcher.pending(), 0);
}

TEST(Batcher, SizePolicyClosesAtN) {
  Batcher batcher(BatchPolicy::size(3));
  batcher.push(at(0, 0.0));
  batcher.push(at(1, 0.1));
  EXPECT_TRUE(batcher.pop_ready(Seconds(0.1)).empty());
  EXPECT_EQ(batcher.pending(), 2);
  batcher.push(at(2, 0.2));
  const auto batches = batcher.pop_ready(Seconds(0.2));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 3u);
  EXPECT_EQ(batches[0][2].id, 2);
  EXPECT_EQ(batcher.pending(), 0);
}

TEST(Batcher, FlushDrainsPartialBatch) {
  Batcher batcher(BatchPolicy::size(4));
  batcher.push(at(0, 0.0));
  batcher.push(at(1, 0.1));
  const auto batches = batcher.flush();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(batcher.pending(), 0);
  EXPECT_TRUE(batcher.flush().empty());
}

TEST(Batcher, TimeoutPolicyFiresAtDeadline) {
  Batcher batcher(BatchPolicy::with_timeout(8, milliseconds(5.0)));
  batcher.push(at(0, 0.0));
  ASSERT_TRUE(batcher.next_deadline().has_value());
  EXPECT_DOUBLE_EQ(batcher.next_deadline()->millis(), 5.0);
  EXPECT_TRUE(batcher.pop_ready(milliseconds(4.9)).empty());
  const auto batches = batcher.pop_ready(milliseconds(5.0));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 1u);
  EXPECT_FALSE(batcher.next_deadline().has_value());
}

TEST(Batcher, TimeoutDeadlineAnchorsToOldestRequest) {
  Batcher batcher(BatchPolicy::with_timeout(8, milliseconds(5.0)));
  batcher.push(at(0, 0.001));
  batcher.push(at(1, 0.004));
  // The second arrival does not extend the first's deadline.
  EXPECT_DOUBLE_EQ(batcher.next_deadline()->millis(), 6.0);
  const auto batches = batcher.pop_ready(milliseconds(6.0));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 2u);
}

TEST(Batcher, TimeoutSizeCapClosesEarly) {
  Batcher batcher(BatchPolicy::with_timeout(2, milliseconds(50.0)));
  batcher.push(at(0, 0.0));
  batcher.push(at(1, 0.001));
  const auto batches = batcher.pop_ready(milliseconds(1.0));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 2u);
}

TEST(Batcher, RejectsOutOfOrderArrivals) {
  Batcher batcher(BatchPolicy::size(4));
  batcher.push(at(0, 1.0));
  EXPECT_THROW(batcher.push(at(1, 0.5)), InvalidArgument);
}

}  // namespace
}  // namespace mars::serve
