#include <gtest/gtest.h>

#include "mars/serve/batcher.h"
#include "mars/util/error.h"

namespace mars::serve {
namespace {

Request at(int id, double seconds, int model = 0) {
  Request request;
  request.id = id;
  request.model = model;
  request.arrival = Seconds(seconds);
  return request;
}

TEST(BatchPolicy, ParseRoundTrips) {
  EXPECT_EQ(BatchPolicy::parse("none").kind, BatchPolicy::Kind::kNone);
  const BatchPolicy size = BatchPolicy::parse("size:6");
  EXPECT_EQ(size.kind, BatchPolicy::Kind::kSize);
  EXPECT_EQ(size.max_batch, 6);
  const BatchPolicy timeout = BatchPolicy::parse("timeout:2.5:16");
  EXPECT_EQ(timeout.kind, BatchPolicy::Kind::kTimeout);
  EXPECT_EQ(timeout.max_batch, 16);
  EXPECT_DOUBLE_EQ(timeout.timeout.millis(), 2.5);
  // Default size cap.
  EXPECT_EQ(BatchPolicy::parse("timeout:1").max_batch, 8);

  for (const char* spec : {"none", "size:6", "timeout:2.5:16"}) {
    EXPECT_EQ(BatchPolicy::parse(BatchPolicy::parse(spec).to_string())
                  .to_string(),
              BatchPolicy::parse(spec).to_string());
  }
}

TEST(BatchPolicy, ParseRejectsGarbage) {
  for (const char* spec :
       {"", "sized", "size", "size:0", "size:x", "size:4x", "timeout",
        "timeout:-1", "timeout:2ms:8", "timeout:1:0", "timeout:1:2:3",
        "none:1"}) {
    EXPECT_THROW((void)BatchPolicy::parse(spec), InvalidArgument) << spec;
  }
}

TEST(Batcher, NonePolicyDispatchesEachRequestAlone) {
  Batcher batcher(BatchPolicy::none());
  batcher.push(at(0, 0.0));
  batcher.push(at(1, 0.0));
  const auto batches = batcher.pop_ready(Seconds(0.0));
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].size(), 1u);
  EXPECT_EQ(batches[1].size(), 1u);
  EXPECT_EQ(batcher.pending(), 0);
}

TEST(Batcher, SizePolicyClosesAtN) {
  Batcher batcher(BatchPolicy::size(3));
  batcher.push(at(0, 0.0));
  batcher.push(at(1, 0.1));
  EXPECT_TRUE(batcher.pop_ready(Seconds(0.1)).empty());
  EXPECT_EQ(batcher.pending(), 2);
  batcher.push(at(2, 0.2));
  const auto batches = batcher.pop_ready(Seconds(0.2));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 3u);
  EXPECT_EQ(batches[0][2].id, 2);
  EXPECT_EQ(batcher.pending(), 0);
}

TEST(Batcher, FlushDrainsPartialBatch) {
  Batcher batcher(BatchPolicy::size(4));
  batcher.push(at(0, 0.0));
  batcher.push(at(1, 0.1));
  const auto batches = batcher.flush();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(batcher.pending(), 0);
  EXPECT_TRUE(batcher.flush().empty());
}

TEST(Batcher, TimeoutPolicyFiresAtDeadline) {
  Batcher batcher(BatchPolicy::with_timeout(8, milliseconds(5.0)));
  batcher.push(at(0, 0.0));
  ASSERT_TRUE(batcher.next_deadline().has_value());
  EXPECT_DOUBLE_EQ(batcher.next_deadline()->millis(), 5.0);
  EXPECT_TRUE(batcher.pop_ready(milliseconds(4.9)).empty());
  const auto batches = batcher.pop_ready(milliseconds(5.0));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 1u);
  EXPECT_FALSE(batcher.next_deadline().has_value());
}

TEST(Batcher, TimeoutDeadlineAnchorsToOldestRequest) {
  Batcher batcher(BatchPolicy::with_timeout(8, milliseconds(5.0)));
  batcher.push(at(0, 0.001));
  batcher.push(at(1, 0.004));
  // The second arrival does not extend the first's deadline.
  EXPECT_DOUBLE_EQ(batcher.next_deadline()->millis(), 6.0);
  const auto batches = batcher.pop_ready(milliseconds(6.0));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 2u);
}

TEST(Batcher, TimeoutSizeCapClosesEarly) {
  Batcher batcher(BatchPolicy::with_timeout(2, milliseconds(50.0)));
  batcher.push(at(0, 0.0));
  batcher.push(at(1, 0.001));
  const auto batches = batcher.pop_ready(milliseconds(1.0));
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 2u);
}

TEST(Batcher, RejectsOutOfOrderArrivals) {
  Batcher batcher(BatchPolicy::size(4));
  batcher.push(at(0, 1.0));
  EXPECT_THROW(batcher.push(at(1, 0.5)), InvalidArgument);
}

TEST(AdmissionPolicy, ParseRoundTrips) {
  EXPECT_EQ(AdmissionPolicy::parse("none").kind, AdmissionPolicy::Kind::kNone);
  const AdmissionPolicy slo = AdmissionPolicy::parse("slo:60");
  EXPECT_EQ(slo.kind, AdmissionPolicy::Kind::kSlo);
  EXPECT_DOUBLE_EQ(slo.slo.millis(), 60.0);
  const AdmissionPolicy shed = AdmissionPolicy::parse("shed:16");
  EXPECT_EQ(shed.kind, AdmissionPolicy::Kind::kShed);
  EXPECT_EQ(shed.max_depth, 16);

  for (const char* spec : {"none", "slo:60", "slo:2.5", "shed:16"}) {
    EXPECT_EQ(AdmissionPolicy::parse(AdmissionPolicy::parse(spec).to_string())
                  .to_string(),
              AdmissionPolicy::parse(spec).to_string());
  }
}

TEST(AdmissionPolicy, ParseRejectsGarbage) {
  for (const char* spec : {"", "slo", "slo:", "slo:0", "slo:-5", "slo:60ms",
                           "shed", "shed:0", "shed:-1", "shed:4x", "drop:3",
                           "none:1", "slo:60:1"}) {
    EXPECT_THROW((void)AdmissionPolicy::parse(spec), InvalidArgument) << spec;
  }
}

TEST(PolicySpec, ParsesBothFamiliesFromOneSpec) {
  const PolicySpec both = PolicySpec::parse("size:4+slo:60");
  EXPECT_EQ(both.batch.kind, BatchPolicy::Kind::kSize);
  EXPECT_EQ(both.batch.max_batch, 4);
  EXPECT_EQ(both.admission.kind, AdmissionPolicy::Kind::kSlo);
  EXPECT_DOUBLE_EQ(both.admission.slo.millis(), 60.0);

  // Order-independent; a single part lands in its own family.
  EXPECT_EQ(PolicySpec::parse("shed:8+timeout:2:4").to_string(),
            "timeout:2:4+shed:8");
  const PolicySpec admission_only = PolicySpec::parse("shed:8");
  EXPECT_EQ(admission_only.batch.kind, BatchPolicy::Kind::kNone);
  EXPECT_EQ(admission_only.admission.max_depth, 8);
  const PolicySpec batch_only = PolicySpec::parse("size:4");
  EXPECT_EQ(batch_only.admission.kind, AdmissionPolicy::Kind::kNone);
  EXPECT_EQ(PolicySpec::parse("none").to_string(), "none");
}

TEST(PolicySpec, RoundTripsThroughToString) {
  for (const char* spec :
       {"none", "size:4", "timeout:2:8", "slo:60", "shed:8", "size:4+slo:60",
        "timeout:2:8+shed:32"}) {
    EXPECT_EQ(PolicySpec::parse(spec).to_string(), spec) << spec;
  }
}

TEST(PolicySpec, RejectsDuplicateFamiliesAndGarbage) {
  for (const char* spec :
       {"size:4+size:8", "slo:60+shed:8", "none+size:4", "size:4+",
        "+slo:60", "bogus", ""}) {
    EXPECT_THROW((void)PolicySpec::parse(spec), InvalidArgument) << spec;
  }
}

}  // namespace
}  // namespace mars::serve
