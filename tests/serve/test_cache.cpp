#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "mars/accel/registry.h"
#include "mars/core/evaluator.h"
#include "mars/core/serialize.h"
#include "mars/plan/engines.h"
#include "mars/serve/cache.h"
#include "mars/serve/service.h"
#include "mars/topology/presets.h"
#include "mars/util/error.h"
#include "mars/util/logging.h"

namespace mars::serve {
namespace {

/// Smoke-sized search budget: the cache semantics do not depend on how
/// hard the search worked, only on what it returned.
core::MarsConfig tiny_config(std::uint64_t seed = 1) {
  core::MarsConfig config;
  config.seed = seed;
  config.first_ga.population = 6;
  config.first_ga.generations = 3;
  config.first_ga.stall_generations = 2;
  config.second.ga.population = 4;
  config.second.ga.generations = 2;
  return config;
}

plan::GaEngine tiny_ga(std::uint64_t seed = 1) {
  return plan::GaEngine(tiny_config(seed));
}

class CacheTest : public ::testing::Test {
 protected:
  CacheTest()
      : dir_(std::filesystem::path(::testing::TempDir()) /
             ("mars-cache-" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()))),
        topo_(topology::f1_16xlarge()),
        designs_(accel::table2_designs()) {
    std::filesystem::remove_all(dir_);
  }

  ~CacheTest() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::unique_ptr<ModelService> plan(
      const MappingCache* cache, const topology::Topology& topo,
      std::uint64_t seed = 1) const {
    return std::make_unique<ModelService>("alexnet", topo, designs_,
                                          /*adaptive=*/true, tiny_ga(seed),
                                          cache);
  }

  /// The fingerprint ModelService computes for tiny_ga under no budget.
  [[nodiscard]] std::string tiny_fingerprint(
      const topology::Topology& topo, std::uint64_t seed = 1) const {
    return MappingCache::fingerprint(topo, designs_, true,
                                     tiny_ga(seed).spec_string());
  }

  [[nodiscard]] std::size_t entries() const {
    if (!std::filesystem::exists(dir_)) return 0;
    std::size_t count = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      (void)entry;
      ++count;
    }
    return count;
  }

  std::filesystem::path dir_;
  topology::Topology topo_;
  accel::DesignRegistry designs_;
};

TEST_F(CacheTest, SecondConstructionHitsTheCacheWithIdenticalMapping) {
  const MappingCache cache(dir_.string());
  const auto cold = plan(&cache, topo_);
  EXPECT_EQ(cold->mapping_source(), ModelService::MappingSource::kSearched);
  EXPECT_EQ(entries(), 1u);

  const auto warm = plan(&cache, topo_);
  EXPECT_EQ(warm->mapping_source(), ModelService::MappingSource::kCacheHit);
  // The rehydrated mapping is the searched mapping, field for field, and
  // replays to the identical simulated makespan.
  EXPECT_EQ(core::to_json(warm->mapping(), *warm->problem().spine, designs_,
                          true)
                .dump(),
            core::to_json(cold->mapping(), *cold->problem().spine, designs_,
                          true)
                .dump());
  EXPECT_DOUBLE_EQ(warm->single_latency().count(),
                   cold->single_latency().count());
  const core::EvaluationSummary cold_eval =
      core::MappingEvaluator(cold->problem()).evaluate(cold->mapping());
  const core::EvaluationSummary warm_eval =
      core::MappingEvaluator(warm->problem()).evaluate(warm->mapping());
  EXPECT_DOUBLE_EQ(warm_eval.simulated.count(), cold_eval.simulated.count());
}

TEST_F(CacheTest, DirectStoreLoadRoundTrip) {
  const MappingCache cache(dir_.string());
  const auto service = plan(&cache, topo_);
  const MappingCache::Key key{"alexnet", tiny_fingerprint(topo_)};
  const std::optional<core::Mapping> loaded =
      cache.load(key, *service->problem().spine, topo_, designs_, true);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(core::to_json(*loaded, *service->problem().spine, designs_, true)
                .dump(),
            core::to_json(service->mapping(), *service->problem().spine,
                          designs_, true)
                .dump());
}

TEST_F(CacheTest, TopologyChangeInvalidates) {
  const MappingCache cache(dir_.string());
  (void)plan(&cache, topo_);
  // Same shape, different link bandwidth: a different system, so the
  // cached mapping must not be reused.
  const topology::Topology faster = topology::f1_16xlarge(gbps(16.0));
  const auto replanned = plan(&cache, faster);
  EXPECT_EQ(replanned->mapping_source(),
            ModelService::MappingSource::kSearched);
  EXPECT_EQ(entries(), 2u);  // both fingerprints now cached
  // And each system keeps hitting its own entry.
  EXPECT_EQ(plan(&cache, topo_)->mapping_source(),
            ModelService::MappingSource::kCacheHit);
  EXPECT_EQ(plan(&cache, faster)->mapping_source(),
            ModelService::MappingSource::kCacheHit);
}

TEST_F(CacheTest, SearchConfigChangeInvalidates) {
  const MappingCache cache(dir_.string());
  (void)plan(&cache, topo_, /*seed=*/1);
  EXPECT_EQ(plan(&cache, topo_, /*seed=*/2)->mapping_source(),
            ModelService::MappingSource::kSearched);
  EXPECT_EQ(entries(), 2u);
}

TEST_F(CacheTest, CrossEngineEntriesNeverAlias) {
  // The satellite bug this guards: engines sharing one tuning struct must
  // not share cache entries. Every engine's spec embeds its own name and
  // effective knobs, so a GA mapping is never served to an annealing run.
  const MappingCache cache(dir_.string());
  const core::MarsConfig tuning = tiny_config();
  const auto ga = plan::make_engine("ga", tuning);
  const auto anneal = plan::make_engine("anneal", tuning);
  const auto random = plan::make_engine("random", tuning);
  EXPECT_NE(MappingCache::fingerprint(topo_, designs_, true,
                                      ga->spec_string()),
            MappingCache::fingerprint(topo_, designs_, true,
                                      anneal->spec_string()));
  EXPECT_NE(MappingCache::fingerprint(topo_, designs_, true,
                                      anneal->spec_string()),
            MappingCache::fingerprint(topo_, designs_, true,
                                      random->spec_string()));

  const ModelService ga_service("alexnet", topo_, designs_, true, *ga,
                                &cache);
  EXPECT_EQ(ga_service.mapping_source(),
            ModelService::MappingSource::kSearched);
  EXPECT_EQ(entries(), 1u);
  // Same model, same cache, different engine: a fresh search, not a hit.
  const ModelService anneal_service("alexnet", topo_, designs_, true, *anneal,
                                    &cache);
  EXPECT_EQ(anneal_service.mapping_source(),
            ModelService::MappingSource::kSearched);
  EXPECT_EQ(entries(), 2u);
  // Each engine then hits its own entry.
  EXPECT_EQ(ModelService("alexnet", topo_, designs_, true, *anneal, &cache)
                .mapping_source(),
            ModelService::MappingSource::kCacheHit);
}

TEST_F(CacheTest, BudgetIsPartOfTheCacheIdentity) {
  // A budget-truncated search returns a different mapping than an
  // unbudgeted one; serving the unbudgeted entry to a budgeted startup
  // (or vice versa) would misreport what was searched.
  const plan::GaEngine engine = tiny_ga();
  plan::Budget budget;
  budget.max_evaluations = 8;
  EXPECT_NE(search_spec(engine, {}), search_spec(engine, budget));

  const MappingCache cache(dir_.string());
  const ModelService unbudgeted("alexnet", topo_, designs_, true, engine,
                                &cache);
  EXPECT_EQ(entries(), 1u);
  const ModelService budgeted("alexnet", topo_, designs_, true, engine,
                              &cache, budget);
  EXPECT_EQ(budgeted.mapping_source(),
            ModelService::MappingSource::kSearched);
  EXPECT_EQ(entries(), 2u);
}

TEST_F(CacheTest, CancelledSearchIsNotStored) {
  // A cancel token is a runtime event the fingerprint cannot key, so a
  // truncated best-so-far mapping must never poison the complete-search
  // entry.
  const MappingCache cache(dir_.string());
  plan::CancelToken token;
  token.cancel();
  const ModelService service("alexnet", topo_, designs_, /*adaptive=*/true,
                             tiny_ga(), &cache,
                             plan::Budget::cancellable(token));
  EXPECT_EQ(service.mapping_source(), ModelService::MappingSource::kSearched);
  EXPECT_EQ(entries(), 0u);
  // The next (uncancelled) startup searches fully and stores as usual.
  EXPECT_EQ(plan(&cache, topo_)->mapping_source(),
            ModelService::MappingSource::kSearched);
  EXPECT_EQ(entries(), 1u);
}

TEST_F(CacheTest, FingerprintCoversDesignParameters) {
  // Two registries whose designs share names but differ in parameters
  // (table2 vs h2h both register a SuperLIP variant under a different
  // parameterisation) must not collide; spot-check directly that every
  // fingerprint input matters by perturbing the registry.
  const std::string spec = tiny_ga().spec_string();
  const std::string base =
      MappingCache::fingerprint(topo_, designs_, true, spec);
  EXPECT_NE(base,
            MappingCache::fingerprint(topo_, accel::h2h_designs(), true, spec));
  EXPECT_NE(base, MappingCache::fingerprint(topo_, designs_, false, spec));
  EXPECT_NE(base, MappingCache::fingerprint(topo_, designs_, true,
                                            plan::BaselineEngine{}.spec_string()));
  EXPECT_NE(base, MappingCache::fingerprint(topology::f1_16xlarge(gbps(16.0)),
                                            designs_, true, spec));
  EXPECT_NE(base, MappingCache::fingerprint(topo_, designs_, true,
                                            tiny_ga(/*seed=*/2).spec_string()));
  // The per-design cost/energy attributes the hardware search varies are
  // fingerprint inputs too: a registry with one perturbed design must not
  // collide with the stock menu.
  const auto perturbed = [&](double area, double picojoules_per_mac) {
    accel::DesignRegistry registry;
    for (const std::string& name : accel::table2_design_names()) {
      std::unique_ptr<accel::AcceleratorDesign> design =
          accel::make_table2_design(name);
      if (name == "SuperLIP") {
        if (area > 0.0) design->set_area_cost(area);
        if (picojoules_per_mac > 0.0) {
          design->set_energy_per_mac(picojoules(picojoules_per_mac));
        }
      }
      registry.add(std::move(design));
    }
    return MappingCache::fingerprint(topo_, registry, true, spec);
  };
  const std::string stock = perturbed(0.0, 0.0);
  EXPECT_EQ(stock, base);
  EXPECT_NE(perturbed(2.0, 0.0), base);
  EXPECT_NE(perturbed(0.0, 9.0), base);
  // And it is stable: same inputs, same hash.
  EXPECT_EQ(base, MappingCache::fingerprint(topo_, designs_, true, spec));
}

TEST_F(CacheTest, CorruptEntryIsAMissNotAnError) {
  const MappingCache cache(dir_.string());
  const auto cold = plan(&cache, topo_);
  const MappingCache::Key key{"alexnet", tiny_fingerprint(topo_)};
  {
    std::ofstream file(cache.path_for(key), std::ios::trunc);
    file << "{ not json";
  }
  const LogLevel previous = set_log_level(LogLevel::kError);
  const auto recovered = plan(&cache, topo_);
  set_log_level(previous);
  EXPECT_EQ(recovered->mapping_source(),
            ModelService::MappingSource::kSearched);
  // The re-search overwrote the corrupt entry; the next run hits again.
  EXPECT_EQ(plan(&cache, topo_)->mapping_source(),
            ModelService::MappingSource::kCacheHit);
}

TEST_F(CacheTest, ForeignEntryUnderTheRightNameIsAMiss) {
  const MappingCache cache(dir_.string());
  const auto cold = plan(&cache, topo_);
  const MappingCache::Key key{"alexnet", tiny_fingerprint(topo_)};
  // A well-formed file whose embedded key disagrees with the filename
  // (e.g. a copy from another cache directory) must not be trusted.
  std::string content;
  {
    std::ifstream file(cache.path_for(key));
    std::ostringstream os;
    os << file.rdbuf();
    content = os.str();
  }
  const std::size_t pos = content.find("\"fingerprint\":\"");
  ASSERT_NE(pos, std::string::npos);
  content.replace(pos + 15, 4, "zzzz");  // not hex: cannot collide
  {
    std::ofstream file(cache.path_for(key), std::ios::trunc);
    file << content;
  }
  const LogLevel previous = set_log_level(LogLevel::kError);
  EXPECT_FALSE(cache.load(key, *cold->problem().spine, topo_, designs_, true)
                   .has_value());
  set_log_level(previous);
}

TEST_F(CacheTest, StoreFailureDoesNotBreakPlanning) {
  const MappingCache cache(dir_.string());
  // Yank the directory out from under the cache: the post-search store
  // fails, but the service must still come up with its searched mapping.
  std::filesystem::remove_all(dir_);
  const LogLevel previous = set_log_level(LogLevel::kError);
  const auto service = plan(&cache, topo_);
  set_log_level(previous);
  EXPECT_EQ(service->mapping_source(), ModelService::MappingSource::kSearched);
  EXPECT_GT(service->single_latency().count(), 0.0);
}

TEST_F(CacheTest, BaselineEngineBypassesTheCache) {
  const MappingCache cache(dir_.string());
  const ModelService service("alexnet", topo_, designs_, /*adaptive=*/true,
                             plan::BaselineEngine{}, &cache);
  EXPECT_EQ(service.mapping_source(), ModelService::MappingSource::kBaseline);
  EXPECT_EQ(entries(), 0u);
}

TEST_F(CacheTest, PlanServicesThreadsTheCacheThrough) {
  const MappingCache cache(dir_.string());
  const plan::GaEngine engine = tiny_ga();
  const auto cold = plan_services({"alexnet", "resnet18"}, topo_, designs_,
                                  true, engine, &cache);
  const auto warm = plan_services({"alexnet", "resnet18"}, topo_, designs_,
                                  true, engine, &cache);
  for (const auto& service : warm) {
    EXPECT_EQ(service->mapping_source(),
              ModelService::MappingSource::kCacheHit)
        << service->name();
  }
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_DOUBLE_EQ(warm[i]->single_latency().count(),
                     cold[i]->single_latency().count());
  }
}

TEST_F(CacheTest, RejectsUnusableDirectory) {
  EXPECT_THROW((void)MappingCache(""), InvalidArgument);
  const std::filesystem::path file = dir_.parent_path() / "cache-not-a-dir";
  std::filesystem::create_directories(dir_.parent_path());
  { std::ofstream out(file); }
  EXPECT_THROW((void)MappingCache(file.string()), InvalidArgument);
  std::filesystem::remove(file);
}

}  // namespace
}  // namespace mars::serve
