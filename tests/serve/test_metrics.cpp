#include <gtest/gtest.h>

#include "mars/serve/metrics.h"
#include "mars/serve/report.h"

namespace mars::serve {
namespace {

CompletedRequest completed(int id, int model, double arrival, double completion,
                           int batch_size = 1) {
  CompletedRequest done;
  done.request.id = id;
  done.request.model = model;
  done.request.arrival = Seconds(arrival);
  done.dispatch = Seconds(arrival);
  done.completion = Seconds(completion);
  done.batch_size = batch_size;
  return done;
}

TEST(LatencyStats, NearestRankPercentiles) {
  std::vector<Seconds> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(milliseconds(i));
  const LatencyStats stats = LatencyStats::from_samples(samples);
  EXPECT_EQ(stats.count, 100);
  EXPECT_DOUBLE_EQ(stats.p50.millis(), 50.0);
  EXPECT_DOUBLE_EQ(stats.p95.millis(), 95.0);
  EXPECT_DOUBLE_EQ(stats.p99.millis(), 99.0);
  EXPECT_DOUBLE_EQ(stats.max.millis(), 100.0);
  EXPECT_DOUBLE_EQ(stats.mean.millis(), 50.5);
}

TEST(LatencyStats, SingleSampleIsEveryPercentile) {
  const LatencyStats stats = LatencyStats::from_samples({milliseconds(7.0)});
  EXPECT_DOUBLE_EQ(stats.p50.millis(), 7.0);
  EXPECT_DOUBLE_EQ(stats.p99.millis(), 7.0);
  EXPECT_DOUBLE_EQ(stats.max.millis(), 7.0);
}

TEST(LatencyStats, EmptySamplesAreZero) {
  const LatencyStats stats = LatencyStats::from_samples({});
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.p99.count(), 0.0);
}

TEST(Summarize, SloSplitsGoodputFromThroughput) {
  ServeResult result;
  result.horizon = Seconds(2.0);
  result.acc_busy = {Seconds(1.0), Seconds(0.5)};
  result.batches_dispatched = 4;
  // Model 0: 10 ms and 30 ms latencies; model 1: 15 ms.
  result.completed.push_back(completed(0, 0, 0.0, 0.010));
  result.completed.push_back(completed(1, 0, 0.1, 0.130));
  result.completed.push_back(completed(2, 1, 0.2, 0.215, 2));

  const ServeMetrics metrics =
      summarize(result, {"alexnet", "resnet34"}, milliseconds(20.0));
  EXPECT_EQ(metrics.requests, 3);
  EXPECT_EQ(metrics.batches, 4);
  EXPECT_DOUBLE_EQ(metrics.throughput_rps, 1.5);
  EXPECT_DOUBLE_EQ(metrics.goodput_rps, 1.0);  // the 30 ms request misses
  EXPECT_NEAR(metrics.slo_attainment, 2.0 / 3.0, 1e-12);

  ASSERT_EQ(metrics.per_model.size(), 2u);
  EXPECT_EQ(metrics.per_model[0].requests, 2);
  EXPECT_DOUBLE_EQ(metrics.per_model[0].slo_attainment, 0.5);
  EXPECT_DOUBLE_EQ(metrics.per_model[1].slo_attainment, 1.0);
  EXPECT_DOUBLE_EQ(metrics.per_model[1].mean_batch, 2.0);
  // Batch-weighted mean: two singleton batches + one batch of 2
  // (represented by one completed request) = 3 requests / 2.5 batches.
  EXPECT_DOUBLE_EQ(metrics.mean_batch, 3.0 / 2.5);

  ASSERT_EQ(metrics.utilization.size(), 2u);
  EXPECT_DOUBLE_EQ(metrics.utilization[0], 0.5);
  EXPECT_DOUBLE_EQ(metrics.utilization[1], 0.25);
}

TEST(Summarize, NoSloMeansEverythingIsGood) {
  ServeResult result;
  result.horizon = Seconds(1.0);
  result.completed.push_back(completed(0, 0, 0.0, 0.9));
  const ServeMetrics metrics = summarize(result, {"alexnet"}, Seconds(0.0));
  EXPECT_DOUBLE_EQ(metrics.slo_attainment, 1.0);
  EXPECT_DOUBLE_EQ(metrics.goodput_rps, metrics.throughput_rps);
}

TEST(Summarize, EmptyResultIsSafe) {
  const ServeMetrics metrics = summarize({}, {"alexnet"}, milliseconds(10.0));
  EXPECT_EQ(metrics.requests, 0);
  EXPECT_DOUBLE_EQ(metrics.throughput_rps, 0.0);
  EXPECT_DOUBLE_EQ(metrics.slo_attainment, 1.0);
  EXPECT_EQ(metrics.per_model[0].requests, 0);
}

/// Regression: nearest-rank ranks that land exactly on an integer used to
/// round up through floating-point error (0.95 * 20 = 19.000000000000004,
/// ceil -> 20), silently reporting the next-higher sample.
TEST(LatencyStats, IntegerRankBoundariesAreExact) {
  std::vector<Seconds> samples;
  for (int i = 1; i <= 20; ++i) samples.push_back(milliseconds(i));
  const LatencyStats stats = LatencyStats::from_samples(samples);
  // Nearest rank over 20 samples: p50 -> rank 10, p95 -> rank 19.
  EXPECT_DOUBLE_EQ(stats.p50.millis(), 10.0);
  EXPECT_DOUBLE_EQ(stats.p95.millis(), 19.0);
  EXPECT_DOUBLE_EQ(stats.p99.millis(), 20.0);

  std::vector<Seconds> two = {milliseconds(1.0), milliseconds(2.0)};
  const LatencyStats pair = LatencyStats::from_samples(two);
  EXPECT_DOUBLE_EQ(pair.p50.millis(), 1.0);  // 0.5 * 2 = rank 1 exactly
  EXPECT_DOUBLE_EQ(pair.p99.millis(), 2.0);
}

/// Regression: a result where every offered request was shed used to
/// report the vacuous default slo_attainment of 1.0 — 100% attainment
/// with zero completions. All-shed now reads as 0.
TEST(Summarize, AllShedReportsZeroAttainment) {
  ServeResult result;
  result.horizon = Seconds(0.0);
  Request shed;
  shed.id = 0;
  shed.model = 0;
  shed.arrival = Seconds(0.1);
  result.rejected.push_back(shed);

  const ServeMetrics metrics = summarize(result, {"alexnet"}, milliseconds(10.0));
  EXPECT_EQ(metrics.requests, 0);
  EXPECT_EQ(metrics.rejected, 1);
  EXPECT_DOUBLE_EQ(metrics.shed_rate, 1.0);
  EXPECT_DOUBLE_EQ(metrics.slo_attainment, 0.0);
  EXPECT_DOUBLE_EQ(metrics.latency.p50.count(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.latency.p99.count(), 0.0);
}

/// A model with traffic only in the rejected stream still gets a sane
/// per-model row: zero requests, counted rejections, zero attainment —
/// while an idle model (no traffic at all) keeps the vacuous 1.0.
TEST(Summarize, PerModelTablesHandleModelsWithNoCompletions) {
  ServeResult result;
  result.horizon = Seconds(1.0);
  result.acc_busy = {Seconds(0.5)};
  result.batches_dispatched = 1;
  result.completed.push_back(completed(0, 0, 0.0, 0.005));
  Request shed;
  shed.id = 1;
  shed.model = 1;
  shed.arrival = Seconds(0.2);
  result.rejected.push_back(shed);

  const ServeMetrics metrics = summarize(
      result, {"alexnet", "resnet34", "vgg16"}, milliseconds(10.0));
  ASSERT_EQ(metrics.per_model.size(), 3u);
  EXPECT_EQ(metrics.per_model[0].requests, 1);
  EXPECT_DOUBLE_EQ(metrics.per_model[0].slo_attainment, 1.0);
  // resnet34: all offered traffic shed.
  EXPECT_EQ(metrics.per_model[1].requests, 0);
  EXPECT_EQ(metrics.per_model[1].rejected, 1);
  EXPECT_DOUBLE_EQ(metrics.per_model[1].slo_attainment, 0.0);
  EXPECT_DOUBLE_EQ(metrics.per_model[1].latency.p99.count(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.per_model[1].goodput_rps, 0.0);
  // vgg16: no traffic at all — vacuously attained.
  EXPECT_EQ(metrics.per_model[2].requests, 0);
  EXPECT_EQ(metrics.per_model[2].rejected, 0);
  EXPECT_DOUBLE_EQ(metrics.per_model[2].slo_attainment, 1.0);
}

TEST(Report, DescribeAndJsonCoverTheFleet) {
  ServeResult result;
  result.horizon = Seconds(1.0);
  result.acc_busy = {Seconds(0.25)};
  result.batches_dispatched = 2;
  result.completed.push_back(completed(0, 0, 0.0, 0.010));
  result.completed.push_back(completed(1, 1, 0.0, 0.050));
  const ServeMetrics metrics =
      summarize(result, {"alexnet", "resnet34"}, milliseconds(20.0));

  const std::string text = describe(metrics);
  EXPECT_NE(text.find("alexnet"), std::string::npos);
  EXPECT_NE(text.find("resnet34"), std::string::npos);
  EXPECT_NE(text.find("SLO"), std::string::npos);
  EXPECT_NE(text.find("Acc0"), std::string::npos);

  const std::string json = to_json(metrics).dump();
  EXPECT_NE(json.find("\"goodput_rps\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"per_model\""), std::string::npos);
}

}  // namespace
}  // namespace mars::serve
