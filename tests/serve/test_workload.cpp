#include <gtest/gtest.h>

#include <sstream>

#include "mars/serve/workload.h"
#include "mars/util/error.h"

namespace mars::serve {
namespace {

TEST(PoissonArrivals, DeterministicUnderSeed) {
  const std::vector<double> mix = {2.0, 1.0};
  const auto a = poisson_arrivals(mix, 100.0, Seconds(2.0), 7);
  const auto b = poisson_arrivals(mix, 100.0, Seconds(2.0), 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival.count(), b[i].arrival.count());
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].id, b[i].id);
  }
  const auto c = poisson_arrivals(mix, 100.0, Seconds(2.0), 8);
  ASSERT_FALSE(c.empty());
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < c.size(); ++i) {
    differs = c[i].arrival != a[i].arrival;
  }
  EXPECT_TRUE(differs);
}

TEST(PoissonArrivals, OrderedWithinDurationAndNumbered) {
  const auto requests = poisson_arrivals({1.0}, 50.0, Seconds(4.0), 1);
  ASSERT_FALSE(requests.empty());
  Seconds previous{};
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, static_cast<int>(i));
    EXPECT_EQ(requests[i].client, -1);
    EXPECT_GE(requests[i].arrival.count(), previous.count());
    EXPECT_LT(requests[i].arrival.count(), 4.0);
    previous = requests[i].arrival;
  }
}

TEST(PoissonArrivals, CountTracksRate) {
  const auto slow = poisson_arrivals({1.0}, 50.0, Seconds(5.0), 3);
  const auto fast = poisson_arrivals({1.0}, 200.0, Seconds(5.0), 3);
  // Expected 250 vs 1000 arrivals; allow generous stochastic slack.
  EXPECT_GT(slow.size(), 150u);
  EXPECT_LT(slow.size(), 400u);
  EXPECT_GT(fast.size(), 2.5 * slow.size());
}

TEST(PoissonArrivals, ZeroWeightModelNeverDrawn) {
  for (const Request& r : poisson_arrivals({1.0, 0.0}, 100.0, Seconds(2.0), 5)) {
    EXPECT_EQ(r.model, 0);
  }
  for (const Request& r : poisson_arrivals({0.0, 1.0}, 100.0, Seconds(2.0), 5)) {
    EXPECT_EQ(r.model, 1);
  }
}

TEST(PoissonArrivals, RejectsBadArguments) {
  EXPECT_THROW((void)poisson_arrivals({}, 10.0, Seconds(1.0), 1),
               InvalidArgument);
  EXPECT_THROW((void)poisson_arrivals({1.0}, 0.0, Seconds(1.0), 1),
               InvalidArgument);
  EXPECT_THROW((void)poisson_arrivals({1.0}, 10.0, Seconds(0.0), 1),
               InvalidArgument);
  EXPECT_THROW((void)poisson_arrivals({-1.0, 2.0}, 10.0, Seconds(1.0), 1),
               InvalidArgument);
  EXPECT_THROW((void)poisson_arrivals({0.0, 0.0}, 10.0, Seconds(1.0), 1),
               InvalidArgument);
}

TEST(PickModel, FollowsCumulativeWeights) {
  const std::vector<double> weights = {1.0, 3.0};
  EXPECT_EQ(pick_model(weights, 0.0), 0);
  EXPECT_EQ(pick_model(weights, 0.24), 0);
  EXPECT_EQ(pick_model(weights, 0.26), 1);
  EXPECT_EQ(pick_model(weights, 0.99), 1);
  EXPECT_THROW((void)pick_model(weights, 1.0), InvalidArgument);
}

TEST(TraceReplay, ParsesSortsAndRenumbers) {
  std::istringstream trace(
      "arrival_s,model\n"
      "0.020,alexnet\n"
      "0.005,resnet34\n"
      "0.005,alexnet\n");
  const auto requests = replay_trace(trace, {"alexnet", "resnet34"});
  ASSERT_EQ(requests.size(), 3u);
  // Stable sort: the two 5 ms rows keep file order.
  EXPECT_EQ(requests[0].model, 1);
  EXPECT_EQ(requests[1].model, 0);
  EXPECT_EQ(requests[2].model, 0);
  EXPECT_DOUBLE_EQ(requests[2].arrival.count(), 0.020);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, static_cast<int>(i));
  }
}

TEST(TraceReplay, ToleratesBomAndBlankLines) {
  std::istringstream trace(
      "\xEF\xBB\xBF\n"
      "arrival_s,model\r\n"
      "\n"
      "0.010,alexnet\r\n");
  const auto requests = replay_trace(trace, {"alexnet"});
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_DOUBLE_EQ(requests[0].arrival.count(), 0.010);
}

TEST(TraceReplay, RejectsMalformedRows) {
  const std::vector<std::string> served = {"alexnet"};
  {
    std::istringstream trace("arrival_s,model\n0.1,vgg16\n");
    EXPECT_THROW((void)replay_trace(trace, served), Error);
  }
  {
    std::istringstream trace("arrival_s,model\n0.1\n");
    EXPECT_THROW((void)replay_trace(trace, served), InvalidArgument);
  }
  {
    std::istringstream trace("arrival_s,model\nnot_a_number,alexnet\n");
    EXPECT_THROW((void)replay_trace(trace, served), InvalidArgument);
  }
  {
    std::istringstream trace("arrival_s,model\n-0.1,alexnet\n");
    EXPECT_THROW((void)replay_trace(trace, served), InvalidArgument);
  }
}

TEST(TraceReplay, MissingFileRejected) {
  EXPECT_THROW((void)replay_trace_file("/nonexistent/trace.csv", {"alexnet"}),
               InvalidArgument);
}

TEST(ClosedLoop, ClientsSplitProportionally) {
  const ClosedLoopSpec spec =
      make_closed_loop({2.0, 1.0}, 6, milliseconds(1.0));
  ASSERT_EQ(spec.clients(), 6);
  int counts[2] = {0, 0};
  for (int model : spec.client_model) ++counts[model];
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 2);
  EXPECT_DOUBLE_EQ(spec.think.millis(), 1.0);
}

TEST(ClosedLoop, ZeroWeightModelGetsNoClients) {
  const ClosedLoopSpec spec = make_closed_loop({1.0, 0.0}, 4, Seconds(0.0));
  for (int model : spec.client_model) EXPECT_EQ(model, 0);
}

TEST(ClosedLoop, RejectsBadArguments) {
  EXPECT_THROW((void)make_closed_loop({1.0}, 0, Seconds(0.0)), InvalidArgument);
  EXPECT_THROW((void)make_closed_loop({1.0}, 2, Seconds(-1.0)),
               InvalidArgument);
  EXPECT_THROW((void)make_closed_loop({}, 2, Seconds(0.0)), InvalidArgument);
}

}  // namespace
}  // namespace mars::serve
