// Differential serve-equivalence harness: the production FleetScheduler
// against the straight-line serial reference in
// tests/support/serve_stream.h, field-exact, across a seeded sweep of
// {Poisson, closed-loop, replay} workloads x model mixes x shards
// {1, 2, 4} x threads {1, 4}. The reference re-implements routing and
// merging independently, so the two paths only agree if the whole
// sharding contract holds: FNV routing, per-shard engine determinism,
// publish-by-index on the worker pool, and the stable time-major merge.
//
// On top of the raw-result equality, every sweep point also pins the
// user-facing byte contract: summarize() JSON (percentiles included) must
// be identical between the paths, and the sharded path must be identical
// to itself at a different thread count and on a repeat run.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "../support/serve_stream.h"
#include "mars/plan/engines.h"
#include "mars/serve/fleet.h"
#include "mars/topology/presets.h"
#include "mars/util/error.h"

namespace mars::serve {
namespace {

constexpr Seconds kSlo = Seconds(0.1);

/// Baseline-planned two-model fleet on a 4-accelerator replica group —
/// cheap to construct once, contended enough that batching and admission
/// decisions differ across shard counts if anything is off.
class FleetDifferentialTest : public ::testing::Test {
 protected:
  FleetDifferentialTest()
      : group_(topology::h2h_cloud(4, gbps(4.0), 4)),
        designs_(accel::h2h_designs()) {
    const plan::BaselineEngine baseline;
    for (const char* name : {"alexnet", "resnet18"}) {
      services_.push_back(std::make_unique<ModelService>(
          name, group_, designs_, /*adaptive=*/false, baseline));
      refs_.push_back(services_.back().get());
      names_.emplace_back(name);
    }
  }

  [[nodiscard]] ServeResult fleet_run(const SchedulerOptions& options,
                                      int shards, int threads,
                                      const std::vector<Request>& arrivals)
      const {
    FleetOptions fleet_options;
    fleet_options.shards = shards;
    fleet_options.threads = threads;
    fleet_options.scheduler = options;
    return FleetScheduler(group_, refs_, fleet_options).run(arrivals);
  }

  topology::Topology group_;
  accel::DesignRegistry designs_;
  std::vector<std::unique_ptr<ModelService>> services_;
  std::vector<const ModelService*> refs_;
  std::vector<std::string> names_;
};

/// The workload grid: two mixes, two policies, three seeds — enough
/// variety to cover batching, shedding, and both models routing to every
/// shard, while staying well under a second of test time.
struct SweepPoint {
  std::vector<double> mix;
  const char* policy;
  std::uint64_t seed;
};

std::vector<SweepPoint> sweep_points() {
  return {
      {{1.0, 1.0}, "none", 1},
      {{1.0, 1.0}, "size:2+shed:4", 2},
      {{3.0, 1.0}, "timeout:2:4", 3},
      {{1.0, 3.0}, "slo:100", 4},
  };
}

TEST_F(FleetDifferentialTest, PoissonSweepMatchesSerialReference) {
  for (const SweepPoint& point : sweep_points()) {
    const PolicySpec policy = PolicySpec::parse(point.policy);
    SchedulerOptions options;
    options.policy = policy.batch;
    options.admission = policy.admission;
    const std::vector<Request> arrivals =
        poisson_arrivals(point.mix, 400.0, Seconds(1.0), point.seed);
    for (int shards : {1, 2, 4}) {
      const ServeResult reference = mars::testing::reference_sharded_run(
          group_, refs_, options, shards, arrivals);
      for (int threads : {1, 4}) {
        const std::string context = std::string("poisson policy=") +
                                    point.policy + " seed=" +
                                    std::to_string(point.seed) + " shards=" +
                                    std::to_string(shards) + " threads=" +
                                    std::to_string(threads);
        const ServeResult actual =
            fleet_run(options, shards, threads, arrivals);
        mars::testing::expect_results_identical(reference, actual, context);
        EXPECT_EQ(
            mars::testing::summary_json(reference, names_, kSlo),
            mars::testing::summary_json(actual, names_, kSlo))
            << context;
      }
    }
  }
}

TEST_F(FleetDifferentialTest, ClosedLoopSweepMatchesSerialReference) {
  for (const SweepPoint& point : sweep_points()) {
    const PolicySpec policy = PolicySpec::parse(point.policy);
    SchedulerOptions options;
    options.policy = policy.batch;
    options.admission = policy.admission;
    // Admission with think=0 is rejected by the scheduler (instant-retry
    // livelock), so every closed-loop point uses a real think time.
    const ClosedLoopSpec spec =
        make_closed_loop(point.mix, /*clients=*/9, milliseconds(5.0));
    const Seconds duration(0.5);
    for (int shards : {1, 2, 4}) {
      const ServeResult reference =
          mars::testing::reference_sharded_closed_loop(
              group_, refs_, options, shards, spec, duration);
      for (int threads : {1, 4}) {
        const std::string context = std::string("closed policy=") +
                                    point.policy + " shards=" +
                                    std::to_string(shards) + " threads=" +
                                    std::to_string(threads);
        FleetOptions fleet_options;
        fleet_options.shards = shards;
        fleet_options.threads = threads;
        fleet_options.scheduler = options;
        const ServeResult actual = FleetScheduler(group_, refs_, fleet_options)
                                       .run_closed_loop(spec, duration);
        mars::testing::expect_results_identical(reference, actual, context);
        EXPECT_EQ(
            mars::testing::summary_json(reference, names_, kSlo),
            mars::testing::summary_json(actual, names_, kSlo))
            << context;
      }
    }
  }
}

TEST_F(FleetDifferentialTest, ReplayTraceMatchesSerialReference) {
  // A hand-built trace with bursts, simultaneous arrivals, and both
  // models interleaved — the renumbered stream exercises routing on
  // (model, id) rather than arrival order alone.
  std::ostringstream csv;
  csv << "arrival_s,model\n";
  for (int i = 0; i < 200; ++i) {
    csv << (0.005 * (i / 4)) << ","
        << (i % 3 == 0 ? "resnet18" : "alexnet") << "\n";
  }
  std::istringstream in(csv.str());
  const std::vector<Request> arrivals = replay_trace(in, names_);
  ASSERT_EQ(arrivals.size(), 200u);

  const PolicySpec policy = PolicySpec::parse("size:2+shed:6");
  SchedulerOptions options;
  options.policy = policy.batch;
  options.admission = policy.admission;
  for (int shards : {1, 2, 4}) {
    const ServeResult reference = mars::testing::reference_sharded_run(
        group_, refs_, options, shards, arrivals);
    for (int threads : {1, 4}) {
      const std::string context = "replay shards=" + std::to_string(shards) +
                                  " threads=" + std::to_string(threads);
      const ServeResult actual = fleet_run(options, shards, threads, arrivals);
      mars::testing::expect_results_identical(reference, actual, context);
      EXPECT_EQ(mars::testing::summary_json(reference, names_, kSlo),
                mars::testing::summary_json(actual, names_, kSlo))
          << context;
    }
  }
}

TEST_F(FleetDifferentialTest, RepeatRunsAreIdentical) {
  const std::vector<Request> arrivals =
      poisson_arrivals({1.0, 1.0}, 400.0, Seconds(1.0), 7);
  const PolicySpec policy = PolicySpec::parse("size:2+shed:4");
  SchedulerOptions options;
  options.policy = policy.batch;
  options.admission = policy.admission;
  const ServeResult first = fleet_run(options, 4, 4, arrivals);
  const ServeResult second = fleet_run(options, 4, 4, arrivals);
  mars::testing::expect_results_identical(first, second,
                                          "repeat shards=4 threads=4");
}

/// shards == 1 must be THE serial scheduler, not merely equivalent to it:
/// the fleet layer delegates and the result is the unwrapped serial run.
TEST_F(FleetDifferentialTest, SingleShardDelegatesToSerialScheduler) {
  const std::vector<Request> arrivals =
      poisson_arrivals({1.0, 1.0}, 300.0, Seconds(1.0), 5);
  SchedulerOptions options;
  const ServeResult serial =
      OnlineScheduler(group_, refs_, options).run(arrivals);
  const ServeResult fleet = fleet_run(options, 1, 4, arrivals);
  mars::testing::expect_results_identical(serial, fleet, "shards=1");
}

TEST_F(FleetDifferentialTest, RejectsNonPositiveShardsAndThreads) {
  FleetOptions bad_shards;
  bad_shards.shards = 0;
  EXPECT_THROW(FleetScheduler(group_, refs_, bad_shards),
               InvalidArgument);
  bad_shards.shards = -2;
  EXPECT_THROW(FleetScheduler(group_, refs_, bad_shards),
               InvalidArgument);
  FleetOptions bad_threads;
  bad_threads.threads = 0;
  EXPECT_THROW(FleetScheduler(group_, refs_, bad_threads),
               InvalidArgument);
}

}  // namespace
}  // namespace mars::serve
