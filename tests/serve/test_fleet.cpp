// Unit coverage for the fleet layer: routing (shard_of), partitioning
// (partition_fleet), the deterministic merge (merge_shard_results), and
// FleetScheduler argument validation. The end-to-end equivalence of the
// whole path lives in test_fleet_differential.cpp.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mars/serve/fleet.h"
#include "mars/util/error.h"

namespace mars::serve {
namespace {

Request at(int id, double seconds, int model = 0) {
  Request request;
  request.id = id;
  request.model = model;
  request.arrival = Seconds(seconds);
  return request;
}

CompletedRequest done_at(int id, int model, double completion) {
  CompletedRequest done;
  done.request = at(id, 0.0, model);
  done.completion = Seconds(completion);
  return done;
}

ServeResult shard_result(std::vector<CompletedRequest> completed,
                         int group_accelerators) {
  ServeResult result;
  result.completed = std::move(completed);
  result.acc_busy.assign(static_cast<std::size_t>(group_accelerators),
                         Seconds(0.0));
  return result;
}

TEST(ShardOf, IsDeterministicAndInRange) {
  for (int model = 0; model < 4; ++model) {
    for (int id = 0; id < 1000; ++id) {
      const int shard = shard_of(model, id, 7);
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, 7);
      EXPECT_EQ(shard, shard_of(model, id, 7));
    }
  }
}

TEST(ShardOf, SingleShardShortCircuits) {
  EXPECT_EQ(shard_of(3, 12345, 1), 0);
  EXPECT_EQ(shard_of(0, 0, 1), 0);
}

TEST(ShardOf, SpreadsAcrossShards) {
  // Not a statistical test — just that no shard starves on a real
  // stream, which publish-by-index and the merge both rely on.
  std::vector<int> hits(4, 0);
  for (int id = 0; id < 4000; ++id) ++hits[shard_of(0, id, 4)];
  for (int shard = 0; shard < 4; ++shard) {
    EXPECT_GT(hits[shard], 4000 / 8) << "shard " << shard << " starved";
  }
}

/// The router keys on (model, id), not id alone: replayed traces can
/// carry colliding ids across models, and those must still spread.
TEST(ShardOf, RequestIdCollisionsAcrossModelsStillSpread) {
  std::set<int> shards;
  for (int model = 0; model < 16; ++model) {
    shards.insert(shard_of(model, /*request_id=*/42, 4));
  }
  EXPECT_GT(shards.size(), 1u)
      << "every model mapped id 42 to the same shard";
}

TEST(PartitionFleet, DividesEvenly) {
  const FleetPartition partition = partition_fleet(8, 4);
  EXPECT_EQ(partition.shards, 4);
  EXPECT_EQ(partition.group_accelerators, 2);
  EXPECT_EQ(partition.unused_accelerators, 0);
  EXPECT_FALSE(partition.clamped);
}

TEST(PartitionFleet, LeavesRemainderUnused) {
  const FleetPartition partition = partition_fleet(10, 3);
  EXPECT_EQ(partition.shards, 3);
  EXPECT_EQ(partition.group_accelerators, 3);
  EXPECT_EQ(partition.unused_accelerators, 1);
  EXPECT_FALSE(partition.clamped);
}

TEST(PartitionFleet, ClampsShardsToAcceleratorCount) {
  const FleetPartition partition = partition_fleet(2, 8);
  EXPECT_EQ(partition.shards, 2);
  EXPECT_EQ(partition.group_accelerators, 1);
  EXPECT_EQ(partition.unused_accelerators, 0);
  EXPECT_TRUE(partition.clamped);
}

TEST(PartitionFleet, RejectsNonPositiveInputs) {
  EXPECT_THROW((void)partition_fleet(0, 2), InvalidArgument);
  EXPECT_THROW((void)partition_fleet(-4, 2), InvalidArgument);
  EXPECT_THROW((void)partition_fleet(8, 0), InvalidArgument);
  EXPECT_THROW((void)partition_fleet(8, -1), InvalidArgument);
}

TEST(MergeShardResults, SortsByTimeWithShardMajorTies) {
  // Shard 0 completes at t=2 and t=5; shard 1 at t=2 and t=3. The merged
  // stream is time-sorted and the t=2 tie resolves to shard 0 first.
  std::vector<ServeResult> shards;
  shards.push_back(shard_result({done_at(0, 0, 2.0), done_at(1, 0, 5.0)}, 1));
  shards.push_back(shard_result({done_at(2, 0, 2.0), done_at(3, 0, 3.0)}, 1));
  shards[0].horizon = Seconds(5.0);
  shards[1].horizon = Seconds(3.0);
  shards[0].tasks_executed = 10;
  shards[1].tasks_executed = 4;
  shards[0].batches_dispatched = 2;
  shards[1].batches_dispatched = 2;

  const ServeResult merged = merge_shard_results(std::move(shards), 1);
  ASSERT_EQ(merged.completed.size(), 4u);
  EXPECT_EQ(merged.completed[0].request.id, 0);  // t=2, shard 0 wins the tie
  EXPECT_EQ(merged.completed[1].request.id, 2);  // t=2, shard 1
  EXPECT_EQ(merged.completed[2].request.id, 3);  // t=3
  EXPECT_EQ(merged.completed[3].request.id, 1);  // t=5
  EXPECT_DOUBLE_EQ(merged.horizon.count(), 5.0);
  EXPECT_EQ(merged.tasks_executed, 14);
  EXPECT_EQ(merged.batches_dispatched, 4);
  EXPECT_EQ(merged.acc_busy.size(), 2u);  // shard-major concatenation
}

TEST(MergeShardResults, SortsRejectedByArrival) {
  std::vector<ServeResult> shards(2);
  shards[0].acc_busy.assign(1, Seconds(0.0));
  shards[1].acc_busy.assign(1, Seconds(0.0));
  shards[0].rejected = {at(0, 0.4), at(1, 0.9)};
  shards[1].rejected = {at(2, 0.1), at(3, 0.4)};
  const ServeResult merged = merge_shard_results(std::move(shards), 1);
  ASSERT_EQ(merged.rejected.size(), 4u);
  EXPECT_EQ(merged.rejected[0].id, 2);  // t=0.1
  EXPECT_EQ(merged.rejected[1].id, 0);  // t=0.4, shard 0 wins the tie
  EXPECT_EQ(merged.rejected[2].id, 3);  // t=0.4, shard 1
  EXPECT_EQ(merged.rejected[3].id, 1);  // t=0.9
}

TEST(MergeShardResults, RejectsMismatchedGroupSizes) {
  std::vector<ServeResult> shards;
  shards.push_back(shard_result({}, 2));
  shards.push_back(shard_result({}, 3));
  EXPECT_THROW(merge_shard_results(std::move(shards), 2),
               InvalidArgument);
}

TEST(MergeShardResults, RejectsEmptyInput) {
  EXPECT_THROW(merge_shard_results({}, 1), InvalidArgument);
}

}  // namespace
}  // namespace mars::serve
