// Pins the serving engine's zero-allocation steady state: dispatching an
// admitted request allocates nothing. The whole global operator new
// family is replaced with a counting wrapper (the nothrow flavours too —
// mixing a default nothrow new with replaced deletes trips ASan's
// alloc-dealloc matching), and a run over N requests is compared with a
// run over 2N requests whose first half is the identical stream: if the
// marginal request cost were nonzero the counts would differ by at least
// N, so exact equality pins the per-request cost at zero.
//
// The fixed per-run costs that remain — engine construction, the
// reserve() calls, arena slabs for the peak-live instance set, the route
// cache — are identical between the two runs by design: same fleet, same
// bounded admission depth (both streams saturate it early), same routes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "mars/plan/engines.h"
#include "mars/serve/scheduler.h"
#include "mars/serve/workload.h"
#include "mars/topology/presets.h"

static std::atomic<long long> g_allocation_count{0};

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace mars::serve {
namespace {

class ZeroAllocTest : public ::testing::Test {
 protected:
  ZeroAllocTest()
      : topo_(topology::h2h_cloud(4, gbps(4.0), 4)),
        designs_(accel::h2h_designs()) {
    const plan::BaselineEngine baseline;
    for (const char* name : {"alexnet", "resnet18"}) {
      services_.push_back(std::make_unique<ModelService>(
          name, topo_, designs_, /*adaptive=*/false, baseline));
      refs_.push_back(services_.back().get());
    }
  }

  topology::Topology topo_;
  accel::DesignRegistry designs_;
  std::vector<std::unique_ptr<ModelService>> services_;
  std::vector<const ModelService*> refs_;
};

TEST_F(ZeroAllocTest, SteadyStateDispatchAllocatesNothingPerRequest) {
  // `none` batching (the allocation-free immediate-dispatch path) with
  // bounded admission: the stream saturates shed:4 almost immediately,
  // so both runs peak at the same live-instance set and arena footprint.
  const PolicySpec policy = PolicySpec::parse("shed:4");
  SchedulerOptions options;
  options.policy = policy.batch;
  options.admission = policy.admission;
  const OnlineScheduler scheduler(topo_, refs_, options);

  // Same seed and rate: the first half of the long stream is bit-identical
  // to the short stream, so the long run replays the short one and then
  // keeps going in steady state.
  const std::vector<double> mix = {1.0, 1.0};
  const std::vector<Request> stream_n =
      poisson_arrivals(mix, 2000.0, Seconds(1.0), 11);
  const std::vector<Request> stream_2n =
      poisson_arrivals(mix, 2000.0, Seconds(2.0), 11);
  ASSERT_GT(stream_n.size(), 500u);
  ASSERT_GT(stream_2n.size(), stream_n.size() + 500u);

  const auto measure = [&](const std::vector<Request>& arrivals,
                           std::size_t* completed) {
    const long long before =
        g_allocation_count.load(std::memory_order_relaxed);
    const ServeResult result = scheduler.run(arrivals);
    const long long after = g_allocation_count.load(std::memory_order_relaxed);
    *completed = result.completed.size();
    return after - before;
  };

  // Warm-up: gtest/stdlib one-time lazy allocations land here, not in
  // the measured runs.
  std::size_t completed = 0;
  measure(stream_n, &completed);

  std::size_t completed_n = 0;
  std::size_t completed_2n = 0;
  const long long cost_n = measure(stream_n, &completed_n);
  const long long cost_2n = measure(stream_2n, &completed_2n);

  // The runs did real work (the pin is not vacuous) and the engine does
  // allocate its fixed setup...
  EXPECT_GT(completed_n, 50u);
  EXPECT_GT(completed_2n, completed_n);
  EXPECT_GT(cost_n, 0);
  // ...but doubling the request stream changes the allocation count not
  // at all: zero allocations per admitted (or shed) request.
  EXPECT_EQ(cost_n, cost_2n);
}

}  // namespace
}  // namespace mars::serve
