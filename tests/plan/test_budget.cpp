#include "mars/plan/budget.h"

#include <gtest/gtest.h>

namespace mars::plan {
namespace {

TEST(BudgetTest, DefaultIsUnlimited) {
  const Budget budget;
  EXPECT_TRUE(budget.unlimited());
  BudgetMeter meter(budget);
  EXPECT_FALSE(meter.exhausted(0));
  EXPECT_FALSE(meter.exhausted(1'000'000'000));
  EXPECT_EQ(meter.reason(), StopReason::kCompleted);
}

TEST(BudgetTest, FactoriesAreNotUnlimited) {
  EXPECT_FALSE(Budget::evaluations(10).unlimited());
  EXPECT_FALSE(Budget::wall(Seconds(1.0)).unlimited());
  const CancelToken token;
  EXPECT_FALSE(Budget::cancellable(token).unlimited());
}

TEST(BudgetTest, EvaluationBudgetFiresAtTheLimit) {
  BudgetMeter meter(Budget::evaluations(10));
  EXPECT_FALSE(meter.exhausted(9));
  EXPECT_TRUE(meter.exhausted(10));
  EXPECT_EQ(meter.reason(), StopReason::kEvaluationBudget);
  // The first reason sticks, and an exhausted meter stays exhausted.
  EXPECT_TRUE(meter.exhausted(0));
  EXPECT_EQ(meter.reason(), StopReason::kEvaluationBudget);
}

TEST(BudgetTest, WallClockBudgetUsesTheInjectedClock) {
  Budget budget = Budget::wall(milliseconds(10.0));
  double now = 5.0;  // absolute fake time; only differences matter
  budget.clock = [&now] { return Seconds(now); };
  BudgetMeter meter(budget);
  EXPECT_FALSE(meter.exhausted(0));
  now += 0.005;
  EXPECT_FALSE(meter.exhausted(0));
  EXPECT_NEAR(meter.elapsed().count(), 0.005, 1e-12);
  now += 0.006;
  EXPECT_TRUE(meter.exhausted(0));
  EXPECT_EQ(meter.reason(), StopReason::kWallClock);
}

TEST(BudgetTest, CancellationWinsOverOtherLimits) {
  CancelToken token;
  Budget budget = Budget::evaluations(1);
  budget.cancel = &token;
  token.cancel();
  BudgetMeter meter(budget);
  EXPECT_TRUE(meter.exhausted(100));
  EXPECT_EQ(meter.reason(), StopReason::kCancelled);
}

TEST(BudgetTest, CancelTokenFlipsOnce) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(BudgetTest, StopReasonNames) {
  EXPECT_EQ(to_string(StopReason::kCompleted), "completed");
  EXPECT_EQ(to_string(StopReason::kEvaluationBudget), "evaluation-budget");
  EXPECT_EQ(to_string(StopReason::kWallClock), "wall-clock");
  EXPECT_EQ(to_string(StopReason::kCancelled), "cancelled");
}

}  // namespace
}  // namespace mars::plan
