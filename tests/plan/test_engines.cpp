#include "mars/plan/engines.h"

#include <gtest/gtest.h>

#include "core/test_support.h"
#include "mars/core/baseline.h"

namespace mars::plan {
namespace {

using core::testing::AdaptiveFixture;

core::MarsConfig tiny_tuning(std::uint64_t seed = 7) {
  core::MarsConfig config;
  config.seed = seed;
  config.first_ga.population = 8;
  config.first_ga.generations = 5;
  config.first_ga.stall_generations = 3;
  config.second.ga.population = 6;
  config.second.ga.generations = 3;
  return config;
}

class EnginesTest : public ::testing::Test {
 protected:
  AdaptiveFixture fx_;
};

TEST_F(EnginesTest, EveryEngineProducesAValidMapping) {
  for (const std::string& name : engine_names()) {
    const std::unique_ptr<SearchEngine> engine =
        make_engine(name, tiny_tuning());
    EXPECT_EQ(engine->name(), name);
    const PlanResult result = engine->search(fx_.problem);
    EXPECT_NO_THROW(
        result.mapping.validate(fx_.spine, fx_.topo, fx_.designs, true))
        << name;
    EXPECT_GT(result.summary.simulated.count(), 0.0) << name;
    EXPECT_FALSE(result.history.empty()) << name;
    EXPECT_EQ(result.provenance.engine, name);
    EXPECT_EQ(result.provenance.stopped, StopReason::kCompleted) << name;
  }
}

TEST_F(EnginesTest, SearchingEnginesNeverLoseToTheBaseline) {
  // All three searchers seed from the encoded baseline skeleton, so under
  // the analytic model their result can only match or improve it — the
  // quality gate that keeps "cheap" engines honest ablation floors.
  const accel::ProfileMatrix profile(fx_.designs, fx_.spine);
  const core::Mapping baseline =
      core::baseline_mapping(fx_.problem, profile);
  const core::MappingEvaluator evaluator(fx_.problem);
  const Seconds baseline_analytic =
      evaluator.analytical().evaluate(baseline).analytic_makespan;

  for (const std::string& name : engine_names()) {
    const PlanResult result =
        make_engine(name, tiny_tuning())->search(fx_.problem);
    EXPECT_LE(result.summary.analytic_makespan.count(),
              baseline_analytic.count() * (1.0 + 1e-9))
        << name;
  }
}

TEST_F(EnginesTest, ConvergenceHistoryIsMonotone) {
  for (const char* name : {"ga", "anneal", "random"}) {
    const PlanResult result =
        make_engine(name, tiny_tuning())->search(fx_.problem);
    for (std::size_t i = 1; i < result.history.size(); ++i) {
      EXPECT_LE(result.history[i], result.history[i - 1] + 1e-15) << name;
    }
  }
}

TEST_F(EnginesTest, EvaluationBudgetIsHonoured) {
  // Exact for the per-evaluation engines; the GA stops at the next
  // generation boundary, so allow one population of slack.
  for (const char* name : {"anneal", "random"}) {
    const PlanResult result = make_engine(name, tiny_tuning())
                                  ->search(fx_.problem, Budget::evaluations(9));
    EXPECT_LE(result.provenance.evaluations, 9) << name;
    EXPECT_EQ(result.provenance.stopped, StopReason::kEvaluationBudget)
        << name;
    EXPECT_NO_THROW(
        result.mapping.validate(fx_.spine, fx_.topo, fx_.designs, true));
  }
  const core::MarsConfig tuning = tiny_tuning();
  const PlanResult ga = make_engine("ga", tuning)
                            ->search(fx_.problem, Budget::evaluations(9));
  EXPECT_LE(ga.provenance.evaluations, 9 + tuning.first_ga.population);
  EXPECT_EQ(ga.provenance.stopped, StopReason::kEvaluationBudget);
}

TEST_F(EnginesTest, WallClockBudgetStopsWithAFakeClock) {
  double now = 100.0;
  Budget budget = Budget::wall(milliseconds(5.0));
  budget.clock = [&now] {
    now += 0.002;  // every poll advances 2 ms
    return Seconds(now);
  };
  const PlanResult result =
      make_engine("anneal", tiny_tuning())->search(fx_.problem, budget);
  EXPECT_EQ(result.provenance.stopped, StopReason::kWallClock);
  EXPECT_NO_THROW(
      result.mapping.validate(fx_.spine, fx_.topo, fx_.designs, true));
}

TEST_F(EnginesTest, PreCancelledSearchStillReturnsAValidMapping) {
  CancelToken token;
  token.cancel();
  for (const char* name : {"ga", "anneal", "random"}) {
    const PlanResult result = make_engine(name, tiny_tuning())
                                  ->search(fx_.problem,
                                           Budget::cancellable(token));
    EXPECT_EQ(result.provenance.stopped, StopReason::kCancelled) << name;
    EXPECT_NO_THROW(
        result.mapping.validate(fx_.spine, fx_.topo, fx_.designs, true))
        << name;
    EXPECT_GT(result.summary.simulated.count(), 0.0) << name;
  }
}

TEST_F(EnginesTest, BaselineEngineIgnoresBudgetsAndReportsZeroEvaluations) {
  CancelToken token;
  token.cancel();
  const PlanResult result =
      BaselineEngine{}.search(fx_.problem, Budget::cancellable(token));
  EXPECT_EQ(result.provenance.evaluations, 0);
  EXPECT_EQ(result.provenance.stopped, StopReason::kCompleted);
  EXPECT_FALSE(BaselineEngine{}.searches());
}

TEST_F(EnginesTest, ProgressIsReported) {
  long long calls = 0;
  long long last_evaluations = 0;
  const PlanResult result = make_engine("random", tiny_tuning())
                                ->search(fx_.problem, {},
                                         [&](const Progress& progress) {
                                           ++calls;
                                           last_evaluations =
                                               progress.evaluations;
                                         });
  EXPECT_GT(calls, 0);
  EXPECT_GT(last_evaluations, 0);
  EXPECT_LE(last_evaluations, result.provenance.evaluations);
}

TEST_F(EnginesTest, SpecStringsAreDistinctAndCoverTheSeed) {
  const core::MarsConfig tuning = tiny_tuning();
  std::vector<std::string> specs;
  for (const std::string& name : engine_names()) {
    specs.push_back(make_engine(name, tuning)->spec_string());
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_NE(specs[i], specs[j]);
    }
  }
  for (const char* name : {"ga", "anneal", "random"}) {
    EXPECT_NE(make_engine(name, tiny_tuning(1))->spec_string(),
              make_engine(name, tiny_tuning(2))->spec_string())
        << name;
  }
}

TEST_F(EnginesTest, MarsIsAnAliasForGa) {
  EXPECT_EQ(make_engine("mars", tiny_tuning())->name(), "ga");
}

TEST_F(EnginesTest, UnknownEngineNamesTheValidSet) {
  try {
    (void)make_engine("gradient-descent");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gradient-descent"), std::string::npos);
    for (const std::string& name : engine_names()) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

TEST_F(EnginesTest, MultiChainAnnealHonoursTinyEvaluationBudgetsExactly) {
  // Even the start cohort clamps to the budget: chains=8 with a budget of
  // 4 starts only 4 chains (seed_baseline=false spends one evaluation
  // per started chain).
  AnnealConfig config;
  config.second = tiny_tuning().second;
  config.chains = 8;
  config.seed_baseline = false;
  config.iterations = 50;
  const PlanResult result =
      AnnealingEngine(config).search(fx_.problem, Budget::evaluations(4));
  EXPECT_LE(result.provenance.evaluations, 4);
  EXPECT_EQ(result.provenance.stopped, StopReason::kEvaluationBudget);
  EXPECT_NO_THROW(
      result.mapping.validate(fx_.spine, fx_.topo, fx_.designs, true));
}

TEST_F(EnginesTest, MultiChainAnnealIsByteIdenticalAcrossThreadCounts) {
  AnnealConfig serial;
  serial.second = tiny_tuning().second;
  serial.chains = 4;
  serial.iterations = 30;
  AnnealConfig threaded = serial;
  threaded.threads = 4;
  const PlanResult a = AnnealingEngine(serial).search(fx_.problem);
  const PlanResult b = AnnealingEngine(threaded).search(fx_.problem);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a.provenance.evaluations, b.provenance.evaluations);
  EXPECT_DOUBLE_EQ(a.summary.simulated.count(), b.summary.simulated.count());
  // threads is execution-only; chains is spec-relevant.
  EXPECT_EQ(AnnealingEngine(serial).spec_string(),
            AnnealingEngine(threaded).spec_string());
  AnnealConfig other_chains = serial;
  other_chains.chains = 2;
  EXPECT_NE(AnnealingEngine(serial).spec_string(),
            AnnealingEngine(other_chains).spec_string());
}

TEST_F(EnginesTest, EngineConfigsAreValidatedAtConstruction) {
  // The satellite contract: bad knobs fail eagerly with named errors,
  // not as silent misbehaviour mid-search.
  core::MarsConfig bad_tournament = tiny_tuning();
  bad_tournament.first_ga.tournament = 0;
  EXPECT_THROW((void)GaEngine(bad_tournament), InvalidArgument);

  core::MarsConfig bad_rate = tiny_tuning();
  bad_rate.second.ga.mutation_rate = 1.5;
  EXPECT_THROW((void)GaEngine(bad_rate), InvalidArgument);

  AnnealConfig bad_anneal;
  bad_anneal.iterations = 0;
  EXPECT_THROW((void)AnnealingEngine(bad_anneal), InvalidArgument);
  bad_anneal = AnnealConfig{};
  bad_anneal.final_temperature = bad_anneal.initial_temperature * 2.0;
  EXPECT_THROW((void)AnnealingEngine(bad_anneal), InvalidArgument);

  RandomConfig bad_random;
  bad_random.samples = 0;
  EXPECT_THROW((void)RandomEngine(bad_random), InvalidArgument);
  bad_random = RandomConfig{};
  bad_random.profiled_fraction = -0.1;
  EXPECT_THROW((void)RandomEngine(bad_random), InvalidArgument);
}

}  // namespace
}  // namespace mars::plan
