#include "mars/plan/planner.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "mars/accel/profiler.h"
#include "mars/graph/models/models.h"
#include "mars/plan/engines.h"
#include "mars/topology/presets.h"
#include "mars/util/error.h"

namespace mars::plan {
namespace {

core::MarsConfig tiny_tuning() {
  core::MarsConfig config;
  config.seed = 5;
  config.first_ga.population = 8;
  config.first_ga.generations = 4;
  config.second.ga.population = 6;
  config.second.ga.generations = 3;
  return config;
}

class PlannerTest : public ::testing::Test {
 protected:
  topology::Topology topo_ = topology::f1_16xlarge();
  accel::DesignRegistry designs_ = accel::table2_designs();
};

TEST_F(PlannerTest, OwnsTheWholeProblemChain) {
  const Planner planner =
      Planner::for_model("alexnet", topo_, designs_, /*adaptive=*/true);
  EXPECT_EQ(planner.model().name(), "alexnet");
  EXPECT_GT(planner.spine().size(), 0);
  // The Problem points at the Planner-owned spine and the shared system.
  EXPECT_EQ(planner.problem().spine, &planner.spine());
  EXPECT_EQ(planner.problem().topo, &topo_);
  EXPECT_EQ(planner.problem().designs, &designs_);
  EXPECT_TRUE(planner.problem().adaptive);
  EXPECT_NO_THROW(planner.problem().validate());
}

TEST_F(PlannerTest, PlanRunsAnEngineEndToEnd) {
  const Planner planner =
      Planner::for_model("alexnet", topo_, designs_, /*adaptive=*/true);
  const GaEngine engine(tiny_tuning());
  const PlanResult result = planner.plan(engine);
  EXPECT_NO_THROW(result.mapping.validate(planner.spine(), topo_, designs_,
                                          /*adaptive=*/true));
  EXPECT_GT(result.summary.simulated.count(), 0.0);
  EXPECT_EQ(result.provenance.engine, "ga");
}

TEST_F(PlannerTest, SurvivesMovesBecauseStateIsHeapPinned) {
  Planner planner =
      Planner::for_model("alexnet", topo_, designs_, /*adaptive=*/true);
  const core::Problem* problem_before = &planner.problem();
  const graph::ConvSpine* spine_before = &planner.spine();

  std::vector<Planner> fleet;
  fleet.push_back(std::move(planner));
  fleet.emplace_back(graph::models::by_name("resnet18"), topo_, designs_,
                     /*adaptive=*/true);

  // The interior pointers survived the move and the vector growth.
  EXPECT_EQ(&fleet[0].problem(), problem_before);
  EXPECT_EQ(&fleet[0].spine(), spine_before);
  EXPECT_EQ(fleet[0].problem().spine, spine_before);

  const PlanResult result = fleet[0].plan(BaselineEngine{});
  EXPECT_NO_THROW(result.mapping.validate(fleet[0].spine(), topo_, designs_,
                                          /*adaptive=*/true));
}

TEST_F(PlannerTest, ProfileIsBuiltLazilyAndCached) {
  const Planner planner =
      Planner::for_model("alexnet", topo_, designs_, /*adaptive=*/true);
  const accel::ProfileMatrix& first = planner.profile();
  EXPECT_EQ(first.num_layers(), planner.spine().size());
  EXPECT_EQ(&planner.profile(), &first);  // same instance on reuse
}

TEST_F(PlannerTest, UnknownZooModelThrows) {
  EXPECT_THROW((void)Planner::for_model("not-a-model", topo_, designs_),
               Error);
}

}  // namespace
}  // namespace mars::plan
