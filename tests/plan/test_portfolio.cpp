// PortfolioEngine contracts: racing semantics, budget slicing, winner
// provenance, cancellation, and cache-fingerprint isolation from its
// members (docs/SEARCH.md "Portfolio" section).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/test_support.h"
#include "mars/plan/engines.h"
#include "mars/serve/cache.h"
#include "mars/serve/service.h"

namespace mars::plan {
namespace {

using core::testing::AdaptiveFixture;

core::MarsConfig tiny_tuning(std::uint64_t seed = 7) {
  core::MarsConfig config;
  config.seed = seed;
  config.first_ga.population = 8;
  config.first_ga.generations = 5;
  config.first_ga.stall_generations = 3;
  config.second.ga.population = 6;
  config.second.ga.generations = 3;
  return config;
}

class PortfolioTest : public ::testing::Test {
 protected:
  AdaptiveFixture fx_;
};

TEST_F(PortfolioTest, WinnerProvenanceNamesTheMemberEngine) {
  const std::unique_ptr<SearchEngine> engine =
      make_engine("portfolio", tiny_tuning());
  const PlanResult result = engine->search(fx_.problem);

  EXPECT_EQ(result.provenance.engine, "portfolio");
  ASSERT_EQ(result.provenance.members.size(), 3u);  // ga + anneal + random
  std::vector<std::string> raced;
  long long member_evaluations = 0;
  for (const Provenance& member : result.provenance.members) {
    raced.push_back(member.engine);
    member_evaluations += member.evaluations;
    EXPECT_TRUE(member.members.empty()) << member.engine;  // leaves only
  }
  EXPECT_EQ(raced, (std::vector<std::string>{"ga", "anneal", "random"}));
  // The winner is one of the raced members, and the totals roll up.
  EXPECT_NE(std::find(raced.begin(), raced.end(), result.provenance.winner),
            raced.end())
      << result.provenance.winner;
  EXPECT_EQ(result.provenance.evaluations, member_evaluations);
  EXPECT_EQ(result.provenance.stopped, StopReason::kCompleted);
}

TEST_F(PortfolioTest, WinnerHasTheBestAnalyticMakespanOfTheRace) {
  // Race the members standalone under no budget: the portfolio's result
  // must match the best of them (ties to the earlier member).
  const core::MarsConfig tuning = tiny_tuning();
  const PlanResult portfolio =
      make_engine("portfolio", tuning)->search(fx_.problem);
  double best = std::numeric_limits<double>::infinity();
  for (const char* name : {"ga", "anneal", "random"}) {
    best = std::min(best, make_engine(name, tuning)
                              ->search(fx_.problem)
                              .summary.analytic_makespan.count());
  }
  EXPECT_DOUBLE_EQ(portfolio.summary.analytic_makespan.count(), best);
}

TEST_F(PortfolioTest, EvaluationBudgetIsSlicedAcrossMembers) {
  const core::MarsConfig tuning = tiny_tuning();
  const PlanResult result =
      make_engine("portfolio", tuning)->search(fx_.problem,
                                               Budget::evaluations(30));
  // Every member raced under a slice of the shared budget.
  ASSERT_EQ(result.provenance.members.size(), 3u);
  // Only the GA may overshoot its slice (generation granularity); the
  // per-evaluation members stop exactly, so the total stays within one
  // GA population of the budget.
  EXPECT_LE(result.provenance.evaluations,
            30 + tuning.first_ga.population);
  EXPECT_EQ(result.provenance.stopped, StopReason::kEvaluationBudget);
  EXPECT_NO_THROW(
      result.mapping.validate(fx_.spine, fx_.topo, fx_.designs, true));
}

TEST_F(PortfolioTest, CancelledPortfolioReturnsBestSoFar) {
  // Flip the token while the first member races: the portfolio stops
  // after it and returns that member's mapping as best-so-far.
  CancelToken token;
  Budget budget = Budget::cancellable(token);
  const std::unique_ptr<SearchEngine> engine =
      make_engine("portfolio", tiny_tuning());
  const PlanResult result =
      engine->search(fx_.problem, budget,
                     [&](const Progress&) { token.cancel(); });

  EXPECT_EQ(result.provenance.stopped, StopReason::kCancelled);
  ASSERT_EQ(result.provenance.members.size(), 1u);
  EXPECT_EQ(result.provenance.winner, result.provenance.members[0].engine);
  EXPECT_NO_THROW(
      result.mapping.validate(fx_.spine, fx_.topo, fx_.designs, true));
  EXPECT_GT(result.summary.simulated.count(), 0.0);
}

TEST_F(PortfolioTest, PreCancelledPortfolioStillReturnsAValidMapping) {
  CancelToken token;
  token.cancel();
  const PlanResult result = make_engine("portfolio", tiny_tuning())
                                ->search(fx_.problem,
                                         Budget::cancellable(token));
  EXPECT_EQ(result.provenance.stopped, StopReason::kCancelled);
  ASSERT_EQ(result.provenance.members.size(), 1u);
  EXPECT_NO_THROW(
      result.mapping.validate(fx_.spine, fx_.topo, fx_.designs, true));
}

TEST_F(PortfolioTest, CacheFingerprintNeverAliasesPortfolioAndMember) {
  // The serving cache must never hand a mapping searched by the whole
  // portfolio to a run configured with the winning member alone (or vice
  // versa): their spec strings — and so their fingerprints — differ.
  const core::MarsConfig tuning = tiny_tuning();
  const std::unique_ptr<SearchEngine> portfolio =
      make_engine("portfolio", tuning);
  const PlanResult result = portfolio->search(fx_.problem);
  const std::unique_ptr<SearchEngine> winner =
      make_engine(result.provenance.winner, tuning);

  const std::string portfolio_print = serve::MappingCache::fingerprint(
      fx_.topo, fx_.designs, true, serve::search_spec(*portfolio, {}));
  const std::string winner_print = serve::MappingCache::fingerprint(
      fx_.topo, fx_.designs, true, serve::search_spec(*winner, {}));
  EXPECT_NE(portfolio->spec_string(), winner->spec_string());
  EXPECT_NE(portfolio_print, winner_print);
  // The member's own spec is embedded in the portfolio's, so the two keys
  // stay coupled to the same knobs — but hash apart.
  EXPECT_NE(portfolio->spec_string().find(winner->spec_string()),
            std::string::npos);
}

TEST_F(PortfolioTest, ProgressAccumulatesAcrossMembers) {
  long long last = 0;
  bool monotone = true;
  const PlanResult result =
      make_engine("portfolio", tiny_tuning())
          ->search(fx_.problem, {}, [&](const Progress& progress) {
            monotone = monotone && progress.evaluations >= last;
            last = progress.evaluations;
          });
  EXPECT_TRUE(monotone);
  EXPECT_GT(last, 0);
  EXPECT_LE(last, result.provenance.evaluations);
}

TEST_F(PortfolioTest, RaceSpecSelectsMembersAndPerMemberWall) {
  const std::unique_ptr<SearchEngine> race =
      make_engine("race:ga+anneal,500", tiny_tuning());
  EXPECT_EQ(race->name(), "portfolio");
  const std::string spec = race->spec_string();
  EXPECT_NE(spec.find("member_wall_ms=500"), std::string::npos) << spec;
  EXPECT_NE(spec.find("ga["), std::string::npos) << spec;
  EXPECT_NE(spec.find("anneal["), std::string::npos) << spec;
  EXPECT_EQ(spec.find("random["), std::string::npos) << spec;

  const PlanResult result = race->search(fx_.problem);
  ASSERT_EQ(result.provenance.members.size(), 2u);
  EXPECT_EQ(result.provenance.members[0].engine, "ga");
  EXPECT_EQ(result.provenance.members[1].engine, "anneal");
}

TEST_F(PortfolioTest, RaceSpecAcceptsPerMemberSeeds) {
  // A member's @seed overrides the session seed for that member only; a
  // member without one inherits it. Each member's full spec (seed
  // included) must be embedded verbatim in the race's spec string.
  const std::unique_ptr<SearchEngine> race =
      make_engine("race:ga@11+anneal@9+random,250", tiny_tuning(7));
  const std::string spec = race->spec_string();
  EXPECT_NE(spec.find(make_engine("ga", tiny_tuning(11))->spec_string()),
            std::string::npos)
      << spec;
  EXPECT_NE(spec.find(make_engine("anneal", tiny_tuning(9))->spec_string()),
            std::string::npos)
      << spec;
  EXPECT_NE(spec.find(make_engine("random", tiny_tuning(7))->spec_string()),
            std::string::npos)
      << spec;
}

TEST_F(PortfolioTest, RaceMemberSeedsIsolateCacheFingerprints) {
  // Two races differing only in one member's seed explore different
  // trajectories, so the serving cache must never alias their mappings.
  const core::MarsConfig tuning = tiny_tuning();
  const std::unique_ptr<SearchEngine> seven =
      make_engine("race:ga@7+anneal@9", tuning);
  const std::unique_ptr<SearchEngine> ten =
      make_engine("race:ga@7+anneal@10", tuning);
  const std::unique_ptr<SearchEngine> inherited =
      make_engine("race:ga+anneal", tuning);

  const auto print = [this](const SearchEngine& engine) {
    return serve::MappingCache::fingerprint(fx_.topo, fx_.designs, true,
                                            serve::search_spec(engine, {}));
  };
  EXPECT_NE(seven->spec_string(), ten->spec_string());
  EXPECT_NE(print(*seven), print(*ten));
  EXPECT_NE(print(*seven), print(*inherited));
  // Same spec -> same fingerprint stays true with seeds in play.
  const std::unique_ptr<SearchEngine> again =
      make_engine("race:ga@7+anneal@9", tuning);
  EXPECT_EQ(print(*seven), print(*again));
}

TEST_F(PortfolioTest, BadRaceSpecsAreNamedErrors) {
  for (const char* spec :
       {"race:ga", "race:ga+gradient", "race:ga+anneal,abc",
        "race:ga+anneal,-5", "race:portfolio+ga", "race:ga+anneal,1,2",
        "race:ga@x+anneal", "race:ga@+anneal", "race:ga@-5+anneal",
        "race:ga@7.5+anneal"}) {
    try {
      (void)make_engine(spec, tiny_tuning());
      FAIL() << "expected InvalidArgument for '" << spec << "'";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(spec), std::string::npos)
          << spec << " -> " << e.what();
    }
  }
}

TEST_F(PortfolioTest, ConstructorValidatesMembers) {
  std::vector<std::unique_ptr<SearchEngine>> one;
  one.push_back(make_engine("ga", tiny_tuning()));
  EXPECT_THROW((void)PortfolioEngine(std::move(one)), InvalidArgument);

  std::vector<std::unique_ptr<SearchEngine>> with_null;
  with_null.push_back(make_engine("ga", tiny_tuning()));
  with_null.push_back(nullptr);
  EXPECT_THROW((void)PortfolioEngine(std::move(with_null)), InvalidArgument);
}

}  // namespace
}  // namespace mars::plan
