// Determinism contract across engines: the same engine spec + the same
// budget must reproduce the same mapping byte for byte (the serving
// cache, the benches, and every reported number rely on this).
#include <gtest/gtest.h>

#include "core/test_support.h"
#include "mars/core/serialize.h"
#include "mars/plan/engines.h"

namespace mars::plan {
namespace {

using core::testing::AdaptiveFixture;

core::MarsConfig tiny_tuning(std::uint64_t seed) {
  core::MarsConfig config;
  config.seed = seed;
  config.first_ga.population = 8;
  config.first_ga.generations = 5;
  config.first_ga.stall_generations = 3;
  config.second.ga.population = 6;
  config.second.ga.generations = 3;
  return config;
}

class DeterminismTest : public ::testing::Test {
 protected:
  [[nodiscard]] std::string mapping_json(const std::string& engine,
                                         std::uint64_t seed,
                                         const Budget& budget) const {
    const PlanResult result =
        make_engine(engine, tiny_tuning(seed))->search(fx_.problem, budget);
    return core::to_json(result.mapping, fx_.spine, fx_.designs, true).dump();
  }

  AdaptiveFixture fx_;
};

TEST_F(DeterminismTest, SameSeedSameBudgetIsByteIdenticalPerEngine) {
  for (const std::string& engine : engine_names()) {
    EXPECT_EQ(mapping_json(engine, 7, {}), mapping_json(engine, 7, {}))
        << engine;
  }
}

TEST_F(DeterminismTest, SameSeedUnderAnEvaluationBudgetIsByteIdentical) {
  const Budget budget = Budget::evaluations(12);
  for (const std::string& engine : engine_names()) {
    EXPECT_EQ(mapping_json(engine, 7, budget), mapping_json(engine, 7, budget))
        << engine;
  }
}

TEST_F(DeterminismTest, SummariesAgreeAcrossRepeatRuns) {
  for (const std::string& engine : engine_names()) {
    const PlanResult a =
        make_engine(engine, tiny_tuning(3))->search(fx_.problem);
    const PlanResult b =
        make_engine(engine, tiny_tuning(3))->search(fx_.problem);
    EXPECT_DOUBLE_EQ(a.summary.simulated.count(), b.summary.simulated.count())
        << engine;
    EXPECT_EQ(a.provenance.evaluations, b.provenance.evaluations) << engine;
    EXPECT_EQ(a.history, b.history) << engine;
  }
}

}  // namespace
}  // namespace mars::plan
