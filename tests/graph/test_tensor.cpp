#include "mars/graph/tensor.h"

#include <gtest/gtest.h>

namespace mars::graph {
namespace {

TEST(TensorShape, ElementsAndBytes) {
  const TensorShape shape{64, 56, 56};
  EXPECT_EQ(shape.elements(), 64LL * 56 * 56);
  EXPECT_DOUBLE_EQ(shape.bytes(DataType::kFix16).count(), 64.0 * 56 * 56 * 2);
  EXPECT_DOUBLE_EQ(shape.bytes(DataType::kFloat32).count(), 64.0 * 56 * 56 * 4);
  EXPECT_DOUBLE_EQ(shape.bytes(DataType::kInt8).count(), 64.0 * 56 * 56);
}

TEST(TensorShape, LargeShapesDoNotOverflow) {
  const TensorShape shape{2048, 1024, 1024};
  EXPECT_EQ(shape.elements(), 2048LL * 1024 * 1024);
  EXPECT_GT(shape.elements(), 0);
}

TEST(TensorShape, Validity) {
  EXPECT_TRUE((TensorShape{1, 1, 1}.valid()));
  EXPECT_FALSE((TensorShape{0, 5, 5}.valid()));
  EXPECT_FALSE((TensorShape{5, -1, 5}.valid()));
  EXPECT_FALSE(TensorShape{}.valid());
}

TEST(TensorShape, EqualityAndPrinting) {
  EXPECT_EQ((TensorShape{3, 224, 224}), (TensorShape{3, 224, 224}));
  EXPECT_NE((TensorShape{3, 224, 224}), (TensorShape{3, 224, 223}));
  EXPECT_EQ(to_string(TensorShape{3, 224, 224}), "3x224x224");
}

TEST(DataType, BytesPerElement) {
  EXPECT_EQ(bytes_per_element(DataType::kInt8), 1);
  EXPECT_EQ(bytes_per_element(DataType::kFix16), 2);
  EXPECT_EQ(bytes_per_element(DataType::kFloat32), 4);
  EXPECT_EQ(to_string(DataType::kFix16), "fix16");
}

}  // namespace
}  // namespace mars::graph
