#include "mars/graph/merge.h"

#include <gtest/gtest.h>

#include "mars/graph/models/models.h"
#include "mars/graph/spine.h"
#include "mars/util/error.h"

namespace mars::graph {
namespace {

TEST(Merge, UnionPreservesTotals) {
  const Graph a = models::alexnet();
  const Graph b = models::resnet(18);
  const Graph merged = merge_models("multi", {&a, &b});

  EXPECT_EQ(merged.size(), a.size() + b.size());
  EXPECT_DOUBLE_EQ(merged.total_macs(), a.total_macs() + b.total_macs());
  EXPECT_DOUBLE_EQ(merged.total_params(), a.total_params() + b.total_params());
  EXPECT_EQ(merged.num_spine_layers(),
            a.num_spine_layers() + b.num_spine_layers());
  EXPECT_EQ(merged.inputs().size(), 2u);
  EXPECT_EQ(merged.outputs().size(), 2u);
}

TEST(Merge, NamesArePrefixed) {
  const Graph a = models::alexnet();
  const Graph merged = merge_models("multi", {&a, &a});
  EXPECT_EQ(merged.layer(1).name, "m0.conv1");
  EXPECT_EQ(merged.layer(a.size() + 1).name, "m1.conv1");
}

TEST(Merge, SpineExtractsAndModelsStayIndependent) {
  const Graph a = models::alexnet();
  const Graph b = models::resnet(18);
  const Graph merged = merge_models("multi", {&a, &b});
  const ConvSpine spine = ConvSpine::extract(merged);
  EXPECT_EQ(spine.size(), a.num_spine_layers() + b.num_spine_layers());

  // No edge may cross from model 0's spine nodes into model 1's: the cut
  // at the model boundary carries zero bytes.
  EXPECT_DOUBLE_EQ(spine.cut_bytes(a.num_spine_layers()).count(), 0.0);
  // Two network inputs arrive from the host.
  int input_edges = 0;
  for (const SpineEdge& edge : spine.edges()) {
    if (edge.producer < 0) ++input_edges;
  }
  EXPECT_EQ(input_edges, 2);
}

TEST(Merge, ResidualModelsSurviveRemapping) {
  const Graph r = models::resnet(18);
  const Graph merged = merge_models("twin", {&r, &r});
  const ConvSpine spine = ConvSpine::extract(merged);
  // Residual spanning structure present in both halves.
  EXPECT_GT(spine.spanning_bytes(3).count(), 0.0);
  EXPECT_GT(spine.spanning_bytes(r.num_spine_layers() + 3).count(), 0.0);
}

TEST(Merge, RejectsBadInput) {
  const Graph a = models::alexnet();
  const Graph f32 = models::alexnet(224, DataType::kFloat32);
  EXPECT_THROW((void)merge_models("x", {}), InvalidArgument);
  EXPECT_THROW((void)merge_models("x", {&a, nullptr}), InvalidArgument);
  EXPECT_THROW((void)merge_models("x", {&a, &f32}), InvalidArgument);
}

TEST(Merge, StrictValidateStillRejectsDisconnected) {
  const Graph a = models::alexnet();
  const Graph merged = merge_models("multi", {&a, &a});
  EXPECT_THROW(merged.validate(), InternalError);
  EXPECT_NO_THROW(merged.validate(/*require_connected=*/false));
}

}  // namespace
}  // namespace mars::graph
