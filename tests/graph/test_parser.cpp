#include "mars/graph/parser.h"

#include <gtest/gtest.h>

#include "mars/graph/spine.h"
#include "mars/util/error.h"

namespace mars::graph {
namespace {

TEST(Parser, MinimalChain) {
  const Graph g = parse_model(R"(
    model tiny
    input in 3 32 32
    conv c1 in 16 k3 s1 p1
    relu r1 c1
    maxpool p1 r1 k2
    conv c2 p1 32 k3 p1
    gap g1 c2
    flatten f1 g1
    linear fc f1 10
  )");
  EXPECT_EQ(g.name(), "tiny");
  EXPECT_EQ(g.num_convs(), 2);
  EXPECT_EQ(g.num_spine_layers(), 3);
  const ConvSpine spine = ConvSpine::extract(g);
  EXPECT_EQ(spine.node(0).shape.cout, 16);
  EXPECT_EQ(spine.node(1).shape.oh, 16);  // post 2x2 pool
}

TEST(Parser, ConvOptionsAndDefaults) {
  const Graph g = parse_model(R"(
    model opts
    input in 3 224 224
    conv stem in 64 k7 s2 p3 nobias
  )");
  const Layer& conv = g.layer(1);
  EXPECT_EQ(conv.conv.kernel_h, 7);
  EXPECT_EQ(conv.conv.stride_h, 2);
  EXPECT_EQ(conv.conv.pad_h, 3);
  EXPECT_FALSE(conv.conv.bias);
  EXPECT_EQ(conv.output_shape, (TensorShape{64, 112, 112}));
}

TEST(Parser, ResidualAndConcatBranches) {
  const Graph g = parse_model(R"(
    model branches
    input in 4 8 8
    conv a in 4 k3 p1
    conv b a 4 k3 p1
    add sum a b
    conv c in 6 k3 p1
    concat cat sum c
    conv fuse cat 8 k1
  )");
  EXPECT_NO_THROW(g.validate());
  const ConvSpine spine = ConvSpine::extract(g);
  EXPECT_EQ(spine.size(), 4);
  // Concat output: 4 + 6 channels.
  EXPECT_EQ(spine.node(3).shape.cin, 10);
}

TEST(Parser, DtypeSelection) {
  const Graph g = parse_model("model m float32\ninput i 1 4 4\nconv c i 2 k1\n");
  EXPECT_EQ(g.dtype(), DataType::kFloat32);
}

TEST(Parser, CommentsAndBlankLines) {
  const Graph g = parse_model(R"(
    # full-line comment

    model commented   # trailing comment
    input in 3 8 8    # the input
    conv c in 4 k3 p1
  )");
  EXPECT_EQ(g.size(), 2);
}

TEST(Parser, PoolStrideDefaultsToKernel) {
  const Graph g = parse_model(R"(
    model pool
    input in 4 8 8
    maxpool p in k2
    conv c p 4 k1
  )");
  EXPECT_EQ(g.layer(1).output_shape, (TensorShape{4, 4, 4}));
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_model("model m\ninput i 3 8 8\nconv c missing 4 k3\n");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_model(""), InvalidArgument);
  EXPECT_THROW((void)parse_model("input i 3 8 8\n"), InvalidArgument);  // no model
  EXPECT_THROW((void)parse_model("model m\nmodel again\n"), InvalidArgument);
  EXPECT_THROW((void)parse_model("model m\ninput i 3 8 8\nconv c i 4\n"),
               InvalidArgument);  // missing k<K>
  EXPECT_THROW((void)parse_model("model m\ninput i 3 8 8\nconv c i 4 k3 z9\n"),
               InvalidArgument);  // unknown option
  EXPECT_THROW((void)parse_model("model m\ninput i 3 8 8\nfrobnicate f i\n"),
               InvalidArgument);  // unknown op
  EXPECT_THROW(
      (void)parse_model("model m\ninput i 3 8 8\nconv i i 4 k3\n"),
      InvalidArgument);  // duplicate name
  EXPECT_THROW((void)parse_model("model m\ninput i 3 8 8\nconv c i four k3\n"),
               InvalidArgument);  // non-integer
}

TEST(Parser, ParsedModelIsMappable) {
  // End-to-end: a parsed model goes through spine extraction with the
  // same invariants as the zoo models.
  const Graph g = parse_model(R"(
    model mappable
    input in 3 64 64
    conv c1 in 32 k3 s1 p1
    relu r1 c1
    conv c2 r1 64 k3 s2 p1
    bn b1 c2
    relu r2 b1
    conv c3 r2 64 k3 s1 p1
    conv c4 c3 64 k3 s1 p1
    add s1 c4 c2
    gap g1 s1
    flatten f1 g1
    linear fc f1 10
  )");
  const ConvSpine spine = ConvSpine::extract(g);
  EXPECT_EQ(spine.size(), 5);
  EXPECT_GT(spine.total_macs(), 0.0);
  // The c2 shortcut reaches the add at c4's owner, spanning c3.
  EXPECT_GT(spine.spanning_bytes(2).count(), 0.0);
}

}  // namespace
}  // namespace mars::graph
