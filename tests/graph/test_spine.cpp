#include "mars/graph/spine.h"

#include <gtest/gtest.h>

#include "mars/graph/models/models.h"
#include "mars/util/error.h"

namespace mars::graph {
namespace {

TEST(ConvShape, LoopBoundsAndBytes) {
  const ConvShape shape{64, 3, 55, 55, 11, 11, 4, 4};
  EXPECT_DOUBLE_EQ(shape.macs(), 64.0 * 3 * 55 * 55 * 121);
  EXPECT_EQ(shape.ih(), 54 * 4 + 11);
  EXPECT_DOUBLE_EQ(shape.weight_bytes(DataType::kFix16).count(),
                   64.0 * 3 * 121 * 2);
  EXPECT_DOUBLE_EQ(shape.out_bytes(DataType::kFix16).count(), 64.0 * 55 * 55 * 2);
}

TEST(ConvShape, PointwiseDetection) {
  EXPECT_TRUE((ConvShape{64, 64, 7, 7, 1, 1}).is_pointwise());
  EXPECT_FALSE((ConvShape{64, 64, 7, 7, 3, 3}).is_pointwise());
}

TEST(Spine, ChainExtraction) {
  Graph g("chain");
  LayerId x = g.add_input({3, 8, 8});
  x = g.add_conv("conv1", x, ConvAttrs::square(4, 3, 1, 1));
  x = g.add_relu("relu", x);
  x = g.add_conv("conv2", x, ConvAttrs::square(8, 3, 1, 1));
  const ConvSpine spine = ConvSpine::extract(g);

  ASSERT_EQ(spine.size(), 2);
  EXPECT_EQ(spine.node(0).name, "conv1");
  EXPECT_EQ(spine.node(1).name, "conv2");
  EXPECT_EQ(spine.node(1).shape.cin, 4);
  EXPECT_FALSE(spine.node(0).from_linear);
}

TEST(Spine, EdgesThroughFusedOps) {
  Graph g("fused");
  LayerId x = g.add_input({3, 8, 8});
  x = g.add_conv("conv1", x, ConvAttrs::square(4, 3, 1, 1));
  x = g.add_relu("relu", x);
  x = g.add_max_pool("pool", x, {2, 2, 0});
  x = g.add_conv("conv2", x, ConvAttrs::square(8, 3, 1, 1));
  const ConvSpine spine = ConvSpine::extract(g);

  // Exactly one inter-conv edge, carrying the POST-pool tensor (what
  // actually crosses a set boundary), plus the network-input edge.
  ASSERT_EQ(spine.edges().size(), 2u);
  Bytes inter{};
  for (const SpineEdge& edge : spine.edges()) {
    if (edge.producer == 0) inter = edge.bytes;
  }
  EXPECT_DOUBLE_EQ(inter.count(), 4.0 * 4 * 4 * 2);  // conv2 input 4x4x4 fix16
}

TEST(Spine, FusedTrafficAttribution) {
  Graph g("traffic");
  LayerId x = g.add_input({3, 8, 8});
  x = g.add_conv("conv1", x, ConvAttrs::square(4, 3, 1, 1));
  x = g.add_batch_norm("bn", x);
  x = g.add_relu("relu", x);
  const ConvSpine spine = ConvSpine::extract(g);
  // BN + ReLU each write a 4x8x8 fix16 tensor attributed to conv1.
  EXPECT_DOUBLE_EQ(spine.node(0).fused_traffic.count(), 2.0 * (4 * 8 * 8 * 2));
}

TEST(Spine, ResidualShortcutsCrossOnceAsAccumulatedTensor) {
  // A bottleneck-style block: x -> c1 -> c2 -> c3, add(c3, x). The
  // shortcut tensor must appear as ONE edge from x's conv to the add's
  // owner (c3), spanning c1/c2 — not as one edge per contributing block.
  Graph g("residual");
  LayerId in = g.add_input({4, 8, 8});
  LayerId x = g.add_conv("conv0", in, ConvAttrs::square(4, 3, 1, 1));
  LayerId c1 = g.add_conv("conv1", x, ConvAttrs::square(4, 3, 1, 1));
  LayerId c2 = g.add_conv("conv2", c1, ConvAttrs::square(4, 3, 1, 1));
  LayerId c3 = g.add_conv("conv3", c2, ConvAttrs::square(4, 3, 1, 1));
  LayerId sum = g.add_add("add", c3, x);
  g.add_conv("conv4", sum, ConvAttrs::square(4, 3, 1, 1));
  const ConvSpine spine = ConvSpine::extract(g);

  ASSERT_EQ(spine.size(), 5);
  // Shortcut edge conv0 -> conv3 (the add's owner).
  int shortcut_edges = 0;
  for (const SpineEdge& edge : spine.edges()) {
    if (edge.producer == 0 && edge.consumer == 3) ++shortcut_edges;
  }
  EXPECT_EQ(shortcut_edges, 1);
  // It spans conv1 and conv2 (live residual memory).
  EXPECT_GT(spine.spanning_bytes(1).count(), 0.0);
  EXPECT_GT(spine.spanning_bytes(2).count(), 0.0);
  // conv4 receives exactly one edge (the accumulated sum from conv3).
  int conv4_inputs = 0;
  for (const SpineEdge& edge : spine.edges()) {
    if (edge.consumer == 4) ++conv4_inputs;
  }
  EXPECT_EQ(conv4_inputs, 1);
}

TEST(Spine, DeepResidualChainCutBytesStayBounded) {
  // Across any cut of a deep residual network at most a handful of
  // tensors are live: the cut bytes must stay far below "one tensor per
  // upstream block" (the failure mode of transitive Add tracing).
  const Graph g = models::resnet101();
  const ConvSpine spine = ConvSpine::extract(g);
  for (int cut = 1; cut < spine.size(); ++cut) {
    EXPECT_LT(spine.cut_bytes(cut).mib(), 5.0) << "cut " << cut;
  }
}

TEST(Spine, ConcatMovesEachStreamOnce) {
  Graph g("concat");
  LayerId x = g.add_input({4, 8, 8});
  LayerId a = g.add_conv("a", x, ConvAttrs::square(6, 3, 1, 1));
  LayerId b = g.add_conv("b", x, ConvAttrs::square(2, 3, 1, 1));
  LayerId cat = g.add_concat("cat", {a, b});
  g.add_conv("fuse", cat, ConvAttrs::square(8, 1));
  const ConvSpine spine = ConvSpine::extract(g);

  // The concat materialises at b's owner (the latest contributor): a's
  // 6-channel tensor moves to b (edge 0->1), then the 8-channel concat
  // moves to the consumer (edge 1->2).
  double a_to_b = 0.0;
  double cat_to_fuse = 0.0;
  for (const SpineEdge& edge : spine.edges()) {
    if (edge.producer == 0 && edge.consumer == 1) a_to_b = edge.bytes.count();
    if (edge.producer == 1 && edge.consumer == 2) cat_to_fuse = edge.bytes.count();
  }
  EXPECT_DOUBLE_EQ(a_to_b, 6.0 * 8 * 8 * 2);
  EXPECT_DOUBLE_EQ(cat_to_fuse, 8.0 * 8 * 8 * 2);
}

TEST(Spine, CutBytesMonotoneAtChainBoundaries) {
  const Graph g = models::vgg16();
  const ConvSpine spine = ConvSpine::extract(g);
  // Any interior cut of a chain must carry positive bytes.
  for (int cut = 1; cut < spine.size(); ++cut) {
    EXPECT_GT(spine.cut_bytes(cut).count(), 0.0) << "cut " << cut;
  }
  EXPECT_THROW((void)spine.cut_bytes(-1), InvalidArgument);
  EXPECT_THROW((void)spine.cut_bytes(spine.size() + 1), InvalidArgument);
}

TEST(Spine, InputAndOutputBytes) {
  const Graph g = models::alexnet();
  const ConvSpine spine = ConvSpine::extract(g);
  EXPECT_DOUBLE_EQ(spine.input_bytes().count(), 3.0 * 224 * 224 * 2);
  EXPECT_DOUBLE_EQ(spine.output_bytes().count(), 1000.0 * 2);
}

TEST(Spine, LinearLayersBecomeGemvNodes) {
  const Graph g = models::alexnet();
  const ConvSpine spine = ConvSpine::extract(g);
  ASSERT_EQ(spine.size(), 8);  // 5 convs + 3 FCs
  const SpineNode& fc6 = spine.node(5);
  EXPECT_TRUE(fc6.from_linear);
  EXPECT_EQ(fc6.shape.cin, 256 * 6 * 6);
  EXPECT_EQ(fc6.shape.cout, 4096);
  EXPECT_EQ(fc6.shape.oh, 1);
}

TEST(Spine, TotalsMatchGraph) {
  const Graph g = models::resnet34();
  const ConvSpine spine = ConvSpine::extract(g);
  // Spine MACs = conv + linear MACs of the graph (pooling/BN contribute 0).
  EXPECT_NEAR(spine.total_macs() / g.total_macs(), 1.0, 1e-9);
  EXPECT_GT(spine.total_weight_bytes().count(), 0.0);
}

TEST(Spine, RejectsGraphWithoutConvs) {
  Graph g("none");
  LayerId x = g.add_input({3, 8, 8});
  g.add_relu("relu", x);
  EXPECT_THROW((void)ConvSpine::extract(g), InvalidArgument);
}

TEST(Spine, MultiStreamModelHasMultipleInputEdges) {
  const Graph g = models::casia_surf();
  const ConvSpine spine = ConvSpine::extract(g);
  int input_edges = 0;
  for (const SpineEdge& edge : spine.edges()) {
    if (edge.producer < 0) ++input_edges;
  }
  EXPECT_EQ(input_edges, 3);  // RGB, depth, IR streams
}

}  // namespace
}  // namespace mars::graph
