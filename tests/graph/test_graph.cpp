#include "mars/graph/graph.h"

#include <gtest/gtest.h>

#include "mars/util/error.h"

namespace mars::graph {
namespace {

Graph tiny_cnn() {
  Graph g("tiny");
  LayerId x = g.add_input({3, 8, 8});
  x = g.add_conv("conv1", x, ConvAttrs::square(16, 3, 1, 1));
  x = g.add_relu("relu1", x);
  x = g.add_max_pool("pool1", x, {2, 2, 0});
  x = g.add_conv("conv2", x, ConvAttrs::square(32, 3, 1, 1));
  x = g.add_global_avg_pool("gap", x);
  x = g.add_flatten("flatten", x);
  g.add_linear("fc", x, {10, true});
  return g;
}

TEST(Graph, ConvShapeInference) {
  Graph g("shapes");
  LayerId x = g.add_input({3, 224, 224});
  LayerId c = g.add_conv("conv", x, ConvAttrs::square(64, 7, 2, 3));
  EXPECT_EQ(g.layer(c).output_shape, (TensorShape{64, 112, 112}));
  EXPECT_EQ(g.layer(c).input_shape, (TensorShape{3, 224, 224}));
}

TEST(Graph, ConvMacsAndParams) {
  Graph g("macs");
  LayerId x = g.add_input({3, 8, 8});
  LayerId c = g.add_conv("conv", x, ConvAttrs::square(4, 3, 1, 1, /*bias=*/true));
  // 4 out x 3 in x 8 x 8 x 3 x 3 MACs.
  EXPECT_DOUBLE_EQ(g.layer(c).macs, 4.0 * 3 * 8 * 8 * 9);
  EXPECT_DOUBLE_EQ(g.layer(c).params, 4.0 * 3 * 9 + 4);
}

TEST(Graph, ConvWithoutBias) {
  Graph g("nobias");
  LayerId x = g.add_input({3, 8, 8});
  LayerId c = g.add_conv("conv", x, ConvAttrs::square(4, 3, 1, 1, /*bias=*/false));
  EXPECT_DOUBLE_EQ(g.layer(c).params, 4.0 * 3 * 9);
}

TEST(Graph, LinearShapeAndParams) {
  Graph g("linear");
  LayerId x = g.add_input({256, 6, 6});
  x = g.add_flatten("flatten", x);
  LayerId fc = g.add_linear("fc", x, {4096, true});
  EXPECT_EQ(g.layer(fc).output_shape, (TensorShape{4096, 1, 1}));
  EXPECT_DOUBLE_EQ(g.layer(fc).params, 256.0 * 36 * 4096 + 4096);
  EXPECT_DOUBLE_EQ(g.layer(fc).macs, 256.0 * 36 * 4096);
}

TEST(Graph, PoolShapes) {
  Graph g("pool");
  LayerId x = g.add_input({8, 7, 7});
  LayerId p = g.add_max_pool("pool", x, {3, 2, 0});
  EXPECT_EQ(g.layer(p).output_shape, (TensorShape{8, 3, 3}));
  LayerId gp = g.add_global_avg_pool("gap", p);
  EXPECT_EQ(g.layer(gp).output_shape, (TensorShape{8, 1, 1}));
}

TEST(Graph, AddRequiresMatchingShapes) {
  Graph g("add");
  LayerId x = g.add_input({4, 8, 8});
  LayerId a = g.add_conv("a", x, ConvAttrs::square(4, 3, 1, 1));
  LayerId b = g.add_conv("b", x, ConvAttrs::square(4, 3, 1, 1));
  LayerId c = g.add_conv("c", x, ConvAttrs::square(8, 3, 1, 1));
  EXPECT_NO_THROW(g.add_add("ok", a, b));
  EXPECT_THROW(g.add_add("bad", a, c), InvalidArgument);
}

TEST(Graph, ConcatSumsChannels) {
  Graph g("concat");
  LayerId x = g.add_input({4, 8, 8});
  LayerId a = g.add_conv("a", x, ConvAttrs::square(4, 3, 1, 1));
  LayerId b = g.add_conv("b", x, ConvAttrs::square(6, 3, 1, 1));
  LayerId c = g.add_concat("cat", {a, b});
  EXPECT_EQ(g.layer(c).output_shape, (TensorShape{10, 8, 8}));
}

TEST(Graph, ConcatRejectsSpatialMismatch) {
  Graph g("concat");
  LayerId x = g.add_input({4, 8, 8});
  LayerId a = g.add_conv("a", x, ConvAttrs::square(4, 3, 1, 1));
  LayerId b = g.add_conv("b", x, ConvAttrs::square(4, 3, 2, 1));
  EXPECT_THROW(g.add_concat("bad", {a, b}), InvalidArgument);
}

TEST(Graph, ConsumersAndOutputs) {
  Graph g("consumers");
  LayerId x = g.add_input({4, 8, 8});
  LayerId a = g.add_conv("a", x, ConvAttrs::square(4, 3, 1, 1));
  LayerId b = g.add_conv("b", x, ConvAttrs::square(4, 3, 1, 1));
  LayerId s = g.add_add("sum", a, b);
  EXPECT_EQ(g.consumers(x), (std::vector<LayerId>{a, b}));
  EXPECT_EQ(g.consumers(a), (std::vector<LayerId>{s}));
  EXPECT_EQ(g.outputs(), (std::vector<LayerId>{s}));
  EXPECT_EQ(g.inputs(), (std::vector<LayerId>{x}));
}

TEST(Graph, CountsAndTotals) {
  Graph g = tiny_cnn();
  EXPECT_EQ(g.num_convs(), 2);
  EXPECT_EQ(g.num_spine_layers(), 3);  // 2 convs + 1 linear
  EXPECT_GT(g.total_macs(), 0.0);
  EXPECT_GT(g.total_params(), 0.0);
}

TEST(Graph, ValidatePassesOnWellFormed) {
  EXPECT_NO_THROW(tiny_cnn().validate());
}

TEST(Graph, ValidateRejectsDisconnected) {
  Graph g("disc");
  g.add_input({3, 8, 8}, "in1");
  LayerId x2 = g.add_input({3, 8, 8}, "in2");
  g.add_conv("conv", x2, ConvAttrs::square(4, 3, 1, 1));
  EXPECT_THROW(g.validate(), InternalError);
}

TEST(Graph, RejectsForwardReferences) {
  Graph g("bad");
  LayerId x = g.add_input({3, 8, 8});
  EXPECT_THROW(g.add_conv("conv", x + 5, ConvAttrs::square(4, 3)), InvalidArgument);
}

TEST(Graph, RejectsCollapsingConv) {
  Graph g("collapse");
  LayerId x = g.add_input({3, 2, 2});
  EXPECT_THROW(g.add_conv("conv", x, ConvAttrs::square(4, 5, 1, 0)),
               InvalidArgument);
}

TEST(Graph, DotExportContainsNodesAndEdges) {
  Graph g = tiny_cnn();
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("conv1"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace mars::graph
