// Model-zoo validation against the paper's Table III reference columns
// (#Params and FLOPs; the paper counts one MAC as one FLOP) and the
// published torchvision parameter counts.
#include <gtest/gtest.h>

#include "mars/graph/models/models.h"
#include "mars/graph/spine.h"
#include "mars/util/error.h"

namespace mars::graph {
namespace {

struct ModelReference {
  const char* name;
  double params;     // paper Table III
  double macs;       // paper Table III "FLOPs"
  double tolerance;  // relative
};

class ModelReferenceTest : public ::testing::TestWithParam<ModelReference> {};

TEST_P(ModelReferenceTest, ParameterCountMatchesPaper) {
  const ModelReference& ref = GetParam();
  const Graph g = models::by_name(ref.name);
  EXPECT_NEAR(g.total_params() / ref.params, 1.0, ref.tolerance)
      << g.name() << " params " << g.total_params();
}

TEST_P(ModelReferenceTest, MacCountMatchesPaper) {
  const ModelReference& ref = GetParam();
  const Graph g = models::by_name(ref.name);
  EXPECT_NEAR(g.total_macs() / ref.macs, 1.0, ref.tolerance)
      << g.name() << " macs " << g.total_macs();
}

TEST_P(ModelReferenceTest, GraphValidates) {
  const Graph g = models::by_name(GetParam().name);
  EXPECT_NO_THROW(g.validate());
}

TEST_P(ModelReferenceTest, SpineExtractable) {
  const Graph g = models::by_name(GetParam().name);
  const ConvSpine spine = ConvSpine::extract(g);
  EXPECT_GT(spine.size(), 0);
  EXPECT_EQ(spine.size(), g.num_spine_layers());
}

// Tolerances: AlexNet's paper FLOPs (727M) sits between the 224- and
// 227-pixel conventions; everything else matches torchvision within 2%.
INSTANTIATE_TEST_SUITE_P(
    Table3Models, ModelReferenceTest,
    ::testing::Values(ModelReference{"alexnet", 61.1e6, 727e6, 0.03},
                      ModelReference{"vgg16", 138e6, 15.5e9, 0.02},
                      ModelReference{"resnet34", 21.8e6, 3.68e9, 0.02},
                      ModelReference{"resnet101", 44.55e6, 7.85e9, 0.02},
                      ModelReference{"wrn50_2", 68.8e6, 11.4e9, 0.02}),
    [](const ::testing::TestParamInfo<ModelReference>& info) {
      return info.param.name;
    });

TEST(Models, AlexNetStructure) {
  const Graph g = models::alexnet();
  EXPECT_EQ(g.num_convs(), 5);          // the paper's "#Convs" column
  EXPECT_EQ(g.num_spine_layers(), 8);   // + 3 FC layers
}

TEST(Models, Vgg16Structure) {
  const Graph g = models::vgg16();
  EXPECT_EQ(g.num_convs(), 13);
  EXPECT_EQ(g.num_spine_layers(), 16);
}

TEST(Models, ResNet34Structure) {
  const Graph g = models::resnet34();
  // 33 main-path convs (paper's count) + 3 projection shortcuts.
  EXPECT_EQ(g.num_convs(), 36);
  const ConvSpine spine = ConvSpine::extract(g);
  EXPECT_EQ(spine.size(), 37);  // + fc
}

TEST(Models, ResNet101Structure) {
  const Graph g = models::resnet101();
  // 100 main-path convs (paper) + 4 projections.
  EXPECT_EQ(g.num_convs(), 104);
}

TEST(Models, WideResNetStructure) {
  const Graph g = models::wide_resnet50_2();
  // 49 main-path convs (paper) + 4 projections.
  EXPECT_EQ(g.num_convs(), 53);
  // Doubled bottleneck width: layer1 blocks use 128-wide 3x3 convs.
  bool saw_wide = false;
  for (const Layer& layer : g.layers()) {
    if (layer.name == "layer1.0.conv2") {
      saw_wide = layer.conv.out_channels == 128;
    }
  }
  EXPECT_TRUE(saw_wide);
}

TEST(Models, ResNetFamilyDepths) {
  EXPECT_EQ(models::resnet(18).num_convs(), 20);
  EXPECT_EQ(models::resnet(50).num_convs(), 53);
  EXPECT_EQ(models::resnet(152).num_convs(), 155);
}

TEST(Models, VggFamilyDepths) {
  EXPECT_EQ(models::vgg(11).num_convs(), 8);
  EXPECT_EQ(models::vgg(13).num_convs(), 10);
  EXPECT_EQ(models::vgg(19).num_convs(), 16);
}

TEST(Models, ResNet18ReferenceParams) {
  // torchvision: 11.69M params, 1.81G MACs.
  const Graph g = models::resnet(18);
  EXPECT_NEAR(g.total_params() / 11.69e6, 1.0, 0.02);
  EXPECT_NEAR(g.total_macs() / 1.81e9, 1.0, 0.03);
}

TEST(Models, ResNet50ReferenceParams) {
  // torchvision: 25.56M params, 4.09G MACs.
  const Graph g = models::resnet(50);
  EXPECT_NEAR(g.total_params() / 25.56e6, 1.0, 0.02);
  EXPECT_NEAR(g.total_macs() / 4.09e9, 1.0, 0.03);
}

TEST(Models, CasiaSurfIsThreeStreamFusion) {
  const Graph g = models::casia_surf();
  EXPECT_EQ(g.inputs().size(), 3u);
  EXPECT_NO_THROW(g.validate());
  bool has_concat = false;
  for (const Layer& layer : g.layers()) {
    has_concat = has_concat || layer.kind == LayerKind::kConcat;
  }
  EXPECT_TRUE(has_concat);
}

TEST(Models, FaceBagNetIsThreeStreamFusion) {
  const Graph g = models::facebagnet();
  EXPECT_EQ(g.inputs().size(), 3u);
  EXPECT_NO_THROW(g.validate());
  // Patch inputs keep resolution high relative to channels.
  EXPECT_EQ(g.layer(g.inputs().front()).output_shape, (TensorShape{3, 96, 96}));
}

TEST(Models, ByNameRejectsUnknown) {
  EXPECT_THROW((void)models::by_name("lenet"), Error);
}

TEST(Models, ZooNamesAreConstructible) {
  for (const std::string& name : models::zoo_names()) {
    const Graph g = models::by_name(name);
    EXPECT_NO_THROW(g.validate()) << name;
    EXPECT_GT(g.total_macs(), 0.0) << name;
  }
}

TEST(Models, ZooByNameRoundTripsThroughSpine) {
  // Serving configs address models purely by zoo name: every published
  // name must build a graph whose spine extracts cleanly, end to end.
  const std::vector<std::string> names = models::zoo_names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    const Graph g = models::by_name(name);
    const ConvSpine spine = ConvSpine::extract(g);
    EXPECT_GT(spine.size(), 0) << name;
    EXPECT_EQ(spine.size(), g.num_spine_layers()) << name;
    EXPECT_GT(spine.input_bytes().count(), 0.0) << name;
    EXPECT_GT(spine.output_bytes().count(), 0.0) << name;
    // The spine keeps the zoo name, so serving reports can round-trip
    // from a request's model string back to the mapped workload.
    EXPECT_EQ(spine.model_name(), g.name()) << name;
  }
}

TEST(Models, DtypePropagates) {
  const Graph g = models::alexnet(224, DataType::kFloat32);
  EXPECT_EQ(g.dtype(), DataType::kFloat32);
  const ConvSpine spine = ConvSpine::extract(g);
  EXPECT_EQ(spine.dtype(), DataType::kFloat32);
}

}  // namespace
}  // namespace mars::graph
