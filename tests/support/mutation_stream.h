// Seeded mutation-stream generator shared by the incremental-evaluation
// differential tests (tests/core/test_incremental_eval.cpp) and the
// full-vs-incremental micro-benchmark (bench/bench_micro.cpp).
//
// A stream reproduces the move shapes the real engines emit — annealing's
// k sequential gene edits, the GA's per-gene gaussian mutation, and
// crossover followed by mutation — as (parents, children, deltas) cohorts
// that can be priced through SkeletonSpace::fitness_batch (the full path)
// or SkeletonSpace::fitness_delta_batch (the incremental path) and
// compared bit for bit. Everything draws from one explicitly threaded Rng
// per stream, so a (seed, shape, sizes) tuple names the stream exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "mars/core/skeleton_space.h"
#include "mars/ga/operators.h"
#include "mars/util/rng.h"

namespace mars::testing {

/// The engine move shape a cohort mimics.
enum class MoveShape {
  /// AnnealingEngine: moves_per_step sequential clamped gaussian edits on
  /// one parent; `changed` lists the edited genes (a superset of the real
  /// diff — a clamp may rewrite a gene to its old value).
  kAnneal,
  /// GaEngine without crossover: per-gene Bernoulli gaussian mutation;
  /// `changed` is the exact diff scan, as the engine reports it.
  kGaMutate,
  /// GaEngine with crossover: uniform crossover against a second parent,
  /// then mutation; `changed` is the exact diff against the first parent.
  kGaCross,
};

/// One generation of engine moves over a shared parent cohort.
struct MutationCohort {
  std::vector<ga::Genome> parents;
  std::vector<ga::Genome> children;
  std::vector<ga::GenomeDelta> deltas;
};

/// Breeds `num_children` children from `parents` under `shape`, drawing
/// every stochastic choice from `rng`. Deterministic for a fixed Rng
/// state; the cohort's deltas satisfy the GenomeDelta superset contract
/// exactly the way the engines' own emission does.
inline MutationCohort breed_cohort(const std::vector<ga::Genome>& parents,
                                   MoveShape shape, std::size_t num_children,
                                   Rng& rng) {
  MutationCohort cohort;
  cohort.parents = parents;
  cohort.children.reserve(num_children);
  cohort.deltas.reserve(num_children);
  for (std::size_t i = 0; i < num_children; ++i) {
    const std::size_t pa = rng.index(parents.size());
    const ga::Genome& parent = parents[pa];
    ga::Genome child = parent;
    ga::GenomeDelta delta;
    delta.parent = pa;
    switch (shape) {
      case MoveShape::kAnneal: {
        const int moves = 1 + static_cast<int>(rng.index(3));
        for (int m = 0; m < moves; ++m) {
          const std::size_t gene = rng.index(child.size());
          child[gene] = std::clamp(child[gene] + rng.gaussian(0.0, 0.2), 0.0,
                                   1.0);
          delta.changed.push_back(gene);  // superset: clamp may no-op
        }
        break;
      }
      case MoveShape::kGaMutate: {
        ga::gaussian_mutate(child, /*rate=*/0.15, /*sigma=*/0.25, 0.0, 1.0,
                            rng);
        for (std::size_t g = 0; g < child.size(); ++g) {
          if (child[g] != parent[g]) delta.changed.push_back(g);
        }
        break;
      }
      case MoveShape::kGaCross: {
        const ga::Genome& other = parents[rng.index(parents.size())];
        child = ga::uniform_crossover(parent, other, rng);
        ga::gaussian_mutate(child, /*rate=*/0.15, /*sigma=*/0.25, 0.0, 1.0,
                            rng);
        for (std::size_t g = 0; g < child.size(); ++g) {
          if (child[g] != parent[g]) delta.changed.push_back(g);
        }
        break;
      }
    }
    cohort.children.push_back(std::move(child));
    cohort.deltas.push_back(std::move(delta));
  }
  return cohort;
}

/// A fresh uniform-random parent cohort sized for `space`'s genome.
inline std::vector<ga::Genome> random_parents(const core::SkeletonSpace& space,
                                              std::size_t count, Rng& rng) {
  std::vector<ga::Genome> parents;
  parents.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    parents.push_back(
        ga::random_genome(space.codec().genome_size(), 0.0, 1.0, rng));
  }
  return parents;
}

}  // namespace mars::testing
