// Seeded objective-stream generator shared by the Front dominance
// property tests (tests/explore/test_front_properties.cpp).
//
// A stream is a sequence of FrontPoints with objective values drawn from
// a deliberately coarse grid: with only a handful of distinct values per
// objective, random vectors collide, tie, and dominate each other far
// more often than continuous draws would, which is exactly the regime
// where an archive implementation can get eviction, equality and
// order-independence wrong. Everything draws from one explicitly
// threaded Rng, so a (seed, length, arity) tuple names the stream
// exactly — the property tests replay and permute the same stream.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "mars/explore/front.h"
#include "mars/util/rng.h"

namespace mars::testing {

struct FrontStreamSpec {
  std::uint64_t seed = 1;
  int length = 32;   // points per stream
  int arity = 3;     // objective-vector length
  int levels = 5;    // distinct values per objective (coarser = more ties)
};

/// The full point stream for `spec`, keys "p000", "p001", ... (unique per
/// position, so equal objective vectors still have distinct identities).
inline std::vector<explore::FrontPoint> front_stream(
    const FrontStreamSpec& spec) {
  Rng rng(spec.seed);
  std::vector<explore::FrontPoint> points;
  points.reserve(static_cast<std::size_t>(spec.length));
  for (int i = 0; i < spec.length; ++i) {
    explore::FrontPoint point;
    char key[16];
    std::snprintf(key, sizeof key, "p%03d", i);
    point.key = key;
    point.objectives.reserve(static_cast<std::size_t>(spec.arity));
    for (int m = 0; m < spec.arity; ++m) {
      // Grid values 1..levels, scaled per objective so magnitudes differ.
      const double level =
          static_cast<double>(rng.index(static_cast<std::size_t>(spec.levels)) +
                              1);
      point.objectives.push_back(level * static_cast<double>(m + 1));
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace mars::testing
