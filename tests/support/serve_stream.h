// Shared plumbing for the serve-equivalence differential harness
// (tests/serve/test_fleet_differential.cpp) and the fleet unit tests.
//
// The production FleetScheduler routes, runs and merges with its own
// machinery (worker pool, per-shard engines, merge_shard_results); the
// functions here build the SAME answer from first principles — route each
// request with serve::shard_of, run one plain serial OnlineScheduler per
// shard, concatenate shard-major and stable-sort by simulated time — so a
// differential test compares two independent implementations of the
// sharding contract. Any divergence (routing, ordering, a data race on
// the parallel path, a merge bug) shows up as a field-level mismatch.
//
// Equality here is exact (double ==, not near): the sharded path is
// required to be byte-identical to the serial reference at any thread
// count, per the determinism contract in serve/fleet.h.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "mars/serve/fleet.h"
#include "mars/serve/metrics.h"
#include "mars/serve/report.h"
#include "mars/serve/scheduler.h"
#include "mars/serve/workload.h"

namespace mars::testing {

/// Reference sharded run, written straight-line: route by shard_of, run
/// each sub-stream through an independent serial OnlineScheduler, merge
/// by hand. Deliberately re-implements (rather than calls) the fleet's
/// routing-and-merge so the differential test has two code paths.
inline serve::ServeResult reference_sharded_run(
    const topology::Topology& group_topo,
    const std::vector<const serve::ModelService*>& services,
    const serve::SchedulerOptions& options, int shards,
    const std::vector<serve::Request>& arrivals) {
  std::vector<std::vector<serve::Request>> per_shard(
      static_cast<std::size_t>(shards));
  for (const serve::Request& request : arrivals) {
    per_shard[static_cast<std::size_t>(
                  serve::shard_of(request.model, request.id, shards))]
        .push_back(request);
  }
  serve::ServeResult merged;
  for (int s = 0; s < shards; ++s) {
    const serve::OnlineScheduler scheduler(group_topo, services, options);
    serve::ServeResult shard =
        scheduler.run(per_shard[static_cast<std::size_t>(s)]);
    merged.completed.insert(merged.completed.end(), shard.completed.begin(),
                            shard.completed.end());
    merged.rejected.insert(merged.rejected.end(), shard.rejected.begin(),
                           shard.rejected.end());
    merged.acc_busy.insert(merged.acc_busy.end(), shard.acc_busy.begin(),
                           shard.acc_busy.end());
    merged.horizon = std::max(merged.horizon, shard.horizon);
    merged.tasks_executed += shard.tasks_executed;
    merged.batches_dispatched += shard.batches_dispatched;
  }
  std::stable_sort(
      merged.completed.begin(), merged.completed.end(),
      [](const serve::CompletedRequest& a, const serve::CompletedRequest& b) {
        return a.completion < b.completion;
      });
  std::stable_sort(merged.rejected.begin(), merged.rejected.end(),
                   [](const serve::Request& a, const serve::Request& b) {
                     return a.arrival < b.arrival;
                   });
  return merged;
}

/// Same reference, closed loop: clients bind to shards by (model, client
/// index) and each shard runs a serial closed loop.
inline serve::ServeResult reference_sharded_closed_loop(
    const topology::Topology& group_topo,
    const std::vector<const serve::ModelService*>& services,
    const serve::SchedulerOptions& options, int shards,
    const serve::ClosedLoopSpec& spec, Seconds duration) {
  std::vector<serve::ClosedLoopSpec> per_shard(
      static_cast<std::size_t>(shards));
  for (auto& shard_spec : per_shard) shard_spec.think = spec.think;
  for (int c = 0; c < spec.clients(); ++c) {
    const int model = spec.client_model[static_cast<std::size_t>(c)];
    per_shard[static_cast<std::size_t>(serve::shard_of(model, c, shards))]
        .client_model.push_back(model);
  }
  serve::ServeResult merged;
  for (int s = 0; s < shards; ++s) {
    const serve::ClosedLoopSpec& shard_spec =
        per_shard[static_cast<std::size_t>(s)];
    serve::ServeResult shard;
    if (shard_spec.clients() == 0) {
      shard.acc_busy.assign(static_cast<std::size_t>(group_topo.size()),
                            Seconds(0.0));
    } else {
      const serve::OnlineScheduler scheduler(group_topo, services, options);
      shard = scheduler.run_closed_loop(shard_spec, duration);
    }
    merged.completed.insert(merged.completed.end(), shard.completed.begin(),
                            shard.completed.end());
    merged.rejected.insert(merged.rejected.end(), shard.rejected.begin(),
                           shard.rejected.end());
    merged.acc_busy.insert(merged.acc_busy.end(), shard.acc_busy.begin(),
                           shard.acc_busy.end());
    merged.horizon = std::max(merged.horizon, shard.horizon);
    merged.tasks_executed += shard.tasks_executed;
    merged.batches_dispatched += shard.batches_dispatched;
  }
  std::stable_sort(
      merged.completed.begin(), merged.completed.end(),
      [](const serve::CompletedRequest& a, const serve::CompletedRequest& b) {
        return a.completion < b.completion;
      });
  std::stable_sort(merged.rejected.begin(), merged.rejected.end(),
                   [](const serve::Request& a, const serve::Request& b) {
                     return a.arrival < b.arrival;
                   });
  return merged;
}

/// Field-exact equality of two ServeResults. `context` labels the sweep
/// point in failure output.
inline void expect_results_identical(const serve::ServeResult& expected,
                                     const serve::ServeResult& actual,
                                     const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(expected.completed.size(), actual.completed.size());
  for (std::size_t i = 0; i < expected.completed.size(); ++i) {
    const serve::CompletedRequest& e = expected.completed[i];
    const serve::CompletedRequest& a = actual.completed[i];
    ASSERT_EQ(e.request.id, a.request.id) << "completed[" << i << "]";
    ASSERT_EQ(e.request.model, a.request.model) << "completed[" << i << "]";
    ASSERT_EQ(e.request.arrival.count(), a.request.arrival.count())
        << "completed[" << i << "]";
    ASSERT_EQ(e.dispatch.count(), a.dispatch.count()) << "completed[" << i
                                                      << "]";
    ASSERT_EQ(e.completion.count(), a.completion.count())
        << "completed[" << i << "]";
    ASSERT_EQ(e.batch_size, a.batch_size) << "completed[" << i << "]";
  }
  ASSERT_EQ(expected.rejected.size(), actual.rejected.size());
  for (std::size_t i = 0; i < expected.rejected.size(); ++i) {
    ASSERT_EQ(expected.rejected[i].id, actual.rejected[i].id)
        << "rejected[" << i << "]";
    ASSERT_EQ(expected.rejected[i].model, actual.rejected[i].model)
        << "rejected[" << i << "]";
    ASSERT_EQ(expected.rejected[i].arrival.count(),
              actual.rejected[i].arrival.count())
        << "rejected[" << i << "]";
  }
  ASSERT_EQ(expected.acc_busy.size(), actual.acc_busy.size());
  for (std::size_t a = 0; a < expected.acc_busy.size(); ++a) {
    ASSERT_EQ(expected.acc_busy[a].count(), actual.acc_busy[a].count())
        << "acc_busy[" << a << "]";
  }
  ASSERT_EQ(expected.horizon.count(), actual.horizon.count());
  ASSERT_EQ(expected.tasks_executed, actual.tasks_executed);
  ASSERT_EQ(expected.batches_dispatched, actual.batches_dispatched);
}

/// The user-facing summary as one JSON byte string — what "byte-identical
/// stdout" reduces to for a ServeResult.
inline std::string summary_json(const serve::ServeResult& result,
                                const std::vector<std::string>& model_names,
                                Seconds slo) {
  return serve::to_json(serve::summarize(result, model_names, slo)).dump();
}

}  // namespace mars::testing
