// End-to-end reproduction smoke tests: small search budgets, but the full
// pipeline (model -> spine -> profile -> two-level GA -> event simulation),
// asserting the paper's headline directions.
#include <gtest/gtest.h>

#include "mars/core/baseline.h"
#include "mars/core/evaluator.h"
#include "mars/core/h2h.h"
#include "mars/core/mars.h"
#include "mars/graph/models/models.h"
#include "mars/topology/presets.h"

namespace mars::core {
namespace {

MarsConfig test_budget() {
  MarsConfig config;
  config.first_ga.population = 16;
  config.first_ga.generations = 10;
  config.first_ga.stall_generations = 5;
  config.second.ga.population = 8;
  config.second.ga.generations = 6;
  config.seed = 11;
  return config;
}

struct ProblemBundle {
  graph::Graph model;
  graph::ConvSpine spine;
  topology::Topology topo;
  accel::DesignRegistry designs;
  Problem problem;

  ProblemBundle(const std::string& name, topology::Topology t,
                accel::DesignRegistry d, bool adaptive)
      : model(graph::models::by_name(name)),
        spine(graph::ConvSpine::extract(model)),
        topo(std::move(t)),
        designs(std::move(d)) {
    problem.spine = &spine;
    problem.topo = &topo;
    problem.designs = &designs;
    problem.adaptive = adaptive;
  }
};

class Table3Direction : public ::testing::TestWithParam<const char*> {};

TEST_P(Table3Direction, MarsBeatsBaseline) {
  ProblemBundle bundle(GetParam(), topology::f1_16xlarge(),
                       accel::table2_designs(), /*adaptive=*/true);

  const accel::ProfileMatrix profile(bundle.designs, bundle.spine);
  const Mapping baseline = baseline_mapping(bundle.problem, profile);
  const MappingEvaluator evaluator(bundle.problem);
  const Seconds baseline_latency = evaluator.evaluate(baseline).simulated;

  Mars mars(bundle.problem, test_budget());
  const Seconds mars_latency = mars.search().summary.simulated;

  // Table III direction: MARS never loses; small budget still finds wins.
  EXPECT_LE(mars_latency.count(), baseline_latency.count() * 1.02)
      << GetParam() << ": MARS " << mars_latency.millis() << " ms vs baseline "
      << baseline_latency.millis() << " ms";
}

INSTANTIATE_TEST_SUITE_P(Models, Table3Direction,
                         ::testing::Values("alexnet", "vgg16"));

TEST(Table4Direction, MarsBeatsH2HOnHeterogeneousModels) {
  // Fixed-design cloud at mid bandwidth; MARS's intra-layer parallelism
  // must beat H2H's one-layer-one-accelerator contract (paper: -50..74%).
  ProblemBundle bundle("casia_surf", topology::h2h_cloud(8, gbps(4.0), 4),
                       accel::h2h_designs(), /*adaptive=*/false);

  const Seconds h2h = H2HMapper(bundle.problem).map().simulated;
  Mars mars(bundle.problem, test_budget());
  const Seconds ours = mars.search().summary.simulated;

  EXPECT_LT(ours.count(), h2h.count())
      << "MARS " << ours.millis() << " ms vs H2H " << h2h.millis() << " ms";
}

TEST(MappingPatterns, WinogradAvoidedForBottleneckHeavyModels) {
  // The paper: design 3 (Winograd) never shows up for ResNet101/WRN-50-2
  // because it cannot handle the 1x1 bottleneck convolutions.
  ProblemBundle bundle("resnet101", topology::f1_16xlarge(),
                       accel::table2_designs(), /*adaptive=*/true);
  MarsConfig config = test_budget();
  config.first_ga.generations = 6;  // keep runtime modest
  Mars mars(bundle.problem, config);
  const MarsResult result = mars.search();

  const accel::DesignId winograd = bundle.designs.find("WinogradF43");
  double winograd_macs = 0.0;
  double total_macs = 0.0;
  for (const LayerAssignment& set : result.mapping.sets) {
    for (int l = set.begin; l < set.end; ++l) {
      const double macs = bundle.spine.node(l).shape.macs();
      total_macs += macs;
      if (set.design == winograd) winograd_macs += macs;
    }
  }
  EXPECT_LT(winograd_macs / total_macs, 0.2);
}

TEST(MemoryConstraint, TightDramForcesFeasibleMapping) {
  // With only 64 MiB per accelerator, VGG16 (~276 MB of fix16 weights)
  // cannot sit on a 2-accelerator set un-sharded; the search must still
  // return a memory-feasible mapping by spreading/sharding harder.
  topology::Topology tight = topology::f1_16xlarge(gbps(8.0), gbps(2.0),
                                                   mebibytes(64.0));
  ProblemBundle bundle("vgg16", std::move(tight), accel::table2_designs(),
                       /*adaptive=*/true);
  Mars mars(bundle.problem, test_budget());
  const MarsResult result = mars.search();
  EXPECT_TRUE(result.summary.memory_ok)
      << "worst set footprint "
      << result.summary.worst_set_footprint.mib() << " MiB";
}

TEST(HostBandwidthSensitivity, SlowerHostHurts) {
  ProblemBundle fast_host("alexnet", topology::f1_16xlarge(gbps(8.0), gbps(4.0)),
                          accel::table2_designs(), true);
  ProblemBundle slow_host("alexnet", topology::f1_16xlarge(gbps(8.0), gbps(0.5)),
                          accel::table2_designs(), true);

  const accel::ProfileMatrix pf(fast_host.designs, fast_host.spine);
  const accel::ProfileMatrix ps(slow_host.designs, slow_host.spine);
  const Seconds fast =
      MappingEvaluator(fast_host.problem)
          .evaluate(baseline_mapping(fast_host.problem, pf))
          .simulated;
  const Seconds slow =
      MappingEvaluator(slow_host.problem)
          .evaluate(baseline_mapping(slow_host.problem, ps))
          .simulated;
  EXPECT_LT(fast.count(), slow.count());
}

}  // namespace
}  // namespace mars::core
