// Property-based sweeps over the strategy/sharding machinery: invariants
// that must hold for EVERY layer of EVERY zoo model under EVERY strategy.
#include <gtest/gtest.h>

#include "mars/accel/registry.h"
#include "mars/graph/models/models.h"
#include "mars/parallel/comm_pattern.h"
#include "mars/parallel/sharding.h"

namespace mars::parallel {
namespace {

struct PropertyCase {
  const char* model;
  int p;
};

class StrategyProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(StrategyProperties, PlansAreSelfConsistent) {
  const auto [model_name, p] = GetParam();
  const graph::Graph model = graph::models::by_name(model_name);
  const graph::ConvSpine spine = graph::ConvSpine::extract(model);

  for (int l = 0; l < spine.size(); ++l) {
    const graph::ConvShape& shape = spine.node(l).shape;
    for (const Strategy& s : enumerate_strategies(shape, p, 3)) {
      const ShardingPlan plan = make_plan(shape, spine.dtype(), s, p);

      // Work conservation: shards cover the full iteration space.
      EXPECT_GE(plan.local.macs() * p * plan.phases, shape.macs())
          << model_name << " layer " << l << " " << s.to_string();
      // Over-covering is bounded: ceil splits at most double each dim.
      EXPECT_LE(plan.local.macs() * p * plan.phases, shape.macs() * 64.0);

      // Memory: a shard never exceeds the whole tensor (x2 for buffers).
      EXPECT_LE(plan.weight_resident.count(),
                shape.weight_bytes(spine.dtype()).count() * 2.0 + 1.0);
      EXPECT_LE(plan.input_live.count(),
                shape.in_bytes(spine.dtype()).count() * 2.0 + 1.0);
      EXPECT_LE(plan.output_live.count(),
                shape.out_bytes(spine.dtype()).count() + 1.0);

      // Phase structure.
      EXPECT_EQ(plan.phases, s.has_ss() ? p : 1);
      if (s.has_ss()) {
        EXPECT_GT(plan.ring_hop_bytes.count(), 0.0);
      } else {
        EXPECT_DOUBLE_EQ(plan.ring_hop_bytes.count(), 0.0);
      }

      // All-Reduce group divides p and matches the reduction ways.
      EXPECT_EQ(plan.allreduce_group, s.reduction_ways());
      EXPECT_EQ(p % plan.allreduce_group, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ZooSweep, StrategyProperties,
    ::testing::Values(PropertyCase{"alexnet", 2}, PropertyCase{"alexnet", 4},
                      PropertyCase{"alexnet", 8}, PropertyCase{"resnet34", 4},
                      PropertyCase{"vgg16", 8}, PropertyCase{"facebagnet", 4}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return std::string(info.param.model) + "_p" + std::to_string(info.param.p);
    });

TEST(ReshardProperties, CoverageNeverExceedsNeed) {
  // Moved bytes are bounded by p * per-accelerator need (full miss) and
  // never negative.
  const graph::Graph model = graph::models::resnet34();
  const graph::ConvSpine spine = graph::ConvSpine::extract(model);
  constexpr int kP = 4;
  for (int l = 1; l < spine.size(); ++l) {
    const graph::ConvShape& consumer = spine.node(l).shape;
    const graph::ConvShape& producer = spine.node(l - 1).shape;
    const Bytes in = consumer.in_bytes(spine.dtype());
    for (const Strategy& sp : enumerate_strategies(producer, kP, 2)) {
      const ShardingPlan prev = make_plan(producer, spine.dtype(), sp, kP);
      for (const Strategy& sc : enumerate_strategies(consumer, kP, 2)) {
        if (sc.has_ss()) continue;  // keep the sweep tractable
        const ShardingPlan next = make_plan(consumer, spine.dtype(), sc, kP);
        const ReshardCost cost = reshard_cost(prev.produced, consumer,
                                              next.required, in, kP,
                                              spine.dtype());
        EXPECT_GE(cost.moved.count(), 0.0);
        EXPECT_LE(cost.moved.count(),
                  static_cast<double>(kP) * in.count() + cost.halo.count() + 1.0);
      }
      if (l > 3) break;  // bound the quadratic sweep on deep models
    }
    if (l > 3) break;
  }
}

TEST(DesignProperties, MonotoneInEveryDimension) {
  // Growing any loop dimension must not reduce total cycles, for every
  // design in the Table II menu.
  const accel::DesignRegistry registry = accel::table2_designs();
  const graph::ConvShape base{128, 64, 28, 28, 3, 3, 1, 1};
  auto grow = [](graph::ConvShape s, int dim) {
    switch (dim) {
      case 0: s.cout *= 2; break;
      case 1: s.cin *= 2; break;
      case 2: s.oh *= 2; break;
      case 3: s.ow *= 2; break;
      default: break;
    }
    return s;
  };
  for (accel::DesignId id : registry.ids()) {
    const accel::AcceleratorDesign& d = registry.design(id);
    const double t0 = d.conv_cycles(base, graph::DataType::kFix16).total();
    for (int dim = 0; dim < 4; ++dim) {
      const double t1 =
          d.conv_cycles(grow(base, dim), graph::DataType::kFix16).total();
      EXPECT_GE(t1, t0) << d.name() << " dim " << dim;
    }
  }
}

TEST(DesignProperties, ShardingNeverIncreasesPerAcceleratorCycles) {
  // A sharded layer's per-phase local shape must never cost more than the
  // whole layer on the same design — except when a kernel-dim split turns
  // a 3x3 kernel into fragments and knocks the Winograd design off its
  // fast path (a real effect the second-level search must, and does,
  // learn to avoid).
  const accel::DesignRegistry registry = accel::table2_designs();
  const graph::ConvShape shape{256, 128, 28, 28, 3, 3, 1, 1};
  for (const Strategy& s : enumerate_strategies(shape, 4, 3)) {
    const ShardingPlan plan = make_plan(shape, graph::DataType::kFix16, s, 4);
    const bool splits_kernel = s.ways_of(Dim::kKh) > 1 || s.ways_of(Dim::kKw) > 1 ||
                               s.ss() == Dim::kKh || s.ss() == Dim::kKw;
    for (accel::DesignId id : registry.ids()) {
      const accel::AcceleratorDesign& d = registry.design(id);
      if (splits_kernel && registry.find("WinogradF43") == id) continue;
      EXPECT_LE(d.conv_cycles(plan.local, graph::DataType::kFix16).total(),
                d.conv_cycles(shape, graph::DataType::kFix16).total() * 1.001)
          << d.name() << " " << s.to_string();
    }
  }
}

}  // namespace
}  // namespace mars::parallel
