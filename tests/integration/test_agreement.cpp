// Analytical-vs-event-driven agreement: the GA optimises the closed-form
// model, the benchmarks report the simulator; this suite bounds the gap so
// rankings transfer between the two.
#include <gtest/gtest.h>

#include "mars/core/evaluator.h"
#include "mars/core/second_level.h"
#include "mars/graph/models/models.h"
#include "mars/topology/presets.h"
#include "mars/util/rng.h"

namespace mars::core {
namespace {

struct Bundle {
  graph::Graph model = graph::models::alexnet();
  graph::ConvSpine spine = graph::ConvSpine::extract(model);
  topology::Topology topo = topology::f1_16xlarge();
  accel::DesignRegistry designs = accel::table2_designs();
  Problem problem;

  Bundle() {
    problem.spine = &spine;
    problem.topo = &topo;
    problem.designs = &designs;
    problem.adaptive = true;
  }
};

Mapping random_mapping(const Bundle& bundle, Rng& rng) {
  const int n = bundle.spine.size();
  const int cut = rng.uniform_int(1, n - 1);
  const std::array<topology::AccMask, 3> group1 = {0b0001, 0b0011, 0b1111};
  const std::array<topology::AccMask, 3> group2 = {0b00010000, 0b00110000,
                                                   0b11110000};
  Mapping mapping;
  LayerAssignment a;
  a.accs = group1[rng.index(3)];
  a.design = rng.uniform_int(0, bundle.designs.size() - 1);
  a.begin = 0;
  a.end = cut;
  LayerAssignment b;
  b.accs = group2[rng.index(3)];
  b.design = rng.uniform_int(0, bundle.designs.size() - 1);
  b.begin = cut;
  b.end = n;
  for (LayerAssignment* set : {&a, &b}) {
    const int p = set->num_accs();
    for (int l = set->begin; l < set->end; ++l) {
      const auto options =
          parallel::enumerate_strategies(bundle.spine.node(l).shape, p, 3);
      set->strategies.push_back(options[rng.index(options.size())]);
    }
  }
  mapping.sets = {a, b};
  return mapping;
}

TEST(Agreement, AnalyticTracksSimulationWithinFactorTwo) {
  Bundle bundle;
  const MappingEvaluator evaluator(bundle.problem);
  Rng rng(2024);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 25; ++trial) {
    const Mapping mapping = random_mapping(bundle, rng);
    const EvaluationSummary summary = evaluator.evaluate(mapping);
    const double ratio =
        summary.simulated.count() / summary.analytic_makespan.count();
    EXPECT_GT(ratio, 0.4) << "trial " << trial;
    EXPECT_LT(ratio, 2.5) << "trial " << trial;
    worst_ratio = std::max(worst_ratio, std::max(ratio, 1.0 / ratio));
  }
  // Most mappings agree much tighter than the hard bound.
  EXPECT_LT(worst_ratio, 2.5);
}

TEST(Agreement, RankingsMostlyTransfer) {
  // For pairs with a clear analytic gap (>25%), the simulator must agree
  // on the winner.
  Bundle bundle;
  const MappingEvaluator evaluator(bundle.problem);
  Rng rng(7);
  int checked = 0;
  int agreed = 0;
  std::vector<EvaluationSummary> summaries;
  for (int i = 0; i < 12; ++i) {
    summaries.push_back(evaluator.evaluate(random_mapping(bundle, rng)));
  }
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    for (std::size_t j = i + 1; j < summaries.size(); ++j) {
      const double a = summaries[i].analytic_makespan.count();
      const double b = summaries[j].analytic_makespan.count();
      if (std::max(a, b) < 1.25 * std::min(a, b)) continue;
      ++checked;
      const bool analytic_says = a < b;
      const bool sim_says =
          summaries[i].simulated.count() < summaries[j].simulated.count();
      if (analytic_says == sim_says) ++agreed;
    }
  }
  ASSERT_GT(checked, 10);
  EXPECT_GE(static_cast<double>(agreed) / checked, 0.9)
      << agreed << "/" << checked;
}

TEST(Agreement, GreedySecondLevelChoicesHoldUpInSimulation) {
  // The greedy oracle picks per-layer strategies under the analytic model;
  // verify the full simulated latency of its choice beats a deliberately
  // bad choice (worst per-layer strategy).
  Bundle bundle;
  const SecondLevelSearch search(bundle.problem, SecondLevelConfig{});
  const AnalyticalCostModel model(bundle.problem);

  LayerAssignment skeleton;
  skeleton.accs = 0b1111;
  skeleton.design = 0;
  skeleton.begin = 0;
  skeleton.end = bundle.spine.size();

  LayerAssignment good = skeleton;
  good.strategies = search.greedy(skeleton).strategies;
  LayerAssignment bad = skeleton;
  for (int l = 0; l < bundle.spine.size(); ++l) {
    const auto options =
        parallel::enumerate_strategies(bundle.spine.node(l).shape, 4, 3);
    const parallel::Strategy* worst = nullptr;
    Seconds worst_t(0.0);
    for (const parallel::Strategy& option : options) {
      const LayerCost cost = model.layer_cost(skeleton, l, option, std::nullopt);
      if (worst == nullptr || cost.total() > worst_t) {
        worst = &option;
        worst_t = cost.total();
      }
    }
    bad.strategies.push_back(*worst);
  }

  Mapping good_mapping;
  good_mapping.sets = {good};
  Mapping bad_mapping;
  bad_mapping.sets = {bad};
  const MappingEvaluator evaluator(bundle.problem);
  EXPECT_LT(evaluator.evaluate(good_mapping).simulated.count(),
            evaluator.evaluate(bad_mapping).simulated.count());
}

}  // namespace
}  // namespace mars::core
