// Full reproduction-direction sweep at smoke budgets: every Table III
// model must beat its baseline, and MARS must beat H2H on both Table IV
// models at a low and a high bandwidth point. These are the headline
// claims; budgets are small so the whole suite stays fast, and the
// assertions use small tolerance slack accordingly.
#include <gtest/gtest.h>

#include "mars/core/baseline.h"
#include "mars/core/evaluator.h"
#include "mars/core/h2h.h"
#include "mars/core/mars.h"
#include "mars/graph/models/models.h"
#include "mars/topology/presets.h"

namespace mars::core {
namespace {

MarsConfig sweep_budget() {
  MarsConfig config;
  config.first_ga.population = 16;
  config.first_ga.generations = 10;
  config.first_ga.stall_generations = 5;
  config.second.ga.population = 8;
  config.second.ga.generations = 6;
  config.seed = 2;
  return config;
}

class Table3Sweep : public ::testing::TestWithParam<const char*> {};

TEST_P(Table3Sweep, MarsNeverLosesToBaseline) {
  graph::Graph model = graph::models::by_name(GetParam());
  graph::ConvSpine spine = graph::ConvSpine::extract(model);
  topology::Topology topo = topology::f1_16xlarge();
  accel::DesignRegistry designs = accel::table2_designs();
  Problem problem{&spine, &topo, &designs, true, {}};

  const accel::ProfileMatrix profile(designs, spine);
  const MappingEvaluator evaluator(problem);
  const Seconds baseline =
      evaluator.evaluate(baseline_mapping(problem, profile)).simulated;
  Mars mars(problem, sweep_budget());
  const Seconds ours = mars.search().summary.simulated;
  EXPECT_LE(ours.count(), baseline.count() * 1.02)
      << GetParam() << ": MARS " << ours.millis() << " ms vs baseline "
      << baseline.millis() << " ms";
}

INSTANTIATE_TEST_SUITE_P(AllModels, Table3Sweep,
                         ::testing::Values("alexnet", "vgg16", "resnet34",
                                           "resnet101", "wrn50_2"));

struct Table4Point {
  const char* model;
  double bandwidth_gbps;
};

class Table4Sweep : public ::testing::TestWithParam<Table4Point> {};

TEST_P(Table4Sweep, MarsBeatsH2H) {
  const auto [model_name, bandwidth] = GetParam();
  graph::Graph model = graph::models::by_name(model_name);
  graph::ConvSpine spine = graph::ConvSpine::extract(model);
  topology::Topology topo = topology::h2h_cloud(8, gbps(bandwidth), 4);
  accel::DesignRegistry designs = accel::h2h_designs();
  Problem problem{&spine, &topo, &designs, false, {}};

  const Seconds h2h = H2HMapper(problem).map().simulated;
  Mars mars(problem, sweep_budget());
  const Seconds ours = mars.search().summary.simulated;
  EXPECT_LT(ours.count(), h2h.count())
      << model_name << " @ " << bandwidth << " Gb/s: MARS " << ours.millis()
      << " ms vs H2H " << h2h.millis() << " ms";
}

INSTANTIATE_TEST_SUITE_P(
    BandwidthPoints, Table4Sweep,
    ::testing::Values(Table4Point{"casia_surf", 1.0},
                      Table4Point{"casia_surf", 10.0},
                      Table4Point{"facebagnet", 1.0},
                      Table4Point{"facebagnet", 10.0}),
    [](const ::testing::TestParamInfo<Table4Point>& info) {
      return std::string(info.param.model) + "_" +
             std::to_string(static_cast<int>(info.param.bandwidth_gbps)) +
             "gbps";
    });

TEST(ReproductionSweep, SpatialShardingRisesAsBandwidthFalls) {
  // The paper's low-bandwidth observation, asserted end-to-end: the share
  // of spatial (H/W) ES shards at 1 Gb/s must be >= the share at 10 Gb/s.
  auto spatial_share = [](double bandwidth) {
    graph::Graph model = graph::models::casia_surf();
    graph::ConvSpine spine = graph::ConvSpine::extract(model);
    topology::Topology topo = topology::h2h_cloud(8, gbps(bandwidth), 4);
    accel::DesignRegistry designs = accel::h2h_designs();
    Problem problem{&spine, &topo, &designs, false, {}};
    Mars mars(problem, sweep_budget());
    const MarsResult result = mars.search();
    int spatial = 0;
    int total = 0;
    for (const LayerAssignment& set : result.mapping.sets) {
      for (const parallel::Strategy& s : set.strategies) {
        ++total;
        if (s.ways_of(parallel::Dim::kH) > 1 ||
            s.ways_of(parallel::Dim::kW) > 1) {
          ++spatial;
        }
      }
    }
    return static_cast<double>(spatial) / total;
  };
  EXPECT_GE(spatial_share(1.0) + 0.02, spatial_share(10.0));
}

}  // namespace
}  // namespace mars::core
