// TraceRecorder contract: stable track ids, Chrome Trace Event export
// fields, deterministic (clock, ts, seq) ordering, streaming/tree export
// equivalence, and a zero-allocation disabled path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mars/obs/trace.h"
#include "mars/util/json.h"

// Replaceable global allocation functions counting every operator-new call,
// so the no-recorder fast path can be pinned to exactly zero allocations.
// (Global scope on purpose: replacement requires external linkage.)
static std::atomic<long long> g_allocation_count{0};

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow flavours must be replaced too: std::stable_sort's temporary
// buffer allocates through nothrow new, and mixing a default nothrow new
// with the replaced deletes below trips ASan's alloc-dealloc matching.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace mars::obs {
namespace {

/// Events of the exported document, skipping the "M" metadata header.
std::vector<JsonValue> data_events(const JsonValue& doc) {
  const JsonValue& events = doc.get("traceEvents");
  std::vector<JsonValue> out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events.at(i).get("ph").as_string() != "M") out.push_back(events.at(i));
  }
  return out;
}

TEST(TraceRecorderTest, TrackIdsAreStablePerClock) {
  TraceRecorder rec;
  const int sim_a = rec.track(Clock::kSim, "a");
  const int sim_b = rec.track(Clock::kSim, "b");
  EXPECT_NE(sim_a, sim_b);
  EXPECT_EQ(rec.track(Clock::kSim, "a"), sim_a);
  // Domains number their tracks independently.
  EXPECT_EQ(rec.track(Clock::kWall, "a"), 0);
  EXPECT_EQ(sim_a, 0);
}

TEST(TraceRecorderTest, CompleteEventExportsChromeTraceFields) {
  TraceRecorder rec;
  const int track = rec.track(Clock::kSim, "acc 0");
  rec.complete(Clock::kSim, track, "work", Seconds(0.001), Seconds(0.002),
               {{"request", JsonValue::integer(7)}});
  const auto events = data_events(rec.to_json());
  ASSERT_EQ(events.size(), 1u);
  const JsonValue& event = events[0];
  EXPECT_EQ(event.get("name").as_string(), "work");
  EXPECT_EQ(event.get("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(event.get("ts").as_number(), 1000.0);   // micros
  EXPECT_DOUBLE_EQ(event.get("dur").as_number(), 2000.0);
  EXPECT_EQ(event.get("pid").as_integer(), trace_pid(Clock::kSim));
  EXPECT_EQ(event.get("tid").as_integer(), track);
  EXPECT_EQ(event.get("args").get("request").as_integer(), 7);
}

TEST(TraceRecorderTest, InstantAndCounterEventShapes) {
  TraceRecorder rec;
  const int track = rec.track(Clock::kSim, "model 0");
  rec.instant(Clock::kSim, track, "shed", Seconds(0.5));
  rec.counter(Clock::kSim, "in_system", Seconds(1.0), 3.0);
  const auto events = data_events(rec.to_json());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].get("ph").as_string(), "i");
  EXPECT_EQ(events[0].get("s").as_string(), "t");
  EXPECT_EQ(events[1].get("ph").as_string(), "C");
  EXPECT_EQ(events[1].get("name").as_string(), "in_system");
  EXPECT_DOUBLE_EQ(events[1].get("args").get("value").as_number(), 3.0);
}

TEST(TraceRecorderTest, NestableAsyncPairsCarryCategoryAndId) {
  TraceRecorder rec;
  const int track = rec.track(Clock::kSim, "model 0");
  rec.async_begin(Clock::kSim, track, "req", 5, "execute", Seconds(1.0));
  rec.async_end(Clock::kSim, track, "req", 5, "execute", Seconds(2.0));
  const auto events = data_events(rec.to_json());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].get("ph").as_string(), "b");
  EXPECT_EQ(events[1].get("ph").as_string(), "e");
  for (const JsonValue& event : events) {
    EXPECT_EQ(event.get("cat").as_string(), "req");
    EXPECT_EQ(event.get("id").as_integer(), 5);
  }
}

TEST(TraceRecorderTest, ExportSortsByTimestampWithinADomain) {
  TraceRecorder rec;
  const int track = rec.track(Clock::kSim, "acc 0");
  // Spans are emitted when they end: the later span lands in the buffer
  // first. Export must re-sort by start timestamp.
  rec.complete(Clock::kSim, track, "late", Seconds(2.0), Seconds(0.5));
  rec.complete(Clock::kSim, track, "early", Seconds(1.0), Seconds(0.5));
  // Equal timestamps keep emission (sequence) order.
  rec.instant(Clock::kSim, track, "first", Seconds(3.0));
  rec.instant(Clock::kSim, track, "second", Seconds(3.0));
  const auto events = data_events(rec.to_json());
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].get("name").as_string(), "early");
  EXPECT_EQ(events[1].get("name").as_string(), "late");
  EXPECT_EQ(events[2].get("name").as_string(), "first");
  EXPECT_EQ(events[3].get("name").as_string(), "second");
}

TEST(TraceRecorderTest, SimDomainSortsBeforeWallDomain) {
  TraceRecorder rec;
  rec.complete(Clock::kWall, rec.track(Clock::kWall, "plan"), "search",
               Seconds(0.0), Seconds(1.0));
  rec.complete(Clock::kSim, rec.track(Clock::kSim, "acc 0"), "task",
               Seconds(9.0), Seconds(1.0));
  const auto events = data_events(rec.to_json());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].get("pid").as_integer(), 1);
  EXPECT_EQ(events[1].get("pid").as_integer(), 2);
}

TEST(TraceRecorderTest, MetadataNamesProcessesAndTracks) {
  TraceRecorder rec;
  (void)rec.track(Clock::kSim, "acc 0");
  (void)rec.track(Clock::kWall, "pool worker 1");
  const JsonValue doc = rec.to_json();
  const JsonValue& events = doc.get("traceEvents");
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events.at(0).get("name").as_string(), "process_name");
  EXPECT_EQ(events.at(0).get("args").get("name").as_string(), "simulated");
  EXPECT_EQ(events.at(1).get("args").get("name").as_string(), "wall");
  EXPECT_EQ(events.at(2).get("name").as_string(), "thread_name");
  EXPECT_EQ(events.at(2).get("args").get("name").as_string(), "acc 0");
  EXPECT_EQ(events.at(3).get("args").get("name").as_string(), "pool worker 1");
}

TEST(TraceRecorderTest, WriteStreamsTheSameBytesAsToJson) {
  TraceRecorder rec;
  const int track = rec.track(Clock::kSim, "acc 0");
  rec.complete(Clock::kSim, track, "work", Seconds(0.25), Seconds(0.125),
               {{"k", JsonValue::string("v")}});
  rec.instant(Clock::kSim, track, "mark", Seconds(0.5));
  std::ostringstream stream;
  rec.write(stream);
  EXPECT_EQ(stream.str(), rec.to_json().dump() + "\n");
  // And the streamed document is valid JSON with the expected envelope.
  const JsonValue parsed = JsonValue::parse(stream.str());
  EXPECT_TRUE(parsed.get("traceEvents").is_array());
  EXPECT_EQ(parsed.get("displayTimeUnit").as_string(), "ms");
}

TEST(TraceRecorderTest, InstallReturnsPreviousAndUninstalls) {
  TraceRecorder* saved = install_trace(nullptr);
  TraceRecorder rec;
  EXPECT_EQ(install_trace(&rec), nullptr);
  EXPECT_EQ(trace(), &rec);
  EXPECT_EQ(install_trace(nullptr), &rec);
  EXPECT_EQ(trace(), nullptr);
  install_trace(saved);
}

TEST(TraceRecorderTest, ScopedWallSpanEmitsOneCompleteEvent) {
  TraceRecorder rec;
  TraceRecorder* saved = install_trace(&rec);
  { const ScopedWallSpan span("plan", "unit-span"); }
  install_trace(saved);
  const auto events = data_events(rec.to_json());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].get("name").as_string(), "unit-span");
  EXPECT_EQ(events[0].get("ph").as_string(), "X");
  EXPECT_EQ(events[0].get("pid").as_integer(), trace_pid(Clock::kWall));
  EXPECT_GE(events[0].get("dur").as_number(), 0.0);
}

TEST(TraceRecorderTest, WallNowIsMonotone) {
  TraceRecorder rec;
  const Seconds first = rec.wall_now();
  const Seconds second = rec.wall_now();
  EXPECT_GE(second.count(), first.count());
  EXPECT_GE(first.count(), 0.0);
}

TEST(TraceRecorderTest, ThreadedEmissionMergesEveryEvent) {
  TraceRecorder rec;
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      const int track =
          rec.track(Clock::kWall, "worker " + std::to_string(t));
      for (int i = 0; i < kEventsPerThread; ++i) {
        rec.complete(Clock::kWall, track, "chunk", Seconds(i * 1e-3),
                     Seconds(1e-4));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(rec.event_count(),
            static_cast<std::size_t>(kThreads) * kEventsPerThread);
  // The merged export is still valid, fully sorted JSON.
  const JsonValue parsed = JsonValue::parse(rec.to_json().dump());
  EXPECT_EQ(parsed.get("traceEvents").size(),
            2u + kThreads + static_cast<std::size_t>(kThreads) *
                                kEventsPerThread);
}

TEST(TraceNoopTest, DisabledPathAllocatesNothing) {
  TraceRecorder* saved = install_trace(nullptr);
  ASSERT_EQ(trace(), nullptr);
  const long long before = g_allocation_count.load(std::memory_order_relaxed);
  long long null_observations = 0;
  for (int i = 0; i < 1000; ++i) {
    if (trace() == nullptr) ++null_observations;
    const ScopedWallSpan span("plan", "noop");
  }
  const long long after = g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
  EXPECT_EQ(null_observations, 1000);
  install_trace(saved);
}

}  // namespace
}  // namespace mars::obs
