// The trace determinism contract, end to end: simulated-domain events are
// byte-identical per seed across repeat runs and across worker-pool sizes,
// tracing never perturbs results, and component counters flush into the
// installed registry.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/test_support.h"
#include "mars/obs/metrics.h"
#include "mars/obs/trace.h"
#include "mars/plan/engines.h"
#include "mars/serve/metrics.h"
#include "mars/serve/report.h"
#include "mars/serve/scheduler.h"
#include "mars/serve/workload.h"
#include "mars/topology/presets.h"

namespace mars::obs {
namespace {

core::MarsConfig tiny_tuning(int threads) {
  core::MarsConfig config;
  config.seed = 7;
  config.threads = threads;
  config.first_ga.population = 8;
  config.first_ga.generations = 4;
  config.first_ga.stall_generations = 3;
  config.second.ga.population = 6;
  config.second.ga.generations = 3;
  return config;
}

/// The simulated-domain (pid 1) slice of an exported trace, one event dump
/// per line — the byte stream the determinism contract covers.
std::string sim_slice(const TraceRecorder& rec) {
  const JsonValue doc = rec.to_json();
  const JsonValue& events = doc.get("traceEvents");
  std::string out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events.at(i).get("pid").as_integer() == trace_pid(Clock::kSim)) {
      out += events.at(i).dump();
      out += '\n';
    }
  }
  return out;
}

/// Two baseline-mapped services contending on the F1 system; cheap enough
/// to rebuild per run.
struct Fleet {
  Fleet()
      : topo(topology::f1_16xlarge()), designs(accel::table2_designs()) {
    const plan::BaselineEngine baseline;
    for (const char* name : {"alexnet", "resnet18"}) {
      services.push_back(std::make_unique<serve::ModelService>(
          name, topo, designs, /*adaptive=*/true, baseline));
      refs.push_back(services.back().get());
    }
  }
  [[nodiscard]] serve::ServeResult run() const {
    const serve::OnlineScheduler scheduler(topo, refs, {});
    return scheduler.run(
        serve::poisson_arrivals({1.0, 1.0}, 80.0, Seconds(1.0), 11));
  }

  topology::Topology topo;
  accel::DesignRegistry designs;
  std::vector<std::unique_ptr<serve::ModelService>> services;
  std::vector<const serve::ModelService*> refs;
};

/// One traced "CLI run": a threaded mapping search (wall-domain events from
/// the pool and the engines) followed by a serving simulation (sim-domain
/// events from the serial event loop), sharing one recorder — exactly the
/// `mars_map serve --trace` shape.
std::string traced_run(int threads) {
  const core::testing::AdaptiveFixture fx;
  TraceRecorder rec;
  TraceRecorder* saved = install_trace(&rec);
  (void)plan::make_engine("ga", tiny_tuning(threads))->search(fx.problem);
  const Fleet fleet;
  (void)fleet.run();
  install_trace(saved);
  return sim_slice(rec);
}

TEST(TraceDeterminismTest, SimSliceIsByteIdenticalAcrossRepeatsAndThreads) {
  const std::string one = traced_run(1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, traced_run(1));  // repeat run
  EXPECT_EQ(one, traced_run(4));  // pool size must not leak into pid 1
}

TEST(TraceDeterminismTest, TracingDoesNotPerturbSchedulerResults) {
  const Fleet fleet;
  const serve::ServeResult plain = fleet.run();

  TraceRecorder rec;
  TraceRecorder* saved = install_trace(&rec);
  const serve::ServeResult traced = fleet.run();
  install_trace(saved);

  ASSERT_EQ(traced.completed.size(), plain.completed.size());
  EXPECT_EQ(traced.batches_dispatched, plain.batches_dispatched);
  EXPECT_EQ(traced.tasks_executed, plain.tasks_executed);
  for (std::size_t i = 0; i < plain.completed.size(); ++i) {
    EXPECT_DOUBLE_EQ(traced.completed[i].completion.count(),
                     plain.completed[i].completion.count());
  }
  // The report the CLI prints on stdout is byte-identical too.
  const std::vector<std::string> names = {"alexnet", "resnet18"};
  EXPECT_EQ(serve::describe(serve::summarize(traced, names, Seconds(0.1))),
            serve::describe(serve::summarize(plain, names, Seconds(0.1))));
}

TEST(TraceDeterminismTest, SchedulerEmitsBalancedRequestLifecycles) {
  const Fleet fleet;
  TraceRecorder rec;
  TraceRecorder* saved = install_trace(&rec);
  const serve::ServeResult result = fleet.run();
  install_trace(saved);

  const JsonValue doc = rec.to_json();
  const JsonValue& events = doc.get("traceEvents");
  long long begins = 0;
  long long ends = 0;
  long long acc_spans = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::string ph = events.at(i).get("ph").as_string();
    if (ph == "b") ++begins;
    if (ph == "e") ++ends;
    if (ph == "X") ++acc_spans;
  }
  EXPECT_EQ(begins, ends);
  // Each completed request opens model + queue + execute phases.
  EXPECT_EQ(begins, 3 * static_cast<long long>(result.completed.size()));
  // Per-accelerator busy spans: one per executed compute task.
  EXPECT_GT(acc_spans, 0);
}

TEST(RegistryFlushTest, SearchCountersReachTheInstalledRegistry) {
  MetricsRegistry registry;
  MetricsRegistry* saved = install_metrics(&registry);
  {
    const core::testing::AdaptiveFixture fx;
    // An evaluation budget forces the engine to poll its meter.
    (void)plan::make_engine("ga", tiny_tuning(1))
        ->search(fx.problem, plan::Budget::evaluations(60));
  }  // engine destroyed: SkeletonSpace flushes its instance registry
  install_metrics(saved);
  EXPECT_GT(registry.counter_value("search.space.memo.hits") +
                registry.counter_value("search.space.memo.misses"),
            0);
  EXPECT_GT(registry.counter_value("plan.budget.polls"), 0);
}

TEST(RegistryFlushTest, ServeCountersMatchSchedulerResults) {
  MetricsRegistry registry;
  MetricsRegistry* saved = install_metrics(&registry);
  const Fleet fleet;
  const serve::ServeResult result = fleet.run();
  install_metrics(saved);
  EXPECT_EQ(registry.counter_value("serve.requests.completed"),
            static_cast<long long>(result.completed.size()));
  EXPECT_EQ(registry.counter_value("serve.batches.dispatched"),
            result.batches_dispatched);
  EXPECT_EQ(registry.counter_value("serve.tasks.executed"),
            result.tasks_executed);
  EXPECT_EQ(registry.histogram("serve.latency_seconds").count(),
            static_cast<long long>(result.completed.size()));
}

}  // namespace
}  // namespace mars::obs
