// MetricsRegistry semantics: stable references, exact concurrent counting,
// delta-once flushing, and deterministic JSON export.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "mars/obs/metrics.h"
#include "mars/util/json.h"

namespace mars::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAdds) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.25);
}

TEST(HistogramTest, ExactCountSumMinMax) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_DOUBLE_EQ(hist.min(), std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(hist.max(), -std::numeric_limits<double>::infinity());
  for (const double value : {0.5, 3.0, 0.125}) hist.observe(value);
  EXPECT_EQ(hist.count(), 3);
  EXPECT_DOUBLE_EQ(hist.sum(), 3.625);
  EXPECT_DOUBLE_EQ(hist.min(), 0.125);
  EXPECT_DOUBLE_EQ(hist.max(), 3.0);
}

TEST(HistogramTest, PowerOfTwoBucketsCoverEveryObservation) {
  Histogram hist;
  const std::vector<double> values = {0.75, 3.0, 3.9, 1000.0};
  for (const double value : values) hist.observe(value);
  const auto buckets = hist.buckets();
  long long total = 0;
  double previous_bound = -1.0;
  for (const auto& [bound, count] : buckets) {
    EXPECT_GT(bound, previous_bound);  // increasing bound order
    previous_bound = bound;
    total += count;
  }
  EXPECT_EQ(total, hist.count());
  // 0.75 <= 2^0 and 3.0, 3.9 share the 2^2 bucket.
  EXPECT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].first, 1.0);
  EXPECT_EQ(buckets[0].second, 1);
  EXPECT_DOUBLE_EQ(buckets[1].first, 4.0);
  EXPECT_EQ(buckets[1].second, 2);
}

TEST(HistogramTest, NonPositiveValuesLandInTheUnderflowBucket) {
  Histogram hist;
  hist.observe(0.0);
  hist.observe(-2.5);
  const auto buckets = hist.buckets();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(buckets[0].first, 0.0);
  EXPECT_EQ(buckets[0].second, 2);
  EXPECT_DOUBLE_EQ(hist.min(), -2.5);
}

TEST(MetricsRegistryTest, ReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("a.counter");
  Gauge& gauge = registry.gauge("a.gauge");
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(&registry.counter("a.counter"), &counter);
  EXPECT_EQ(&registry.gauge("a.gauge"), &gauge);
}

TEST(MetricsRegistryTest, CounterValuesSortedByName) {
  MetricsRegistry registry;
  registry.counter("zebra").add(1);
  registry.counter("alpha").add(2);
  registry.counter("mid").add(3);
  const auto values = registry.counter_values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].first, "alpha");
  EXPECT_EQ(values[1].first, "mid");
  EXPECT_EQ(values[2].first, "zebra");
  EXPECT_EQ(values[0].second, 2);
}

TEST(MetricsRegistryTest, CounterValueOfAbsentNameIsZeroAndDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter_value("never.registered"), 0);
  EXPECT_TRUE(registry.counter_values().empty());
}

TEST(MetricsRegistryTest, FlushToAddsDeltasExactlyOnce) {
  MetricsRegistry source;
  MetricsRegistry target;
  source.counter("c").add(5);
  source.gauge("g").set(2.0);
  source.histogram("h").observe(1.5);

  source.flush_to(target);
  EXPECT_EQ(target.counter_value("c"), 5);
  EXPECT_DOUBLE_EQ(target.gauge("g").value(), 2.0);
  EXPECT_EQ(target.histogram("h").count(), 1);

  // A second flush with no new activity adds nothing.
  source.flush_to(target);
  EXPECT_EQ(target.counter_value("c"), 5);
  EXPECT_EQ(target.histogram("h").count(), 1);

  // New activity flushes only the delta.
  source.counter("c").add(2);
  source.histogram("h").observe(0.5);
  source.flush_to(target);
  EXPECT_EQ(target.counter_value("c"), 7);
  EXPECT_EQ(target.histogram("h").count(), 2);
  EXPECT_DOUBLE_EQ(target.histogram("h").sum(), 2.0);
  EXPECT_DOUBLE_EQ(target.histogram("h").min(), 0.5);
}

TEST(MetricsRegistryTest, ToJsonExportRoundTrips) {
  MetricsRegistry registry;
  registry.counter("serve.cache.hits").add(3);
  registry.gauge("pool.depth").set(4.0);
  registry.histogram("serve.latency_seconds").observe(0.75);

  const JsonValue parsed = JsonValue::parse(registry.to_json().dump());
  EXPECT_EQ(parsed.get("counters").get("serve.cache.hits").as_integer(), 3);
  EXPECT_DOUBLE_EQ(parsed.get("gauges").get("pool.depth").as_number(), 4.0);
  const JsonValue& hist =
      parsed.get("histograms").get("serve.latency_seconds");
  EXPECT_EQ(hist.get("count").as_integer(), 1);
  EXPECT_DOUBLE_EQ(hist.get("sum").as_number(), 0.75);
}

TEST(MetricsRegistryTest, InstallReturnsPreviousAndUninstalls) {
  MetricsRegistry* saved = install_metrics(nullptr);
  MetricsRegistry registry;
  EXPECT_EQ(install_metrics(&registry), nullptr);
  EXPECT_EQ(metrics(), &registry);
  EXPECT_EQ(install_metrics(nullptr), &registry);
  EXPECT_EQ(metrics(), nullptr);
  install_metrics(saved);
}

TEST(MetricsRegistryTest, ConcurrentAddsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolving by name concurrently must also be safe, not just add().
      Counter& counter = registry.counter("shared");
      for (int i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.counter_value("shared"),
            static_cast<long long>(kThreads) * kAddsPerThread);
}

}  // namespace
}  // namespace mars::obs
