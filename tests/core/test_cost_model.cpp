#include "mars/core/cost_model.h"

#include <gtest/gtest.h>

#include "test_support.h"
#include "mars/util/error.h"

namespace mars::core {
namespace {

using testing::AdaptiveFixture;
using testing::FixedFixture;
using testing::two_set_mapping;

class CostModelTest : public ::testing::Test {
 protected:
  AdaptiveFixture fx_;
  AnalyticalCostModel model_{fx_.problem};
};

TEST_F(CostModelTest, ProblemValidation) {
  Problem bad = fx_.problem;
  bad.spine = nullptr;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  Problem fixed = fx_.problem;
  fixed.adaptive = false;  // F1 preset has no fixed designs
  EXPECT_THROW(fixed.validate(), InvalidArgument);
}

TEST_F(CostModelTest, LayerCostPositiveAndDecomposed) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const LayerAssignment& set = mapping.sets.front();
  const LayerCost cost =
      model_.layer_cost(set, 0, set.strategies.front(), std::nullopt);
  EXPECT_GT(cost.compute.count(), 0.0);
  EXPECT_GT(cost.intra_set.count(), 0.0);  // entry scatter at least
  EXPECT_DOUBLE_EQ(cost.total().count(),
                   cost.compute.count() + cost.intra_set.count());
}

TEST_F(CostModelTest, ComputeMatchesDesignModelTimesPhases) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const LayerAssignment& set = mapping.sets.front();
  const parallel::Strategy ss_strategy({{parallel::Dim::kH, 4}},
                                       parallel::Dim::kCout);
  const LayerCost cost = model_.layer_cost(set, 0, ss_strategy, std::nullopt);
  const parallel::ShardingPlan plan = parallel::make_plan(
      fx_.spine.node(0).shape, fx_.spine.dtype(), ss_strategy, 4);
  const Seconds per_phase = fx_.designs.design(set.design)
                                .conv_latency(plan.local, fx_.spine.dtype());
  EXPECT_GE(cost.compute.count(), per_phase.count() * plan.phases);
}

TEST_F(CostModelTest, AllReduceChargedForReductionES) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const LayerAssignment& set = mapping.sets.front();
  const parallel::ActivationSharding upstream{1, 1, 1};  // aligned: no reshard

  const parallel::Strategy no_red({{parallel::Dim::kCout, 4}}, std::nullopt);
  const parallel::Strategy with_red({{parallel::Dim::kCin, 4}}, std::nullopt);
  // Layer 1 (conv2) has Cin = 64.
  const LayerCost a = model_.layer_cost(set, 1, no_red, upstream);
  const LayerCost b = model_.layer_cost(set, 1, with_red, upstream);
  EXPECT_GT(b.intra_set.count(), a.intra_set.count());
}

TEST_F(CostModelTest, SsPhasesPayRingHops) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const LayerAssignment& set = mapping.sets.front();
  const parallel::ActivationSharding upstream{1, 4, 1};

  const parallel::Strategy plain({{parallel::Dim::kH, 4}}, std::nullopt);
  const parallel::Strategy shared({{parallel::Dim::kH, 4}}, parallel::Dim::kCout);
  const LayerCost a = model_.layer_cost(set, 1, plain, upstream);
  const LayerCost b = model_.layer_cost(set, 1, shared, upstream);
  EXPECT_GT(b.intra_set.count(), a.intra_set.count());
}

TEST_F(CostModelTest, SetCostAggregatesLayers) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const SetCost cost = model_.set_cost(mapping.sets.front());
  EXPECT_GT(cost.latency.compute.count(), 0.0);
  EXPECT_TRUE(cost.memory_ok);
  EXPECT_DOUBLE_EQ(cost.penalized.count(), cost.latency.total().count());
  EXPECT_GT(cost.footprint.weights.count(), 0.0);
}

TEST_F(CostModelTest, MemoryViolationPenalised) {
  // Shrink DRAM to force a violation.
  topology::Topology tiny("tiny");
  for (int i = 0; i < 2; ++i) {
    tiny.add_accelerator("a" + std::to_string(i), mebibytes(8.0), gbps(2.0));
  }
  tiny.connect(0, 1, gbps(8.0));
  Problem problem = fx_.problem;
  problem.topo = &tiny;
  const AnalyticalCostModel model(problem);

  LayerAssignment set;
  set.accs = 0b11;
  set.design = 0;
  set.begin = 0;
  set.end = fx_.spine.size();
  for (int l = 0; l < fx_.spine.size(); ++l) {
    set.strategies.emplace_back(
        std::vector<parallel::DimSplit>{{parallel::Dim::kCout, 2}}, std::nullopt);
  }
  const SetCost cost = model.set_cost(set);
  EXPECT_FALSE(cost.memory_ok);  // AlexNet/2 ~ 61 MB >> 8 MiB
  EXPECT_GT(cost.penalized.count(), cost.latency.total().count());
  EXPECT_TRUE(cost.penalized.finite());
}

TEST_F(CostModelTest, InterSetTimeUsesBestRoute) {
  // Within a group: direct 8 Gb/s. Across groups: two 2 Gb/s host legs.
  const Bytes payload(1e6);
  const Seconds direct = model_.inter_set_time(0b0011, 0b1100, payload);
  const Seconds via_host = model_.inter_set_time(0b00001111, 0b11110000, payload);
  EXPECT_LT(direct.count(), via_host.count());
  EXPECT_NEAR(direct.count(), 1e6 / 1e9, 1e-4);
  EXPECT_GT(via_host.count(), 2.0 * 1e6 / 0.25e9);
  EXPECT_DOUBLE_EQ(model_.inter_set_time(1, 2, Bytes(0.0)).count(), 0.0);
}

TEST_F(CostModelTest, EvaluateFullMapping) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const EvaluationSummary summary = model_.evaluate(mapping);
  EXPECT_GT(summary.analytic.compute.count(), 0.0);
  EXPECT_GT(summary.analytic.inter_set.count(), 0.0);
  EXPECT_GT(summary.analytic.host_io.count(), 0.0);
  EXPECT_TRUE(summary.memory_ok);
  EXPECT_GT(summary.worst_set_footprint.count(), 0.0);
  // AlexNet on 8 accelerators lands in the sub-100ms regime.
  EXPECT_LT(summary.analytic.total().count(), 0.1);
  EXPECT_GT(summary.analytic.total().count(), 1e-5);
}

TEST_F(CostModelTest, MoreAcceleratorsReduceComputeTime) {
  // Same layers on 2 vs 4 accelerators (same design, Cout split).
  LayerAssignment two;
  two.accs = 0b0011;
  two.design = 0;
  two.begin = 0;
  two.end = 5;
  LayerAssignment four;
  four.accs = 0b1111;
  four.design = 0;
  four.begin = 0;
  four.end = 5;
  for (int l = 0; l < 5; ++l) {
    two.strategies.emplace_back(
        std::vector<parallel::DimSplit>{{parallel::Dim::kCout, 2}}, std::nullopt);
    four.strategies.emplace_back(
        std::vector<parallel::DimSplit>{{parallel::Dim::kCout, 4}}, std::nullopt);
  }
  EXPECT_LT(model_.set_cost(four).latency.compute.count(),
            model_.set_cost(two).latency.compute.count());
}

TEST_F(CostModelTest, LayerEnergyClosedForm) {
  // Adaptive mode: the set's configured design pays for every MAC plus
  // its own DRAM traffic (recovered from the roofline term) and the
  // layer's fused bytes, at the documented per-byte price. Strategy-
  // independent by design — parallelising moves work, not work done.
  const Mapping mapping = two_set_mapping(fx_.problem);
  const LayerAssignment& set = mapping.sets.front();
  const accel::AcceleratorDesign& design = fx_.designs.design(set.design);
  const graph::ConvShape& shape = fx_.spine.node(0).shape;
  const double traffic =
      design.conv_cycles(shape, fx_.spine.dtype()).dram *
          design.dram_bytes_per_cycle() +
      fx_.spine.node(0).fused_traffic.count();
  const double expected = design.energy_per_mac().count() * shape.macs() +
                          kDramPicojoulesPerByte * 1e-12 * traffic;
  EXPECT_DOUBLE_EQ(model_.layer_energy(set, 0).count(), expected);
  EXPECT_GT(expected, 0.0);
}

TEST_F(CostModelTest, MappingEnergySumsLayersPlusLinkTraffic) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  Joules layers{};
  for (const LayerAssignment& set : mapping.sets) {
    for (int layer = set.begin; layer < set.end; ++layer) {
      layers += model_.layer_energy(set, layer);
    }
  }
  const Joules total = model_.mapping_energy(mapping);
  // Link energy: the set-boundary crossing plus model input/output, all
  // at the link price — strictly positive here (two sets in sequence).
  const double min_link =
      kLinkPicojoulesPerByte * 1e-12 *
      (fx_.spine.input_bytes().count() + fx_.spine.output_bytes().count());
  EXPECT_GT(total.count(), layers.count() + min_link - 1e-18);
  // And the evaluator surfaces the same number on the summary.
  EXPECT_DOUBLE_EQ(model_.evaluate(mapping).energy.count(), total.count());
}

TEST_F(CostModelTest, EnergyIsStrategyIndependent) {
  // Re-splitting a layer shifts latency but not the energy charged: the
  // MACs and traffic are the same work on the same design.
  Mapping narrow = two_set_mapping(fx_.problem);
  Mapping wide = two_set_mapping(fx_.problem);
  narrow.sets.front().strategies.front() = parallel::Strategy(
      {{parallel::Dim::kCout, 2}}, std::nullopt);
  wide.sets.front().strategies.front() = parallel::Strategy(
      {{parallel::Dim::kH, 4}}, parallel::Dim::kCout);
  EXPECT_DOUBLE_EQ(model_.mapping_energy(narrow).count(),
                   model_.mapping_energy(wide).count());
}

TEST(CostModelFixed, EnergyAveragesTheMembersDesigns) {
  // Fixed mode: each member design pays a 1/p share. A mixed-design set's
  // per-layer energy is therefore the mean of the members' solo prices.
  FixedFixture fx;
  const AnalyticalCostModel model(fx.problem);
  LayerAssignment mixed;
  mixed.accs = 0b0110;  // one design-0 member, one design-1 member
  mixed.begin = 0;
  mixed.end = 1;
  LayerAssignment only0 = mixed;
  only0.accs = 0b0010;
  LayerAssignment only1 = mixed;
  only1.accs = 0b0100;
  EXPECT_DOUBLE_EQ(
      model.layer_energy(mixed, 0).count(),
      0.5 * (model.layer_energy(only0, 0).count() +
             model.layer_energy(only1, 0).count()));
}

TEST(CostModelFixed, SlowestMemberDominates) {
  FixedFixture fx;
  const AnalyticalCostModel model(fx.problem);

  // A set of two accelerators with different fixed designs: the phase time
  // equals the max of the individual designs. Block assignment puts
  // design 0 on accs {0,1} and design 1 on {2,3}, so {1,2} mixes them.
  LayerAssignment set;
  set.accs = 0b0110;  // designs 0 and 1
  set.begin = 0;
  set.end = 1;
  const graph::ConvShape local = fx.spine.node(0).shape;
  const Seconds t0 =
      fx.designs.design(0).conv_latency(local, fx.spine.dtype());
  const Seconds t1 =
      fx.designs.design(1).conv_latency(local, fx.spine.dtype());
  EXPECT_DOUBLE_EQ(model.phase_compute_time(set, local).count(),
                   std::max(t0, t1).count());
}

}  // namespace
}  // namespace mars::core
