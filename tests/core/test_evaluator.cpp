#include "mars/core/evaluator.h"

#include <gtest/gtest.h>

#include "test_support.h"
#include "mars/sim/trace.h"

namespace mars::core {
namespace {

using testing::AdaptiveFixture;
using testing::two_set_mapping;

class EvaluatorTest : public ::testing::Test {
 protected:
  AdaptiveFixture fx_;
  MappingEvaluator evaluator_{fx_.problem};
};

TEST_F(EvaluatorTest, TaskGraphStructure) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const sim::TaskGraph tg = evaluator_.build_task_graph(mapping);
  EXPECT_GT(tg.size(), fx_.spine.size());  // at least one task per layer

  int host_in = 0;
  int host_out = 0;
  int cross_set = 0;
  int computes = 0;
  for (const sim::Task& task : tg.tasks()) {
    if (task.label.find("host_in") != std::string::npos) ++host_in;
    if (task.label == "host_output") ++host_out;
    if (task.label.find("cross_set") != std::string::npos) ++cross_set;
    if (task.kind == sim::TaskKind::kCompute) ++computes;
  }
  EXPECT_EQ(host_in, 1);  // AlexNet has a single network input
  EXPECT_EQ(host_out, 1);
  EXPECT_EQ(cross_set, 1);  // chain model, two sets -> one crossing edge
  // Every layer runs on all 4 members of its set.
  EXPECT_GE(computes, fx_.spine.size() * 4);
}

TEST_F(EvaluatorTest, SimulationCompletesAndAgreesRoughly) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const EvaluationSummary summary = evaluator_.evaluate(mapping);
  EXPECT_GT(summary.simulated.count(), 0.0);
  // The two cost paths share structure; they must agree within 2x.
  const double ratio =
      summary.simulated.count() / summary.analytic_makespan.count();
  EXPECT_GT(ratio, 0.5) << "simulated " << summary.simulated.millis() << " ms vs "
                        << summary.analytic_makespan.millis() << " ms";
  EXPECT_LT(ratio, 2.0);
}

TEST_F(EvaluatorTest, SimulatedLatencyImprovesWithParallelism) {
  // 1-set-of-8... not expressible; compare 2x4 vs putting everything on a
  // single pair: more accelerators per set must be faster for AlexNet.
  Mapping narrow;
  LayerAssignment only;
  only.accs = 0b0011;
  only.design = 0;
  only.begin = 0;
  only.end = fx_.spine.size();
  for (int l = 0; l < fx_.spine.size(); ++l) {
    only.strategies.emplace_back(
        std::vector<parallel::DimSplit>{{parallel::Dim::kCout, 2}}, std::nullopt);
  }
  narrow.sets = {only};

  const Seconds wide = evaluator_.evaluate(two_set_mapping(fx_.problem)).simulated;
  const Seconds small = evaluator_.evaluate(narrow).simulated;
  EXPECT_LT(wide.count(), small.count());
}

TEST_F(EvaluatorTest, SsStrategyProducesRingTasks) {
  Mapping mapping = two_set_mapping(fx_.problem);
  mapping.sets[0].strategies[1] =
      parallel::Strategy({{parallel::Dim::kH, 4}}, parallel::Dim::kCout);
  const sim::TaskGraph tg = evaluator_.build_task_graph(mapping);
  int ring_tasks = 0;
  for (const sim::Task& task : tg.tasks()) {
    if (task.label.find("ss_ring") != std::string::npos) ++ring_tasks;
  }
  // 4 phases -> 3 ring shifts x 4 members.
  EXPECT_EQ(ring_tasks, 12);
}

TEST_F(EvaluatorTest, ReductionEsProducesAllReduceTasks) {
  Mapping mapping = two_set_mapping(fx_.problem);
  mapping.sets[0].strategies[1] =
      parallel::Strategy({{parallel::Dim::kCin, 2}, {parallel::Dim::kH, 2}},
                         std::nullopt);
  const sim::TaskGraph tg = evaluator_.build_task_graph(mapping);
  int allreduce_tasks = 0;
  for (const sim::Task& task : tg.tasks()) {
    if (task.label.find("allreduce") != std::string::npos) ++allreduce_tasks;
  }
  // Two subgroups of 2: 2 * (2*(2-1) steps * 2 members) = 8 transfers.
  EXPECT_EQ(allreduce_tasks, 8);
}

TEST_F(EvaluatorTest, TraceExportsFromMapping) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const MappingEvaluator::SimOutput output = evaluator_.simulate(mapping);
  const std::string json = sim::to_chrome_trace(output.graph, output.result);
  EXPECT_NE(json.find("host_in"), std::string::npos);
  EXPECT_NE(json.find("conv1/ph0"), std::string::npos);
}

TEST_F(EvaluatorTest, DeterministicSimulation) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const Seconds a = evaluator_.evaluate(mapping).simulated;
  const Seconds b = evaluator_.evaluate(mapping).simulated;
  EXPECT_DOUBLE_EQ(a.count(), b.count());
}

}  // namespace
}  // namespace mars::core
