#include "mars/core/mapping.h"

#include <gtest/gtest.h>

#include "test_support.h"
#include "mars/util/error.h"

namespace mars::core {
namespace {

using testing::AdaptiveFixture;
using testing::two_set_mapping;

class MappingTest : public ::testing::Test {
 protected:
  AdaptiveFixture fx_;
};

TEST_F(MappingTest, ValidMappingPasses) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  EXPECT_NO_THROW(
      mapping.validate(fx_.spine, fx_.topo, fx_.designs, /*adaptive=*/true));
}

TEST_F(MappingTest, RejectsEmptyMapping) {
  Mapping mapping;
  EXPECT_THROW(mapping.validate(fx_.spine, fx_.topo, fx_.designs, true),
               InvalidArgument);
}

TEST_F(MappingTest, RejectsNonContiguousRanges) {
  Mapping mapping = two_set_mapping(fx_.problem);
  mapping.sets[1].begin += 1;
  mapping.sets[1].strategies.pop_back();
  EXPECT_THROW(mapping.validate(fx_.spine, fx_.topo, fx_.designs, true),
               InvalidArgument);
}

TEST_F(MappingTest, RejectsIncompleteCoverage) {
  Mapping mapping = two_set_mapping(fx_.problem);
  mapping.sets[1].end -= 1;
  mapping.sets[1].strategies.pop_back();
  EXPECT_THROW(mapping.validate(fx_.spine, fx_.topo, fx_.designs, true),
               InvalidArgument);
}

TEST_F(MappingTest, RejectsOverlappingAccSets) {
  Mapping mapping = two_set_mapping(fx_.problem);
  mapping.sets[1].accs = 0b00011110;  // overlaps acc 1..3
  EXPECT_THROW(mapping.validate(fx_.spine, fx_.topo, fx_.designs, true),
               InvalidArgument);
}

TEST_F(MappingTest, RejectsDisconnectedAccSet) {
  Mapping mapping = two_set_mapping(fx_.problem);
  mapping.sets[0].accs = 0b00000011;
  mapping.sets[1].accs = 0b00110000 | 0b00001100;  // {2,3,4,5}: spans groups
  EXPECT_THROW(mapping.validate(fx_.spine, fx_.topo, fx_.designs, true),
               InvalidArgument);
}

TEST_F(MappingTest, RejectsBadDesign) {
  Mapping mapping = two_set_mapping(fx_.problem);
  mapping.sets[0].design = 99;
  EXPECT_THROW(mapping.validate(fx_.spine, fx_.topo, fx_.designs, true),
               InvalidArgument);
}

TEST_F(MappingTest, RejectsStrategyArityMismatch) {
  Mapping mapping = two_set_mapping(fx_.problem);
  mapping.sets[0].strategies.pop_back();
  EXPECT_THROW(mapping.validate(fx_.spine, fx_.topo, fx_.designs, true),
               InvalidArgument);
}

TEST_F(MappingTest, RejectsIllFittingStrategy) {
  Mapping mapping = two_set_mapping(fx_.problem);
  // 8-way W split on the FC layers (W = 1) cannot fit.
  mapping.sets[1].strategies.back() = parallel::Strategy(
      {{parallel::Dim::kW, 4}}, std::nullopt);
  EXPECT_THROW(mapping.validate(fx_.spine, fx_.topo, fx_.designs, true),
               InvalidArgument);
}

TEST_F(MappingTest, FixedModeChecksFixedDesigns) {
  Mapping mapping = two_set_mapping(fx_.problem);
  for (LayerAssignment& set : mapping.sets) set.design = accel::kInvalidDesign;
  // The adaptive F1 preset has no fixed designs: fixed-mode validation
  // must fail.
  EXPECT_THROW(mapping.validate(fx_.spine, fx_.topo, fx_.designs, false),
               InvalidArgument);
}

TEST_F(MappingTest, DescribeMentionsDesignsAndStrategies) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const std::string text = describe(mapping, fx_.spine, fx_.designs, true);
  EXPECT_NE(text.find("SuperLIP"), std::string::npos);
  EXPECT_NE(text.find("4x"), std::string::npos);
  EXPECT_NE(text.find("ES={Cout:4}"), std::string::npos);
  EXPECT_NE(text.find("conv1"), std::string::npos);
}

TEST_F(MappingTest, LatencyBreakdownSums) {
  LatencyBreakdown b;
  b.compute = Seconds(1.0);
  b.intra_set = Seconds(0.5);
  b.inter_set = Seconds(0.25);
  b.host_io = Seconds(0.125);
  EXPECT_DOUBLE_EQ(b.total().count(), 1.875);
}

}  // namespace
}  // namespace mars::core
