// The second level's memory-repair pass: when the latency-greedy strategy
// choice overflows a set's DRAM, the heaviest layers are re-sharded with
// residency-minimising strategies (where SS earns its keep).
#include <gtest/gtest.h>

#include "test_support.h"
#include "mars/core/second_level.h"

namespace mars::core {
namespace {

struct TightFixture {
  graph::Graph model = graph::models::vgg16();
  graph::ConvSpine spine = graph::ConvSpine::extract(model);
  topology::Topology topo;
  accel::DesignRegistry designs = accel::table2_designs();
  Problem problem;

  explicit TightFixture(double dram_mib)
      : topo(topology::f1_16xlarge(gbps(8.0), gbps(2.0), mebibytes(dram_mib))) {
    problem.spine = &spine;
    problem.topo = &topo;
    problem.designs = &designs;
    problem.adaptive = true;
  }

  LayerAssignment whole_network_on_group() const {
    LayerAssignment set;
    set.accs = 0b1111;
    set.design = 1;  // systolic
    set.begin = 0;
    set.end = spine.size();
    return set;
  }
};

TEST(MemoryRepair, AmpleDramNeedsNoRepair) {
  TightFixture fx(1024.0);
  const SecondLevelSearch search(fx.problem, SecondLevelConfig{});
  const SecondLevelResult result = search.greedy(fx.whole_network_on_group());
  EXPECT_TRUE(result.cost.memory_ok);
}

TEST(MemoryRepair, TightDramTriggersRepairToFeasibility) {
  // VGG16 on 4 accelerators: FC weights alone are ~59 MiB per card with
  // plain 4-way ES; only rotating shared shards reach 1/8 residency.
  TightFixture fx(48.0);
  const SecondLevelSearch search(fx.problem, SecondLevelConfig{});
  const SecondLevelResult result = search.greedy(fx.whole_network_on_group());
  EXPECT_TRUE(result.cost.memory_ok)
      << "footprint " << result.cost.footprint.total().mib() << " MiB";
  // The repair must have introduced SS somewhere (the only way down).
  bool any_ss = false;
  for (const parallel::Strategy& s : result.strategies) {
    any_ss = any_ss || s.has_ss();
  }
  EXPECT_TRUE(any_ss);
}

TEST(MemoryRepair, EsOnlyCannotAlwaysBeRepaired) {
  TightFixture fx(48.0);
  SecondLevelConfig config;
  config.enable_ss = false;
  const SecondLevelSearch search(fx.problem, config);
  const SecondLevelResult result = search.greedy(fx.whole_network_on_group());
  // Without SS the FC residency floor is weight/4 > 48 MiB: infeasible,
  // but the repair must still return the best effort with a finite
  // penalty.
  EXPECT_FALSE(result.cost.memory_ok);
  EXPECT_TRUE(result.cost.penalized.finite());
  EXPECT_GT(result.cost.penalized.count(), result.cost.latency.total().count());
}

TEST(MemoryRepair, RepairedStrategiesStillFit) {
  TightFixture fx(48.0);
  const SecondLevelSearch search(fx.problem, SecondLevelConfig{});
  const LayerAssignment skeleton = fx.whole_network_on_group();
  const SecondLevelResult result = search.greedy(skeleton);
  ASSERT_EQ(static_cast<int>(result.strategies.size()), fx.spine.size());
  for (int l = 0; l < fx.spine.size(); ++l) {
    EXPECT_TRUE(result.strategies[static_cast<std::size_t>(l)].fits(
        fx.spine.node(l).shape, 4));
  }
}

TEST(MemoryRepair, DeterministicUnderRepair) {
  TightFixture fx(48.0);
  const SecondLevelSearch search(fx.problem, SecondLevelConfig{});
  const SecondLevelResult a = search.greedy(fx.whole_network_on_group());
  const SecondLevelResult b = search.greedy(fx.whole_network_on_group());
  EXPECT_EQ(a.strategies, b.strategies);
}

}  // namespace
}  // namespace mars::core
