#include "mars/core/baseline.h"

#include <gtest/gtest.h>

#include "test_support.h"
#include "mars/core/evaluator.h"

namespace mars::core {
namespace {

using testing::AdaptiveFixture;

class BaselineTest : public ::testing::Test {
 protected:
  AdaptiveFixture fx_;
  accel::ProfileMatrix profile_{fx_.designs, fx_.spine};
};

TEST_F(BaselineTest, TwoGroupsHalfTheLayersEach) {
  const Skeleton skeleton = baseline_skeleton(fx_.problem, profile_);
  ASSERT_EQ(skeleton.sets.size(), 2u);
  EXPECT_EQ(skeleton.sets[0].accs, 0b00001111u);
  EXPECT_EQ(skeleton.sets[1].accs, 0b11110000u);
  // 8 spine layers: 4 + 4.
  EXPECT_EQ(skeleton.sets[0].num_layers(), 4);
  EXPECT_EQ(skeleton.sets[1].num_layers(), 4);
}

TEST_F(BaselineTest, DesignMinimisesProfiledCycles) {
  const Skeleton skeleton = baseline_skeleton(fx_.problem, profile_);
  for (const LayerAssignment& set : skeleton.sets) {
    double chosen = 0.0;
    for (int l = set.begin; l < set.end; ++l) {
      chosen += profile_.at(set.design, l).cycles;
    }
    for (accel::DesignId d = 0; d < fx_.designs.size(); ++d) {
      double other = 0.0;
      for (int l = set.begin; l < set.end; ++l) {
        other += profile_.at(d, l).cycles;
      }
      EXPECT_LE(chosen, other + 1e-9);
    }
  }
}

TEST_F(BaselineTest, StrategySplitsTwoLongestDims) {
  // VGG conv1: 64x3x224x224 k3 -> longest dims are H and W; p = 4 -> 2x2.
  const graph::ConvShape shape{64, 3, 224, 224, 3, 3, 1, 1};
  const parallel::Strategy s = baseline_strategy(shape, 4);
  EXPECT_EQ(s.ways_of(parallel::Dim::kH), 2);
  EXPECT_EQ(s.ways_of(parallel::Dim::kW), 2);
  EXPECT_FALSE(s.has_ss());
}

TEST_F(BaselineTest, StrategyDeepLayerPicksChannels) {
  // 2048x512x7x7 k1: longest dims are Cout then Cin.
  const graph::ConvShape shape{2048, 512, 7, 7, 1, 1, 1, 1};
  const parallel::Strategy s = baseline_strategy(shape, 4);
  EXPECT_EQ(s.ways_of(parallel::Dim::kCout), 2);
  EXPECT_EQ(s.ways_of(parallel::Dim::kCin), 2);
}

TEST_F(BaselineTest, StrategyEightAccelerators) {
  const graph::ConvShape shape{512, 512, 28, 28, 3, 3, 1, 1};
  const parallel::Strategy s = baseline_strategy(shape, 8);
  EXPECT_EQ(s.es_ways(), 8);
  EXPECT_EQ(s.es().size(), 2u);  // 4x2 on the two longest dims
}

TEST_F(BaselineTest, StrategySingleAccelerator) {
  const graph::ConvShape shape{64, 3, 8, 8, 3, 3, 1, 1};
  EXPECT_EQ(baseline_strategy(shape, 1).es_ways(), 1);
}

TEST_F(BaselineTest, StrategyFallsBackWhenDimsTooSmall) {
  // FC layer: only Cout/Cin are splittable; 2-way balanced fails on
  // spatial dims and must fall back cleanly.
  const graph::ConvShape fc{1000, 4096, 1, 1, 1, 1, 1, 1};
  const parallel::Strategy s = baseline_strategy(fc, 4);
  EXPECT_TRUE(s.fits(fc, 4));
}

TEST_F(BaselineTest, FullMappingIsValidAndEvaluable) {
  const Mapping mapping = baseline_mapping(fx_.problem, profile_);
  EXPECT_NO_THROW(mapping.validate(fx_.spine, fx_.topo, fx_.designs, true));
  const MappingEvaluator evaluator(fx_.problem);
  const EvaluationSummary summary = evaluator.evaluate(mapping);
  EXPECT_GT(summary.simulated.count(), 0.0);
  EXPECT_TRUE(summary.memory_ok);
}

TEST_F(BaselineTest, SingleComponentTopologyIsBisected) {
  topology::Topology clique = topology::fully_connected(8, gbps(8.0), gbps(2.0));
  Problem problem = fx_.problem;
  problem.topo = &clique;
  const Skeleton skeleton = baseline_skeleton(problem, profile_);
  ASSERT_EQ(skeleton.sets.size(), 2u);
  EXPECT_EQ(topology::mask_count(skeleton.sets[0].accs), 4);
  EXPECT_EQ(topology::mask_count(skeleton.sets[1].accs), 4);
}

TEST_F(BaselineTest, VggBaselineOrdersOfMagnitude) {
  // Sanity: VGG16 baseline latency on the F1 platform lands in the
  // tens-of-ms band (the paper reports 20.6 ms with its constants).
  AdaptiveFixture vgg("vgg16");
  const accel::ProfileMatrix profile(vgg.designs, vgg.spine);
  const Mapping mapping = baseline_mapping(vgg.problem, profile);
  const MappingEvaluator evaluator(vgg.problem);
  const Seconds latency = evaluator.evaluate(mapping).simulated;
  EXPECT_GT(latency.millis(), 5.0);
  EXPECT_LT(latency.millis(), 500.0);
}

}  // namespace
}  // namespace mars::core
