#include "mars/core/mars.h"

#include <gtest/gtest.h>

#include "test_support.h"
#include "mars/core/baseline.h"

namespace mars::core {
namespace {

using testing::AdaptiveFixture;

MarsConfig fast_config() {
  MarsConfig config;
  config.first_ga.population = 12;
  config.first_ga.generations = 8;
  config.first_ga.stall_generations = 4;
  config.second.ga.population = 8;
  config.second.ga.generations = 6;
  config.seed = 7;
  return config;
}

class MarsTest : public ::testing::Test {
 protected:
  AdaptiveFixture fx_;
};

TEST_F(MarsTest, SearchProducesValidMapping) {
  Mars mars(fx_.problem, fast_config());
  const MarsResult result = mars.search();
  EXPECT_NO_THROW(result.mapping.validate(fx_.spine, fx_.topo, fx_.designs, true));
  EXPECT_GT(result.summary.simulated.count(), 0.0);
  EXPECT_TRUE(result.summary.memory_ok);
  EXPECT_GT(result.first_level.generations_run, 0);
}

TEST_F(MarsTest, BeatsOrMatchesBaselineAnalytically) {
  Mars mars(fx_.problem, fast_config());
  const MarsResult result = mars.search();

  const accel::ProfileMatrix profile(fx_.designs, fx_.spine);
  const Mapping baseline = baseline_mapping(fx_.problem, profile);
  const MappingEvaluator evaluator(fx_.problem);
  const Seconds baseline_analytic =
      evaluator.analytical().evaluate(baseline).analytic_makespan;
  const Seconds mars_analytic = result.summary.analytic_makespan;
  // The baseline is seeded into the population: MARS can only improve.
  EXPECT_LE(mars_analytic.count(), baseline_analytic.count() * (1.0 + 1e-9));
}

TEST_F(MarsTest, DeterministicUnderSeed) {
  Mars a(fx_.problem, fast_config());
  Mars b(fx_.problem, fast_config());
  const MarsResult ra = a.search();
  const MarsResult rb = b.search();
  EXPECT_DOUBLE_EQ(ra.summary.simulated.count(), rb.summary.simulated.count());
  EXPECT_EQ(ra.mapping.sets.size(), rb.mapping.sets.size());
}

TEST_F(MarsTest, CacheIsExercised) {
  Mars mars(fx_.problem, fast_config());
  const MarsResult result = mars.search();
  EXPECT_GT(result.second_level_misses, 0);
  EXPECT_GT(result.second_level_hits, 0);  // GA revisits skeletons
}

TEST_F(MarsTest, FlatSingleLevelAblationRuns) {
  MarsConfig config = fast_config();
  config.two_level = false;
  Mars mars(fx_.problem, config);
  const MarsResult result = mars.search();
  EXPECT_NO_THROW(result.mapping.validate(fx_.spine, fx_.topo, fx_.designs, true));
  EXPECT_EQ(result.second_level_misses, 0);  // no second-level calls
}

TEST_F(MarsTest, NoSsAblationProducesNoSharedShards) {
  MarsConfig config = fast_config();
  config.second.enable_ss = false;
  Mars mars(fx_.problem, config);
  const MarsResult result = mars.search();
  for (const LayerAssignment& set : result.mapping.sets) {
    for (const parallel::Strategy& s : set.strategies) {
      EXPECT_FALSE(s.has_ss()) << s.to_string();
    }
  }
}

TEST_F(MarsTest, TrivialCandidateAblationRuns) {
  MarsConfig config = fast_config();
  config.heuristic_candidates = false;
  config.seed_baseline = false;  // baseline skeleton may not be encodable
  Mars mars(fx_.problem, config);
  const MarsResult result = mars.search();
  EXPECT_NO_THROW(result.mapping.validate(fx_.spine, fx_.topo, fx_.designs, true));
}

TEST_F(MarsTest, ConvergenceHistoryIsMonotone) {
  Mars mars(fx_.problem, fast_config());
  const MarsResult result = mars.search();
  const std::vector<double>& history = result.first_level.history;
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_LE(history[i], history[i - 1] + 1e-15);
  }
}

TEST_F(MarsTest, FixedDesignModeSearches) {
  testing::FixedFixture fx;
  MarsConfig config = fast_config();
  Mars mars(fx.problem, config);
  const MarsResult result = mars.search();
  EXPECT_NO_THROW(
      result.mapping.validate(fx.spine, fx.topo, fx.designs, /*adaptive=*/false));
  EXPECT_GT(result.summary.simulated.count(), 0.0);
}

TEST_F(MarsTest, ThreadedSearchIsByteIdenticalToSerial) {
  // `threads` is an execution knob, not a search knob: the whole
  // MarsResult — mapping, histories, evaluation and cache counters — must
  // match the serial run exactly (docs/PERFORMANCE.md).
  MarsConfig serial_config = fast_config();
  MarsConfig threaded_config = fast_config();
  threaded_config.threads = 4;

  const MarsResult serial = Mars(fx_.problem, serial_config).search();
  const MarsResult threaded = Mars(fx_.problem, threaded_config).search();

  EXPECT_EQ(serial.first_level.best, threaded.first_level.best);
  EXPECT_EQ(serial.first_level.history, threaded.first_level.history);
  EXPECT_EQ(serial.first_level.evaluations, threaded.first_level.evaluations);
  EXPECT_EQ(serial.second_level_hits, threaded.second_level_hits);
  EXPECT_EQ(serial.second_level_misses, threaded.second_level_misses);
  ASSERT_EQ(serial.mapping.sets.size(), threaded.mapping.sets.size());
  for (std::size_t i = 0; i < serial.mapping.sets.size(); ++i) {
    EXPECT_EQ(serial.mapping.sets[i].strategies,
              threaded.mapping.sets[i].strategies)
        << i;
  }
  EXPECT_EQ(serial.summary.simulated.count(),
            threaded.summary.simulated.count());
}

TEST_F(MarsTest, ThreadedFlatAblationIsByteIdenticalToSerial) {
  MarsConfig serial_config = fast_config();
  serial_config.two_level = false;
  MarsConfig threaded_config = serial_config;
  threaded_config.threads = 3;

  const MarsResult serial = Mars(fx_.problem, serial_config).search();
  const MarsResult threaded = Mars(fx_.problem, threaded_config).search();
  EXPECT_EQ(serial.first_level.best, threaded.first_level.best);
  EXPECT_EQ(serial.first_level.history, threaded.first_level.history);
  EXPECT_EQ(serial.summary.simulated.count(),
            threaded.summary.simulated.count());
}

TEST_F(MarsTest, NonPositiveThreadCountIsANamedError) {
  MarsConfig config = fast_config();
  config.threads = 0;
  try {
    Mars mars(fx_.problem, config);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("threads"), std::string::npos);
  }
}

}  // namespace
}  // namespace mars::core
