// Shared fixtures for core tests: a small adaptive problem (AlexNet on the
// F1 topology) and a fixed-design problem for H2H-style tests.
#pragma once

#include "mars/accel/registry.h"
#include "mars/core/cost_model.h"
#include "mars/graph/models/models.h"
#include "mars/graph/spine.h"
#include "mars/topology/presets.h"

namespace mars::core::testing {

struct AdaptiveFixture {
  graph::Graph model;
  graph::ConvSpine spine;
  topology::Topology topo;
  accel::DesignRegistry designs;
  Problem problem;

  explicit AdaptiveFixture(const std::string& model_name = "alexnet")
      : model(graph::models::by_name(model_name)),
        spine(graph::ConvSpine::extract(model)),
        topo(topology::f1_16xlarge()),
        designs(accel::table2_designs()) {
    problem.spine = &spine;
    problem.topo = &topo;
    problem.designs = &designs;
    problem.adaptive = true;
  }
};

struct FixedFixture {
  graph::Graph model;
  graph::ConvSpine spine;
  topology::Topology topo;
  accel::DesignRegistry designs;
  Problem problem;

  explicit FixedFixture(const std::string& model_name = "casia_surf",
                        Bandwidth bw = gbps(4.0))
      : model(graph::models::by_name(model_name)),
        spine(graph::ConvSpine::extract(model)),
        topo(topology::h2h_cloud(8, bw, /*num_fixed_designs=*/4)),
        designs(accel::h2h_designs()) {
    problem.spine = &spine;
    problem.topo = &topo;
    problem.designs = &designs;
    problem.adaptive = false;
  }
};

/// A small valid mapping: first half of the spine on group 1 with design 0,
/// second half on group 2 with design 1; every layer split Cout x p.
inline Mapping two_set_mapping(const Problem& problem) {
  const int n = problem.spine->size();
  Mapping mapping;
  LayerAssignment a;
  a.accs = 0b00001111;
  a.design = problem.adaptive ? 0 : accel::kInvalidDesign;
  a.begin = 0;
  a.end = n / 2;
  LayerAssignment b;
  b.accs = 0b11110000;
  b.design = problem.adaptive ? 1 : accel::kInvalidDesign;
  b.begin = n / 2;
  b.end = n;
  for (LayerAssignment* set : {&a, &b}) {
    for (int l = set->begin; l < set->end; ++l) {
      set->strategies.emplace_back(
          std::vector<parallel::DimSplit>{{parallel::Dim::kCout, 4}},
          std::nullopt);
    }
  }
  mapping.sets = {a, b};
  return mapping;
}

}  // namespace mars::core::testing
