#include "mars/core/first_level.h"

#include <gtest/gtest.h>

#include "test_support.h"
#include "mars/core/baseline.h"
#include "mars/ga/operators.h"
#include "mars/topology/candidates.h"
#include "mars/util/error.h"

namespace mars::core {
namespace {

using testing::AdaptiveFixture;

class FirstLevelTest : public ::testing::Test {
 protected:
  FirstLevelTest()
      : candidates_(topology::accset_candidates(fx_.topo)),
        codec_(fx_.problem, candidates_) {}

  AdaptiveFixture fx_;
  std::vector<topology::AccSetCandidate> candidates_;
  FirstLevelCodec codec_;
};

TEST_F(FirstLevelTest, GenomeSizeFormula) {
  const int c = static_cast<int>(candidates_.size());
  EXPECT_EQ(codec_.genome_size(), c * (2 + fx_.designs.size()));
}

TEST_F(FirstLevelTest, DecodeProducesValidSkeletons) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const ga::Genome genome =
        ga::random_genome(codec_.genome_size(), 0.0, 1.0, rng);
    const Skeleton skeleton = codec_.decode(genome);
    ASSERT_FALSE(skeleton.sets.empty());

    int cursor = 0;
    topology::AccMask used = 0;
    for (const LayerAssignment& set : skeleton.sets) {
      EXPECT_EQ(set.begin, cursor);
      EXPECT_GT(set.end, set.begin);
      cursor = set.end;
      EXPECT_EQ(set.accs & used, 0u);
      used |= set.accs;
      EXPECT_TRUE(fx_.topo.connected(set.accs));
      EXPECT_GE(set.design, 0);
      EXPECT_LT(set.design, fx_.designs.size());
    }
    EXPECT_EQ(cursor, fx_.spine.size());
  }
}

TEST_F(FirstLevelTest, DecodeIsDeterministic) {
  Rng rng(2);
  const ga::Genome genome = ga::random_genome(codec_.genome_size(), 0.0, 1.0, rng);
  const Skeleton a = codec_.decode(genome);
  const Skeleton b = codec_.decode(genome);
  ASSERT_EQ(a.sets.size(), b.sets.size());
  for (std::size_t i = 0; i < a.sets.size(); ++i) {
    EXPECT_EQ(a.sets[i].accs, b.sets[i].accs);
    EXPECT_EQ(a.sets[i].design, b.sets[i].design);
    EXPECT_EQ(a.sets[i].begin, b.sets[i].begin);
    EXPECT_EQ(a.sets[i].end, b.sets[i].end);
  }
}

TEST_F(FirstLevelTest, EncodeDecodeRoundTripsBaseline) {
  const accel::ProfileMatrix profile(fx_.designs, fx_.spine);
  const Skeleton baseline = baseline_skeleton(fx_.problem, profile);
  const ga::Genome genome = codec_.encode(baseline, profile.design_scores());
  const Skeleton decoded = codec_.decode(genome);

  ASSERT_EQ(decoded.sets.size(), baseline.sets.size());
  for (std::size_t i = 0; i < baseline.sets.size(); ++i) {
    EXPECT_EQ(decoded.sets[i].accs, baseline.sets[i].accs);
    EXPECT_EQ(decoded.sets[i].design, baseline.sets[i].design);
    EXPECT_EQ(decoded.sets[i].begin, baseline.sets[i].begin);
    EXPECT_EQ(decoded.sets[i].end, baseline.sets[i].end);
  }
}

TEST_F(FirstLevelTest, SharesControlAllocation) {
  // Put the two 4-groups on top with lopsided shares: the layer counts
  // must follow the shares.
  ga::Genome genome(static_cast<std::size_t>(codec_.genome_size()), 0.0);
  const int c = static_cast<int>(candidates_.size());
  const int d = fx_.designs.size();
  int group1 = -1;
  int group2 = -1;
  for (int i = 0; i < c; ++i) {
    if (candidates_[static_cast<std::size_t>(i)].mask == 0b00001111u) group1 = i;
    if (candidates_[static_cast<std::size_t>(i)].mask == 0b11110000u) group2 = i;
  }
  ASSERT_GE(group1, 0);
  ASSERT_GE(group2, 0);
  genome[static_cast<std::size_t>(group1)] = 1.0;
  genome[static_cast<std::size_t>(group2)] = 0.9;
  genome[static_cast<std::size_t>(c + c * d + group1)] = 0.75;
  genome[static_cast<std::size_t>(c + c * d + group2)] = 0.25;

  const Skeleton skeleton = codec_.decode(genome);
  ASSERT_EQ(skeleton.sets.size(), 2u);
  EXPECT_EQ(skeleton.sets[0].num_layers(), 6);  // 8 layers * 0.75
  EXPECT_EQ(skeleton.sets[1].num_layers(), 2);
}

TEST_F(FirstLevelTest, ZeroShareDropsSet) {
  ga::Genome genome(static_cast<std::size_t>(codec_.genome_size()), 0.0);
  const int c = static_cast<int>(candidates_.size());
  const int d = fx_.designs.size();
  int group1 = -1;
  int group2 = -1;
  for (int i = 0; i < c; ++i) {
    if (candidates_[static_cast<std::size_t>(i)].mask == 0b00001111u) group1 = i;
    if (candidates_[static_cast<std::size_t>(i)].mask == 0b11110000u) group2 = i;
  }
  genome[static_cast<std::size_t>(group1)] = 1.0;
  genome[static_cast<std::size_t>(group2)] = 0.9;
  genome[static_cast<std::size_t>(c + c * d + group1)] = 1.0;
  genome[static_cast<std::size_t>(c + c * d + group2)] = 0.0;

  const Skeleton skeleton = codec_.decode(genome);
  ASSERT_EQ(skeleton.sets.size(), 1u);
  EXPECT_EQ(skeleton.sets[0].accs, 0b00001111u);
  EXPECT_EQ(skeleton.sets[0].num_layers(), fx_.spine.size());
}

TEST_F(FirstLevelTest, DesignGenesPickArgmax) {
  ga::Genome genome(static_cast<std::size_t>(codec_.genome_size()), 0.0);
  const int c = static_cast<int>(candidates_.size());
  const int d = fx_.designs.size();
  int group1 = -1;
  for (int i = 0; i < c; ++i) {
    if (candidates_[static_cast<std::size_t>(i)].mask == 0b00001111u) group1 = i;
  }
  genome[static_cast<std::size_t>(group1)] = 1.0;
  genome[static_cast<std::size_t>(c + group1 * d + 2)] = 1.0;  // design 2 wins
  genome[static_cast<std::size_t>(c + c * d + group1)] = 1.0;

  const Skeleton skeleton = codec_.decode(genome);
  bool found = false;
  for (const LayerAssignment& set : skeleton.sets) {
    if (set.accs == 0b00001111u) {
      EXPECT_EQ(set.design, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FirstLevelTest, ProfiledRandomUsesScores) {
  const accel::ProfileMatrix profile(fx_.designs, fx_.spine);
  const std::vector<double> scores = profile.design_scores();
  Rng rng(5);
  const ga::Genome genome = codec_.profiled_random(scores, rng);
  // Design genes must sit near the scores (within the 0.1 jitter).
  const int c = static_cast<int>(candidates_.size());
  const int d = fx_.designs.size();
  for (int i = 0; i < c; ++i) {
    for (int k = 0; k < d; ++k) {
      const double gene = genome[static_cast<std::size_t>(c + i * d + k)];
      EXPECT_NEAR(gene, std::clamp(scores[static_cast<std::size_t>(k)], 0.0, 1.0),
                  0.1 + 1e-9);
    }
  }
}

TEST_F(FirstLevelTest, RejectsWrongGenomeSize) {
  EXPECT_THROW((void)codec_.decode(ga::Genome(3, 0.5)), InvalidArgument);
}

}  // namespace
}  // namespace mars::core
