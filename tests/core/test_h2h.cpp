#include "mars/core/h2h.h"

#include <gtest/gtest.h>

#include <set>

#include "test_support.h"
#include "mars/util/error.h"

namespace mars::core {
namespace {

using testing::FixedFixture;

class H2HTest : public ::testing::Test {
 protected:
  FixedFixture fx_;
  H2HMapper mapper_{fx_.problem};
};

TEST_F(H2HTest, RequiresFixedDesignMode) {
  Problem adaptive = fx_.problem;
  adaptive.adaptive = true;
  EXPECT_THROW(H2HMapper{adaptive}, InvalidArgument);
}

TEST_F(H2HTest, AssignsEveryLayerToOneAccelerator) {
  const H2HResult result = mapper_.map();
  ASSERT_EQ(static_cast<int>(result.assignment.size()), fx_.spine.size());
  for (int acc : result.assignment) {
    EXPECT_GE(acc, 0);
    EXPECT_LT(acc, fx_.topo.size());
  }
  EXPECT_GT(result.simulated.count(), 0.0);
  EXPECT_GT(result.analytic.count(), 0.0);
}

TEST_F(H2HTest, UsesMultipleAccelerators) {
  // A three-stream model must spread across accelerators for overlap.
  const H2HResult result = mapper_.map();
  std::set<int> used(result.assignment.begin(), result.assignment.end());
  EXPECT_GE(used.size(), 3u);
}

TEST_F(H2HTest, DeterministicResults) {
  const H2HResult a = mapper_.map();
  const H2HResult b = mapper_.map();
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.simulated.count(), b.simulated.count());
}

TEST_F(H2HTest, RefinementNeverHurts) {
  H2HConfig no_refine;
  no_refine.refinement_sweeps = 0;
  const H2HMapper greedy_only(fx_.problem, no_refine);
  const Seconds before = greedy_only.map().analytic;
  const Seconds after = mapper_.map().analytic;
  EXPECT_LE(after.count(), before.count() + 1e-12);
}

TEST_F(H2HTest, TaskGraphMatchesAssignment) {
  const H2HResult result = mapper_.map();
  const sim::TaskGraph tg = mapper_.build_task_graph(result.assignment);
  int computes = 0;
  for (const sim::Task& task : tg.tasks()) {
    if (task.kind == sim::TaskKind::kCompute) {
      EXPECT_EQ(task.acc,
                result.assignment[static_cast<std::size_t>(computes)]);
      ++computes;
    }
  }
  EXPECT_EQ(computes, fx_.spine.size());
}

TEST_F(H2HTest, BandwidthSweepMonotoneTrend) {
  // Higher interconnect bandwidth can only help a comm-aware mapper.
  Seconds slow;
  Seconds fast;
  {
    FixedFixture fx("casia_surf", gbps(1.0));
    slow = H2HMapper(fx.problem).map().simulated;
  }
  {
    FixedFixture fx("casia_surf", gbps(10.0));
    fast = H2HMapper(fx.problem).map().simulated;
  }
  EXPECT_LT(fast.count(), slow.count());
}

TEST_F(H2HTest, SingleAcceleratorDegenerate) {
  graph::Graph model = graph::models::alexnet();
  graph::ConvSpine spine = graph::ConvSpine::extract(model);
  topology::Topology topo = topology::h2h_cloud(1, gbps(4.0), 1);
  accel::DesignRegistry designs = accel::h2h_designs();
  Problem problem;
  problem.spine = &spine;
  problem.topo = &topo;
  problem.designs = &designs;
  problem.adaptive = false;
  const H2HResult result = H2HMapper(problem).map();
  for (int acc : result.assignment) {
    EXPECT_EQ(acc, 0);
  }
}

TEST_F(H2HTest, RejectsBadAssignmentArity) {
  EXPECT_THROW((void)mapper_.build_task_graph({0, 1}), InvalidArgument);
}

}  // namespace
}  // namespace mars::core
