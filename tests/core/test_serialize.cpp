#include "mars/core/serialize.h"

#include <gtest/gtest.h>

#include "test_support.h"
#include "mars/accel/profiler.h"
#include "mars/core/baseline.h"
#include "mars/core/evaluator.h"

namespace mars::core {
namespace {

using testing::AdaptiveFixture;
using testing::two_set_mapping;

class SerializeTest : public ::testing::Test {
 protected:
  AdaptiveFixture fx_;
};

TEST_F(SerializeTest, StrategyJson) {
  const parallel::Strategy s({{parallel::Dim::kH, 2}, {parallel::Dim::kW, 2}},
                             parallel::Dim::kCout);
  const std::string json = to_json(s).dump();
  EXPECT_NE(json.find("\"dim\":\"H\""), std::string::npos);
  EXPECT_NE(json.find("\"ways\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ss\":\"Cout\""), std::string::npos);
}

TEST_F(SerializeTest, StrategyWithoutSs) {
  const parallel::Strategy s({{parallel::Dim::kCout, 4}}, std::nullopt);
  EXPECT_NE(to_json(s).dump().find("\"ss\":\"\""), std::string::npos);
}

TEST_F(SerializeTest, MappingJsonStructure) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const std::string json =
      to_json(mapping, fx_.spine, fx_.designs, true).dump();
  EXPECT_NE(json.find("\"model\":\"alexnet\""), std::string::npos);
  EXPECT_NE(json.find("\"design\":\"SuperLIP\""), std::string::npos);
  EXPECT_NE(json.find("\"design\":\"SystolicGEMM\""), std::string::npos);
  EXPECT_NE(json.find("\"accelerators\":[0,1,2,3]"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"conv1\""), std::string::npos);
  // Every spine layer appears exactly once.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"index\":"); pos != std::string::npos;
       pos = json.find("\"index\":", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(fx_.spine.size()));
}

TEST_F(SerializeTest, SummaryJsonFields) {
  const MappingEvaluator evaluator(fx_.problem);
  const EvaluationSummary summary =
      evaluator.evaluate(two_set_mapping(fx_.problem));
  const std::string json = to_json(summary).dump();
  for (const char* field :
       {"simulated_ms", "analytic_makespan_ms", "compute_ms", "intra_set_ms",
        "inter_set_ms", "host_io_ms", "energy_mj", "memory_ok",
        "worst_set_footprint_mib"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  EXPECT_NE(json.find("\"memory_ok\":true"), std::string::npos);
}

TEST_F(SerializeTest, FixedModeMappingSaysFixed) {
  testing::FixedFixture fixed;
  Mapping mapping = two_set_mapping(fixed.problem);
  const std::string json =
      to_json(mapping, fixed.spine, fixed.designs, false).dump();
  EXPECT_NE(json.find("\"design\":\"fixed\""), std::string::npos);
}

TEST_F(SerializeTest, StrategyRoundTrips) {
  const parallel::Strategy original(
      {{parallel::Dim::kH, 2}, {parallel::Dim::kW, 2}}, parallel::Dim::kCout);
  const parallel::Strategy reparsed =
      strategy_from_json(JsonValue::parse(to_json(original).dump()));
  EXPECT_EQ(reparsed, original);

  const parallel::Strategy no_ss({{parallel::Dim::kCout, 4}}, std::nullopt);
  EXPECT_EQ(strategy_from_json(JsonValue::parse(to_json(no_ss).dump())), no_ss);
}

TEST_F(SerializeTest, MappingRoundTripsLosslessly) {
  const Mapping original = two_set_mapping(fx_.problem);
  const JsonValue json = to_json(original, fx_.spine, fx_.designs, true);
  const Mapping reparsed = mapping_from_json(
      JsonValue::parse(json.dump()), fx_.spine, *fx_.problem.topo, fx_.designs,
      true);
  // Field-exact: re-serialising the parse reproduces the document.
  EXPECT_EQ(to_json(reparsed, fx_.spine, fx_.designs, true).dump(),
            json.dump());
  ASSERT_EQ(reparsed.sets.size(), original.sets.size());
  for (std::size_t s = 0; s < original.sets.size(); ++s) {
    EXPECT_EQ(reparsed.sets[s].accs, original.sets[s].accs);
    EXPECT_EQ(reparsed.sets[s].design, original.sets[s].design);
    EXPECT_EQ(reparsed.sets[s].begin, original.sets[s].begin);
    EXPECT_EQ(reparsed.sets[s].end, original.sets[s].end);
    EXPECT_EQ(reparsed.sets[s].strategies, original.sets[s].strategies);
  }
}

TEST_F(SerializeTest, FixedModeMappingRoundTrips) {
  // two_set_mapping does not validate on the fixed fixture (its strategies
  // ignore the fixed designs); the baseline mapper produces a valid one.
  testing::FixedFixture fixed;
  const accel::ProfileMatrix profile(fixed.designs, fixed.spine);
  const Mapping original = baseline_mapping(fixed.problem, profile);
  const JsonValue json = to_json(original, fixed.spine, fixed.designs, false);
  const Mapping reparsed =
      mapping_from_json(JsonValue::parse(json.dump()), fixed.spine,
                        *fixed.problem.topo, fixed.designs, false);
  EXPECT_EQ(to_json(reparsed, fixed.spine, fixed.designs, false).dump(),
            json.dump());
}

TEST_F(SerializeTest, MappingParseRejectsForeignProblems) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const JsonValue json = to_json(mapping, fx_.spine, fx_.designs, true);

  // Wrong model: same topology/designs, different spine.
  testing::AdaptiveFixture other("resnet18");
  EXPECT_THROW((void)mapping_from_json(json, other.spine, *fx_.problem.topo,
                                       fx_.designs, true),
               InvalidArgument);

  // Unknown design name.
  std::string tampered = json.dump();
  const std::size_t pos = tampered.find("SuperLIP");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 8, "NoSuchHW");
  EXPECT_THROW((void)mapping_from_json(JsonValue::parse(tampered), fx_.spine,
                                       *fx_.problem.topo, fx_.designs, true),
               InvalidArgument);

  // Structurally broken: drop one set so coverage fails validate().
  JsonValue partial = JsonValue::parse(json.dump());
  JsonValue rebuilt = JsonValue::object();
  rebuilt.set("model", JsonValue::string(fx_.spine.model_name()));
  rebuilt.set("num_layers", JsonValue::integer(fx_.spine.size()));
  JsonValue sets = JsonValue::array();
  sets.push(JsonValue::parse(partial.get("sets").at(0).dump()));
  rebuilt.set("sets", std::move(sets));
  EXPECT_THROW((void)mapping_from_json(rebuilt, fx_.spine, *fx_.problem.topo,
                                       fx_.designs, true),
               InvalidArgument);
}

}  // namespace
}  // namespace mars::core
