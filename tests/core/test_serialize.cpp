#include "mars/core/serialize.h"

#include <gtest/gtest.h>

#include "test_support.h"
#include "mars/core/evaluator.h"

namespace mars::core {
namespace {

using testing::AdaptiveFixture;
using testing::two_set_mapping;

class SerializeTest : public ::testing::Test {
 protected:
  AdaptiveFixture fx_;
};

TEST_F(SerializeTest, StrategyJson) {
  const parallel::Strategy s({{parallel::Dim::kH, 2}, {parallel::Dim::kW, 2}},
                             parallel::Dim::kCout);
  const std::string json = to_json(s).dump();
  EXPECT_NE(json.find("\"dim\":\"H\""), std::string::npos);
  EXPECT_NE(json.find("\"ways\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ss\":\"Cout\""), std::string::npos);
}

TEST_F(SerializeTest, StrategyWithoutSs) {
  const parallel::Strategy s({{parallel::Dim::kCout, 4}}, std::nullopt);
  EXPECT_NE(to_json(s).dump().find("\"ss\":\"\""), std::string::npos);
}

TEST_F(SerializeTest, MappingJsonStructure) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const std::string json =
      to_json(mapping, fx_.spine, fx_.designs, true).dump();
  EXPECT_NE(json.find("\"model\":\"alexnet\""), std::string::npos);
  EXPECT_NE(json.find("\"design\":\"SuperLIP\""), std::string::npos);
  EXPECT_NE(json.find("\"design\":\"SystolicGEMM\""), std::string::npos);
  EXPECT_NE(json.find("\"accelerators\":[0,1,2,3]"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"conv1\""), std::string::npos);
  // Every spine layer appears exactly once.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"index\":"); pos != std::string::npos;
       pos = json.find("\"index\":", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(fx_.spine.size()));
}

TEST_F(SerializeTest, SummaryJsonFields) {
  const MappingEvaluator evaluator(fx_.problem);
  const EvaluationSummary summary =
      evaluator.evaluate(two_set_mapping(fx_.problem));
  const std::string json = to_json(summary).dump();
  for (const char* field :
       {"simulated_ms", "analytic_makespan_ms", "compute_ms", "intra_set_ms",
        "inter_set_ms", "host_io_ms", "memory_ok", "worst_set_footprint_mib"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  EXPECT_NE(json.find("\"memory_ok\":true"), std::string::npos);
}

TEST_F(SerializeTest, FixedModeMappingSaysFixed) {
  testing::FixedFixture fixed;
  Mapping mapping = two_set_mapping(fixed.problem);
  const std::string json =
      to_json(mapping, fixed.spine, fixed.designs, false).dump();
  EXPECT_NE(json.find("\"design\":\"fixed\""), std::string::npos);
}

}  // namespace
}  // namespace mars::core
