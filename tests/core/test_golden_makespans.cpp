// Golden-value regression tests: the analytic makespan of every zoo model
// under the baseline engine and a small fixed-seed GA search, pinned to
// the values the cost model produced when the incremental-evaluation path
// landed. Any change to the cost model, the decode, the second-level
// greedy, or the engines that shifts these numbers is a behaviour change
// and must be reviewed (and this table regenerated) deliberately.
//
// Tolerance: comparisons are relative at 1e-9 — loose enough to absorb
// FP-contraction differences between compilers and build types, tight
// enough that any real modelling change trips it. Regenerate with:
//   MARS_REGEN_GOLDENS=1 ./mars_test_core --gtest_filter='*Golden*'
// and paste the printed rows over kGoldens.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "mars/accel/registry.h"
#include "mars/graph/models/models.h"
#include "mars/plan/engines.h"
#include "mars/plan/planner.h"
#include "mars/topology/presets.h"

namespace mars::core {
namespace {

struct Golden {
  const char* model;
  double baseline;  // analytic makespan, seconds
  double ga;        // analytic makespan, seconds, golden_tuning() search
};

// Generated on the F1 16xlarge topology with the Table-2 designs
// (adaptive mode) via MARS_REGEN_GOLDENS — see the header comment.
constexpr Golden kGoldens[] = {
    {"alexnet", 0.0050294134999999997, 0.0040794477499999995},
    {"casia_surf", 0.027555267687500003, 0.014206352187500002},
    {"facebagnet", 0.020856468562500001, 0.011324982562499997},
    {"resnet101", 0.047387835374999979, 0.029198643749999996},
    {"resnet152", 0.065739035375000004, 0.039965075750000016},
    {"resnet18", 0.010908499375, 0.0067428837499999995},
    {"resnet34", 0.016371963375, 0.011831979749999997},
    {"resnet50", 0.036551131375000004, 0.018076915750000006},
    {"vgg11", 0.025725091750000002, 0.022527024124999996},
    {"vgg13", 0.04152763575, 0.030807040124999997},
    {"vgg16", 0.052422675750000002, 0.040942352125000005},
    {"vgg19", 0.062939795749999999, 0.051077664125000005},
    {"wrn50_2", 0.058360283374999995, 0.036564595749999984},
};

/// A deliberately small but fixed GA: the point is reproducibility, not
/// mapping quality, so budgets are tuned for suite runtime. Deterministic
/// at any thread count by the engines' batch contract; run here with the
/// default threads=1.
MarsConfig golden_tuning() {
  MarsConfig config;
  config.seed = 2023;
  config.first_ga.population = 6;
  config.first_ga.generations = 3;
  config.first_ga.stall_generations = 2;
  config.second.ga.population = 4;
  config.second.ga.generations = 2;
  return config;
}

double searched_makespan(const std::string& model, const std::string& engine) {
  const topology::Topology topo = topology::f1_16xlarge();
  const accel::DesignRegistry designs = accel::table2_designs();
  const plan::Planner planner =
      plan::Planner::for_model(model, topo, designs, /*adaptive=*/true);
  return planner.plan(*plan::make_engine(engine, golden_tuning()))
      .summary.analytic_makespan.count();
}

double relative_gap(double a, double b) {
  return std::abs(a - b) / std::max({std::abs(a), std::abs(b), 1e-300});
}

TEST(GoldenMakespanTest, EveryZooModelMatchesPinnedValues) {
  const bool regen = std::getenv("MARS_REGEN_GOLDENS") != nullptr;
  if (regen) {
    for (const std::string& model : graph::models::zoo_names()) {
      std::printf("    {\"%s\", %.17g, %.17g},\n", model.c_str(),
                  searched_makespan(model, "baseline"),
                  searched_makespan(model, "ga"));
    }
    GTEST_SKIP() << "golden regeneration run — paste the rows above";
  }

  // The table must stay in lockstep with the zoo: a model added without a
  // golden (or renamed) fails here, not silently.
  const std::vector<std::string> zoo = graph::models::zoo_names();
  ASSERT_EQ(std::size(kGoldens), zoo.size());

  for (const Golden& golden : kGoldens) {
    SCOPED_TRACE(golden.model);
    EXPECT_NE(std::find(zoo.begin(), zoo.end(), std::string(golden.model)),
              zoo.end());
    const double baseline = searched_makespan(golden.model, "baseline");
    EXPECT_LT(relative_gap(baseline, golden.baseline), 1e-9)
        << "baseline drifted: got " << std::scientific << baseline
        << " want " << golden.baseline;
    const double ga = searched_makespan(golden.model, "ga");
    EXPECT_LT(relative_gap(ga, golden.ga), 1e-9)
        << "ga drifted: got " << std::scientific << ga << " want "
        << golden.ga;
    // The GA seeds from the baseline skeleton, so it can only improve it.
    EXPECT_LE(golden.ga, golden.baseline * (1.0 + 1e-9));
  }
}

}  // namespace
}  // namespace mars::core
