// Differential harness pinning SkeletonSpace::fitness_delta_batch to the
// full evaluation path. The contract under test is exactness, not
// approximation: for every move an engine can emit, the incremental path
// must return bit-identical fitness values AND leave the memo-cache
// hit/miss counters in exactly the state full re-evaluation would — at
// any thread count, on fresh and warm caches, across adaptive and
// fixed-design problems. The test matrix below executes well over 1000
// seeded mutation streams (see the StreamCount test, which counts them).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/test_support.h"
#include "mars/core/skeleton_space.h"
#include "mars/graph/models/models.h"
#include "mars/util/worker_pool.h"
#include "support/mutation_stream.h"

namespace mars::core {
namespace {

using testing::AdaptiveFixture;
using testing::FixedFixture;
namespace stream = mars::testing;

/// Streams per (problem, shape, threads) cell of the main matrix. The two
/// fixtures x three shapes x two thread counts at this count put the suite
/// past the 1000-stream floor on their own.
constexpr int kStreamsPerCell = 90;

/// Prices `streams` seeded mutation streams over one configuration: a
/// `full` space sees only fitness_batch(children), an `inc` space sees the
/// parent cohorts through fitness_batch and every child generation through
/// fitness_delta_batch. Both spaces therefore process identical genome
/// sequences, so their fitness values and cumulative counters must stay
/// exactly equal. Returns the number of streams executed.
int run_differential(const Problem& problem, stream::MoveShape shape,
                     util::WorkerPool* pool, int streams,
                     std::uint64_t seed0) {
  SkeletonSpace full(problem, {{}, true});
  SkeletonSpace inc(problem, {{}, true});
  int executed = 0;
  for (int s = 0; s < streams; ++s) {
    Rng rng(seed0 + static_cast<std::uint64_t>(s) * 7919);
    std::vector<ga::Genome> parents = stream::random_parents(full, 4, rng);

    // Identical parent pricing on both sides; this also seeds the
    // incremental space's per-genome records.
    const std::vector<double> parent_full = full.fitness_batch(parents, pool);
    const std::vector<double> parent_inc = inc.fitness_batch(parents, pool);
    for (std::size_t i = 0; i < parents.size(); ++i) {
      EXPECT_EQ(parent_full[i], parent_inc[i]) << "stream " << s;
    }

    // Two generations: the second breeds from delta-evaluated children,
    // so record reuse after an incremental evaluation is exercised too.
    for (int generation = 0; generation < 2; ++generation) {
      const stream::MutationCohort cohort =
          stream::breed_cohort(parents, shape, 6, rng);
      const std::vector<double> f = full.fitness_batch(cohort.children, pool);
      const std::vector<double> d = inc.fitness_delta_batch(
          cohort.parents, cohort.children, cohort.deltas, pool);
      EXPECT_EQ(f.size(), d.size());
      for (std::size_t i = 0; i < f.size(); ++i) {
        EXPECT_EQ(f[i], d[i])  // bit-equal, not just close
            << "stream " << s << " generation " << generation << " child "
            << i;
      }
      EXPECT_EQ(full.cache_hits(), inc.cache_hits())
          << "stream " << s << " generation " << generation;
      EXPECT_EQ(full.cache_misses(), inc.cache_misses())
          << "stream " << s << " generation " << generation;
      parents = cohort.children;
    }
    ++executed;
  }
  return executed;
}

class IncrementalDifferentialTest
    : public ::testing::TestWithParam<stream::MoveShape> {};

TEST_P(IncrementalDifferentialTest, AdaptiveSerial) {
  AdaptiveFixture fx;
  EXPECT_EQ(run_differential(fx.problem, GetParam(), nullptr, kStreamsPerCell,
                             11),
            kStreamsPerCell);
}

TEST_P(IncrementalDifferentialTest, AdaptiveFourThreads) {
  AdaptiveFixture fx;
  util::WorkerPool pool(4);
  EXPECT_EQ(run_differential(fx.problem, GetParam(), &pool, kStreamsPerCell,
                             23),
            kStreamsPerCell);
}

TEST_P(IncrementalDifferentialTest, FixedSerial) {
  FixedFixture fx;
  EXPECT_EQ(run_differential(fx.problem, GetParam(), nullptr, kStreamsPerCell,
                             37),
            kStreamsPerCell);
}

TEST_P(IncrementalDifferentialTest, FixedFourThreads) {
  FixedFixture fx;
  util::WorkerPool pool(4);
  EXPECT_EQ(run_differential(fx.problem, GetParam(), &pool, kStreamsPerCell,
                             41),
            kStreamsPerCell);
}

INSTANTIATE_TEST_SUITE_P(MoveShapes, IncrementalDifferentialTest,
                         ::testing::Values(stream::MoveShape::kAnneal,
                                           stream::MoveShape::kGaMutate,
                                           stream::MoveShape::kGaCross),
                         [](const auto& info) {
                           switch (info.param) {
                             case stream::MoveShape::kAnneal:
                               return "Anneal";
                             case stream::MoveShape::kGaMutate:
                               return "GaMutate";
                             case stream::MoveShape::kGaCross:
                               return "GaCross";
                           }
                           return "Unknown";
                         });

// The matrix above is the floor the harness promises: 3 move shapes x
// (adaptive + fixed) x (serial + 4 threads) x kStreamsPerCell streams.
TEST(IncrementalDifferentialTest, StreamCountMeetsFloor) {
  EXPECT_GE(3 * 2 * 2 * kStreamsPerCell, 1000);
}

// A thinner sweep across the whole model zoo (anneal moves, serial):
// spine shapes with branches, multi-input models, and deep chains all hit
// the same exactness bar.
TEST(IncrementalDifferentialTest, EveryZooModelMatches) {
  for (const std::string& name : graph::models::zoo_names()) {
    SCOPED_TRACE(name);
    AdaptiveFixture fx(name);
    EXPECT_EQ(run_differential(fx.problem, stream::MoveShape::kAnneal,
                               nullptr, 2, 101),
              2);
  }
}

// Fallback exactness: deltas naming a parent the space has never priced
// (no record) must silently take the full path and still match.
TEST(IncrementalDeltaFallbackTest, UnknownParentFallsBackExactly) {
  AdaptiveFixture fx;
  SkeletonSpace full(fx.problem, {{}, true});
  SkeletonSpace inc(fx.problem, {{}, true});
  Rng rng(7);
  const std::vector<ga::Genome> parents = stream::random_parents(full, 3, rng);
  const stream::MutationCohort cohort =
      stream::breed_cohort(parents, stream::MoveShape::kAnneal, 5, rng);
  // Neither space has seen the parents: full path on both sides.
  const std::vector<double> f = full.fitness_batch(cohort.children, nullptr);
  const std::vector<double> d = inc.fitness_delta_batch(
      cohort.parents, cohort.children, cohort.deltas, nullptr);
  for (std::size_t i = 0; i < f.size(); ++i) EXPECT_EQ(f[i], d[i]) << i;
  EXPECT_EQ(full.cache_hits(), inc.cache_hits());
  EXPECT_EQ(full.cache_misses(), inc.cache_misses());
}

// A delta whose `changed` list is a strict superset of the real diff
// (every gene listed, none actually different) must evaluate to the
// parent's exact fitness.
TEST(IncrementalDeltaFallbackTest, SupersetChangeListIsExact) {
  AdaptiveFixture fx;
  SkeletonSpace space(fx.problem, {{}, true});
  Rng rng(13);
  const std::vector<ga::Genome> parents = stream::random_parents(space, 1, rng);
  const std::vector<double> base = space.fitness_batch(parents, nullptr);

  ga::GenomeDelta everything;
  everything.parent = 0;
  for (std::size_t g = 0; g < parents[0].size(); ++g) {
    if (space.codec().block_of(g) != FirstLevelCodec::GeneBlock::kPriority) {
      everything.changed.push_back(g);
    }
  }
  const std::vector<double> again =
      space.fitness_delta_batch(parents, parents, {everything}, nullptr);
  EXPECT_EQ(again[0], base[0]);
}

// Priority-gene moves cannot reuse the parent partition; the delta path
// must detect that and full-decode — and still match the full path.
TEST(IncrementalDeltaFallbackTest, PriorityMovesMatchFullPath) {
  AdaptiveFixture fx;
  SkeletonSpace full(fx.problem, {{}, true});
  SkeletonSpace inc(fx.problem, {{}, true});
  Rng rng(17);
  const std::vector<ga::Genome> parents = stream::random_parents(full, 2, rng);
  (void)full.fitness_batch(parents, nullptr);
  (void)inc.fitness_batch(parents, nullptr);

  std::vector<ga::Genome> children;
  std::vector<ga::GenomeDelta> deltas;
  for (std::size_t c = 0; c < parents.size(); ++c) {
    ga::Genome child = parents[c];
    child[0] = 1.0 - child[0];  // gene 0 is always a priority gene
    deltas.push_back({c, {0}});
    children.push_back(std::move(child));
  }
  const std::vector<double> f = full.fitness_batch(children, nullptr);
  const std::vector<double> d =
      inc.fitness_delta_batch(parents, children, deltas, nullptr);
  for (std::size_t i = 0; i < f.size(); ++i) EXPECT_EQ(f[i], d[i]) << i;
  EXPECT_EQ(full.cache_hits(), inc.cache_hits());
  EXPECT_EQ(full.cache_misses(), inc.cache_misses());
}

// --------------------------------------------------------------- purity
// Fitness is a pure function of the encoded key: the same genome priced
// through the serial, batch, and delta paths — on fresh or warm caches —
// returns the identical double, and repeat evaluations charge pure cache
// hits (the counter delta is exactly sets-many hits, zero misses).
TEST(SkeletonSpacePurityTest, AllPathsAgreeOnFreshAndWarmCaches) {
  AdaptiveFixture fx;
  Rng rng(29);

  SkeletonSpace serial_space(fx.problem, {{}, true});
  const std::vector<ga::Genome> genome =
      stream::random_parents(serial_space, 1, rng);
  const Skeleton skeleton = serial_space.codec().decode(genome[0]);
  const auto num_sets = static_cast<long long>(skeleton.sets.size());

  // Fresh caches, three paths.
  const double serial = serial_space.fitness(skeleton);
  SkeletonSpace batch_space(fx.problem, {{}, true});
  const double batch = batch_space.fitness_batch(genome, nullptr).front();
  SkeletonSpace delta_space(fx.problem, {{}, true});
  const double delta =
      delta_space
          .fitness_delta_batch(genome, genome, {{0, {}}}, nullptr)
          .front();
  EXPECT_EQ(serial, batch);
  EXPECT_EQ(serial, delta);

  // Warm caches: same values, counter delta = pure hits on every path.
  for (SkeletonSpace* space : {&serial_space, &batch_space, &delta_space}) {
    const long long hits = space->cache_hits();
    const long long misses = space->cache_misses();
    EXPECT_EQ(space->fitness(skeleton), serial);
    EXPECT_EQ(space->fitness_batch(genome, nullptr).front(), serial);
    EXPECT_EQ(
        space->fitness_delta_batch(genome, genome, {{0, {}}}, nullptr).front(),
        serial);
    EXPECT_EQ(space->cache_hits(), hits + 3 * num_sets);
    EXPECT_EQ(space->cache_misses(), misses);
  }
}

}  // namespace
}  // namespace mars::core
