// The batch-evaluation contract of core::SkeletonSpace: fitness_batch is
// byte-identical to serial fitness() — same values, same memo-cache
// accounting — at any thread count (docs/PERFORMANCE.md).
#include "mars/core/skeleton_space.h"

#include <gtest/gtest.h>

#include "core/test_support.h"
#include "mars/util/worker_pool.h"

namespace mars::core {
namespace {

using testing::AdaptiveFixture;

std::vector<Skeleton> sample_skeletons(SkeletonSpace& space, int count,
                                       std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<double> scores = space.design_scores();
  std::vector<Skeleton> skeletons;
  skeletons.reserve(static_cast<std::size_t>(count));
  // Include the baseline (shared sets across samples exercise the dedupe
  // path) plus profiled-random draws.
  skeletons.push_back(space.baseline());
  for (int i = 1; i < count; ++i) {
    skeletons.push_back(
        space.codec().decode(space.codec().profiled_random(scores, rng)));
  }
  return skeletons;
}

TEST(SkeletonSpaceBatchTest, BatchMatchesSerialFitnessBitForBit) {
  AdaptiveFixture fx;
  SkeletonSpace serial_space(fx.problem, {{}, true});
  SkeletonSpace batch_space(fx.problem, {{}, true});
  const std::vector<Skeleton> skeletons = sample_skeletons(serial_space, 24, 5);

  std::vector<double> serial;
  serial.reserve(skeletons.size());
  for (const Skeleton& skeleton : skeletons) {
    serial.push_back(serial_space.fitness(skeleton));
  }
  const std::vector<double> batch =
      batch_space.fitness_batch(sample_skeletons(batch_space, 24, 5), nullptr);

  ASSERT_EQ(batch.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], batch[i]) << i;  // bit-equal, not just close
  }
  // The dedupe counts occurrences exactly as a serial left-to-right sweep.
  EXPECT_EQ(batch_space.cache_hits(), serial_space.cache_hits());
  EXPECT_EQ(batch_space.cache_misses(), serial_space.cache_misses());
}

TEST(SkeletonSpaceBatchTest, FourThreadBatchIsByteIdenticalToSerial) {
  AdaptiveFixture fx;
  SkeletonSpace serial_space(fx.problem, {{}, true});
  SkeletonSpace threaded_space(fx.problem, {{}, true});
  util::WorkerPool pool(4);

  const std::vector<double> serial =
      serial_space.fitness_batch(sample_skeletons(serial_space, 32, 11),
                                 nullptr);
  const std::vector<double> threaded = threaded_space.fitness_batch(
      sample_skeletons(threaded_space, 32, 11), &pool);

  EXPECT_EQ(serial, threaded);  // std::vector<double> bitwise equality
  EXPECT_EQ(serial_space.cache_hits(), threaded_space.cache_hits());
  EXPECT_EQ(serial_space.cache_misses(), threaded_space.cache_misses());

  // A second batch over the same skeletons is all hits and still equal —
  // the warm path goes through the same aggregation.
  const std::vector<double> warm = threaded_space.fitness_batch(
      sample_skeletons(threaded_space, 32, 11), &pool);
  EXPECT_EQ(serial, warm);
  EXPECT_EQ(threaded_space.cache_misses(), serial_space.cache_misses());
}

TEST(SkeletonSpaceBatchTest, EmptyBatchIsANoOp) {
  AdaptiveFixture fx;
  SkeletonSpace space(fx.problem, {{}, true});
  EXPECT_TRUE(space.fitness_batch(std::vector<Skeleton>{}, nullptr).empty());
  EXPECT_EQ(space.cache_hits(), 0);
  EXPECT_EQ(space.cache_misses(), 0);
}

TEST(SkeletonSpaceBatchTest, BatchThenCompleteMatchesSerialSearchPath) {
  // complete() after a threaded batch must see exactly the strategies a
  // serial search would have memoised.
  AdaptiveFixture fx;
  SkeletonSpace serial_space(fx.problem, {{}, true});
  SkeletonSpace threaded_space(fx.problem, {{}, true});
  util::WorkerPool pool(3);

  const Skeleton baseline = serial_space.baseline();
  (void)serial_space.fitness(baseline);
  (void)threaded_space.fitness_batch({baseline}, &pool);

  const Mapping serial_mapping = serial_space.complete(baseline);
  const Mapping threaded_mapping = threaded_space.complete(baseline);
  ASSERT_EQ(serial_mapping.sets.size(), threaded_mapping.sets.size());
  for (std::size_t i = 0; i < serial_mapping.sets.size(); ++i) {
    EXPECT_EQ(serial_mapping.sets[i].strategies,
              threaded_mapping.sets[i].strategies)
        << i;
  }
}

}  // namespace
}  // namespace mars::core
