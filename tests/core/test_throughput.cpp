#include <gtest/gtest.h>

#include "test_support.h"
#include "mars/core/evaluator.h"
#include "mars/util/error.h"

namespace mars::core {
namespace {

using testing::AdaptiveFixture;
using testing::two_set_mapping;

class ThroughputTest : public ::testing::Test {
 protected:
  AdaptiveFixture fx_;
  MappingEvaluator evaluator_{fx_.problem};
};

TEST_F(ThroughputTest, BatchOneMatchesSingleInference) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  const auto throughput = evaluator_.evaluate_throughput(mapping, 1);
  const Seconds single = evaluator_.evaluate(mapping).simulated;
  EXPECT_DOUBLE_EQ(throughput.makespan.count(), single.count());
  EXPECT_NEAR(throughput.pipeline_speedup, 1.0, 1e-9);
}

TEST_F(ThroughputTest, BatchMakespanGrowsSubLinearlyForMultiSetMappings) {
  // Two sets pipeline consecutive images: 8 images must take less than
  // 8x the single-image latency.
  const Mapping mapping = two_set_mapping(fx_.problem);
  const auto throughput = evaluator_.evaluate_throughput(mapping, 8);
  const Seconds single = evaluator_.evaluate(mapping).simulated;
  EXPECT_LT(throughput.makespan.count(), 8.0 * single.count());
  EXPECT_GT(throughput.pipeline_speedup, 1.05);
  EXPECT_GT(throughput.images_per_second, 1.0 / single.count());
}

TEST_F(ThroughputTest, MakespanMonotoneInBatch) {
  const Mapping mapping = two_set_mapping(fx_.problem);
  Seconds previous(0.0);
  for (int batch : {1, 2, 4, 8}) {
    const auto result = evaluator_.evaluate_throughput(mapping, batch);
    EXPECT_GT(result.makespan.count(), previous.count());
    previous = result.makespan;
  }
}

TEST_F(ThroughputTest, SingleSetMappingHasBoundedOverlap) {
  // One set: only host I/O overlaps with compute; the pipeline speedup
  // stays near 1 (no stage parallelism to exploit).
  Mapping mapping;
  LayerAssignment set;
  set.accs = 0b1111;
  set.design = 0;
  set.begin = 0;
  set.end = fx_.spine.size();
  for (int l = 0; l < fx_.spine.size(); ++l) {
    set.strategies.emplace_back(
        std::vector<parallel::DimSplit>{{parallel::Dim::kCout, 4}},
        std::nullopt);
  }
  mapping.sets = {set};
  const auto result = evaluator_.evaluate_throughput(mapping, 8);
  EXPECT_LT(result.pipeline_speedup, 1.4);
  EXPECT_GE(result.pipeline_speedup, 0.99);
}

TEST_F(ThroughputTest, MoreSetsPipelineBetter) {
  // At batch 16, a two-set mapping's pipeline speedup must exceed a
  // single-set mapping's.
  Mapping single_set;
  LayerAssignment only;
  only.accs = 0b1111;
  only.design = 0;
  only.begin = 0;
  only.end = fx_.spine.size();
  for (int l = 0; l < fx_.spine.size(); ++l) {
    only.strategies.emplace_back(
        std::vector<parallel::DimSplit>{{parallel::Dim::kCout, 4}},
        std::nullopt);
  }
  single_set.sets = {only};

  const auto one = evaluator_.evaluate_throughput(single_set, 16);
  const auto two =
      evaluator_.evaluate_throughput(two_set_mapping(fx_.problem), 16);
  EXPECT_GT(two.pipeline_speedup, one.pipeline_speedup);
}

TEST_F(ThroughputTest, RejectsBadBatch) {
  EXPECT_THROW(
      (void)evaluator_.evaluate_throughput(two_set_mapping(fx_.problem), 0),
      InvalidArgument);
  EXPECT_THROW(
      (void)evaluator_.evaluate_throughput(two_set_mapping(fx_.problem), -8),
      InvalidArgument);
}

TEST_F(ThroughputTest, SingleSetBatchOneSpeedupIsExactlyOne) {
  // One set, one image: no stage to pipeline against, so the speedup is
  // 1 by construction (same task graph as the single-inference path).
  Mapping mapping;
  LayerAssignment set;
  set.accs = 0b1111;
  set.design = 0;
  set.begin = 0;
  set.end = fx_.spine.size();
  for (int l = 0; l < fx_.spine.size(); ++l) {
    set.strategies.emplace_back(
        std::vector<parallel::DimSplit>{{parallel::Dim::kCout, 4}},
        std::nullopt);
  }
  mapping.sets = {set};
  const auto result = evaluator_.evaluate_throughput(mapping, 1);
  EXPECT_DOUBLE_EQ(result.pipeline_speedup, 1.0);
  EXPECT_DOUBLE_EQ(result.images_per_second * result.makespan.count(), 1.0);
}

}  // namespace
}  // namespace mars::core
