#include "mars/core/report.h"

#include <gtest/gtest.h>

#include "mars/graph/models/models.h"

namespace mars::core {
namespace {

TEST(Report, LatencyReductionPaperStyle) {
  EXPECT_EQ(latency_reduction(milliseconds(20.6), milliseconds(14.9)), "-27.7%");
  EXPECT_EQ(latency_reduction(milliseconds(10.0), milliseconds(10.0)), "+0%");
  EXPECT_EQ(latency_reduction(milliseconds(10.0), milliseconds(11.0)), "+10%");
  EXPECT_EQ(latency_reduction(Seconds(0.0), milliseconds(1.0)), "n/a");
}

TEST(Report, WorkloadSummaryMatchesGraph) {
  const graph::Graph model = graph::models::alexnet();
  const WorkloadSummary summary = summarize(model);
  EXPECT_EQ(summary.name, "alexnet");
  EXPECT_EQ(summary.num_convs, 5);
  EXPECT_EQ(summary.num_spine_layers, 8);
  EXPECT_DOUBLE_EQ(summary.params, model.total_params());
  EXPECT_DOUBLE_EQ(summary.macs, model.total_macs());
}

TEST(Report, ComparisonTableRendersRows) {
  ComparisonRow row;
  row.workload = summarize(graph::models::alexnet());
  row.baseline = milliseconds(5.082);
  row.ours = milliseconds(4.099);
  row.mapping = "conv1..fc8 -> 4x SystolicGEMM";
  const Table table = comparison_table({row}, "Baseline", "MARS");
  const std::string out = table.render();
  EXPECT_NE(out.find("alexnet"), std::string::npos);
  EXPECT_NE(out.find("5.082"), std::string::npos);
  EXPECT_NE(out.find("4.099"), std::string::npos);
  EXPECT_NE(out.find("-19.3%"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 1u);
}

}  // namespace
}  // namespace mars::core
