#include "mars/core/second_level.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace mars::core {
namespace {

using testing::AdaptiveFixture;

class SecondLevelTest : public ::testing::Test {
 protected:
  SecondLevelTest() : search_(fx_.problem, SecondLevelConfig{}) {}

  LayerAssignment skeleton(int begin, int end, topology::AccMask accs = 0b1111,
                           accel::DesignId design = 0) const {
    LayerAssignment set;
    set.accs = accs;
    set.design = design;
    set.begin = begin;
    set.end = end;
    return set;
  }

  AdaptiveFixture fx_;
  SecondLevelSearch search_;
};

TEST_F(SecondLevelTest, DecodeProducesFittingStrategies) {
  const graph::ConvShape& shape = fx_.spine.node(1).shape;
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> genes(SecondLevelSearch::kGenesPerLayer);
    for (double& g : genes) g = rng.uniform();
    const parallel::Strategy s = search_.decode_layer(shape, 4, genes.data());
    EXPECT_TRUE(s.fits(shape, 4)) << s.to_string();
  }
}

TEST_F(SecondLevelTest, DecodeRespectsPriorities) {
  const graph::ConvShape& shape = fx_.spine.node(1).shape;
  std::vector<double> genes(SecondLevelSearch::kGenesPerLayer, 0.0);
  // Factorization 0 of p=4 is {4}; push H to the top of the ES priorities.
  genes[0] = 0.0;
  genes[1] = 0.0;  // no SS
  genes[2 + static_cast<int>(parallel::Dim::kH)] = 1.0;
  const parallel::Strategy s = search_.decode_layer(shape, 4, genes.data());
  EXPECT_EQ(s.ways_of(parallel::Dim::kH), 4);
  EXPECT_FALSE(s.has_ss());
}

TEST_F(SecondLevelTest, DecodeSsEnableGene) {
  const graph::ConvShape& shape = fx_.spine.node(1).shape;
  std::vector<double> genes(SecondLevelSearch::kGenesPerLayer, 0.0);
  genes[1] = 1.0;  // SS on
  genes[2 + static_cast<int>(parallel::Dim::kH)] = 1.0;   // ES on H
  genes[8 + static_cast<int>(parallel::Dim::kCout)] = 1.0;  // SS prefers Cout
  const parallel::Strategy s = search_.decode_layer(shape, 4, genes.data());
  ASSERT_TRUE(s.has_ss());
  EXPECT_EQ(*s.ss(), parallel::Dim::kCout);
}

TEST_F(SecondLevelTest, DecodeDisablesSsWhenConfigured) {
  SecondLevelConfig config;
  config.enable_ss = false;
  const SecondLevelSearch no_ss(fx_.problem, config);
  const graph::ConvShape& shape = fx_.spine.node(1).shape;
  std::vector<double> genes(SecondLevelSearch::kGenesPerLayer, 1.0);
  const parallel::Strategy s = no_ss.decode_layer(shape, 4, genes.data());
  EXPECT_FALSE(s.has_ss());
}

TEST_F(SecondLevelTest, DecodeSingleAccelerator) {
  std::vector<double> genes(SecondLevelSearch::kGenesPerLayer, 0.5);
  const parallel::Strategy s =
      search_.decode_layer(fx_.spine.node(0).shape, 1, genes.data());
  EXPECT_EQ(s.es_ways(), 1);
}

TEST_F(SecondLevelTest, GreedyCoversRangeAndIsDeterministic) {
  const LayerAssignment set = skeleton(0, fx_.spine.size());
  const SecondLevelResult a = search_.greedy(set);
  const SecondLevelResult b = search_.greedy(set);
  ASSERT_EQ(static_cast<int>(a.strategies.size()), fx_.spine.size());
  EXPECT_EQ(a.strategies, b.strategies);
  EXPECT_GT(a.cost.latency.compute.count(), 0.0);
  for (int l = 0; l < fx_.spine.size(); ++l) {
    EXPECT_TRUE(a.strategies[static_cast<std::size_t>(l)].fits(
        fx_.spine.node(l).shape, 4));
  }
}

TEST_F(SecondLevelTest, GreedyBeatsWorstEnumerated) {
  // Greedy must beat the per-layer WORST choice by a wide margin.
  const LayerAssignment set = skeleton(0, 5);
  const SecondLevelResult greedy = search_.greedy(set);

  const AnalyticalCostModel& model = search_.model();
  LayerAssignment worst = set;
  for (int l = 0; l < 5; ++l) {
    const auto options =
        parallel::enumerate_strategies(fx_.spine.node(l).shape, 4, 3);
    const parallel::Strategy* worst_s = nullptr;
    Seconds worst_t(0.0);
    for (const parallel::Strategy& option : options) {
      const LayerCost cost = model.layer_cost(set, l, option, std::nullopt);
      if (worst_s == nullptr || cost.total() > worst_t) {
        worst_s = &option;
        worst_t = cost.total();
      }
    }
    worst.strategies.push_back(*worst_s);
  }
  EXPECT_LT(greedy.cost.latency.total().count(),
            model.set_cost(worst).latency.total().count());
}

TEST_F(SecondLevelTest, RefineNeverWorseThanGreedySeed) {
  const LayerAssignment set = skeleton(0, 5);
  const SecondLevelResult greedy = search_.greedy(set);
  Rng rng(7);
  const SecondLevelResult refined =
      search_.refine(set, rng, &greedy.strategies);
  EXPECT_LE(refined.cost.penalized.count(),
            greedy.cost.penalized.count() * (1.0 + 1e-9));
}

TEST_F(SecondLevelTest, RefineReportsGaHistory) {
  const LayerAssignment set = skeleton(0, 3);
  Rng rng(8);
  ga::GaResult ga_result;
  (void)search_.refine(set, rng, nullptr, &ga_result);
  EXPECT_GT(ga_result.generations_run, 0);
  EXPECT_FALSE(ga_result.history.empty());
}

TEST_F(SecondLevelTest, TwoAcceleratorSets) {
  const LayerAssignment set = skeleton(0, fx_.spine.size(), 0b0011, 1);
  const SecondLevelResult result = search_.greedy(set);
  for (int l = 0; l < fx_.spine.size(); ++l) {
    EXPECT_TRUE(result.strategies[static_cast<std::size_t>(l)].fits(
        fx_.spine.node(l).shape, 2));
  }
}

TEST_F(SecondLevelTest, GreedyPrefersCheapStrategiesOnSlowLinks) {
  // On a very slow interconnect the greedy must avoid heavy communication:
  // total intra-set time should stay within a modest multiple of compute.
  topology::Topology slow = topology::fully_connected(4, mbps(100.0), mbps(100.0));
  Problem problem = fx_.problem;
  problem.topo = &slow;
  const SecondLevelSearch slow_search(problem, SecondLevelConfig{});
  LayerAssignment set;
  set.accs = 0b1111;
  set.design = 0;
  set.begin = 0;
  set.end = 5;  // conv layers only
  const SecondLevelResult result = slow_search.greedy(set);
  // Compute-only lower bound.
  EXPECT_LT(result.cost.latency.intra_set.count(),
            result.cost.latency.compute.count() * 3.0);
}

}  // namespace
}  // namespace mars::core
