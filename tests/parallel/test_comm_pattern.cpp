#include "mars/parallel/comm_pattern.h"

#include <gtest/gtest.h>

#include "mars/util/error.h"

namespace mars::parallel {
namespace {

using graph::ConvShape;
using graph::DataType;

const ConvShape kConsumer{64, 32, 28, 28, 3, 3, 1, 1};
const DataType kDt = DataType::kFix16;
const Bytes kIn = kConsumer.in_bytes(kDt);

TEST(Reshard, AlignedLayoutsMoveOnlyHalos) {
  // Producer sharded H x 4, consumer needs H x 4: aligned, only the 3x3
  // kernel's boundary rows move.
  const ActivationSharding layout{1, 4, 1};
  const ReshardCost cost = reshard_cost(layout, kConsumer, layout, kIn, 4, kDt);
  EXPECT_GT(cost.halo.count(), 0.0);
  EXPECT_DOUBLE_EQ(cost.moved.count(), cost.halo.count());
  // Halo: 2 boundaries x (ways-1) x (k - stride) rows of cin x iw.
  const double expected = 2.0 * 3 * 2 * (32.0 * kConsumer.iw() * 2);
  EXPECT_DOUBLE_EQ(cost.halo.count(), expected);
}

TEST(Reshard, AlignedChannelLayoutIsFree) {
  // Channel splits have no halos.
  const ActivationSharding layout{4, 1, 1};
  const ReshardCost cost = reshard_cost(layout, kConsumer, layout, kIn, 4, kDt);
  EXPECT_DOUBLE_EQ(cost.moved.count(), 0.0);
}

TEST(Reshard, PointwiseAlignedSpatialHasNoHalo) {
  const ConvShape pointwise{64, 32, 28, 28, 1, 1, 1, 1};
  const ActivationSharding layout{1, 4, 1};
  const ReshardCost cost =
      reshard_cost(layout, pointwise, layout, pointwise.in_bytes(kDt), 4, kDt);
  EXPECT_DOUBLE_EQ(cost.moved.count(), 0.0);
}

TEST(Reshard, MismatchedDimsPayTranspose) {
  // Producer sharded along H, consumer wants channel shards: each
  // accelerator owns 1/4 of H but needs a full-height channel slice.
  const ActivationSharding produced{1, 4, 1};
  const ActivationSharding required{4, 1, 1};
  const ReshardCost cost = reshard_cost(produced, kConsumer, required, kIn, 4, kDt);
  // need/acc = in/4; coverage = 1/4; moved = 4 * in/4 * 3/4 = 0.75 in.
  EXPECT_NEAR(cost.moved.count(), kIn.count() * 0.75, 1e-6);
}

TEST(Reshard, ReplicationBroadcastsToEveryone) {
  // Producer sharded along H; consumer needs the full tensor everywhere
  // (e.g. Cout-only ES): each accelerator misses 3/4 of it.
  const ActivationSharding produced{1, 4, 1};
  const ActivationSharding required{1, 1, 1};
  const ReshardCost cost = reshard_cost(produced, kConsumer, required, kIn, 4, kDt);
  EXPECT_NEAR(cost.moved.count(), 4.0 * kIn.count() * 0.75, 1e-6);
}

TEST(Reshard, FinerToCoarserStillPays) {
  const ActivationSharding produced{1, 8, 1};
  const ActivationSharding required{1, 2, 1};
  const ReshardCost cost = reshard_cost(produced, kConsumer, required, kIn, 8, kDt);
  // Mismatched ways: coverage = 1/8 per the uniform-alignment model.
  EXPECT_GT(cost.moved.count(), 0.0);
}

TEST(Reshard, SingleAcceleratorIsFree) {
  const ActivationSharding layout{1, 1, 1};
  const ReshardCost cost = reshard_cost(layout, kConsumer, layout, kIn, 1, kDt);
  EXPECT_DOUBLE_EQ(cost.moved.count(), 0.0);
}

TEST(Reshard, StrideAbsorbsHalo) {
  // kernel 3, stride 3: windows do not overlap -> no halo.
  const ConvShape strided{64, 32, 9, 9, 3, 3, 3, 3};
  const ActivationSharding layout{1, 3, 1};
  const ReshardCost cost =
      reshard_cost(layout, strided, layout, strided.in_bytes(kDt), 3, kDt);
  EXPECT_DOUBLE_EQ(cost.moved.count(), 0.0);
}

TEST(AllReduce, WireBytesClassicFactor) {
  EXPECT_DOUBLE_EQ(allreduce_wire_bytes(Bytes(1000.0), 1).count(), 0.0);
  EXPECT_DOUBLE_EQ(allreduce_wire_bytes(Bytes(1000.0), 2).count(), 1000.0);
  EXPECT_DOUBLE_EQ(allreduce_wire_bytes(Bytes(1000.0), 4).count(), 1500.0);
  EXPECT_DOUBLE_EQ(allreduce_wire_bytes(Bytes(1000.0), 8).count(), 1750.0);
  EXPECT_THROW((void)allreduce_wire_bytes(Bytes(1.0), 0), InvalidArgument);
}

TEST(AllReduce, HopCounts) {
  EXPECT_EQ(allreduce_hops(1), 0);
  EXPECT_EQ(allreduce_hops(2), 2);
  EXPECT_EQ(allreduce_hops(4), 6);
  EXPECT_EQ(allreduce_hops(8), 14);
}

}  // namespace
}  // namespace mars::parallel
