#include "mars/parallel/memory.h"

#include <gtest/gtest.h>

#include "mars/graph/models/models.h"
#include "mars/util/error.h"

namespace mars::parallel {
namespace {

class MemoryTest : public ::testing::Test {
 protected:
  graph::ConvSpine spine_ = graph::ConvSpine::extract(graph::models::vgg16());

  std::vector<ShardingPlan> plans_for(int begin, int end, const Strategy& s,
                                      int p) {
    std::vector<ShardingPlan> plans;
    for (int l = begin; l < end; ++l) {
      // Fall back to Cout-only split when s does not fit the layer.
      Strategy use = s;
      if (!use.fits(spine_.node(l).shape, p)) {
        use = Strategy({{Dim::kCout, p}}, std::nullopt);
      }
      plans.push_back(make_plan(spine_.node(l).shape, spine_.dtype(), use, p));
    }
    return plans;
  }
};

TEST_F(MemoryTest, WeightsAccumulateActivationsPeak) {
  const Strategy s({{Dim::kCout, 2}}, std::nullopt);
  const auto plans = plans_for(0, 4, s, 2);
  const MemoryFootprint fp = footprint(spine_, 0, 4, plans);

  double weight_sum = 0.0;
  double act_peak = 0.0;
  for (int l = 0; l < 4; ++l) {
    weight_sum += plans[static_cast<std::size_t>(l)].weight_resident.count();
    act_peak = std::max(act_peak,
                        plans[static_cast<std::size_t>(l)].input_live.count() +
                            plans[static_cast<std::size_t>(l)].output_live.count());
  }
  EXPECT_DOUBLE_EQ(fp.weights.count(), weight_sum);
  EXPECT_DOUBLE_EQ(fp.peak_activation.count(), act_peak);
  EXPECT_DOUBLE_EQ(fp.total().count(), weight_sum + act_peak);
}

TEST_F(MemoryTest, FitsThreshold) {
  const Strategy s({{Dim::kCout, 2}}, std::nullopt);
  const auto plans = plans_for(0, 4, s, 2);
  const MemoryFootprint fp = footprint(spine_, 0, 4, plans);
  EXPECT_TRUE(fp.fits(fp.total() + Bytes(1.0)));
  EXPECT_TRUE(fp.fits(fp.total()));
  EXPECT_FALSE(fp.fits(fp.total() - Bytes(1.0)));
}

TEST_F(MemoryTest, VggFitsOneGiBWhenSharded) {
  // The paper's platform: 1 GiB DRAM per card. VGG16's whole spine sharded
  // 4-ways fits comfortably at fix16.
  const Strategy s({{Dim::kCout, 4}}, std::nullopt);
  const auto plans = plans_for(0, spine_.size(), s, 4);
  const MemoryFootprint fp = footprint(spine_, 0, spine_.size(), plans);
  EXPECT_TRUE(fp.fits(gibibytes(1.0)));
}

TEST_F(MemoryTest, SsHalvesVggWeightFootprint) {
  // ES = {H:4} replicates the weights on all 4 accelerators; adding
  // SS = {Cout} keeps only a double-buffered quarter shard (= half).
  const Strategy plain({{Dim::kH, 4}}, std::nullopt);
  const Strategy shared({{Dim::kH, 4}}, Dim::kCout);
  // Restrict to conv layers (H >= 4): the first 13 spine nodes.
  const auto plans_plain = plans_for(0, 13, plain, 4);
  const auto plans_shared = plans_for(0, 13, shared, 4);
  const MemoryFootprint a = footprint(spine_, 0, 13, plans_plain);
  const MemoryFootprint b = footprint(spine_, 0, 13, plans_shared);
  EXPECT_NEAR(b.weights.count() / a.weights.count(), 0.5, 1e-9);
}

TEST_F(MemoryTest, ResidualSpanningBytesCharged) {
  const graph::ConvSpine resnet =
      graph::ConvSpine::extract(graph::models::resnet34());
  // Find a layer spanned by a shortcut edge and verify the footprint grows.
  int spanned = -1;
  for (int l = 1; l + 1 < resnet.size(); ++l) {
    if (resnet.spanning_bytes(l).count() > 0.0) {
      spanned = l;
      break;
    }
  }
  ASSERT_GE(spanned, 0);
  std::vector<ShardingPlan> plans{make_plan(
      resnet.node(spanned).shape, resnet.dtype(), Strategy{}, 1)};
  const MemoryFootprint fp = footprint(resnet, spanned, spanned + 1, plans);
  EXPECT_GE(fp.peak_activation.count(),
            resnet.spanning_bytes(spanned).count());
}

TEST_F(MemoryTest, RejectsBadRanges) {
  const Strategy s({{Dim::kCout, 2}}, std::nullopt);
  auto plans = plans_for(0, 2, s, 2);
  EXPECT_THROW((void)footprint(spine_, 2, 2, plans), InvalidArgument);
  EXPECT_THROW((void)footprint(spine_, 0, 3, plans), InvalidArgument);
  EXPECT_THROW((void)footprint(spine_, -1, 1, plans), InvalidArgument);
}

}  // namespace
}  // namespace mars::parallel
