#include "mars/parallel/strategy.h"

#include <gtest/gtest.h>

#include <set>

#include "mars/util/error.h"

namespace mars::parallel {
namespace {

const graph::ConvShape kConv{64, 32, 28, 28, 3, 3, 1, 1};
const graph::ConvShape kTiny{8, 3, 4, 4, 3, 3, 1, 1};

TEST(Dims, ExtentsAndClassification) {
  EXPECT_EQ(dim_extent(kConv, Dim::kCout), 64);
  EXPECT_EQ(dim_extent(kConv, Dim::kCin), 32);
  EXPECT_EQ(dim_extent(kConv, Dim::kH), 28);
  EXPECT_EQ(dim_extent(kConv, Dim::kW), 28);
  EXPECT_EQ(dim_extent(kConv, Dim::kKh), 3);
  EXPECT_EQ(dim_extent(kConv, Dim::kKw), 3);

  EXPECT_TRUE(is_reduction_dim(Dim::kCin));
  EXPECT_TRUE(is_reduction_dim(Dim::kKh));
  EXPECT_TRUE(is_reduction_dim(Dim::kKw));
  EXPECT_FALSE(is_reduction_dim(Dim::kCout));
  EXPECT_FALSE(is_reduction_dim(Dim::kH));
}

TEST(Dims, TensorMembership) {
  EXPECT_TRUE(dim_in_weight(Dim::kCout));
  EXPECT_TRUE(dim_in_weight(Dim::kCin));
  EXPECT_FALSE(dim_in_weight(Dim::kH));
  EXPECT_TRUE(dim_in_input(Dim::kH));
  EXPECT_TRUE(dim_in_input(Dim::kCin));
  EXPECT_FALSE(dim_in_input(Dim::kCout));
  EXPECT_TRUE(dim_in_output(Dim::kCout));
  EXPECT_FALSE(dim_in_output(Dim::kCin));
}

TEST(Strategy, DefaultIsUnpartitioned) {
  const Strategy none;
  EXPECT_EQ(none.es_ways(), 1);
  EXPECT_FALSE(none.has_ss());
  EXPECT_TRUE(none.fits(kConv, 1));
  EXPECT_FALSE(none.fits(kConv, 4));
}

TEST(Strategy, PaperFigure2bExample) {
  // Fig. 2(b): ES = {Cin, W}, four accelerators (2x2).
  const Strategy s({{Dim::kCin, 2}, {Dim::kW, 2}}, std::nullopt);
  EXPECT_EQ(s.es_ways(), 4);
  EXPECT_EQ(s.reduction_ways(), 2);  // Cin is a reduction dim -> All-Reduce
  EXPECT_EQ(s.es_ways_in_input(), 4);   // Cin and W both index the input
  EXPECT_EQ(s.es_ways_in_weight(), 2);  // only Cin indexes the weights
  EXPECT_EQ(s.es_ways_in_output(), 2);  // only W indexes the output
  EXPECT_TRUE(s.fits(kConv, 4));
}

TEST(Strategy, PaperFigure2cExample) {
  // Fig. 2(c): ES = {W}, SS = {Cout}, two accelerators.
  const Strategy s({{Dim::kW, 2}}, Dim::kCout);
  EXPECT_EQ(s.es_ways(), 2);
  EXPECT_TRUE(s.has_ss());
  EXPECT_EQ(*s.ss(), Dim::kCout);
  EXPECT_EQ(s.reduction_ways(), 1);  // no All-Reduce
  EXPECT_TRUE(s.fits(kConv, 2));
}

TEST(Strategy, RejectsMalformedInput) {
  EXPECT_THROW(Strategy({{Dim::kW, 1}}, std::nullopt), InvalidArgument);
  EXPECT_THROW(Strategy({{Dim::kW, 2}, {Dim::kW, 2}}, std::nullopt),
               InvalidArgument);
  EXPECT_THROW(Strategy({{Dim::kW, 2}}, Dim::kW), InvalidArgument);
}

TEST(Strategy, FitsChecksExtents) {
  // Kh = 3 cannot be split 4 ways.
  const Strategy bad({{Dim::kKh, 4}}, std::nullopt);
  EXPECT_FALSE(bad.fits(kConv, 4));
  // SS dim must host p shards: H = 4 with p = 8 fails.
  const Strategy ss_bad({{Dim::kCout, 8}}, Dim::kH);
  EXPECT_FALSE(ss_bad.fits(kTiny, 8));
}

TEST(Strategy, WaysOfLookup) {
  const Strategy s({{Dim::kCout, 4}, {Dim::kH, 2}}, Dim::kW);
  EXPECT_EQ(s.ways_of(Dim::kCout), 4);
  EXPECT_EQ(s.ways_of(Dim::kH), 2);
  EXPECT_EQ(s.ways_of(Dim::kW), 1);  // SS does not count as ES ways
}

TEST(Strategy, ToStringPaperStyle) {
  const Strategy s({{Dim::kCin, 2}, {Dim::kW, 2}}, std::nullopt);
  EXPECT_EQ(s.to_string(), "ES={Cin,W}, SS={}");
  const Strategy t({{Dim::kW, 2}}, Dim::kCout);
  EXPECT_EQ(t.to_string(), "ES={W:2}, SS={Cout}");
  const Strategy u({{Dim::kCout, 4}, {Dim::kH, 2}}, std::nullopt);
  EXPECT_EQ(u.to_string(), "ES={Cout:4,H}, SS={}");
}

TEST(Factorizations, KnownCases) {
  EXPECT_EQ(factorizations(2), (std::vector<std::vector<int>>{{2}}));
  EXPECT_EQ(factorizations(4), (std::vector<std::vector<int>>{{4}, {2, 2}}));
  EXPECT_EQ(factorizations(8),
            (std::vector<std::vector<int>>{{8}, {4, 2}, {2, 2, 2}}));
  EXPECT_EQ(factorizations(6), (std::vector<std::vector<int>>{{6}, {3, 2}}));
  EXPECT_EQ(factorizations(7), (std::vector<std::vector<int>>{{7}}));
}

TEST(Factorizations, RespectsMaxDims) {
  EXPECT_EQ(factorizations(8, 2), (std::vector<std::vector<int>>{{8}, {4, 2}}));
  EXPECT_EQ(factorizations(16, 2),
            (std::vector<std::vector<int>>{{16}, {8, 2}, {4, 4}}));
}

TEST(Enumerate, SingleAcceleratorIsDefaultOnly) {
  const std::vector<Strategy> all = enumerate_strategies(kConv, 1);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all.front().es_ways(), 1);
}

TEST(Enumerate, AllValidAndUnique) {
  const std::vector<Strategy> all = enumerate_strategies(kConv, 4);
  EXPECT_GT(all.size(), 20u);
  std::set<std::string> seen;
  for (const Strategy& s : all) {
    EXPECT_TRUE(s.fits(kConv, 4)) << s.to_string();
    EXPECT_TRUE(seen.insert(s.to_string()).second) << "dup " << s.to_string();
  }
}

TEST(Enumerate, PaperCountsForTwoDimES) {
  // The paper: C(6,2) = 15 two-dim ES choices; with one SS dim on top of a
  // two-dim ES there are 15 * 4 combinations (SS from the remaining dims,
  // subject to extent limits). Use a shape big enough in every dim so only
  // the kernel dims (3 < 4) constrain splitting.
  const graph::ConvShape big{64, 64, 64, 64, 8, 8, 1, 1};
  const std::vector<Strategy> all = enumerate_strategies(big, 4, 2);
  int es_two_dims_no_ss = 0;
  for (const Strategy& s : all) {
    if (s.es().size() == 2 && !s.has_ss()) ++es_two_dims_no_ss;
  }
  EXPECT_EQ(es_two_dims_no_ss, 15);
}

TEST(Enumerate, SkipsOversizedSplits) {
  // Kernel dims (3) cannot take a 4-way split.
  for (const Strategy& s : enumerate_strategies(kConv, 4)) {
    EXPECT_LE(s.ways_of(Dim::kKh), 3) << s.to_string();
    EXPECT_LE(s.ways_of(Dim::kKw), 3) << s.to_string();
  }
}

TEST(Enumerate, TinyLayerStillSplittable) {
  const std::vector<Strategy> all = enumerate_strategies(kTiny, 8);
  EXPECT_FALSE(all.empty());
  for (const Strategy& s : all) {
    EXPECT_TRUE(s.fits(kTiny, 8));
  }
}

TEST(Enumerate, DeterministicOrder) {
  const std::vector<Strategy> a = enumerate_strategies(kConv, 4);
  const std::vector<Strategy> b = enumerate_strategies(kConv, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

class EnumerateParam : public ::testing::TestWithParam<int> {};

TEST_P(EnumerateParam, EsWaysAlwaysEqualP) {
  const int p = GetParam();
  for (const Strategy& s : enumerate_strategies(kConv, p)) {
    EXPECT_EQ(s.es_ways(), p) << s.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(SetSizes, EnumerateParam, ::testing::Values(2, 3, 4, 6, 8));

}  // namespace
}  // namespace mars::parallel
