#include "mars/parallel/sharding.h"

#include <gtest/gtest.h>

#include "mars/util/error.h"

namespace mars::parallel {
namespace {

using graph::ConvShape;
using graph::DataType;

const ConvShape kConv{64, 32, 28, 28, 3, 3, 1, 1};
const DataType kDt = DataType::kFix16;

TEST(Sharding, DefaultPlanSingleAccelerator) {
  const ShardingPlan plan = make_plan(kConv, kDt, Strategy{}, 1);
  EXPECT_EQ(plan.p, 1);
  EXPECT_EQ(plan.phases, 1);
  EXPECT_EQ(plan.local, kConv);
  EXPECT_EQ(plan.allreduce_group, 1);
  EXPECT_DOUBLE_EQ(plan.ring_hop_bytes.count(), 0.0);
  EXPECT_DOUBLE_EQ(plan.weight_resident.count(),
                   kConv.weight_bytes(kDt).count());
}

TEST(Sharding, Figure2bTwoByTwoGrid) {
  // ES = {Cin, W} on 4 accelerators: loop bounds halve on Cin and W,
  // partial sums All-Reduce in groups of 2.
  const Strategy s({{Dim::kCin, 2}, {Dim::kW, 2}}, std::nullopt);
  const ShardingPlan plan = make_plan(kConv, kDt, s, 4);

  EXPECT_EQ(plan.phases, 1);
  EXPECT_EQ(plan.local.cin, 16);
  EXPECT_EQ(plan.local.ow, 14);
  EXPECT_EQ(plan.local.cout, 64);
  EXPECT_EQ(plan.local.oh, 28);
  EXPECT_EQ(plan.allreduce_group, 2);
  // Each reduce subgroup shares an output W-half: Cout x H x W/2.
  EXPECT_DOUBLE_EQ(plan.allreduce_bytes.count(), 64.0 * 28 * 14 * 2);
  // Each accelerator holds a quarter of the input and half of the weights
  // (the paper's description of Fig. 2(b)).
  EXPECT_DOUBLE_EQ(plan.input_live.count(), kConv.in_bytes(kDt).count() / 4);
  EXPECT_DOUBLE_EQ(plan.weight_resident.count(),
                   kConv.weight_bytes(kDt).count() / 2);
}

TEST(Sharding, Figure2cExclusivePlusShared) {
  // ES = {W}, SS = {Cout} on 2 accelerators: 2 phases, weight shards
  // rotate, output accumulates all Cout.
  const Strategy s({{Dim::kW, 2}}, Dim::kCout);
  const ShardingPlan plan = make_plan(kConv, kDt, s, 2);

  EXPECT_EQ(plan.phases, 2);
  EXPECT_FALSE(plan.rotate_input);
  EXPECT_EQ(plan.local.ow, 14);
  EXPECT_EQ(plan.local.cout, 32);  // Cout / p per phase
  // Rotating shard: half the weights.
  EXPECT_DOUBLE_EQ(plan.ring_hop_bytes.count(),
                   kConv.weight_bytes(kDt).count() / 2);
  EXPECT_EQ(plan.allreduce_group, 1);
  // Weight residency: rotating shard double-buffered = 2 * W/2 = W ... per
  // the es_w=1 case: 2/(1*2) = full weight bytes.
  EXPECT_DOUBLE_EQ(plan.weight_resident.count(),
                   kConv.weight_bytes(kDt).count());
  // Output: each accelerator eventually holds all Cout of its W half.
  EXPECT_DOUBLE_EQ(plan.output_live.count(), kConv.out_bytes(kDt).count() / 2);
  // Produced layout is sharded along W only (SS leaves Cout whole).
  EXPECT_EQ(plan.produced.w_ways, 2);
  EXPECT_EQ(plan.produced.c_ways, 1);
}

TEST(Sharding, SpatialSsRotatesInput) {
  const Strategy s({{Dim::kCout, 2}}, Dim::kH);
  const ShardingPlan plan = make_plan(kConv, kDt, s, 2);
  EXPECT_TRUE(plan.rotate_input);
  EXPECT_EQ(plan.phases, 2);
  EXPECT_DOUBLE_EQ(plan.ring_hop_bytes.count(), kConv.in_bytes(kDt).count() / 2);
  // Input lives as a double-buffered rotating shard.
  EXPECT_DOUBLE_EQ(plan.input_live.count(), kConv.in_bytes(kDt).count());
  // Required input layout: H p-way distributed at entry.
  EXPECT_EQ(plan.required.h_ways, 2);
}

TEST(Sharding, CinSsAccumulatesLocallyNoAllReduce) {
  const Strategy s({{Dim::kW, 2}}, Dim::kCin);
  const ShardingPlan plan = make_plan(kConv, kDt, s, 2);
  // SS on a reduction dim: rotation serialises the reduction.
  EXPECT_EQ(plan.allreduce_group, 1);
  EXPECT_FALSE(plan.rotate_input);  // weights rotate for Cin
  EXPECT_EQ(plan.local.cin, 16);
  EXPECT_EQ(plan.required.c_ways, 2);
}

TEST(Sharding, ReductionEsTriggersAllReduce) {
  const Strategy s({{Dim::kCin, 4}}, std::nullopt);
  const ShardingPlan plan = make_plan(kConv, kDt, s, 4);
  EXPECT_EQ(plan.allreduce_group, 4);
  // All 4 share the full output.
  EXPECT_DOUBLE_EQ(plan.allreduce_bytes.count(), kConv.out_bytes(kDt).count());
}

TEST(Sharding, CeilSplitLoopBounds) {
  // H = 28 split 8 ways -> ceil = 4.
  const Strategy s({{Dim::kH, 8}}, std::nullopt);
  const ShardingPlan plan = make_plan(kConv, kDt, s, 8);
  EXPECT_EQ(plan.local.oh, 4);
}

TEST(Sharding, KernelSplitBehavesLikeReduction) {
  const Strategy s({{Dim::kKh, 3}}, std::nullopt);
  const ShardingPlan plan = make_plan(kConv, kDt, s, 3);
  EXPECT_EQ(plan.local.kh, 1);
  EXPECT_EQ(plan.allreduce_group, 3);
}

TEST(Sharding, MemoryScalesDownWithMoreAccelerators) {
  const Strategy s2({{Dim::kCout, 2}}, std::nullopt);
  const Strategy s4({{Dim::kCout, 4}}, std::nullopt);
  const ShardingPlan p2 = make_plan(kConv, kDt, s2, 2);
  const ShardingPlan p4 = make_plan(kConv, kDt, s4, 4);
  EXPECT_LT(p4.weight_resident.count(), p2.weight_resident.count());
  EXPECT_LT(p4.output_live.count(), p2.output_live.count());
}

TEST(Sharding, SsReducesWeightResidencyVsReplication) {
  // The paper's SS motivation: shared shards relieve the memory burden.
  const Strategy replicated({{Dim::kH, 4}}, std::nullopt);
  const Strategy shared({{Dim::kH, 4}}, Dim::kCout);
  const ShardingPlan rep = make_plan(kConv, kDt, replicated, 4);
  const ShardingPlan shr = make_plan(kConv, kDt, shared, 4);
  // Replicated: full weights everywhere. Shared: 2/p (double buffer).
  EXPECT_DOUBLE_EQ(rep.weight_resident.count(),
                   kConv.weight_bytes(kDt).count());
  EXPECT_DOUBLE_EQ(shr.weight_resident.count(),
                   kConv.weight_bytes(kDt).count() / 2);
}

TEST(Sharding, RejectsIllFittingStrategy) {
  const Strategy s({{Dim::kW, 2}}, std::nullopt);
  EXPECT_THROW((void)make_plan(kConv, kDt, s, 4), InvalidArgument);
  EXPECT_THROW((void)make_plan(kConv, kDt, Strategy{}, 0), InvalidArgument);
}

TEST(Sharding, TotalComputeCoversAllWork) {
  // Across all accelerators and phases, local loop bounds must cover the
  // full iteration space (ceil splits may overcover, never undercover).
  for (const Strategy& s : enumerate_strategies(kConv, 4)) {
    const ShardingPlan plan = make_plan(kConv, kDt, s, 4);
    const double covered = plan.local.macs() * plan.p * plan.phases;
    EXPECT_GE(covered, kConv.macs()) << s.to_string();
  }
}

TEST(Sharding, ProducedLayoutNeverCountsSsOrReduction) {
  for (const Strategy& s : enumerate_strategies(kConv, 8)) {
    const ShardingPlan plan = make_plan(kConv, kDt, s, 8);
    EXPECT_EQ(plan.produced.c_ways, s.ways_of(Dim::kCout)) << s.to_string();
    EXPECT_EQ(plan.produced.h_ways, s.ways_of(Dim::kH)) << s.to_string();
    EXPECT_EQ(plan.produced.w_ways, s.ways_of(Dim::kW)) << s.to_string();
  }
}

}  // namespace
}  // namespace mars::parallel
