// The explore determinism contract (docs/EXPLORE.md): exported fronts
// are byte-identical across thread counts, across repeat runs, and
// between cold and warm mapping caches. Anything that varies per run
// (wall clock, cache hit counts) is excluded from the exports by
// construction — these tests pin that the exclusion actually holds.
#include <algorithm>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "mars/explore/engine.h"
#include "mars/serve/cache.h"

namespace mars::explore {
namespace {

ExploreConfig tiny_config(int threads = 1) {
  ExploreConfig config;
  config.model = "alexnet";
  config.space =
      DesignSpace::parse("families=clique,ring;accs=2,4;bw=8;menus=solo");
  config.tuning.first_ga.population = 4;
  config.tuning.first_ga.generations = 2;
  config.tuning.second.ga.population = 4;
  config.tuning.second.ga.generations = 2;
  config.search_evaluations = 64;
  config.population = 4;
  config.generations = 2;
  config.threads = threads;
  config.front_size = 4;
  return config;
}

struct Exports {
  std::string csv;
  std::string json;
  long long cache_hits = 0;
};

Exports run(const ExploreConfig& config,
            const serve::MappingCache* cache = nullptr) {
  const ExploreResult result = ExploreEngine(config).search(cache);
  return {front_csv(result, config), front_json(result, config),
          result.cache_hits};
}

TEST(ExploreDeterminism, ByteIdenticalAcrossThreadCounts) {
  const Exports one = run(tiny_config(1));
  const Exports four = run(tiny_config(4));
  EXPECT_EQ(one.csv, four.csv);
  EXPECT_EQ(one.json, four.json);
}

TEST(ExploreDeterminism, ByteIdenticalAcrossRepeatRuns) {
  const Exports a = run(tiny_config());
  const Exports b = run(tiny_config());
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.json, b.json);
}

TEST(ExploreDeterminism, ByteIdenticalColdVersusWarmCache) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "mars-explore-cache";
  std::filesystem::remove_all(dir);
  {
    const serve::MappingCache cache(dir.string());
    const Exports cold = run(tiny_config(), &cache);
    EXPECT_EQ(cold.cache_hits, 0);

    const Exports warm = run(tiny_config(), &cache);
    EXPECT_GT(warm.cache_hits, 0);
    EXPECT_EQ(cold.csv, warm.csv);
    EXPECT_EQ(cold.json, warm.json);

    // Warm at a different thread count, against the uncached baseline.
    const Exports warm4 = run(tiny_config(4), &cache);
    EXPECT_EQ(cold.csv, warm4.csv);

    const Exports uncached = run(tiny_config());
    EXPECT_EQ(uncached.csv, cold.csv);
    EXPECT_EQ(uncached.json, cold.json);
  }
  std::filesystem::remove_all(dir);
}

TEST(ExploreDeterminism, FrontSizeTruncatesExportsOnly) {
  // front_size shapes the exports, not the search: the unbounded front
  // and the priced set are unchanged.
  ExploreConfig full = tiny_config();
  full.front_size = 0;
  ExploreConfig truncated = tiny_config();
  truncated.front_size = 1;
  const ExploreResult a = ExploreEngine(full).search();
  const ExploreResult b = ExploreEngine(truncated).search();
  EXPECT_EQ(a.front.size(), b.front.size());
  EXPECT_EQ(a.provenance.evaluations, b.provenance.evaluations);
  // One header line + one point line.
  const std::string csv = front_csv(b, truncated);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

}  // namespace
}  // namespace mars::explore
