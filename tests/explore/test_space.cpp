// DesignSpace grammar, enumeration determinism, and the built artifacts.
// The named-error assertions pin the PR 3 usage-error convention the CLI
// satellite relies on: every rejection names the axis/flag and the
// offending value.
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "mars/accel/registry.h"
#include "mars/explore/objective.h"
#include "mars/explore/space.h"
#include "mars/util/error.h"

namespace mars::explore {
namespace {

/// EXPECT_THROW + message-substring check in one place.
template <typename Fn>
void expect_error(Fn fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected InvalidArgument mentioning '" << needle << "'";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(DesignSpace, DefaultSpecRoundTrips) {
  const DesignSpace space = DesignSpace::default_space();
  EXPECT_EQ(DesignSpace::parse(space.spec()).spec(), space.spec());
  // An empty spec means "all defaults".
  EXPECT_EQ(DesignSpace::parse("").spec(), space.spec());
  // Axis order in the input does not matter; the canonical spec is fixed.
  EXPECT_EQ(DesignSpace::parse("menus=full,solo;bw=2,8,16;accs=2,4,8;"
                               "families=clique,ring,grouped2")
                .spec(),
            space.spec());
}

TEST(DesignSpace, EnumerationIsPresetPrefixPlusRowMajorGrid) {
  const DesignSpace space =
      DesignSpace::parse("families=clique;accs=2,4;bw=8;menus=full");
  ASSERT_EQ(space.num_presets(), 2);
  EXPECT_TRUE(space.points()[0].preset);
  EXPECT_EQ(space.points()[0].family, "f1");
  EXPECT_TRUE(space.points()[1].preset);
  EXPECT_EQ(space.points()[1].family, "clique");
  // Grid: 1 family x 2 accs x 1 bw x 1 menu.
  ASSERT_EQ(space.points().size(), 4u);
  EXPECT_EQ(space.points()[2].spec(),
            "clique:2@8/SuperLIP+SystolicGEMM+WinogradF43");
  EXPECT_EQ(space.points()[3].spec(),
            "clique:4@8/SuperLIP+SystolicGEMM+WinogradF43");
  // index_of and coords_of are inverses over the grid.
  for (int index = space.num_presets();
       index < static_cast<int>(space.points().size()); ++index) {
    EXPECT_EQ(space.index_of(space.coords_of(index)), index);
  }
}

TEST(DesignSpace, MenuTokensExpandAndCanonicalise) {
  const DesignSpace solo = DesignSpace::parse("families=clique;accs=2;bw=8;"
                                              "menus=solo");
  // solo: one menu per design, 3 grid points.
  EXPECT_EQ(solo.points().size(), 2u + 3u);
  const DesignSpace pairs = DesignSpace::parse("families=clique;accs=2;bw=8;"
                                               "menus=pairs");
  EXPECT_EQ(pairs.points().size(), 2u + 3u);
  // Explicit lists canonicalise to registry order and dedupe against
  // named expansions.
  const DesignSpace mixed = DesignSpace::parse(
      "families=clique;accs=2;bw=8;menus=WinogradF43+SuperLIP,solo");
  EXPECT_NE(mixed.spec().find("menus=SuperLIP+WinogradF43,"),
            std::string::npos);
}

TEST(DesignSpace, NamedErrors) {
  expect_error([] { (void)DesignSpace::parse("families=torus"); },
               "families must be clique, ring or grouped2, got 'torus'");
  expect_error([] { (void)DesignSpace::parse("accs=1"); },
               "accs must be an integer in [2, 32], got '1'");
  expect_error([] { (void)DesignSpace::parse("accs=two"); },
               "accs must be an integer in [2, 32], got 'two'");
  expect_error([] { (void)DesignSpace::parse("bw=-4"); },
               "bw must be a positive Gb/s value, got '-4'");
  expect_error([] { (void)DesignSpace::parse("menus=mystery"); },
               "got 'mystery'");
  expect_error([] { (void)DesignSpace::parse("menus=SuperLIP+SuperLIP"); },
               "lists design 'SuperLIP' twice");
  expect_error([] { (void)DesignSpace::parse("cores=4"); },
               "axis must be families, accs, bw or menus, got 'cores'");
  expect_error([] { (void)DesignSpace::parse("nonsense"); },
               "axis=value");
  expect_error([] { (void)DesignSpace::parse("families=grouped2;accs=3,4"); },
               "grouped2 requires even accs, got 3");
}

TEST(DesignSpace, BuildShapesMatchThePointSpec) {
  const DesignSpace space = DesignSpace::default_space();
  const BuiltPoint clique =
      space.build({"clique", 4, 16.0, accel::table2_design_names(), false});
  EXPECT_EQ(clique.topo.size(), 4);
  EXPECT_EQ(clique.designs.size(), 3);
  EXPECT_DOUBLE_EQ(clique.topo.link(0, 3).gbps(), 16.0);

  const BuiltPoint solo = space.build({"ring", 4, 8.0, {"SystolicGEMM"}, false});
  EXPECT_EQ(solo.designs.size(), 1);
  EXPECT_EQ(solo.designs.design(0).name(), "SystolicGEMM");
  // Ring: adjacent linked, opposite corners not.
  EXPECT_GT(solo.topo.link(0, 1).gbps(), 0.0);
  EXPECT_DOUBLE_EQ(solo.topo.link(0, 2).gbps(), 0.0);

  const BuiltPoint f1 =
      space.build({"f1", 8, 8.0, accel::table2_design_names(), true});
  EXPECT_EQ(f1.topo.size(), 8);
}

TEST(Objectives, ParseAndSpec) {
  const std::vector<Objective> all = parse_objectives("makespan,energy,cost");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(objectives_spec(all), "makespan+energy+cost");
  // Order is preserved.
  EXPECT_EQ(objectives_spec(parse_objectives("cost,makespan")),
            "cost+makespan");
}

TEST(Objectives, NamedErrors) {
  expect_error([] { (void)parse_objectives("makespan,latency"); },
               "must be a comma-separated subset of makespan, energy, cost, "
               "got 'latency'");
  expect_error([] { (void)parse_objectives("cost,cost"); },
               "objectives list names 'cost' twice");
  expect_error([] { (void)parse_objectives(""); }, "objectives list is empty");
}

TEST(Objectives, HardwareCostClosedForm) {
  const DesignSpace space = DesignSpace::default_space();
  const BuiltPoint built =
      space.build({"clique", 4, 16.0, accel::table2_design_names(), false});
  double worst_area = 0.0;
  for (const accel::DesignId id : built.designs.ids()) {
    worst_area = std::max(worst_area, built.designs.design(id).area_cost());
  }
  // 4 cards x (base + worst area) + 6 direct links x 16 Gb/s x rate.
  const double expected =
      4.0 * (kCardBaseCost + worst_area) + 6.0 * 16.0 * kLinkCostPerGbps;
  EXPECT_DOUBLE_EQ(hardware_cost(built), expected);
  // More provisioned bandwidth costs strictly more.
  const BuiltPoint slower =
      space.build({"clique", 4, 8.0, accel::table2_design_names(), false});
  EXPECT_LT(hardware_cost(slower), hardware_cost(built));
}

}  // namespace
}  // namespace mars::explore
