// Dominance property-test harness: the Front archive fuzzed with seeded
// random objective streams (tests/support/front_stream.h).
//
// The streams draw from a coarse value grid, so ties, duplicate vectors
// and dominance chains occur constantly — the regime where an archive
// can get eviction or order-dependence wrong. Each property runs over
// hundreds of (seed, length, arity, levels) combinations; a failure
// names the stream spec, so any counterexample replays exactly.
#include <algorithm>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "mars/explore/front.h"
#include "mars/util/error.h"
#include "mars/util/rng.h"
#include "support/front_stream.h"

namespace mars::explore {
namespace {

using mars::testing::FrontStreamSpec;
using mars::testing::front_stream;

std::string describe(const FrontStreamSpec& spec) {
  std::ostringstream os;
  os << "stream seed=" << spec.seed << " length=" << spec.length
     << " arity=" << spec.arity << " levels=" << spec.levels;
  return os.str();
}

/// The fuzz matrix: >= 500 distinct streams across arities and tie
/// densities. Kept small per stream so the whole suite stays fast.
std::vector<FrontStreamSpec> fuzz_specs() {
  std::vector<FrontStreamSpec> specs;
  for (const int arity : {2, 3}) {
    for (const int levels : {2, 4, 9}) {
      for (const int length : {8, 33}) {
        for (std::uint64_t seed = 1; seed <= 43; ++seed) {
          specs.push_back({seed, length, arity, levels});
        }
      }
    }
  }
  return specs;
}

Front insert_all(const std::vector<FrontPoint>& points, int arity) {
  Front front(arity);
  for (const FrontPoint& point : points) (void)front.insert(point);
  return front;
}

TEST(FrontProperties, FuzzMatrixIsLargeEnough) {
  EXPECT_GE(fuzz_specs().size(), 500u);
}

TEST(FrontProperties, MembersAreMutuallyNonDominated) {
  for (const FrontStreamSpec& spec : fuzz_specs()) {
    SCOPED_TRACE(describe(spec));
    const std::vector<FrontPoint> front =
        insert_all(front_stream(spec), spec.arity).points();
    for (const FrontPoint& a : front) {
      for (const FrontPoint& b : front) {
        EXPECT_FALSE(dominates(a, b))
            << a.key << " dominates fellow member " << b.key;
      }
    }
  }
}

TEST(FrontProperties, NoInsertedPointDominatesAMember) {
  // Stronger than mutual non-domination: not even a *rejected or
  // evicted* point may dominate a surviving member (transitivity of the
  // partial order — the front is the maximal-element set of everything
  // ever offered).
  for (const FrontStreamSpec& spec : fuzz_specs()) {
    SCOPED_TRACE(describe(spec));
    const std::vector<FrontPoint> stream = front_stream(spec);
    const std::vector<FrontPoint> front =
        insert_all(stream, spec.arity).points();
    for (const FrontPoint& offered : stream) {
      for (const FrontPoint& member : front) {
        EXPECT_FALSE(dominates(offered, member))
            << offered.key << " dominates member " << member.key;
      }
    }
  }
}

TEST(FrontProperties, EveryNonMemberIsDominated) {
  // Completeness: a point absent from the front was beaten by someone
  // still on it (nothing is dropped "for free").
  for (const FrontStreamSpec& spec : fuzz_specs()) {
    SCOPED_TRACE(describe(spec));
    const std::vector<FrontPoint> stream = front_stream(spec);
    const std::vector<FrontPoint> front =
        insert_all(stream, spec.arity).points();
    for (const FrontPoint& offered : stream) {
      const bool member =
          std::any_of(front.begin(), front.end(), [&](const FrontPoint& m) {
            return m.key == offered.key && m.objectives == offered.objectives;
          });
      if (member) continue;
      const bool beaten =
          std::any_of(front.begin(), front.end(), [&](const FrontPoint& m) {
            return dominates(m, offered);
          });
      EXPECT_TRUE(beaten) << offered.key
                          << " is neither on the front nor dominated";
    }
  }
}

TEST(FrontProperties, PermutationInvariance) {
  // The canonical front is a pure function of the *set* of points: any
  // insertion order yields byte-identical points().
  for (const FrontStreamSpec& spec : fuzz_specs()) {
    SCOPED_TRACE(describe(spec));
    const std::vector<FrontPoint> stream = front_stream(spec);
    const std::vector<FrontPoint> reference =
        insert_all(stream, spec.arity).points();

    std::vector<FrontPoint> shuffled = stream;
    Rng rng(spec.seed * 7919 + 13);
    rng.shuffle(shuffled);
    const std::vector<FrontPoint> permuted =
        insert_all(shuffled, spec.arity).points();

    ASSERT_EQ(reference.size(), permuted.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(reference[i].key, permuted[i].key);
      EXPECT_EQ(reference[i].objectives, permuted[i].objectives);
    }
  }
}

TEST(FrontProperties, RejectedInsertLeavesArchiveUnchanged) {
  for (const FrontStreamSpec& spec : fuzz_specs()) {
    SCOPED_TRACE(describe(spec));
    Front front(spec.arity);
    for (const FrontPoint& point : front_stream(spec)) {
      const std::vector<FrontPoint> before = front.points();
      if (front.insert(point)) continue;
      const std::vector<FrontPoint> after = front.points();
      ASSERT_EQ(before.size(), after.size());
      for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].key, after[i].key);
      }
    }
  }
}

TEST(FrontProperties, TopIsDeterministicSubsetWithBoundedSize) {
  for (const FrontStreamSpec& spec : fuzz_specs()) {
    SCOPED_TRACE(describe(spec));
    const Front front = insert_all(front_stream(spec), spec.arity);
    const std::vector<FrontPoint> all = front.points();
    for (const int n : {1, 2, 5}) {
      const std::vector<FrontPoint> kept = front.top(n);
      EXPECT_LE(kept.size(), static_cast<std::size_t>(n));
      EXPECT_EQ(kept.size(),
                std::min(all.size(), static_cast<std::size_t>(n)));
      for (const FrontPoint& k : kept) {
        EXPECT_TRUE(std::any_of(all.begin(), all.end(),
                                [&](const FrontPoint& m) {
                                  return m.key == k.key;
                                }))
            << k.key << " not in the unbounded front";
      }
      // Repeatable: truncation is read-only and deterministic.
      const std::vector<FrontPoint> again = front.top(n);
      ASSERT_EQ(kept.size(), again.size());
      for (std::size_t i = 0; i < kept.size(); ++i) {
        EXPECT_EQ(kept[i].key, again[i].key);
      }
    }
    // top(0) means unbounded.
    EXPECT_EQ(front.top(0).size(), all.size());
  }
}

TEST(FrontProperties, HypervolumeMonotoneUnderInsertion) {
  // Growing the archive can only grow (never shrink) the dominated
  // volume — inserts that fail leave it unchanged, successful inserts
  // add region.
  for (const FrontStreamSpec& spec : fuzz_specs()) {
    SCOPED_TRACE(describe(spec));
    // Reference beyond the generator grid: values are level*(m+1) with
    // level <= levels.
    std::vector<double> ref;
    for (int m = 0; m < spec.arity; ++m) {
      ref.push_back(static_cast<double>((spec.levels + 1) * (m + 1)));
    }
    Front front(spec.arity);
    double previous = 0.0;
    for (const FrontPoint& point : front_stream(spec)) {
      (void)front.insert(point);
      const double volume = hypervolume(front.points(), ref);
      EXPECT_GE(volume, previous - 1e-12);
      previous = volume;
    }
  }
}

TEST(Hypervolume, ClosedFormChecks) {
  // Single point in 2-D: the rectangle to the reference.
  EXPECT_DOUBLE_EQ(hypervolume({{"a", {1.0, 2.0}}}, {3.0, 4.0}), 2.0 * 2.0);
  // Two non-dominated points: staircase union, overlap not double-counted.
  EXPECT_DOUBLE_EQ(
      hypervolume({{"a", {1.0, 3.0}}, {"b", {2.0, 1.0}}}, {4.0, 4.0}),
      3.0 * 1.0 + 2.0 * 3.0 - 2.0 * 1.0);
  // Single point in 3-D: the box volume.
  EXPECT_DOUBLE_EQ(hypervolume({{"a", {1.0, 1.0, 1.0}}}, {2.0, 3.0, 4.0}),
                   1.0 * 2.0 * 3.0);
  // A point outside the reference box contributes nothing.
  EXPECT_DOUBLE_EQ(hypervolume({{"a", {5.0, 1.0}}}, {4.0, 4.0}), 0.0);
  // Dominated points add nothing the dominator has not already claimed.
  EXPECT_DOUBLE_EQ(
      hypervolume({{"a", {1.0, 1.0}}, {"b", {2.0, 2.0}}}, {4.0, 4.0}),
      hypervolume({{"a", {1.0, 1.0}}}, {4.0, 4.0}));
}

TEST(FrontValidation, ArityIsEnforced) {
  Front front(2);
  EXPECT_THROW((void)front.insert({"bad", {1.0, 2.0, 3.0}}), InvalidArgument);
  EXPECT_THROW((void)Front(0), InvalidArgument);
  EXPECT_THROW((void)dominates({"a", {1.0}}, {"b", {1.0, 2.0}}),
               InvalidArgument);
  EXPECT_THROW((void)hypervolume({{"a", {1.0}}}, {2.0, 2.0, 2.0, 2.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace mars::explore
