// Golden-front regression tests: the full front_csv export for small zoo
// models over a fixed preset space, pinned byte for byte (mirroring
// tests/core/test_golden_makespans.cpp). Any change to the design space
// enumeration, the energy/cost models, the inner search, the NSGA loop
// or the CSV formatting shifts these strings and must be reviewed (and
// the goldens regenerated) deliberately. Regenerate with:
//   MARS_REGEN_GOLDENS=1 ./mars_test_explore --gtest_filter='*Golden*'
// and paste the printed literals over kGoldens.
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "mars/explore/engine.h"

namespace mars::explore {
namespace {

/// The fixed golden scenario: a small two-family space priced by a tiny
/// fixed-seed inner GA. Exact-match pinning (not a tolerance) is safe
/// for the same reason the CSV export is: every number passes through
/// the same %.9g rendering on every platform we build on.
ExploreConfig golden_config(const std::string& model) {
  ExploreConfig config;
  config.model = model;
  config.space = DesignSpace::parse("families=clique,ring;accs=2,4;bw=8;"
                                    "menus=full,solo");
  config.tuning.seed = 2023;
  config.tuning.first_ga.population = 6;
  config.tuning.first_ga.generations = 3;
  config.tuning.first_ga.stall_generations = 2;
  config.tuning.second.ga.population = 4;
  config.tuning.second.ga.generations = 2;
  config.search_evaluations = 96;
  config.population = 6;
  config.generations = 3;
  config.seed = 2023;
  config.front_size = 0;
  return config;
}

std::string golden_csv(const std::string& model) {
  const ExploreConfig config = golden_config(model);
  const ExploreResult result = ExploreEngine(config).search();
  return front_csv(result, config);
}

struct Golden {
  const char* model;
  const char* csv;
};

// Generated via MARS_REGEN_GOLDENS — see the header comment.
constexpr Golden kGoldens[] = {
    {"alexnet",
     "point,family,accelerators,link_gbps,menu,makespan_ms,energy_mj,cost,sets,mapping,engine\nclique:8@4/SuperLIP+SystolicGEMM+WinogradF43,clique,8,4,SuperLIP+SystolicGEMM+WinogradF43,2.84712644,11.163036,19.24,1,45c7377fe418a2b6,ga\nring:4@8/SystolicGEMM,ring,4,8,SystolicGEMM,4.07944775,11.163036,9.10875,1,2eb9320896086172,ga\nring:4@8/SuperLIP,ring,4,8,SuperLIP,4.94698375,8.01577179,8.14,1,5fd33bdfc425f766,ga\nclique:2@8/SystolicGEMM,clique,2,8,SystolicGEMM,6.623048,11.163036,4.394375,1,94fcbc9c6d58222a,ga\nclique:2@8/SuperLIP,clique,2,8,SuperLIP,8.376968,8.01577179,3.91,1,a2fc29a7c6f68ff3,ga\nring:2@8/SuperLIP,ring,2,8,SuperLIP,8.376968,8.01577179,3.91,1,a2fc29a7c6f68ff3,ga\nring:4@8/WinogradF43,ring,4,8,WinogradF43,8.55529575,6.59501203,9.14,1,e6597e31b41bda52,ga\nclique:2@8/WinogradF43,clique,2,8,WinogradF43,15.207384,6.59501203,4.41,1,85e99f0e2c5577a0,ga\n"},
    {"resnet18",
     "point,family,accelerators,link_gbps,menu,makespan_ms,energy_mj,cost,sets,mapping,engine\nclique:8@4/SuperLIP+SystolicGEMM+WinogradF43,clique,8,4,SuperLIP+SystolicGEMM+WinogradF43,4.77515663,18.507738,19.24,1,752a0be179889f4a,ga\nf1:8@8/SuperLIP+SystolicGEMM+WinogradF43,f1,8,8,SuperLIP+SystolicGEMM+WinogradF43,6.74288375,18.507738,18.92,1,16bfb46fee61f5c2,ga\nring:4@8/SuperLIP,ring,4,8,SuperLIP,9.61942775,9.20182001,8.14,1,d9026861f23c7928,ga\nclique:2@8/SuperLIP+SystolicGEMM+WinogradF43,clique,2,8,SuperLIP+SystolicGEMM+WinogradF43,11.4923607,18.507738,4.41,1,233dd42aa174ceb6,ga\nring:2@8/SuperLIP+SystolicGEMM+WinogradF43,ring,2,8,SuperLIP+SystolicGEMM+WinogradF43,11.4923607,18.507738,4.41,1,233dd42aa174ceb6,ga\nring:4@8/WinogradF43,ring,4,8,WinogradF43,16.5042357,5.87781696,9.14,1,80d0d856eae4351e,ga\nclique:2@8/SuperLIP,clique,2,8,SuperLIP,17.1455967,9.20182001,3.91,1,f9607bd326ee0ffc,ga\nring:2@8/SuperLIP,ring,2,8,SuperLIP,17.1455967,9.20182001,3.91,1,f9607bd326ee0ffc,ga\nclique:2@8/WinogradF43,clique,2,8,WinogradF43,30.9225248,5.87781696,4.41,1,ad129e763cc4b0ce,ga\n"},
};

TEST(GoldenFrontTest, SmallModelsMatchPinnedFronts) {
  const bool regen = std::getenv("MARS_REGEN_GOLDENS") != nullptr;
  if (regen) {
    for (const Golden& golden : kGoldens) {
      const std::string csv = golden_csv(golden.model);
      std::string escaped;
      for (const char c : csv) {
        if (c == '\n') {
          escaped += "\\n";
        } else {
          escaped += c;
        }
      }
      std::printf("    {\"%s\",\n     \"%s\"},\n", golden.model,
                  escaped.c_str());
    }
    GTEST_SKIP() << "golden regeneration run — paste the rows above";
  }

  for (const Golden& golden : kGoldens) {
    SCOPED_TRACE(golden.model);
    EXPECT_EQ(golden_csv(golden.model), std::string(golden.csv));
  }
}

}  // namespace
}  // namespace mars::explore
