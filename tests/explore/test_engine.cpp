// ExploreEngine behaviour: config validation, the never-lose preset
// contract, budget handling, and spec_string identity.
//
// Every search here uses a deliberately tiny space and a bounded inner
// engine — the point is the outer loop's contracts, not mapping quality.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mars/explore/engine.h"
#include "mars/util/error.h"

namespace mars::explore {
namespace {

/// Small everything: a 4-grid-point space and a severely budgeted inner
/// search keep each priced point cheap.
ExploreConfig tiny_config() {
  ExploreConfig config;
  config.model = "alexnet";
  config.space =
      DesignSpace::parse("families=clique;accs=2,4;bw=8;menus=solo");
  config.tuning.first_ga.population = 4;
  config.tuning.first_ga.generations = 2;
  config.tuning.second.ga.population = 4;
  config.tuning.second.ga.generations = 2;
  config.search_evaluations = 64;
  config.population = 4;
  config.generations = 2;
  return config;
}

TEST(ExploreEngine, ValidatesConfig) {
  ExploreConfig bad = tiny_config();
  bad.population = 1;
  EXPECT_THROW((void)ExploreEngine(bad), InvalidArgument);
  bad = tiny_config();
  bad.generations = 0;
  EXPECT_THROW((void)ExploreEngine(bad), InvalidArgument);
  bad = tiny_config();
  bad.mutation_rate = 1.5;
  EXPECT_THROW((void)ExploreEngine(bad), InvalidArgument);
  bad = tiny_config();
  bad.front_size = -1;
  EXPECT_THROW((void)ExploreEngine(bad), InvalidArgument);
  bad = tiny_config();
  bad.mapper = "mystery";
  EXPECT_THROW((void)ExploreEngine(bad), InvalidArgument);
  bad = tiny_config();
  bad.objectives.clear();
  EXPECT_THROW((void)ExploreEngine(bad), InvalidArgument);
}

TEST(ExploreEngine, SpecStringCoversKnobsButNotThreads) {
  const ExploreEngine base(tiny_config());
  ExploreConfig other = tiny_config();
  other.threads = 4;
  EXPECT_EQ(base.spec_string(), ExploreEngine(other).spec_string());

  other = tiny_config();
  other.seed = 99;
  EXPECT_NE(base.spec_string(), ExploreEngine(other).spec_string());
  other = tiny_config();
  other.objectives = {Objective::kMakespan, Objective::kCost};
  EXPECT_NE(base.spec_string(), ExploreEngine(other).spec_string());
  other = tiny_config();
  other.search_evaluations = 65;
  EXPECT_NE(base.spec_string(), ExploreEngine(other).spec_string());
}

TEST(ExploreEngine, FrontNeverLosesToAnyPreset) {
  const ExploreConfig config = tiny_config();
  const ExploreResult result = ExploreEngine(config).search();

  // Both presets were priced...
  int presets_seen = 0;
  for (const PointOutcome& outcome : result.outcomes) {
    if (outcome.point.preset) ++presets_seen;
  }
  EXPECT_EQ(presets_seen, config.space.num_presets());

  // ...and each is either on the (unbounded) front or dominated by a
  // member; no front member is beaten by a preset.
  const std::vector<FrontPoint> front = result.front.points();
  for (const PointOutcome& outcome : result.outcomes) {
    if (!outcome.point.preset) continue;
    const FrontPoint preset = outcome.front_point(config.objectives);
    bool on_front = false;
    bool beaten = false;
    for (const FrontPoint& member : front) {
      EXPECT_FALSE(dominates(preset, member))
          << "preset " << preset.key << " dominates member " << member.key;
      on_front = on_front || member.key == preset.key;
      beaten = beaten || dominates(member, preset);
    }
    EXPECT_TRUE(on_front || beaten) << preset.key << " unaccounted for";
  }
}

TEST(ExploreEngine, EvaluationBudgetStopsTheOuterLoop) {
  const ExploreConfig config = tiny_config();
  // Presets price before the poll; the budget then stops breeding.
  const ExploreResult result = ExploreEngine(config).search(
      nullptr, plan::Budget::evaluations(1));
  EXPECT_EQ(result.provenance.stopped, plan::StopReason::kEvaluationBudget);
  EXPECT_EQ(result.provenance.iterations, 0);
  // Generation 0 (presets + initial cohort) still priced in full — the
  // never-lose contract survives any budget.
  EXPECT_GE(result.provenance.evaluations, config.space.num_presets());
  int presets_seen = 0;
  for (const PointOutcome& outcome : result.outcomes) {
    if (outcome.point.preset) ++presets_seen;
  }
  EXPECT_EQ(presets_seen, config.space.num_presets());
}

TEST(ExploreEngine, PreCancelledBudgetStillPricesGenerationZero) {
  plan::CancelToken token;
  token.cancel();
  const ExploreResult result = ExploreEngine(tiny_config())
                                   .search(nullptr,
                                           plan::Budget::cancellable(token));
  EXPECT_EQ(result.provenance.stopped, plan::StopReason::kCancelled);
  EXPECT_EQ(result.provenance.iterations, 0);
  EXPECT_GT(result.front.size(), 0u);
}

TEST(ExploreEngine, UnbudgetedRunCompletesAllGenerations) {
  const ExploreConfig config = tiny_config();
  const ExploreResult result = ExploreEngine(config).search();
  EXPECT_EQ(result.provenance.stopped, plan::StopReason::kCompleted);
  EXPECT_EQ(result.provenance.iterations, config.generations);
  EXPECT_EQ(result.provenance.engine, "explore");
  // History: one hypervolume sample per generation plus generation 0,
  // non-decreasing (the archive only grows).
  ASSERT_EQ(result.history.size(),
            static_cast<std::size_t>(config.generations) + 1);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i], result.history[i - 1] - 1e-12);
  }
  // The tiny space has 2 presets + 4 grid points: the memo can never
  // price more than that many distinct points.
  EXPECT_LE(result.provenance.evaluations, 6);
  // Outcomes are distinct by point spec (memoised pricing).
  std::vector<std::string> specs;
  for (const PointOutcome& outcome : result.outcomes) {
    specs.push_back(outcome.point.spec());
  }
  std::sort(specs.begin(), specs.end());
  EXPECT_EQ(std::adjacent_find(specs.begin(), specs.end()), specs.end());
}

TEST(ExploreEngine, ObjectiveSubsetsChangeFrontArity) {
  ExploreConfig config = tiny_config();
  config.objectives = {Objective::kMakespan, Objective::kCost};
  const ExploreResult result = ExploreEngine(config).search();
  EXPECT_EQ(result.front.arity(), 2);
  for (const FrontPoint& member : result.front.points()) {
    EXPECT_EQ(member.objectives.size(), 2u);
  }
}

}  // namespace
}  // namespace mars::explore
