#include "mars/util/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mars/util/error.h"

namespace mars::util {
namespace {

TEST(WorkerPoolTest, RejectsNonPositiveThreadCounts) {
  EXPECT_THROW((void)WorkerPool(0), InvalidArgument);
  EXPECT_THROW((void)WorkerPool(-3), InvalidArgument);
}

TEST(WorkerPoolTest, ChunksPartitionTheRangeExactly) {
  // The documented determinism contract: contiguous, disjoint, covering.
  for (const int threads : {1, 2, 3, 4, 7}) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                                std::size_t{64}, std::size_t{65}}) {
      std::size_t expected_begin = 0;
      for (int w = 0; w < threads; ++w) {
        const auto [begin, end] = WorkerPool::chunk(n, threads, w);
        EXPECT_EQ(begin, expected_begin) << n << '/' << threads << '/' << w;
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n) << n << '/' << threads;
    }
  }
}

TEST(WorkerPoolTest, ParallelForCoversEveryIndexOnce) {
  for (const int threads : {1, 2, 4}) {
    WorkerPool pool(threads);
    const std::size_t n = 1000;
    std::vector<int> touched(n, 0);
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++touched[i];
    });
    EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0),
              static_cast<int>(n))
        << threads;
    EXPECT_TRUE(std::all_of(touched.begin(), touched.end(),
                            [](int c) { return c == 1; }))
        << threads;
  }
}

TEST(WorkerPoolTest, ResultsAreIdenticalAcrossThreadCounts) {
  // Index-addressed writes make output independent of the thread count —
  // the property every batch evaluation in MARS relies on.
  auto run = [](int threads) {
    WorkerPool pool(threads);
    std::vector<double> out(257);
    pool.parallel_for(out.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = static_cast<double>(i * i) * 0.25;
      }
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(4));
}

TEST(WorkerPoolTest, PoolIsReusableAcrossManyRounds) {
  WorkerPool pool(4);
  std::atomic<long long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(64, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
      }
    });
  }
  EXPECT_EQ(sum.load(), 50LL * (63 * 64 / 2));
}

TEST(WorkerPoolTest, EmptyJobIsANoOp) {
  WorkerPool pool(3);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(WorkerPoolTest, LowestChunkExceptionWinsDeterministically) {
  WorkerPool pool(4);
  for (int round = 0; round < 8; ++round) {
    try {
      pool.parallel_for(4, [&](std::size_t begin, std::size_t) {
        throw InvalidArgument("chunk " + std::to_string(begin));
      });
      FAIL() << "expected InvalidArgument";
    } catch (const InvalidArgument& e) {
      EXPECT_STREQ(e.what(), "chunk 0");
    }
    // The pool must stay usable after a throwing round.
    std::vector<int> out(8, 0);
    pool.parallel_for(out.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) out[i] = 1;
    });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 8);
  }
}

}  // namespace
}  // namespace mars::util
