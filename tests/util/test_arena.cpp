// util::Arena: slab growth, alignment, reuse-after-reset, oversized
// allocations, and the stat counters the zero-alloc serving test leans
// on. Run under ASan/UBSan in CI, so every returned pointer is written
// through to catch under-sized or overlapping blocks.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "mars/util/arena.h"
#include "mars/util/error.h"

namespace mars::util {
namespace {

TEST(Arena, StartsEmpty) {
  Arena arena;
  EXPECT_EQ(arena.slab_count(), 0u);
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.allocation_count(), 0u);
}

TEST(Arena, AllocatesWritableDistinctBlocks) {
  Arena arena(1024);
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) {
    void* block = arena.allocate(24);
    std::memset(block, i, 24);  // ASan catches any overlap/overflow
    blocks.push_back(block);
  }
  EXPECT_EQ(std::set<void*>(blocks.begin(), blocks.end()).size(),
            blocks.size());
  EXPECT_EQ(arena.allocation_count(), 64u);
  EXPECT_GE(arena.used(), 64u * 24u);
}

TEST(Arena, RespectsAlignment) {
  Arena arena(256);
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u}) {
    // Deliberately mis-phase the bump pointer with a 1-byte allocation.
    arena.allocate(1, 1);
    void* block = arena.allocate(8, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block) % align, 0u)
        << "align " << align;
  }
}

TEST(Arena, GrowsNewSlabsWhenFull) {
  Arena arena(128);
  for (int i = 0; i < 16; ++i) {
    std::memset(arena.allocate(64), 0xab, 64);
  }
  EXPECT_GT(arena.slab_count(), 1u);
  EXPECT_GE(arena.capacity(), arena.used());
}

TEST(Arena, OversizedAllocationGetsDedicatedSlab) {
  Arena arena(64);
  void* big = arena.allocate(1000);
  std::memset(big, 0xcd, 1000);
  EXPECT_GE(arena.capacity(), 1000u);
  // The small slab path still works afterwards.
  std::memset(arena.allocate(16), 0xef, 16);
}

TEST(Arena, ResetReusesRetainedSlabs) {
  Arena arena(256);
  std::vector<void*> first;
  for (int i = 0; i < 32; ++i) first.push_back(arena.allocate(32));
  const std::size_t slabs = arena.slab_count();
  const std::size_t capacity = arena.capacity();

  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.slab_count(), slabs);    // slabs are retained...
  EXPECT_EQ(arena.capacity(), capacity);   // ...so capacity is too

  // The same byte range comes back out (bump pointer rewound, no new
  // slabs): same first pointer, and no slab growth over the replay.
  std::vector<void*> second;
  for (int i = 0; i < 32; ++i) second.push_back(arena.allocate(32));
  EXPECT_EQ(second.front(), first.front());
  EXPECT_EQ(arena.slab_count(), slabs);
}

TEST(Arena, RejectsBadArguments) {
  EXPECT_THROW(Arena(0), InvalidArgument);
  Arena arena;
  EXPECT_THROW(arena.allocate(8, 3), InvalidArgument);  // not a power of two
  EXPECT_THROW(arena.allocate(8, 64), InvalidArgument);  // beyond max_align_t
}

/// 100k-allocation soak with interleaved resets: bounded memory (slab
/// count stabilises after the first cycle) and every block writable.
TEST(Arena, SoakBoundedUnderReset) {
  Arena arena(4096);
  std::size_t steady_slabs = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int i = 0; i < 1000; ++i) {
      void* block = arena.allocate(16 + (i % 7) * 8, alignof(std::max_align_t));
      std::memset(block, cycle & 0xff, 16);
    }
    if (cycle == 0) {
      steady_slabs = arena.slab_count();
    } else {
      EXPECT_EQ(arena.slab_count(), steady_slabs) << "cycle " << cycle;
    }
    arena.reset();
  }
  EXPECT_EQ(arena.allocation_count(), 100000u);
}

}  // namespace
}  // namespace mars::util
