#include "mars/util/json.h"

#include <gtest/gtest.h>

#include "mars/util/error.h"

namespace mars {
namespace {

TEST(Json, Leaves) {
  EXPECT_EQ(JsonValue::integer(42).dump(), "42");
  EXPECT_EQ(JsonValue::integer(-7).dump(), "-7");
  EXPECT_EQ(JsonValue::boolean(true).dump(), "true");
  EXPECT_EQ(JsonValue::boolean(false).dump(), "false");
  EXPECT_EQ(JsonValue::string("hi").dump(), "\"hi\"");
  EXPECT_EQ(JsonValue::number(1.5).dump(), "1.5");
}

TEST(Json, NumbersRoundTripPrecision) {
  EXPECT_EQ(JsonValue::number(0.832).dump(), "0.832");
  EXPECT_EQ(JsonValue::number(4.098659125).dump(), "4.098659125");
  // Non-finite values degrade to null (valid JSON).
  EXPECT_EQ(JsonValue::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(Json, ArraysAndObjects) {
  JsonValue arr = JsonValue::array();
  arr.push(JsonValue::integer(1));
  arr.push(JsonValue::string("two"));
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");
  EXPECT_EQ(arr.size(), 2u);

  JsonValue obj = JsonValue::object();
  obj.set("a", JsonValue::integer(1)).set("b", JsonValue::boolean(false));
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":false}");
}

TEST(Json, Nesting) {
  JsonValue inner = JsonValue::object();
  inner.set("x", JsonValue::number(2.0));
  JsonValue arr = JsonValue::array();
  arr.push(std::move(inner));
  JsonValue outer = JsonValue::object();
  outer.set("items", std::move(arr));
  EXPECT_EQ(outer.dump(), "{\"items\":[{\"x\":2}]}");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonValue::string("say \"hi\"\n").dump(), "\"say \\\"hi\\\"\\n\"");
  EXPECT_EQ(JsonValue::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonValue::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, TypeMisuseThrows) {
  JsonValue arr = JsonValue::array();
  EXPECT_THROW(arr.set("k", JsonValue::integer(1)), InvalidArgument);
  JsonValue obj = JsonValue::object();
  EXPECT_THROW(obj.push(JsonValue::integer(1)), InvalidArgument);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(JsonValue::array().dump(), "[]");
  EXPECT_EQ(JsonValue::object().dump(), "{}");
}

TEST(JsonParse, Leaves) {
  EXPECT_EQ(JsonValue::parse("42").as_integer(), 42);
  EXPECT_EQ(JsonValue::parse("-7").as_integer(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1.5").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-2.5e3").as_number(), -2500.0);
  EXPECT_TRUE(JsonValue::parse("true").as_boolean());
  EXPECT_FALSE(JsonValue::parse("false").as_boolean());
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  // Integers stay integers; as_number reads them too.
  EXPECT_TRUE(JsonValue::parse("42").is_integer());
  EXPECT_DOUBLE_EQ(JsonValue::parse("42").as_number(), 42.0);
  EXPECT_FALSE(JsonValue::parse("42.0").is_integer());
}

TEST(JsonParse, Containers) {
  const JsonValue arr = JsonValue::parse(" [1, \"two\", [true]] ");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.at(0).as_integer(), 1);
  EXPECT_EQ(arr.at(1).as_string(), "two");
  EXPECT_TRUE(arr.at(2).at(0).as_boolean());

  const JsonValue obj = JsonValue::parse("{\"a\": 1, \"b\": {\"c\": []}}");
  ASSERT_TRUE(obj.is_object());
  EXPECT_TRUE(obj.contains("a"));
  EXPECT_FALSE(obj.contains("z"));
  EXPECT_EQ(obj.get("a").as_integer(), 1);
  EXPECT_EQ(obj.get("b").get("c").size(), 0u);
  EXPECT_THROW((void)obj.get("missing"), InvalidArgument);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(JsonValue::parse("\"say \\\"hi\\\"\\n\"").as_string(),
            "say \"hi\"\n");
  EXPECT_EQ(JsonValue::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
  EXPECT_EQ(JsonValue::parse("\"a\\/b\"").as_string(), "a/b");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonValue obj = JsonValue::object();
  obj.set("name", JsonValue::string("conv1\n\"x\""));
  obj.set("count", JsonValue::integer(12));
  obj.set("scale", JsonValue::number(0.832));
  obj.set("flag", JsonValue::boolean(true));
  JsonValue arr = JsonValue::array();
  arr.push(JsonValue::integer(1)).push(JsonValue::string("two"));
  obj.set("items", std::move(arr));
  // parse(dump) reproduces the document byte-for-byte.
  EXPECT_EQ(JsonValue::parse(obj.dump()).dump(), obj.dump());
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* text :
       {"", "   ", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "nul", "+1",
        "1.2.3", "\"unterminated", "\"bad \\q escape\"", "\"\\u12\"",
        "\"\\ud800\"", "[1] trailing", "{'a':1}", "[01x]"}) {
    EXPECT_THROW((void)JsonValue::parse(text), InvalidArgument) << text;
  }
}

TEST(JsonParse, DeepNestingThrowsInsteadOfOverflowing) {
  // A corrupt/hostile document must fail catchably, not blow the stack.
  const std::string deep(100000, '[');
  EXPECT_THROW((void)JsonValue::parse(deep), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse(std::string(100000, '[') +
                                      std::string(100000, ']')),
               InvalidArgument);
  // Shallow nesting is unaffected, and sibling containers do not count
  // toward the depth cap.
  EXPECT_EQ(JsonValue::parse("[[[[[[[[[[1]]]]]]]]]]").dump(),
            "[[[[[[[[[[1]]]]]]]]]]");
  std::string wide = "[";
  for (int i = 0; i < 500; ++i) wide += "{},";
  wide += "{}]";
  EXPECT_EQ(JsonValue::parse(wide).size(), 501u);
}

TEST(JsonParse, AccessorKindMismatchThrows) {
  const JsonValue value = JsonValue::parse("{\"a\": [1]}");
  EXPECT_THROW((void)value.as_string(), InvalidArgument);
  EXPECT_THROW((void)value.get("a").as_integer(), InvalidArgument);
  EXPECT_THROW((void)value.get("a").at(5), InvalidArgument);
  EXPECT_THROW((void)value.at(0), InvalidArgument);
  EXPECT_THROW((void)JsonValue::parse("\"s\"").as_number(), InvalidArgument);
}

}  // namespace
}  // namespace mars
