#include "mars/util/json.h"

#include <gtest/gtest.h>

#include "mars/util/error.h"

namespace mars {
namespace {

TEST(Json, Leaves) {
  EXPECT_EQ(JsonValue::integer(42).dump(), "42");
  EXPECT_EQ(JsonValue::integer(-7).dump(), "-7");
  EXPECT_EQ(JsonValue::boolean(true).dump(), "true");
  EXPECT_EQ(JsonValue::boolean(false).dump(), "false");
  EXPECT_EQ(JsonValue::string("hi").dump(), "\"hi\"");
  EXPECT_EQ(JsonValue::number(1.5).dump(), "1.5");
}

TEST(Json, NumbersRoundTripPrecision) {
  EXPECT_EQ(JsonValue::number(0.832).dump(), "0.832");
  EXPECT_EQ(JsonValue::number(4.098659125).dump(), "4.098659125");
  // Non-finite values degrade to null (valid JSON).
  EXPECT_EQ(JsonValue::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(Json, ArraysAndObjects) {
  JsonValue arr = JsonValue::array();
  arr.push(JsonValue::integer(1));
  arr.push(JsonValue::string("two"));
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");
  EXPECT_EQ(arr.size(), 2u);

  JsonValue obj = JsonValue::object();
  obj.set("a", JsonValue::integer(1)).set("b", JsonValue::boolean(false));
  EXPECT_EQ(obj.dump(), "{\"a\":1,\"b\":false}");
}

TEST(Json, Nesting) {
  JsonValue inner = JsonValue::object();
  inner.set("x", JsonValue::number(2.0));
  JsonValue arr = JsonValue::array();
  arr.push(std::move(inner));
  JsonValue outer = JsonValue::object();
  outer.set("items", std::move(arr));
  EXPECT_EQ(outer.dump(), "{\"items\":[{\"x\":2}]}");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonValue::string("say \"hi\"\n").dump(), "\"say \\\"hi\\\"\\n\"");
  EXPECT_EQ(JsonValue::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonValue::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, TypeMisuseThrows) {
  JsonValue arr = JsonValue::array();
  EXPECT_THROW(arr.set("k", JsonValue::integer(1)), InvalidArgument);
  JsonValue obj = JsonValue::object();
  EXPECT_THROW(obj.push(JsonValue::integer(1)), InvalidArgument);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(JsonValue::array().dump(), "[]");
  EXPECT_EQ(JsonValue::object().dump(), "{}");
}

}  // namespace
}  // namespace mars
