#include "mars/util/units.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mars {
namespace {

TEST(Bytes, ConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(kibibytes(1.0).count(), 1024.0);
  EXPECT_DOUBLE_EQ(mebibytes(1.0).count(), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(gibibytes(1.0).count(), 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(gibibytes(2.0).gib(), 2.0);
  EXPECT_DOUBLE_EQ(mebibytes(3.0).mib(), 3.0);
  EXPECT_DOUBLE_EQ(kibibytes(5.0).kib(), 5.0);
}

TEST(Bytes, Arithmetic) {
  const Bytes a(100.0);
  const Bytes b(50.0);
  EXPECT_DOUBLE_EQ((a + b).count(), 150.0);
  EXPECT_DOUBLE_EQ((a - b).count(), 50.0);
  EXPECT_DOUBLE_EQ((a * 2.0).count(), 200.0);
  EXPECT_DOUBLE_EQ((2.0 * a).count(), 200.0);
  EXPECT_DOUBLE_EQ((a / 4.0).count(), 25.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
}

TEST(Bytes, CompoundAssignmentAndComparison) {
  Bytes a(10.0);
  a += Bytes(5.0);
  EXPECT_DOUBLE_EQ(a.count(), 15.0);
  a -= Bytes(10.0);
  EXPECT_DOUBLE_EQ(a.count(), 5.0);
  EXPECT_LT(Bytes(1.0), Bytes(2.0));
  EXPECT_EQ(Bytes(3.0), Bytes(3.0));
}

TEST(Seconds, Conversions) {
  EXPECT_DOUBLE_EQ(milliseconds(1.5).count(), 0.0015);
  EXPECT_DOUBLE_EQ(microseconds(2.0).count(), 2e-6);
  EXPECT_DOUBLE_EQ(Seconds(0.25).millis(), 250.0);
  EXPECT_DOUBLE_EQ(Seconds(0.25).micros(), 250000.0);
}

TEST(Seconds, ArithmeticAndFinite) {
  const Seconds a(1.0);
  const Seconds b(0.5);
  EXPECT_DOUBLE_EQ((a + b).count(), 1.5);
  EXPECT_DOUBLE_EQ((a - b).count(), 0.5);
  EXPECT_DOUBLE_EQ((a * 3.0).count(), 3.0);
  EXPECT_DOUBLE_EQ((a / 2.0).count(), 0.5);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_TRUE(a.finite());
  EXPECT_FALSE(Seconds(std::numeric_limits<double>::infinity()).finite());
}

TEST(Bandwidth, TransferTime) {
  // 8 Gb/s moves one gigabyte in one second.
  const Bandwidth bw = gbps(8.0);
  EXPECT_DOUBLE_EQ(bw.bytes_per_second(), 1e9);
  EXPECT_DOUBLE_EQ(bw.transfer_time(Bytes(1e9)).count(), 1.0);
  EXPECT_DOUBLE_EQ(bw.transfer_time(Bytes(0.0)).count(), 0.0);
}

TEST(Bandwidth, UnitsAndScaling) {
  EXPECT_DOUBLE_EQ(gbps(2.0).gbps(), 2.0);
  EXPECT_DOUBLE_EQ(mbps(1500.0).gbps(), 1.5);
  EXPECT_DOUBLE_EQ((gbps(4.0) / 2.0).gbps(), 2.0);
  EXPECT_DOUBLE_EQ((gbps(4.0) * 2.0).gbps(), 8.0);
  EXPECT_LT(gbps(1.0), gbps(2.0));
}

TEST(Bandwidth, ZeroBandwidthTransferThrows) {
  EXPECT_THROW((void)Bandwidth(0.0).transfer_time(Bytes(1.0)), InvalidArgument);
}

TEST(Frequency, CyclesToTime) {
  const Frequency f = megahertz(200.0);
  EXPECT_DOUBLE_EQ(f.megahertz(), 200.0);
  // 200k cycles at 200 MHz = 1 ms.
  EXPECT_DOUBLE_EQ(f.time_for(200000.0).millis(), 1.0);
}

TEST(Frequency, ZeroFrequencyThrows) {
  EXPECT_THROW((void)Frequency(0.0).time_for(1.0), InvalidArgument);
}

TEST(UnitsPrinting, HumanReadable) {
  std::ostringstream os;
  os << gibibytes(2.0) << '|' << milliseconds(3.0) << '|' << gbps(8.0) << '|'
     << megahertz(200.0);
  EXPECT_EQ(os.str(), "2 GiB|3 ms|8 Gb/s|200 MHz");
}

TEST(UnitsPrinting, SmallQuantities) {
  std::ostringstream os;
  os << Bytes(12.0) << '|' << kibibytes(4.0) << '|' << microseconds(7.0);
  EXPECT_EQ(os.str(), "12 B|4 KiB|7 us");
}

TEST(ErrorMacros, CheckArgThrowsInvalidArgument) {
  EXPECT_THROW(MARS_CHECK_ARG(false, "boom"), InvalidArgument);
  EXPECT_NO_THROW(MARS_CHECK_ARG(true, "fine"));
}

TEST(Joules, ConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(millijoules(250.0).count(), 0.25);
  EXPECT_DOUBLE_EQ(picojoules(3.0).count(), 3e-12);
  EXPECT_DOUBLE_EQ(Joules(0.5).millijoules(), 500.0);
  EXPECT_DOUBLE_EQ(picojoules(40.0).picojoules(), 40.0);
  EXPECT_DOUBLE_EQ(Joules().count(), 0.0);
}

TEST(Joules, ArithmeticAndComparison) {
  Joules a(2.0);
  a += Joules(1.0);
  EXPECT_DOUBLE_EQ(a.count(), 3.0);
  a -= Joules(0.5);
  EXPECT_DOUBLE_EQ(a.count(), 2.5);
  EXPECT_DOUBLE_EQ((Joules(2.0) + Joules(3.0)).count(), 5.0);
  EXPECT_DOUBLE_EQ((Joules(2.0) - Joules(3.0)).count(), -1.0);
  EXPECT_DOUBLE_EQ((Joules(2.0) * 3.0).count(), 6.0);
  EXPECT_DOUBLE_EQ((3.0 * Joules(2.0)).count(), 6.0);
  EXPECT_DOUBLE_EQ((Joules(6.0) / 3.0).count(), 2.0);
  EXPECT_DOUBLE_EQ(Joules(6.0) / Joules(3.0), 2.0);
  EXPECT_LT(picojoules(1.0), picojoules(2.0));
  EXPECT_EQ(Joules(1.0), Joules(1.0));
}

TEST(Joules, StreamsAtTheRightTier) {
  std::ostringstream j, mj, pj;
  j << Joules(2.5);
  EXPECT_EQ(j.str(), "2.5 J");
  mj << millijoules(250.0);
  EXPECT_EQ(mj.str(), "250 mJ");
  pj << picojoules(40.0);
  EXPECT_EQ(pj.str(), "40 pJ");
}

TEST(ErrorMacros, CheckThrowsInternalError) {
  EXPECT_THROW(MARS_CHECK(false, "bug"), InternalError);
  EXPECT_NO_THROW(MARS_CHECK(true, "fine"));
}

TEST(ErrorMacros, MessageCarriesLocationAndText) {
  try {
    MARS_CHECK_ARG(1 == 2, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("value was 42"), std::string::npos);
    EXPECT_NE(what.find("test_units.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace mars
