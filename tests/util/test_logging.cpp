#include "mars/util/logging.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace mars {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_level_ = set_log_level(LogLevel::kWarn);
    previous_sink_ = set_log_sink(&capture_);
  }
  void TearDown() override {
    set_log_level(previous_level_);
    set_log_sink(previous_sink_);
  }

  std::ostringstream capture_;
  LogLevel previous_level_ = LogLevel::kWarn;
  std::ostream* previous_sink_ = nullptr;
};

TEST_F(LoggingTest, RespectsLevelThreshold) {
  set_log_level(LogLevel::kWarn);
  MARS_DEBUG << "hidden";
  MARS_INFO << "hidden too";
  MARS_WARN << "visible";
  EXPECT_EQ(capture_.str().find("hidden"), std::string::npos);
  EXPECT_NE(capture_.str().find("visible"), std::string::npos);
}

TEST_F(LoggingTest, FormatsTagAndMessage) {
  set_log_level(LogLevel::kInfo);
  MARS_INFO << "x=" << 42;
  EXPECT_EQ(capture_.str(), "[mars INFO ] x=42\n");
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  MARS_ERROR << "nope";
  EXPECT_TRUE(capture_.str().empty());
}

TEST_F(LoggingTest, SetLevelReturnsPrevious) {
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(set_log_level(LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

// Search has been multi-threaded since the worker pool landed: concurrent
// statements must come out as whole lines, never interleaved. Run under
// TSan in CI (the util suite is in the tsan job).
TEST_F(LoggingTest, ConcurrentStatementsEmitWholeLines) {
  set_log_level(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kMessagesPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kMessagesPerThread; ++i) {
        MARS_INFO << "thread=" << t << " msg=" << i << " tail";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every line is complete: prefix, both fields, and the tail marker.
  std::istringstream lines(capture_.str());
  std::string line;
  int total = 0;
  while (std::getline(lines, line)) {
    ++total;
    EXPECT_EQ(line.rfind("[mars INFO ] thread=", 0), 0u) << line;
    EXPECT_NE(line.find(" msg="), std::string::npos) << line;
    EXPECT_EQ(line.substr(line.size() - 5), " tail") << line;
  }
  EXPECT_EQ(total, kThreads * kMessagesPerThread);
}

}  // namespace
}  // namespace mars
