#include "mars/util/logging.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mars {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_level_ = set_log_level(LogLevel::kWarn);
    previous_sink_ = set_log_sink(&capture_);
  }
  void TearDown() override {
    set_log_level(previous_level_);
    set_log_sink(previous_sink_);
  }

  std::ostringstream capture_;
  LogLevel previous_level_ = LogLevel::kWarn;
  std::ostream* previous_sink_ = nullptr;
};

TEST_F(LoggingTest, RespectsLevelThreshold) {
  set_log_level(LogLevel::kWarn);
  MARS_DEBUG << "hidden";
  MARS_INFO << "hidden too";
  MARS_WARN << "visible";
  EXPECT_EQ(capture_.str().find("hidden"), std::string::npos);
  EXPECT_NE(capture_.str().find("visible"), std::string::npos);
}

TEST_F(LoggingTest, FormatsTagAndMessage) {
  set_log_level(LogLevel::kInfo);
  MARS_INFO << "x=" << 42;
  EXPECT_EQ(capture_.str(), "[mars INFO ] x=42\n");
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  MARS_ERROR << "nope";
  EXPECT_TRUE(capture_.str().empty());
}

TEST_F(LoggingTest, SetLevelReturnsPrevious) {
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(set_log_level(LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

}  // namespace
}  // namespace mars
