#include "mars/util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "mars/util/error.h"

namespace mars {
namespace {

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"model", "latency_ms"});
  csv.add_row({"alexnet", "0.832"});
  csv.add_row({"vgg16", "20.6"});
  EXPECT_EQ(os.str(), "model,latency_ms\nalexnet,0.832\nvgg16,20.6\n");
  EXPECT_EQ(csv.num_rows(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, EscapesInsideRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"mapping"});
  csv.add_row({"ES={H,W}, SS={}"});
  EXPECT_EQ(os.str(), "mapping\n\"ES={H,W}, SS={}\"\n");
}

TEST(Csv, RejectsArityMismatch) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), InvalidArgument);
}

TEST(Csv, RejectsEmptyHeader) {
  std::ostringstream os;
  EXPECT_THROW(CsvWriter(os, {}), InvalidArgument);
}

}  // namespace
}  // namespace mars
