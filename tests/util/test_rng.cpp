#include "mars/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "mars/util/error.h"

namespace mars {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.uniform() != b.uniform()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
  EXPECT_THROW((void)rng.uniform(3.0, 2.0), InvalidArgument);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.gaussian(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, IndexBounds) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
  EXPECT_THROW((void)rng.index(0), InvalidArgument);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(9);
  Rng b(9);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
  }
  // Parent stream stays aligned after forking.
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = values;
  rng.shuffle(values);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

}  // namespace
}  // namespace mars
