#include "mars/util/table.h"

#include <gtest/gtest.h>

#include "mars/util/error.h"

namespace mars {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"Model", "Latency"});
  table.add_row({"alexnet", "0.832"});
  table.add_row({"vgg16", "20.6"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| Model   | Latency |"), std::string::npos);
  EXPECT_NE(out.find("| alexnet | 0.832   |"), std::string::npos);
  EXPECT_NE(out.find("| vgg16   | 20.6    |"), std::string::npos);
}

TEST(Table, WidensForLongCells) {
  Table table({"A"});
  table.add_row({"a-very-long-cell"});
  EXPECT_NE(table.render().find("| a-very-long-cell |"), std::string::npos);
}

TEST(Table, SeparatorRows) {
  Table table({"A", "B"});
  table.add_row({"1", "2"});
  table.add_separator();
  table.add_row({"3", "4"});
  const std::string out = table.render();
  // header rule + top + separator + bottom = 4 rules.
  std::size_t rules = 0;
  for (std::size_t pos = out.find('+'); pos != std::string::npos;
       pos = out.find("\n+", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(Table, StreamOperator) {
  Table table({"X"});
  table.add_row({"y"});
  std::ostringstream os;
  os << table;
  EXPECT_EQ(os.str(), table.render());
}

}  // namespace
}  // namespace mars
