#include "mars/util/strings.h"

#include <gtest/gtest.h>

namespace mars {
namespace {

TEST(Join, Basic) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(12.0), "12");
  EXPECT_EQ(format_double(0.832), "0.832");
  EXPECT_EQ(format_double(0.8321, 3), "0.832");
  EXPECT_EQ(format_double(-0.0), "0");
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.14159, 4), "3.1416");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(SiCount, PaperStyleCounts) {
  EXPECT_EQ(si_count(61.1e6, 1), "61.1M");
  EXPECT_EQ(si_count(3.68e9, 2), "3.68G");
  EXPECT_EQ(si_count(727e6, 0), "727M");
  EXPECT_EQ(si_count(1.5e12, 1), "1.5T");
  EXPECT_EQ(si_count(512.0), "512");
  EXPECT_EQ(si_count(2048.0, 1), "2K");
}

TEST(SignedPercent, PaperStyleReductions) {
  EXPECT_EQ(signed_percent(-0.322), "-32.2%");
  EXPECT_EQ(signed_percent(0.101), "+10.1%");
  EXPECT_EQ(signed_percent(0.0), "+0%");
  EXPECT_EQ(signed_percent(-0.594, 1), "-59.4%");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("conv1.weight", "conv1"));
  EXPECT_FALSE(starts_with("conv1", "conv10"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

}  // namespace
}  // namespace mars
