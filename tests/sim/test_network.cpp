#include "mars/sim/network.h"

#include <gtest/gtest.h>

#include "mars/topology/presets.h"
#include "mars/util/error.h"

namespace mars::sim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  topology::Topology topo_ = topology::f1_16xlarge();
  SimParams params_{};
  Network net_{topo_, params_};
};

TEST_F(NetworkTest, DirectRouteSingleLeg) {
  const std::vector<RouteLeg> route = net_.route(0, 1);
  ASSERT_EQ(route.size(), 1u);
  EXPECT_DOUBLE_EQ(route.front().bw.gbps(), 8.0);
}

TEST_F(NetworkTest, CrossGroupRoutesViaHost) {
  // Accelerators 0 and 4 are in different groups: two host legs at 2 Gb/s.
  const std::vector<RouteLeg> route = net_.route(0, 4);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_DOUBLE_EQ(route[0].bw.gbps(), 2.0);
  EXPECT_DOUBLE_EQ(route[1].bw.gbps(), 2.0);
  EXPECT_NE(route[0].channel, route[1].channel);
}

TEST_F(NetworkTest, HostEndpoints) {
  ASSERT_EQ(net_.route(kHost, 3).size(), 1u);
  ASSERT_EQ(net_.route(3, kHost).size(), 1u);
  // Up and down channels are distinct (full duplex).
  EXPECT_NE(net_.route(kHost, 3).front().channel,
            net_.route(3, kHost).front().channel);
}

TEST_F(NetworkTest, OppositeDirectionsAreDistinctChannels) {
  EXPECT_NE(net_.route(0, 1).front().channel, net_.route(1, 0).front().channel);
}

TEST_F(NetworkTest, LegTimeIncludesLatency) {
  const RouteLeg leg = net_.route(0, 1).front();
  // 1e9 bytes at 8 Gb/s = 1 s, plus 2 us link latency.
  EXPECT_DOUBLE_EQ(net_.leg_time(leg, Bytes(1e9)).count(), 1.0 + 2e-6);
}

TEST_F(NetworkTest, RejectsDegenerateRoutes) {
  EXPECT_THROW((void)net_.route(2, 2), InvalidArgument);
  EXPECT_THROW((void)net_.route(kHost, kHost), InvalidArgument);
}

TEST_F(NetworkTest, ChannelCountCoversLinksAndHost) {
  // Two 4-cliques: 2 * (4*3) directed link channels + 8 up + 8 down.
  EXPECT_EQ(net_.num_channels(), 24 + 16);
}

}  // namespace
}  // namespace mars::sim
