#include "mars/sim/collective.h"

#include <gtest/gtest.h>

#include "mars/sim/executor.h"
#include "mars/topology/presets.h"
#include "mars/util/error.h"

namespace mars::sim {
namespace {

SimParams zero_latency() {
  SimParams params;
  params.link_latency = Seconds(0.0);
  params.host_latency = Seconds(0.0);
  return params;
}

class CollectiveTest : public ::testing::Test {
 protected:
  // One 4-clique at 8 Gb/s: ring transfers use distinct links.
  topology::Topology topo_ = topology::fully_connected(4, gbps(8.0), gbps(2.0));
  Executor exec_{topo_, zero_latency()};
  const std::vector<int> members_{0, 1, 2, 3};
};

TEST_F(CollectiveTest, RingAllReduceTime) {
  TaskGraph tg;
  const Bytes payload(1e6);
  ring_allreduce(tg, members_, payload, {}, "ar");
  // 2*(r-1) = 6 steps of payload/4 chunks at 1 GB/s: 6 * 0.25 ms.
  EXPECT_NEAR(exec_.run(tg).makespan.millis(), 1.5, 1e-9);
}

TEST_F(CollectiveTest, RingAllReduceMatchesClassicFormula) {
  TaskGraph tg;
  const Bytes payload(4e6);
  ring_allreduce(tg, members_, payload, {}, "ar");
  // 2*(r-1)/r * payload / bw.
  const double expected = 2.0 * 3 / 4 * 4e6 / 1e9;
  EXPECT_NEAR(exec_.run(tg).makespan.count(), expected, 1e-12);
}

TEST_F(CollectiveTest, AllReduceTrivialGroupIsFree) {
  TaskGraph tg;
  const auto done = ring_allreduce(tg, {2}, Bytes(1e9), {}, "solo");
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(exec_.run(tg).makespan.count(), 0.0);
}

TEST_F(CollectiveTest, AllGatherTime) {
  TaskGraph tg;
  const Bytes shard(1e6);
  ring_allgather(tg, members_, shard, {}, "ag");
  // r-1 = 3 steps of full shards: 3 ms.
  EXPECT_NEAR(exec_.run(tg).makespan.millis(), 3.0, 1e-9);
}

TEST_F(CollectiveTest, RingShiftSingleStep) {
  TaskGraph tg;
  ring_shift(tg, members_, Bytes(1e6), {}, "shift");
  EXPECT_NEAR(exec_.run(tg).makespan.millis(), 1.0, 1e-9);
  EXPECT_THROW((void)ring_shift(tg, {0}, Bytes(1.0), {}, "bad"), InvalidArgument);
}

TEST_F(CollectiveTest, ScatterSplitsEvenly) {
  TaskGraph tg;
  const auto done = scatter(tg, 0, members_, Bytes(3e6), {}, "sc");
  EXPECT_EQ(done.size(), 3u);  // src excluded
  // 1 MB to each of 3 targets over distinct links: concurrent, 1 ms.
  EXPECT_NEAR(exec_.run(tg).makespan.millis(), 1.0, 1e-9);
}

TEST_F(CollectiveTest, CollectivesRespectDependencies) {
  TaskGraph tg;
  const TaskId gate = tg.add_compute(0, milliseconds(5.0), "gate");
  ring_allreduce(tg, members_, Bytes(1e6), {gate}, "ar");
  EXPECT_NEAR(exec_.run(tg).makespan.millis(), 5.0 + 1.5, 1e-9);
}

TEST_F(CollectiveTest, CompletionTasksPerMember) {
  TaskGraph tg;
  const auto done = ring_allreduce(tg, members_, Bytes(1e6), {}, "ar");
  EXPECT_EQ(done.size(), members_.size());
}

TEST(CollectiveRingOrder, SlowRingLinkDominates) {
  // Ring over a 2-group topology: the cross-group hops go via the host and
  // dominate the collective.
  topology::Topology grouped = topology::grouped(2, 2, gbps(8.0), gbps(2.0));
  const Executor exec(grouped, zero_latency());
  TaskGraph tg;
  ring_allgather(tg, {0, 1, 2, 3}, Bytes(1e6), {}, "ag");
  // Each step has two host-mediated hops (1<->2 and 3<->0): 8 ms per step,
  // but the two hops share no channel; per step the slow hop costs 8 ms.
  // 3 steps -> ~24 ms.
  EXPECT_GT(exec.run(tg).makespan.millis(), 20.0);
}

TEST(CollectiveValidation, EmptyMembersThrow) {
  TaskGraph tg;
  EXPECT_THROW((void)ring_allreduce(tg, {}, Bytes(1.0), {}, "x"), InvalidArgument);
  EXPECT_THROW((void)ring_allgather(tg, {}, Bytes(1.0), {}, "x"), InvalidArgument);
  EXPECT_THROW((void)scatter(tg, 0, {}, Bytes(1.0), {}, "x"), InvalidArgument);
}

}  // namespace
}  // namespace mars::sim
