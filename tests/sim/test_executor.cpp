#include "mars/sim/executor.h"

#include <gtest/gtest.h>

#include "mars/topology/presets.h"
#include "mars/util/error.h"

namespace mars::sim {
namespace {

SimParams zero_latency() {
  SimParams params;
  params.link_latency = Seconds(0.0);
  params.host_latency = Seconds(0.0);
  return params;
}

class ExecutorTest : public ::testing::Test {
 protected:
  topology::Topology topo_ = topology::f1_16xlarge();
  Executor exec_{topo_, zero_latency()};
};

TEST_F(ExecutorTest, SingleComputeTask) {
  TaskGraph tg;
  tg.add_compute(0, milliseconds(2.0), "work");
  const ExecutionResult result = exec_.run(tg);
  EXPECT_DOUBLE_EQ(result.makespan.millis(), 2.0);
  EXPECT_DOUBLE_EQ(result.acc_busy[0].millis(), 2.0);
  EXPECT_TRUE(result.timings[0].executed);
}

TEST_F(ExecutorTest, ChainedDependenciesSerialize) {
  TaskGraph tg;
  const TaskId a = tg.add_compute(0, milliseconds(1.0), "a");
  const TaskId b = tg.add_compute(1, milliseconds(1.0), "b", {a});
  tg.add_compute(2, milliseconds(1.0), "c", {b});
  EXPECT_DOUBLE_EQ(exec_.run(tg).makespan.millis(), 3.0);
}

TEST_F(ExecutorTest, IndependentTasksOverlapAcrossAccelerators) {
  TaskGraph tg;
  for (int acc = 0; acc < 4; ++acc) {
    tg.add_compute(acc, milliseconds(1.0), "p" + std::to_string(acc));
  }
  EXPECT_DOUBLE_EQ(exec_.run(tg).makespan.millis(), 1.0);
}

TEST_F(ExecutorTest, SameAcceleratorSerializes) {
  TaskGraph tg;
  tg.add_compute(0, milliseconds(1.0), "a");
  tg.add_compute(0, milliseconds(1.0), "b");
  const ExecutionResult result = exec_.run(tg);
  EXPECT_DOUBLE_EQ(result.makespan.millis(), 2.0);
  EXPECT_DOUBLE_EQ(result.acc_busy[0].millis(), 2.0);
}

TEST_F(ExecutorTest, TransferTimeMatchesBandwidth) {
  TaskGraph tg;
  // 1 MB over the 8 Gb/s intra-group link = 1e6 / 1e9 s = 1 ms.
  tg.add_transfer(0, 1, Bytes(1e6), "move");
  EXPECT_NEAR(exec_.run(tg).makespan.millis(), 1.0, 1e-9);
}

TEST_F(ExecutorTest, CrossGroupTransferPaysBothHostLegs) {
  TaskGraph tg;
  // 1 MB at 2 Gb/s per leg = 4 ms per leg, two legs store-and-forward.
  tg.add_transfer(0, 4, Bytes(1e6), "cross");
  EXPECT_NEAR(exec_.run(tg).makespan.millis(), 8.0, 1e-9);
}

TEST_F(ExecutorTest, LinkContentionQueuesFlows) {
  TaskGraph tg;
  // Two flows over the same directed channel serialize.
  tg.add_transfer(0, 1, Bytes(1e6), "f1");
  tg.add_transfer(0, 1, Bytes(1e6), "f2");
  EXPECT_NEAR(exec_.run(tg).makespan.millis(), 2.0, 1e-9);
}

TEST_F(ExecutorTest, FullDuplexDoesNotConflict) {
  TaskGraph tg;
  tg.add_transfer(0, 1, Bytes(1e6), "fwd");
  tg.add_transfer(1, 0, Bytes(1e6), "rev");
  EXPECT_NEAR(exec_.run(tg).makespan.millis(), 1.0, 1e-9);
}

TEST_F(ExecutorTest, DistinctLinksRunConcurrently) {
  TaskGraph tg;
  tg.add_transfer(0, 1, Bytes(1e6), "a");
  tg.add_transfer(2, 3, Bytes(1e6), "b");
  EXPECT_NEAR(exec_.run(tg).makespan.millis(), 1.0, 1e-9);
}

TEST_F(ExecutorTest, HostChannelCongestionIsModelled) {
  TaskGraph tg;
  // Two cross-group flows from the same source acc share its host up-link.
  tg.add_transfer(0, 4, Bytes(1e6), "x");
  tg.add_transfer(0, 5, Bytes(1e6), "y");
  // Up legs serialize (4 + 4 ms), down legs run on distinct channels but
  // the second cannot start before its up leg ends: 8 + 4 = 12 ms.
  EXPECT_NEAR(exec_.run(tg).makespan.millis(), 12.0, 1e-9);
}

TEST_F(ExecutorTest, BarriersCostNothing) {
  TaskGraph tg;
  const TaskId a = tg.add_compute(0, milliseconds(1.0), "a");
  const TaskId barrier = tg.add_barrier({a});
  tg.add_compute(1, milliseconds(1.0), "b", {barrier});
  EXPECT_DOUBLE_EQ(exec_.run(tg).makespan.millis(), 2.0);
}

TEST_F(ExecutorTest, ZeroByteTransferIsInstant) {
  TaskGraph tg;
  tg.add_transfer(0, 1, Bytes(0.0), "empty");
  EXPECT_DOUBLE_EQ(exec_.run(tg).makespan.count(), 0.0);
}

TEST_F(ExecutorTest, LatencyParametersApply) {
  SimParams params;
  params.link_latency = microseconds(10.0);
  params.host_latency = microseconds(100.0);
  const Executor exec(topo_, params);
  TaskGraph tg;
  tg.add_transfer(0, 4, Bytes(1e6), "cross");
  // 4 ms + 10 us + store-and-forward 100 us + 4 ms + 10 us.
  EXPECT_NEAR(exec.run(tg).makespan.millis(), 8.0 + 0.12, 1e-9);
}

TEST_F(ExecutorTest, DeterministicAcrossRuns) {
  TaskGraph tg;
  for (int i = 0; i < 20; ++i) {
    tg.add_compute(i % 8, microseconds(10.0 + i), "t" + std::to_string(i));
  }
  const Seconds first = exec_.run(tg).makespan;
  for (int run = 0; run < 3; ++run) {
    EXPECT_DOUBLE_EQ(exec_.run(tg).makespan.count(), first.count());
  }
}

TEST_F(ExecutorTest, TimingsAreConsistent) {
  TaskGraph tg;
  const TaskId a = tg.add_compute(0, milliseconds(1.0), "a");
  const TaskId b = tg.add_transfer(0, 1, Bytes(1e6), "move", {a});
  const TaskId c = tg.add_compute(1, milliseconds(1.0), "c", {b});
  const ExecutionResult result = exec_.run(tg);
  EXPECT_LE(result.timings[a].end.count(), result.timings[b].start.count() + 1e-12);
  EXPECT_LE(result.timings[b].end.count(), result.timings[c].start.count() + 1e-12);
  EXPECT_DOUBLE_EQ(result.timings[c].end.count(), result.makespan.count());
}

TEST(TaskGraphValidation, RejectsBadInput) {
  TaskGraph tg;
  EXPECT_THROW((void)tg.add_compute(-1, Seconds(1.0), "bad"), InvalidArgument);
  EXPECT_THROW((void)tg.add_compute(0, Seconds(-1.0), "bad"), InvalidArgument);
  EXPECT_THROW((void)tg.add_transfer(0, 0, Bytes(1.0), "self"), InvalidArgument);
  EXPECT_THROW((void)tg.add_compute(0, Seconds(1.0), "fwd", {5}), InvalidArgument);
  const TaskId a = tg.add_compute(0, Seconds(1.0), "ok");
  EXPECT_EQ(a, 0);
  EXPECT_THROW((void)tg.task(7), InvalidArgument);
}

}  // namespace
}  // namespace mars::sim
