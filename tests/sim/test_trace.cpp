#include "mars/sim/trace.h"

#include <gtest/gtest.h>

#include "mars/topology/presets.h"

namespace mars::sim {
namespace {

TEST(Trace, EmitsChromeTraceEvents) {
  const topology::Topology topo = topology::fully_connected(2, gbps(8.0), gbps(2.0));
  TaskGraph tg;
  const TaskId a = tg.add_compute(0, milliseconds(1.0), "conv1/ph0");
  tg.add_transfer(0, 1, Bytes(1e6), "conv1/ss_ring", {a});

  const Executor exec(topo, {});
  const ExecutionResult result = exec.run(tg);
  const std::string json = to_chrome_trace(tg, result);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"conv1/ph0\""), std::string::npos);
  EXPECT_NE(json.find("\"acc0\""), std::string::npos);
  EXPECT_NE(json.find("net acc0->acc1"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Trace, SkipsBarriers) {
  const topology::Topology topo = topology::fully_connected(2, gbps(8.0), gbps(2.0));
  TaskGraph tg;
  const TaskId a = tg.add_compute(0, milliseconds(1.0), "work");
  tg.add_barrier({a}, "sync-point");
  const Executor exec(topo, {});
  const std::string json = to_chrome_trace(tg, exec.run(tg));
  EXPECT_EQ(json.find("sync-point"), std::string::npos);
}

TEST(Trace, EscapesLabels) {
  const topology::Topology topo = topology::fully_connected(2, gbps(8.0), gbps(2.0));
  TaskGraph tg;
  tg.add_compute(0, milliseconds(1.0), "with \"quotes\"");
  const Executor exec(topo, {});
  const std::string json = to_chrome_trace(tg, exec.run(tg));
  EXPECT_NE(json.find("with \\\"quotes\\\""), std::string::npos);
}

TEST(Trace, HostEndpointsNamed) {
  const topology::Topology topo = topology::fully_connected(2, gbps(8.0), gbps(2.0));
  TaskGraph tg;
  tg.add_transfer(kHost, 0, Bytes(1e5), "host_input");
  const Executor exec(topo, {});
  const std::string json = to_chrome_trace(tg, exec.run(tg));
  EXPECT_NE(json.find("net host->acc0"), std::string::npos);
}

}  // namespace
}  // namespace mars::sim
