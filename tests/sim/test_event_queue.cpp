#include "mars/sim/event_queue.h"

#include <gtest/gtest.h>

#include <string>

namespace mars::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.push(Seconds(3.0), 3);
  q.push(Seconds(1.0), 1);
  q.push(Seconds(2.0), 2);

  Seconds t;
  EXPECT_EQ(q.pop(t), 1);
  EXPECT_DOUBLE_EQ(t.count(), 1.0);
  EXPECT_EQ(q.pop(t), 2);
  EXPECT_EQ(q.pop(t), 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesResolveByInsertionOrder) {
  EventQueue<std::string> q;
  q.push(Seconds(1.0), "first");
  q.push(Seconds(1.0), "second");
  q.push(Seconds(1.0), "third");

  Seconds t;
  EXPECT_EQ(q.pop(t), "first");
  EXPECT_EQ(q.pop(t), "second");
  EXPECT_EQ(q.pop(t), "third");
}

TEST(EventQueue, NextTimePeeks) {
  EventQueue<int> q;
  q.push(Seconds(5.0), 5);
  q.push(Seconds(2.0), 2);
  EXPECT_DOUBLE_EQ(q.next_time().count(), 2.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue<int> q;
  q.push(Seconds(1.0), 1);
  Seconds t;
  EXPECT_EQ(q.pop(t), 1);
  q.push(Seconds(0.5), 50);  // earlier than anything previous
  q.push(Seconds(2.0), 2);
  EXPECT_EQ(q.pop(t), 50);
  EXPECT_DOUBLE_EQ(t.count(), 0.5);
  EXPECT_EQ(q.pop(t), 2);
}

}  // namespace
}  // namespace mars::sim
