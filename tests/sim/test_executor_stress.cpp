// Randomized executor stress: structural invariants on arbitrary task
// graphs — completion, dependency order, resource exclusivity, and lower
// bounds from aggregate work.
#include <gtest/gtest.h>

#include <algorithm>

#include "mars/sim/executor.h"
#include "mars/topology/presets.h"
#include "mars/util/rng.h"

namespace mars::sim {
namespace {

struct RandomGraph {
  TaskGraph tg;
  std::vector<double> acc_work_seconds;
};

RandomGraph random_graph(const topology::Topology& topo, Rng& rng, int n) {
  RandomGraph out;
  out.acc_work_seconds.assign(static_cast<std::size_t>(topo.size()), 0.0);
  for (int i = 0; i < n; ++i) {
    std::vector<TaskId> deps;
    // Up to 3 backward dependencies.
    for (int d = 0; d < 3 && i > 0; ++d) {
      if (rng.chance(0.4)) deps.push_back(rng.uniform_int(0, i - 1));
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    const double kind = rng.uniform();
    if (kind < 0.5) {
      const int acc = rng.uniform_int(0, topo.size() - 1);
      const Seconds duration = microseconds(rng.uniform(1.0, 100.0));
      out.acc_work_seconds[static_cast<std::size_t>(acc)] += duration.count();
      (void)out.tg.add_compute(acc, duration, "c" + std::to_string(i), deps);
    } else if (kind < 0.85) {
      int src = rng.uniform_int(0, topo.size() - 1);
      int dst = rng.uniform_int(0, topo.size() - 1);
      if (src == dst) dst = (dst + 1) % topo.size();
      (void)out.tg.add_transfer(src, dst, Bytes(rng.uniform(1.0, 1e6)),
                                "t" + std::to_string(i), deps);
    } else {
      (void)out.tg.add_barrier(deps, "b" + std::to_string(i));
    }
  }
  return out;
}

class ExecutorStress : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorStress, InvariantsHoldOnRandomGraphs) {
  const topology::Topology topo = topology::f1_16xlarge();
  const Executor exec(topo, {});
  Rng rng(static_cast<std::uint64_t>(GetParam()));

  for (int trial = 0; trial < 10; ++trial) {
    const RandomGraph random = random_graph(topo, rng, 120);
    const ExecutionResult result = exec.run(random.tg);

    double max_acc_work = 0.0;
    for (double w : random.acc_work_seconds) max_acc_work = std::max(max_acc_work, w);

    // 1. Everything executed; makespan >= the busiest accelerator's work.
    for (const TaskTiming& timing : result.timings) {
      EXPECT_TRUE(timing.executed);
      EXPECT_GE(timing.end.count() + 1e-15, timing.start.count());
      EXPECT_LE(timing.end.count(), result.makespan.count() + 1e-15);
    }
    EXPECT_GE(result.makespan.count() + 1e-12, max_acc_work);

    // 2. Dependency order.
    for (const Task& task : random.tg.tasks()) {
      for (TaskId dep : task.deps) {
        EXPECT_LE(result.timings[static_cast<std::size_t>(dep)].end.count(),
                  result.timings[static_cast<std::size_t>(task.id)].start.count() +
                      1e-12)
            << "task " << task.id << " started before dep " << dep;
      }
    }

    // 3. Compute exclusivity: tasks on the same accelerator never overlap.
    std::vector<std::vector<std::pair<double, double>>> busy(
        static_cast<std::size_t>(topo.size()));
    for (const Task& task : random.tg.tasks()) {
      if (task.kind != TaskKind::kCompute) continue;
      const TaskTiming& timing = result.timings[static_cast<std::size_t>(task.id)];
      busy[static_cast<std::size_t>(task.acc)].emplace_back(timing.start.count(),
                                                            timing.end.count());
    }
    for (auto& intervals : busy) {
      std::sort(intervals.begin(), intervals.end());
      for (std::size_t i = 1; i < intervals.size(); ++i) {
        EXPECT_GE(intervals[i].first + 1e-12, intervals[i - 1].second)
            << "overlapping compute on one accelerator";
      }
    }

    // 4. Accounted busy time matches the injected work.
    for (topology::AccId acc = 0; acc < topo.size(); ++acc) {
      EXPECT_NEAR(result.acc_busy[static_cast<std::size_t>(acc)].count(),
                  random.acc_work_seconds[static_cast<std::size_t>(acc)], 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorStress, ::testing::Values(1, 2, 3, 4));

TEST(ExecutorStress, LongDependencyChain) {
  const topology::Topology topo = topology::fully_connected(2, gbps(8.0), gbps(2.0));
  const Executor exec(topo, {});
  TaskGraph tg;
  TaskId prev = tg.add_compute(0, microseconds(1.0), "t0");
  for (int i = 1; i < 500; ++i) {
    prev = tg.add_compute(i % 2, microseconds(1.0), "t" + std::to_string(i),
                          {prev});
  }
  const ExecutionResult result = exec.run(tg);
  EXPECT_NEAR(result.makespan.micros(), 500.0, 1e-6);
}

TEST(ExecutorStress, WideFanOutFanIn) {
  const topology::Topology topo = topology::fully_connected(8, gbps(8.0), gbps(2.0));
  const Executor exec(topo, {});
  TaskGraph tg;
  const TaskId source = tg.add_compute(0, microseconds(1.0), "src");
  std::vector<TaskId> middle;
  for (int i = 0; i < 64; ++i) {
    middle.push_back(tg.add_compute(i % 8, microseconds(10.0),
                                    "m" + std::to_string(i), {source}));
  }
  const TaskId sink = tg.add_barrier(middle, "sink");
  const ExecutionResult result = exec.run(tg);
  // 64 tasks of 10us across 8 accelerators = 80us of serialized-per-acc
  // work after the 1us source.
  EXPECT_NEAR(result.makespan.micros(), 81.0, 1e-6);
  EXPECT_DOUBLE_EQ(result.timings[static_cast<std::size_t>(sink)].end.count(),
                   result.makespan.count());
}

}  // namespace
}  // namespace mars::sim
