// Randomized executor stress: structural invariants on arbitrary task
// graphs — completion, dependency order, resource exclusivity, and lower
// bounds from aggregate work.
#include <gtest/gtest.h>

#include <algorithm>

#include "mars/plan/engines.h"
#include "mars/serve/scheduler.h"
#include "mars/serve/workload.h"
#include "mars/sim/executor.h"
#include "mars/topology/presets.h"
#include "mars/util/rng.h"

namespace mars::sim {
namespace {

struct RandomGraph {
  TaskGraph tg;
  std::vector<double> acc_work_seconds;
};

RandomGraph random_graph(const topology::Topology& topo, Rng& rng, int n) {
  RandomGraph out;
  out.acc_work_seconds.assign(static_cast<std::size_t>(topo.size()), 0.0);
  for (int i = 0; i < n; ++i) {
    std::vector<TaskId> deps;
    // Up to 3 backward dependencies.
    for (int d = 0; d < 3 && i > 0; ++d) {
      if (rng.chance(0.4)) deps.push_back(rng.uniform_int(0, i - 1));
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    const double kind = rng.uniform();
    if (kind < 0.5) {
      const int acc = rng.uniform_int(0, topo.size() - 1);
      const Seconds duration = microseconds(rng.uniform(1.0, 100.0));
      out.acc_work_seconds[static_cast<std::size_t>(acc)] += duration.count();
      (void)out.tg.add_compute(acc, duration, "c" + std::to_string(i), deps);
    } else if (kind < 0.85) {
      int src = rng.uniform_int(0, topo.size() - 1);
      int dst = rng.uniform_int(0, topo.size() - 1);
      if (src == dst) dst = (dst + 1) % topo.size();
      (void)out.tg.add_transfer(src, dst, Bytes(rng.uniform(1.0, 1e6)),
                                "t" + std::to_string(i), deps);
    } else {
      (void)out.tg.add_barrier(deps, "b" + std::to_string(i));
    }
  }
  return out;
}

class ExecutorStress : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorStress, InvariantsHoldOnRandomGraphs) {
  const topology::Topology topo = topology::f1_16xlarge();
  const Executor exec(topo, {});
  Rng rng(static_cast<std::uint64_t>(GetParam()));

  for (int trial = 0; trial < 10; ++trial) {
    const RandomGraph random = random_graph(topo, rng, 120);
    const ExecutionResult result = exec.run(random.tg);

    double max_acc_work = 0.0;
    for (double w : random.acc_work_seconds) max_acc_work = std::max(max_acc_work, w);

    // 1. Everything executed; makespan >= the busiest accelerator's work.
    for (const TaskTiming& timing : result.timings) {
      EXPECT_TRUE(timing.executed);
      EXPECT_GE(timing.end.count() + 1e-15, timing.start.count());
      EXPECT_LE(timing.end.count(), result.makespan.count() + 1e-15);
    }
    EXPECT_GE(result.makespan.count() + 1e-12, max_acc_work);

    // 2. Dependency order.
    for (const Task& task : random.tg.tasks()) {
      for (TaskId dep : task.deps) {
        EXPECT_LE(result.timings[static_cast<std::size_t>(dep)].end.count(),
                  result.timings[static_cast<std::size_t>(task.id)].start.count() +
                      1e-12)
            << "task " << task.id << " started before dep " << dep;
      }
    }

    // 3. Compute exclusivity: tasks on the same accelerator never overlap.
    std::vector<std::vector<std::pair<double, double>>> busy(
        static_cast<std::size_t>(topo.size()));
    for (const Task& task : random.tg.tasks()) {
      if (task.kind != TaskKind::kCompute) continue;
      const TaskTiming& timing = result.timings[static_cast<std::size_t>(task.id)];
      busy[static_cast<std::size_t>(task.acc)].emplace_back(timing.start.count(),
                                                            timing.end.count());
    }
    for (auto& intervals : busy) {
      std::sort(intervals.begin(), intervals.end());
      for (std::size_t i = 1; i < intervals.size(); ++i) {
        EXPECT_GE(intervals[i].first + 1e-12, intervals[i - 1].second)
            << "overlapping compute on one accelerator";
      }
    }

    // 4. Accounted busy time matches the injected work.
    for (topology::AccId acc = 0; acc < topo.size(); ++acc) {
      EXPECT_NEAR(result.acc_busy[static_cast<std::size_t>(acc)].count(),
                  random.acc_work_seconds[static_cast<std::size_t>(acc)], 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorStress, ::testing::Values(1, 2, 3, 4));

/// FlatTaskGraph::from must mirror the builder form column for column on
/// arbitrary graphs — the serving engine's event ordering (and so its
/// bit-determinism) depends on the flat arrays preserving builder order
/// exactly: tasks in id order, dependents in construction order
/// (duplicate edges preserved), roots in id order.
TEST(ExecutorStress, FlatGraphMirrorsBuilderOrder) {
  const topology::Topology topo = topology::f1_16xlarge();
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const RandomGraph random = random_graph(topo, rng, 200);
    const FlatTaskGraph flat = FlatTaskGraph::from(random.tg);

    ASSERT_EQ(flat.size, random.tg.size());
    ASSERT_EQ(flat.dependent_offsets.size(),
              static_cast<std::size_t>(flat.size) + 1);
    std::vector<TaskId> expected_roots;
    for (const Task& task : random.tg.tasks()) {
      const auto t = static_cast<std::size_t>(task.id);
      EXPECT_EQ(flat.kinds[t], task.kind);
      EXPECT_EQ(flat.accs[t], task.acc);
      EXPECT_EQ(flat.durations[t].count(), task.duration.count());
      EXPECT_EQ(flat.srcs[t], task.src);
      EXPECT_EQ(flat.dsts[t], task.dst);
      EXPECT_EQ(flat.bytes[t].count(), task.bytes.count());
      EXPECT_EQ(flat.dep_counts[t], static_cast<int>(task.deps.size()));
      if (task.deps.empty()) expected_roots.push_back(task.id);
    }
    EXPECT_EQ(flat.roots, expected_roots);

    // Rebuild each task's dependents by scanning tasks in id order and
    // their deps in declaration order — the construction order the CSR
    // must reproduce.
    std::vector<std::vector<TaskId>> expected(
        static_cast<std::size_t>(flat.size));
    for (const Task& task : random.tg.tasks()) {
      for (TaskId dep : task.deps) {
        expected[static_cast<std::size_t>(dep)].push_back(task.id);
      }
    }
    for (int t = 0; t < flat.size; ++t) {
      const auto begin =
          static_cast<std::size_t>(flat.dependent_offsets[static_cast<std::size_t>(t)]);
      const auto end = static_cast<std::size_t>(
          flat.dependent_offsets[static_cast<std::size_t>(t) + 1]);
      const std::vector<TaskId> actual(flat.dependents.begin() + begin,
                                       flat.dependents.begin() + end);
      EXPECT_EQ(actual, expected[static_cast<std::size_t>(t)]) << "task " << t;
    }
  }
}

/// 100k-request serving soak: the arena-backed engine recycles instance
/// blocks through its free lists for the whole stream. Run under
/// ASan/UBSan in CI, this catches any reuse-before-last-event or
/// trailing-array overflow in the recycling scheme; the accounting
/// checks pin that no request was lost or double-counted.
TEST(ExecutorStress, ServingSoakRecyclesInstances) {
  const topology::Topology topo = topology::h2h_cloud(4, gbps(4.0), 4);
  const accel::DesignRegistry designs = accel::h2h_designs();
  const plan::BaselineEngine baseline;
  const serve::ModelService service("alexnet", topo, designs,
                                    /*adaptive=*/false, baseline);

  const serve::PolicySpec policy = serve::PolicySpec::parse("shed:8");
  serve::SchedulerOptions options;
  options.policy = policy.batch;
  options.admission = policy.admission;
  const serve::OnlineScheduler scheduler(topo, {&service}, options);

  const std::vector<serve::Request> arrivals =
      serve::poisson_arrivals({1.0}, 50000.0, Seconds(2.0), 17);
  ASSERT_GT(arrivals.size(), 90000u);
  const serve::ServeResult result = scheduler.run(arrivals);
  EXPECT_EQ(result.completed.size() + result.rejected.size(),
            arrivals.size());
  EXPECT_GT(result.completed.size(), 0u);
  EXPECT_GT(result.rejected.size(), 0u);  // shed:8 really bounded the depth
  EXPECT_EQ(result.tasks_executed,
            static_cast<long long>(result.completed.size()) *
                service.proto().size());
  EXPECT_GT(result.horizon.count(), 0.0);
}

TEST(ExecutorStress, LongDependencyChain) {
  const topology::Topology topo = topology::fully_connected(2, gbps(8.0), gbps(2.0));
  const Executor exec(topo, {});
  TaskGraph tg;
  TaskId prev = tg.add_compute(0, microseconds(1.0), "t0");
  for (int i = 1; i < 500; ++i) {
    prev = tg.add_compute(i % 2, microseconds(1.0), "t" + std::to_string(i),
                          {prev});
  }
  const ExecutionResult result = exec.run(tg);
  EXPECT_NEAR(result.makespan.micros(), 500.0, 1e-6);
}

TEST(ExecutorStress, WideFanOutFanIn) {
  const topology::Topology topo = topology::fully_connected(8, gbps(8.0), gbps(2.0));
  const Executor exec(topo, {});
  TaskGraph tg;
  const TaskId source = tg.add_compute(0, microseconds(1.0), "src");
  std::vector<TaskId> middle;
  for (int i = 0; i < 64; ++i) {
    middle.push_back(tg.add_compute(i % 8, microseconds(10.0),
                                    "m" + std::to_string(i), {source}));
  }
  const TaskId sink = tg.add_barrier(middle, "sink");
  const ExecutionResult result = exec.run(tg);
  // 64 tasks of 10us across 8 accelerators = 80us of serialized-per-acc
  // work after the 1us source.
  EXPECT_NEAR(result.makespan.micros(), 81.0, 1e-6);
  EXPECT_DOUBLE_EQ(result.timings[static_cast<std::size_t>(sink)].end.count(),
                   result.makespan.count());
}

}  // namespace
}  // namespace mars::sim
