// The four concrete search engines behind plan::SearchEngine.
//
//  * GaEngine       — the paper's two-level genetic search (wraps
//                     core::Mars; the default and strongest engine).
//  * AnnealingEngine — simulated annealing over the first-level skeleton
//                     genome, pricing each proposal with the memoised
//                     second-level greedy search (core::SkeletonSpace).
//  * RandomEngine   — budgeted random sampling of skeletons: the ablation
//                     floor any search must beat.
//  * BaselineEngine — the Herald-extended baseline (core/baseline.*), no
//                     search at all.
//
// All engines are deterministic under their config seed, honour Budget
// limits cooperatively, seed from the baseline mapping by default (so
// their result never loses to it under the analytic model), and validate
// their configuration at construction with named errors.
#pragma once

#include <memory>

#include "mars/core/mars.h"
#include "mars/plan/engine.h"

namespace mars::plan {

/// Two-level genetic search. Evaluations are first-level genome
/// evaluations; the budget is polled at generation boundaries.
class GaEngine final : public SearchEngine {
 public:
  explicit GaEngine(core::MarsConfig config = {});

  [[nodiscard]] std::string name() const override { return "ga"; }
  [[nodiscard]] std::string spec_string() const override;
  [[nodiscard]] PlanResult search(const core::Problem& problem,
                                  const Budget& budget = {},
                                  const ProgressFn& progress = {}) const override;
  [[nodiscard]] const core::MarsConfig& config() const { return config_; }

 private:
  core::MarsConfig config_;
};

struct AnnealConfig {
  core::SecondLevelConfig second;
  bool heuristic_candidates = true;
  /// GA-polish the winning skeleton's strategies (same pass as MARS).
  bool refine_winner = true;
  /// Start from the encoded baseline skeleton; off starts from a profiled
  /// random genome.
  bool seed_baseline = true;
  /// Proposal steps (= evaluations) when the budget does not stop earlier.
  int iterations = 1200;
  /// Geometric temperature schedule, relative to the current fitness:
  /// a move worsening fitness by `t x 100` percent is accepted with
  /// probability 1/e at temperature t.
  double initial_temperature = 0.2;
  double final_temperature = 1e-3;
  /// Gaussian step size per perturbed gene (genes live in [0, 1]).
  double step_sigma = 0.25;
  /// Genes perturbed per proposal.
  int moves_per_step = 2;
  std::uint64_t seed = 1;
};

class AnnealingEngine final : public SearchEngine {
 public:
  explicit AnnealingEngine(AnnealConfig config = {});

  [[nodiscard]] std::string name() const override { return "anneal"; }
  [[nodiscard]] std::string spec_string() const override;
  [[nodiscard]] PlanResult search(const core::Problem& problem,
                                  const Budget& budget = {},
                                  const ProgressFn& progress = {}) const override;
  [[nodiscard]] const AnnealConfig& config() const { return config_; }

 private:
  AnnealConfig config_;
};

struct RandomConfig {
  core::SecondLevelConfig second;
  bool heuristic_candidates = true;
  bool refine_winner = true;
  /// The first sample is the encoded baseline skeleton (quality floor).
  bool seed_baseline = true;
  /// Samples drawn (= evaluations) when the budget does not stop earlier.
  int samples = 1200;
  /// Fraction of samples drawn with profiled design genes (the paper's
  /// initialisation heuristic); the rest are uniform.
  double profiled_fraction = 0.5;
  std::uint64_t seed = 1;
};

class RandomEngine final : public SearchEngine {
 public:
  explicit RandomEngine(RandomConfig config = {});

  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] std::string spec_string() const override;
  [[nodiscard]] PlanResult search(const core::Problem& problem,
                                  const Budget& budget = {},
                                  const ProgressFn& progress = {}) const override;
  [[nodiscard]] const RandomConfig& config() const { return config_; }

 private:
  RandomConfig config_;
};

/// Herald-extended baseline: closed-form, zero evaluations, bypasses the
/// serving mapping cache (searches() is false).
class BaselineEngine final : public SearchEngine {
 public:
  [[nodiscard]] std::string name() const override { return "baseline"; }
  [[nodiscard]] std::string spec_string() const override { return "baseline"; }
  [[nodiscard]] bool searches() const override { return false; }
  [[nodiscard]] PlanResult search(const core::Problem& problem,
                                  const Budget& budget = {},
                                  const ProgressFn& progress = {}) const override;
};

/// The engine names make_engine accepts, in documentation order.
[[nodiscard]] const std::vector<std::string>& engine_names();

/// Builds an engine by name ("ga" — alias "mars" —, "anneal", "random",
/// "baseline"), deriving its configuration from `tuning`: the GA engine
/// takes it verbatim; anneal/random inherit the second-level config,
/// seed, candidate/refine/seed-baseline flags, and size their schedules
/// to the GA's evaluation budget (population x generations) so engine
/// comparisons are evaluation-fair. Throws InvalidArgument naming the
/// unknown engine and the valid names.
[[nodiscard]] std::unique_ptr<SearchEngine> make_engine(
    const std::string& name, const core::MarsConfig& tuning = {});

}  // namespace mars::plan
