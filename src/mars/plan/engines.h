// The five concrete search engines behind plan::SearchEngine.
//
//  * GaEngine       — the paper's two-level genetic search (wraps
//                     core::Mars; the default and strongest engine).
//  * AnnealingEngine — simulated annealing over the first-level skeleton
//                     genome, pricing each proposal with the memoised
//                     second-level greedy search (core::SkeletonSpace).
//  * RandomEngine   — budgeted random sampling of skeletons: the ablation
//                     floor any search must beat.
//  * BaselineEngine — the Herald-extended baseline (core/baseline.*), no
//                     search at all.
//  * PortfolioEngine — a composite: races member engines under slices of
//                     one shared budget and keeps the winning mapping
//                     (the MAGMA observation that no single optimizer
//                     wins across workloads, operationalised).
//
// All engines are deterministic under their config seed, honour Budget
// limits cooperatively, seed from the baseline mapping by default (so
// their result never loses to it under the analytic model), and validate
// their configuration at construction with named errors.
//
// Threading: every `threads` knob below fans fitness evaluation across a
// util::WorkerPool. Results are byte-identical at any thread count, so
// `threads` never appears in a spec_string (docs/PERFORMANCE.md).
#pragma once

#include <memory>

#include "mars/core/mars.h"
#include "mars/plan/engine.h"

namespace mars::plan {

/// Two-level genetic search. Evaluations are first-level genome
/// evaluations; the budget is polled at generation boundaries.
class GaEngine final : public SearchEngine {
 public:
  explicit GaEngine(core::MarsConfig config = {});

  [[nodiscard]] std::string name() const override { return "ga"; }
  [[nodiscard]] std::string spec_string() const override;
  [[nodiscard]] PlanResult search(const core::Problem& problem,
                                  const Budget& budget = {},
                                  const ProgressFn& progress = {}) const override;
  [[nodiscard]] const core::MarsConfig& config() const { return config_; }

 private:
  core::MarsConfig config_;
};

struct AnnealConfig {
  core::SecondLevelConfig second;
  bool heuristic_candidates = true;
  /// GA-polish the winning skeleton's strategies (same pass as MARS).
  bool refine_winner = true;
  /// Start from the encoded baseline skeleton; off starts from a profiled
  /// random genome.
  bool seed_baseline = true;
  /// Proposal steps (= evaluations) when the budget does not stop earlier.
  int iterations = 1200;
  /// Geometric temperature schedule, relative to the current fitness:
  /// a move worsening fitness by `t x 100` percent is accepted with
  /// probability 1/e at temperature t.
  double initial_temperature = 0.2;
  double final_temperature = 1e-3;
  /// Gaussian step size per perturbed gene (genes live in [0, 1]).
  double step_sigma = 0.25;
  /// Genes perturbed per proposal.
  int moves_per_step = 2;
  /// Independent Metropolis chains sharing the temperature schedule and
  /// the memoised second level; the best chain wins. Each step proposes
  /// one move per chain and prices them as one batch, so chains are what
  /// `threads` parallelises (one chain is inherently sequential). Part of
  /// the spec (changes results). Evaluation budgets stay exact: a step
  /// (and, without seed_baseline, the start cohort) truncates to the
  /// first k chains when fewer than `chains` evaluations remain.
  int chains = 1;
  std::uint64_t seed = 1;
  /// Fitness threads (execution-only, never in the spec; see above).
  int threads = 1;
};

class AnnealingEngine final : public SearchEngine {
 public:
  explicit AnnealingEngine(AnnealConfig config = {});

  [[nodiscard]] std::string name() const override { return "anneal"; }
  [[nodiscard]] std::string spec_string() const override;
  [[nodiscard]] PlanResult search(const core::Problem& problem,
                                  const Budget& budget = {},
                                  const ProgressFn& progress = {}) const override;
  [[nodiscard]] const AnnealConfig& config() const { return config_; }

 private:
  AnnealConfig config_;
};

struct RandomConfig {
  core::SecondLevelConfig second;
  bool heuristic_candidates = true;
  bool refine_winner = true;
  /// The first sample is the encoded baseline skeleton (quality floor).
  bool seed_baseline = true;
  /// Samples drawn (= evaluations) when the budget does not stop earlier.
  int samples = 1200;
  /// Fraction of samples drawn with profiled design genes (the paper's
  /// initialisation heuristic); the rest are uniform.
  double profiled_fraction = 0.5;
  std::uint64_t seed = 1;
  /// Fitness threads (execution-only, never in the spec). Samples are
  /// drawn in fixed-size batches (32) whose size is independent of
  /// `threads` and clamped to the remaining evaluation budget, so
  /// evaluation budgets stay exact and results match the serial engine
  /// bit for bit. Wall-clock budgets and cancellation are polled at
  /// batch boundaries, so either may overshoot by up to one batch.
  int threads = 1;
};

class RandomEngine final : public SearchEngine {
 public:
  explicit RandomEngine(RandomConfig config = {});

  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] std::string spec_string() const override;
  [[nodiscard]] PlanResult search(const core::Problem& problem,
                                  const Budget& budget = {},
                                  const ProgressFn& progress = {}) const override;
  [[nodiscard]] const RandomConfig& config() const { return config_; }

 private:
  RandomConfig config_;
};

/// Herald-extended baseline: closed-form, zero evaluations, bypasses the
/// serving mapping cache (searches() is false).
class BaselineEngine final : public SearchEngine {
 public:
  [[nodiscard]] std::string name() const override { return "baseline"; }
  [[nodiscard]] std::string spec_string() const override { return "baseline"; }
  [[nodiscard]] bool searches() const override { return false; }
  [[nodiscard]] PlanResult search(const core::Problem& problem,
                                  const Budget& budget = {},
                                  const ProgressFn& progress = {}) const override;
};

/// Races member engines sequentially under slices of one shared Budget
/// and returns the member mapping with the lowest analytic makespan
/// (ties to the earlier member). Slicing policy: before member i of the
/// n - i not yet raced, the remaining evaluation/wall-clock budget is
/// divided evenly among the n - i — so a member that stops early
/// (converged, stall) donates its unused slice to the members after it.
/// An optional per-member wall-clock cap ("race:ga+anneal,500") applies
/// on top (min with the slice). Cancellation is checked between members;
/// a cancelled portfolio returns the best mapping of the members that
/// did run (the first member always runs — engines return a valid
/// mapping even pre-cancelled).
///
/// Provenance: engine "portfolio", `winner` names the winning member,
/// `members` holds each raced member's own provenance in order, and
/// evaluations/iterations sum over members. spec_string() embeds every
/// member's spec, so a portfolio never aliases a member alone in the
/// mapping cache.
class PortfolioEngine final : public SearchEngine {
 public:
  /// `members` must hold >= 2 engines; `member_wall` <= 0 means no
  /// per-member cap. Throws InvalidArgument (named) otherwise.
  explicit PortfolioEngine(std::vector<std::unique_ptr<SearchEngine>> members,
                           Seconds member_wall = Seconds(0.0));

  [[nodiscard]] std::string name() const override { return "portfolio"; }
  [[nodiscard]] std::string spec_string() const override;
  [[nodiscard]] PlanResult search(const core::Problem& problem,
                                  const Budget& budget = {},
                                  const ProgressFn& progress = {}) const override;
  [[nodiscard]] const std::vector<std::unique_ptr<SearchEngine>>& members()
      const {
    return members_;
  }

 private:
  std::vector<std::unique_ptr<SearchEngine>> members_;
  Seconds member_wall_;
};

/// The engine names make_engine accepts, in documentation order.
[[nodiscard]] const std::vector<std::string>& engine_names();

/// Builds an engine by name ("ga" — alias "mars" —, "anneal", "random",
/// "baseline", "portfolio"), deriving its configuration from `tuning`:
/// the GA engine takes it verbatim; anneal/random inherit the
/// second-level config, seed, threads, candidate/refine/seed-baseline
/// flags, and size their schedules to the GA's evaluation budget
/// (population x generations) so engine comparisons are evaluation-fair.
/// "portfolio" races ga+anneal+random; "race:<m>+<m>[+...][,MS]" picks
/// the members explicitly with an optional per-member wall-clock cap of
/// MS milliseconds (members are leaf engine names — a race inside a race
/// is rejected). Throws InvalidArgument naming the unknown engine and
/// the valid names.
[[nodiscard]] std::unique_ptr<SearchEngine> make_engine(
    const std::string& name, const core::MarsConfig& tuning = {});

}  // namespace mars::plan
