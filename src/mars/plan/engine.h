// The planning seam: mapping search as a swappable component.
//
// MAGMA-style head-to-head optimizer comparisons need every mapper behind
// one interface: SearchEngine takes a core::Problem, a Budget, and an
// optional progress callback, and returns a PlanResult — the mapping,
// both cost views, the convergence history, and a Provenance record
// (engine identity, evaluations, elapsed time, why it stopped). Concrete
// engines live in plan/engines.h; the Planner facade that owns the
// problem lifetimes is plan/planner.h.
//
// Engine identity matters beyond reporting: spec_string() is the
// canonical (engine name + every result-affecting knob, seed included)
// string the serving MappingCache hashes, so mappings searched by one
// engine or configuration are never served to another.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mars/core/mapping.h"
#include "mars/plan/budget.h"
#include "mars/util/json.h"

namespace mars::core {
struct Problem;
}

namespace mars::plan {

/// Periodic search telemetry (rate-limited by the engine).
struct Progress {
  long long evaluations = 0;
  /// Best penalized analytic makespan so far, in seconds.
  double best_fitness = 0.0;
  Seconds elapsed{};
};
using ProgressFn = std::function<void(const Progress&)>;

/// Where a mapping came from: everything needed to reproduce or audit it.
struct Provenance {
  std::string engine;  // "ga" | "anneal" | "random" | "baseline" | "portfolio"
  std::string spec;    // canonical engine + config identity (cache key)
  long long evaluations = 0;
  int iterations = 0;  // GA generations / SA steps / samples drawn
  Seconds elapsed{};
  StopReason stopped = StopReason::kCompleted;
  /// Composite engines only (portfolio): the member whose mapping won,
  /// and one provenance record per member raced, in racing order —
  /// evaluations/elapsed then sum over `members`. Empty for leaf engines.
  std::string winner;
  std::vector<Provenance> members;
};

[[nodiscard]] JsonValue to_json(const Provenance& provenance);

struct PlanResult {
  core::Mapping mapping;
  core::EvaluationSummary summary;
  /// Best fitness after each iteration (convergence curves).
  std::vector<double> history;
  Provenance provenance;
};

class SearchEngine {
 public:
  virtual ~SearchEngine() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Canonical identity string: the name plus every configuration knob
  /// (seed included) that can change the returned mapping. Two engines
  /// whose spec_strings match are guaranteed to return identical mappings
  /// for the same problem and budget.
  [[nodiscard]] virtual std::string spec_string() const = 0;

  /// False for closed-form mappers (baseline): no search runs, so there
  /// is nothing worth caching and budgets are trivially met.
  [[nodiscard]] virtual bool searches() const { return true; }

  /// Runs the search on `problem` under `budget`. Always returns a valid
  /// mapping: engines evaluate their seed point before polling the budget,
  /// so even a pre-cancelled search yields the best candidate seen.
  [[nodiscard]] virtual PlanResult search(const core::Problem& problem,
                                          const Budget& budget = {},
                                          const ProgressFn& progress = {})
      const = 0;
};

}  // namespace mars::plan
