#include "mars/plan/engines.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "mars/core/baseline.h"
#include "mars/core/skeleton_space.h"
#include "mars/ga/operators.h"
#include "mars/obs/trace.h"
#include "mars/util/error.h"
#include "mars/util/strings.h"
#include "mars/util/worker_pool.h"

namespace mars::plan {
namespace {

/// How often the skeleton-sampling engines report progress (steps), and
/// how many samples the random engine draws per evaluation batch. Fixed —
/// never derived from the thread count — so results are independent of
/// `threads` by construction.
constexpr int kProgressStride = 32;

/// A fitness pool when `threads` asks for one; engines pass nullptr (the
/// serial path) otherwise so a single-threaded search costs nothing.
std::unique_ptr<util::WorkerPool> make_pool(int threads) {
  return threads > 1 ? std::make_unique<util::WorkerPool>(threads) : nullptr;
}

/// Wall-domain search progress: evaluation-count and best-fitness counter
/// lanes named after the engine. No-op without an installed recorder;
/// search results never depend on whether tracing is on.
void trace_progress(const char* engine, long long evaluations, double best) {
  obs::TraceRecorder* rec = obs::trace();
  if (rec == nullptr) return;
  const Seconds now = rec->wall_now();
  rec->counter(obs::Clock::kWall, std::string(engine) + " evaluations", now,
               static_cast<double>(evaluations));
  if (std::isfinite(best)) {
    rec->counter(obs::Clock::kWall, std::string(engine) + " best_fitness", now,
                 best);
  }
}

void append_ga(std::ostream& os, const ga::GaConfig& config) {
  os << "pop=" << config.population << ",gen=" << config.generations
     << ",elite=" << config.elite << ",tour=" << config.tournament
     << ",cx=" << config.crossover_rate << ",mut=" << config.mutation_rate
     << ",sigma=" << config.mutation_sigma
     << ",stall=" << config.stall_generations << ",lo=" << config.gene_lo
     << ",hi=" << config.gene_hi;
}

void append_second(std::ostream& os, const core::SecondLevelConfig& config) {
  os << "second{";
  append_ga(os, config.ga);
  os << ",ss=" << config.enable_ss << ",esdims=" << config.max_es_dims << '}';
}

/// A leaf engine's provenance record (winner/members stay empty).
Provenance leaf_provenance(std::string engine, std::string spec,
                           long long evaluations, int iterations,
                           StopReason stopped) {
  Provenance provenance;
  provenance.engine = std::move(engine);
  provenance.spec = std::move(spec);
  provenance.evaluations = evaluations;
  provenance.iterations = iterations;
  provenance.stopped = stopped;
  return provenance;
}

/// Shared tail of the skeleton-sampling engines: complete the winning
/// skeleton, optionally polish it, and assemble the PlanResult.
PlanResult finish(core::SkeletonSpace& space, const core::Skeleton& winner,
                  bool refine_winner, Rng& rng, std::vector<double> history,
                  Provenance provenance, const BudgetMeter& meter) {
  PlanResult result;
  result.mapping = space.complete(winner);
  // Like Mars: a search stopped by its budget returns without the polish
  // pass, so cancellation and exhausted budgets take effect promptly.
  if (refine_winner && provenance.stopped == StopReason::kCompleted) {
    space.polish(result.mapping, rng);
  }
  result.summary = space.evaluator().evaluate(result.mapping);
  result.history = std::move(history);
  provenance.elapsed = meter.elapsed();
  result.provenance = std::move(provenance);
  return result;
}

}  // namespace

// ----------------------------------------------------------------- GaEngine

GaEngine::GaEngine(core::MarsConfig config) : config_(config) {
  core::validate_config(config_);
}

std::string GaEngine::spec_string() const {
  std::ostringstream os;
  os << "ga[";
  append_ga(os, config_.first_ga);
  os << ',';
  append_second(os, config_.second);
  os << ",refine=" << config_.refine_winner
     << ",seedbase=" << config_.seed_baseline
     << ",profinit=" << config_.profiled_init
     << ",heur=" << config_.heuristic_candidates
     << ",two=" << config_.two_level << ",seed=" << config_.seed << ']';
  return os.str();
}

PlanResult GaEngine::search(const core::Problem& problem, const Budget& budget,
                            const ProgressFn& progress) const {
  BudgetMeter meter(budget);
  const obs::ScopedWallSpan span("plan", "search ga");
  core::Mars mars(problem, config_);
  ga::StopFn stop;
  long long last_reported = -1;
  if (!budget.unlimited() || progress || obs::trace() != nullptr) {
    // Mars re-polls the hook after the GA to decide on the polish pass;
    // dedupe by evaluation count so callers see each generation once.
    stop = [&](long long evaluations, double best) {
      if (evaluations != last_reported) {
        trace_progress("ga", evaluations, best);
        if (progress) progress({evaluations, best, meter.elapsed()});
        last_reported = evaluations;
      }
      return meter.exhausted(evaluations);
    };
  }
  core::MarsResult searched = mars.search(stop);

  PlanResult result;
  result.mapping = std::move(searched.mapping);
  result.summary = searched.summary;
  result.history = std::move(searched.first_level.history);
  result.provenance =
      leaf_provenance(name(), spec_string(), searched.first_level.evaluations,
                      searched.first_level.generations_run, meter.reason());
  result.provenance.elapsed = meter.elapsed();
  return result;
}

// ---------------------------------------------------------- AnnealingEngine

AnnealingEngine::AnnealingEngine(AnnealConfig config)
    : config_(std::move(config)) {
  ga::validate_config(config_.second.ga);
  MARS_CHECK_ARG(config_.iterations >= 1,
                 "annealing iterations must be >= 1, got "
                     << config_.iterations);
  MARS_CHECK_ARG(config_.initial_temperature > 0.0,
                 "annealing initial_temperature must be > 0, got "
                     << config_.initial_temperature);
  MARS_CHECK_ARG(config_.final_temperature > 0.0 &&
                     config_.final_temperature <= config_.initial_temperature,
                 "annealing final_temperature must be in (0, initial], got "
                     << config_.final_temperature << " with initial "
                     << config_.initial_temperature);
  MARS_CHECK_ARG(config_.step_sigma > 0.0,
                 "annealing step_sigma must be > 0, got " << config_.step_sigma);
  MARS_CHECK_ARG(config_.moves_per_step >= 1,
                 "annealing moves_per_step must be >= 1, got "
                     << config_.moves_per_step);
  MARS_CHECK_ARG(config_.chains >= 1,
                 "annealing chains must be >= 1, got " << config_.chains);
  MARS_CHECK_ARG(config_.threads >= 1,
                 "annealing threads must be >= 1, got " << config_.threads);
}

std::string AnnealingEngine::spec_string() const {
  std::ostringstream os;
  os << "anneal[iters=" << config_.iterations
     << ",t0=" << config_.initial_temperature
     << ",tend=" << config_.final_temperature
     << ",sigma=" << config_.step_sigma << ",moves=" << config_.moves_per_step
     << ",chains=" << config_.chains << ",seedbase=" << config_.seed_baseline
     << ",refine=" << config_.refine_winner
     << ",heur=" << config_.heuristic_candidates << ',';
  append_second(os, config_.second);
  os << ",seed=" << config_.seed << ']';
  return os.str();
}

PlanResult AnnealingEngine::search(const core::Problem& problem,
                                   const Budget& budget,
                                   const ProgressFn& progress) const {
  BudgetMeter meter(budget);
  const obs::ScopedWallSpan span("plan", "search anneal");
  core::SkeletonSpace space(problem,
                            {config_.second, config_.heuristic_candidates});
  const core::FirstLevelCodec& codec = space.codec();
  const std::unique_ptr<util::WorkerPool> pool = make_pool(config_.threads);
  Rng master(config_.seed);
  const std::vector<double> scores = space.design_scores();

  // One independent Metropolis chain per config_.chains, each with its
  // own forked RNG stream — so a chain's draws never depend on how its
  // siblings' evaluations were scheduled, which is what keeps results
  // byte-identical at any thread count. Under an evaluation budget
  // smaller than the chain count, only the first `budget` chains start
  // (the profiled-random start cohort is one evaluation per chain), so
  // even initialisation never overdraws.
  int chains = config_.chains;
  if (!config_.seed_baseline && budget.max_evaluations > 0) {
    chains = static_cast<int>(std::min<long long>(
        chains, std::max<long long>(1, budget.max_evaluations)));
  }
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(chains));
  for (int c = 0; c < chains; ++c) rngs.push_back(master.fork());

  std::vector<ga::Genome> current(static_cast<std::size_t>(chains));
  std::vector<double> current_fitness(static_cast<std::size_t>(chains));
  long long evaluations = 0;
  if (config_.seed_baseline) {
    // All chains start from the baseline skeleton: one evaluation, shared.
    // Priced through the genome overload so the start point leaves a
    // record behind for the first step's delta evaluation.
    const ga::Genome start = codec.encode(space.baseline(), scores);
    const double fitness =
        space.fitness_batch(std::vector<ga::Genome>{start}, pool.get())
            .front();
    evaluations = 1;
    for (int c = 0; c < chains; ++c) {
      current[static_cast<std::size_t>(c)] = start;
      current_fitness[static_cast<std::size_t>(c)] = fitness;
    }
  } else {
    std::vector<ga::Genome> starts;
    starts.reserve(static_cast<std::size_t>(chains));
    for (int c = 0; c < chains; ++c) {
      starts.push_back(
          codec.profiled_random(scores, rngs[static_cast<std::size_t>(c)]));
    }
    current_fitness = space.fitness_batch(starts, pool.get());
    current = std::move(starts);
    evaluations = chains;
  }

  std::size_t best_chain = 0;
  for (std::size_t c = 1; c < current_fitness.size(); ++c) {
    if (current_fitness[c] < current_fitness[best_chain]) best_chain = c;
  }
  ga::Genome best = current[best_chain];
  double best_fitness = current_fitness[best_chain];
  std::vector<double> history{best_fitness};

  int step = 0;
  for (; step < config_.iterations; ++step) {
    if (meter.exhausted(evaluations)) break;
    // Geometric cooling from t0 to tend across the configured schedule.
    const double fraction =
        config_.iterations > 1
            ? static_cast<double>(step) / (config_.iterations - 1)
            : 1.0;
    const double temperature =
        config_.initial_temperature *
        std::pow(config_.final_temperature / config_.initial_temperature,
                 fraction);

    // This step's cohort: one proposal per chain, truncated to the first
    // k chains when the evaluation budget has fewer than `chains` left
    // (keeps the budget exact, like the serial engine).
    std::size_t active = static_cast<std::size_t>(chains);
    if (budget.max_evaluations > 0) {
      active = static_cast<std::size_t>(
          std::min<long long>(static_cast<long long>(active),
                              budget.max_evaluations - evaluations));
    }
    // Each proposal is its chain's current genome plus moves_per_step gene
    // edits, and is priced as that move: the listed genes are a superset
    // of the actual diff (a clamped edit may land on the old value), which
    // is exactly the GenomeDelta contract. fitness_delta_batch returns the
    // full-evaluation values bit-for-bit, so the chains are unchanged.
    std::vector<ga::Genome> proposals;
    std::vector<ga::GenomeDelta> moves;
    proposals.reserve(active);
    moves.reserve(active);
    for (std::size_t c = 0; c < active; ++c) {
      ga::Genome proposal = current[c];
      ga::GenomeDelta move;
      move.parent = c;
      for (int m = 0; m < config_.moves_per_step; ++m) {
        const std::size_t gene = rngs[c].index(proposal.size());
        proposal[gene] = std::clamp(
            proposal[gene] + rngs[c].gaussian(0.0, config_.step_sigma), 0.0,
            1.0);
        move.changed.push_back(gene);
      }
      proposals.push_back(std::move(proposal));
      moves.push_back(std::move(move));
    }
    const std::vector<double> proposal_fitness =
        space.fitness_delta_batch(current, proposals, moves, pool.get());
    evaluations += static_cast<long long>(active);

    for (std::size_t c = 0; c < active; ++c) {
      // Metropolis on the relative regression: scale-free across models.
      const double delta = (proposal_fitness[c] - current_fitness[c]) /
                           std::max(current_fitness[c], 1e-30);
      if (proposal_fitness[c] <= current_fitness[c] ||
          rngs[c].chance(std::exp(-delta / temperature))) {
        current[c] = std::move(proposals[c]);
        current_fitness[c] = proposal_fitness[c];
      }
      if (current_fitness[c] < best_fitness) {
        best = current[c];
        best_fitness = current_fitness[c];
      }
    }
    history.push_back(best_fitness);
    if (step % kProgressStride == 0) {
      trace_progress("anneal", evaluations, best_fitness);
      if (obs::TraceRecorder* rec = obs::trace()) {
        // Per-chain current-fitness lanes: shows which chains are stuck
        // at which temperature.
        const Seconds now = rec->wall_now();
        for (std::size_t c = 0; c < current_fitness.size(); ++c) {
          rec->counter(obs::Clock::kWall, "anneal chain " + std::to_string(c),
                       now, current_fitness[c]);
        }
      }
      if (progress) progress({evaluations, best_fitness, meter.elapsed()});
    }
  }

  return finish(space, codec.decode(best), config_.refine_winner, master,
                std::move(history),
                leaf_provenance(name(), spec_string(), evaluations, step,
                                meter.reason()),
                meter);
}

// ------------------------------------------------------------- RandomEngine

RandomEngine::RandomEngine(RandomConfig config) : config_(std::move(config)) {
  ga::validate_config(config_.second.ga);
  MARS_CHECK_ARG(config_.samples >= 1,
                 "random-search samples must be >= 1, got " << config_.samples);
  MARS_CHECK_ARG(
      config_.profiled_fraction >= 0.0 && config_.profiled_fraction <= 1.0,
      "random-search profiled_fraction must be in [0, 1], got "
          << config_.profiled_fraction);
  MARS_CHECK_ARG(config_.threads >= 1,
                 "random-search threads must be >= 1, got "
                     << config_.threads);
}

std::string RandomEngine::spec_string() const {
  std::ostringstream os;
  os << "random[samples=" << config_.samples
     << ",profiled=" << config_.profiled_fraction
     << ",seedbase=" << config_.seed_baseline
     << ",refine=" << config_.refine_winner
     << ",heur=" << config_.heuristic_candidates << ',';
  append_second(os, config_.second);
  os << ",seed=" << config_.seed << ']';
  return os.str();
}

PlanResult RandomEngine::search(const core::Problem& problem,
                                const Budget& budget,
                                const ProgressFn& progress) const {
  BudgetMeter meter(budget);
  const obs::ScopedWallSpan span("plan", "search random");
  core::SkeletonSpace space(problem,
                            {config_.second, config_.heuristic_candidates});
  const core::FirstLevelCodec& codec = space.codec();
  const std::unique_ptr<util::WorkerPool> pool = make_pool(config_.threads);
  Rng rng(config_.seed);
  const std::vector<double> scores = space.design_scores();

  ga::Genome best;
  double best_fitness = std::numeric_limits<double>::infinity();
  long long evaluations = 0;
  std::vector<double> history;

  // Samples are drawn serially (one RNG stream, same order as a serial
  // sweep) but priced in batches of kProgressStride. The batch size is
  // clamped to the remaining evaluation budget — never derived from the
  // thread count — so budget honouring stays exact and results are
  // byte-identical at any `threads`. The first batch is the seed point
  // alone: a pre-cancelled search still returns a valid mapping having
  // spent exactly one evaluation.
  int drawn = 0;
  while (drawn < config_.samples) {
    if (drawn > 0 && meter.exhausted(evaluations)) break;
    long long batch_size =
        std::min<long long>(kProgressStride, config_.samples - drawn);
    if (drawn == 0) batch_size = 1;
    if (budget.max_evaluations > 0) {
      batch_size =
          std::min(batch_size, budget.max_evaluations - evaluations);
    }
    MARS_CHECK(batch_size >= 1, "random-search batch underflow");

    std::vector<ga::Genome> samples;
    samples.reserve(static_cast<std::size_t>(batch_size));
    for (long long i = 0; i < batch_size; ++i) {
      if (drawn + i == 0 && config_.seed_baseline) {
        samples.push_back(codec.encode(space.baseline(), scores));
      } else if (rng.chance(config_.profiled_fraction)) {
        samples.push_back(codec.profiled_random(scores, rng));
      } else {
        samples.push_back(
            ga::random_genome(codec.genome_size(), 0.0, 1.0, rng));
      }
    }
    const std::vector<double> fitnesses =
        space.fitness_batch(samples, pool.get());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      ++evaluations;
      if (fitnesses[i] < best_fitness) {
        best = std::move(samples[i]);
        best_fitness = fitnesses[i];
      }
      history.push_back(best_fitness);
    }
    drawn += static_cast<int>(batch_size);
    trace_progress("random", evaluations, best_fitness);
    if (progress) {
      progress({evaluations, best_fitness, meter.elapsed()});
    }
  }

  return finish(space, codec.decode(best), config_.refine_winner, rng,
                std::move(history),
                leaf_provenance(name(), spec_string(), evaluations, drawn,
                                meter.reason()),
                meter);
}

// ----------------------------------------------------------- BaselineEngine

PlanResult BaselineEngine::search(const core::Problem& problem,
                                  const Budget& budget,
                                  const ProgressFn& progress) const {
  BudgetMeter meter(budget);
  const obs::ScopedWallSpan span("plan", "search baseline");
  const accel::ProfileMatrix profile(*problem.designs, *problem.spine);
  PlanResult result;
  result.mapping = core::baseline_mapping(problem, profile);
  result.summary = core::MappingEvaluator(problem).evaluate(result.mapping);
  result.history = {result.summary.analytic_makespan.count()};
  if (progress) {
    progress({0, result.summary.analytic_makespan.count(), meter.elapsed()});
  }
  result.provenance =
      leaf_provenance(name(), spec_string(), 0, 0, StopReason::kCompleted);
  result.provenance.elapsed = meter.elapsed();
  return result;
}

// ---------------------------------------------------------- PortfolioEngine

PortfolioEngine::PortfolioEngine(
    std::vector<std::unique_ptr<SearchEngine>> members, Seconds member_wall)
    : members_(std::move(members)), member_wall_(member_wall) {
  MARS_CHECK_ARG(members_.size() >= 2,
                 "portfolio needs >= 2 member engines, got "
                     << members_.size());
  for (const std::unique_ptr<SearchEngine>& member : members_) {
    MARS_CHECK_ARG(member != nullptr, "portfolio member engine is null");
  }
}

std::string PortfolioEngine::spec_string() const {
  std::ostringstream os;
  os << "portfolio[";
  if (member_wall_.count() > 0.0) {
    os << "member_wall_ms=" << member_wall_.count() * 1e3 << ',';
  }
  os << "members=";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    os << (i > 0 ? ";" : "") << members_[i]->spec_string();
  }
  os << ']';
  return os.str();
}

PlanResult PortfolioEngine::search(const core::Problem& problem,
                                   const Budget& budget,
                                   const ProgressFn& progress) const {
  BudgetMeter meter(budget);
  const obs::ScopedWallSpan span("plan", "search portfolio");
  Provenance provenance;
  provenance.engine = name();
  provenance.spec = spec_string();

  PlanResult best;
  bool have_result = false;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    // The first member always races (its engine returns a valid mapping
    // even pre-cancelled); later members only start while budget remains.
    if (i > 0 && meter.exhausted(provenance.evaluations)) break;

    // This member's slice: the remaining budget, divided evenly over the
    // members not yet raced — a member that finishes under its slice
    // donates the leftovers to those after it.
    const auto remaining_members =
        static_cast<long long>(members_.size() - i);
    Budget slice;
    slice.cancel = budget.cancel;
    slice.clock = budget.clock;
    if (budget.max_evaluations > 0) {
      slice.max_evaluations =
          std::max<long long>(1, (budget.max_evaluations -
                                  provenance.evaluations) /
                                     remaining_members);
    }
    if (budget.wall_clock.count() > 0.0) {
      const double remaining_s =
          std::max(0.0, (budget.wall_clock - meter.elapsed()).count());
      // Keep the limit armed even when overdrawn (0 would mean "off").
      slice.wall_clock = Seconds(
          std::max(remaining_s / static_cast<double>(remaining_members),
                   1e-9));
    }
    if (member_wall_.count() > 0.0 &&
        (slice.wall_clock.count() <= 0.0 || member_wall_ < slice.wall_clock)) {
      slice.wall_clock = member_wall_;
    }

    ProgressFn member_progress;
    if (progress) {
      const long long offset = provenance.evaluations;
      member_progress = [&, offset](const Progress& update) {
        progress({offset + update.evaluations, update.best_fitness,
                  meter.elapsed()});
      };
    }
    obs::TraceRecorder* rec = obs::trace();
    const Seconds member_start =
        rec != nullptr ? rec->wall_now() : Seconds(0.0);
    PlanResult raced = members_[i]->search(problem, slice, member_progress);
    if (rec != nullptr) {
      // One wall span per raced member on the shared "plan" track, so a
      // portfolio run renders as back-to-back member slices.
      rec->complete(obs::Clock::kWall, rec->track(obs::Clock::kWall, "plan"),
                    "member " + raced.provenance.engine, member_start,
                    rec->wall_now() - member_start,
                    {{"evaluations",
                      JsonValue::integer(raced.provenance.evaluations)}});
    }
    provenance.evaluations += raced.provenance.evaluations;
    provenance.iterations += raced.provenance.iterations;
    provenance.members.push_back(raced.provenance);
    if (!have_result ||
        raced.summary.analytic_makespan < best.summary.analytic_makespan) {
      provenance.winner = provenance.members.back().engine;
      best = std::move(raced);
      have_result = true;
    }
  }

  // The overall stop reason: whichever shared limit (if any) has fired by
  // the end of the race — members stopping at their own slices is normal
  // completion, visible per member under provenance.members.
  (void)meter.exhausted(provenance.evaluations);
  provenance.stopped = meter.reason();
  provenance.elapsed = meter.elapsed();
  best.provenance = std::move(provenance);
  return best;
}

// ---------------------------------------------------------------- factory

namespace {

/// A leaf (non-composite) engine by name; nullptr when `name` is unknown.
std::unique_ptr<SearchEngine> make_leaf_engine(
    const std::string& name, const core::MarsConfig& tuning) {
  // Evaluation-fair schedules: anneal/random get the GA's worst-case
  // evaluation count (population x generations) so a budgetless
  // engine-comparison sweep compares equals.
  const long long ga_evaluations =
      static_cast<long long>(std::max(1, tuning.first_ga.population)) *
      std::max(1, tuning.first_ga.generations);
  if (name == "ga" || name == "mars") {
    return std::make_unique<GaEngine>(tuning);
  }
  if (name == "anneal") {
    AnnealConfig config;
    config.second = tuning.second;
    config.heuristic_candidates = tuning.heuristic_candidates;
    config.refine_winner = tuning.refine_winner;
    config.seed_baseline = tuning.seed_baseline;
    config.iterations = static_cast<int>(
        std::min<long long>(ga_evaluations, 1 << 20));
    config.seed = tuning.seed;
    config.threads = tuning.threads;
    return std::make_unique<AnnealingEngine>(config);
  }
  if (name == "random") {
    RandomConfig config;
    config.second = tuning.second;
    config.heuristic_candidates = tuning.heuristic_candidates;
    config.refine_winner = tuning.refine_winner;
    config.seed_baseline = tuning.seed_baseline;
    config.samples = static_cast<int>(
        std::min<long long>(ga_evaluations, 1 << 20));
    config.seed = tuning.seed;
    config.threads = tuning.threads;
    return std::make_unique<RandomEngine>(config);
  }
  if (name == "baseline") {
    return std::make_unique<BaselineEngine>();
  }
  return nullptr;
}

/// "race:<m>[@seed]+<m>[@seed][+...][,MS]" -> a PortfolioEngine over named
/// leaf members with an optional per-member wall-clock cap. A member may
/// pin its own RNG seed with `@<seed>` (e.g. race:ga@7+anneal@9,250):
/// members without one inherit the session seed. The seed lands in the
/// member's spec_string(), so two races differing only in member seeds
/// get distinct serve-cache fingerprints.
std::unique_ptr<SearchEngine> make_race_engine(
    const std::string& spec, const core::MarsConfig& tuning) {
  const std::string body = spec.substr(std::string("race:").size());
  std::vector<std::string> parts = split(body, ',');
  MARS_CHECK_ARG(!parts.empty() && parts.size() <= 2,
                 "bad race spec '"
                     << spec << "' (use race:<m>[@seed]+<m>[@seed][+...][,MS])");
  Seconds member_wall(0.0);
  if (parts.size() == 2) {
    std::size_t consumed = 0;
    double ms = 0.0;
    try {
      ms = std::stod(parts[1], &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    MARS_CHECK_ARG(consumed == parts[1].size() && ms > 0.0,
                   "race per-member budget must be a positive ms count, got '"
                       << parts[1] << "' in '" << spec << "'");
    member_wall = milliseconds(ms);
  }
  std::vector<std::unique_ptr<SearchEngine>> members;
  for (const std::string& member : split(parts[0], '+')) {
    std::string leaf = member;
    core::MarsConfig member_tuning = tuning;
    const std::size_t at = member.find('@');
    if (at != std::string::npos) {
      leaf = member.substr(0, at);
      const std::string seed_text = member.substr(at + 1);
      std::size_t consumed = 0;
      unsigned long long seed = 0;
      try {
        seed = std::stoull(seed_text, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      MARS_CHECK_ARG(
          !seed_text.empty() && consumed == seed_text.size() &&
              seed_text.find('-') == std::string::npos,
          "race member seed must be a non-negative integer, got '"
              << seed_text << "' in member '" << member << "' of '" << spec
              << "'");
      member_tuning.seed = static_cast<std::uint64_t>(seed);
    }
    std::unique_ptr<SearchEngine> engine = make_leaf_engine(leaf, member_tuning);
    MARS_CHECK_ARG(engine != nullptr,
                   "unknown race member '"
                       << leaf << "' in '" << spec
                       << "' (members are leaf engines: ga | anneal | "
                          "random | baseline)");
    members.push_back(std::move(engine));
  }
  MARS_CHECK_ARG(members.size() >= 2, "race spec '"
                                          << spec
                                          << "' needs >= 2 members, got "
                                          << members.size());
  return std::make_unique<PortfolioEngine>(std::move(members), member_wall);
}

}  // namespace

const std::vector<std::string>& engine_names() {
  static const std::vector<std::string> names = {"ga", "anneal", "random",
                                                 "baseline", "portfolio"};
  return names;
}

std::unique_ptr<SearchEngine> make_engine(const std::string& name,
                                          const core::MarsConfig& tuning) {
  if (name == "portfolio") {
    // The default race: every searching engine under one budget.
    std::vector<std::unique_ptr<SearchEngine>> members;
    for (const char* member : {"ga", "anneal", "random"}) {
      members.push_back(make_leaf_engine(member, tuning));
    }
    return std::make_unique<PortfolioEngine>(std::move(members));
  }
  if (name.rfind("race:", 0) == 0) {
    return make_race_engine(name, tuning);
  }
  if (std::unique_ptr<SearchEngine> engine = make_leaf_engine(name, tuning)) {
    return engine;
  }
  std::ostringstream os;
  os << "unknown search engine '" << name << "' (use ";
  for (std::size_t i = 0; i < engine_names().size(); ++i) {
    os << (i > 0 ? " | " : "") << engine_names()[i];
  }
  os << " | race:<m>[@seed]+<m>[@seed][+...][,MS])";
  throw InvalidArgument(os.str());
}

}  // namespace mars::plan
