#include "mars/plan/engines.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "mars/core/baseline.h"
#include "mars/core/skeleton_space.h"
#include "mars/ga/operators.h"
#include "mars/util/error.h"

namespace mars::plan {
namespace {

/// How often the skeleton-sampling engines report progress (steps).
constexpr int kProgressStride = 32;

void append_ga(std::ostream& os, const ga::GaConfig& config) {
  os << "pop=" << config.population << ",gen=" << config.generations
     << ",elite=" << config.elite << ",tour=" << config.tournament
     << ",cx=" << config.crossover_rate << ",mut=" << config.mutation_rate
     << ",sigma=" << config.mutation_sigma
     << ",stall=" << config.stall_generations << ",lo=" << config.gene_lo
     << ",hi=" << config.gene_hi;
}

void append_second(std::ostream& os, const core::SecondLevelConfig& config) {
  os << "second{";
  append_ga(os, config.ga);
  os << ",ss=" << config.enable_ss << ",esdims=" << config.max_es_dims << '}';
}

/// Shared tail of the skeleton-sampling engines: complete the winning
/// skeleton, optionally polish it, and assemble the PlanResult.
PlanResult finish(core::SkeletonSpace& space, const core::Skeleton& winner,
                  bool refine_winner, Rng& rng, std::vector<double> history,
                  Provenance provenance, const BudgetMeter& meter) {
  PlanResult result;
  result.mapping = space.complete(winner);
  // Like Mars: a search stopped by its budget returns without the polish
  // pass, so cancellation and exhausted budgets take effect promptly.
  if (refine_winner && provenance.stopped == StopReason::kCompleted) {
    space.polish(result.mapping, rng);
  }
  result.summary = space.evaluator().evaluate(result.mapping);
  result.history = std::move(history);
  provenance.elapsed = meter.elapsed();
  result.provenance = std::move(provenance);
  return result;
}

}  // namespace

// ----------------------------------------------------------------- GaEngine

GaEngine::GaEngine(core::MarsConfig config) : config_(config) {
  core::validate_config(config_);
}

std::string GaEngine::spec_string() const {
  std::ostringstream os;
  os << "ga[";
  append_ga(os, config_.first_ga);
  os << ',';
  append_second(os, config_.second);
  os << ",refine=" << config_.refine_winner
     << ",seedbase=" << config_.seed_baseline
     << ",profinit=" << config_.profiled_init
     << ",heur=" << config_.heuristic_candidates
     << ",two=" << config_.two_level << ",seed=" << config_.seed << ']';
  return os.str();
}

PlanResult GaEngine::search(const core::Problem& problem, const Budget& budget,
                            const ProgressFn& progress) const {
  BudgetMeter meter(budget);
  core::Mars mars(problem, config_);
  ga::StopFn stop;
  long long last_reported = -1;
  if (!budget.unlimited() || progress) {
    // Mars re-polls the hook after the GA to decide on the polish pass;
    // dedupe by evaluation count so callers see each generation once.
    stop = [&](long long evaluations, double best) {
      if (progress && evaluations != last_reported) {
        progress({evaluations, best, meter.elapsed()});
        last_reported = evaluations;
      }
      return meter.exhausted(evaluations);
    };
  }
  core::MarsResult searched = mars.search(stop);

  PlanResult result;
  result.mapping = std::move(searched.mapping);
  result.summary = searched.summary;
  result.history = std::move(searched.first_level.history);
  result.provenance = {name(),
                       spec_string(),
                       searched.first_level.evaluations,
                       searched.first_level.generations_run,
                       meter.elapsed(),
                       meter.reason()};
  return result;
}

// ---------------------------------------------------------- AnnealingEngine

AnnealingEngine::AnnealingEngine(AnnealConfig config)
    : config_(std::move(config)) {
  ga::validate_config(config_.second.ga);
  MARS_CHECK_ARG(config_.iterations >= 1,
                 "annealing iterations must be >= 1, got "
                     << config_.iterations);
  MARS_CHECK_ARG(config_.initial_temperature > 0.0,
                 "annealing initial_temperature must be > 0, got "
                     << config_.initial_temperature);
  MARS_CHECK_ARG(config_.final_temperature > 0.0 &&
                     config_.final_temperature <= config_.initial_temperature,
                 "annealing final_temperature must be in (0, initial], got "
                     << config_.final_temperature << " with initial "
                     << config_.initial_temperature);
  MARS_CHECK_ARG(config_.step_sigma > 0.0,
                 "annealing step_sigma must be > 0, got " << config_.step_sigma);
  MARS_CHECK_ARG(config_.moves_per_step >= 1,
                 "annealing moves_per_step must be >= 1, got "
                     << config_.moves_per_step);
}

std::string AnnealingEngine::spec_string() const {
  std::ostringstream os;
  os << "anneal[iters=" << config_.iterations
     << ",t0=" << config_.initial_temperature
     << ",tend=" << config_.final_temperature
     << ",sigma=" << config_.step_sigma << ",moves=" << config_.moves_per_step
     << ",seedbase=" << config_.seed_baseline
     << ",refine=" << config_.refine_winner
     << ",heur=" << config_.heuristic_candidates << ',';
  append_second(os, config_.second);
  os << ",seed=" << config_.seed << ']';
  return os.str();
}

PlanResult AnnealingEngine::search(const core::Problem& problem,
                                   const Budget& budget,
                                   const ProgressFn& progress) const {
  BudgetMeter meter(budget);
  core::SkeletonSpace space(problem,
                            {config_.second, config_.heuristic_candidates});
  const core::FirstLevelCodec& codec = space.codec();
  Rng rng(config_.seed);
  const std::vector<double> scores = space.design_scores();

  ga::Genome current = config_.seed_baseline
                           ? codec.encode(space.baseline(), scores)
                           : codec.profiled_random(scores, rng);
  double current_fitness = space.fitness(codec.decode(current));
  ga::Genome best = current;
  double best_fitness = current_fitness;
  long long evaluations = 1;
  std::vector<double> history{best_fitness};

  int step = 0;
  for (; step < config_.iterations; ++step) {
    if (meter.exhausted(evaluations)) break;
    // Geometric cooling from t0 to tend across the configured schedule.
    const double fraction =
        config_.iterations > 1
            ? static_cast<double>(step) / (config_.iterations - 1)
            : 1.0;
    const double temperature =
        config_.initial_temperature *
        std::pow(config_.final_temperature / config_.initial_temperature,
                 fraction);

    ga::Genome proposal = current;
    for (int move = 0; move < config_.moves_per_step; ++move) {
      const std::size_t gene = rng.index(proposal.size());
      proposal[gene] = std::clamp(
          proposal[gene] + rng.gaussian(0.0, config_.step_sigma), 0.0, 1.0);
    }
    const double proposal_fitness = space.fitness(codec.decode(proposal));
    ++evaluations;

    // Metropolis on the relative regression: scale-free across models.
    const double delta = (proposal_fitness - current_fitness) /
                         std::max(current_fitness, 1e-30);
    if (proposal_fitness <= current_fitness ||
        rng.chance(std::exp(-delta / temperature))) {
      current = std::move(proposal);
      current_fitness = proposal_fitness;
    }
    if (current_fitness < best_fitness) {
      best = current;
      best_fitness = current_fitness;
    }
    history.push_back(best_fitness);
    if (progress && step % kProgressStride == 0) {
      progress({evaluations, best_fitness, meter.elapsed()});
    }
  }

  return finish(space, codec.decode(best), config_.refine_winner, rng,
                std::move(history),
                {name(), spec_string(), evaluations, step, {}, meter.reason()},
                meter);
}

// ------------------------------------------------------------- RandomEngine

RandomEngine::RandomEngine(RandomConfig config) : config_(std::move(config)) {
  ga::validate_config(config_.second.ga);
  MARS_CHECK_ARG(config_.samples >= 1,
                 "random-search samples must be >= 1, got " << config_.samples);
  MARS_CHECK_ARG(
      config_.profiled_fraction >= 0.0 && config_.profiled_fraction <= 1.0,
      "random-search profiled_fraction must be in [0, 1], got "
          << config_.profiled_fraction);
}

std::string RandomEngine::spec_string() const {
  std::ostringstream os;
  os << "random[samples=" << config_.samples
     << ",profiled=" << config_.profiled_fraction
     << ",seedbase=" << config_.seed_baseline
     << ",refine=" << config_.refine_winner
     << ",heur=" << config_.heuristic_candidates << ',';
  append_second(os, config_.second);
  os << ",seed=" << config_.seed << ']';
  return os.str();
}

PlanResult RandomEngine::search(const core::Problem& problem,
                                const Budget& budget,
                                const ProgressFn& progress) const {
  BudgetMeter meter(budget);
  core::SkeletonSpace space(problem,
                            {config_.second, config_.heuristic_candidates});
  const core::FirstLevelCodec& codec = space.codec();
  Rng rng(config_.seed);
  const std::vector<double> scores = space.design_scores();

  ga::Genome best;
  double best_fitness = std::numeric_limits<double>::infinity();
  long long evaluations = 0;
  std::vector<double> history;

  int drawn = 0;
  for (; drawn < config_.samples; ++drawn) {
    // The first sample (the baseline) is always evaluated so a stopped
    // search still returns a valid mapping.
    if (drawn > 0 && meter.exhausted(evaluations)) break;
    ga::Genome sample;
    if (drawn == 0 && config_.seed_baseline) {
      sample = codec.encode(space.baseline(), scores);
    } else if (rng.chance(config_.profiled_fraction)) {
      sample = codec.profiled_random(scores, rng);
    } else {
      sample = ga::random_genome(codec.genome_size(), 0.0, 1.0, rng);
    }
    const double fitness = space.fitness(codec.decode(sample));
    ++evaluations;
    if (fitness < best_fitness) {
      best = std::move(sample);
      best_fitness = fitness;
    }
    history.push_back(best_fitness);
    if (progress && drawn % kProgressStride == 0) {
      progress({evaluations, best_fitness, meter.elapsed()});
    }
  }

  return finish(
      space, codec.decode(best), config_.refine_winner, rng,
      std::move(history),
      {name(), spec_string(), evaluations, drawn, {}, meter.reason()}, meter);
}

// ----------------------------------------------------------- BaselineEngine

PlanResult BaselineEngine::search(const core::Problem& problem,
                                  const Budget& budget,
                                  const ProgressFn& progress) const {
  BudgetMeter meter(budget);
  const accel::ProfileMatrix profile(*problem.designs, *problem.spine);
  PlanResult result;
  result.mapping = core::baseline_mapping(problem, profile);
  result.summary = core::MappingEvaluator(problem).evaluate(result.mapping);
  result.history = {result.summary.analytic_makespan.count()};
  if (progress) {
    progress({0, result.summary.analytic_makespan.count(), meter.elapsed()});
  }
  result.provenance = {name(),         spec_string(), 0, 0,
                       meter.elapsed(), StopReason::kCompleted};
  return result;
}

// ---------------------------------------------------------------- factory

const std::vector<std::string>& engine_names() {
  static const std::vector<std::string> names = {"ga", "anneal", "random",
                                                 "baseline"};
  return names;
}

std::unique_ptr<SearchEngine> make_engine(const std::string& name,
                                          const core::MarsConfig& tuning) {
  // Evaluation-fair schedules: anneal/random get the GA's worst-case
  // evaluation count (population x generations) so a budgetless
  // engine-comparison sweep compares equals.
  const long long ga_evaluations =
      static_cast<long long>(std::max(1, tuning.first_ga.population)) *
      std::max(1, tuning.first_ga.generations);
  if (name == "ga" || name == "mars") {
    return std::make_unique<GaEngine>(tuning);
  }
  if (name == "anneal") {
    AnnealConfig config;
    config.second = tuning.second;
    config.heuristic_candidates = tuning.heuristic_candidates;
    config.refine_winner = tuning.refine_winner;
    config.seed_baseline = tuning.seed_baseline;
    config.iterations = static_cast<int>(
        std::min<long long>(ga_evaluations, 1 << 20));
    config.seed = tuning.seed;
    return std::make_unique<AnnealingEngine>(config);
  }
  if (name == "random") {
    RandomConfig config;
    config.second = tuning.second;
    config.heuristic_candidates = tuning.heuristic_candidates;
    config.refine_winner = tuning.refine_winner;
    config.seed_baseline = tuning.seed_baseline;
    config.samples = static_cast<int>(
        std::min<long long>(ga_evaluations, 1 << 20));
    config.seed = tuning.seed;
    return std::make_unique<RandomEngine>(config);
  }
  if (name == "baseline") {
    return std::make_unique<BaselineEngine>();
  }
  std::ostringstream os;
  os << "unknown search engine '" << name << "' (use ";
  for (std::size_t i = 0; i < engine_names().size(); ++i) {
    os << (i > 0 ? " | " : "") << engine_names()[i];
  }
  os << ')';
  throw InvalidArgument(os.str());
}

}  // namespace mars::plan
