#include "mars/plan/planner.h"

#include "mars/accel/profiler.h"
#include "mars/graph/models/models.h"

namespace mars::plan {

/// Heap-pinned so the Problem's interior pointers survive Planner moves.
struct Planner::State {
  graph::Graph model;
  graph::ConvSpine spine;
  core::Problem problem;
  mutable std::unique_ptr<accel::ProfileMatrix> profile;

  State(graph::Graph m, const topology::Topology& topo,
        const accel::DesignRegistry& designs, bool adaptive,
        topology::AccMask placement)
      : model(std::move(m)), spine(graph::ConvSpine::extract(model)) {
    problem.spine = &spine;
    problem.topo = &topo;
    problem.designs = &designs;
    problem.adaptive = adaptive;
    problem.placement = placement;
  }
};

Planner::Planner(graph::Graph model, const topology::Topology& topo,
                 const accel::DesignRegistry& designs, bool adaptive,
                 topology::AccMask placement)
    : state_(std::make_unique<State>(std::move(model), topo, designs, adaptive,
                                     placement)) {}

Planner Planner::for_model(const std::string& zoo_name,
                           const topology::Topology& topo,
                           const accel::DesignRegistry& designs, bool adaptive,
                           topology::AccMask placement) {
  return Planner(graph::models::by_name(zoo_name), topo, designs, adaptive,
                 placement);
}

Planner::Planner(Planner&&) noexcept = default;
Planner& Planner::operator=(Planner&&) noexcept = default;
Planner::~Planner() = default;

PlanResult Planner::plan(const SearchEngine& engine, const Budget& budget,
                         const ProgressFn& progress) const {
  return engine.search(state_->problem, budget, progress);
}

const graph::Graph& Planner::model() const { return state_->model; }
const graph::ConvSpine& Planner::spine() const { return state_->spine; }
const core::Problem& Planner::problem() const { return state_->problem; }
const topology::Topology& Planner::topology() const {
  return *state_->problem.topo;
}
const accel::DesignRegistry& Planner::designs() const {
  return *state_->problem.designs;
}

const accel::ProfileMatrix& Planner::profile() const {
  if (!state_->profile) {
    state_->profile = std::make_unique<accel::ProfileMatrix>(
        *state_->problem.designs, state_->spine);
  }
  return *state_->profile;
}

}  // namespace mars::plan
