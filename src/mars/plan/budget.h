// Search budgets and cooperative cancellation for mars::plan engines.
//
// A Budget bounds a search three ways, all optional and composable:
// evaluation count, wall-clock time, and a CancelToken another thread (or
// a signal handler) can flip. Enforcement is cooperative — engines poll a
// BudgetMeter between evaluations (the GA at generation boundaries, so an
// evaluation budget may overshoot by up to one generation) and always
// return their best-so-far mapping when stopped. Evaluation budgets keep
// runs deterministic; wall-clock budgets are inherently not (pass `clock`
// to make them so in tests).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <string>

#include "mars/util/units.h"

namespace mars::obs {
class Counter;
}

namespace mars::plan {

/// Cooperative cancellation flag, shareable across threads. The owner
/// keeps it alive for the search's duration.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

struct Budget {
  /// Stop after this many full-mapping fitness evaluations (<= 0: off).
  long long max_evaluations = 0;
  /// Stop after this much wall-clock time (<= 0: off).
  Seconds wall_clock{};
  /// Optional cancellation flag, polled alongside the other limits.
  const CancelToken* cancel = nullptr;
  /// Test hook: absolute time source replacing steady_clock. The meter
  /// charges elapsed = clock() - clock()@start.
  std::function<Seconds()> clock;

  [[nodiscard]] static Budget evaluations(long long n) {
    Budget budget;
    budget.max_evaluations = n;
    return budget;
  }
  [[nodiscard]] static Budget wall(Seconds limit) {
    Budget budget;
    budget.wall_clock = limit;
    return budget;
  }
  [[nodiscard]] static Budget cancellable(const CancelToken& token) {
    Budget budget;
    budget.cancel = &token;
    return budget;
  }

  /// An entirely unbounded budget (the default): engines run their own
  /// configured schedule to completion.
  [[nodiscard]] bool unlimited() const {
    return max_evaluations <= 0 && wall_clock.count() <= 0.0 &&
           cancel == nullptr;
  }
};

/// Why a search returned.
enum class StopReason : std::uint8_t {
  kCompleted,         // the engine finished its own schedule (or converged)
  kEvaluationBudget,  // Budget::max_evaluations reached
  kWallClock,         // Budget::wall_clock elapsed
  kCancelled,         // Budget::cancel flipped
};

[[nodiscard]] std::string to_string(StopReason reason);

/// Stateful budget check: construct when the search starts, poll
/// exhausted() between evaluations. Records the first reason that fired
/// (stable across repeated polls).
class BudgetMeter {
 public:
  explicit BudgetMeter(Budget budget);

  /// True once any limit has fired; `evaluations` is the running
  /// full-mapping evaluation count.
  [[nodiscard]] bool exhausted(long long evaluations);

  [[nodiscard]] Seconds elapsed() const;
  /// kCompleted until a limit fires.
  [[nodiscard]] StopReason reason() const { return reason_; }

 private:
  Budget budget_;
  std::chrono::steady_clock::time_point start_;
  Seconds clock_start_{};
  StopReason reason_ = StopReason::kCompleted;
  /// `plan.budget.polls` in the installed registry (null when none): how
  /// often engines actually check their limits — the cooperative-
  /// cancellation latency is bounded by the gap between polls.
  obs::Counter* polls_ = nullptr;
};

}  // namespace mars::plan
