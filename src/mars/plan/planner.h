// Planner: one value type owning the graph -> spine -> Problem chain.
//
// Every MARS caller used to hand-assemble the same fragile non-owning
// lifetime chain (build a Graph, extract its ConvSpine, wire a Problem at
// the spine/topology/registry, keep all of it alive past the search).
// Planner owns the model-side of that chain behind a movable handle: the
// members live behind a stable heap allocation, so the Problem's interior
// pointers survive moves and the facade can sit in containers.
//
// The system side stays shared: the caller keeps the Topology and
// DesignRegistry alive for the Planner's lifetime (a serving fleet shares
// one topology across many Planners).
#pragma once

#include <memory>
#include <string>

#include "mars/core/cost_model.h"
#include "mars/graph/graph.h"
#include "mars/graph/spine.h"
#include "mars/plan/engine.h"

namespace mars::accel {
class ProfileMatrix;
}

namespace mars::plan {

class Planner {
 public:
  /// Takes ownership of `model`; keeps non-owning references to `topo`
  /// and `designs` (caller keeps them alive). `placement` confines the
  /// search to a subset of the topology (0 = the whole fleet).
  Planner(graph::Graph model, const topology::Topology& topo,
          const accel::DesignRegistry& designs, bool adaptive = true,
          topology::AccMask placement = 0);

  /// Convenience: look `zoo_name` up in the model zoo.
  [[nodiscard]] static Planner for_model(const std::string& zoo_name,
                                         const topology::Topology& topo,
                                         const accel::DesignRegistry& designs,
                                         bool adaptive = true,
                                         topology::AccMask placement = 0);

  Planner(Planner&&) noexcept;             // defined where State is complete
  Planner& operator=(Planner&&) noexcept;
  Planner(const Planner&) = delete;
  Planner& operator=(const Planner&) = delete;
  ~Planner();

  /// Runs `engine` on this problem under `budget`.
  [[nodiscard]] PlanResult plan(const SearchEngine& engine,
                                const Budget& budget = {},
                                const ProgressFn& progress = {}) const;

  [[nodiscard]] const graph::Graph& model() const;
  [[nodiscard]] const graph::ConvSpine& spine() const;
  [[nodiscard]] const core::Problem& problem() const;
  [[nodiscard]] const topology::Topology& topology() const;
  [[nodiscard]] const accel::DesignRegistry& designs() const;
  /// Per-(layer, design) cycle profile, built on first use.
  [[nodiscard]] const accel::ProfileMatrix& profile() const;

 private:
  struct State;
  std::unique_ptr<State> state_;
};

}  // namespace mars::plan
