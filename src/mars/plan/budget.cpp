#include "mars/plan/budget.h"

#include "mars/obs/metrics.h"
#include "mars/obs/trace.h"

namespace mars::plan {

std::string to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kCompleted:
      return "completed";
    case StopReason::kEvaluationBudget:
      return "evaluation-budget";
    case StopReason::kWallClock:
      return "wall-clock";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "?";
}

BudgetMeter::BudgetMeter(Budget budget)
    : budget_(std::move(budget)), start_(std::chrono::steady_clock::now()) {
  if (budget_.clock) clock_start_ = budget_.clock();
  if (obs::MetricsRegistry* registry = obs::metrics()) {
    polls_ = &registry->counter("plan.budget.polls");
  }
}

Seconds BudgetMeter::elapsed() const {
  if (budget_.clock) return budget_.clock() - clock_start_;
  return Seconds(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
}

bool BudgetMeter::exhausted(long long evaluations) {
  if (polls_ != nullptr) polls_->add();
  if (reason_ != StopReason::kCompleted) return true;
  // Cancellation wins over the passive limits: it is the only one a user
  // actively requested.
  if (budget_.cancel != nullptr && budget_.cancel->cancelled()) {
    reason_ = StopReason::kCancelled;
  } else if (budget_.max_evaluations > 0 &&
             evaluations >= budget_.max_evaluations) {
    reason_ = StopReason::kEvaluationBudget;
  } else if (budget_.wall_clock.count() > 0.0 &&
             elapsed() >= budget_.wall_clock) {
    reason_ = StopReason::kWallClock;
  }
  if (reason_ != StopReason::kCompleted) {
    // The poll that tripped a limit is the event worth seeing on the
    // timeline (per-poll instants would swamp a long search).
    if (obs::TraceRecorder* rec = obs::trace()) {
      rec->instant(obs::Clock::kWall, rec->track(obs::Clock::kWall, "plan"),
                   "budget " + to_string(reason_), rec->wall_now(),
                   {{"evaluations", JsonValue::integer(evaluations)}});
    }
    return true;
  }
  return false;
}

}  // namespace mars::plan
