#include "mars/plan/engine.h"

namespace mars::plan {

JsonValue to_json(const Provenance& provenance) {
  JsonValue out = JsonValue::object();
  out.set("engine", JsonValue::string(provenance.engine));
  out.set("spec", JsonValue::string(provenance.spec));
  out.set("evaluations", JsonValue::integer(provenance.evaluations));
  out.set("iterations", JsonValue::integer(provenance.iterations));
  out.set("elapsed_s", JsonValue::number(provenance.elapsed.count()));
  out.set("stopped", JsonValue::string(to_string(provenance.stopped)));
  if (!provenance.winner.empty()) {
    out.set("winner", JsonValue::string(provenance.winner));
  }
  if (!provenance.members.empty()) {
    JsonValue members = JsonValue::array();
    for (const Provenance& member : provenance.members) {
      members.push(to_json(member));
    }
    out.set("members", std::move(members));
  }
  return out;
}

}  // namespace mars::plan
