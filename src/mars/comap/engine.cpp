#include "mars/comap/engine.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <utility>

#include "mars/plan/engines.h"
#include "mars/serve/service.h"
#include "mars/util/error.h"
#include "mars/util/logging.h"
#include "mars/util/rng.h"
#include "mars/util/worker_pool.h"

namespace mars::comap {
namespace {

/// A mapping with its strategies dropped — the encodable first-level part.
core::Skeleton skeleton_of(const core::Mapping& mapping) {
  core::Skeleton skeleton;
  skeleton.sets.reserve(mapping.sets.size());
  for (const core::LayerAssignment& set : mapping.sets) {
    core::LayerAssignment bare = set;
    bare.strategies.clear();
    skeleton.sets.push_back(std::move(bare));
  }
  return skeleton;
}

}  // namespace

Encoding parse_encoding(const std::string& spec) {
  if (spec == "partition") return Encoding::kPartition;
  if (spec == "interleave") return Encoding::kInterleave;
  throw InvalidArgument("bad comap encoding '" + spec +
                              "' (expected partition|interleave)");
}

std::string to_string(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPartition:
      return "partition";
    case Encoding::kInterleave:
      return "interleave";
  }
  return "?";
}

void validate_config(const CoMapConfig& config) {
  ga::validate_config(config.ga);
  core::validate_config(config.inner);
  MARS_CHECK_ARG(config.threads >= 1,
                 "CoMapConfig.threads must be >= 1, got " << config.threads);
}

std::vector<topology::AccMask> decode_partition_genome(
    const std::vector<double>& genome, std::size_t num_tenants, int accs) {
  MARS_CHECK_ARG(genome.size() == num_tenants + 1,
                 "partition genome carries " << genome.size() << " genes for "
                                             << num_tenants << " tenants");
  MARS_CHECK_ARG(num_tenants >= 1 && accs >= static_cast<int>(num_tenants),
                 "partitioning " << num_tenants << " tenants needs at least "
                                 << num_tenants << " accelerators, fleet has "
                                 << accs);
  const std::size_t buckets = num_tenants + 1;  // tenants + shared pool
  const int spare = accs - static_cast<int>(num_tenants);

  // Largest-remainder split of the spare accelerators over the share
  // genes (every tenant already holds one). A degenerate all-zero genome
  // splits evenly — the decode must accept any point in [0, 1]^(T+1).
  std::vector<int> extra(buckets, 0);
  if (spare > 0) {
    std::vector<double> weight(buckets);
    double total = 0.0;
    for (std::size_t i = 0; i < buckets; ++i) {
      weight[i] = std::clamp(genome[i], 0.0, 1.0);
      total += weight[i];
    }
    if (total <= 1e-12) {
      weight.assign(buckets, 1.0);
      total = static_cast<double>(buckets);
    }
    std::vector<double> remainder(buckets);
    int given = 0;
    for (std::size_t i = 0; i < buckets; ++i) {
      const double quota = spare * weight[i] / total;
      extra[i] = static_cast<int>(std::floor(quota));
      remainder[i] = quota - extra[i];
      given += extra[i];
    }
    std::vector<std::size_t> order(buckets);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (remainder[a] != remainder[b]) return remainder[a] > remainder[b];
      return a < b;  // deterministic tie-break: earlier bucket wins
    });
    for (int k = 0; given < spare; ++k) {
      ++extra[order[static_cast<std::size_t>(k)]];
      ++given;
    }
  }

  // Contiguous accelerator-id ranges in tenant order, shared pool last.
  int next = 0;
  const auto take = [&](int count) {
    topology::AccMask mask = 0;
    for (int k = 0; k < count; ++k) {
      mask |= topology::mask_of(static_cast<topology::AccId>(next++));
    }
    return mask;
  };
  std::vector<topology::AccMask> masks(num_tenants);
  for (std::size_t t = 0; t < num_tenants; ++t) masks[t] = take(1 + extra[t]);
  const topology::AccMask shared = take(extra[num_tenants]);
  for (topology::AccMask& mask : masks) mask |= shared;
  return masks;
}

CoMapEngine::CoMapEngine(CoMapConfig config) : config_(std::move(config)) {
  validate_config(config_);
}

std::string CoMapEngine::spec_string() const {
  std::ostringstream os;
  const ga::GaConfig& g = config_.ga;
  os << "comap:" << to_string(config_.encoding) << ";seed=" << config_.seed
     << ";pop=" << g.population << ";gens=" << g.generations
     << ";elite=" << g.elite << ";tour=" << g.tournament
     << ";cx=" << g.crossover_rate << ";mut=" << g.mutation_rate
     << ";sigma=" << g.mutation_sigma << ";stall=" << g.stall_generations
     << ";inner=[" << plan::GaEngine(config_.inner).spec_string() << "]";
  return os.str();
}

CoMapResult CoMapEngine::search(const CoMapProblem& problem,
                                const plan::Budget& budget,
                                const serve::MappingCache* cache,
                                const plan::ProgressFn& progress) const {
  problem.validate();
  const std::size_t num_tenants = problem.tenants.size();
  const topology::Topology& topo = *problem.topo;
  const topology::AccMask full = topo.full_mask();

  ServingObjective objective(problem);
  const plan::GaEngine inner_engine(config_.inner);
  plan::BudgetMeter meter(budget);
  std::unique_ptr<util::WorkerPool> pool;
  if (config_.threads > 1) {
    pool = std::make_unique<util::WorkerPool>(config_.threads);
  }

  // ---- per-(tenant, slice) inner plans, memoised and cache-composed ----
  struct InnerPlan {
    core::Mapping mapping;
    plan::Provenance provenance;
  };
  std::map<std::pair<std::size_t, topology::AccMask>, InnerPlan> inner;
  const auto plan_within = [&](std::size_t t,
                               topology::AccMask slice) -> const InnerPlan& {
    // Full-fleet slices use placement 0 so their cache identity is the
    // historical unsliced fingerprint.
    const topology::AccMask placement = slice == full ? 0 : slice;
    const auto key = std::make_pair(t, placement);
    if (const auto it = inner.find(key); it != inner.end()) return it->second;

    InnerPlan result;
    std::optional<serve::MappingCache::Key> cache_key;
    if (cache != nullptr) {
      const std::string spec =
          serve::search_spec(inner_engine, plan::Budget{}, placement);
      cache_key = serve::MappingCache::Key{
          problem.tenants[t].model,
          serve::MappingCache::fingerprint(topo, *problem.designs,
                                           problem.adaptive, spec)};
      if (std::optional<core::Mapping> cached =
              cache->load(*cache_key, objective.planner(t).spine(), topo,
                          *problem.designs, problem.adaptive)) {
        result.mapping = *std::move(cached);
        result.provenance.engine = inner_engine.name();
        result.provenance.spec = spec;
        return inner.emplace(key, std::move(result)).first->second;
      }
    }

    core::Problem sliced = objective.planner(t).problem();
    sliced.placement = placement;
    plan::PlanResult planned = inner_engine.search(sliced);
    result.mapping = std::move(planned.mapping);
    result.provenance = std::move(planned.provenance);
    // Same rule as ModelService: a cancelled search's truncated mapping
    // must never poison the complete-search fingerprint. (Inner searches
    // here are unbudgeted, so this only guards future config changes.)
    if (cache_key.has_value() &&
        result.provenance.stopped != plan::StopReason::kCancelled) {
      try {
        cache->store(*cache_key, result.mapping, objective.planner(t).spine(),
                     *problem.designs, problem.adaptive);
      } catch (const std::exception& e) {
        MARS_WARN << "mapping cache store failed for '"
                  << problem.tenants[t].model
                  << "' (comap continues uncached): " << e.what();
      }
    }
    return inner.emplace(key, std::move(result)).first->second;
  };

  // ---- encoding: genome size, decode, seeds ----------------------------
  // Interleave state (unused by partition): one SkeletonSpace per tenant,
  // second level memoised across the whole outer search.
  std::vector<std::unique_ptr<core::SkeletonSpace>> spaces;
  std::vector<int> slice_offset;  // gene offset per tenant, interleave
  int genome_size = 0;
  if (config_.encoding == Encoding::kPartition) {
    genome_size = static_cast<int>(num_tenants) + 1;
  } else {
    const core::SkeletonSpace::Config space_config{
        config_.inner.second, config_.inner.heuristic_candidates};
    for (std::size_t t = 0; t < num_tenants; ++t) {
      spaces.push_back(std::make_unique<core::SkeletonSpace>(
          objective.planner(t).problem(), space_config));
      slice_offset.push_back(genome_size);
      genome_size += spaces.back()->codec().genome_size();
    }
  }

  // Decode + materialise one genome into a candidate (serial, memoised —
  // inner plans for partition, the per-tenant second level for
  // interleave). Returns the per-tenant slice masks alongside (full fleet
  // for interleave).
  const auto materialize = [&](const ga::Genome& genome)
      -> std::pair<CandidatePlan, std::vector<topology::AccMask>> {
    CandidatePlan plan(num_tenants);
    std::vector<topology::AccMask> masks(num_tenants, full);
    if (config_.encoding == Encoding::kPartition) {
      masks = decode_partition_genome(genome, num_tenants, topo.size());
      for (std::size_t t = 0; t < num_tenants; ++t) {
        plan[t] = plan_within(t, masks[t]).mapping;
      }
    } else {
      for (std::size_t t = 0; t < num_tenants; ++t) {
        const int begin = slice_offset[t];
        const int size = spaces[t]->codec().genome_size();
        const ga::Genome slice(genome.begin() + begin,
                               genome.begin() + begin + size);
        plan[t] = spaces[t]->complete(spaces[t]->codec().decode(slice));
      }
    }
    return {std::move(plan), std::move(masks)};
  };

  // ---- evaluation #1: the independent answer ---------------------------
  CandidatePlan independent(num_tenants);
  for (std::size_t t = 0; t < num_tenants; ++t) {
    independent[t] = plan_within(t, full).mapping;
  }
  const ServingObjective::Score independent_score =
      objective.score(independent);
  constexpr long long kBaseEvals = 1;
  if (progress) {
    progress({kBaseEvals, independent_score.fitness, meter.elapsed()});
  }

  const auto independent_result = [&](std::vector<double> history) {
    CoMapResult out;
    out.mappings = independent;
    out.score = independent_score;
    out.independent_score = independent_score;
    out.joint_won = false;
    out.history = std::move(history);
    out.provenance.winner = "independent";
    for (std::size_t t = 0; t < num_tenants; ++t) {
      out.tenants.push_back(TenantOutcome{problem.tenants[t].model, 0,
                                          plan_within(t, full).provenance});
    }
    return out;
  };

  CoMapResult out;
  long long evaluations = kBaseEvals;
  int generations = 0;
  if (meter.exhausted(kBaseEvals)) {
    out = independent_result({independent_score.fitness});
  } else {
    // ---- the outer GA over the composite genome ------------------------
    std::vector<ga::Genome> seeds;
    if (config_.encoding == Encoding::kPartition) {
      // Balanced split with and without a shared pool, and a
      // shared-everything split (the closest expressible point to
      // independent planning).
      seeds.push_back(ga::Genome(num_tenants + 1, 0.5));
      ga::Genome own_only(num_tenants + 1, 1.0);
      own_only.back() = 0.0;
      seeds.push_back(std::move(own_only));
      ga::Genome all_shared(num_tenants + 1, 0.0);
      all_shared.back() = 1.0;
      seeds.push_back(std::move(all_shared));
    } else {
      // The independently searched skeletons (so the joint search starts
      // from the independent answer) and the per-tenant baselines.
      const auto concat_seed =
          [&](const std::function<core::Skeleton(std::size_t)>& skeleton_for) {
            ga::Genome seed;
            seed.reserve(static_cast<std::size_t>(genome_size));
            for (std::size_t t = 0; t < num_tenants; ++t) {
              const ga::Genome part = spaces[t]->codec().encode(
                  skeleton_for(t), spaces[t]->design_scores());
              seed.insert(seed.end(), part.begin(), part.end());
            }
            return seed;
          };
      try {
        seeds.push_back(concat_seed(
            [&](std::size_t t) { return skeleton_of(independent[t]); }));
      } catch (const std::exception& e) {
        MARS_WARN << "comap: independent skeletons not encodable as a seed ("
                  << e.what() << "); starting from the baseline only";
      }
      seeds.push_back(
          concat_seed([&](std::size_t t) { return spaces[t]->baseline(); }));
    }

    const ga::BatchFitnessFn batch = [&](const std::vector<ga::Genome>& genomes) {
      std::vector<CandidatePlan> plans;
      plans.reserve(genomes.size());
      for (const ga::Genome& genome : genomes) {
        plans.push_back(materialize(genome).first);
      }
      return objective.score_batch(plans, pool.get());
    };
    const ga::FitnessFn fitness_one = [&](const ga::Genome& genome) {
      return objective.score(materialize(genome).first).fitness;
    };
    const ga::StopFn stop = [&](long long evals, double best) {
      if (progress) {
        progress({kBaseEvals + evals,
                  std::min(best, independent_score.fitness), meter.elapsed()});
      }
      return meter.exhausted(kBaseEvals + evals);
    };

    const ga::GaEngine outer(config_.ga, genome_size);
    Rng rng(config_.seed);
    const ga::GaResult ga_result =
        outer.minimize(fitness_one, rng, seeds, stop, batch);
    evaluations += ga_result.evaluations;
    generations = ga_result.generations_run;

    if (ga_result.best_fitness < independent_score.fitness) {
      auto [plan, masks] = materialize(ga_result.best);
      out.mappings = std::move(plan);
      out.score = objective.score(out.mappings);
      out.independent_score = independent_score;
      out.joint_won = true;
      out.history = ga_result.history;
      out.provenance.winner = to_string(config_.encoding);
      for (std::size_t t = 0; t < num_tenants; ++t) {
        TenantOutcome tenant;
        tenant.model = problem.tenants[t].model;
        if (config_.encoding == Encoding::kPartition) {
          tenant.placement = masks[t] == full ? 0 : masks[t];
          tenant.provenance = plan_within(t, masks[t]).provenance;
        } else {
          // Interleaved skeletons have no inner engine run to cite; the
          // outer search is their provenance.
          tenant.provenance.engine = "comap:interleave";
          tenant.provenance.spec = spec_string();
        }
        out.tenants.push_back(std::move(tenant));
      }
    } else {
      // The explicit independent candidate is part of the search: the
      // joint answer never loses to it, by construction.
      out = independent_result(ga_result.history);
    }
  }

  out.provenance.engine = name();
  out.provenance.spec = spec_string();
  out.provenance.evaluations = evaluations;
  out.provenance.iterations = generations;
  out.provenance.elapsed = meter.elapsed();
  out.provenance.stopped = meter.reason();
  for (const TenantOutcome& tenant : out.tenants) {
    out.provenance.members.push_back(tenant.provenance);
  }
  out.rollout_hits = objective.rollout_hits();
  out.rollout_misses = objective.rollout_misses();
  return out;
}

}  // namespace mars::comap
