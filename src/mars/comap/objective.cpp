#include "mars/comap/objective.h"

#include <utility>

#include "mars/core/evaluator.h"
#include "mars/core/serialize.h"
#include "mars/serve/metrics.h"
#include "mars/serve/workload.h"
#include "mars/sim/executor.h"
#include "mars/util/error.h"
#include "mars/util/worker_pool.h"

namespace mars::comap {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const std::string& bytes, std::uint64_t h = kFnvOffset) {
  for (const char c : bytes) {
    h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a(std::uint64_t value, std::uint64_t h) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((value >> (8 * i)) & 0xff)) * kFnvPrime;
  }
  return h;
}

}  // namespace

ServingObjective::ServingObjective(const CoMapProblem& problem)
    : problem_(&problem),
      rollout_hits_(&metrics_.counter("comap.rollout.hits")),
      rollout_misses_(&metrics_.counter("comap.rollout.misses")),
      proto_hits_(&metrics_.counter("comap.proto.hits")),
      proto_misses_(&metrics_.counter("comap.proto.misses")) {
  problem.validate();
  planners_.reserve(problem.tenants.size());
  slos_.reserve(problem.tenants.size());
  for (std::size_t t = 0; t < problem.tenants.size(); ++t) {
    planners_.push_back(plan::Planner::for_model(problem.tenants[t].model,
                                                 *problem.topo,
                                                 *problem.designs,
                                                 problem.adaptive));
    slos_.push_back(problem.slo_of(t));
  }
  arrivals_ = serve::poisson_arrivals(problem.weights(), problem.rollout.rate,
                                      problem.rollout.duration,
                                      problem.rollout.seed);
  sched_options_.policy = problem.rollout.policy.batch;
  sched_options_.admission = problem.rollout.policy.admission;
  // slo: admission holds each tenant to its own objective, exactly as the
  // real fleet configured from the same tenant specs would.
  sched_options_.admission.per_model_slo = slos_;
  sched_options_.sim = planners_.front().problem().sim_params;
  sched_options_.quiet = true;
}

ServingObjective::~ServingObjective() {
  if (obs::MetricsRegistry* global = obs::metrics()) {
    metrics_.flush_to(*global);
  }
}

const plan::Planner& ServingObjective::planner(std::size_t t) const {
  MARS_CHECK_ARG(t < planners_.size(),
                 "tenant index " << t << " outside the tenant set");
  return planners_[t];
}

Seconds ServingObjective::slo(std::size_t t) const {
  MARS_CHECK_ARG(t < slos_.size(),
                 "tenant index " << t << " outside the tenant set");
  return slos_[t];
}

std::uint64_t ServingObjective::mapping_signature(std::size_t t,
                                                  const core::Mapping& mapping) {
  // The serialised form is lossless (core/serialize.h), so structurally
  // equal mappings — and only those — share a signature modulo the
  // astronomically unlikely 64-bit collision, the same identity bar the
  // mapping cache's fingerprint clears.
  const std::string bytes =
      core::to_json(mapping, planners_[t].spine(), *problem_->designs,
                    problem_->adaptive)
          .dump();
  return fnv1a(bytes, fnv1a(static_cast<std::uint64_t>(t), kFnvOffset));
}

const ServingObjective::Artifact& ServingObjective::artifact(
    std::size_t t, const core::Mapping& mapping, std::uint64_t signature) {
  const auto key = std::make_pair(t, signature);
  if (const auto it = artifacts_.find(key); it != artifacts_.end()) {
    proto_hits_->add();
    return *it->second;
  }
  proto_misses_->add();
  auto artifact = std::make_unique<Artifact>();
  const core::MappingEvaluator evaluator(planners_[t].problem());
  artifact->proto = evaluator.build_task_graph(mapping);
  artifact->flat = sim::FlatTaskGraph::from(artifact->proto);
  const sim::Executor executor(*problem_->topo,
                               planners_[t].problem().sim_params);
  artifact->single_latency = executor.run(artifact->proto).makespan;
  return *artifacts_.emplace(key, std::move(artifact)).first->second;
}

ServingObjective::Score ServingObjective::rollout(
    const std::vector<const Artifact*>& artifacts) const {
  std::vector<serve::ServedModel> models;
  models.reserve(artifacts.size());
  for (std::size_t t = 0; t < artifacts.size(); ++t) {
    models.push_back(serve::ServedModel{problem_->tenants[t].model,
                                        &artifacts[t]->flat,
                                        artifacts[t]->single_latency});
  }
  const serve::OnlineScheduler scheduler(*problem_->topo, std::move(models),
                                         sched_options_);
  const serve::ServeResult result = scheduler.run(arrivals_);

  Score score;
  score.offered = result.offered();
  score.completed = static_cast<int>(result.completed.size());
  score.rejected = static_cast<int>(result.rejected.size());
  std::vector<Seconds> latencies;
  latencies.reserve(result.completed.size());
  for (const serve::CompletedRequest& done : result.completed) {
    const Seconds latency = done.latency();
    latencies.push_back(latency);
    const auto m = static_cast<std::size_t>(done.request.model);
    if (m < slos_.size() && latency <= slos_[m]) ++score.good;
  }
  score.p99 = serve::LatencyStats::from_samples(std::move(latencies)).p99;
  // Integer-major objective: every request that missed its tenant's SLO
  // (shed ones included) costs 1; the p99 transform is bounded below 1,
  // so it only ever breaks goodput ties.
  const double tail =
      score.completed > 0 ? score.p99.count() / (1.0 + score.p99.count()) : 1.0;
  score.fitness = static_cast<double>(score.offered - score.good) + tail;
  return score;
}

ServingObjective::Score ServingObjective::score(const CandidatePlan& plan) {
  MARS_CHECK_ARG(plan.size() == planners_.size(),
                 "candidate carries " << plan.size() << " mappings for "
                                      << planners_.size() << " tenants");
  std::vector<const Artifact*> parts(plan.size());
  std::uint64_t combined = kFnvOffset;
  for (std::size_t t = 0; t < plan.size(); ++t) {
    const std::uint64_t sig = mapping_signature(t, plan[t]);
    parts[t] = &artifact(t, plan[t], sig);
    combined = fnv1a(sig, combined);
  }
  if (const auto it = rollouts_.find(combined); it != rollouts_.end()) {
    rollout_hits_->add();
    return it->second;
  }
  rollout_misses_->add();
  return rollouts_.emplace(combined, rollout(parts)).first->second;
}

std::vector<double> ServingObjective::score_batch(
    const std::vector<CandidatePlan>& plans, util::WorkerPool* pool) {
  // Phase 1 (serial): signatures, artifact materialisation, and the
  // hit/miss sweep — the first appearance of a combined signature in the
  // batch is the miss, every later one a hit, exactly as a serial
  // left-to-right score() sweep would charge them.
  std::vector<std::uint64_t> keys(plans.size());
  struct Missing {
    std::uint64_t key;
    std::vector<const Artifact*> parts;
  };
  std::vector<Missing> missing;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    MARS_CHECK_ARG(plans[i].size() == planners_.size(),
                   "candidate carries " << plans[i].size() << " mappings for "
                                        << planners_.size() << " tenants");
    std::vector<const Artifact*> parts(plans[i].size());
    std::uint64_t combined = kFnvOffset;
    for (std::size_t t = 0; t < plans[i].size(); ++t) {
      const std::uint64_t sig = mapping_signature(t, plans[i][t]);
      parts[t] = &artifact(t, plans[i][t], sig);
      combined = fnv1a(sig, combined);
    }
    keys[i] = combined;
    const bool cached = rollouts_.contains(combined);
    bool in_batch = false;
    if (!cached) {
      for (const Missing& m : missing) {
        if (m.key == combined) {
          in_batch = true;
          break;
        }
      }
    }
    if (cached || in_batch) {
      rollout_hits_->add();
    } else {
      rollout_misses_->add();
      missing.push_back(Missing{combined, std::move(parts)});
    }
  }

  // Phase 2: price the deduped missing rollouts — each a pure function of
  // its artifact set and the shared arrival stream — in parallel.
  std::vector<Score> priced(missing.size());
  const auto price = [&](std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end; ++j) {
      priced[j] = rollout(missing[j].parts);
    }
  };
  if (pool != nullptr && missing.size() > 1) {
    pool->parallel_for(missing.size(), price);
  } else {
    price(0, missing.size());
  }

  // Phase 3 (serial): publish in first-seen order, then read back.
  for (std::size_t j = 0; j < missing.size(); ++j) {
    rollouts_.emplace(missing[j].key, priced[j]);
  }
  std::vector<double> fitness(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    fitness[i] = rollouts_.at(keys[i]).fitness;
  }
  return fitness;
}

}  // namespace mars::comap
