// CoMapEngine: joint co-mapping search over the tenant set.
//
// The engine keeps the plan::SearchEngine interface *shape* — a name, a
// canonical spec_string, and a search(problem, Budget, progress) that
// honours evaluation/wall/cancel budgets cooperatively and reports
// Provenance — but takes a CoMapProblem (the tenant set) instead of one
// core::Problem, and returns one mapping per tenant. Budgets,
// cancellation, provenance, and MappingCache fingerprinting therefore
// compose exactly as they do for the single-model engines.
//
// Two composite genome encodings, both priced by the same
// ServingObjective rollout fitness:
//
//   partition   T + 1 genes. Largest-remainder split of the fleet into
//               contiguous accelerator-id ranges — one per tenant (at
//               least one accelerator each) plus an optional trailing
//               shared pool every tenant may also use. Each tenant's
//               mapping is then planned *within* its slice (own range u
//               shared pool) by the inner plan::GaEngine through
//               core::Problem::placement; inner plans are memoised per
//               (tenant, slice) and composed with the MappingCache under
//               the ";placement=<hex>" search-spec identity.
//
//   interleave  Concatenation of the tenants' first-level skeleton
//               genomes on the full fleet (one FirstLevelCodec slice per
//               tenant, second level memoised per tenant via
//               core::SkeletonSpace). The tenants' independently searched
//               skeletons seed the population, so the joint search starts
//               from — and can only improve on — the independent answer.
//
// The independent answer (every tenant planned alone on the full fleet)
// is always priced explicitly as evaluation #1, and the returned result
// is the better of it and the GA winner: a co-mapping never loses to
// independent planning under the rollout objective, by construction.
//
// Determinism: the outer GA's genome stream is independent of evaluation
// (ga::GaEngine contract), candidate materialisation is serial and
// memoised, and rollouts go through ServingObjective::score_batch —
// results are byte-identical at any `threads`, which is why `threads`
// (like everywhere else) never appears in the spec_string.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mars/comap/objective.h"
#include "mars/comap/problem.h"
#include "mars/core/mars.h"
#include "mars/plan/budget.h"
#include "mars/plan/engine.h"
#include "mars/serve/cache.h"

namespace mars::comap {

enum class Encoding : std::uint8_t { kPartition, kInterleave };

/// Parses "partition" | "interleave" (named-value error otherwise).
[[nodiscard]] Encoding parse_encoding(const std::string& spec);
[[nodiscard]] std::string to_string(Encoding encoding);

struct CoMapConfig {
  Encoding encoding = Encoding::kPartition;
  /// Outer GA over the composite genome. Rollouts are far costlier than
  /// skeleton pricing, so the default schedule is much smaller than the
  /// single-model GA's.
  ga::GaConfig ga{.population = 16, .generations = 10, .stall_generations = 6};
  /// Inner per-tenant mapping search (partition slices, interleave second
  /// level, and the independent baseline all use it).
  core::MarsConfig inner;
  std::uint64_t seed = 1;
  /// Rollout-pricing threads (a util::WorkerPool sized here). Purely an
  /// execution knob — byte-identical results at any value — so it is NOT
  /// part of spec_string(), matching every other engine.
  int threads = 1;
};

/// Throws util::InvalidArgument (naming the bad field) when either GA
/// level cannot drive a search.
void validate_config(const CoMapConfig& config);

/// Per-tenant outcome: where the tenant's mapping may run and how it was
/// found. `placement` of 0 means the whole fleet (interleave and the
/// independent fallback); partition winners carry their slice mask, which
/// flows into `serve --shards` / ModelService placements downstream.
struct TenantOutcome {
  std::string model;
  topology::AccMask placement = 0;
  plan::Provenance provenance;
};

struct CoMapResult {
  /// One mapping per tenant, tenant order.
  std::vector<core::Mapping> mappings;
  std::vector<TenantOutcome> tenants;
  /// Winner / explicit-independent rollout detail (same objective).
  ServingObjective::Score score;
  ServingObjective::Score independent_score;
  /// True when the joint search strictly beat independent planning.
  bool joint_won = false;
  /// Best fitness after each outer generation.
  std::vector<double> history;
  /// Engine-level provenance; `members` holds the winner's per-tenant
  /// records (inner-search provenance for partition/independent).
  plan::Provenance provenance;
  long long rollout_hits = 0;
  long long rollout_misses = 0;
};

class CoMapEngine {
 public:
  explicit CoMapEngine(CoMapConfig config = {});

  [[nodiscard]] std::string name() const { return "comap"; }
  [[nodiscard]] bool searches() const { return true; }
  /// Canonical identity: encoding, outer-GA knobs, seed, and the inner
  /// engine's full spec. Rollout parameters live in the problem (like the
  /// model does for single-tenant engines), not here.
  [[nodiscard]] std::string spec_string() const;

  /// Runs the joint search. `cache` (optional) composes with the inner
  /// per-tenant searches exactly as serve::ModelService does: slice
  /// searches key under the ";placement=<hex>" suffixed spec, full-fleet
  /// (independent) searches keep their historical identity, and cancelled
  /// inner searches are never stored.
  [[nodiscard]] CoMapResult search(const CoMapProblem& problem,
                                   const plan::Budget& budget = {},
                                   const serve::MappingCache* cache = nullptr,
                                   const plan::ProgressFn& progress = {}) const;

  [[nodiscard]] const CoMapConfig& config() const { return config_; }

 private:
  CoMapConfig config_;
};

/// The partition decode, exposed for tests: largest-remainder counts from
/// the T + 1 share genes (each tenant gets >= 1 of the fleet's `accs`
/// accelerators, the trailing bucket is the shared pool, possibly empty),
/// then contiguous id ranges in tenant order. Returned masks are each
/// tenant's slice INCLUDING the shared pool.
[[nodiscard]] std::vector<topology::AccMask> decode_partition_genome(
    const std::vector<double>& genome, std::size_t num_tenants, int accs);

}  // namespace mars::comap
