// The serving-objective fitness: score a candidate co-mapping by rolling
// out the shared request stream against it.
//
// A candidate is one core::Mapping per tenant (however the engine encoded
// it — fleet partition or interleaved skeletons). ServingObjective turns
// the candidate into serve::ServedModel views (flat prototype graph +
// uncontended latency, built through the same MappingEvaluator /
// FlatTaskGraph path ModelService uses), replays the problem's seeded
// Poisson stream through a quiet serve::OnlineScheduler, and scores
//
//   fitness = (offered - slo_good) + p99 / (1 + p99)      (minimised)
//
// — the integer count of requests that missed their tenant's objective
// (shed requests included), tie-broken by a bounded-[0, 1) transform of
// the fleet p99 so equal-goodput candidates prefer the lower tail.
//
// Determinism contract (the PR 5 dedupe-then-parallel-price discipline):
// score_batch sweeps candidate signatures serially (charging the first
// appearance of a signature as the miss and every later one as a hit),
// materialises missing per-tenant artifacts serially, prices the deduped
// missing rollouts in parallel on a util::WorkerPool (each rollout is a
// pure function of its candidate + the shared arrival stream), and
// publishes serially in first-seen order. Fitness values AND the
// hit/miss counters are byte-identical at any thread count. Candidate
// identity is an FNV-1a hash of the lossless core/serialize.* JSON form,
// so two structurally equal mappings always share one rollout.
//
// Rollouts run with SchedulerOptions::quiet — a search replays thousands
// of candidate fleets; none of them may leak into the user's trace or
// metrics. The objective's own counters (comap.rollout.*, comap.proto.*)
// live in an instance registry flushed into the installed global registry
// on destruction, like SkeletonSpace and MappingCache.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mars/comap/problem.h"
#include "mars/obs/metrics.h"
#include "mars/plan/planner.h"
#include "mars/serve/scheduler.h"
#include "mars/sim/task_graph.h"

namespace mars::util {
class WorkerPool;
}

namespace mars::comap {

/// One candidate co-mapping: mapping per tenant, in tenant order.
using CandidatePlan = std::vector<core::Mapping>;

class ServingObjective {
 public:
  /// Builds one plan::Planner per tenant (the graph -> spine -> Problem
  /// chain the rollout artifacts are evaluated against) and materialises
  /// the shared arrival stream once. `problem` must outlive this object.
  explicit ServingObjective(const CoMapProblem& problem);
  /// Flushes the instance metrics into the installed global registry.
  ~ServingObjective();

  ServingObjective(const ServingObjective&) = delete;
  ServingObjective& operator=(const ServingObjective&) = delete;

  /// What one rollout measured. `fitness` is the minimised objective
  /// above; the counts let reports speak goodput instead of raw fitness.
  struct Score {
    double fitness = 0.0;
    int offered = 0;
    int completed = 0;
    int good = 0;      // completions within their tenant's objective
    int rejected = 0;  // shed by rollout admission control
    Seconds p99{};     // fleet-wide completed-latency p99
    /// SLO-good completions per second of rollout duration.
    [[nodiscard]] double goodput_rps(Seconds duration) const {
      return duration.count() > 0.0 ? good / duration.count() : 0.0;
    }
  };

  /// Memoised single-candidate score (charges one rollout hit or miss).
  [[nodiscard]] Score score(const CandidatePlan& plan);

  /// Memoised batch pricing: fitness per candidate, same order. See the
  /// determinism contract above; `pool == nullptr` runs the identical
  /// code path single-threaded.
  [[nodiscard]] std::vector<double> score_batch(
      const std::vector<CandidatePlan>& plans, util::WorkerPool* pool = nullptr);

  [[nodiscard]] std::size_t num_tenants() const { return planners_.size(); }
  [[nodiscard]] const plan::Planner& planner(std::size_t t) const;
  [[nodiscard]] const std::vector<serve::Request>& arrivals() const {
    return arrivals_;
  }
  [[nodiscard]] Seconds slo(std::size_t t) const;

  /// Rollout memo counters (`comap.rollout.*`): the batch contract is
  /// stated in terms of these two values.
  [[nodiscard]] long long rollout_hits() const { return rollout_hits_->value(); }
  [[nodiscard]] long long rollout_misses() const {
    return rollout_misses_->value();
  }
  /// Per-tenant artifact (prototype graph) memo counters (`comap.proto.*`).
  [[nodiscard]] long long proto_hits() const { return proto_hits_->value(); }
  [[nodiscard]] long long proto_misses() const {
    return proto_misses_->value();
  }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

 private:
  /// The serving-side compile of one tenant mapping: what a ServedModel
  /// view points at. Held behind unique_ptr so the flat graph's address
  /// is stable across memo growth.
  struct Artifact {
    sim::TaskGraph proto;
    sim::FlatTaskGraph flat;
    Seconds single_latency{};
  };

  /// FNV-1a over the lossless serialised form of tenant `t`'s mapping.
  [[nodiscard]] std::uint64_t mapping_signature(std::size_t t,
                                                const core::Mapping& mapping);
  /// Artifact for (tenant, mapping), built on first use (charges a proto
  /// hit/miss). Serial-phase only: the memo mutates.
  [[nodiscard]] const Artifact& artifact(std::size_t t,
                                         const core::Mapping& mapping,
                                         std::uint64_t signature);
  /// The pure rollout: replays arrivals_ against the artifact set.
  [[nodiscard]] Score rollout(const std::vector<const Artifact*>& artifacts) const;

  const CoMapProblem* problem_;
  std::vector<plan::Planner> planners_;
  std::vector<Seconds> slos_;
  std::vector<serve::Request> arrivals_;
  serve::SchedulerOptions sched_options_;

  /// (tenant, mapping-signature) -> compiled artifact.
  struct ArtifactKeyHash {
    std::size_t operator()(const std::pair<std::size_t, std::uint64_t>& k) const {
      return (k.second ^ k.first) * 1099511628211ull;
    }
  };
  std::unordered_map<std::pair<std::size_t, std::uint64_t>,
                     std::unique_ptr<Artifact>, ArtifactKeyHash>
      artifacts_;
  /// Combined candidate signature -> rollout score.
  std::unordered_map<std::uint64_t, Score> rollouts_;

  obs::MetricsRegistry metrics_;
  obs::Counter* rollout_hits_;
  obs::Counter* rollout_misses_;
  obs::Counter* proto_hits_;
  obs::Counter* proto_misses_;
};

}  // namespace mars::comap
