// Joint multi-tenant co-mapping: the problem statement.
//
// Independent planning maps every tenant model against the full fleet
// and lets the online scheduler sort out the interference; co-mapping
// searches the tenants *jointly* — where each tenant's mapping may be
// confined to a fleet slice (core::Problem::placement) — and scores a
// candidate by what serving actually cares about: SLO goodput of a
// short, seeded rollout of the shared request stream, not the analytic
// makespan of any one model.
//
// A CoMapProblem bundles the tenant set (zoo models, traffic weights,
// per-tenant latency objectives) with the shared topology/design
// registry and the rollout workload parameters. Everything downstream
// (comap::ServingObjective, comap::CoMapEngine) is a deterministic
// function of this value plus an engine config — the same contract the
// single-model plan::SearchEngine stack keeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mars/accel/registry.h"
#include "mars/serve/batcher.h"
#include "mars/topology/topology.h"
#include "mars/util/units.h"

namespace mars::comap {

/// One co-resident model: a zoo name, its share of the request stream,
/// and (optionally) its own latency objective.
struct Tenant {
  std::string model;
  /// Relative traffic weight (normalised across the tenant set).
  double weight = 1.0;
  /// Per-tenant SLO; <= 0 falls back to RolloutSpec::default_slo.
  Seconds slo{};
};

/// The rollout workload every candidate co-mapping is scored against:
/// one Poisson stream over the weighted tenant mix, replayed identically
/// (same seed, same arrivals) for every candidate so fitness differences
/// are mapping differences, never workload noise.
struct RolloutSpec {
  /// Offered load, requests per second across all tenants.
  double rate = 150.0;
  /// Simulated rollout horizon.
  Seconds duration{1.0};
  /// Arrival-stream seed (util/rng.h).
  std::uint64_t seed = 1;
  /// Batching + admission applied inside the rollout scheduler. Per-tenant
  /// SLOs are wired into slo: admission automatically.
  serve::PolicySpec policy{};
  /// Objective for tenants without an explicit slo. Must be positive: the
  /// fitness is defined in terms of SLO-good completions.
  Seconds default_slo{0.100};
};

struct CoMapProblem {
  std::vector<Tenant> tenants;
  /// Shared fleet (non-owning; caller keeps both alive).
  const topology::Topology* topo = nullptr;
  const accel::DesignRegistry* designs = nullptr;
  bool adaptive = true;
  RolloutSpec rollout;

  /// Throws util::InvalidArgument naming the offending field when the
  /// problem cannot drive a search (no tenants, null system pointers,
  /// non-positive weight/rate/duration/default_slo, more tenants than
  /// accelerators).
  void validate() const;

  /// The effective objective tenant `t` is held to: its own slo when
  /// positive, else rollout.default_slo.
  [[nodiscard]] Seconds slo_of(std::size_t t) const;
  /// Traffic weights in tenant order (the poisson_arrivals mix vector).
  [[nodiscard]] std::vector<double> weights() const;
};

}  // namespace mars::comap
