#include "mars/comap/problem.h"

#include "mars/util/error.h"

namespace mars::comap {

void CoMapProblem::validate() const {
  MARS_CHECK_ARG(topo != nullptr, "CoMapProblem.topo must be set");
  MARS_CHECK_ARG(designs != nullptr, "CoMapProblem.designs must be set");
  MARS_CHECK_ARG(!tenants.empty(), "CoMapProblem.tenants must not be empty");
  MARS_CHECK_ARG(static_cast<int>(tenants.size()) <= topo->size(),
                 "CoMapProblem.tenants: " << tenants.size()
                                          << " tenants need at least as many "
                                             "accelerators (fleet has "
                                          << topo->size() << ")");
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    MARS_CHECK_ARG(!tenants[t].model.empty(),
                   "CoMapProblem.tenants[" << t << "].model must be named");
    MARS_CHECK_ARG(tenants[t].weight > 0.0,
                   "CoMapProblem.tenants[" << t << "].weight must be > 0, got "
                                           << tenants[t].weight);
  }
  MARS_CHECK_ARG(rollout.rate > 0.0,
                 "CoMapProblem.rollout.rate must be > 0, got " << rollout.rate);
  MARS_CHECK_ARG(rollout.duration.count() > 0.0,
                 "CoMapProblem.rollout.duration must be > 0, got "
                     << rollout.duration.count() << "s");
  MARS_CHECK_ARG(rollout.default_slo.count() > 0.0,
                 "CoMapProblem.rollout.default_slo must be > 0, got "
                     << rollout.default_slo.count() << "s");
}

Seconds CoMapProblem::slo_of(std::size_t t) const {
  MARS_CHECK_ARG(t < tenants.size(),
                 "tenant index " << t << " outside the tenant set");
  const Seconds own = tenants[t].slo;
  return own.count() > 0.0 ? own : rollout.default_slo;
}

std::vector<double> CoMapProblem::weights() const {
  std::vector<double> w;
  w.reserve(tenants.size());
  for (const Tenant& tenant : tenants) w.push_back(tenant.weight);
  return w;
}

}  // namespace mars::comap
