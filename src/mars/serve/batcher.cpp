#include "mars/serve/batcher.h"

#include "mars/util/error.h"
#include "mars/util/strings.h"

namespace mars::serve {

BatchPolicy BatchPolicy::none() { return BatchPolicy{}; }

BatchPolicy BatchPolicy::size(int n) {
  MARS_CHECK_ARG(n >= 1, "size-N batching needs N >= 1, got " << n);
  BatchPolicy policy;
  policy.kind = Kind::kSize;
  policy.max_batch = n;
  return policy;
}

BatchPolicy BatchPolicy::with_timeout(int max_batch, Seconds timeout) {
  MARS_CHECK_ARG(max_batch >= 1,
                 "timeout batching needs a size cap >= 1, got " << max_batch);
  MARS_CHECK_ARG(timeout.count() >= 0.0, "batching timeout must be >= 0");
  BatchPolicy policy;
  policy.kind = Kind::kTimeout;
  policy.max_batch = max_batch;
  policy.timeout = timeout;
  return policy;
}

namespace {

/// Whole-field numeric parse: rejects prefixes like "4x" that stoi/stod
/// would silently truncate. Returns false on any parse failure.
bool parse_int_field(const std::string& field, int& out) {
  std::size_t consumed = 0;
  try {
    out = std::stoi(field, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed == field.size();
}

bool parse_double_field(const std::string& field, double& out) {
  std::size_t consumed = 0;
  try {
    out = std::stod(field, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  return consumed == field.size();
}

}  // namespace

BatchPolicy BatchPolicy::parse(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.size() == 1 && parts[0] == "none") return none();
  if (parts.size() == 2 && parts[0] == "size") {
    if (int n = 0; parse_int_field(parts[1], n)) return size(n);
  }
  if ((parts.size() == 2 || parts.size() == 3) && parts[0] == "timeout") {
    int cap = 8;
    double timeout_ms = 0.0;
    if (parse_double_field(parts[1], timeout_ms) &&
        (parts.size() == 2 || parse_int_field(parts[2], cap))) {
      return with_timeout(cap, milliseconds(timeout_ms));
    }
  }
  throw InvalidArgument("bad batching policy '" + spec +
                        "' (use none | size:N | timeout:MS[:N])");
}

std::string BatchPolicy::to_string() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kSize:
      return "size:" + std::to_string(max_batch);
    case Kind::kTimeout:
      return "timeout:" + format_double(timeout.millis(), 3) + ":" +
             std::to_string(max_batch);
  }
  return "?";
}

AdmissionPolicy AdmissionPolicy::none() { return AdmissionPolicy{}; }

AdmissionPolicy AdmissionPolicy::slo_aware(Seconds slo) {
  MARS_CHECK_ARG(slo.count() > 0.0, "slo admission needs a positive budget");
  AdmissionPolicy policy;
  policy.kind = Kind::kSlo;
  policy.slo = slo;
  return policy;
}

AdmissionPolicy AdmissionPolicy::shed(int max_depth) {
  MARS_CHECK_ARG(max_depth >= 1,
                 "shed-N admission needs N >= 1, got " << max_depth);
  AdmissionPolicy policy;
  policy.kind = Kind::kShed;
  policy.max_depth = max_depth;
  return policy;
}

AdmissionPolicy AdmissionPolicy::parse(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.size() == 1 && parts[0] == "none") return none();
  if (parts.size() == 2 && parts[0] == "slo") {
    if (double ms = 0.0; parse_double_field(parts[1], ms)) {
      return slo_aware(milliseconds(ms));
    }
  }
  if (parts.size() == 2 && parts[0] == "shed") {
    if (int depth = 0; parse_int_field(parts[1], depth)) return shed(depth);
  }
  throw InvalidArgument("bad admission policy '" + spec +
                        "' (use none | slo:MS | shed:N)");
}

std::string AdmissionPolicy::to_string() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kSlo:
      return "slo:" + format_double(slo.millis(), 3);
    case Kind::kShed:
      return "shed:" + std::to_string(max_depth);
  }
  return "?";
}

PolicySpec PolicySpec::parse(const std::string& spec) {
  PolicySpec out;
  bool saw_batch = false;
  bool saw_admission = false;
  for (const std::string& part : split(spec, '+')) {
    const std::string head = split(part, ':')[0];
    if (head == "slo" || head == "shed") {
      MARS_CHECK_ARG(!saw_admission, "policy '" << spec
                                                << "' names two admission "
                                                   "policies");
      out.admission = AdmissionPolicy::parse(part);
      saw_admission = true;
    } else {
      MARS_CHECK_ARG(!saw_batch,
                     "policy '" << spec << "' names two batching policies");
      out.batch = BatchPolicy::parse(part);
      saw_batch = true;
    }
  }
  return out;
}

std::string PolicySpec::to_string() const {
  if (admission.kind == AdmissionPolicy::Kind::kNone) return batch.to_string();
  if (batch.kind == BatchPolicy::Kind::kNone) return admission.to_string();
  return batch.to_string() + "+" + admission.to_string();
}

Batcher::Batcher(BatchPolicy policy) : policy_(policy) {}

void Batcher::close_open() {
  if (open_.empty()) return;
  ready_.push_back(std::move(open_));
  open_.clear();
}

void Batcher::push(const Request& request) {
  MARS_CHECK_ARG(open_.empty() || request.arrival >= open_.back().arrival,
                 "requests must be pushed in arrival order");
  switch (policy_.kind) {
    case BatchPolicy::Kind::kNone:
      ready_.push_back({request});
      break;
    case BatchPolicy::Kind::kSize:
      open_.push_back(request);
      if (static_cast<int>(open_.size()) >= policy_.max_batch) close_open();
      break;
    case BatchPolicy::Kind::kTimeout:
      if (open_.empty()) open_deadline_ = request.arrival + policy_.timeout;
      open_.push_back(request);
      if (static_cast<int>(open_.size()) >= policy_.max_batch) close_open();
      break;
  }
}

std::vector<std::vector<Request>> Batcher::pop_ready(Seconds now) {
  if (policy_.kind == BatchPolicy::Kind::kTimeout && !open_.empty() &&
      open_deadline_ <= now) {
    close_open();
  }
  std::vector<std::vector<Request>> out = std::move(ready_);
  ready_.clear();
  return out;
}

std::optional<Seconds> Batcher::next_deadline() const {
  if (policy_.kind != BatchPolicy::Kind::kTimeout || open_.empty()) {
    return std::nullopt;
  }
  return open_deadline_;
}

std::vector<std::vector<Request>> Batcher::flush() {
  close_open();
  std::vector<std::vector<Request>> out = std::move(ready_);
  ready_.clear();
  return out;
}

int Batcher::pending() const {
  int count = static_cast<int>(open_.size());
  for (const std::vector<Request>& batch : ready_) {
    count += static_cast<int>(batch.size());
  }
  return count;
}

}  // namespace mars::serve
