// Fleet-scale sharded serving: N identical replica groups behind one
// deterministic router.
//
// The single-engine OnlineScheduler models co-resident interference
// inside one replica group; a real deployment runs many such groups and
// splits traffic across them. FleetScheduler reproduces that shape in
// simulation: the fleet is partitioned into `shards` replica groups (each
// one a copy of the same group topology and planned services), every
// arrival is routed to a shard by a deterministic hash of (model,
// request id), the per-shard schedulers run independently — one engine
// per shard, optionally in parallel on a util::WorkerPool — and the
// per-shard streams are merged back into a single ServeResult.
//
// Determinism contract: routing is a pure function of the request (FNV-1a
// over model then id, platform-independent), each shard engine is the
// bit-deterministic OnlineScheduler, results are published by shard index
// and merged with a stable sort keyed on simulated time (ties resolve to
// shard-major, intra-shard order), so the merged result — and everything
// derived from it, stdout included — is byte-identical for a given seed
// at any --threads. Simulated-domain trace events must additionally be
// *emitted* in one deterministic order, so when a trace recorder is
// installed the shards run serially (their engines label tracks "s0 ",
// "s1 ", ... via SchedulerOptions::trace_label_prefix); wall-domain spans
// record real per-shard timing and are non-deterministic by contract.
//
// With shards == 1 the FleetScheduler delegates to a single unprefixed
// OnlineScheduler — the serial scheduler stays the reference
// implementation the differential harness
// (tests/serve/test_fleet_differential.cpp) compares every sharded
// configuration against.
#pragma once

#include <vector>

#include "mars/serve/scheduler.h"

namespace mars::serve {

struct FleetOptions {
  /// Number of replica groups. 1 = the single-engine reference path.
  int shards = 1;
  /// Worker threads for running shard engines concurrently. Shards run
  /// serially regardless when a trace recorder is installed (see above).
  int threads = 1;
  /// Per-shard engine configuration. FleetScheduler owns the label
  /// prefixing; leave trace_label_prefix empty.
  SchedulerOptions scheduler{};
  /// Heterogeneous fleets: entry s lists the fleet model indices shard s
  /// hosts (a comap partition typically pins each tenant to a slice of
  /// shards). Empty = every shard replicates every model (the historical
  /// homogeneous fleet, byte-identical to before this option existed).
  /// When set it must have exactly `shards` non-empty entries, every
  /// model must be hosted by at least one shard, and requests are routed
  /// among a model's hosting shards only: shard =
  /// hosts[shard_of(model, id, hosts.size())].
  std::vector<std::vector<int>> shard_models;
};

/// How a fleet of `accelerators` splits into `shards` replica groups.
struct FleetPartition {
  int shards = 1;               // effective shard count (after clamping)
  int group_accelerators = 0;   // accelerators per replica group
  int unused_accelerators = 0;  // remainder that joins no group
  bool clamped = false;         // requested shards exceeded accelerators
};

/// Partitions `accelerators` into `shards` equal replica groups. A shard
/// count larger than the accelerator count clamps to one accelerator per
/// group (`clamped` reports it); the division remainder is left unused.
/// Throws util::InvalidArgument on non-positive inputs.
[[nodiscard]] FleetPartition partition_fleet(int accelerators, int shards);

/// Deterministic shard routing: FNV-1a (64-bit) over the little-endian
/// bytes of `model` then `request_id`, reduced mod `shards`. A pure,
/// platform-independent function — the same request always lands on the
/// same shard, and requests with colliding ids across different models
/// still spread.
[[nodiscard]] int shard_of(int model, int request_id, int shards);

/// Merges per-shard results into one fleet-wide ServeResult: completed
/// requests stably sorted by completion time (rejected by arrival time),
/// ties in shard-major order; acc_busy concatenated shard-major (fleet
/// accelerator index = shard * group_accelerators + local index); horizon
/// is the max over shards; counts are summed. Every shard's acc_busy must
/// have exactly `group_accelerators` entries.
[[nodiscard]] ServeResult merge_shard_results(
    std::vector<ServeResult> shard_results, int group_accelerators);

/// `shards` replica groups, each an OnlineScheduler over the *same* group
/// topology and services (replica groups are identical by construction —
/// plan once, share read-only).
class FleetScheduler {
 public:
  /// `group_topo` is the topology of ONE replica group; `services` were
  /// planned on it and must outlive the scheduler. Throws on shards < 1
  /// or threads < 1.
  FleetScheduler(const topology::Topology& group_topo,
                 std::vector<const ModelService*> services,
                 FleetOptions options = {});

  /// Routes `arrivals` across shards, runs every shard engine, merges.
  [[nodiscard]] ServeResult run(const std::vector<Request>& arrivals) const;

  /// Closed loop: clients are routed to shards by (their model, client
  /// index) and stay there for the whole run; within a shard, request ids
  /// restart from the shard's client count (engine-local numbering).
  [[nodiscard]] ServeResult run_closed_loop(const ClosedLoopSpec& spec,
                                            Seconds duration) const;

  [[nodiscard]] int shards() const { return options_.shards; }
  [[nodiscard]] int num_models() const {
    return static_cast<int>(services_.size());
  }

 private:
  /// Runs `fn(shard)` -> ServeResult for every shard: serially when a
  /// trace recorder is installed (deterministic sim-domain emission
  /// order, wall spans around each shard), on the worker pool otherwise.
  template <typename ShardFn>
  [[nodiscard]] std::vector<ServeResult> run_shards(ShardFn&& fn) const;

  [[nodiscard]] bool heterogeneous() const {
    return !options_.shard_models.empty();
  }
  /// Rewrites a heterogeneous shard's engine-local model indices back to
  /// fleet indices (in place) so the merged result speaks one index space.
  void restore_fleet_indices(std::vector<ServeResult>& results) const;

  const topology::Topology* group_topo_;
  std::vector<const ModelService*> services_;
  FleetOptions options_;
  std::vector<OnlineScheduler> shard_schedulers_;
  /// Heterogeneous-fleet routing state (empty when homogeneous): the
  /// shards hosting each model, and per shard the fleet->local index map
  /// (-1 = not hosted).
  std::vector<std::vector<int>> model_hosts_;
  std::vector<std::vector<int>> fleet_to_local_;
};

}  // namespace mars::serve
