#include "mars/serve/service.h"

#include "mars/core/baseline.h"
#include "mars/graph/models/models.h"
#include "mars/util/error.h"

namespace mars::serve {

ModelService::ModelService(std::string model_name,
                           const topology::Topology& topo,
                           const accel::DesignRegistry& designs, bool adaptive,
                           Mapper mapper, const core::MarsConfig& config)
    : name_(std::move(model_name)),
      model_(graph::models::by_name(name_)),
      spine_(graph::ConvSpine::extract(model_)) {
  problem_.spine = &spine_;
  problem_.topo = &topo;
  problem_.designs = &designs;
  problem_.adaptive = adaptive;

  switch (mapper) {
    case Mapper::kBaseline: {
      const accel::ProfileMatrix profile(designs, spine_);
      mapping_ = core::baseline_mapping(problem_, profile);
      break;
    }
    case Mapper::kMars: {
      core::Mars mars(problem_, config);
      mapping_ = mars.search().mapping;
      break;
    }
  }

  const core::MappingEvaluator evaluator(problem_);
  proto_ = evaluator.build_task_graph(mapping_);
  const sim::Executor executor(topo, problem_.sim_params);
  single_latency_ = executor.run(proto_).makespan;
}

std::vector<std::unique_ptr<ModelService>> plan_services(
    const std::vector<std::string>& model_names,
    const topology::Topology& topo, const accel::DesignRegistry& designs,
    bool adaptive, ModelService::Mapper mapper,
    const core::MarsConfig& config) {
  MARS_CHECK_ARG(!model_names.empty(), "a fleet serves at least one model");
  std::vector<std::unique_ptr<ModelService>> services;
  services.reserve(model_names.size());
  for (const std::string& name : model_names) {
    services.push_back(std::make_unique<ModelService>(name, topo, designs,
                                                      adaptive, mapper, config));
  }
  return services;
}

}  // namespace mars::serve
