#include "mars/serve/service.h"

#include <sstream>

#include "mars/core/evaluator.h"
#include "mars/graph/models/models.h"
#include "mars/sim/executor.h"
#include "mars/util/error.h"
#include "mars/util/logging.h"

namespace mars::serve {

std::string search_spec(const plan::SearchEngine& engine,
                        const plan::Budget& budget,
                        topology::AccMask placement) {
  std::ostringstream os;
  os << engine.spec_string();
  // A budget changes what the search returns, so it is part of the cache
  // identity. Wall-clock budgets are non-reproducible, but cache reuse of
  // one is exactly the point: search once under the time cap, reload after.
  if (budget.max_evaluations > 0) os << ";evals=" << budget.max_evaluations;
  if (budget.wall_clock.count() > 0.0) {
    os << ";wall_ms=" << budget.wall_clock.millis();
  }
  // Placement-confined searches (comap slices) get their own identity;
  // full-fleet searches keep their historical fingerprint unchanged.
  if (placement != 0) os << ";placement=" << std::hex << placement;
  return os.str();
}

ModelService::ModelService(std::string model_name,
                           const topology::Topology& topo,
                           const accel::DesignRegistry& designs, bool adaptive,
                           const plan::SearchEngine& engine,
                           const MappingCache* cache,
                           const plan::Budget& budget,
                           topology::AccMask placement)
    : name_(std::move(model_name)),
      planner_(plan::Planner::for_model(name_, topo, designs, adaptive,
                                        placement)) {
  // Closed-form engines bypass the cache: the baseline is cheaper than
  // reading and validating a cache entry.
  const bool cacheable = cache != nullptr && engine.searches();
  bool planned = false;
  std::optional<MappingCache::Key> key;
  if (cacheable) {
    key = MappingCache::Key{
        name_, MappingCache::fingerprint(
                   topo, designs, adaptive,
                   search_spec(engine, budget, placement))};
    if (std::optional<core::Mapping> cached =
            cache->load(*key, planner_.spine(), topo, designs, adaptive)) {
      mapping_ = *std::move(cached);
      source_ = MappingSource::kCacheHit;
      provenance_.engine = engine.name();
      provenance_.spec = search_spec(engine, budget, placement);
      planned = true;
      MARS_INFO << "mapping cache hit for '" << name_ << "' ("
                << cache->path_for(*key) << "), " << engine.name()
                << " search skipped";
    }
  }

  if (!planned) {
    plan::PlanResult result = planner_.plan(engine, budget);
    mapping_ = std::move(result.mapping);
    provenance_ = std::move(result.provenance);
    source_ = engine.searches() ? MappingSource::kSearched
                                : MappingSource::kBaseline;
    // Evaluation/wall budgets are part of the fingerprint, but a cancel
    // token is a runtime event no key can capture: storing a cancelled
    // search's truncated mapping would poison every later startup under
    // the complete-search fingerprint.
    const bool storable =
        provenance_.stopped != plan::StopReason::kCancelled;
    if (cacheable && storable) {
      // A persistence failure (full disk, permissions) only costs the
      // next startup its cache hit; the searched mapping is in hand.
      try {
        cache->store(*key, mapping_, planner_.spine(), designs, adaptive);
        MARS_INFO << "mapping cache miss for '" << name_ << "'; stored "
                  << cache->path_for(*key);
      } catch (const std::exception& e) {
        MARS_WARN << "mapping cache store failed for '" << name_
                  << "' (serving continues uncached): " << e.what();
      }
    }
  }

  const core::MappingEvaluator evaluator(planner_.problem());
  proto_ = evaluator.build_task_graph(mapping_);
  flat_proto_ = sim::FlatTaskGraph::from(proto_);
  const sim::Executor executor(topo, planner_.problem().sim_params);
  single_latency_ = executor.run(proto_).makespan;
}

std::string to_string(ModelService::MappingSource source) {
  switch (source) {
    case ModelService::MappingSource::kBaseline:
      return "baseline";
    case ModelService::MappingSource::kSearched:
      return "searched";
    case ModelService::MappingSource::kCacheHit:
      return "cache";
  }
  return "?";
}

std::vector<std::unique_ptr<ModelService>> plan_services(
    const std::vector<std::string>& model_names,
    const topology::Topology& topo, const accel::DesignRegistry& designs,
    bool adaptive, const plan::SearchEngine& engine, const MappingCache* cache,
    const plan::Budget& budget,
    const std::vector<topology::AccMask>& placements) {
  MARS_CHECK_ARG(!model_names.empty(), "a fleet serves at least one model");
  MARS_CHECK_ARG(placements.empty() || placements.size() == model_names.size(),
                 "one placement mask per model required");
  std::vector<std::unique_ptr<ModelService>> services;
  services.reserve(model_names.size());
  for (std::size_t i = 0; i < model_names.size(); ++i) {
    services.push_back(std::make_unique<ModelService>(
        model_names[i], topo, designs, adaptive, engine, cache, budget,
        placements.empty() ? topology::AccMask{0} : placements[i]));
  }
  return services;
}

}  // namespace mars::serve
