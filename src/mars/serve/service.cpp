#include "mars/serve/service.h"

#include "mars/core/baseline.h"
#include "mars/graph/models/models.h"
#include "mars/util/error.h"
#include "mars/util/logging.h"

namespace mars::serve {

ModelService::ModelService(std::string model_name,
                           const topology::Topology& topo,
                           const accel::DesignRegistry& designs, bool adaptive,
                           Mapper mapper, const core::MarsConfig& config,
                           const MappingCache* cache)
    : name_(std::move(model_name)),
      model_(graph::models::by_name(name_)),
      spine_(graph::ConvSpine::extract(model_)) {
  problem_.spine = &spine_;
  problem_.topo = &topo;
  problem_.designs = &designs;
  problem_.adaptive = adaptive;

  switch (mapper) {
    case Mapper::kBaseline: {
      // No cache on this path: the baseline is a closed-form pass, cheaper
      // than reading and validating a cache entry.
      const accel::ProfileMatrix profile(designs, spine_);
      mapping_ = core::baseline_mapping(problem_, profile);
      source_ = MappingSource::kBaseline;
      break;
    }
    case Mapper::kMars: {
      std::optional<MappingCache::Key> key;
      if (cache != nullptr) {
        key = MappingCache::Key{
            name_, MappingCache::fingerprint(topo, designs, adaptive, "mars",
                                             config)};
        if (std::optional<core::Mapping> cached =
                cache->load(*key, spine_, topo, designs, adaptive)) {
          mapping_ = *std::move(cached);
          source_ = MappingSource::kCacheHit;
          MARS_INFO << "mapping cache hit for '" << name_ << "' ("
                    << cache->path_for(*key) << "), GA search skipped";
          break;
        }
      }
      core::Mars mars(problem_, config);
      mapping_ = mars.search().mapping;
      source_ = MappingSource::kSearched;
      if (cache != nullptr) {
        // A persistence failure (full disk, permissions) only costs the
        // next startup its cache hit; the searched mapping is in hand.
        try {
          cache->store(*key, mapping_, spine_, designs, adaptive);
          MARS_INFO << "mapping cache miss for '" << name_ << "'; stored "
                    << cache->path_for(*key);
        } catch (const std::exception& e) {
          MARS_WARN << "mapping cache store failed for '" << name_
                    << "' (serving continues uncached): " << e.what();
        }
      }
      break;
    }
  }

  const core::MappingEvaluator evaluator(problem_);
  proto_ = evaluator.build_task_graph(mapping_);
  const sim::Executor executor(topo, problem_.sim_params);
  single_latency_ = executor.run(proto_).makespan;
}

std::string to_string(ModelService::MappingSource source) {
  switch (source) {
    case ModelService::MappingSource::kBaseline:
      return "baseline";
    case ModelService::MappingSource::kSearched:
      return "searched";
    case ModelService::MappingSource::kCacheHit:
      return "cache";
  }
  return "?";
}

std::vector<std::unique_ptr<ModelService>> plan_services(
    const std::vector<std::string>& model_names,
    const topology::Topology& topo, const accel::DesignRegistry& designs,
    bool adaptive, ModelService::Mapper mapper, const core::MarsConfig& config,
    const MappingCache* cache) {
  MARS_CHECK_ARG(!model_names.empty(), "a fleet serves at least one model");
  std::vector<std::unique_ptr<ModelService>> services;
  services.reserve(model_names.size());
  for (const std::string& name : model_names) {
    services.push_back(std::make_unique<ModelService>(
        name, topo, designs, adaptive, mapper, config, cache));
  }
  return services;
}

}  // namespace mars::serve
