// Persistent (model, topology, mapper config) -> Mapping cache.
//
// A serving fleet re-plans the same models on the same hardware every
// startup; the GA search dominates that startup time. MappingCache makes
// repeat startups a file load: searched mappings are serialised through
// core/serialize.* into one JSON file per (model, fingerprint) pair under
// a cache directory, and rehydrated (plus re-validated against the live
// problem) on the next construction.
//
// Invalidation is structural, not temporal: the fingerprint hashes the
// topology (accelerators, DRAM, links, host bandwidths), the design
// registry, the adaptive flag, and the search identity — the engine's
// canonical spec string (plan::SearchEngine::spec_string(), which names
// the engine and every search knob including the seed) plus any budget
// the caller appends. Change any of them and the key misses; stale
// entries are never read, only orphaned. In particular a GA mapping is
// never served to an annealing run: the engine name itself is part of
// the key. A corrupt, truncated or foreign-problem file is treated as a
// miss (logged), never an error — the cache must not be able to break
// serving startup.
#pragma once

#include <optional>
#include <string>

#include "mars/core/mapping.h"
#include "mars/obs/metrics.h"

namespace mars::serve {

class MappingCache {
 public:
  /// Identifies one cache entry. `model` is the spine/zoo model name;
  /// `fingerprint` comes from MappingCache::fingerprint below.
  struct Key {
    std::string model;
    std::string fingerprint;
  };

  /// Opens (and creates, if needed) the cache directory. Throws
  /// InvalidArgument when `dir` exists but is not a directory.
  explicit MappingCache(std::string dir);
  /// Flushes the instance metrics into the installed global registry
  /// (obs::metrics()), when one is installed.
  ~MappingCache();

  /// 64-bit FNV-1a over everything the searched mapping depends on:
  /// topology structure, the design registry (name, frequency, peak
  /// MACs/cycle, PE count, parameter string, DRAM bytes/cycle, area
  /// cost and energy/MAC per design — a custom design whose formula
  /// changes without touching any of those must change its name or
  /// parameter string to invalidate),
  /// adaptive flag, and `search_spec` — the engine's spec_string()
  /// (engine name + config + seed), optionally suffixed with the search
  /// budget by the caller. Returned as 16 hex characters.
  [[nodiscard]] static std::string fingerprint(const topology::Topology& topo,
                                               const accel::DesignRegistry& designs,
                                               bool adaptive,
                                               const std::string& search_spec);

  /// File a key maps to: `<dir>/<model>-<fingerprint>.json`.
  [[nodiscard]] std::string path_for(const Key& key) const;

  /// Loads and re-validates the entry for `key`. Returns nullopt on any
  /// miss: absent file, unreadable/corrupt JSON, key mismatch, or a
  /// mapping that no longer validates against the given problem.
  [[nodiscard]] std::optional<core::Mapping> load(
      const Key& key, const graph::ConvSpine& spine,
      const topology::Topology& topo, const accel::DesignRegistry& designs,
      bool adaptive) const;

  /// Serialises `mapping` under `key` (overwrites any previous entry).
  /// Throws Error when the file cannot be written.
  void store(const Key& key, const core::Mapping& mapping,
             const graph::ConvSpine& spine, const accel::DesignRegistry& designs,
             bool adaptive) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Lifetime load/store outcome counts for this cache instance (the
  /// `serve.cache.*` counters; see docs/OBSERVABILITY.md). `corrupt`
  /// counts the subset of misses caused by an unreadable or mismatched
  /// entry, as opposed to an absent file.
  [[nodiscard]] long long hits() const { return hits_->value(); }
  [[nodiscard]] long long misses() const { return misses_->value(); }
  [[nodiscard]] long long corrupt() const { return corrupt_->value(); }
  [[nodiscard]] long long stores() const { return stores_->value(); }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const {
    return metrics_;
  }

 private:
  std::string dir_;
  /// Instance registry (the canonical counts live here; the destructor
  /// folds them into the installed global registry). load()/store() are
  /// const, so they increment through these pointers, resolved once at
  /// construction — registry references are stable.
  obs::MetricsRegistry metrics_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* corrupt_;
  obs::Counter* stores_;
};

}  // namespace mars::serve
