// Online multi-tenant dispatcher: the serving counterpart of sim::Executor.
//
// The offline Executor replays one closed task graph from t=0; serving
// instead sees an unbounded request stream. OnlineScheduler runs its own
// deterministic event loop over the shared topology: request arrivals
// feed per-model Batchers, every admitted request stamps an instance of
// its model's flat prototype graph (ModelService::flat_proto) into a
// recycled arena block — a header plus per-task missing-dependency
// counters, no heap clone — and compute/transfer tasks then contend for
// accelerators and directed channels under exactly the Executor's FIFO
// semantics: one compute per accelerator, one flow per channel, ties by
// event insertion order. This is where co-resident models interfere:
// their tasks queue on the same acc_free / channel_free timelines.
// Steady-state dispatch allocates nothing (pinned by
// tests/serve/test_zero_alloc.cpp); fleet-scale throughput numbers live
// in docs/PERFORMANCE.md.
//
// Admission control runs before batching: every arrival is offered to the
// configured AdmissionPolicy, and a request the saturated fleet is
// predicted to fail (slo:MS, using backlog read off the shared accelerator
// timelines plus the model's uncontended latency) or that finds the
// model's queue full (shed:N) is rejected instead of admitted — it
// executes nothing and is recorded in ServeResult::rejected.
//
// Two drive modes: open loop (a precomputed arrival vector — Poisson or
// trace replay from workload.h) and closed loop (clients re-issue `think`
// after each completion; a rejected client retries on the same cadence).
// Runs are bit-deterministic within a build for a fixed (arrivals,
// policy, topology).
#pragma once

#include <vector>

#include "mars/serve/batcher.h"
#include "mars/serve/service.h"
#include "mars/sim/network.h"

namespace mars::serve {

struct SchedulerOptions {
  BatchPolicy policy = BatchPolicy::none();
  /// Admission control applied at every arrival, before batching. Shed
  /// requests complete nowhere: they land in ServeResult::rejected.
  AdmissionPolicy admission = AdmissionPolicy::none();
  sim::SimParams sim{};
  /// Prepended to every simulated-domain track (and derived counter) label
  /// this scheduler emits. The sharded fleet runs one engine per replica
  /// group with prefixes "s0 ", "s1 ", ... so per-shard tracks stay
  /// distinct in a single trace. Empty (the default) reproduces the
  /// historical labels byte for byte.
  std::string trace_label_prefix;
  /// Suppress trace/metric emission for this run even when a recorder or
  /// registry is installed. Search-time rollouts (comap's ServingObjective)
  /// replay thousands of candidate fleets per search; emitting those into
  /// the user's trace would drown the actual serving run.
  bool quiet = false;
};

/// The minimal per-model view the event loop dispatches against. A
/// ModelService provides one (see OnlineScheduler's service constructor);
/// comap's rollout fitness builds them directly from candidate mappings
/// without planning a full service.
struct ServedModel {
  std::string name;
  /// Flat single-inference prototype; must outlive the scheduler.
  const sim::FlatTaskGraph* flat = nullptr;
  /// Uncontended single-inference latency (the slo: admission estimate).
  Seconds single_latency{};
};

struct CompletedRequest {
  Request request;
  Seconds dispatch{};    // when its batch entered the system
  Seconds completion{};  // when its last task finished
  int batch_size = 1;

  [[nodiscard]] Seconds latency() const { return completion - request.arrival; }
  [[nodiscard]] Seconds queueing() const { return dispatch - request.arrival; }
};

struct ServeResult {
  std::vector<CompletedRequest> completed;  // in completion order
  /// Requests shed by admission control, in rejection order. A rejected
  /// closed-loop client re-issues `think` later, like after a completion.
  std::vector<Request> rejected;
  /// Time the last task finished (the simulated busy horizon).
  Seconds horizon{};
  /// Compute-busy seconds per accelerator (utilization numerator).
  std::vector<Seconds> acc_busy;
  long long tasks_executed = 0;
  int batches_dispatched = 0;

  /// Arrivals seen by admission control (completed + rejected).
  [[nodiscard]] int offered() const {
    return static_cast<int>(completed.size() + rejected.size());
  }
};

class OnlineScheduler {
 public:
  /// `services` must share `topo` and outlive the scheduler.
  OnlineScheduler(const topology::Topology& topo,
                  std::vector<const ModelService*> services,
                  SchedulerOptions options = {});

  /// Dispatches against bare model views (name + flat prototype +
  /// uncontended latency) instead of full ModelServices. The views' flat
  /// graphs must target `topo` and outlive the scheduler. This is the
  /// comap rollout entry point: candidate mappings become views without
  /// the planner/cache machinery a ModelService carries.
  OnlineScheduler(const topology::Topology& topo,
                  std::vector<ServedModel> models,
                  SchedulerOptions options = {});

  /// Open-loop run over a pre-materialised arrival stream.
  [[nodiscard]] ServeResult run(const std::vector<Request>& arrivals) const;

  /// Closed-loop run: each client issues its next request `spec.think`
  /// after the previous completes; no new requests start after `duration`.
  [[nodiscard]] ServeResult run_closed_loop(const ClosedLoopSpec& spec,
                                            Seconds duration) const;

  [[nodiscard]] int num_models() const {
    return static_cast<int>(models_.size());
  }

 private:
  const topology::Topology* topo_;
  std::vector<ServedModel> models_;
  SchedulerOptions options_;
};

}  // namespace mars::serve
