// Admission and dynamic batching for the serving simulator.
//
// One Batcher per served model groups arriving requests into batches the
// dispatcher instantiates together. Three policies, mirroring the knobs
// real serving stacks expose:
//   none         every request dispatches immediately (batch of 1);
//   size:N       a batch closes when N requests have queued;
//   timeout:T:N  a batch closes at N requests or once its oldest request
//                has waited T, whichever comes first.
// Batch formation is a pure function of the arrival sequence, so runs
// stay deterministic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mars/serve/workload.h"

namespace mars::serve {

struct BatchPolicy {
  enum class Kind : std::uint8_t { kNone, kSize, kTimeout };

  Kind kind = Kind::kNone;
  /// Batch-closing size (kSize) or size cap (kTimeout).
  int max_batch = 1;
  /// Longest time the oldest request may wait before the open batch is
  /// dispatched anyway (kTimeout only).
  Seconds timeout{};

  [[nodiscard]] static BatchPolicy none();
  [[nodiscard]] static BatchPolicy size(int n);
  [[nodiscard]] static BatchPolicy with_timeout(int max_batch, Seconds timeout);

  /// Parses "none", "size:N", or "timeout:MS[:N]" (N defaults to 8).
  /// Throws InvalidArgument on anything else.
  [[nodiscard]] static BatchPolicy parse(const std::string& spec);

  [[nodiscard]] std::string to_string() const;
};

class Batcher {
 public:
  explicit Batcher(BatchPolicy policy);

  /// Admits a request at its arrival time. Arrivals must be pushed in
  /// non-decreasing arrival order.
  void push(const Request& request);

  /// Batches whose trigger (size or deadline) fired by `now`, in formation
  /// order. Calling twice with the same `now` returns nothing new.
  [[nodiscard]] std::vector<std::vector<Request>> pop_ready(Seconds now);

  /// Deadline of the open batch (timeout policy with pending requests).
  [[nodiscard]] std::optional<Seconds> next_deadline() const;

  /// Closes the open batch regardless of triggers (end of stream / drain).
  [[nodiscard]] std::vector<std::vector<Request>> flush();

  /// Requests admitted but not yet returned by pop_ready/flush.
  [[nodiscard]] int pending() const;

  [[nodiscard]] const BatchPolicy& policy() const { return policy_; }

 private:
  void close_open();

  BatchPolicy policy_;
  std::vector<Request> open_;
  Seconds open_deadline_{};
  std::vector<std::vector<Request>> ready_;
};

}  // namespace mars::serve
