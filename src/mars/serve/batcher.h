// Admission and dynamic batching for the serving simulator.
//
// One Batcher per served model groups arriving requests into batches the
// dispatcher instantiates together. Three batching policies, mirroring
// the knobs real serving stacks expose:
//   none         every request dispatches immediately (batch of 1);
//   size:N       a batch closes when N requests have queued;
//   timeout:T:N  a batch closes at N requests or once its oldest request
//                has waited T, whichever comes first.
// Batch formation is a pure function of the arrival sequence, so runs
// stay deterministic.
//
// In front of batching sits admission control (AdmissionPolicy): the
// scheduler consults it at every arrival and sheds requests a saturated
// fleet cannot serve in time, instead of letting the queue grow without
// bound. Two policies beyond `none`:
//   slo:MS       reject when the predicted end-to-end latency (backlog on
//                the model's accelerators, read off the shared timelines,
//                plus its uncontended single-inference latency) exceeds MS;
//   shed:N       reject while the model already has N requests in the
//                system (queued or in flight).
// Parsing lives here next to BatchPolicy; enforcement is the scheduler's
// (it owns the timelines the estimate reads). PolicySpec combines the two
// families for single-flag CLI specs like "size:4+slo:60".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mars/serve/workload.h"

namespace mars::serve {

struct BatchPolicy {
  enum class Kind : std::uint8_t { kNone, kSize, kTimeout };

  Kind kind = Kind::kNone;
  /// Batch-closing size (kSize) or size cap (kTimeout).
  int max_batch = 1;
  /// Longest time the oldest request may wait before the open batch is
  /// dispatched anyway (kTimeout only).
  Seconds timeout{};

  [[nodiscard]] static BatchPolicy none();
  [[nodiscard]] static BatchPolicy size(int n);
  [[nodiscard]] static BatchPolicy with_timeout(int max_batch, Seconds timeout);

  /// Parses "none", "size:N", or "timeout:MS[:N]" (N defaults to 8).
  /// Throws InvalidArgument on anything else.
  [[nodiscard]] static BatchPolicy parse(const std::string& spec);

  [[nodiscard]] std::string to_string() const;
};

struct AdmissionPolicy {
  enum class Kind : std::uint8_t { kNone, kSlo, kShed };

  Kind kind = Kind::kNone;
  /// End-to-end latency budget a request must be predicted to meet (kSlo).
  Seconds slo{};
  /// Cap on a model's requests in the system — batcher queue plus in
  /// flight (kShed).
  int max_depth = 0;
  /// Per-model overrides of `slo`, indexed by the scheduler's model index
  /// (from `--model name:weight:sloMS`). Shorter than the fleet or zero
  /// entries fall back to the shared `slo`. Only meaningful under kSlo.
  std::vector<Seconds> per_model_slo;

  /// The admission budget model `m` is held to: its per-model override
  /// when set, else the shared `slo`.
  [[nodiscard]] Seconds slo_for(int m) const {
    const auto i = static_cast<std::size_t>(m);
    if (i < per_model_slo.size() && per_model_slo[i].count() > 0.0) {
      return per_model_slo[i];
    }
    return slo;
  }

  [[nodiscard]] static AdmissionPolicy none();
  [[nodiscard]] static AdmissionPolicy slo_aware(Seconds slo);
  [[nodiscard]] static AdmissionPolicy shed(int max_depth);

  /// Parses "none", "slo:MS", or "shed:N". Throws InvalidArgument on
  /// anything else.
  [[nodiscard]] static AdmissionPolicy parse(const std::string& spec);

  [[nodiscard]] std::string to_string() const;
};

/// One batching policy plus one admission policy, as a single CLI spec:
/// '+'-separated parts, each either a batching or an admission spec, at
/// most one of each family ("size:4+slo:60", "shed:32", "none").
struct PolicySpec {
  BatchPolicy batch;
  AdmissionPolicy admission;

  /// Throws InvalidArgument on an unparsable part or a duplicated family.
  /// A bare "none" leaves both families at their defaults.
  [[nodiscard]] static PolicySpec parse(const std::string& spec);

  [[nodiscard]] std::string to_string() const;
};

class Batcher {
 public:
  explicit Batcher(BatchPolicy policy);

  /// Admits a request at its arrival time. Arrivals must be pushed in
  /// non-decreasing arrival order.
  void push(const Request& request);

  /// Batches whose trigger (size or deadline) fired by `now`, in formation
  /// order. Calling twice with the same `now` returns nothing new.
  [[nodiscard]] std::vector<std::vector<Request>> pop_ready(Seconds now);

  /// Deadline of the open batch (timeout policy with pending requests).
  [[nodiscard]] std::optional<Seconds> next_deadline() const;

  /// Closes the open batch regardless of triggers (end of stream / drain).
  [[nodiscard]] std::vector<std::vector<Request>> flush();

  /// Requests admitted but not yet returned by pop_ready/flush.
  [[nodiscard]] int pending() const;

  [[nodiscard]] const BatchPolicy& policy() const { return policy_; }

 private:
  void close_open();

  BatchPolicy policy_;
  std::vector<Request> open_;
  Seconds open_deadline_{};
  std::vector<std::vector<Request>> ready_;
};

}  // namespace mars::serve
