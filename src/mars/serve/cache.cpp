#include "mars/serve/cache.h"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "mars/core/serialize.h"
#include "mars/util/error.h"
#include "mars/util/logging.h"

namespace mars::serve {
namespace {

constexpr long long kCacheFormat = 1;

/// 64-bit FNV-1a. The canonical text below feeds through this; the exact
/// constant choice only has to be stable within the cache directory.
class Fnv1a {
 public:
  void mix(const std::string& text) {
    for (const char c : text) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001b3ULL;
    }
    // Separate fields so ("ab", "c") and ("a", "bc") differ.
    hash_ ^= 0x1f;
    hash_ *= 0x100000001b3ULL;
  }

  void mix(long long value) { mix(std::to_string(value)); }
  void mix(bool value) { mix(std::string(value ? "t" : "f")); }

  void mix(double value) {
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    mix(std::string(buffer));
  }

  [[nodiscard]] std::string hex() const {
    char buffer[24];
    std::snprintf(buffer, sizeof buffer, "%016" PRIx64, hash_);
    return buffer;
  }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace

MappingCache::MappingCache(std::string dir)
    : dir_(std::move(dir)),
      hits_(&metrics_.counter("serve.cache.hits")),
      misses_(&metrics_.counter("serve.cache.misses")),
      corrupt_(&metrics_.counter("serve.cache.corrupt")),
      stores_(&metrics_.counter("serve.cache.stores")) {
  MARS_CHECK_ARG(!dir_.empty(), "mapping cache needs a directory path");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  MARS_CHECK_ARG(!ec, "cannot create mapping cache directory '"
                          << dir_ << "': " << ec.message());
  MARS_CHECK_ARG(std::filesystem::is_directory(dir_, ec),
                 "mapping cache path '" << dir_ << "' is not a directory");
}

MappingCache::~MappingCache() {
  if (obs::MetricsRegistry* global = obs::metrics()) {
    metrics_.flush_to(*global);
  }
}

std::string MappingCache::fingerprint(const topology::Topology& topo,
                                      const accel::DesignRegistry& designs,
                                      bool adaptive,
                                      const std::string& search_spec) {
  Fnv1a fnv;
  fnv.mix(topo.name());
  fnv.mix(static_cast<long long>(topo.size()));
  for (topology::AccId a = 0; a < topo.size(); ++a) {
    const topology::Accelerator& acc = topo.accelerator(a);
    fnv.mix(acc.name);
    fnv.mix(acc.dram.count());
    fnv.mix(acc.host_bw.bits_per_second());
    fnv.mix(static_cast<long long>(acc.fixed_design));
    for (topology::AccId b = a + 1; b < topo.size(); ++b) {
      fnv.mix(topo.link(a, b).bits_per_second());
    }
  }
  fnv.mix(static_cast<long long>(designs.size()));
  for (accel::DesignId id : designs.ids()) {
    const accel::AcceleratorDesign& design = designs.design(id);
    fnv.mix(design.name());
    fnv.mix(design.frequency().hertz());
    fnv.mix(design.peak_macs_per_cycle());
    fnv.mix(static_cast<long long>(design.pe_count()));
    fnv.mix(design.parameter_string());
    fnv.mix(design.dram_bytes_per_cycle());
    fnv.mix(design.area_cost());
    fnv.mix(design.energy_per_mac().count());
  }
  fnv.mix(adaptive);
  fnv.mix(search_spec);
  return fnv.hex();
}

std::string MappingCache::path_for(const Key& key) const {
  return (std::filesystem::path(dir_) /
          (key.model + "-" + key.fingerprint + ".json"))
      .string();
}

std::optional<core::Mapping> MappingCache::load(
    const Key& key, const graph::ConvSpine& spine,
    const topology::Topology& topo, const accel::DesignRegistry& designs,
    bool adaptive) const {
  const std::string path = path_for(key);
  std::ifstream file(path);
  if (!file) {
    misses_->add();  // plain miss: no entry for this key
    return std::nullopt;
  }
  std::ostringstream content;
  content << file.rdbuf();
  try {
    const JsonValue entry = JsonValue::parse(content.str());
    if (entry.get("format").as_integer() != kCacheFormat ||
        entry.get("model").as_string() != key.model ||
        entry.get("fingerprint").as_string() != key.fingerprint) {
      MARS_WARN << "mapping cache entry " << path
                << " does not match its key; ignoring";
      misses_->add();
      corrupt_->add();
      return std::nullopt;
    }
    core::Mapping mapping = core::mapping_from_json(entry.get("mapping"),
                                                    spine, topo, designs,
                                                    adaptive);
    hits_->add();
    return mapping;
  } catch (const std::exception& e) {
    MARS_WARN << "mapping cache entry " << path
              << " is unreadable (treated as a miss): " << e.what();
    misses_->add();
    corrupt_->add();
    return std::nullopt;
  }
}

void MappingCache::store(const Key& key, const core::Mapping& mapping,
                         const graph::ConvSpine& spine,
                         const accel::DesignRegistry& designs,
                         bool adaptive) const {
  JsonValue entry = JsonValue::object();
  entry.set("format", JsonValue::integer(kCacheFormat));
  entry.set("model", JsonValue::string(key.model));
  entry.set("fingerprint", JsonValue::string(key.fingerprint));
  entry.set("mapping", core::to_json(mapping, spine, designs, adaptive));

  // Write-then-rename so a concurrent reader never sees a torn file; the
  // tmp name carries the pid so concurrent cold-starting processes never
  // interleave writes into the same tmp file (last rename wins whole).
  const std::string path = path_for(key);
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  {
    std::ofstream file(tmp);
    MARS_CHECK(file.good(), "cannot write mapping cache file " << tmp);
    file << entry.dump() << '\n';
    MARS_CHECK(file.good(), "short write to mapping cache file " << tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  MARS_CHECK(!ec, "cannot move mapping cache file into place at " << path
                      << ": " << ec.message());
  stores_->add();
}

}  // namespace mars::serve
