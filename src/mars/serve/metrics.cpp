#include "mars/serve/metrics.h"

#include <algorithm>
#include <cmath>

#include "mars/util/error.h"

namespace mars::serve {
namespace {

/// Nearest-rank percentile of an ascending-sorted sample vector. The
/// epsilon absorbs binary-representation error in q * n: 0.95 * 20 is
/// 19.000000000000004 in a double, and a bare ceil would round that up
/// to rank 20 — off by one whenever q * n lands on an integer.
Seconds percentile(const std::vector<Seconds>& sorted, double q) {
  const auto n = static_cast<double>(sorted.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q * n - 1e-9));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

LatencyStats LatencyStats::from_samples(std::vector<Seconds> samples) {
  LatencyStats stats;
  stats.count = static_cast<int>(samples.size());
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  Seconds total{};
  for (Seconds s : samples) total += s;
  stats.mean = total / static_cast<double>(samples.size());
  stats.p50 = percentile(samples, 0.50);
  stats.p95 = percentile(samples, 0.95);
  stats.p99 = percentile(samples, 0.99);
  stats.max = samples.back();
  return stats;
}

ServeMetrics summarize(const ServeResult& result,
                       const std::vector<std::string>& model_names,
                       Seconds slo) {
  return summarize(result, model_names, slo, {});
}

ServeMetrics summarize(const ServeResult& result,
                       const std::vector<std::string>& model_names,
                       Seconds slo, const std::vector<Seconds>& model_slos) {
  MARS_CHECK_ARG(model_slos.empty() || model_slos.size() == model_names.size(),
                 "one SLO per model required");
  ServeMetrics metrics;
  metrics.requests = static_cast<int>(result.completed.size());
  metrics.offered = result.offered();
  metrics.rejected = static_cast<int>(result.rejected.size());
  if (metrics.offered > 0) {
    metrics.shed_rate =
        static_cast<double>(metrics.rejected) / metrics.offered;
  }
  metrics.batches = result.batches_dispatched;
  metrics.horizon = result.horizon;
  metrics.slo = slo;
  const double horizon = result.horizon.count();
  // Effective objective per model: the override when set, else the shared
  // SLO; <= 0 means that model has no objective (its completions all count).
  const auto slo_of = [&](std::size_t m) -> Seconds {
    if (m < model_slos.size() && model_slos[m].count() > 0.0) {
      return model_slos[m];
    }
    return slo;
  };

  std::vector<Seconds> all;
  all.reserve(result.completed.size());
  std::vector<std::vector<Seconds>> by_model(model_names.size());
  std::vector<int> good_by_model(model_names.size(), 0);
  // Each request contributes 1/batch_size, so the sum counts batches and
  // requests/sum is the batch-weighted (conventional) mean batch size.
  std::vector<double> batches_by_model(model_names.size(), 0.0);
  int good = 0;
  double batch_count = 0.0;
  for (const CompletedRequest& done : result.completed) {
    const auto m = static_cast<std::size_t>(done.request.model);
    MARS_CHECK(m < model_names.size(),
               "completed request references model index " << done.request.model
                                                           << " outside the fleet");
    const Seconds latency = done.latency();
    all.push_back(latency);
    by_model[m].push_back(latency);
    batches_by_model[m] += 1.0 / done.batch_size;
    batch_count += 1.0 / done.batch_size;
    const Seconds objective = slo_of(m);
    if (objective.count() <= 0.0 || latency <= objective) {
      ++good;
      ++good_by_model[m];
    }
  }

  metrics.latency = LatencyStats::from_samples(all);
  if (metrics.requests > 0) {
    metrics.slo_attainment = static_cast<double>(good) / metrics.requests;
    metrics.mean_batch = metrics.requests / batch_count;
  } else if (metrics.rejected > 0) {
    // Every offered request was shed: nothing met the SLO. The default
    // 1.0 (vacuous truth) only applies when nothing was offered at all.
    metrics.slo_attainment = 0.0;
  }
  if (horizon > 0.0) {
    metrics.throughput_rps = metrics.requests / horizon;
    metrics.goodput_rps = good / horizon;
  }

  std::vector<int> rejected_by_model(model_names.size(), 0);
  for (const Request& shed : result.rejected) {
    const auto m = static_cast<std::size_t>(shed.model);
    MARS_CHECK(m < model_names.size(),
               "rejected request references model index "
                   << shed.model << " outside the fleet");
    ++rejected_by_model[m];
  }

  metrics.utilization.reserve(result.acc_busy.size());
  for (Seconds busy : result.acc_busy) {
    metrics.utilization.push_back(horizon > 0.0 ? busy.count() / horizon : 0.0);
  }

  metrics.per_model.reserve(model_names.size());
  for (std::size_t m = 0; m < model_names.size(); ++m) {
    ModelMetrics model;
    model.model = model_names[m];
    model.requests = static_cast<int>(by_model[m].size());
    model.rejected = rejected_by_model[m];
    model.latency = LatencyStats::from_samples(std::move(by_model[m]));
    if (model.requests > 0) {
      model.slo_attainment =
          static_cast<double>(good_by_model[m]) / model.requests;
      model.mean_batch = model.requests / batches_by_model[m];
    } else if (model.rejected > 0) {
      // Same all-shed rule per model: a model whose every request was
      // rejected attained nothing.
      model.slo_attainment = 0.0;
    }
    if (horizon > 0.0) model.goodput_rps = good_by_model[m] / horizon;
    metrics.per_model.push_back(std::move(model));
  }
  return metrics;
}

}  // namespace mars::serve
