// Rendering for serving runs: operator-facing tables and JSON export.
#pragma once

#include <string>
#include <vector>

#include "mars/serve/metrics.h"
#include "mars/serve/service.h"
#include "mars/util/json.h"

namespace mars::serve {

/// Fleet summary + per-model breakdown + per-accelerator utilization,
/// as diffable ASCII tables (same renderer as the bench harnesses).
[[nodiscard]] std::string describe(const ServeMetrics& metrics);

/// One line per planned service (mapping shape + uncontended latency).
[[nodiscard]] std::string describe_fleet(
    const std::vector<std::unique_ptr<ModelService>>& services);

[[nodiscard]] JsonValue to_json(const ServeMetrics& metrics);

}  // namespace mars::serve
