// Per-model serving state: the bridge from offline MARS mappings to the
// online scheduler.
//
// A ModelService owns everything one co-resident model needs — a
// plan::Planner holding the zoo graph, its conv spine and a Problem
// sharing the fleet's topology/design registry, the chosen mapping
// (produced by whichever plan::SearchEngine the fleet was configured
// with, or rehydrated from the mapping cache), and the prototype
// single-inference sim::TaskGraph the dispatcher clones once per admitted
// request. Ownership note: the contained Problem points into the Planner
// state, so a ModelService is pinned in memory (no copy/move); hold it
// behind unique_ptr.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mars/plan/planner.h"
#include "mars/serve/cache.h"
#include "mars/sim/task_graph.h"

namespace mars::serve {

class ModelService {
 public:
  /// Where this service's mapping came from (startup-cost provenance).
  enum class MappingSource : std::uint8_t {
    kBaseline,  // closed-form engine (engine.searches() == false)
    kSearched,  // the engine ran (and populated `cache` when given)
    kCacheHit,  // rehydrated from the mapping cache, search skipped
  };

  /// Plans `model_name` with `engine` under `budget`. When `cache` is
  /// non-null and the engine actually searches, the service first tries
  /// the cache under (model, fingerprint(topo, designs, adaptive,
  /// engine spec + budget)); a hit skips the search entirely, a miss
  /// searches and then stores the result. The cache and engine must
  /// outlive the constructor call only (nothing is retained). A non-zero
  /// `placement` confines the search to that fleet slice (comap output);
  /// it joins the cache identity, so sliced and full-fleet mappings never
  /// alias.
  ModelService(std::string model_name, const topology::Topology& topo,
               const accel::DesignRegistry& designs, bool adaptive,
               const plan::SearchEngine& engine,
               const MappingCache* cache = nullptr,
               const plan::Budget& budget = {},
               topology::AccMask placement = 0);

  ModelService(const ModelService&) = delete;
  ModelService& operator=(const ModelService&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const core::Problem& problem() const {
    return planner_.problem();
  }
  [[nodiscard]] const core::Mapping& mapping() const { return mapping_; }
  /// Single-inference task graph under the chosen mapping (what the
  /// dispatcher replays per request).
  [[nodiscard]] const sim::TaskGraph& proto() const { return proto_; }
  /// The same graph lowered to the flat index form the serving engine
  /// stamps into arena slabs (built once at planning time).
  [[nodiscard]] const sim::FlatTaskGraph& flat_proto() const {
    return flat_proto_;
  }
  /// Uncontended single-inference latency of `proto` on the fleet.
  [[nodiscard]] Seconds single_latency() const { return single_latency_; }
  [[nodiscard]] MappingSource mapping_source() const { return source_; }
  /// Search provenance: the planning engine's identity and effort. For
  /// cache hits, records the (zero-cost) load, with the engine identity
  /// the entry was searched under.
  [[nodiscard]] const plan::Provenance& provenance() const {
    return provenance_;
  }

 private:
  std::string name_;
  plan::Planner planner_;
  core::Mapping mapping_;
  plan::Provenance provenance_;
  MappingSource source_ = MappingSource::kBaseline;
  sim::TaskGraph proto_;
  sim::FlatTaskGraph flat_proto_;
  Seconds single_latency_{};
};

[[nodiscard]] std::string to_string(ModelService::MappingSource source);

/// Canonical cache-identity string for a (engine, budget) pair: the
/// engine's spec_string(), suffixed with the budget when one is set so a
/// budget-truncated search never aliases an unbudgeted one. A non-zero
/// `placement` appends a ";placement=<hex>" suffix (full-fleet searches
/// keep their historical identity).
[[nodiscard]] std::string search_spec(const plan::SearchEngine& engine,
                                      const plan::Budget& budget,
                                      topology::AccMask placement = 0);

/// Plans one service per mix entry on the shared topology. The returned
/// services must outlive any scheduler built over them; `engine` and
/// `cache` (optional) only have to outlive this call. `placements`, when
/// non-empty, gives one placement mask per model (0 entries = full fleet).
[[nodiscard]] std::vector<std::unique_ptr<ModelService>> plan_services(
    const std::vector<std::string>& model_names,
    const topology::Topology& topo, const accel::DesignRegistry& designs,
    bool adaptive, const plan::SearchEngine& engine,
    const MappingCache* cache = nullptr, const plan::Budget& budget = {},
    const std::vector<topology::AccMask>& placements = {});

}  // namespace mars::serve
