// Per-model serving state: the bridge from offline MARS mappings to the
// online scheduler.
//
// A ModelService owns everything one co-resident model needs — the zoo
// graph, its conv spine, a Problem sharing the fleet's topology/design
// registry, the chosen mapping (MARS search or the Herald-extended
// baseline), and the prototype single-inference sim::TaskGraph the
// dispatcher clones once per admitted request. Ownership note: Problem
// holds non-owning pointers into this object, so a ModelService is
// pinned in memory (no copy/move); hold it behind unique_ptr.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mars/core/mars.h"
#include "mars/serve/cache.h"

namespace mars::serve {

class ModelService {
 public:
  enum class Mapper : std::uint8_t {
    kBaseline,  // Herald-extended baseline (fast, no search)
    kMars,      // two-level GA search under `config`
  };

  /// Where this service's mapping came from (startup-cost provenance).
  enum class MappingSource : std::uint8_t {
    kBaseline,  // baseline mapper, no search
    kSearched,  // GA search ran (and populated `cache` when given)
    kCacheHit,  // rehydrated from the mapping cache, search skipped
  };

  /// When `cache` is non-null and `mapper` is kMars, the service first
  /// tries the cache under (model, fingerprint(topo, designs, adaptive,
  /// mapper, config)); a hit skips the GA search entirely, a miss
  /// searches and then stores the result. The cache must outlive the
  /// constructor call only (nothing is retained).
  ModelService(std::string model_name, const topology::Topology& topo,
               const accel::DesignRegistry& designs, bool adaptive,
               Mapper mapper, const core::MarsConfig& config,
               const MappingCache* cache = nullptr);

  ModelService(const ModelService&) = delete;
  ModelService& operator=(const ModelService&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const core::Problem& problem() const { return problem_; }
  [[nodiscard]] const core::Mapping& mapping() const { return mapping_; }
  /// Single-inference task graph under the chosen mapping (what the
  /// dispatcher replays per request).
  [[nodiscard]] const sim::TaskGraph& proto() const { return proto_; }
  /// Uncontended single-inference latency of `proto` on the fleet.
  [[nodiscard]] Seconds single_latency() const { return single_latency_; }
  [[nodiscard]] MappingSource mapping_source() const { return source_; }

 private:
  std::string name_;
  graph::Graph model_;
  graph::ConvSpine spine_;
  core::Problem problem_;
  core::Mapping mapping_;
  MappingSource source_ = MappingSource::kBaseline;
  sim::TaskGraph proto_;
  Seconds single_latency_{};
};

[[nodiscard]] std::string to_string(ModelService::MappingSource source);

/// Plans one service per mix entry on the shared topology. The returned
/// services must outlive any scheduler built over them; `cache` (optional)
/// only has to outlive this call.
[[nodiscard]] std::vector<std::unique_ptr<ModelService>> plan_services(
    const std::vector<std::string>& model_names,
    const topology::Topology& topo, const accel::DesignRegistry& designs,
    bool adaptive, ModelService::Mapper mapper, const core::MarsConfig& config,
    const MappingCache* cache = nullptr);

}  // namespace mars::serve
