#include "mars/serve/report.h"

#include <sstream>

#include "mars/util/strings.h"
#include "mars/util/table.h"

namespace mars::serve {
namespace {

std::string ms(Seconds s) { return format_double(s.millis(), 2); }

std::string percent(double fraction) {
  return format_double(fraction * 100.0, 1) + "%";
}

JsonValue latency_json(const LatencyStats& stats) {
  JsonValue out = JsonValue::object();
  out.set("count", JsonValue::integer(stats.count));
  out.set("mean_ms", JsonValue::number(stats.mean.millis()));
  out.set("p50_ms", JsonValue::number(stats.p50.millis()));
  out.set("p95_ms", JsonValue::number(stats.p95.millis()));
  out.set("p99_ms", JsonValue::number(stats.p99.millis()));
  out.set("max_ms", JsonValue::number(stats.max.millis()));
  return out;
}

}  // namespace

std::string describe(const ServeMetrics& metrics) {
  std::ostringstream os;

  Table fleet({"Offered", "Served", "Shed", "Shed rate", "Batches",
               "Mean batch", "Horizon /s", "Throughput /rps", "Goodput /rps",
               "SLO attainment"});
  fleet.add_row({std::to_string(metrics.offered),
                 std::to_string(metrics.requests),
                 std::to_string(metrics.rejected),
                 percent(metrics.shed_rate),
                 std::to_string(metrics.batches),
                 format_double(metrics.mean_batch, 2),
                 format_double(metrics.horizon.count(), 3),
                 format_double(metrics.throughput_rps, 1),
                 format_double(metrics.goodput_rps, 1),
                 percent(metrics.slo_attainment)});
  os << fleet;
  if (metrics.slo.count() > 0.0) {
    os << "(SLO: " << ms(metrics.slo) << " ms end-to-end)\n";
  } else {
    os << "(no SLO set: goodput == throughput)\n";
  }

  Table models({"Model", "Requests", "Shed", "p50 /ms", "p95 /ms", "p99 /ms",
                "Max /ms", "Goodput /rps", "SLO attainment"});
  models.add_row({"(all)", std::to_string(metrics.latency.count),
                  std::to_string(metrics.rejected), ms(metrics.latency.p50),
                  ms(metrics.latency.p95), ms(metrics.latency.p99),
                  ms(metrics.latency.max),
                  format_double(metrics.goodput_rps, 1),
                  percent(metrics.slo_attainment)});
  models.add_separator();
  for (const ModelMetrics& model : metrics.per_model) {
    models.add_row({model.model, std::to_string(model.requests),
                    std::to_string(model.rejected), ms(model.latency.p50),
                    ms(model.latency.p95), ms(model.latency.p99),
                    ms(model.latency.max),
                    format_double(model.goodput_rps, 1),
                    percent(model.slo_attainment)});
  }
  os << '\n' << models;

  std::vector<std::string> header;
  std::vector<std::string> row;
  for (std::size_t i = 0; i < metrics.utilization.size(); ++i) {
    header.push_back("Acc" + std::to_string(i));
    row.push_back(percent(metrics.utilization[i]));
  }
  if (!header.empty()) {
    Table utilization(std::move(header));
    utilization.add_row(std::move(row));
    os << "\nPer-accelerator utilization (compute-busy / horizon):\n"
       << utilization;
  }
  return os.str();
}

std::string describe_fleet(
    const std::vector<std::unique_ptr<ModelService>>& services) {
  Table table({"Model", "Spine layers", "Sets", "Single-inference /ms"});
  for (const std::unique_ptr<ModelService>& service : services) {
    table.add_row({service->name(),
                   std::to_string(service->problem().spine->size()),
                   std::to_string(service->mapping().sets.size()),
                   ms(service->single_latency())});
  }
  return table.render();
}

JsonValue to_json(const ServeMetrics& metrics) {
  JsonValue out = JsonValue::object();
  out.set("requests", JsonValue::integer(metrics.requests));
  out.set("offered", JsonValue::integer(metrics.offered));
  out.set("rejected", JsonValue::integer(metrics.rejected));
  out.set("shed_rate", JsonValue::number(metrics.shed_rate));
  out.set("batches", JsonValue::integer(metrics.batches));
  out.set("mean_batch", JsonValue::number(metrics.mean_batch));
  out.set("horizon_s", JsonValue::number(metrics.horizon.count()));
  out.set("slo_ms", JsonValue::number(metrics.slo.millis()));
  out.set("throughput_rps", JsonValue::number(metrics.throughput_rps));
  out.set("goodput_rps", JsonValue::number(metrics.goodput_rps));
  out.set("slo_attainment", JsonValue::number(metrics.slo_attainment));
  out.set("latency", latency_json(metrics.latency));

  JsonValue utilization = JsonValue::array();
  for (double u : metrics.utilization) utilization.push(JsonValue::number(u));
  out.set("utilization", std::move(utilization));

  JsonValue models = JsonValue::array();
  for (const ModelMetrics& model : metrics.per_model) {
    JsonValue entry = JsonValue::object();
    entry.set("model", JsonValue::string(model.model));
    entry.set("requests", JsonValue::integer(model.requests));
    entry.set("rejected", JsonValue::integer(model.rejected));
    entry.set("latency", latency_json(model.latency));
    entry.set("slo_attainment", JsonValue::number(model.slo_attainment));
    entry.set("goodput_rps", JsonValue::number(model.goodput_rps));
    entry.set("mean_batch", JsonValue::number(model.mean_batch));
    models.push(std::move(entry));
  }
  out.set("per_model", std::move(models));
  return out;
}

}  // namespace mars::serve
