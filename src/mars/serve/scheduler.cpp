#include "mars/serve/scheduler.h"

#include <algorithm>
#include <cstring>
#include <new>
#include <optional>
#include <string>
#include <type_traits>

#include "mars/obs/metrics.h"
#include "mars/obs/trace.h"
#include "mars/sim/event_queue.h"
#include "mars/util/arena.h"
#include "mars/util/error.h"

namespace mars::serve {
namespace {

using sim::TaskKind;

/// Arena-backed state of one admitted request: a fixed header plus the
/// per-task missing-dependency counters, in a single block sized by the
/// model's task count. Blocks are recycled through a per-model intrusive
/// free list the moment the request completes — by then every event that
/// referenced the instance has been consumed (a task event exists only
/// while its task is unfinished), so reuse is safe and deterministic.
struct Instance {
  Request request;
  Seconds dispatch{};
  int batch_size = 1;
  int tasks_remaining = 0;
  Instance* next_free = nullptr;

  /// The trailing missing-dependency array (one int per prototype task).
  [[nodiscard]] int* missing() { return reinterpret_cast<int*>(this + 1); }
};

// The trailing int array is placed directly after the header; recycling
// skips destructors entirely, so the header must not acquire any.
static_assert(std::is_trivially_destructible_v<Instance>);
static_assert(alignof(Instance) % alignof(int) == 0);

struct Event {
  enum class Kind : std::uint8_t {
    kArrival,       // `request` enters its model's batcher
    kDeadline,      // re-check model `index`'s batch timeout
    kTryStart,      // task `index` of `instance`, leg `leg`, wants resources
    kLegDone,       // transfer task `index` of `instance` finished leg `leg`
    kTaskDone,      // compute task `index` of `instance` finished
  };
  Kind kind;
  int index = -1;  // prototype task index or model id, depending on kind
  int leg = 0;
  Instance* instance = nullptr;  // task events only
  Request request;               // kArrival only
};

/// The mutable event-loop state for one run. Mirrors Executor::run, with
/// two extensions: tasks are injected while the clock advances, and
/// completions can feed back into the workload (closed loop).
class Engine {
 public:
  Engine(const topology::Topology& topo,
         const std::vector<ServedModel>& models,
         const SchedulerOptions& options)
      : topo_(&topo),
        models_(&models),
        network_(topo, options.sim),
        route_cache_(static_cast<std::size_t>((topo.size() + 1) *
                                              (topo.size() + 1))) {
    // The `none` policy dispatches every arrival immediately as a batch of
    // one; bypassing the Batcher on that path keeps steady-state dispatch
    // allocation-free (the batcher returns freshly built vectors).
    immediate_dispatch_ = options.policy.kind == BatchPolicy::Kind::kNone;
    if (!immediate_dispatch_) {
      batchers_.reserve(models.size());
      for (std::size_t m = 0; m < models.size(); ++m) {
        batchers_.emplace_back(options.policy);
      }
      armed_deadline_.assign(models.size(), std::nullopt);
    }
    result_.acc_busy.assign(static_cast<std::size_t>(topo.size()),
                            Seconds(0.0));

    admission_ = options.admission;
    in_system_.assign(models.size(), 0);
    queued_work_.assign(static_cast<std::size_t>(topo.size()), Seconds(0.0));
    flats_.reserve(models.size());
    free_list_.assign(models.size(), nullptr);
    // Which accelerators each model's prototype computes on — the
    // timelines its requests queue behind, hence the ones the slo:
    // admission estimate reads.
    service_accs_.resize(models.size());
    for (std::size_t m = 0; m < models.size(); ++m) {
      const sim::FlatTaskGraph& flat = *models[m].flat;
      flats_.push_back(&flat);
      std::vector<bool> used(static_cast<std::size_t>(topo.size()), false);
      for (int t = 0; t < flat.size; ++t) {
        if (flat.kinds[static_cast<std::size_t>(t)] == TaskKind::kCompute) {
          used[static_cast<std::size_t>(
              flat.accs[static_cast<std::size_t>(t)])] = true;
        }
      }
      for (int a = 0; a < topo.size(); ++a) {
        if (used[static_cast<std::size_t>(a)]) service_accs_[m].push_back(a);
      }
    }

    // Observability: resolve the recorder and registry once per run. Every
    // event below is emitted from this serial event loop with simulated
    // timestamps, so the simulated-domain trace is deterministic per seed
    // regardless of --threads (the fleet layer runs shards serially
    // whenever a recorder is installed — see serve/fleet.cpp). Quiet runs
    // (search-time rollouts) skip both hooks entirely.
    rec_ = options.quiet ? nullptr : obs::trace();
    if (rec_ != nullptr) {
      model_tracks_.reserve(models.size());
      in_system_name_.reserve(models.size());
      for (std::size_t m = 0; m < models.size(); ++m) {
        // The index prefix keeps tracks distinct when two services serve
        // the same model name; the options prefix keeps fleet shards
        // distinct.
        const std::string label = options.trace_label_prefix + "model " +
                                  std::to_string(m) + ":" + models[m].name;
        model_tracks_.push_back(rec_->track(obs::Clock::kSim, label));
        in_system_name_.push_back("in_system " + label);
      }
      acc_tracks_.reserve(static_cast<std::size_t>(topo.size()));
      queued_name_.reserve(static_cast<std::size_t>(topo.size()));
      for (int a = 0; a < topo.size(); ++a) {
        const std::string label =
            options.trace_label_prefix + "acc " + std::to_string(a);
        acc_tracks_.push_back(rec_->track(obs::Clock::kSim, label));
        queued_name_.push_back("queued_s " + label);
      }
    }
    if (obs::MetricsRegistry* registry =
            options.quiet ? nullptr : obs::metrics()) {
      shed_total_ = &registry->counter("serve.admission.shed");
      completed_total_ = &registry->counter("serve.requests.completed");
      batches_total_ = &registry->counter("serve.batches.dispatched");
      tasks_total_ = &registry->counter("serve.tasks.executed");
      latency_hist_ = &registry->histogram("serve.latency_seconds");
    }
  }

  /// Pre-sizes the run for a stream of `arrivals` requests: the event
  /// heap (every open-loop arrival is enqueued up front) and the result
  /// vectors. One fixed allocation each, so steady-state dispatch stays
  /// heap-silent. The heap slack covers every task event of up to 16
  /// concurrently live instances per model — an unfinished task holds at
  /// most one outstanding event — which is exact under bounded admission
  /// (shed:N, N <= 16); deeper configurations regrow the heap amortised.
  void reserve(std::size_t arrivals) {
    std::size_t task_slack = 64;
    for (const sim::FlatTaskGraph* flat : flats_) {
      task_slack += 16 * static_cast<std::size_t>(flat->size);
    }
    queue_.reserve(arrivals + task_slack);
    result_.completed.reserve(arrivals);
    result_.rejected.reserve(arrivals);
  }

  void add_arrival(const Request& request) {
    queue_.push(request.arrival,
                Event{Event::Kind::kArrival, -1, 0, nullptr, request});
    next_request_id_ = std::max(next_request_id_, request.id + 1);
  }

  void enable_closed_loop(Seconds think, Seconds duration) {
    closed_loop_ = true;
    think_ = think;
    issue_horizon_ = duration;
  }

  ServeResult run() {
    for (;;) {
      drain_events();
      // The queue only runs dry while requests are parked in a batcher
      // whose trigger can never fire (size-N at end of stream, or a
      // closed loop with fewer outstanding clients than N): drain them.
      bool flushed = false;
      for (std::size_t m = 0; m < batchers_.size(); ++m) {
        for (std::vector<Request>& batch : batchers_[m].flush()) {
          dispatch(std::move(batch), now_);
          flushed = true;
        }
      }
      if (!flushed) break;
    }
    MARS_CHECK(admitted_ == static_cast<long long>(result_.completed.size()),
               "serving deadlock: "
                   << admitted_ -
                          static_cast<long long>(result_.completed.size())
                   << " requests never completed");
    return std::move(result_);
  }

 private:
  void drain_events() {
    while (!queue_.empty()) {
      const Event event = queue_.pop(now_);
      switch (event.kind) {
        case Event::Kind::kArrival:
          handle_arrival(event.request);
          break;
        case Event::Kind::kDeadline:
          drain_batcher(event.index);
          break;
        case Event::Kind::kTryStart:
          try_start(event.instance, event.index, event.leg);
          break;
        case Event::Kind::kLegDone:
          leg_done(event.instance, event.index, event.leg);
          break;
        case Event::Kind::kTaskDone:
          finish_task(event.instance, event.index);
          break;
      }
    }
  }

  void handle_arrival(const Request& request) {
    if (!admit(request)) {
      if (shed_total_ != nullptr) shed_total_->add();
      if (rec_ != nullptr) {
        rec_->instant(obs::Clock::kSim,
                      model_tracks_[static_cast<std::size_t>(request.model)],
                      "shed", request.arrival,
                      {{"request", JsonValue::integer(request.id)}});
      }
      result_.rejected.push_back(request);
      // A shed closed-loop client behaves like one whose request failed
      // fast: it comes back `think` later instead of stalling forever.
      reissue_after_think(request.model, request.client);
      return;
    }
    ++in_system_[static_cast<std::size_t>(request.model)];
    if (rec_ != nullptr) trace_admit(request);
    if (immediate_dispatch_) {
      dispatch_single(request, now_);
      return;
    }
    batchers_[static_cast<std::size_t>(request.model)].push(request);
    drain_batcher(request.model);
  }

  /// Request lifecycle as nestable async spans on the model's track, all
  /// grouped by (cat "req", request id): an outer <model name> span covers
  /// arrival -> completion, with "queue" (arrival -> dispatch) and
  /// "execute" (dispatch -> completion) phases nested inside.
  void trace_admit(const Request& request) {
    const auto m = static_cast<std::size_t>(request.model);
    const int track = model_tracks_[m];
    rec_->async_begin(obs::Clock::kSim, track, "req", request.id,
                      (*models_)[m].name, request.arrival,
                      {{"client", JsonValue::integer(request.client)}});
    rec_->async_begin(obs::Clock::kSim, track, "req", request.id, "queue",
                      request.arrival);
    rec_->counter(obs::Clock::kSim, in_system_name_[m], request.arrival,
                  static_cast<double>(in_system_[m]));
  }

  [[nodiscard]] bool admit(const Request& request) const {
    const auto m = static_cast<std::size_t>(request.model);
    switch (admission_.kind) {
      case AdmissionPolicy::Kind::kNone:
        return true;
      case AdmissionPolicy::Kind::kShed:
        return in_system_[m] < admission_.max_depth;
      case AdmissionPolicy::Kind::kSlo:
        return predicted_latency(request.model) <=
               admission_.slo_for(request.model);
    }
    return true;
  }

  /// Queueing-delay estimate for a request arriving now: the deepest
  /// backlog among the model's accelerators — remaining time of the
  /// running task (acc_free) plus compute already admitted but not yet
  /// started (queued_work) — plus the model's uncontended latency.
  /// Transfer contention and batching delay are not modelled, so the
  /// estimate is optimistic; slo: sheds late rather than early.
  [[nodiscard]] Seconds predicted_latency(int model) const {
    Seconds backlog{};
    for (int acc : service_accs_[static_cast<std::size_t>(model)]) {
      const auto a = static_cast<std::size_t>(acc);
      Seconds wait = queued_work_[a];
      if (acc_free_[a] > now_) wait += acc_free_[a] - now_;
      backlog = std::max(backlog, wait);
    }
    return backlog +
           (*models_)[static_cast<std::size_t>(model)].single_latency;
  }

  void reissue_after_think(int model, int client) {
    if (!closed_loop_ || client < 0) return;
    const Seconds next = now_ + think_;
    if (next > issue_horizon_) return;  // client retires
    Request request;
    request.id = next_request_id_++;
    request.model = model;
    request.arrival = next;
    request.client = client;
    queue_.push(next, Event{Event::Kind::kArrival, -1, 0, nullptr, request});
  }

  void drain_batcher(int model) {
    Batcher& batcher = batchers_[static_cast<std::size_t>(model)];
    for (std::vector<Request>& batch : batcher.pop_ready(now_)) {
      dispatch(std::move(batch), now_);
    }
    // Arm the timeout of the (possibly new) open batch. Later arrivals
    // leave the deadline unchanged, so only arm when it moves; a stale
    // event after a size-triggered close is harmless (pop_ready
    // re-checks against the clock).
    const std::optional<Seconds> deadline = batcher.next_deadline();
    if (deadline &&
        deadline != armed_deadline_[static_cast<std::size_t>(model)]) {
      armed_deadline_[static_cast<std::size_t>(model)] = deadline;
      queue_.push(*deadline,
                  Event{Event::Kind::kDeadline, model, 0, nullptr, {}});
    }
  }

  void dispatch(std::vector<Request> batch, Seconds now) {
    ++result_.batches_dispatched;
    if (batches_total_ != nullptr) batches_total_->add();
    const int batch_size = static_cast<int>(batch.size());
    if (rec_ != nullptr && !batch.empty()) {
      rec_->instant(
          obs::Clock::kSim,
          model_tracks_[static_cast<std::size_t>(batch.front().model)],
          "batch", now, {{"size", JsonValue::integer(batch_size)}});
    }
    for (Request& request : batch) {
      instantiate(request, now, batch_size);
    }
    if (!batch.empty()) sample_queued_work(batch.front().model, now);
  }

  /// The `none`-policy fast path: one request, one batch, no vectors.
  void dispatch_single(const Request& request, Seconds now) {
    ++result_.batches_dispatched;
    if (batches_total_ != nullptr) batches_total_->add();
    if (rec_ != nullptr) {
      rec_->instant(obs::Clock::kSim,
                    model_tracks_[static_cast<std::size_t>(request.model)],
                    "batch", now, {{"size", JsonValue::integer(1)}});
    }
    instantiate(request, now, 1);
    sample_queued_work(request.model, now);
  }

  /// Stamps one request instance into a recycled arena block: copy the
  /// prototype's missing-dependency counts, account its compute on the
  /// queued-work timelines (same per-task order as a clone would, so the
  /// floating-point sums match the historical engine bit for bit), and
  /// seed the root task events in task order.
  void instantiate(const Request& request, Seconds now, int batch_size) {
    const auto m = static_cast<std::size_t>(request.model);
    const sim::FlatTaskGraph& flat = *flats_[m];
    Instance* instance = free_list_[m];
    if (instance != nullptr) {
      free_list_[m] = instance->next_free;
    } else {
      void* block = arena_.allocate(
          sizeof(Instance) +
              sizeof(int) * static_cast<std::size_t>(flat.size),
          alignof(Instance));
      instance = new (block) Instance();
    }
    instance->request = request;
    instance->dispatch = now;
    instance->batch_size = batch_size;
    instance->tasks_remaining = flat.size;
    instance->next_free = nullptr;
    if (flat.size > 0) {
      std::memcpy(instance->missing(), flat.dep_counts.data(),
                  sizeof(int) * static_cast<std::size_t>(flat.size));
    }
    ++admitted_;
    if (rec_ != nullptr) {
      const int track = model_tracks_[m];
      rec_->async_end(obs::Clock::kSim, track, "req", request.id, "queue",
                      now);
      rec_->async_begin(obs::Clock::kSim, track, "req", request.id, "execute",
                        now);
    }
    for (int t = 0; t < flat.size; ++t) {
      if (flat.kinds[static_cast<std::size_t>(t)] == TaskKind::kCompute) {
        queued_work_[static_cast<std::size_t>(
            flat.accs[static_cast<std::size_t>(t)])] +=
            flat.durations[static_cast<std::size_t>(t)];
      }
    }
    for (sim::TaskId root : flat.roots) {
      queue_.push(now, Event{Event::Kind::kTryStart, root, 0, instance, {}});
    }
  }

  /// Post-dispatch queued-work samples for the accelerators this model
  /// computes on.
  void sample_queued_work(int model, Seconds now) {
    if (rec_ == nullptr) return;
    for (const int acc : service_accs_[static_cast<std::size_t>(model)]) {
      const auto a = static_cast<std::size_t>(acc);
      rec_->counter(obs::Clock::kSim, queued_name_[a], now,
                    queued_work_[a].count());
    }
  }

  void try_start(Instance* instance, int t, int leg) {
    const sim::FlatTaskGraph& flat =
        *flats_[static_cast<std::size_t>(instance->request.model)];
    const auto ti = static_cast<std::size_t>(t);
    switch (flat.kinds[ti]) {
      case TaskKind::kBarrier:
        finish_task(instance, t);
        break;
      case TaskKind::kCompute: {
        const auto a = static_cast<std::size_t>(flat.accs[ti]);
        Seconds& free = acc_free_[a];
        if (free > now_) {
          queue_.push(free, Event{Event::Kind::kTryStart, t, 0, instance, {}});
          break;
        }
        const Seconds duration = flat.durations[ti];
        const Seconds end = now_ + duration;
        free = end;
        result_.acc_busy[a] += duration;
        // The work moves from "queued" to "running" (acc_free covers it).
        queued_work_[a] -= duration;
        if (rec_ != nullptr) trace_compute(instance, flat.accs[ti], end);
        queue_.push(end, Event{Event::Kind::kTaskDone, t, 0, instance, {}});
        break;
      }
      case TaskKind::kTransfer: {
        if (flat.bytes[ti].count() <= 0.0) {
          finish_task(instance, t);
          break;
        }
        const std::vector<sim::RouteLeg>& route =
            route_for(flat.srcs[ti], flat.dsts[ti]);
        MARS_CHECK(leg < static_cast<int>(route.size()),
                   "leg index out of range");
        const sim::RouteLeg& hop = route[static_cast<std::size_t>(leg)];
        Seconds& free = channel_free_[static_cast<std::size_t>(hop.channel)];
        if (free > now_) {
          queue_.push(free,
                      Event{Event::Kind::kTryStart, t, leg, instance, {}});
          break;
        }
        const Seconds end = now_ + network_.leg_time(hop, flat.bytes[ti]);
        free = end;
        queue_.push(end, Event{Event::Kind::kLegDone, t, leg, instance, {}});
        break;
      }
    }
  }

  /// One busy span per compute task on its accelerator's track (an
  /// accelerator runs one task at a time, so spans on a track never
  /// overlap), plus the post-start queued-work counter sample.
  void trace_compute(const Instance* instance, int acc, Seconds end) {
    const auto a = static_cast<std::size_t>(acc);
    const auto m = static_cast<std::size_t>(instance->request.model);
    rec_->complete(obs::Clock::kSim, acc_tracks_[a], (*models_)[m].name,
                   now_, end - now_,
                   {{"request", JsonValue::integer(instance->request.id)}});
    rec_->counter(obs::Clock::kSim, queued_name_[a], now_,
                  queued_work_[a].count());
  }

  void leg_done(Instance* instance, int t, int leg) {
    const sim::FlatTaskGraph& flat =
        *flats_[static_cast<std::size_t>(instance->request.model)];
    const auto ti = static_cast<std::size_t>(t);
    const std::vector<sim::RouteLeg>& route =
        route_for(flat.srcs[ti], flat.dsts[ti]);
    if (leg + 1 < static_cast<int>(route.size())) {
      // Store-and-forward at the host before the next leg.
      queue_.push(now_ + network_.params().host_latency,
                  Event{Event::Kind::kTryStart, t, leg + 1, instance, {}});
    } else {
      finish_task(instance, t);
    }
  }

  void finish_task(Instance* instance, int t) {
    result_.horizon = std::max(result_.horizon, now_);
    ++result_.tasks_executed;
    if (tasks_total_ != nullptr) tasks_total_->add();
    const sim::FlatTaskGraph& flat =
        *flats_[static_cast<std::size_t>(instance->request.model)];
    int* missing = instance->missing();
    const auto begin =
        static_cast<std::size_t>(flat.dependent_offsets[static_cast<std::size_t>(t)]);
    const auto end = static_cast<std::size_t>(
        flat.dependent_offsets[static_cast<std::size_t>(t) + 1]);
    for (std::size_t i = begin; i < end; ++i) {
      const sim::TaskId dependent = flat.dependents[i];
      if (--missing[dependent] == 0) {
        queue_.push(now_,
                    Event{Event::Kind::kTryStart, dependent, 0, instance, {}});
      }
    }
    if (--instance->tasks_remaining == 0) complete_request(instance);
  }

  void complete_request(Instance* instance) {
    result_.completed.push_back(CompletedRequest{
        instance->request, instance->dispatch, now_, instance->batch_size});
    const auto m = static_cast<std::size_t>(instance->request.model);
    --in_system_[m];
    if (completed_total_ != nullptr) completed_total_->add();
    if (latency_hist_ != nullptr) {
      latency_hist_->observe((now_ - instance->request.arrival).count());
    }
    if (rec_ != nullptr) {
      const int track = model_tracks_[m];
      rec_->async_end(obs::Clock::kSim, track, "req", instance->request.id,
                      "execute", now_);
      rec_->async_end(obs::Clock::kSim, track, "req", instance->request.id,
                      (*models_)[m].name, now_);
      rec_->counter(obs::Clock::kSim, in_system_name_[m], now_,
                    static_cast<double>(in_system_[m]));
    }
    reissue_after_think(instance->request.model, instance->request.client);
    // Recycle the block: every event referencing this instance has been
    // consumed (its last task just finished), so LIFO reuse is safe.
    instance->next_free = free_list_[m];
    free_list_[m] = instance;
  }

  const std::vector<sim::RouteLeg>& route_for(int src, int dst) {
    const int n = topo_->size();
    auto& slot = route_cache_[static_cast<std::size_t>((src + 1) * (n + 1) +
                                                       (dst + 1))];
    if (!slot) slot = network_.route(src, dst);
    return *slot;
  }

  const topology::Topology* topo_;
  const std::vector<ServedModel>* models_;
  sim::Network network_;

  sim::EventQueue<Event> queue_;
  Seconds now_{};

  bool immediate_dispatch_ = false;
  std::vector<Batcher> batchers_;  // empty on the immediate-dispatch path
  std::vector<std::optional<Seconds>> armed_deadline_;

  // Admission-control state.
  AdmissionPolicy admission_;
  std::vector<int> in_system_;  // per model: batcher queue + in flight
  std::vector<Seconds> queued_work_;  // per acc: admitted, not yet started
  std::vector<std::vector<int>> service_accs_;  // per model: accs its proto uses

  // Instance pool: one flat prototype per model, blocks recycled through
  // per-model free lists, backing storage in the arena.
  std::vector<const sim::FlatTaskGraph*> flats_;
  std::vector<Instance*> free_list_;
  util::Arena arena_;
  long long admitted_ = 0;

  std::vector<Seconds> acc_free_ =
      std::vector<Seconds>(static_cast<std::size_t>(topo_->size()),
                           Seconds(0.0));
  std::vector<Seconds> channel_free_ = std::vector<Seconds>(
      static_cast<std::size_t>(network_.num_channels()), Seconds(0.0));
  std::vector<std::optional<std::vector<sim::RouteLeg>>> route_cache_;

  bool closed_loop_ = false;
  Seconds think_{};
  Seconds issue_horizon_{};
  int next_request_id_ = 0;

  // Observability handles, resolved once at construction (all null/empty
  // when no recorder/registry is installed — the common case).
  obs::TraceRecorder* rec_ = nullptr;
  std::vector<int> model_tracks_;            // sim track per model
  std::vector<int> acc_tracks_;              // sim track per accelerator
  std::vector<std::string> in_system_name_;  // counter name per model
  std::vector<std::string> queued_name_;     // counter name per accelerator
  obs::Counter* shed_total_ = nullptr;
  obs::Counter* completed_total_ = nullptr;
  obs::Counter* batches_total_ = nullptr;
  obs::Counter* tasks_total_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;

  ServeResult result_;
};

}  // namespace

OnlineScheduler::OnlineScheduler(const topology::Topology& topo,
                                 std::vector<const ModelService*> services,
                                 SchedulerOptions options)
    : topo_(&topo), options_(std::move(options)) {
  MARS_CHECK_ARG(!services.empty(), "scheduler needs at least one service");
  models_.reserve(services.size());
  for (const ModelService* service : services) {
    MARS_CHECK_ARG(service != nullptr, "null service");
    MARS_CHECK_ARG(service->problem().topo == topo_,
                   "service '" << service->name()
                               << "' was planned on a different topology");
    // single_latency / proto were produced under the service's SimParams;
    // replaying under different timing would silently disagree with them.
    const sim::SimParams& planned = service->problem().sim_params;
    MARS_CHECK_ARG(planned.link_latency == options_.sim.link_latency &&
                       planned.host_latency == options_.sim.host_latency,
                   "service '" << service->name()
                               << "' was planned under different SimParams "
                                  "than SchedulerOptions.sim");
    models_.push_back(ServedModel{service->name(), &service->flat_proto(),
                                  service->single_latency()});
  }
}

OnlineScheduler::OnlineScheduler(const topology::Topology& topo,
                                 std::vector<ServedModel> models,
                                 SchedulerOptions options)
    : topo_(&topo), models_(std::move(models)), options_(std::move(options)) {
  MARS_CHECK_ARG(!models_.empty(), "scheduler needs at least one model");
  for (const ServedModel& model : models_) {
    MARS_CHECK_ARG(model.flat != nullptr,
                   "model '" << model.name << "' has no flat prototype");
  }
}

ServeResult OnlineScheduler::run(const std::vector<Request>& arrivals) const {
  Engine engine(*topo_, models_, options_);
  engine.reserve(arrivals.size());
  for (const Request& request : arrivals) {
    MARS_CHECK_ARG(request.model >= 0 && request.model < num_models(),
                   "request " << request.id << " targets unknown model index "
                              << request.model);
    MARS_CHECK_ARG(request.arrival.count() >= 0.0,
                   "request " << request.id << " arrives before t=0");
    engine.add_arrival(request);
  }
  return engine.run();
}

ServeResult OnlineScheduler::run_closed_loop(const ClosedLoopSpec& spec,
                                             Seconds duration) const {
  MARS_CHECK_ARG(spec.clients() > 0, "closed loop needs at least one client");
  MARS_CHECK_ARG(duration.count() > 0.0, "duration must be positive");
  // A rejected client retries `think` after the rejection; with think == 0
  // that retry lands at the same simulated instant, is rejected against
  // unchanged state, and the clock never advances.
  MARS_CHECK_ARG(options_.admission.kind == AdmissionPolicy::Kind::kNone ||
                     spec.think.count() > 0.0,
                 "closed-loop admission control needs think > 0 (a rejected "
                 "client would retry at the same instant forever)");
  Engine engine(*topo_, models_, options_);
  engine.reserve(static_cast<std::size_t>(spec.clients()));
  engine.enable_closed_loop(spec.think, duration);
  for (int c = 0; c < spec.clients(); ++c) {
    const int model = spec.client_model[static_cast<std::size_t>(c)];
    MARS_CHECK_ARG(model >= 0 && model < num_models(),
                   "client " << c << " bound to unknown model index " << model);
    Request request;
    request.id = c;
    request.model = model;
    request.arrival = Seconds(0.0);
    request.client = c;
    engine.add_arrival(request);
  }
  return engine.run();
}

}  // namespace mars::serve
