// Request workloads for the online serving simulator.
//
// A workload is a time-ordered stream of inference requests against the
// co-resident models of a ServeFleet. Open-loop streams (Poisson arrivals
// or a replayed CSV trace) are materialised up front so a run is a pure
// function of (workload, policy, topology); closed-loop clients are
// described by a spec and re-issue inside the scheduler when their
// previous request completes. All randomness flows through util/rng.h —
// a fixed seed reproduces the stream bit-for-bit within a build.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "mars/util/units.h"

namespace mars::serve {

/// One inference request against model `model` (index into the fleet's
/// service list). `client` identifies the issuing closed-loop client,
/// -1 for open-loop arrivals.
struct Request {
  int id = -1;
  int model = 0;
  Seconds arrival{};
  int client = -1;
};

/// One entry of the model mix: a zoo model name plus its relative traffic
/// weight (any non-negative scale; weights are normalised internally).
struct MixEntry {
  std::string model;
  double weight = 1.0;
};

/// Weighted model pick: index of the entry owning the point `u * sum(w)`
/// on the cumulative weight line, for `u` in [0, 1).
[[nodiscard]] int pick_model(const std::vector<double>& weights, double u);

/// Open-loop Poisson stream: exponential inter-arrivals at `rate` requests
/// per second over [0, duration), each request's model drawn from
/// `mix_weights`. Deterministic under `seed`.
[[nodiscard]] std::vector<Request> poisson_arrivals(
    const std::vector<double>& mix_weights, double rate_per_second,
    Seconds duration, std::uint64_t seed);

/// Trace replay: CSV with header `arrival_s,model`, one request per row.
/// Model names resolve against `model_names` (the fleet's service order);
/// rows are sorted by arrival (stable) and re-numbered.
[[nodiscard]] std::vector<Request> replay_trace(
    std::istream& in, const std::vector<std::string>& model_names);
[[nodiscard]] std::vector<Request> replay_trace_file(
    const std::string& path, const std::vector<std::string>& model_names);

/// Closed-loop workload: `clients` concurrent clients, each bound to one
/// model, issuing the next request `think` after the previous completes.
struct ClosedLoopSpec {
  std::vector<int> client_model;  // model index per client
  Seconds think{};

  [[nodiscard]] int clients() const {
    return static_cast<int>(client_model.size());
  }
};

/// Assigns `clients` clients to models proportionally to `mix_weights`
/// (deterministic greedy largest-remainder; no randomness needed).
[[nodiscard]] ClosedLoopSpec make_closed_loop(
    const std::vector<double>& mix_weights, int clients, Seconds think);

}  // namespace mars::serve
