#include "mars/serve/workload.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>

#include "mars/util/error.h"
#include "mars/util/rng.h"
#include "mars/util/strings.h"

namespace mars::serve {
namespace {

void check_mix(const std::vector<double>& weights) {
  MARS_CHECK_ARG(!weights.empty(), "model mix must name at least one model");
  double total = 0.0;
  for (double w : weights) {
    MARS_CHECK_ARG(w >= 0.0, "mix weights must be non-negative");
    total += w;
  }
  MARS_CHECK_ARG(total > 0.0, "mix weights must not all be zero");
}

int resolve_model(const std::string& name,
                  const std::vector<std::string>& model_names) {
  for (std::size_t i = 0; i < model_names.size(); ++i) {
    if (model_names[i] == name) return static_cast<int>(i);
  }
  MARS_THROW("trace names model '" << name << "' which is not served; serving: "
                                   << join(model_names, ", "));
}

}  // namespace

int pick_model(const std::vector<double>& weights, double u) {
  check_mix(weights);
  MARS_CHECK_ARG(u >= 0.0 && u < 1.0, "pick_model needs u in [0, 1)");
  double total = 0.0;
  for (double w : weights) total += w;
  const double point = u * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (point < cumulative) return static_cast<int>(i);
  }
  // Numerically possible only when `point` rounds up to `total`: the last
  // entry with non-zero weight owns the boundary.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return static_cast<int>(i);
  }
  MARS_THROW("unreachable: empty mix passed check_mix");
}

std::vector<Request> poisson_arrivals(const std::vector<double>& mix_weights,
                                      double rate_per_second, Seconds duration,
                                      std::uint64_t seed) {
  check_mix(mix_weights);
  MARS_CHECK_ARG(rate_per_second > 0.0, "arrival rate must be positive");
  MARS_CHECK_ARG(duration.count() > 0.0, "duration must be positive");

  Rng rng(seed);
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(rate_per_second * duration.count()));
  Seconds t{};
  for (;;) {
    // Inverse-CDF exponential draw from a plain uniform — one engine
    // call per draw, reproducible per seed within a build.
    t += Seconds(-std::log1p(-rng.uniform()) / rate_per_second);
    if (t >= duration) break;
    Request request;
    request.id = static_cast<int>(requests.size());
    request.model = pick_model(mix_weights, rng.uniform());
    request.arrival = t;
    requests.push_back(request);
  }
  return requests;
}

std::vector<Request> replay_trace(std::istream& in,
                                  const std::vector<std::string>& model_names) {
  MARS_CHECK_ARG(!model_names.empty(), "trace replay needs served models");
  std::vector<Request> requests;
  std::string line;
  int line_no = 0;
  bool seen_content = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!seen_content && line.rfind("\xEF\xBB\xBF", 0) == 0) {
      line.erase(0, 3);  // Excel-style UTF-8 BOM
    }
    if (line.empty()) continue;
    const std::vector<std::string> fields = split(line, ',');
    MARS_CHECK_ARG(fields.size() == 2, "trace line " << line_no
                                                     << ": expected "
                                                        "`arrival_s,model`, got '"
                                                     << line << "'");
    const bool is_first_content = !seen_content;
    seen_content = true;
    if (is_first_content && fields[0] == "arrival_s") continue;  // header
    Request request;
    try {
      request.arrival = Seconds(std::stod(fields[0]));
    } catch (const std::exception&) {
      throw InvalidArgument("trace line " + std::to_string(line_no) +
                            ": bad arrival time '" + fields[0] + "'");
    }
    MARS_CHECK_ARG(request.arrival.count() >= 0.0,
                   "trace line " << line_no << ": negative arrival time");
    request.model = resolve_model(fields[1], model_names);
    requests.push_back(request);
  }
  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i].id = static_cast<int>(i);
  }
  return requests;
}

std::vector<Request> replay_trace_file(
    const std::string& path, const std::vector<std::string>& model_names) {
  std::ifstream file(path);
  MARS_CHECK_ARG(file.good(), "cannot open trace file '" << path << "'");
  return replay_trace(file, model_names);
}

ClosedLoopSpec make_closed_loop(const std::vector<double>& mix_weights,
                                int clients, Seconds think) {
  check_mix(mix_weights);
  MARS_CHECK_ARG(clients > 0, "closed loop needs at least one client");
  MARS_CHECK_ARG(think.count() >= 0.0, "think time must be non-negative");

  ClosedLoopSpec spec;
  spec.think = think;
  spec.client_model.reserve(static_cast<std::size_t>(clients));
  std::vector<int> assigned(mix_weights.size(), 0);
  for (int c = 0; c < clients; ++c) {
    // Greedy proportional fill: the model whose share is furthest below
    // its weight gets the next client (ties break toward lower index).
    int best = -1;
    double best_score = -1.0;
    for (std::size_t m = 0; m < mix_weights.size(); ++m) {
      if (mix_weights[m] <= 0.0) continue;
      const double score = mix_weights[m] / (assigned[m] + 1);
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(m);
      }
    }
    ++assigned[static_cast<std::size_t>(best)];
    spec.client_model.push_back(best);
  }
  return spec;
}

}  // namespace mars::serve
