// Serving metrics: what an operator actually reads off a fleet.
//
// Turns a raw ServeResult into tail-latency percentiles (nearest-rank on
// the request latency distribution), throughput and SLO goodput (the rate
// of requests whose end-to-end latency met the objective), shed
// accounting when admission control is active (offered vs rejected, the
// goodput/shed-rate trade every load-shedding knob is judged by), and
// per-accelerator utilization (compute-busy seconds over the simulated
// horizon, straight from the executor's acc_busy accounting).
#pragma once

#include <string>
#include <vector>

#include "mars/serve/scheduler.h"

namespace mars::serve {

struct LatencyStats {
  int count = 0;
  Seconds mean{};
  Seconds p50{};
  Seconds p95{};
  Seconds p99{};
  Seconds max{};

  /// Nearest-rank percentiles over `samples` (order irrelevant).
  [[nodiscard]] static LatencyStats from_samples(std::vector<Seconds> samples);
};

struct ModelMetrics {
  std::string model;
  int requests = 0;
  /// Requests shed by admission control before execution.
  int rejected = 0;
  LatencyStats latency;
  /// Fraction of this model's requests finishing within the SLO.
  double slo_attainment = 1.0;
  /// SLO-compliant completions per second of horizon.
  double goodput_rps = 0.0;
  double mean_batch = 0.0;
};

struct ServeMetrics {
  int requests = 0;
  /// Arrivals offered to admission control (requests + rejected).
  int offered = 0;
  /// Requests shed by admission control; shed_rate = rejected / offered.
  int rejected = 0;
  double shed_rate = 0.0;
  int batches = 0;
  Seconds horizon{};
  Seconds slo{};  // <= 0 means "no SLO" (attainment 1, goodput == throughput)
  LatencyStats latency;
  double throughput_rps = 0.0;
  double goodput_rps = 0.0;
  double slo_attainment = 1.0;
  double mean_batch = 0.0;
  /// acc_busy / horizon per accelerator, in [0, 1].
  std::vector<double> utilization;
  std::vector<ModelMetrics> per_model;  // aligned with `model_names`
};

/// `model_names` follows the scheduler's service order; `slo` <= 0
/// disables the objective.
[[nodiscard]] ServeMetrics summarize(const ServeResult& result,
                                     const std::vector<std::string>& model_names,
                                     Seconds slo);

/// Per-model SLO variant: `model_slos` aligns with `model_names`; a zero
/// (or missing) entry falls back to the shared `slo`. Each completion is
/// judged against its own model's objective, so the fleet goodput of a
/// mixed-SLO tenant set is the sum of per-tenant goodputs.
[[nodiscard]] ServeMetrics summarize(const ServeResult& result,
                                     const std::vector<std::string>& model_names,
                                     Seconds slo,
                                     const std::vector<Seconds>& model_slos);

}  // namespace mars::serve
