#include "mars/serve/fleet.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include "mars/obs/metrics.h"
#include "mars/obs/trace.h"
#include "mars/util/error.h"
#include "mars/util/worker_pool.h"

namespace mars::serve {
namespace {

/// FNV-1a, 64-bit. Fed explicit little-endian bytes so the hash — and
/// therefore shard routing and every downstream result — is identical
/// across platforms.
inline std::uint64_t fnv1a_int(std::uint64_t hash, int value) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  auto bits = static_cast<std::uint32_t>(value);
  for (int i = 0; i < 4; ++i) {
    hash ^= (bits >> (8 * i)) & 0xffu;
    hash *= kPrime;
  }
  return hash;
}

/// A shard that received no traffic still contributes its (idle)
/// accelerators to the merged fleet view.
ServeResult empty_shard_result(int group_accelerators) {
  ServeResult result;
  result.acc_busy.assign(static_cast<std::size_t>(group_accelerators),
                         Seconds(0.0));
  return result;
}

}  // namespace

FleetPartition partition_fleet(int accelerators, int shards) {
  MARS_CHECK_ARG(accelerators >= 1,
                 "fleet needs at least one accelerator, got " << accelerators);
  MARS_CHECK_ARG(shards >= 1, "shards must be >= 1, got " << shards);
  FleetPartition partition;
  partition.clamped = shards > accelerators;
  partition.shards = partition.clamped ? accelerators : shards;
  partition.group_accelerators = accelerators / partition.shards;
  partition.unused_accelerators =
      accelerators - partition.shards * partition.group_accelerators;
  return partition;
}

int shard_of(int model, int request_id, int shards) {
  if (shards <= 1) return 0;
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  const std::uint64_t hash = fnv1a_int(fnv1a_int(kOffset, model), request_id);
  return static_cast<int>(hash % static_cast<std::uint64_t>(shards));
}

ServeResult merge_shard_results(std::vector<ServeResult> shard_results,
                                int group_accelerators) {
  MARS_CHECK_ARG(!shard_results.empty(), "nothing to merge");
  MARS_CHECK_ARG(group_accelerators >= 1,
                 "group_accelerators must be >= 1, got " << group_accelerators);
  ServeResult merged;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  for (const ServeResult& shard : shard_results) {
    MARS_CHECK_ARG(static_cast<int>(shard.acc_busy.size()) ==
                       group_accelerators,
                   "shard result has " << shard.acc_busy.size()
                                       << " accelerators, expected "
                                       << group_accelerators);
    completed += shard.completed.size();
    rejected += shard.rejected.size();
  }
  merged.completed.reserve(completed);
  merged.rejected.reserve(rejected);
  merged.acc_busy.reserve(shard_results.size() *
                          static_cast<std::size_t>(group_accelerators));
  for (ServeResult& shard : shard_results) {
    merged.completed.insert(merged.completed.end(), shard.completed.begin(),
                            shard.completed.end());
    merged.rejected.insert(merged.rejected.end(), shard.rejected.begin(),
                           shard.rejected.end());
    merged.acc_busy.insert(merged.acc_busy.end(), shard.acc_busy.begin(),
                           shard.acc_busy.end());
    merged.horizon = std::max(merged.horizon, shard.horizon);
    merged.tasks_executed += shard.tasks_executed;
    merged.batches_dispatched += shard.batches_dispatched;
  }
  // The concatenation above is shard-major, so a stable sort keyed on
  // time alone resolves ties to (shard, intra-shard) order — the full
  // deterministic (time, shard, intra-shard) merge order.
  std::stable_sort(merged.completed.begin(), merged.completed.end(),
                   [](const CompletedRequest& a, const CompletedRequest& b) {
                     return a.completion < b.completion;
                   });
  std::stable_sort(merged.rejected.begin(), merged.rejected.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  return merged;
}

FleetScheduler::FleetScheduler(const topology::Topology& group_topo,
                               std::vector<const ModelService*> services,
                               FleetOptions options)
    : group_topo_(&group_topo),
      services_(std::move(services)),
      options_(std::move(options)) {
  MARS_CHECK_ARG(options_.shards >= 1,
                 "shards must be >= 1, got " << options_.shards);
  MARS_CHECK_ARG(options_.threads >= 1,
                 "threads must be >= 1, got " << options_.threads);
  const int fleet_models = static_cast<int>(services_.size());
  if (heterogeneous()) {
    MARS_CHECK_ARG(static_cast<int>(options_.shard_models.size()) ==
                       options_.shards,
                   "shard_models has " << options_.shard_models.size()
                                       << " entries, expected one per shard ("
                                       << options_.shards << ")");
    model_hosts_.assign(static_cast<std::size_t>(fleet_models), {});
    fleet_to_local_.assign(
        static_cast<std::size_t>(options_.shards),
        std::vector<int>(static_cast<std::size_t>(fleet_models), -1));
    for (int s = 0; s < options_.shards; ++s) {
      const std::vector<int>& hosted =
          options_.shard_models[static_cast<std::size_t>(s)];
      MARS_CHECK_ARG(!hosted.empty(),
                     "shard " << s << " hosts no models");
      for (std::size_t local = 0; local < hosted.size(); ++local) {
        const int m = hosted[local];
        MARS_CHECK_ARG(m >= 0 && m < fleet_models,
                       "shard " << s << " hosts unknown model index " << m);
        MARS_CHECK_ARG(
            fleet_to_local_[static_cast<std::size_t>(s)]
                           [static_cast<std::size_t>(m)] < 0,
            "shard " << s << " hosts model index " << m << " twice");
        fleet_to_local_[static_cast<std::size_t>(s)]
                       [static_cast<std::size_t>(m)] =
            static_cast<int>(local);
        model_hosts_[static_cast<std::size_t>(m)].push_back(s);
      }
    }
    for (int m = 0; m < fleet_models; ++m) {
      MARS_CHECK_ARG(!model_hosts_[static_cast<std::size_t>(m)].empty(),
                     "model '" << services_[static_cast<std::size_t>(m)]->name()
                               << "' is hosted by no shard");
    }
  }
  shard_schedulers_.reserve(static_cast<std::size_t>(options_.shards));
  for (int s = 0; s < options_.shards; ++s) {
    SchedulerOptions per_shard = options_.scheduler;
    // Only a real fleet prefixes its tracks; the single-shard path must
    // reproduce the serial scheduler's trace byte for byte.
    if (options_.shards > 1) {
      std::string prefix = "s";
      prefix += std::to_string(s);
      prefix += ' ';
      per_shard.trace_label_prefix = std::move(prefix);
    }
    if (!heterogeneous()) {
      shard_schedulers_.emplace_back(group_topo, services_,
                                     std::move(per_shard));
      continue;
    }
    // Heterogeneous shard: engine over the hosted subset. Fleet-indexed
    // per-model SLO overrides are remapped to the shard's local indices.
    const std::vector<int>& hosted =
        options_.shard_models[static_cast<std::size_t>(s)];
    std::vector<const ModelService*> local_services;
    local_services.reserve(hosted.size());
    std::vector<Seconds> local_slos;
    const std::vector<Seconds>& fleet_slos =
        options_.scheduler.admission.per_model_slo;
    if (!fleet_slos.empty()) local_slos.resize(hosted.size(), Seconds(0.0));
    for (std::size_t local = 0; local < hosted.size(); ++local) {
      const auto m = static_cast<std::size_t>(hosted[local]);
      local_services.push_back(services_[m]);
      if (!fleet_slos.empty() && m < fleet_slos.size()) {
        local_slos[local] = fleet_slos[m];
      }
    }
    per_shard.admission.per_model_slo = std::move(local_slos);
    shard_schedulers_.emplace_back(group_topo, std::move(local_services),
                                   std::move(per_shard));
  }
  if (obs::MetricsRegistry* registry = obs::metrics()) {
    registry->gauge("serve.fleet.shards")
        .set(static_cast<double>(options_.shards));
  }
}

template <typename ShardFn>
std::vector<ServeResult> FleetScheduler::run_shards(ShardFn&& fn) const {
  const auto n = static_cast<std::size_t>(options_.shards);
  std::vector<ServeResult> results(n);
  obs::TraceRecorder* rec = obs::trace();
  if (rec != nullptr || options_.threads == 1) {
    // Serial: engines emit their simulated-domain events in shard order,
    // so the trace stream is deterministic. Wall spans record how long
    // each shard's engine really ran.
    const int wall_track =
        rec != nullptr ? rec->track(obs::Clock::kWall, "serve") : 0;
    for (std::size_t s = 0; s < n; ++s) {
      const Seconds start = rec != nullptr ? rec->wall_now() : Seconds(0.0);
      results[s] = fn(static_cast<int>(s));
      if (rec != nullptr) {
        rec->complete(obs::Clock::kWall, wall_track,
                      "shard " + std::to_string(s), start,
                      rec->wall_now() - start);
      }
    }
    return results;
  }
  // Parallel: one independent engine per shard, results published by
  // index — output is identical to the serial loop above.
  util::WorkerPool pool(
      std::min(options_.threads, options_.shards));
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      results[s] = fn(static_cast<int>(s));
    }
  });
  return results;
}

void FleetScheduler::restore_fleet_indices(
    std::vector<ServeResult>& results) const {
  for (std::size_t s = 0; s < results.size(); ++s) {
    const std::vector<int>& hosted = options_.shard_models[s];
    for (CompletedRequest& done : results[s].completed) {
      done.request.model =
          hosted[static_cast<std::size_t>(done.request.model)];
    }
    for (Request& shed : results[s].rejected) {
      shed.model = hosted[static_cast<std::size_t>(shed.model)];
    }
  }
}

ServeResult FleetScheduler::run(const std::vector<Request>& arrivals) const {
  if (options_.shards == 1 && !heterogeneous()) {
    return shard_schedulers_[0].run(arrivals);
  }
  // Route per arrival; order within a shard preserves arrival order, so
  // each engine sees a well-formed sub-stream. Heterogeneous fleets route
  // among a model's hosting shards only (and each engine speaks local
  // model indices); when every shard hosts every model the hosting list
  // is [0..shards), so the route reduces to the homogeneous hash.
  std::vector<std::vector<Request>> per_shard(
      static_cast<std::size_t>(options_.shards));
  for (const Request& request : arrivals) {
    int shard = 0;
    Request routed = request;
    if (heterogeneous()) {
      const std::vector<int>& hosts =
          model_hosts_[static_cast<std::size_t>(request.model)];
      shard = hosts[static_cast<std::size_t>(shard_of(
          request.model, request.id, static_cast<int>(hosts.size())))];
      routed.model = fleet_to_local_[static_cast<std::size_t>(shard)]
                                    [static_cast<std::size_t>(request.model)];
    } else {
      shard = shard_of(request.model, request.id, options_.shards);
    }
    per_shard[static_cast<std::size_t>(shard)].push_back(routed);
  }
  if (obs::MetricsRegistry* registry = obs::metrics()) {
    registry->counter("serve.fleet.requests.routed")
        .add(static_cast<long long>(arrivals.size()));
  }
  std::vector<ServeResult> results = run_shards([&](int s) {
    return shard_schedulers_[static_cast<std::size_t>(s)].run(
        per_shard[static_cast<std::size_t>(s)]);
  });
  if (heterogeneous()) restore_fleet_indices(results);
  return merge_shard_results(std::move(results), group_topo_->size());
}

ServeResult FleetScheduler::run_closed_loop(const ClosedLoopSpec& spec,
                                            Seconds duration) const {
  if (options_.shards == 1 && !heterogeneous()) {
    return shard_schedulers_[0].run_closed_loop(spec, duration);
  }
  // A client binds to one shard for the whole run (routed by its model
  // and fleet-wide client index) — closed-loop feedback never crosses
  // shard boundaries. Heterogeneous fleets bind among hosting shards
  // only, with the client's model rewritten to the shard-local index.
  std::vector<ClosedLoopSpec> per_shard(
      static_cast<std::size_t>(options_.shards));
  for (auto& shard_spec : per_shard) shard_spec.think = spec.think;
  for (int c = 0; c < spec.clients(); ++c) {
    const int model = spec.client_model[static_cast<std::size_t>(c)];
    if (heterogeneous()) {
      const std::vector<int>& hosts =
          model_hosts_[static_cast<std::size_t>(model)];
      const int shard = hosts[static_cast<std::size_t>(
          shard_of(model, c, static_cast<int>(hosts.size())))];
      per_shard[static_cast<std::size_t>(shard)].client_model.push_back(
          fleet_to_local_[static_cast<std::size_t>(shard)]
                         [static_cast<std::size_t>(model)]);
    } else {
      per_shard[static_cast<std::size_t>(shard_of(model, c, options_.shards))]
          .client_model.push_back(model);
    }
  }
  if (obs::MetricsRegistry* registry = obs::metrics()) {
    registry->counter("serve.fleet.requests.routed")
        .add(static_cast<long long>(spec.clients()));
  }
  std::vector<ServeResult> results = run_shards([&](int s) {
    const ClosedLoopSpec& shard_spec =
        per_shard[static_cast<std::size_t>(s)];
    // An unlucky routing can leave a shard clientless; it idles.
    if (shard_spec.clients() == 0) {
      return empty_shard_result(group_topo_->size());
    }
    return shard_schedulers_[static_cast<std::size_t>(s)].run_closed_loop(
        shard_spec, duration);
  });
  if (heterogeneous()) restore_fleet_indices(results);
  return merge_shard_results(std::move(results), group_topo_->size());
}

}  // namespace mars::serve
