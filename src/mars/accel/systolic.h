// Design 2: automated systolic array synthesis (Wei et al., DAC 2017).
//
// The synthesised architecture is a row x col PE grid executing the
// convolution as an im2col GEMM: M = Cout, N = OH*OW, K = Cin*Kh*Kw, with
// `vec`-wide operand vectors streamed through the K dimension. One (M, N)
// macro-tile runs its K loop in ceil(K/vec) beats; each beat takes two
// cycles at fix16 (operand interleave on the shared DSP — the calibration
// that puts the peak at row*col*vec/2 = 572 MAC/cycle, the paper's #PE
// figure), plus a row+col systolic fill per macro-tile.
//
//   cycles = ceil(Cout/row) * ceil(OH*OW/col) * (ceil(K/vec)*2 + row + col)
//
// DRAM model: im2col amplifies the input stream by Kh*Kw; weights are
// re-fetched once per N macro-tile.
//
// Strengths: deep K loops (large Cin, any kernel) regardless of spatial
// size — late 1x1-heavy stages. Weakness: shallow K (early layers,
// Cin = 3) cannot amortise the systolic fill.
#pragma once

#include "mars/accel/design.h"

namespace mars::accel {

struct SystolicParams {
  int rows = 11;
  int cols = 13;
  int vec = 8;
  Frequency frequency = megahertz(200);
};

class SystolicDesign final : public AcceleratorDesign {
 public:
  explicit SystolicDesign(const SystolicParams& params = {},
                          std::string name = "SystolicGEMM");

  [[nodiscard]] const SystolicParams& params() const { return params_; }

 protected:
  [[nodiscard]] double compute_cycles(const graph::ConvShape& shape) const override;
  [[nodiscard]] Bytes dram_traffic(const graph::ConvShape& shape,
                                   graph::DataType dtype) const override;

 private:
  SystolicParams params_;
};

}  // namespace mars::accel
