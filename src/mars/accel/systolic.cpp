#include "mars/accel/systolic.h"

#include <sstream>

#include "mars/util/error.h"

namespace mars::accel {
namespace {

std::string format_params(const SystolicParams& p) {
  std::ostringstream os;
  os << "row, col, vec: " << p.rows << ", " << p.cols << ", " << p.vec;
  return os.str();
}

}  // namespace

SystolicDesign::SystolicDesign(const SystolicParams& params, std::string name)
    : AcceleratorDesign(std::move(name), params.frequency,
                        static_cast<double>(params.rows) * params.cols * params.vec /
                            2.0,
                        format_params(params)),
      params_(params) {
  MARS_CHECK_ARG(params.rows > 0 && params.cols > 0 && params.vec > 0,
                 "systolic dimensions must be positive");
  // Nearest-neighbour operand forwarding: minimal SRAM movement per MAC.
  set_energy_per_mac(picojoules(2.8));
}

double SystolicDesign::compute_cycles(const graph::ConvShape& s) const {
  const double m_tiles = ceil_div(s.cout, params_.rows);
  const double n_tiles = ceil_div(static_cast<double>(s.oh) * s.ow, params_.cols);
  const double k_depth = static_cast<double>(s.cin) * s.kh * s.kw;
  const double beats = ceil_div(k_depth, params_.vec) * 2.0;
  const double fill = params_.rows + params_.cols;
  return m_tiles * n_tiles * (beats + fill);
}

Bytes SystolicDesign::dram_traffic(const graph::ConvShape& s,
                                   graph::DataType dtype) const {
  // im2col lowers the input to an (OH*OW) x (Cin*Kh*Kw) matrix — the exact
  // lowered size (strided convolutions skip pixels, so this is NOT simply
  // in_bytes * K^2); weights stream once per N macro-tile; outputs exit
  // once.
  const double n_tiles = ceil_div(static_cast<double>(s.oh) * s.ow, params_.cols);
  const double im2col_bytes = static_cast<double>(s.oh) * s.ow * s.cin * s.kh *
                              s.kw * graph::bytes_per_element(dtype);
  return Bytes(im2col_bytes) + s.weight_bytes(dtype) * n_tiles +
         s.out_bytes(dtype);
}

}  // namespace mars::accel
