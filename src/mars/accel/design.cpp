#include "mars/accel/design.h"

#include <cmath>

#include "mars/util/error.h"

namespace mars::accel {
namespace {

// GEMV (fully-connected) efficiency on a 2-D MAC array: only one spatial
// position exists, so half the array sits idle on operand skew.
constexpr double kGemvEfficiency = 0.5;

// Default local DRAM bandwidth per accelerator: one DDR4 channel pair,
// 32 GB/s (AWS F1 cards expose four channels; designs typically wire two).
constexpr double kDefaultDramBytesPerSecond = 32.0e9;

// Area-cost normalisation: a 512-PE array prices at 1.0 relative cost
// units, putting the Table II designs (448-576 PEs) near unity.
constexpr double kAreaCostPerPe = 1.0 / 512.0;

// Default compute energy: mid-range FPGA DSP-slice MAC plus its share of
// local SRAM traffic. Subclasses calibrate per family.
constexpr double kDefaultPicojoulesPerMac = 3.0;

}  // namespace

double ceil_div(double a, double b) {
  MARS_CHECK_ARG(b > 0.0, "ceil_div by non-positive divisor");
  return std::ceil(a / b);
}

AcceleratorDesign::AcceleratorDesign(std::string name, Frequency frequency,
                                     double peak_macs_per_cycle,
                                     std::string parameter_string, int pe_count)
    : name_(std::move(name)),
      frequency_(frequency),
      peak_macs_per_cycle_(peak_macs_per_cycle),
      parameters_(std::move(parameter_string)),
      dram_bytes_per_cycle_(kDefaultDramBytesPerSecond / frequency.hertz()),
      pe_count_(pe_count >= 0 ? pe_count
                              : static_cast<int>(peak_macs_per_cycle + 0.5)),
      area_cost_(static_cast<double>(pe_count_) * kAreaCostPerPe),
      energy_per_mac_(picojoules(kDefaultPicojoulesPerMac)) {
  MARS_CHECK_ARG(frequency.hertz() > 0.0, "design needs a positive frequency");
  MARS_CHECK_ARG(peak_macs_per_cycle_ > 0.0, "design needs a positive peak");
}

void AcceleratorDesign::set_dram_bandwidth(Bandwidth bw) {
  MARS_CHECK_ARG(bw.bits_per_second() > 0.0, "DRAM bandwidth must be positive");
  dram_bytes_per_cycle_ = bw.bytes_per_second() / frequency_.hertz();
}

void AcceleratorDesign::set_area_cost(double cost) {
  MARS_CHECK_ARG(cost > 0.0, "area cost must be positive");
  area_cost_ = cost;
}

void AcceleratorDesign::set_energy_per_mac(Joules energy) {
  MARS_CHECK_ARG(energy.count() > 0.0, "energy per MAC must be positive");
  energy_per_mac_ = energy;
}

CycleBreakdown AcceleratorDesign::conv_cycles(const graph::ConvShape& shape,
                                              graph::DataType dtype) const {
  MARS_CHECK_ARG(shape.cout > 0 && shape.cin > 0 && shape.oh > 0 && shape.ow > 0 &&
                     shape.kh > 0 && shape.kw > 0,
                 "conv_cycles on degenerate shape " << graph::to_string(shape));
  CycleBreakdown cycles;
  cycles.compute =
      is_gemv(shape) ? gemv_compute_cycles(shape) : compute_cycles(shape);
  cycles.dram = dram_traffic(shape, dtype).count() / dram_bytes_per_cycle_;
  return cycles;
}

Seconds AcceleratorDesign::conv_latency(const graph::ConvShape& shape,
                                        graph::DataType dtype) const {
  return frequency_.time_for(conv_cycles(shape, dtype).total());
}

double AcceleratorDesign::utilization(const graph::ConvShape& shape,
                                      graph::DataType dtype) const {
  const double total = conv_cycles(shape, dtype).total();
  return shape.macs() / (total * peak_macs_per_cycle_);
}

double AcceleratorDesign::dram_cycles(Bytes bytes) const {
  return bytes.count() / dram_bytes_per_cycle_;
}

Bytes AcceleratorDesign::dram_traffic(const graph::ConvShape& shape,
                                      graph::DataType dtype) const {
  // Baseline traffic without design-specific re-reads: stream the input,
  // weights and output once.
  return shape.in_bytes(dtype) + shape.weight_bytes(dtype) + shape.out_bytes(dtype);
}

bool AcceleratorDesign::is_gemv(const graph::ConvShape& shape) {
  return shape.oh == 1 && shape.ow == 1 && shape.kh == 1 && shape.kw == 1;
}

double AcceleratorDesign::gemv_compute_cycles(const graph::ConvShape& shape) const {
  return shape.macs() / (peak_macs_per_cycle_ * kGemvEfficiency);
}

}  // namespace mars::accel
