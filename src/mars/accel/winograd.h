// Design 3: Winograd fast-convolution accelerator (Lu et al., FCCM 2017).
//
// F(4x4, 3x3) Winograd: the input is cut into n x n = 6x6 overlapping
// tiles, each yielding a 4x4 output block with 36 multiplies instead of
// 144 — a 4x arithmetic saving. The engine transforms and element-wise
// multiplies Pn input-channel x Pm output-channel tile pairs in parallel.
//
//   winograd (Kh=Kw=3, stride 1):
//     cycles = ceil(Cout/Pm) * ceil(Cin/Pn) * ceil(H/4) * ceil(W/4) * c_tile
//   with c_tile = 4 (transform / EWMM / inverse pipeline beats), giving an
//   effective peak of Pm*Pn*16*9/c_tile = 576 MAC/cycle — equal to the
//   physical multiplier count, which keeps the three Table II designs'
//   theoretical performance comparable as the paper intends (the Winograd
//   arithmetic saving is spent on the transform stages).
//
//   direct fallback (any other kernel/stride — Winograd F(4,3) does not
//   apply): the tile datapath degrades to sliding-window reuse,
//     cycles = ceil(Cout/Pm) * ceil(Cin/Pn) * ceil(H/4) * ceil(W/4)
//              * Kh*Kw * c_tile
//   i.e. ~64 effective MAC/cycle on 1x1 convolutions — the reason the
//   paper's search never picks this design for bottleneck networks.
//
// DRAM model: overlapping 6x6 input tiles amplify the input stream by
// (6/4)^2 = 2.25x; weights are fetched once (transformed weights cached).
//
// Table II instance: n, Pn, Pm = 6, 2, 8 @ 200 MHz. We interpret Pn/Pm as
// the (Cin=8, Cout=2)-way tile parallelism whose 36-multiplier tiles give
// the table's 576 PEs (6*6*8*2).
#pragma once

#include "mars/accel/design.h"

namespace mars::accel {

struct WinogradParams {
  int tile_n = 6;  // input tile edge; output tile edge = tile_n - 2
  int pn = 8;      // parallel input channels
  int pm = 2;      // parallel output channels
  double cycles_per_tile = 4.0;
  Frequency frequency = megahertz(200);
};

class WinogradDesign final : public AcceleratorDesign {
 public:
  explicit WinogradDesign(const WinogradParams& params = {},
                          std::string name = "WinogradF43");

  [[nodiscard]] const WinogradParams& params() const { return params_; }
  /// True when the F(4,3) fast path applies to `shape`.
  [[nodiscard]] static bool winograd_applicable(const graph::ConvShape& shape);

 protected:
  [[nodiscard]] double compute_cycles(const graph::ConvShape& shape) const override;
  [[nodiscard]] Bytes dram_traffic(const graph::ConvShape& shape,
                                   graph::DataType dtype) const override;

 private:
  WinogradParams params_;
};

}  // namespace mars::accel
