// Offline per-layer design profiling.
//
// MARS profiles every candidate design on every spine layer before the
// search starts (Section V): the resulting normalised scores seed the
// first-level GA's design genes, and the matrix backs the Table II bench.
#pragma once

#include <vector>

#include "mars/accel/registry.h"
#include "mars/graph/spine.h"

namespace mars::accel {

struct LayerProfile {
  double cycles = 0.0;       // total analytical cycles on the design
  double utilization = 0.0;  // achieved / peak MACs
};

class ProfileMatrix {
 public:
  ProfileMatrix(const DesignRegistry& registry, const graph::ConvSpine& spine);

  [[nodiscard]] const LayerProfile& at(DesignId design, int layer) const;
  [[nodiscard]] int num_designs() const { return num_designs_; }
  [[nodiscard]] int num_layers() const { return num_layers_; }

  /// Design that minimises cycles on `layer`.
  [[nodiscard]] DesignId best_design(int layer) const;

  /// Normalised whole-network throughput score per design in (0, 1]:
  /// score(d) = (sum_l best_cycles(l)) / (sum_l cycles(d, l)). The best
  /// possible mixed assignment scores 1. Used for GA gene initialisation.
  [[nodiscard]] std::vector<double> design_scores() const;

  /// Total cycles of running the whole spine on one accelerator of `design`.
  [[nodiscard]] double total_cycles(DesignId design) const;

 private:
  int num_designs_;
  int num_layers_;
  std::vector<LayerProfile> profiles_;  // row-major [design][layer]
};

}  // namespace mars::accel
