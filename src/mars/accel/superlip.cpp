#include "mars/accel/superlip.h"

#include <sstream>

#include "mars/util/error.h"

namespace mars::accel {
namespace {

std::string format_params(const SuperLipParams& p) {
  std::ostringstream os;
  os << "Tm,Tn,Tr,Tc: " << p.tm << ", " << p.tn << ", " << p.tr << ", " << p.tc;
  return os.str();
}

}  // namespace

SuperLipDesign::SuperLipDesign(const SuperLipParams& params, std::string name)
    : AcceleratorDesign(std::move(name), params.frequency,
                        static_cast<double>(params.tm) * params.tn,
                        format_params(params)),
      params_(params) {
  MARS_CHECK_ARG(params.tm > 0 && params.tn > 0 && params.tr > 0 && params.tc > 0,
                 "SuperLIP tiles must be positive");
  MARS_CHECK_ARG(params.tile_overhead >= 0.0, "tile overhead must be >= 0");
  // Line-buffer streaming keeps every input pixel moving through SRAM
  // shift registers; the heaviest on-chip traffic of the three families.
  set_energy_per_mac(picojoules(3.4));
}

double SuperLipDesign::compute_cycles(const graph::ConvShape& s) const {
  const double tiles = ceil_div(s.cout, params_.tm) * ceil_div(s.cin, params_.tn) *
                       ceil_div(s.oh, params_.tr) * ceil_div(s.ow, params_.tc);
  const double cycles_per_tile =
      static_cast<double>(params_.tr) * params_.tc * s.kh * s.kw +
      params_.tile_overhead;
  return tiles * cycles_per_tile;
}

Bytes SuperLipDesign::dram_traffic(const graph::ConvShape& s,
                                   graph::DataType dtype) const {
  // Inputs re-read per output-channel tile; weights re-read per spatial
  // tile; outputs written once (Cin is the innermost off-chip loop and
  // partial sums stay on chip).
  const double input_reloads = ceil_div(s.cout, params_.tm);
  const double weight_reloads = ceil_div(s.oh, params_.tr) * ceil_div(s.ow, params_.tc);
  return s.in_bytes(dtype) * input_reloads + s.weight_bytes(dtype) * weight_reloads +
         s.out_bytes(dtype);
}

}  // namespace mars::accel
