#include "mars/accel/registry.h"

#include "mars/accel/superlip.h"
#include "mars/accel/systolic.h"
#include "mars/accel/winograd.h"
#include "mars/util/error.h"

namespace mars::accel {

DesignId DesignRegistry::add(std::unique_ptr<AcceleratorDesign> design) {
  MARS_CHECK_ARG(design != nullptr, "cannot register a null design");
  MARS_CHECK_ARG(find(design->name()) == kInvalidDesign,
                 "duplicate design name '" << design->name() << "'");
  designs_.push_back(std::move(design));
  return static_cast<DesignId>(designs_.size() - 1);
}

const AcceleratorDesign& DesignRegistry::design(DesignId id) const {
  MARS_CHECK_ARG(id >= 0 && id < size(), "design id " << id << " out of range");
  return *designs_[static_cast<std::size_t>(id)];
}

DesignId DesignRegistry::find(const std::string& name) const {
  for (DesignId id = 0; id < size(); ++id) {
    if (designs_[static_cast<std::size_t>(id)]->name() == name) return id;
  }
  return kInvalidDesign;
}

std::vector<DesignId> DesignRegistry::ids() const {
  std::vector<DesignId> out(static_cast<std::size_t>(size()));
  for (DesignId id = 0; id < size(); ++id) out[static_cast<std::size_t>(id)] = id;
  return out;
}

DesignRegistry table2_designs() {
  DesignRegistry registry;
  registry.add(std::make_unique<SuperLipDesign>());
  registry.add(std::make_unique<SystolicDesign>());
  registry.add(std::make_unique<WinogradDesign>());
  return registry;
}

DesignRegistry h2h_designs() {
  // Four direct-convolution designs with different tiling preferences
  // (channel-heavy vs spatial-heavy), mirroring H2H's testbed of same-class
  // FPGA accelerators: heterogeneous per-layer winners without the
  // catastrophic worst cases a Winograd engine shows on 1x1 layers (a
  // mixed fixed-design set stalls for its slowest member, so one
  // pathological design would dominate every mapping).
  DesignRegistry registry;
  registry.add(std::make_unique<SuperLipDesign>(
      SuperLipParams{64, 7, 7, 14, 96.0, megahertz(200)}, "SuperLIP-64x7"));
  registry.add(std::make_unique<SuperLipDesign>(
      SuperLipParams{32, 16, 7, 7, 96.0, megahertz(200)}, "SuperLIP-32x16"));
  registry.add(std::make_unique<SystolicDesign>(
      SystolicParams{11, 13, 8, megahertz(200)}, "Systolic-11x13"));
  registry.add(std::make_unique<SuperLipDesign>(
      SuperLipParams{16, 28, 14, 14, 96.0, megahertz(200)}, "SuperLIP-16x28"));
  return registry;
}

}  // namespace mars::accel
