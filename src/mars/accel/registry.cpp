#include "mars/accel/registry.h"

#include "mars/accel/superlip.h"
#include "mars/accel/systolic.h"
#include "mars/accel/winograd.h"
#include "mars/util/error.h"
#include "mars/util/strings.h"

namespace mars::accel {

DesignId DesignRegistry::add(std::unique_ptr<AcceleratorDesign> design) {
  MARS_CHECK_ARG(design != nullptr, "cannot register a null design");
  MARS_CHECK_ARG(find(design->name()) == kInvalidDesign,
                 "duplicate design name '" << design->name() << "'");
  designs_.push_back(std::move(design));
  return static_cast<DesignId>(designs_.size() - 1);
}

const AcceleratorDesign& DesignRegistry::design(DesignId id) const {
  MARS_CHECK_ARG(id >= 0 && id < size(), "design id " << id << " out of range");
  return *designs_[static_cast<std::size_t>(id)];
}

DesignId DesignRegistry::find(const std::string& name) const {
  for (DesignId id = 0; id < size(); ++id) {
    if (designs_[static_cast<std::size_t>(id)]->name() == name) return id;
  }
  return kInvalidDesign;
}

std::vector<DesignId> DesignRegistry::ids() const {
  std::vector<DesignId> out(static_cast<std::size_t>(size()));
  for (DesignId id = 0; id < size(); ++id) out[static_cast<std::size_t>(id)] = id;
  return out;
}

DesignRegistry table2_designs() {
  DesignRegistry registry;
  registry.add(std::make_unique<SuperLipDesign>());
  registry.add(std::make_unique<SystolicDesign>());
  registry.add(std::make_unique<WinogradDesign>());
  return registry;
}

const std::vector<std::string>& table2_design_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    const DesignRegistry registry = table2_designs();
    for (DesignId id : registry.ids()) out.push_back(registry.design(id).name());
    return out;
  }();
  return names;
}

std::unique_ptr<AcceleratorDesign> make_table2_design(const std::string& name) {
  const std::vector<std::string>& names = table2_design_names();
  if (name == names[0]) return std::make_unique<SuperLipDesign>();
  if (name == names[1]) return std::make_unique<SystolicDesign>();
  if (name == names[2]) return std::make_unique<WinogradDesign>();
  MARS_CHECK_ARG(false, "unknown design '" << name << "' (valid: "
                                           << join(names, ", ") << ")");
  return nullptr;
}

DesignRegistry h2h_designs() {
  // Four direct-convolution designs with different tiling preferences
  // (channel-heavy vs spatial-heavy), mirroring H2H's testbed of same-class
  // FPGA accelerators: heterogeneous per-layer winners without the
  // catastrophic worst cases a Winograd engine shows on 1x1 layers (a
  // mixed fixed-design set stalls for its slowest member, so one
  // pathological design would dominate every mapping).
  DesignRegistry registry;
  registry.add(std::make_unique<SuperLipDesign>(
      SuperLipParams{64, 7, 7, 14, 96.0, megahertz(200)}, "SuperLIP-64x7"));
  registry.add(std::make_unique<SuperLipDesign>(
      SuperLipParams{32, 16, 7, 7, 96.0, megahertz(200)}, "SuperLIP-32x16"));
  registry.add(std::make_unique<SystolicDesign>(
      SystolicParams{11, 13, 8, megahertz(200)}, "Systolic-11x13"));
  registry.add(std::make_unique<SuperLipDesign>(
      SuperLipParams{16, 28, 14, 14, 96.0, megahertz(200)}, "SuperLIP-16x28"));
  return registry;
}

}  // namespace mars::accel
