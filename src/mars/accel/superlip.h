// Design 1: SuperLIP (Jiang et al., ACM TECS 2019) — classic loop-tiled CNN
// accelerator with tile sizes (Tm, Tn, Tr, Tc) over (Cout, Cin, H, W).
//
// Compute model: the engine executes one (Tm x Tn) MAC wavefront per cycle
// across a Tr x Tc output tile; a tile iteration therefore takes
// Tr*Tc*Kh*Kw cycles plus a fixed pipeline fill / buffer-swap overhead.
//
//   cycles = ceil(Cout/Tm) * ceil(Cin/Tn) * ceil(H/Tr) * ceil(W/Tc)
//            * (Tr*Tc*Kh*Kw + F)
//
// F (default 96) is the per-tile overhead — the published design is deeply
// pipelined, and tiny tiles (1x1 convolutions) cannot amortise the fill.
// DRAM model: inputs are re-fetched once per output-channel tile; weights
// once per spatial tile (standard for this buffer hierarchy).
//
// Table II instance: Tm,Tn,Tr,Tc = 64,7,7,14 @ 200 MHz → peak 448 MAC/cycle
// (the paper prints 438 PEs; we report the tiling product — see
// docs/DESIGN.md).
#pragma once

#include "mars/accel/design.h"

namespace mars::accel {

struct SuperLipParams {
  int tm = 64;  // output-channel tile
  int tn = 7;   // input-channel tile
  int tr = 7;   // output-row tile
  int tc = 14;  // output-column tile
  double tile_overhead = 96.0;
  Frequency frequency = megahertz(200);
};

class SuperLipDesign final : public AcceleratorDesign {
 public:
  explicit SuperLipDesign(const SuperLipParams& params = {},
                          std::string name = "SuperLIP");

  [[nodiscard]] const SuperLipParams& params() const { return params_; }

 protected:
  [[nodiscard]] double compute_cycles(const graph::ConvShape& shape) const override;
  [[nodiscard]] Bytes dram_traffic(const graph::ConvShape& shape,
                                   graph::DataType dtype) const override;

 private:
  SuperLipParams params_;
};

}  // namespace mars::accel
