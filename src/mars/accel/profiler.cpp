#include "mars/accel/profiler.h"

#include <algorithm>

#include "mars/util/error.h"

namespace mars::accel {

ProfileMatrix::ProfileMatrix(const DesignRegistry& registry,
                             const graph::ConvSpine& spine)
    : num_designs_(registry.size()), num_layers_(spine.size()) {
  MARS_CHECK_ARG(num_designs_ > 0, "profiling needs at least one design");
  profiles_.resize(static_cast<std::size_t>(num_designs_) *
                   static_cast<std::size_t>(num_layers_));
  for (DesignId d = 0; d < num_designs_; ++d) {
    const AcceleratorDesign& design = registry.design(d);
    for (int l = 0; l < num_layers_; ++l) {
      LayerProfile& profile =
          profiles_[static_cast<std::size_t>(d) * num_layers_ + l];
      const graph::ConvShape& shape = spine.node(l).shape;
      profile.cycles = design.conv_cycles(shape, spine.dtype()).total();
      profile.utilization = design.utilization(shape, spine.dtype());
    }
  }
}

const LayerProfile& ProfileMatrix::at(DesignId design, int layer) const {
  MARS_CHECK_ARG(design >= 0 && design < num_designs_, "design out of range");
  MARS_CHECK_ARG(layer >= 0 && layer < num_layers_, "layer out of range");
  return profiles_[static_cast<std::size_t>(design) * num_layers_ + layer];
}

DesignId ProfileMatrix::best_design(int layer) const {
  DesignId best = 0;
  for (DesignId d = 1; d < num_designs_; ++d) {
    if (at(d, layer).cycles < at(best, layer).cycles) best = d;
  }
  return best;
}

std::vector<double> ProfileMatrix::design_scores() const {
  double best_total = 0.0;
  for (int l = 0; l < num_layers_; ++l) {
    best_total += at(best_design(l), l).cycles;
  }
  std::vector<double> scores(static_cast<std::size_t>(num_designs_));
  for (DesignId d = 0; d < num_designs_; ++d) {
    scores[static_cast<std::size_t>(d)] = best_total / total_cycles(d);
  }
  return scores;
}

double ProfileMatrix::total_cycles(DesignId design) const {
  double total = 0.0;
  for (int l = 0; l < num_layers_; ++l) total += at(design, l).cycles;
  return total;
}

}  // namespace mars::accel
