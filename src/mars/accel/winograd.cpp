#include "mars/accel/winograd.h"

#include <algorithm>

#include <sstream>

#include "mars/util/error.h"

namespace mars::accel {
namespace {

std::string format_params(const WinogradParams& p) {
  // Table II order (n, Pn, Pm) = (6, 2, 8): we map the table's Pn to the
  // output-channel parallelism (pm) and Pm to the input-channel
  // parallelism (pn) — see the header comment.
  std::ostringstream os;
  os << "n, Pn, Pm: " << p.tile_n << ", " << p.pm << ", " << p.pn;
  return os.str();
}

double effective_peak(const WinogradParams& p) {
  const int m = p.tile_n - 2;  // output tile edge for r = 3
  return static_cast<double>(p.pn) * p.pm * m * m * 9.0 / p.cycles_per_tile;
}

}  // namespace

WinogradDesign::WinogradDesign(const WinogradParams& params, std::string name)
    : AcceleratorDesign(std::move(name), params.frequency, effective_peak(params),
                        format_params(params),
                        params.tile_n * params.tile_n * params.pn * params.pm),
      params_(params) {
  MARS_CHECK_ARG(params.tile_n > 2, "Winograd tile must exceed the 3x3 kernel");
  MARS_CHECK_ARG(params.pn > 0 && params.pm > 0, "Pn/Pm must be positive");
  MARS_CHECK_ARG(params.cycles_per_tile > 0.0, "cycles_per_tile must be positive");
  // Priced per *effective* MAC: F(4,3) does ~2.25x fewer multiplies than
  // it is credited for, so the per-effective-MAC energy is the lowest of
  // the menu (transform adders cost far less than the saved multiplies).
  set_energy_per_mac(picojoules(2.1));
}

bool WinogradDesign::winograd_applicable(const graph::ConvShape& shape) {
  return shape.kh == 3 && shape.kw == 3 && shape.stride_h == 1 &&
         shape.stride_w == 1;
}

double WinogradDesign::compute_cycles(const graph::ConvShape& s) const {
  const int m = params_.tile_n - 2;
  const double spatial_tiles = ceil_div(s.oh, m) * ceil_div(s.ow, m);
  const double tile_batches =
      ceil_div(s.cout, params_.pm) * ceil_div(s.cin, params_.pn) * spatial_tiles;
  if (winograd_applicable(s)) {
    const double ewmm = tile_batches * params_.cycles_per_tile;
    // Transform pipelines run concurrently with the EWMM array but have
    // their own throughput: the inverse transform emits a 4x4 output tile
    // over kOutTransform cycles per output-channel group, the input
    // transform ingests a 6x6 tile over kInTransform cycles per
    // input-channel group. Shallow-Cin layers (network stems) cannot
    // amortise the inverse transforms — the reason the paper's search
    // keeps design 3 off the first layers.
    constexpr double kOutTransform = 8.0;
    constexpr double kInTransform = 2.0;
    const double out_tf = spatial_tiles * ceil_div(s.cout, params_.pm) * kOutTransform;
    const double in_tf = spatial_tiles * ceil_div(s.cin, params_.pn) * kInTransform;
    return std::max({ewmm, out_tf, in_tf});
  }
  // Direct fallback: the tile datapath must grind through the kernel
  // positions serially — crippling for 1x1 and strided convolutions.
  return tile_batches * params_.cycles_per_tile * s.kh * s.kw;
}

Bytes WinogradDesign::dram_traffic(const graph::ConvShape& s,
                                   graph::DataType dtype) const {
  const int m = params_.tile_n - 2;
  const double overlap =
      static_cast<double>(params_.tile_n) * params_.tile_n / (m * m);
  return s.in_bytes(dtype) * overlap + s.weight_bytes(dtype) + s.out_bytes(dtype);
}

}  // namespace mars::accel
