// Accelerator design interface and the shared analytical-model scaffolding.
//
// The paper evaluates three published FPGA CNN accelerators through their
// analytical performance models (Table II). Each design reports the cycle
// count for a convolution described by the canonical six-dim loop nest
// (ConvShape). Our models combine
//   * a compute term from the design's published tiling/unrolling formula
//     (ceil-division charges for fragmentation — the effect that makes
//     different designs prefer different layer shapes), and
//   * a DRAM roofline term (tile-induced re-reads / im2col amplification
//     over the accelerator's local memory bandwidth),
// and take the max, modelling double-buffered overlap of compute and DMA.
//
// Where the cited papers under-specify a constant we calibrate so that the
// three designs have comparable theoretical peaks (the paper's stated
// intent: "similar numbers of PEs"); every such choice is flagged in
// docs/DESIGN.md and docs/EXPERIMENTS.md.
//
// Units convention (util/units.h): cycle counts are raw doubles at this
// design's frequency() and convert to wall-clock only via
// Frequency::time_for; traffic is Bytes; latencies returned to callers are
// Seconds. Designs are immutable after construction (set_dram_bandwidth is
// topology setup, not per-query state), non-copyable, and owned by the
// DesignRegistry via unique_ptr — everything else holds DesignId handles.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mars/graph/spine.h"
#include "mars/util/units.h"

namespace mars::accel {

using DesignId = int;
inline constexpr DesignId kInvalidDesign = -1;

/// Compute-vs-memory split of a layer's execution on one accelerator.
struct CycleBreakdown {
  double compute = 0.0;  // cycles the PE array is busy
  double dram = 0.0;     // cycles the DRAM interface is busy

  /// Double-buffered execution: the slower engine dominates.
  [[nodiscard]] double total() const { return compute > dram ? compute : dram; }
};

/// Abstract analytical model of one configurable accelerator design.
class AcceleratorDesign {
 public:
  /// `pe_count` defaults to round(peak_macs_per_cycle) when negative.
  AcceleratorDesign(std::string name, Frequency frequency, double peak_macs_per_cycle,
                    std::string parameter_string, int pe_count = -1);
  virtual ~AcceleratorDesign() = default;
  AcceleratorDesign(const AcceleratorDesign&) = delete;
  AcceleratorDesign& operator=(const AcceleratorDesign&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Frequency frequency() const { return frequency_; }
  /// Peak multiply-accumulates per cycle (effective; Winograd exceeds its
  /// physical multiplier count through arithmetic amplification).
  [[nodiscard]] double peak_macs_per_cycle() const { return peak_macs_per_cycle_; }
  /// Physical PE/multiplier count (Table II's "#PEs" column).
  [[nodiscard]] int pe_count() const { return pe_count_; }
  /// Human-readable design parameters (Table II's last column).
  [[nodiscard]] const std::string& parameter_string() const { return parameters_; }

  /// Local DRAM bandwidth in bytes per accelerator cycle (roofline budget).
  [[nodiscard]] double dram_bytes_per_cycle() const { return dram_bytes_per_cycle_; }
  void set_dram_bandwidth(Bandwidth bw);

  /// Relative silicon/board cost of instantiating this design on one card
  /// (dimensionless; the Table II designs land near 1.0). Defaults to
  /// pe_count / 512 — cost scales with the PE array, the dominant resource
  /// in all three published designs. Like set_dram_bandwidth this is
  /// design-space setup, not per-query state.
  [[nodiscard]] double area_cost() const { return area_cost_; }
  void set_area_cost(double cost);

  /// Energy per (effective) multiply-accumulate. Defaults to 3 pJ — a
  /// mid-range FPGA DSP-slice estimate; subclasses calibrate per family
  /// (docs/EXPLORE.md). Winograd charges per *effective* MAC, so its
  /// arithmetic amplification shows up as a lower per-MAC price.
  [[nodiscard]] Joules energy_per_mac() const { return energy_per_mac_; }
  void set_energy_per_mac(Joules energy);

  /// Analytical cycle count for one (possibly sharded) convolution.
  [[nodiscard]] CycleBreakdown conv_cycles(const graph::ConvShape& shape,
                                           graph::DataType dtype) const;

  /// Wall-clock latency of `shape` on this design.
  [[nodiscard]] Seconds conv_latency(const graph::ConvShape& shape,
                                     graph::DataType dtype) const;

  /// Fraction of peak MACs achieved on `shape` (diagnostic; in (0, 1]).
  [[nodiscard]] double utilization(const graph::ConvShape& shape,
                                   graph::DataType dtype) const;

  /// Cycles to stream `bytes` through the local DRAM interface (fused ops).
  [[nodiscard]] double dram_cycles(Bytes bytes) const;

 protected:
  /// The design-specific compute formula (no roofline).
  [[nodiscard]] virtual double compute_cycles(const graph::ConvShape& shape) const = 0;
  /// DRAM traffic the design incurs for `shape` (re-reads included).
  [[nodiscard]] virtual Bytes dram_traffic(const graph::ConvShape& shape,
                                           graph::DataType dtype) const;

  /// Shared fallback for matrix-vector layers (FC): all three designs run
  /// GEMV on their MAC array at `kGemvEfficiency`; these layers are
  /// invariably memory-bound on the weight stream.
  [[nodiscard]] double gemv_compute_cycles(const graph::ConvShape& shape) const;
  [[nodiscard]] static bool is_gemv(const graph::ConvShape& shape);

 private:
  std::string name_;
  Frequency frequency_;
  double peak_macs_per_cycle_;
  std::string parameters_;
  double dram_bytes_per_cycle_;
  int pe_count_;
  double area_cost_;
  Joules energy_per_mac_;
};

/// Ceiling division for tiling formulas (exact for the integer loop bounds
/// these models see).
[[nodiscard]] double ceil_div(double a, double b);

}  // namespace mars::accel
