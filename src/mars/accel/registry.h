// Design registry: the menu of accelerator designs an adaptive system can
// configure (the paper's set Design = {d1, ..., dM}).
//
// The registry owns its designs (unique_ptr); the rest of the system
// refers to them by dense DesignId. This is the extension point for new
// accelerator models: subclass AcceleratorDesign, add() it next to the
// built-ins, and the profiler, both GA levels and the simulator pick it
// up unchanged (docs/ARCHITECTURE.md, examples/custom_accelerator.cpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mars/accel/design.h"

namespace mars::accel {

class DesignRegistry {
 public:
  DesignRegistry() = default;
  DesignRegistry(DesignRegistry&&) = default;
  DesignRegistry& operator=(DesignRegistry&&) = default;

  /// Registers a design and returns its id (dense, starting at 0).
  DesignId add(std::unique_ptr<AcceleratorDesign> design);

  [[nodiscard]] int size() const { return static_cast<int>(designs_.size()); }
  [[nodiscard]] const AcceleratorDesign& design(DesignId id) const;
  [[nodiscard]] DesignId find(const std::string& name) const;  // kInvalidDesign if absent

  [[nodiscard]] std::vector<DesignId> ids() const;

 private:
  std::vector<std::unique_ptr<AcceleratorDesign>> designs_;
};

/// The paper's Table II menu: SuperLIP (d1), systolic GEMM (d2),
/// Winograd (d3), all at 200 MHz.
[[nodiscard]] DesignRegistry table2_designs();

/// The names in table2_designs(), in registry order.
[[nodiscard]] const std::vector<std::string>& table2_design_names();

/// Builds one Table II design by name (default parameters). The hardware
/// design-space search uses this to assemble per-point menu subsets.
/// Throws InvalidArgument naming the unknown design and the valid names.
[[nodiscard]] std::unique_ptr<AcceleratorDesign> make_table2_design(
    const std::string& name);

/// A heterogeneous fixed-design menu in the spirit of H2H's testbed (used
/// by the Table IV comparison): four distinct designs covering
/// spatial-tiled, GEMM, Winograd and a narrow SuperLIP variant.
[[nodiscard]] DesignRegistry h2h_designs();

}  // namespace mars::accel
