// Parallelism-strategy representation (Section IV).
//
// A layer's nested loop has six dimensions (Cout, Cin, H, W, Kh, Kw). A
// strategy names
//   * ES — exclusive shards: a set of dims with per-dim split ways whose
//     product equals the accelerator-set size p; each accelerator owns one
//     coordinate of the shard grid, statically.
//   * SS — at most one shared-shard dim (not in ES): the dim is cut into p
//     shards that rotate around a logical ring; computation proceeds in p
//     phases separated by neighbour transfers.
//
// Reduction dims (Cin, Kh, Kw) in ES produce partial sums that must be
// All-Reduced; the same dims under SS accumulate locally instead (the
// rotation serialises the reduction) — one of the latency trade-offs the
// search explores.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "mars/graph/spine.h"

namespace mars::parallel {

enum class Dim : std::uint8_t { kCout = 0, kCin, kH, kW, kKh, kKw };

inline constexpr std::array<Dim, 6> kAllDims = {Dim::kCout, Dim::kCin, Dim::kH,
                                                Dim::kW,    Dim::kKh,  Dim::kKw};
inline constexpr int kNumDims = 6;

[[nodiscard]] std::string to_string(Dim dim);

/// Inverse of to_string(Dim): "Cout" -> Dim::kCout, ...; nullopt for
/// anything else (deserialisers turn that into their own error).
[[nodiscard]] std::optional<Dim> dim_from_string(const std::string& name);

/// Cin / Kh / Kw contribute to the accumulation; sharding them exclusively
/// leaves partial sums spread across accelerators.
[[nodiscard]] constexpr bool is_reduction_dim(Dim dim) {
  return dim == Dim::kCin || dim == Dim::kKh || dim == Dim::kKw;
}

/// Loop bound of `dim` in `shape`.
[[nodiscard]] int dim_extent(const graph::ConvShape& shape, Dim dim);

/// True when `dim` indexes the given tensor.
[[nodiscard]] constexpr bool dim_in_weight(Dim dim) {
  return dim == Dim::kCout || dim == Dim::kCin || dim == Dim::kKh || dim == Dim::kKw;
}
[[nodiscard]] constexpr bool dim_in_input(Dim dim) {
  return dim == Dim::kCin || dim == Dim::kH || dim == Dim::kW;
}
[[nodiscard]] constexpr bool dim_in_output(Dim dim) {
  return dim == Dim::kCout || dim == Dim::kH || dim == Dim::kW;
}

struct DimSplit {
  Dim dim = Dim::kCout;
  int ways = 1;

  friend bool operator==(const DimSplit&, const DimSplit&) = default;
};

class Strategy {
 public:
  /// The default strategy <N, N, ...>: no partitioning (p must be 1).
  Strategy() = default;

  /// ES splits (each ways >= 2, dims distinct) and optional SS dim (not
  /// among the ES dims). Throws InvalidArgument on malformed input.
  Strategy(std::vector<DimSplit> es, std::optional<Dim> ss);

  [[nodiscard]] const std::vector<DimSplit>& es() const { return es_; }
  [[nodiscard]] const std::optional<Dim>& ss() const { return ss_; }
  [[nodiscard]] bool has_ss() const { return ss_.has_value(); }

  /// Product of ES ways — the number of statically-partitioned shards;
  /// must equal the accelerator-set size for a valid execution.
  [[nodiscard]] int es_ways() const;

  /// ES ways restricted to a tensor's dims (shard denominator of that
  /// tensor under the static grid).
  [[nodiscard]] int es_ways_in_weight() const;
  [[nodiscard]] int es_ways_in_input() const;
  [[nodiscard]] int es_ways_in_output() const;

  /// Product of ways over reduction dims in ES (the All-Reduce group size).
  [[nodiscard]] int reduction_ways() const;

  /// Split ways of `dim` in ES (1 when absent).
  [[nodiscard]] int ways_of(Dim dim) const;

  /// True when every ES split fits its loop bound and the SS dim (if any)
  /// can be cut into `p` shards.
  [[nodiscard]] bool fits(const graph::ConvShape& shape, int p) const;

  /// Paper-style rendering: "ES={Cin,W}, SS={Cout}" (ways annotated when a
  /// dim is split more than the minimal 2).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Strategy&, const Strategy&) = default;

 private:
  std::vector<DimSplit> es_;
  std::optional<Dim> ss_;
};

/// All factorizations of p into at most `max_dims` ordered factors >= 2
/// (e.g. 4 -> {4}, {2,2}), deterministic order.
[[nodiscard]] std::vector<std::vector<int>> factorizations(int p, int max_dims = 3);

/// Enumerates every strategy valid for `shape` on `p` accelerators
/// (ES grids over distinct dims whose ways fit the loop bounds, optionally
/// augmented with each feasible SS dim). For p == 1 returns just the
/// default strategy. Deterministic order; used by exhaustive baselines and
/// property tests.
[[nodiscard]] std::vector<Strategy> enumerate_strategies(
    const graph::ConvShape& shape, int p, int max_es_dims = 3);

}  // namespace mars::parallel
