// Shard math: what one strategy means for one layer on p accelerators.
//
// A ShardingPlan captures everything the cost models need: per-accelerator
// per-phase loop bounds, ring-rotation traffic, All-Reduce requirements,
// resident memory, and the produced/required activation shardings used to
// price resharding between consecutive layers.
#pragma once

#include "mars/graph/spine.h"
#include "mars/parallel/strategy.h"
#include "mars/util/units.h"

namespace mars::parallel {

/// How an activation tensor (C x H x W) is statically sharded across a set.
/// ways == 1 means the dim is unsharded (every accelerator sees all of it).
struct ActivationSharding {
  int c_ways = 1;
  int h_ways = 1;
  int w_ways = 1;

  [[nodiscard]] double fraction() const {
    return 1.0 / (static_cast<double>(c_ways) * h_ways * w_ways);
  }
  friend bool operator==(const ActivationSharding&,
                         const ActivationSharding&) = default;
};

struct ShardingPlan {
  int p = 1;                // accelerator-set size
  graph::ConvShape local;   // per-accelerator, per-phase loop bounds
  int phases = 1;           // p when SS is used, otherwise 1

  // Ring rotation (SS): bytes each accelerator forwards at each phase
  // boundary; `rotate_input` says whether the rotating tensor is the input
  // feature map (SS on H/W) or the weights (SS on Cout/Cin/Kh/Kw).
  Bytes ring_hop_bytes{};
  bool rotate_input = false;

  // All-Reduce of partial sums (reduction dims in ES): subgroup size and
  // the per-subgroup output volume to reduce.
  int allreduce_group = 1;
  Bytes allreduce_bytes{};

  // Per-accelerator DRAM residency.
  Bytes weight_resident{};  // includes 2x buffering of a rotating shard
  Bytes input_live{};
  Bytes output_live{};

  // Static shardings seen by the neighbouring layers.
  ActivationSharding produced;  // of this layer's output (C = Cout)
  ActivationSharding required;  // of this layer's input  (C = Cin)

  /// Compute cycles summed over phases, using `design_cycles_per_phase`
  /// (what an accelerator design reports for `local`).
  [[nodiscard]] double total_compute_cycles(double design_cycles_per_phase) const {
    return design_cycles_per_phase * phases;
  }
};

/// Builds the plan. `strategy.fits(shape, p)` must hold.
[[nodiscard]] ShardingPlan make_plan(const graph::ConvShape& shape,
                                     graph::DataType dtype,
                                     const Strategy& strategy, int p);

}  // namespace mars::parallel
