// Off-chip DRAM footprint validation (the paper's strategy-validity rule:
// partitioned tensors must fit the accelerator set's DRAM).
#pragma once

#include <vector>

#include "mars/graph/spine.h"
#include "mars/parallel/sharding.h"

namespace mars::parallel {

struct MemoryFootprint {
  /// Weights resident for the whole layer range (pre-loaded once).
  Bytes weights{};
  /// Worst-case live activations: a layer's input + output shards, its
  /// rotation buffers, plus residual tensors spanning the layer.
  Bytes peak_activation{};

  [[nodiscard]] Bytes total() const { return weights + peak_activation; }
  [[nodiscard]] bool fits(Bytes dram) const { return total() <= dram; }
};

/// Footprint of executing spine layers [begin, end) with the given plans
/// (plans[i] belongs to spine layer begin + i) on each member accelerator.
/// Residual tensors that span a layer are charged unsharded (conservative:
/// their producer's layout is not tracked across sets).
[[nodiscard]] MemoryFootprint footprint(const graph::ConvSpine& spine, int begin,
                                        int end,
                                        const std::vector<ShardingPlan>& plans);

}  // namespace mars::parallel
