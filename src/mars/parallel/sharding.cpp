#include "mars/parallel/sharding.h"

#include "mars/util/error.h"

namespace mars::parallel {
namespace {

int ceil_split(int extent, int ways) { return (extent + ways - 1) / ways; }

}  // namespace

ShardingPlan make_plan(const graph::ConvShape& shape, graph::DataType dtype,
                       const Strategy& strategy, int p) {
  MARS_CHECK_ARG(p >= 1, "set size must be positive");
  MARS_CHECK_ARG(strategy.fits(shape, p),
                 "strategy " << strategy.to_string() << " does not fit "
                             << graph::to_string(shape) << " on " << p
                             << " accelerators");

  ShardingPlan plan;
  plan.p = p;

  // Per-accelerator, per-phase loop bounds: ES dims divide by their ways,
  // the SS dim divides by p (one shard per phase).
  graph::ConvShape local = shape;
  auto bound = [&](Dim dim) {
    int extent = dim_extent(shape, dim);
    int ways = strategy.ways_of(dim);
    if (strategy.ss() == dim) ways = p;
    return ceil_split(extent, ways);
  };
  local.cout = bound(Dim::kCout);
  local.cin = bound(Dim::kCin);
  local.oh = bound(Dim::kH);
  local.ow = bound(Dim::kW);
  local.kh = bound(Dim::kKh);
  local.kw = bound(Dim::kKw);
  plan.local = local;

  plan.phases = strategy.has_ss() ? p : 1;

  const Bytes weight = shape.weight_bytes(dtype);
  const Bytes input = shape.in_bytes(dtype);
  const Bytes output = shape.out_bytes(dtype);
  const double es_w = strategy.es_ways_in_weight();
  const double es_in = strategy.es_ways_in_input();
  const double es_out = strategy.es_ways_in_output();

  if (strategy.has_ss()) {
    const Dim ss = *strategy.ss();
    plan.rotate_input = (ss == Dim::kH || ss == Dim::kW);
    if (plan.rotate_input) {
      plan.ring_hop_bytes = input / (es_in * p);
    } else {
      plan.ring_hop_bytes = weight / (es_w * p);
    }
  }

  // All-Reduce: reduction dims sharded exclusively leave partial sums in
  // subgroups of size r; SS reduction dims accumulate locally instead.
  plan.allreduce_group = strategy.reduction_ways();
  if (plan.allreduce_group > 1) {
    plan.allreduce_bytes = output / es_out;
  }

  // DRAM residency per accelerator.
  double weight_frac = 1.0 / es_w;
  if (strategy.has_ss() && !plan.rotate_input) {
    weight_frac = 2.0 / (es_w * p);  // rotating shard, double buffered
  }
  plan.weight_resident = weight * weight_frac;

  double input_frac = 1.0 / es_in;
  if (strategy.has_ss()) {
    const Dim ss = *strategy.ss();
    if (plan.rotate_input) {
      input_frac = 2.0 / (es_in * p);  // rotating input shard
    } else if (ss == Dim::kCin) {
      // Weights rotate through Cin; the input stays full along Cin.
      input_frac = 1.0 / es_in;
    }
  }
  plan.input_live = input * input_frac;
  plan.output_live = output / es_out;  // SS dims accumulate to full extent

  // Static shardings for resharding.
  plan.produced.c_ways = strategy.ways_of(Dim::kCout);
  plan.produced.h_ways = strategy.ways_of(Dim::kH);
  plan.produced.w_ways = strategy.ways_of(Dim::kW);

  plan.required.c_ways = strategy.ways_of(Dim::kCin);
  plan.required.h_ways = strategy.ways_of(Dim::kH);
  plan.required.w_ways = strategy.ways_of(Dim::kW);
  if (strategy.has_ss()) {
    // The SS dim's input-side shards start p-way distributed; the ring
    // delivers the rest during execution.
    switch (*strategy.ss()) {
      case Dim::kCin:
        plan.required.c_ways = p;
        break;
      case Dim::kH:
        plan.required.h_ways = p;
        break;
      case Dim::kW:
        plan.required.w_ways = p;
        break;
      default:
        break;  // Cout/Kh/Kw SS does not change the input-side layout
    }
  }
  return plan;
}

}  // namespace mars::parallel
