#include "mars/parallel/strategy.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "mars/util/error.h"

namespace mars::parallel {

std::string to_string(Dim dim) {
  switch (dim) {
    case Dim::kCout:
      return "Cout";
    case Dim::kCin:
      return "Cin";
    case Dim::kH:
      return "H";
    case Dim::kW:
      return "W";
    case Dim::kKh:
      return "Kh";
    case Dim::kKw:
      return "Kw";
  }
  return "?";
}

std::optional<Dim> dim_from_string(const std::string& name) {
  for (Dim dim : kAllDims) {
    if (to_string(dim) == name) return dim;
  }
  return std::nullopt;
}

int dim_extent(const graph::ConvShape& shape, Dim dim) {
  switch (dim) {
    case Dim::kCout:
      return shape.cout;
    case Dim::kCin:
      return shape.cin;
    case Dim::kH:
      return shape.oh;
    case Dim::kW:
      return shape.ow;
    case Dim::kKh:
      return shape.kh;
    case Dim::kKw:
      return shape.kw;
  }
  return 0;
}

Strategy::Strategy(std::vector<DimSplit> es, std::optional<Dim> ss)
    : es_(std::move(es)), ss_(ss) {
  for (std::size_t i = 0; i < es_.size(); ++i) {
    MARS_CHECK_ARG(es_[i].ways >= 2,
                   "ES split on " << parallel::to_string(es_[i].dim)
                                  << " needs >= 2 ways");
    for (std::size_t j = i + 1; j < es_.size(); ++j) {
      MARS_CHECK_ARG(es_[i].dim != es_[j].dim,
                     "duplicate ES dim " << parallel::to_string(es_[i].dim));
    }
    if (ss_.has_value()) {
      MARS_CHECK_ARG(es_[i].dim != *ss_,
                     "SS dim " << parallel::to_string(*ss_) << " also in ES");
    }
  }
}

int Strategy::es_ways() const {
  int ways = 1;
  for (const DimSplit& split : es_) ways *= split.ways;
  return ways;
}

namespace {

template <typename Pred>
int ways_matching(const std::vector<DimSplit>& es, Pred pred) {
  int ways = 1;
  for (const DimSplit& split : es) {
    if (pred(split.dim)) ways *= split.ways;
  }
  return ways;
}

}  // namespace

int Strategy::es_ways_in_weight() const {
  return ways_matching(es_, [](Dim d) { return dim_in_weight(d); });
}

int Strategy::es_ways_in_input() const {
  return ways_matching(es_, [](Dim d) { return dim_in_input(d); });
}

int Strategy::es_ways_in_output() const {
  return ways_matching(es_, [](Dim d) { return dim_in_output(d); });
}

int Strategy::reduction_ways() const {
  return ways_matching(es_, [](Dim d) { return is_reduction_dim(d); });
}

int Strategy::ways_of(Dim dim) const {
  for (const DimSplit& split : es_) {
    if (split.dim == dim) return split.ways;
  }
  return 1;
}

bool Strategy::fits(const graph::ConvShape& shape, int p) const {
  if (es_ways() != p) return false;
  for (const DimSplit& split : es_) {
    if (dim_extent(shape, split.dim) < split.ways) return false;
  }
  if (ss_.has_value()) {
    if (p < 2) return false;
    if (dim_extent(shape, *ss_) < p) return false;
  }
  return true;
}

std::string Strategy::to_string() const {
  std::ostringstream os;
  os << "ES={";
  for (std::size_t i = 0; i < es_.size(); ++i) {
    if (i != 0) os << ',';
    os << parallel::to_string(es_[i].dim);
    if (es_[i].ways != 2 || es_.size() == 1) os << ':' << es_[i].ways;
  }
  os << "}, SS={";
  if (ss_.has_value()) os << parallel::to_string(*ss_);
  os << '}';
  return os.str();
}

std::vector<std::vector<int>> factorizations(int p, int max_dims) {
  MARS_CHECK_ARG(p >= 1, "factorizations of non-positive p");
  std::vector<std::vector<int>> result;
  std::vector<int> current;
  // Non-increasing factor sequences, depth-first, deterministic.
  std::function<void(int, int)> recurse = [&](int remaining, int max_factor) {
    if (remaining == 1) {
      if (!current.empty()) result.push_back(current);
      return;
    }
    if (static_cast<int>(current.size()) == max_dims) return;
    for (int f = std::min(remaining, max_factor); f >= 2; --f) {
      if (remaining % f != 0) continue;
      current.push_back(f);
      recurse(remaining / f, f);
      current.pop_back();
    }
  };
  recurse(p, p);
  return result;
}

std::vector<Strategy> enumerate_strategies(const graph::ConvShape& shape, int p,
                                           int max_es_dims) {
  std::vector<Strategy> out;
  if (p <= 1) {
    out.emplace_back();
    return out;
  }

  for (const std::vector<int>& factors : factorizations(p, max_es_dims)) {
    // Assign the ordered factor list to ordered dim subsets (permutations
    // of distinct dims).
    std::vector<DimSplit> splits(factors.size());
    std::function<void(std::size_t, int)> assign = [&](std::size_t pos, int used) {
      if (pos == factors.size()) {
        Strategy base{splits, std::nullopt};
        if (base.fits(shape, p)) {
          out.push_back(base);
          for (Dim ss : kAllDims) {
            if ((used & (1 << static_cast<int>(ss))) != 0) continue;
            Strategy with_ss{splits, ss};
            if (with_ss.fits(shape, p)) out.push_back(with_ss);
          }
        }
        return;
      }
      for (Dim dim : kAllDims) {
        const int bit = 1 << static_cast<int>(dim);
        if ((used & bit) != 0) continue;
        if (dim_extent(shape, dim) < factors[pos]) continue;
        // Identical adjacent factors: enforce ascending dim order to avoid
        // emitting the same grid twice.
        if (pos > 0 && factors[pos] == factors[pos - 1] &&
            static_cast<int>(dim) < static_cast<int>(splits[pos - 1].dim)) {
          continue;
        }
        splits[pos] = {dim, factors[pos]};
        assign(pos + 1, used | bit);
      }
    };
    assign(0, 0);
  }
  return out;
}

}  // namespace mars::parallel
