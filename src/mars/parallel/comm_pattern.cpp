#include "mars/parallel/comm_pattern.h"

#include <algorithm>

#include "mars/util/error.h"

namespace mars::parallel {

ReshardCost reshard_cost(const ActivationSharding& produced,
                         const graph::ConvShape& consumer,
                         const ActivationSharding& required, Bytes consumer_in,
                         int p, graph::DataType dtype) {
  MARS_CHECK_ARG(p >= 1, "set size must be positive");
  ReshardCost cost;
  if (p == 1) return cost;

  // Coverage along one dim: aligned identical splits are free; otherwise
  // the accelerator holds 1/owned_ways of the dim and the needed slice is
  // assumed uniformly spread.
  auto coverage = [](int produced_ways, int required_ways) {
    if (produced_ways == required_ways) return 1.0;
    return 1.0 / static_cast<double>(produced_ways);
  };
  const double c = coverage(produced.c_ways, required.c_ways) *
                   coverage(produced.h_ways, required.h_ways) *
                   coverage(produced.w_ways, required.w_ways);

  const Bytes need_per_acc = consumer_in * required.fraction();
  cost.moved = need_per_acc * (1.0 - c) * static_cast<double>(p);

  // Kernel halos: aligned spatial splits still exchange boundary rows and
  // columns with both neighbours (overlap = kernel - stride, when positive).
  const int bpe = graph::bytes_per_element(dtype);
  if (required.h_ways > 1 && produced.h_ways == required.h_ways) {
    const int overlap = std::max(0, consumer.kh - consumer.stride_h);
    const double row_bytes = static_cast<double>(consumer.cin) /
                             required.c_ways * consumer.iw() / required.w_ways *
                             bpe;
    cost.halo += Bytes(2.0 * (required.h_ways - 1) * overlap * row_bytes);
  }
  if (required.w_ways > 1 && produced.w_ways == required.w_ways) {
    const int overlap = std::max(0, consumer.kw - consumer.stride_w);
    const double col_bytes = static_cast<double>(consumer.cin) /
                             required.c_ways * consumer.ih() / required.h_ways *
                             bpe;
    cost.halo += Bytes(2.0 * (required.w_ways - 1) * overlap * col_bytes);
  }
  cost.moved += cost.halo;
  return cost;
}

Bytes allreduce_wire_bytes(Bytes payload, int r) {
  MARS_CHECK_ARG(r >= 1, "All-Reduce group must be positive");
  if (r == 1) return Bytes(0.0);
  return payload * (2.0 * (r - 1) / r);
}

int allreduce_hops(int r) { return r <= 1 ? 0 : 2 * (r - 1); }

}  // namespace mars::parallel
