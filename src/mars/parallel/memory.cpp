#include "mars/parallel/memory.h"

#include <algorithm>

#include "mars/util/error.h"

namespace mars::parallel {

MemoryFootprint footprint(const graph::ConvSpine& spine, int begin, int end,
                          const std::vector<ShardingPlan>& plans) {
  MARS_CHECK_ARG(0 <= begin && begin < end && end <= spine.size(),
                 "layer range [" << begin << ", " << end << ") out of bounds");
  MARS_CHECK_ARG(plans.size() == static_cast<std::size_t>(end - begin),
                 "one plan per layer required");

  MemoryFootprint fp;
  for (int layer = begin; layer < end; ++layer) {
    const ShardingPlan& plan = plans[static_cast<std::size_t>(layer - begin)];
    fp.weights += plan.weight_resident;
    const Bytes live = plan.input_live + plan.output_live +
                       spine.spanning_bytes(layer);
    fp.peak_activation = std::max(fp.peak_activation, live);
  }
  return fp;
}

}  // namespace mars::parallel
