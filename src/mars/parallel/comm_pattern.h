// Communication-volume derivation between and within layers.
//
// Resharding: when layer t produces its output under one sharding and
// layer t+1 requires its input under another, each accelerator must fetch
// the part of its input shard it does not already hold. We price this with
// an alignment model: along each activation dim, an identical split
// contributes full coverage (only kernel halos move); a mismatched split
// contributes the producer's owned fraction (uniform-alignment
// approximation, documented in docs/DESIGN.md).
#pragma once

#include "mars/parallel/sharding.h"

namespace mars::parallel {

struct ReshardCost {
  /// Total bytes that must traverse intra-set links (all accelerators).
  Bytes moved{};
  /// Of which: halo rows/columns for aligned spatial splits.
  Bytes halo{};
};

/// Volume to redistribute between a producer layout and a consumer layer.
///
/// `produced`      sharding of the upstream activation (C = its Cout),
/// `consumer`      shape of the consuming layer (halo geometry),
/// `required`      the consumer's input sharding,
/// `consumer_in`   full input bytes of the consuming layer,
/// `p`             accelerator-set size.
[[nodiscard]] ReshardCost reshard_cost(const ActivationSharding& produced,
                                       const graph::ConvShape& consumer,
                                       const ActivationSharding& required,
                                       Bytes consumer_in, int p,
                                       graph::DataType dtype);

/// Ring All-Reduce volume per participating accelerator for `bytes` of
/// payload in a group of `r`: the classic 2*(r-1)/r factor.
[[nodiscard]] Bytes allreduce_wire_bytes(Bytes payload, int r);

/// Hops (phase boundaries) a ring All-Reduce of group `r` performs.
[[nodiscard]] int allreduce_hops(int r);

}  // namespace mars::parallel
