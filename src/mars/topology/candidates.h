// AccSet candidate generation (Section V heuristics).
//
// MARS prunes the exponential space of accelerator subsets by iteratively
// removing the lowest-bandwidth edges of G(Acc, BW): each removal round
// splits the graph into connected components with no internal bandwidth
// bottleneck, and those components — plus balanced recursive bisections of
// uniform cliques (to expose 2- and 4-accelerator sets inside an 8-clique
// group) — form the candidate AccSets the first-level GA chooses from.
#pragma once

#include <vector>

#include "mars/topology/topology.h"

namespace mars::topology {

/// A candidate accelerator set with its internal bottleneck bandwidth.
struct AccSetCandidate {
  AccMask mask = 0;
  Bandwidth internal_bw{};  // min spanning bandwidth (inf for singletons)
};

/// Generates the laminar candidate family. Deterministic: sorted by
/// descending size, then ascending lowest member id. Always contains the
/// full set, every bandwidth-level component, all bisection refinements and
/// all singletons.
[[nodiscard]] std::vector<AccSetCandidate> accset_candidates(const Topology& topo);

/// Greedy decode used by the GA: scanning candidates by descending gene
/// priority, keep each candidate disjoint from what is already taken until
/// the whole system is covered. `priorities` must align with `candidates`.
/// Returns the chosen partition (masks tile the topology exactly).
[[nodiscard]] std::vector<AccMask> decode_partition(
    const Topology& topo, const std::vector<AccSetCandidate>& candidates,
    const std::vector<double>& priorities);

}  // namespace mars::topology
