// AccSet candidate generation (Section V heuristics).
//
// MARS prunes the exponential space of accelerator subsets by iteratively
// removing the lowest-bandwidth edges of G(Acc, BW): each removal round
// splits the graph into connected components with no internal bandwidth
// bottleneck, and those components — plus balanced recursive bisections of
// uniform cliques (to expose 2- and 4-accelerator sets inside an 8-clique
// group) — form the candidate AccSets the first-level GA chooses from.
#pragma once

#include <vector>

#include "mars/topology/topology.h"

namespace mars::topology {

/// A candidate accelerator set with its internal bottleneck bandwidth.
struct AccSetCandidate {
  AccMask mask = 0;
  Bandwidth internal_bw{};  // min spanning bandwidth (inf for singletons)
};

/// Generates the laminar candidate family. Deterministic: sorted by
/// descending size, then ascending lowest member id. Always contains the
/// full set, every bandwidth-level component, all bisection refinements and
/// all singletons. `within` restricts the family to subsets of the given
/// placement mask (0 means the whole topology): components are computed on
/// the restricted vertex set, so a tenant confined to a fleet slice sees the
/// same hierarchy it would on a standalone copy of that slice.
[[nodiscard]] std::vector<AccSetCandidate> accset_candidates(const Topology& topo,
                                                             AccMask within = 0);

/// Greedy decode used by the GA: scanning candidates by descending gene
/// priority, keep each candidate disjoint from what is already taken until
/// the whole system is covered. `priorities` must align with `candidates`.
/// Returns the chosen partition (masks tile the topology exactly). `target`
/// restricts the decode to tiling the given placement mask (0 means the
/// whole topology); candidates reaching outside `target` are skipped.
[[nodiscard]] std::vector<AccMask> decode_partition(
    const Topology& topo, const std::vector<AccSetCandidate>& candidates,
    const std::vector<double>& priorities, AccMask target = 0);

}  // namespace mars::topology
