#include "mars/topology/candidates.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>

#include "mars/util/error.h"

namespace mars::topology {
namespace {

// Balanced bisection by member order; recurses while halves stay connected.
void bisect(const Topology& topo, AccMask mask, std::set<AccMask>& out) {
  const std::vector<AccId> members = mask_members(mask);
  if (members.size() < 2) return;
  const std::size_t half = members.size() / 2;
  AccMask lo = 0;
  AccMask hi = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    (i < half ? lo : hi) |= mask_of(members[i]);
  }
  for (AccMask part : {lo, hi}) {
    if (part == 0 || !topo.connected(part)) continue;
    if (out.insert(part).second) bisect(topo, part, out);
  }
}

}  // namespace

std::vector<AccSetCandidate> accset_candidates(const Topology& topo, AccMask within) {
  topo.validate();
  if (within == 0) within = topo.full_mask();
  MARS_CHECK_ARG((within & ~topo.full_mask()) == 0,
                 "placement mask reaches outside the topology");
  std::set<AccMask> masks;

  // Edge-removal hierarchy: after discarding all links slower than each
  // bandwidth level, record the surviving connected components.
  std::vector<Bandwidth> levels = topo.bandwidth_levels();
  std::vector<double> thresholds{0.0};
  for (Bandwidth level : levels) {
    // Strictly above this level: scale epsilon-up to express "removed".
    thresholds.push_back(level.bits_per_second() * (1.0 + 1e-9));
  }
  for (double threshold : thresholds) {
    for (AccMask component : topo.components_above(within, Bandwidth(threshold))) {
      masks.insert(component);
    }
  }

  // Refine multi-accelerator components by balanced bisection so that the
  // GA can pick 2- and 4-sized sets inside uniform groups.
  const std::set<AccMask> base = masks;
  for (AccMask mask : base) bisect(topo, mask, masks);

  // Singletons are always valid AccSets.
  for (AccId id = 0; id < topo.size(); ++id) {
    if ((mask_of(id) & within) != 0) masks.insert(mask_of(id));
  }

  std::vector<AccSetCandidate> candidates;
  candidates.reserve(masks.size());
  for (AccMask mask : masks) {
    AccSetCandidate candidate;
    candidate.mask = mask;
    candidate.internal_bw = topo.min_internal_bandwidth(mask);
    candidates.push_back(candidate);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const AccSetCandidate& a, const AccSetCandidate& b) {
              if (mask_count(a.mask) != mask_count(b.mask)) {
                return mask_count(a.mask) > mask_count(b.mask);
              }
              return a.mask < b.mask;
            });
  return candidates;
}

std::vector<AccMask> decode_partition(const Topology& topo,
                                      const std::vector<AccSetCandidate>& candidates,
                                      const std::vector<double>& priorities,
                                      AccMask target) {
  MARS_CHECK_ARG(priorities.size() == candidates.size(),
                 "one priority gene per candidate required");
  if (target == 0) target = topo.full_mask();
  MARS_CHECK_ARG((target & ~topo.full_mask()) == 0,
                 "placement mask reaches outside the topology");
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return priorities[a] > priorities[b];
  });

  std::vector<AccMask> partition;
  AccMask covered = 0;
  for (std::size_t index : order) {
    const AccMask mask = candidates[index].mask;
    if ((mask & ~target) != 0) continue;
    if ((mask & covered) != 0) continue;
    partition.push_back(mask);
    covered |= mask;
    if (covered == target) break;
  }
  MARS_CHECK(covered == target,
             "candidate family cannot tile the placement mask (missing singletons?)");
  // Deterministic presentation order: by lowest member id.
  std::sort(partition.begin(), partition.end(),
            [](AccMask a, AccMask b) { return (a & ~(a - 1)) < (b & ~(b - 1)); });
  return partition;
}

}  // namespace mars::topology
