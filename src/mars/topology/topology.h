// Multi-accelerator system topology: the graph G(Acc, BW) from Section III.
//
// Vertices are adaptively-configurable accelerators (with attached off-chip
// DRAM); weighted edges are direct accelerator-to-accelerator links; every
// accelerator additionally owns a (typically slower) link to the host.
// Accelerator subsets are passed around as 64-bit masks.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "mars/util/units.h"

namespace mars::topology {

using AccId = int;
/// Bit i set <=> accelerator i belongs to the set.
using AccMask = std::uint64_t;

[[nodiscard]] constexpr AccMask mask_of(AccId acc) {
  return AccMask{1} << static_cast<unsigned>(acc);
}
[[nodiscard]] constexpr int mask_count(AccMask mask) { return std::popcount(mask); }
[[nodiscard]] constexpr bool mask_contains(AccMask mask, AccId acc) {
  return (mask & mask_of(acc)) != 0;
}
[[nodiscard]] std::vector<AccId> mask_members(AccMask mask);
[[nodiscard]] std::string mask_to_string(AccMask mask);

struct Accelerator {
  AccId id = -1;
  std::string name;
  Bytes dram = gibibytes(1.0);
  Bandwidth host_bw = gbps(2.0);
  /// For fixed-design (non-adaptive) systems, the design permanently
  /// configured on this accelerator; -1 in adaptive systems.
  int fixed_design = -1;
};

class Topology {
 public:
  explicit Topology(std::string name);

  AccId add_accelerator(std::string name, Bytes dram, Bandwidth host_bw,
                        int fixed_design = -1);
  /// Symmetric direct link; re-connecting overwrites the bandwidth.
  void connect(AccId a, AccId b, Bandwidth bw);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int size() const { return static_cast<int>(accs_.size()); }
  [[nodiscard]] const Accelerator& accelerator(AccId id) const;
  [[nodiscard]] bool has_link(AccId a, AccId b) const;
  /// Bandwidth of the direct link (zero-bandwidth when absent).
  [[nodiscard]] Bandwidth link(AccId a, AccId b) const;
  [[nodiscard]] Bandwidth host_bandwidth(AccId id) const;
  [[nodiscard]] std::vector<AccId> neighbors(AccId id) const;

  /// Mask with every accelerator set.
  [[nodiscard]] AccMask full_mask() const;

  /// True when the accelerators in `mask` form a connected subgraph using
  /// only direct links between members.
  [[nodiscard]] bool connected(AccMask mask) const;

  /// Minimum direct-link bandwidth on a spanning structure inside `mask`;
  /// for a singleton returns an infinite-like sentinel (no internal comm).
  [[nodiscard]] Bandwidth min_internal_bandwidth(AccMask mask) const;

  /// Best single direct link between two disjoint sets (zero if none).
  [[nodiscard]] Bandwidth best_link_between(AccMask a, AccMask b) const;

  /// Smallest host bandwidth among members (host routes bottleneck there).
  [[nodiscard]] Bandwidth min_host_bandwidth(AccMask mask) const;

  /// All distinct direct-link bandwidth values, ascending.
  [[nodiscard]] std::vector<Bandwidth> bandwidth_levels() const;

  /// Connected components of the subgraph induced by `mask` after removing
  /// every direct link slower than `threshold`.
  [[nodiscard]] std::vector<AccMask> components_above(AccMask mask,
                                                      Bandwidth threshold) const;

  void validate() const;

 private:
  void check_id(AccId id) const;

  std::string name_;
  std::vector<Accelerator> accs_;
  std::vector<std::vector<double>> bw_;  // bits/s; 0 = no link
};

}  // namespace mars::topology
