#include "mars/topology/presets.h"

#include <algorithm>

#include "mars/util/error.h"

namespace mars::topology {

Topology grouped(int groups, int per_group, Bandwidth intra_bw, Bandwidth host_bw,
                 Bytes dram) {
  MARS_CHECK_ARG(groups > 0 && per_group > 0, "grouped() needs positive sizes");
  Topology topo("grouped-" + std::to_string(groups) + "x" +
                std::to_string(per_group));
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < per_group; ++i) {
      topo.add_accelerator("fpga" + std::to_string(g) + "_" + std::to_string(i),
                           dram, host_bw);
    }
  }
  for (int g = 0; g < groups; ++g) {
    const int base = g * per_group;
    for (int i = 0; i < per_group; ++i) {
      for (int j = i + 1; j < per_group; ++j) {
        topo.connect(base + i, base + j, intra_bw);
      }
    }
  }
  return topo;
}

Topology f1_16xlarge(Bandwidth group_bw, Bandwidth host_bw, Bytes dram) {
  Topology topo = grouped(2, 4, group_bw, host_bw, dram);
  return topo;
}

Topology h2h_cloud(int n, Bandwidth bw, int num_fixed_designs, Bytes dram) {
  MARS_CHECK_ARG(n > 0, "h2h_cloud() needs at least one accelerator");
  Topology topo("h2h-cloud-" + std::to_string(n));
  // Fixed designs in contiguous blocks (e.g. 8 accelerators / 4 designs ->
  // two adjacent cards per design), mirroring how racks are provisioned.
  const int block =
      num_fixed_designs > 0 ? std::max(1, n / num_fixed_designs) : 1;
  for (int i = 0; i < n; ++i) {
    const int fixed =
        num_fixed_designs > 0 ? std::min(i / block, num_fixed_designs - 1) : -1;
    topo.add_accelerator("fpga" + std::to_string(i), dram, bw, fixed);
  }
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) topo.connect(a, b, bw);
  }
  return topo;
}

Topology ring(int n, Bandwidth bw, Bandwidth host_bw, Bytes dram) {
  MARS_CHECK_ARG(n >= 2, "ring() needs at least two accelerators");
  Topology topo("ring-" + std::to_string(n));
  for (int i = 0; i < n; ++i) {
    topo.add_accelerator("acc" + std::to_string(i), dram, host_bw);
  }
  for (int i = 0; i < n; ++i) topo.connect(i, (i + 1) % n, bw);
  return topo;
}

Topology fully_connected(int n, Bandwidth bw, Bandwidth host_bw, Bytes dram) {
  MARS_CHECK_ARG(n > 0, "fully_connected() needs at least one accelerator");
  Topology topo("clique-" + std::to_string(n));
  for (int i = 0; i < n; ++i) {
    topo.add_accelerator("acc" + std::to_string(i), dram, host_bw);
  }
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) topo.connect(a, b, bw);
  }
  return topo;
}

}  // namespace mars::topology
