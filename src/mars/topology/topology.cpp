#include "mars/topology/topology.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "mars/util/error.h"

namespace mars::topology {

std::vector<AccId> mask_members(AccMask mask) {
  std::vector<AccId> members;
  members.reserve(static_cast<std::size_t>(mask_count(mask)));
  for (AccId id = 0; id < 64; ++id) {
    if (mask_contains(mask, id)) members.push_back(id);
  }
  return members;
}

std::string mask_to_string(AccMask mask) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (AccId id : mask_members(mask)) {
    if (!first) os << ',';
    os << id;
    first = false;
  }
  os << '}';
  return os.str();
}

Topology::Topology(std::string name) : name_(std::move(name)) {
  MARS_CHECK_ARG(!name_.empty(), "topology needs a name");
}

AccId Topology::add_accelerator(std::string name, Bytes dram, Bandwidth host_bw,
                                int fixed_design) {
  MARS_CHECK_ARG(size() < 64, "at most 64 accelerators (mask width)");
  MARS_CHECK_ARG(dram.count() > 0.0, "accelerator DRAM must be positive");
  Accelerator acc;
  acc.id = size();
  acc.name = std::move(name);
  acc.dram = dram;
  acc.host_bw = host_bw;
  acc.fixed_design = fixed_design;
  accs_.push_back(std::move(acc));
  for (auto& row : bw_) row.push_back(0.0);
  bw_.emplace_back(accs_.size(), 0.0);
  return accs_.back().id;
}

void Topology::connect(AccId a, AccId b, Bandwidth bw) {
  check_id(a);
  check_id(b);
  MARS_CHECK_ARG(a != b, "no self links");
  MARS_CHECK_ARG(bw.bits_per_second() > 0.0, "link bandwidth must be positive");
  bw_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
      bw.bits_per_second();
  bw_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] =
      bw.bits_per_second();
}

void Topology::check_id(AccId id) const {
  MARS_CHECK_ARG(id >= 0 && id < size(), "accelerator id " << id << " out of range");
}

const Accelerator& Topology::accelerator(AccId id) const {
  check_id(id);
  return accs_[static_cast<std::size_t>(id)];
}

bool Topology::has_link(AccId a, AccId b) const {
  check_id(a);
  check_id(b);
  return bw_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] > 0.0;
}

Bandwidth Topology::link(AccId a, AccId b) const {
  check_id(a);
  check_id(b);
  return Bandwidth(bw_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]);
}

Bandwidth Topology::host_bandwidth(AccId id) const {
  return accelerator(id).host_bw;
}

std::vector<AccId> Topology::neighbors(AccId id) const {
  check_id(id);
  std::vector<AccId> out;
  for (AccId other = 0; other < size(); ++other) {
    if (other != id && has_link(id, other)) out.push_back(other);
  }
  return out;
}

AccMask Topology::full_mask() const {
  return size() == 64 ? ~AccMask{0} : (AccMask{1} << static_cast<unsigned>(size())) - 1;
}

bool Topology::connected(AccMask mask) const {
  const std::vector<AccId> members = mask_members(mask);
  if (members.empty()) return false;
  if (members.size() == 1) return true;

  AccMask visited = mask_of(members.front());
  std::vector<AccId> frontier{members.front()};
  while (!frontier.empty()) {
    const AccId current = frontier.back();
    frontier.pop_back();
    for (AccId other : members) {
      if (!mask_contains(visited, other) && has_link(current, other)) {
        visited |= mask_of(other);
        frontier.push_back(other);
      }
    }
  }
  return visited == mask;
}

Bandwidth Topology::min_internal_bandwidth(AccMask mask) const {
  const std::vector<AccId> members = mask_members(mask);
  MARS_CHECK_ARG(!members.empty(), "empty accelerator set");
  if (members.size() == 1) return Bandwidth(std::numeric_limits<double>::infinity());
  MARS_CHECK_ARG(connected(mask),
                 "set " << mask_to_string(mask) << " is not connected");

  // Maximum-bottleneck spanning structure (Prim on min edge): the internal
  // collective bandwidth is limited by the weakest edge the set must use,
  // chosen as favourably as possible.
  AccMask in_tree = mask_of(members.front());
  double bottleneck = std::numeric_limits<double>::infinity();
  while (in_tree != mask) {
    double best = 0.0;
    AccId best_next = -1;
    for (AccId a : members) {
      if (!mask_contains(in_tree, a)) continue;
      for (AccId b : members) {
        if (mask_contains(in_tree, b) || !has_link(a, b)) continue;
        const double bw = link(a, b).bits_per_second();
        if (bw > best) {
          best = bw;
          best_next = b;
        }
      }
    }
    MARS_CHECK(best_next >= 0, "connected() contract violated");
    bottleneck = std::min(bottleneck, best);
    in_tree |= mask_of(best_next);
  }
  return Bandwidth(bottleneck);
}

Bandwidth Topology::best_link_between(AccMask a, AccMask b) const {
  MARS_CHECK_ARG((a & b) == 0, "sets overlap");
  double best = 0.0;
  for (AccId i : mask_members(a)) {
    for (AccId j : mask_members(b)) {
      best = std::max(best, link(i, j).bits_per_second());
    }
  }
  return Bandwidth(best);
}

Bandwidth Topology::min_host_bandwidth(AccMask mask) const {
  const std::vector<AccId> members = mask_members(mask);
  MARS_CHECK_ARG(!members.empty(), "empty accelerator set");
  double min_bw = std::numeric_limits<double>::infinity();
  for (AccId id : members) {
    min_bw = std::min(min_bw, host_bandwidth(id).bits_per_second());
  }
  return Bandwidth(min_bw);
}

std::vector<Bandwidth> Topology::bandwidth_levels() const {
  std::vector<double> values;
  for (AccId a = 0; a < size(); ++a) {
    for (AccId b = a + 1; b < size(); ++b) {
      if (has_link(a, b)) values.push_back(link(a, b).bits_per_second());
    }
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::vector<Bandwidth> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(Bandwidth(v));
  return out;
}

std::vector<AccMask> Topology::components_above(AccMask mask,
                                                Bandwidth threshold) const {
  std::vector<AccMask> components;
  AccMask remaining = mask;
  while (remaining != 0) {
    const AccId seed = mask_members(remaining).front();
    AccMask component = mask_of(seed);
    std::vector<AccId> frontier{seed};
    while (!frontier.empty()) {
      const AccId current = frontier.back();
      frontier.pop_back();
      for (AccId other : mask_members(remaining)) {
        if (mask_contains(component, other)) continue;
        if (has_link(current, other) && link(current, other) >= threshold) {
          component |= mask_of(other);
          frontier.push_back(other);
        }
      }
    }
    components.push_back(component);
    remaining &= ~component;
  }
  return components;
}

void Topology::validate() const {
  MARS_CHECK_ARG(size() > 0, "topology '" << name_ << "' has no accelerators");
  for (const Accelerator& acc : accs_) {
    MARS_CHECK_ARG(acc.host_bw.bits_per_second() > 0.0,
                   "accelerator " << acc.id << " needs a host link");
  }
}

}  // namespace mars::topology
