// Topology presets used by the paper's experiments and the examples.
#pragma once

#include "mars/topology/topology.h"

namespace mars::topology {

/// The paper's primary platform (Fig. 1): an AWS EC2 F1.16xlarge-style
/// system. Eight FPGAs in two groups of four; full crossbar at
/// `group_bw` (8 Gb/s) inside a group; inter-group traffic goes through the
/// host at `host_bw` (2 Gb/s); 1 GiB local DRAM per card.
[[nodiscard]] Topology f1_16xlarge(Bandwidth group_bw = gbps(8.0),
                                   Bandwidth host_bw = gbps(2.0),
                                   Bytes dram = gibibytes(1.0));

/// H2H-style cloud multi-FPGA system for the Table IV comparison: `n`
/// accelerators, uniform all-to-all direct links at `bw` (the paper sweeps
/// 1 / 1.2 / 2 / 4 / 10 Gb/s), host access at the same `bw`.
/// `fixed_designs` (optional) assigns design ids round-robin, making the
/// system non-adaptive like H2H's testbed.
[[nodiscard]] Topology h2h_cloud(int n, Bandwidth bw, int num_fixed_designs = 0,
                                 Bytes dram = gibibytes(1.0));

/// Ring of `n` accelerators (chiplet-style).
[[nodiscard]] Topology ring(int n, Bandwidth bw, Bandwidth host_bw,
                            Bytes dram = gibibytes(1.0));

/// Fully-connected clique of `n` accelerators.
[[nodiscard]] Topology fully_connected(int n, Bandwidth bw, Bandwidth host_bw,
                                       Bytes dram = gibibytes(1.0));

/// `groups` cliques of `per_group` accelerators each; intra-group links at
/// `intra_bw`, no direct inter-group links (host only). Generalisation of
/// the F1 shape for scalability studies.
[[nodiscard]] Topology grouped(int groups, int per_group, Bandwidth intra_bw,
                               Bandwidth host_bw, Bytes dram = gibibytes(1.0));

}  // namespace mars::topology
