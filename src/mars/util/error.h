// Error handling primitives for MARS.
//
// MARS uses exceptions for error reporting (invalid user input, violated
// invariants). `Error` carries a formatted message with the failing source
// location; the MARS_CHECK / MARS_THROW macros are the preferred entry
// points so that every failure names the condition that broke.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mars {

/// Base exception type for all MARS errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when an internal invariant breaks (a MARS bug, not a user error).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind, const char* cond,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "MARS_CHECK_ARG") throw InvalidArgument(os.str());
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace mars

/// Check an internal invariant; throws InternalError with location on failure.
#define MARS_CHECK(cond, msg)                                                  \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::ostringstream mars_check_os_;                                       \
      mars_check_os_ << msg; /* NOLINT */                                      \
      ::mars::detail::throw_check_failure("MARS_CHECK", #cond, __FILE__,       \
                                          __LINE__, mars_check_os_.str());     \
    }                                                                          \
  } while (false)

/// Check a caller-supplied precondition; throws InvalidArgument on failure.
#define MARS_CHECK_ARG(cond, msg)                                              \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::ostringstream mars_check_os_;                                       \
      mars_check_os_ << msg; /* NOLINT */                                      \
      ::mars::detail::throw_check_failure("MARS_CHECK_ARG", #cond, __FILE__,   \
                                          __LINE__, mars_check_os_.str());     \
    }                                                                          \
  } while (false)

/// Unconditionally throw an InternalError with a formatted message.
#define MARS_THROW(msg)                                                        \
  do {                                                                         \
    std::ostringstream mars_throw_os_;                                         \
    mars_throw_os_ << msg; /* NOLINT */                                        \
    throw ::mars::InternalError(mars_throw_os_.str());                         \
  } while (false)
