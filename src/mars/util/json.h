// Minimal JSON value: writer plus a strict recursive-descent parser.
// Enough for exporting mappings, summaries and benchmark results to
// tooling, and for rehydrating them (the serving mapping cache). Produces
// compact, well-formed output; strings are escaped, doubles printed with
// enough precision to round-trip. The parser accepts exactly the JSON
// this writer emits (standard JSON, no comments or trailing commas) and
// throws InvalidArgument with an offset on malformed input.
#pragma once

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace mars {

class JsonValue {
 public:
  /// Leaf constructors.
  static JsonValue number(double value);
  static JsonValue integer(long long value);
  static JsonValue boolean(bool value);
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();

  /// Strict parse of one JSON document (trailing non-whitespace is an
  /// error). Throws InvalidArgument on malformed input.
  [[nodiscard]] static JsonValue parse(const std::string& text);

  /// Array append (must be an array).
  JsonValue& push(JsonValue value);
  /// Object insert (must be an object); returns *this for chaining.
  JsonValue& set(const std::string& key, JsonValue value);

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kNumber || kind_ == Kind::kInteger;
  }
  [[nodiscard]] bool is_integer() const { return kind_ == Kind::kInteger; }
  [[nodiscard]] bool is_boolean() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] std::size_t size() const { return children_.size(); }

  /// Checked leaf accessors; throw InvalidArgument on a kind mismatch.
  /// as_number() also reads integers; as_integer() only exact integers.
  [[nodiscard]] double as_number() const;
  [[nodiscard]] long long as_integer() const;
  [[nodiscard]] bool as_boolean() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array element access (must be an array, index in range).
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  /// True when this object has `key` (false on non-objects).
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Object member access; throws InvalidArgument when absent. Duplicate
  /// keys resolve to the first occurrence.
  [[nodiscard]] const JsonValue& get(const std::string& key) const;

  /// Compact serialisation.
  [[nodiscard]] std::string dump() const;

  [[nodiscard]] static std::string escape(const std::string& text);

 private:
  enum class Kind : unsigned char {
    kNull,
    kNumber,
    kInteger,
    kBool,
    kString,
    kArray,
    kObject
  };

  Kind kind_ = Kind::kNull;
  double number_ = 0.0;
  long long integer_ = 0;
  bool bool_ = false;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> children_;  // key empty in arrays

  void dump_to(std::string& out) const;
};

}  // namespace mars
