// Minimal JSON writer (no parsing): enough for exporting mappings,
// summaries and benchmark results to tooling. Produces compact,
// well-formed output; strings are escaped, doubles printed with enough
// precision to round-trip.
#pragma once

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace mars {

class JsonValue {
 public:
  /// Leaf constructors.
  static JsonValue number(double value);
  static JsonValue integer(long long value);
  static JsonValue boolean(bool value);
  static JsonValue string(std::string value);
  static JsonValue array();
  static JsonValue object();

  /// Array append (must be an array).
  JsonValue& push(JsonValue value);
  /// Object insert (must be an object); returns *this for chaining.
  JsonValue& set(const std::string& key, JsonValue value);

  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] std::size_t size() const { return children_.size(); }

  /// Compact serialisation.
  [[nodiscard]] std::string dump() const;

  [[nodiscard]] static std::string escape(const std::string& text);

 private:
  enum class Kind : unsigned char {
    kNull,
    kNumber,
    kInteger,
    kBool,
    kString,
    kArray,
    kObject
  };

  Kind kind_ = Kind::kNull;
  double number_ = 0.0;
  long long integer_ = 0;
  bool bool_ = false;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> children_;  // key empty in arrays

  void dump_to(std::string& out) const;
};

}  // namespace mars
