// Strong unit types used throughout MARS.
//
// Latencies, bandwidths, memory sizes and cycle counts flow through many
// layers of the cost model; mixing them up silently is the classic source of
// 1000x-off results. Each quantity gets a minimal strong wrapper with only
// the arithmetic that is physically meaningful, plus explicit conversions.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

#include "mars/util/error.h"

namespace mars {

/// A size in bytes (tensor shards, DRAM capacities, message sizes).
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(double count) : count_(count) {}

  [[nodiscard]] constexpr double count() const { return count_; }
  [[nodiscard]] constexpr double kib() const { return count_ / 1024.0; }
  [[nodiscard]] constexpr double mib() const { return count_ / (1024.0 * 1024.0); }
  [[nodiscard]] constexpr double gib() const {
    return count_ / (1024.0 * 1024.0 * 1024.0);
  }

  constexpr Bytes& operator+=(Bytes other) {
    count_ += other.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes other) {
    count_ -= other.count_;
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes(a.count_ + b.count_); }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes(a.count_ - b.count_); }
  friend constexpr Bytes operator*(Bytes a, double s) { return Bytes(a.count_ * s); }
  friend constexpr Bytes operator*(double s, Bytes a) { return Bytes(a.count_ * s); }
  friend constexpr Bytes operator/(Bytes a, double s) { return Bytes(a.count_ / s); }
  friend constexpr double operator/(Bytes a, Bytes b) { return a.count_ / b.count_; }
  friend constexpr auto operator<=>(Bytes, Bytes) = default;

 private:
  double count_ = 0.0;
};

[[nodiscard]] constexpr Bytes kibibytes(double v) { return Bytes(v * 1024.0); }
[[nodiscard]] constexpr Bytes mebibytes(double v) { return Bytes(v * 1024.0 * 1024.0); }
[[nodiscard]] constexpr Bytes gibibytes(double v) {
  return Bytes(v * 1024.0 * 1024.0 * 1024.0);
}

/// A duration in seconds (all latencies).
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double count) : count_(count) {}

  [[nodiscard]] constexpr double count() const { return count_; }
  [[nodiscard]] constexpr double millis() const { return count_ * 1e3; }
  [[nodiscard]] constexpr double micros() const { return count_ * 1e6; }
  [[nodiscard]] constexpr bool finite() const { return std::isfinite(count_); }

  constexpr Seconds& operator+=(Seconds other) {
    count_ += other.count_;
    return *this;
  }
  constexpr Seconds& operator-=(Seconds other) {
    count_ -= other.count_;
    return *this;
  }
  friend constexpr Seconds operator+(Seconds a, Seconds b) {
    return Seconds(a.count_ + b.count_);
  }
  friend constexpr Seconds operator-(Seconds a, Seconds b) {
    return Seconds(a.count_ - b.count_);
  }
  friend constexpr Seconds operator*(Seconds a, double s) { return Seconds(a.count_ * s); }
  friend constexpr Seconds operator*(double s, Seconds a) { return Seconds(a.count_ * s); }
  friend constexpr Seconds operator/(Seconds a, double s) { return Seconds(a.count_ / s); }
  friend constexpr double operator/(Seconds a, Seconds b) { return a.count_ / b.count_; }
  friend constexpr auto operator<=>(Seconds, Seconds) = default;

 private:
  double count_ = 0.0;
};

[[nodiscard]] constexpr Seconds milliseconds(double v) { return Seconds(v * 1e-3); }
[[nodiscard]] constexpr Seconds microseconds(double v) { return Seconds(v * 1e-6); }

/// An energy in joules (per-MAC costs, DRAM/link transfer energy, whole
/// mapping totals). Per-operation prices sit at picojoule scale; whole
/// networks land in millijoules.
class Joules {
 public:
  constexpr Joules() = default;
  constexpr explicit Joules(double count) : count_(count) {}

  [[nodiscard]] constexpr double count() const { return count_; }
  [[nodiscard]] constexpr double millijoules() const { return count_ * 1e3; }
  [[nodiscard]] constexpr double picojoules() const { return count_ * 1e12; }

  constexpr Joules& operator+=(Joules other) {
    count_ += other.count_;
    return *this;
  }
  constexpr Joules& operator-=(Joules other) {
    count_ -= other.count_;
    return *this;
  }
  friend constexpr Joules operator+(Joules a, Joules b) { return Joules(a.count_ + b.count_); }
  friend constexpr Joules operator-(Joules a, Joules b) { return Joules(a.count_ - b.count_); }
  friend constexpr Joules operator*(Joules a, double s) { return Joules(a.count_ * s); }
  friend constexpr Joules operator*(double s, Joules a) { return Joules(a.count_ * s); }
  friend constexpr Joules operator/(Joules a, double s) { return Joules(a.count_ / s); }
  friend constexpr double operator/(Joules a, Joules b) { return a.count_ / b.count_; }
  friend constexpr auto operator<=>(Joules, Joules) = default;

 private:
  double count_ = 0.0;
};

[[nodiscard]] constexpr Joules millijoules(double v) { return Joules(v * 1e-3); }
[[nodiscard]] constexpr Joules picojoules(double v) { return Joules(v * 1e-12); }

/// Link bandwidth. Stored in bits per second to match how interconnect
/// specifications are quoted (the paper uses Gbps throughout).
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr explicit Bandwidth(double bits_per_second)
      : bits_per_second_(bits_per_second) {}

  [[nodiscard]] constexpr double bits_per_second() const { return bits_per_second_; }
  [[nodiscard]] constexpr double gbps() const { return bits_per_second_ / 1e9; }
  [[nodiscard]] constexpr double bytes_per_second() const {
    return bits_per_second_ / 8.0;
  }

  /// Time to move `size` over this link at full rate.
  [[nodiscard]] Seconds transfer_time(Bytes size) const {
    MARS_CHECK_ARG(bits_per_second_ > 0.0, "transfer over zero-bandwidth link");
    return Seconds(size.count() / bytes_per_second());
  }

  friend constexpr Bandwidth operator*(Bandwidth a, double s) {
    return Bandwidth(a.bits_per_second_ * s);
  }
  friend constexpr Bandwidth operator/(Bandwidth a, double s) {
    return Bandwidth(a.bits_per_second_ / s);
  }
  friend constexpr auto operator<=>(Bandwidth, Bandwidth) = default;

 private:
  double bits_per_second_ = 0.0;
};

[[nodiscard]] constexpr Bandwidth gbps(double v) { return Bandwidth(v * 1e9); }
[[nodiscard]] constexpr Bandwidth mbps(double v) { return Bandwidth(v * 1e6); }

/// A clock frequency (accelerator designs quote MHz).
class Frequency {
 public:
  constexpr Frequency() = default;
  constexpr explicit Frequency(double hertz) : hertz_(hertz) {}

  [[nodiscard]] constexpr double hertz() const { return hertz_; }
  [[nodiscard]] constexpr double megahertz() const { return hertz_ / 1e6; }

  /// Wall-clock time for `cycles` at this frequency.
  [[nodiscard]] Seconds time_for(double cycles) const {
    MARS_CHECK_ARG(hertz_ > 0.0, "cycles at zero frequency");
    return Seconds(cycles / hertz_);
  }

  friend constexpr auto operator<=>(Frequency, Frequency) = default;

 private:
  double hertz_ = 0.0;
};

[[nodiscard]] constexpr Frequency megahertz(double v) { return Frequency(v * 1e6); }

inline std::ostream& operator<<(std::ostream& os, Bytes b) {
  if (b.count() >= 1024.0 * 1024.0 * 1024.0) return os << b.gib() << " GiB";
  if (b.count() >= 1024.0 * 1024.0) return os << b.mib() << " MiB";
  if (b.count() >= 1024.0) return os << b.kib() << " KiB";
  return os << b.count() << " B";
}

inline std::ostream& operator<<(std::ostream& os, Seconds s) {
  if (s.count() >= 1.0) return os << s.count() << " s";
  if (s.count() >= 1e-3) return os << s.millis() << " ms";
  return os << s.micros() << " us";
}

inline std::ostream& operator<<(std::ostream& os, Joules j) {
  if (j.count() >= 1.0) return os << j.count() << " J";
  if (j.count() >= 1e-3) return os << j.millijoules() << " mJ";
  return os << j.picojoules() << " pJ";
}

inline std::ostream& operator<<(std::ostream& os, Bandwidth bw) {
  return os << bw.gbps() << " Gb/s";
}

inline std::ostream& operator<<(std::ostream& os, Frequency f) {
  return os << f.megahertz() << " MHz";
}

}  // namespace mars
