// Minimal leveled logger.
//
// MARS is a library first; logging defaults to warnings-and-up on stderr so
// embedding applications stay quiet. Search drivers bump the level to Info
// to narrate GA progress. Thread-safe: search has been multi-threaded since
// the worker pool landed, so the level is atomic and each statement is
// emitted under a mutex (whole lines, never interleaved). Swapping the sink
// concurrently with logging is safe, but the caller must keep the old sink
// alive until the swap returns.
#pragma once

#include <ostream>
#include <sstream>
#include <string>

namespace mars {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log configuration. `set_log_level` returns the previous level so
/// callers (tests) can restore it.
LogLevel set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Redirect log output (default: std::cerr). Returns the previous sink.
/// The caller keeps ownership of the stream; pass nullptr to restore cerr.
std::ostream* set_log_sink(std::ostream* sink);

namespace detail {

void emit_log(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { emit_log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace mars

#define MARS_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::mars::log_level())) { \
  } else                                                 \
    ::mars::detail::LogMessage(level)

#define MARS_DEBUG MARS_LOG(::mars::LogLevel::kDebug)
#define MARS_INFO MARS_LOG(::mars::LogLevel::kInfo)
#define MARS_WARN MARS_LOG(::mars::LogLevel::kWarn)
#define MARS_ERROR MARS_LOG(::mars::LogLevel::kError)
