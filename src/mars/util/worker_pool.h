// A small reusable worker pool for deterministic data parallelism.
//
// MARS parallelises *independent* work — fitness evaluations whose
// results depend only on their inputs — so the pool's contract is
// deliberately narrow: parallel_for splits [0, n) into one contiguous
// chunk per thread (chunk w covers [w*n/T, (w+1)*n/T)), runs the chunks
// concurrently, and blocks until all of them finish. The partitioning is
// a pure function of (n, threads), never of timing, so *which* worker
// computes an item is deterministic; callers that write results by index
// therefore produce identical output at any thread count.
//
// No global state: each pool owns its threads and dies with them.
// Thread-safety: parallel_for may be called repeatedly from the owning
// thread but not concurrently with itself. The calling thread executes
// chunk 0 itself, so a pool constructed with threads == 1 spawns nothing
// and parallel_for degenerates to a plain loop (same code path, zero
// thread overhead).
//
// Exceptions thrown inside chunks are captured and the one from the
// lowest-numbered chunk is rethrown in the caller after every chunk has
// finished — again deterministic, not a race between throwers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mars::util {

class WorkerPool {
 public:
  /// A function applied to one contiguous index chunk [begin, end).
  using ChunkFn = std::function<void(std::size_t begin, std::size_t end)>;

  /// Spawns `threads - 1` workers (the caller is the remaining thread).
  /// Throws InvalidArgument when threads < 1.
  explicit WorkerPool(int threads);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  [[nodiscard]] int threads() const { return threads_; }

  /// Runs `fn` over [0, n) split into threads() contiguous chunks; blocks
  /// until every chunk has finished. The caller runs chunk 0. Rethrows
  /// the lowest-chunk exception, if any.
  void parallel_for(std::size_t n, const ChunkFn& fn);

  /// The chunk worker `w` of `threads` receives for a job of size `n`:
  /// [n*w/threads, n*(w+1)/threads). Exposed so tests (and docs) can pin
  /// the partitioning down as part of the determinism contract.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> chunk(
      std::size_t n, int threads, int worker);

 private:
  void worker_loop(int worker);

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumps once per parallel_for round
  int remaining_ = 0;             // workers still running this round
  bool shutdown_ = false;
  std::size_t job_size_ = 0;
  const ChunkFn* job_ = nullptr;
  std::vector<std::exception_ptr> errors_;  // one slot per chunk
};

}  // namespace mars::util
