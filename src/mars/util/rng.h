// Deterministic random number generation for the search algorithms.
//
// Every stochastic component in MARS (GA init, mutation, crossover) draws
// from an explicitly threaded Rng so that a fixed seed reproduces a run
// bit-for-bit. Never reach for a global generator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "mars/util/error.h"

namespace mars {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    MARS_CHECK_ARG(lo < hi, "uniform(lo, hi) requires lo < hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi) {
    MARS_CHECK_ARG(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double p) { return uniform() < p; }

  /// Pick an index in [0, n) — convenience for container sampling.
  [[nodiscard]] std::size_t index(std::size_t n) {
    MARS_CHECK_ARG(n > 0, "index() over empty range");
    return static_cast<std::size_t>(
        std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  /// Derive an independent child generator (for memoised sub-searches).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mars
