#include "mars/util/csv.h"

#include "mars/util/error.h"
#include "mars/util/strings.h"

namespace mars {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> header)
    : os_(os), arity_(header.size()) {
  MARS_CHECK_ARG(arity_ > 0, "CSV needs at least one column");
  std::vector<std::string> escaped;
  escaped.reserve(header.size());
  for (const auto& h : header) escaped.push_back(escape(h));
  os_ << join(escaped, ",") << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  MARS_CHECK_ARG(row.size() == arity_,
                 "CSV row arity " << row.size() << " != header arity " << arity_);
  std::vector<std::string> escaped;
  escaped.reserve(row.size());
  for (const auto& field : row) escaped.push_back(escape(field));
  os_ << join(escaped, ",") << '\n';
  ++num_rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace mars
